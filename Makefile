GO ?= go

.PHONY: all build check vet fmt test race bench bench-obs bench-router bench-dp bench-estimate bench-eco benchdiff serve test-serve test-store test-dp test-estimate test-eco test-fleet fuzz-smoke

all: check

build:
	$(GO) build ./...

# check is the pre-commit gate: vet, formatting, the full test suite and
# the race detector over the concurrent packages.
check: vet fmt test race

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/serve/... ./internal/core/... ./internal/route/... ./internal/wl/... ./internal/density/... ./internal/par/... ./internal/obs/... ./internal/store/... ./internal/snap/... ./internal/dp/... ./internal/legal/... ./internal/incr/... ./internal/estimate/... ./internal/fleet/... ./internal/eco/...

# Run the placement job server locally (see DESIGN.md §9).
serve:
	$(GO) run ./cmd/placerd -addr :8080 -log-level info

# The serving-layer suite alone, race-checked — the e2e submits a real
# placement job over HTTP and follows its SSE stream to completion.
test-serve:
	$(GO) test -race -v ./internal/serve/

# The persistence stack alone, race-checked: snapshot codec, artifact
# store, checkpoint/resume equivalence, and the placerd restart +
# dedup e2e (see DESIGN.md §10).
test-store:
	$(GO) test -race -v ./internal/snap/ ./internal/store/
	$(GO) test -race -run 'Checkpoint|Resume' ./internal/core/
	$(GO) test -race -run 'TestRestart|TestDuplicate|TestStateDir' ./internal/serve/

# FUZZTIME-bounded run of every Bookshelf reader fuzz target: malformed
# input must produce *ParseError, never a panic. Go allows one -fuzz
# pattern per invocation, hence the loop.
FUZZTIME ?= 30s
fuzz-smoke:
	@for t in FuzzReadAux FuzzReadNets FuzzReadScl FuzzReadRoute FuzzReadHier; do \
		echo "fuzz $$t ($(FUZZTIME))"; \
		$(GO) test -fuzz "^$$t$$" -fuzztime $(FUZZTIME) -run '^$$' ./internal/bookshelf/ || exit 1; \
	done

# Table-2 style placement benchmarks (see DESIGN.md).
bench:
	$(GO) test -bench Table2 -benchmem -run xxx .

# Telemetry-overhead benchmarks: the Disabled* cases must stay at 0
# allocs/op, and route "off" must track the uninstrumented baseline.
bench-obs:
	$(GO) test -bench . -benchmem -run xxx ./internal/obs/
	$(GO) test -bench RouteDesignObs -benchmem -run xxx ./internal/route/

# Router micro-benchmarks plus the machine-readable BENCH_router.json.
bench-router:
	$(GO) test -bench . -benchmem -run xxx ./internal/route/
	$(GO) run ./cmd/benchroute

# The fleet suite alone, race-checked: lease reassignment, retry
# budgets, checkpoint handoff, stitched SSE — plus the 2-worker process
# e2e that SIGKILLs the owning worker mid-job and asserts completion
# after reassignment (see DESIGN.md §13).
test-fleet:
	$(GO) test -race -v ./internal/fleet/

# Detailed-placement suite alone, race-checked: incremental-engine
# differentials, cross-worker .pl determinism, and placement invariants
# (see DESIGN.md §11).
test-dp:
	$(GO) test -race -v ./internal/incr/ ./internal/dp/ ./internal/legal/

# Routability-estimator suite alone, race-checked: incremental-vs-full
# bitwise differentials, router-correlation drift gate, cross-worker
# determinism, and the estimate-mode placer/DP/serving wiring
# (see DESIGN.md §14).
test-estimate:
	$(GO) test -race -v ./internal/estimate/
	$(GO) test -race -run 'Estimate' -v ./internal/core/ ./internal/dp/
	$(GO) test -race -run 'TestStatusCongestionSource' -v ./internal/serve/

# Incremental (ECO) placement suite alone, race-checked: netlist-diff
# edge cases, windowed-repair legality/determinism, and the serving
# layer's delta-job path (see DESIGN.md §15).
test-eco:
	$(GO) test -race -v ./internal/eco/
	$(GO) test -race -run 'TestDeltaJob' -v ./internal/serve/

# Detailed-placement hot-path benchmark plus the machine-readable
# BENCH_dp.json: incremental engine vs. the recompute baseline across
# worker counts. BENCH_DP_FLAGS trims it for CI.
BENCH_DP_FLAGS ?= -cells 2000 -workers 1,2,8 -out BENCH_dp.json
bench-dp:
	$(GO) test -bench Optimize -benchmem -run xxx ./internal/dp/
	$(GO) run ./cmd/benchdp $(BENCH_DP_FLAGS)

# Routability-estimator benchmark plus the machine-readable
# BENCH_estimate.json: recompute/incremental throughput, correlation
# against the real router, and the estimate-vs-route placer comparison.
# benchest self-gates (signal speedup ≥ 2x, pearson ≥ 0.6, routed quality
# within 5% of route mode); BENCHEST_FLAGS must stay in sync with the
# benchdiff recipe below so baseline and current runs share keys.
BENCHEST_FLAGS ?=
bench-estimate:
	$(GO) test -bench . -benchmem -run xxx ./internal/estimate/
	$(GO) run ./cmd/benchest $(BENCHEST_FLAGS) -out BENCH_estimate.json

# Incremental-placement benchmark: diff throughput, the eco-vs-full
# delta comparison (self-gated on speedup, quality and cross-worker
# determinism) and the machine-readable BENCH_eco.json. BENCHECO_FLAGS
# must stay in sync with the benchdiff recipe below so baseline and
# current runs share keys.
BENCHECO_FLAGS ?=
bench-eco:
	$(GO) run ./cmd/bencheco $(BENCHECO_FLAGS) -out BENCH_eco.json

# Bench regression gate: fresh benchroute/benchdp/benchest runs land in
# .bench/ (gitignored) and are diffed against the committed BENCH_*.json
# baselines. Exits non-zero on a regression. Wall time is gated loosely
# by default because machines differ; BENCHDIFF_FLAGS widens or tightens
# every gate (see cmd/benchdiff -h). A missing committed baseline passes
# with a note; a baseline run missing from the fresh results fails.
BENCHDIFF_FLAGS ?= -max-wall-ratio 10
benchdiff:
	@mkdir -p .bench
	$(GO) run ./cmd/benchroute -workers 1 -out .bench/router.json
	$(GO) run ./cmd/benchdp -out .bench/dp.json
	@fail=0; \
	$(GO) run ./cmd/benchest $(BENCHEST_FLAGS) -out .bench/estimate.json || fail=1; \
	$(GO) run ./cmd/bencheco $(BENCHECO_FLAGS) -out .bench/eco.json || fail=1; \
	$(GO) run ./cmd/benchdiff -baseline BENCH_router.json -current .bench/router.json $(BENCHDIFF_FLAGS) || fail=1; \
	$(GO) run ./cmd/benchdiff -baseline BENCH_dp.json -current .bench/dp.json $(BENCHDIFF_FLAGS) || fail=1; \
	$(GO) run ./cmd/benchdiff -baseline BENCH_estimate.json -current .bench/estimate.json $(BENCHDIFF_FLAGS) || fail=1; \
	$(GO) run ./cmd/benchdiff -baseline BENCH_eco.json -current .bench/eco.json $(BENCHDIFF_FLAGS) || fail=1; \
	exit $$fail
