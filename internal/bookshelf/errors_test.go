package bookshelf

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMalformedNodesLineCarriesContext pins the typed-error contract the
// serving layer's 400-vs-500 classification builds on: a broken .nodes
// line must surface as a *ParseError naming the file and line.
func TestMalformedNodesLineCarriesContext(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("t.aux", "RowBasedPlacement : t.nodes t.nets\n")
	write("t.nodes", "UCLA nodes 1.0\nc0 4 2\nc1 4\n") // line 3: missing height
	write("t.nets", "UCLA nets 1.0\n")

	_, err := ReadDesign(filepath.Join(dir, "t.aux"))
	if err == nil {
		t.Fatal("ReadDesign accepted a malformed .nodes line")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want a wrapped *ParseError", err, err)
	}
	if !strings.HasSuffix(pe.File, "t.nodes") || pe.Line != 3 {
		t.Errorf("ParseError locates %s:%d, want t.nodes:3", pe.File, pe.Line)
	}
	if !strings.Contains(err.Error(), "t.nodes:3") {
		t.Errorf("error text %q does not carry file:line", err)
	}
	if !IsBadInput(err) {
		t.Error("IsBadInput(parse error) = false, want true")
	}
}

func TestIsBadInputClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"parse error", &ParseError{File: "x", Line: 1, Msg: "bad"}, true},
		{"wrapped parse error", errors.Join(errors.New("ctx"), &ParseError{}), true},
		{"missing file", fs.ErrNotExist, true},
		{"invalid design", ErrInvalidDesign, true},
		{"environmental", errors.New("disk on fire"), false},
	}
	for _, c := range cases {
		if got := IsBadInput(c.err); got != c.want {
			t.Errorf("IsBadInput(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestMissingAuxIsBadInput: a nonexistent path is the client's mistake,
// not the server's.
func TestMissingAuxIsBadInput(t *testing.T) {
	_, err := ReadDesign(filepath.Join(t.TempDir(), "nope.aux"))
	if err == nil {
		t.Fatal("ReadDesign accepted a missing .aux")
	}
	if !IsBadInput(err) {
		t.Errorf("IsBadInput(%v) = false, want true", err)
	}
}
