package bookshelf

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/db"
	"repro/internal/geom"
)

// ReadDesign loads a complete design given the path of its .aux file.
func ReadDesign(auxPath string) (*db.Design, error) {
	f, err := os.Open(auxPath)
	if err != nil {
		return nil, err
	}
	files, err := ParseAux(f, filepath.Base(auxPath))
	f.Close()
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(auxPath)
	r := &reader{dir: dir}
	name := strings.TrimSuffix(filepath.Base(auxPath), ".aux")
	return r.read(name, files)
}

type reader struct {
	dir string

	design   *db.Design
	cellIdx  map[string]int
	fenceIdx map[string]int
}

func (r *reader) open(name string) (*os.File, error) {
	return os.Open(filepath.Join(r.dir, name))
}

func (r *reader) read(name string, files Files) (*db.Design, error) {
	r.design = &db.Design{Name: name}
	r.cellIdx = make(map[string]int)
	r.fenceIdx = make(map[string]int)

	steps := []struct {
		file string
		fn   func(io.Reader, string) error
	}{
		{files.Nodes, r.readNodes},
		{files.Nets, r.readNets},
		{files.Wts, r.readWts},
		{files.Pl, r.readPl},
		{files.Scl, r.readScl},
		{files.Route, r.readRoute},
		{files.Fence, r.readFence},
		{files.Hier, r.readHier},
	}
	for _, st := range steps {
		if st.file == "" {
			continue
		}
		f, err := r.open(st.file)
		if err != nil {
			// Optional files may be absent even when listed.
			if os.IsNotExist(err) && st.file != files.Nodes && st.file != files.Nets {
				continue
			}
			return nil, err
		}
		err = st.fn(f, st.file)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("bookshelf: %w", err)
		}
	}
	r.deriveDie()
	if err := r.design.Validate(); err != nil {
		return nil, fmt.Errorf("bookshelf: loaded design %w: %w", ErrInvalidDesign, err)
	}
	return r.design, nil
}

// deriveDie sets the die rectangle from rows when present, falling back to
// the bounding box of fixed objects and placed cells.
func (r *reader) deriveDie() {
	d := r.design
	if !d.Die.Empty() {
		return
	}
	var bb geom.Rect
	for i := range d.Rows {
		bb = bb.Union(d.Rows[i].Rect())
	}
	if bb.Empty() {
		for i := range d.Cells {
			bb = bb.Union(d.Cells[i].Rect())
		}
	}
	d.Die = bb
}

func (r *reader) readNodes(f io.Reader, name string) error {
	sc := newScanner(f, name)
	if err := sc.expectHeader("nodes"); err != nil {
		return err
	}
	for sc.next() {
		if key, _, ok := keyValue(sc.cur); ok && (strings.EqualFold(key, "NumNodes") || strings.EqualFold(key, "NumTerminals")) {
			continue
		}
		fields := strings.Fields(sc.cur)
		if len(fields) < 3 {
			return sc.errf("node line needs name width height: %q", sc.cur)
		}
		w, err := parseFloat(sc, fields[1])
		if err != nil {
			return err
		}
		h, err := parseFloat(sc, fields[2])
		if err != nil {
			return err
		}
		c := db.Cell{
			Name: fields[0], BaseW: w, BaseH: h,
			Kind: db.StdCell, Region: db.NoRegion, Module: db.NoModule, Inflate: 1,
		}
		if len(fields) >= 4 {
			switch strings.ToLower(fields[3]) {
			case "terminal":
				// Bookshelf "terminal" covers both I/O pads and fixed
				// macros; zero-area terminals become db.Terminal, the rest
				// become fixed macros. Movability is finalized by .pl.
				c.Fixed = true
				if w == 0 || h == 0 {
					c.Kind = db.Terminal
				} else {
					c.Kind = db.Macro
				}
			case "terminal_ni":
				c.Fixed = true
				c.Kind = db.Terminal
			default:
				return sc.errf("unknown node attribute %q", fields[3])
			}
		}
		if _, dup := r.cellIdx[c.Name]; dup {
			return sc.errf("duplicate node %q", c.Name)
		}
		r.cellIdx[c.Name] = len(r.design.Cells)
		r.design.Cells = append(r.design.Cells, c)
	}
	return nil
}

func (r *reader) readNets(f io.Reader, name string) error {
	sc := newScanner(f, name)
	if err := sc.expectHeader("nets"); err != nil {
		return err
	}
	d := r.design
	for sc.next() {
		key, vals, ok := keyValue(sc.cur)
		if ok && (strings.EqualFold(key, "NumNets") || strings.EqualFold(key, "NumPins")) {
			continue
		}
		if !ok || !strings.HasPrefix(strings.ToLower(key), "netdegree") {
			return sc.errf("expected NetDegree line, got %q", sc.cur)
		}
		if len(vals) < 1 {
			return sc.errf("NetDegree needs a count")
		}
		deg, err := parseInt(sc, vals[0])
		if err != nil {
			return err
		}
		netName := fmt.Sprintf("net%d", len(d.Nets))
		if len(vals) >= 2 {
			netName = vals[1]
		}
		ni := len(d.Nets)
		net := db.Net{Name: netName, Weight: 1}
		for k := 0; k < deg; k++ {
			if !sc.next() {
				return sc.errf("net %q truncated: expected %d pins", netName, deg)
			}
			pf := strings.Fields(sc.cur)
			if len(pf) < 1 {
				return sc.errf("empty pin line")
			}
			ci, okc := r.cellIdx[pf[0]]
			if !okc {
				return sc.errf("net %q references unknown node %q", netName, pf[0])
			}
			// Format: name [I|O|B] [: dx dy]
			var dx, dy float64
			if len(pf) >= 4 && pf[2] == ":" {
				if dx, err = parseFloat(sc, pf[3]); err != nil {
					return err
				}
				if len(pf) >= 5 {
					if dy, err = parseFloat(sc, pf[4]); err != nil {
						return err
					}
				}
			}
			c := &d.Cells[ci]
			// Convert center-relative to lower-left-relative offsets.
			off := geom.Point{X: c.BaseW/2 + dx, Y: c.BaseH/2 + dy}
			pi := len(d.Pins)
			d.Pins = append(d.Pins, db.Pin{Cell: ci, Net: ni, Offset: off})
			c.Pins = append(c.Pins, pi)
			net.Pins = append(net.Pins, pi)
		}
		d.Nets = append(d.Nets, net)
	}
	return nil
}

func (r *reader) readWts(f io.Reader, name string) error {
	sc := newScanner(f, name)
	if err := sc.expectHeader("wts"); err != nil {
		return err
	}
	byName := make(map[string]int, len(r.design.Nets))
	for i := range r.design.Nets {
		byName[r.design.Nets[i].Name] = i
	}
	for sc.next() {
		fields := strings.Fields(sc.cur)
		if len(fields) < 2 {
			return sc.errf("wts line needs name weight")
		}
		w, err := parseFloat(sc, fields[1])
		if err != nil {
			return err
		}
		if ni, ok := byName[fields[0]]; ok {
			r.design.Nets[ni].Weight = w
		}
	}
	return nil
}

func (r *reader) readPl(f io.Reader, name string) error {
	sc := newScanner(f, name)
	if err := sc.expectHeader("pl"); err != nil {
		return err
	}
	for sc.next() {
		fields := strings.Fields(sc.cur)
		if len(fields) < 3 {
			return sc.errf("pl line needs name x y")
		}
		ci, ok := r.cellIdx[fields[0]]
		if !ok {
			return sc.errf("pl references unknown node %q", fields[0])
		}
		x, err := parseFloat(sc, fields[1])
		if err != nil {
			return err
		}
		y, err := parseFloat(sc, fields[2])
		if err != nil {
			return err
		}
		c := &r.design.Cells[ci]
		c.Pos = geom.Point{X: x, Y: y}
		rest := fields[3:]
		if len(rest) > 0 && rest[0] == ":" {
			rest = rest[1:]
		}
		if len(rest) > 0 {
			if o, oko := db.ParseOrient(rest[0]); oko {
				c.Orient = o
			}
			rest = rest[1:]
		}
		fixed := false
		for _, tok := range rest {
			switch strings.ToUpper(tok) {
			case "/FIXED", "/FIXED_NI":
				fixed = true
			}
		}
		if fixed {
			c.Fixed = true
			if c.Kind == db.StdCell {
				c.Kind = db.Macro
			}
		}
	}
	return nil
}

func (r *reader) readScl(f io.Reader, name string) error {
	sc := newScanner(f, name)
	if err := sc.expectHeader("scl"); err != nil {
		return err
	}
	d := r.design
	var row *db.Row
	for sc.next() {
		key, vals, hasColon := keyValue(sc.cur)
		lower := strings.ToLower(strings.Fields(sc.cur)[0])
		switch {
		case hasColon && strings.EqualFold(key, "NumRows"):
			continue
		case lower == "corerow":
			d.Rows = append(d.Rows, db.Row{SiteWidth: 1})
			row = &d.Rows[len(d.Rows)-1]
		case lower == "end":
			row = nil
		case row == nil:
			continue
		case hasColon && strings.EqualFold(key, "Coordinate"):
			v, err := parseFloat1(sc, key, vals)
			if err != nil {
				return err
			}
			row.Y = v
		case hasColon && strings.EqualFold(key, "Height"):
			v, err := parseFloat1(sc, key, vals)
			if err != nil {
				return err
			}
			row.Height = v
		case hasColon && (strings.EqualFold(key, "Sitewidth") || strings.EqualFold(key, "Sitespacing")):
			v, err := parseFloat1(sc, key, vals)
			if err != nil {
				return err
			}
			if v > 0 {
				row.SiteWidth = v
			}
		case hasColon && strings.EqualFold(key, "SubrowOrigin"):
			// "SubrowOrigin : x NumSites : n"
			v, err := parseFloat1(sc, key, vals)
			if err != nil {
				return err
			}
			row.X = v
			for i := 0; i+1 < len(vals); i++ {
				if strings.EqualFold(strings.TrimSuffix(vals[i], ":"), "NumSites") {
					tok := vals[i+1]
					if tok == ":" && i+2 < len(vals) {
						tok = vals[i+2]
					}
					n, err := parseInt(sc, tok)
					if err != nil {
						return err
					}
					row.NumSites = n
				}
			}
		}
	}
	r.finishKinds()
	return nil
}

// finishKinds reclassifies movable nodes taller than one row as macros,
// which is the Bookshelf convention for mixed-size designs.
func (r *reader) finishKinds() {
	rh := r.design.RowHeight()
	if rh <= 0 {
		return
	}
	for i := range r.design.Cells {
		c := &r.design.Cells[i]
		if c.Kind == db.StdCell && c.BaseH > rh {
			c.Kind = db.Macro
		}
	}
}

func (r *reader) readRoute(f io.Reader, name string) error {
	sc := newScanner(f, name)
	if err := sc.expectHeader("route"); err != nil {
		return err
	}
	ri := &db.RouteInfo{BlockagePorosity: 0}
	parseFloats := func(vals []string) ([]float64, error) {
		out := make([]float64, 0, len(vals))
		for _, v := range vals {
			x, err := parseFloat(sc, v)
			if err != nil {
				return nil, err
			}
			out = append(out, x)
		}
		return out, nil
	}
	for sc.next() {
		key, vals, ok := keyValue(sc.cur)
		if !ok {
			return sc.errf("unexpected route line %q", sc.cur)
		}
		var err error
		switch {
		case strings.EqualFold(key, "Grid"):
			if len(vals) < 3 {
				return sc.errf("Grid needs x y layers")
			}
			if ri.GridX, err = parseInt(sc, vals[0]); err != nil {
				return err
			}
			if ri.GridY, err = parseInt(sc, vals[1]); err != nil {
				return err
			}
			if ri.Layers, err = parseInt(sc, vals[2]); err != nil {
				return err
			}
		case strings.EqualFold(key, "VerticalCapacity"):
			if ri.VertCap, err = parseFloats(vals); err != nil {
				return err
			}
		case strings.EqualFold(key, "HorizontalCapacity"):
			if ri.HorizCap, err = parseFloats(vals); err != nil {
				return err
			}
		case strings.EqualFold(key, "MinWireWidth"):
			if ri.MinWidth, err = parseFloats(vals); err != nil {
				return err
			}
		case strings.EqualFold(key, "MinWireSpacing"):
			if ri.MinSpacing, err = parseFloats(vals); err != nil {
				return err
			}
		case strings.EqualFold(key, "ViaSpacing"):
			if ri.ViaSpacing, err = parseFloats(vals); err != nil {
				return err
			}
		case strings.EqualFold(key, "GridOrigin"):
			if len(vals) < 2 {
				return sc.errf("GridOrigin needs x y")
			}
			if ri.Origin.X, err = parseFloat(sc, vals[0]); err != nil {
				return err
			}
			if ri.Origin.Y, err = parseFloat(sc, vals[1]); err != nil {
				return err
			}
		case strings.EqualFold(key, "TileSize"):
			if len(vals) < 2 {
				return sc.errf("TileSize needs w h")
			}
			if ri.TileW, err = parseFloat(sc, vals[0]); err != nil {
				return err
			}
			if ri.TileH, err = parseFloat(sc, vals[1]); err != nil {
				return err
			}
		case strings.EqualFold(key, "BlockagePorosity"):
			if ri.BlockagePorosity, err = parseFloat1(sc, key, vals); err != nil {
				return err
			}
		case strings.EqualFold(key, "NumNiTerminals"):
			n, err := parseInt1(sc, key, vals)
			if err != nil {
				return err
			}
			for k := 0; k < n; k++ {
				if !sc.next() {
					return sc.errf("NiTerminals truncated")
				}
				fields := strings.Fields(sc.cur)
				if ci, okc := r.cellIdx[fields[0]]; okc {
					ri.NiTerminals = append(ri.NiTerminals, ci)
				}
			}
		case strings.EqualFold(key, "NumBlockageNodes"):
			n, err := parseInt1(sc, key, vals)
			if err != nil {
				return err
			}
			for k := 0; k < n; k++ {
				if !sc.next() {
					return sc.errf("BlockageNodes truncated")
				}
				fields := strings.Fields(sc.cur)
				if len(fields) < 2 {
					return sc.errf("blockage needs name and layer count")
				}
				ci, okc := r.cellIdx[fields[0]]
				if !okc {
					return sc.errf("blockage references unknown node %q", fields[0])
				}
				nl, err := parseInt(sc, fields[1])
				if err != nil {
					return err
				}
				b := db.RouteBlockage{Cell: ci}
				for j := 0; j < nl && 2+j < len(fields); j++ {
					l, err := parseInt(sc, fields[2+j])
					if err != nil {
						return err
					}
					// .route layers are 1-based.
					b.Layers = append(b.Layers, l-1)
				}
				ri.Blockages = append(ri.Blockages, b)
			}
		}
	}
	r.design.Route = ri
	return nil
}

func (r *reader) readFence(f io.Reader, name string) error {
	sc := newScanner(f, name)
	if err := sc.expectHeader("fence"); err != nil {
		return err
	}
	d := r.design
	for sc.next() {
		if key, _, ok := keyValue(sc.cur); ok && strings.EqualFold(key, "NumFences") {
			continue
		}
		// "FenceName NumRects : K"
		fields := strings.Fields(sc.cur)
		if len(fields) < 4 || !strings.EqualFold(fields[1], "NumRects") {
			return sc.errf("expected 'name NumRects : K', got %q", sc.cur)
		}
		k, err := parseInt(sc, fields[3])
		if err != nil {
			return err
		}
		rg := db.Region{Name: fields[0]}
		for j := 0; j < k; j++ {
			if !sc.next() {
				return sc.errf("fence %q truncated", rg.Name)
			}
			cf := strings.Fields(sc.cur)
			if len(cf) < 4 {
				return sc.errf("fence rect needs x1 y1 x2 y2")
			}
			var v [4]float64
			for i := 0; i < 4; i++ {
				if v[i], err = parseFloat(sc, cf[i]); err != nil {
					return err
				}
			}
			rg.Rects = append(rg.Rects, geom.NewRect(v[0], v[1], v[2], v[3]))
		}
		r.fenceIdx[rg.Name] = len(d.Regions)
		d.Regions = append(d.Regions, rg)
	}
	return nil
}

func (r *reader) readHier(f io.Reader, name string) error {
	sc := newScanner(f, name)
	if err := sc.expectHeader("hier"); err != nil {
		return err
	}
	d := r.design
	for sc.next() {
		if key, _, ok := keyValue(sc.cur); ok && strings.EqualFold(key, "NumModules") {
			continue
		}
		// "Module <name> : parent <idx> fence <fenceName|->"
		fields := strings.Fields(sc.cur)
		if len(fields) < 7 || !strings.EqualFold(fields[0], "Module") {
			return sc.errf("expected Module line, got %q", sc.cur)
		}
		mname := fields[1]
		parent, err := parseInt(sc, fields[4])
		if err != nil {
			return err
		}
		region := db.NoRegion
		if fields[6] != "-" {
			ri, ok := r.fenceIdx[fields[6]]
			if !ok {
				return sc.errf("module %q references unknown fence %q", mname, fields[6])
			}
			region = ri
		}
		mi := len(d.Modules)
		if parent >= 0 {
			if parent >= mi {
				return sc.errf("module %q parent %d not yet defined", mname, parent)
			}
			d.Modules[parent].Children = append(d.Modules[parent].Children, mi)
		}
		d.Modules = append(d.Modules, db.Module{Name: mname, Parent: parent, Region: region})
		// "NumCells : C" then C cell names.
		if !sc.next() {
			return sc.errf("module %q missing NumCells", mname)
		}
		key, vals, ok := keyValue(sc.cur)
		if !ok || !strings.EqualFold(key, "NumCells") {
			return sc.errf("expected NumCells for module %q", mname)
		}
		nc, err := parseInt1(sc, key, vals)
		if err != nil {
			return err
		}
		for j := 0; j < nc; j++ {
			if !sc.next() {
				return sc.errf("module %q cell list truncated", mname)
			}
			cn := strings.TrimSpace(sc.cur)
			ci, okc := r.cellIdx[cn]
			if !okc {
				return sc.errf("module %q lists unknown cell %q", mname, cn)
			}
			d.Cells[ci].Module = mi
			d.Modules[mi].Cells = append(d.Modules[mi].Cells, ci)
		}
	}
	return nil
}
