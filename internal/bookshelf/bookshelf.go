// Package bookshelf reads and writes the UCLA/ISPD Bookshelf placement
// format used by the DAC-2012-era routability contests: .aux, .nodes,
// .nets, .wts, .pl, .scl and the DAC-2012 .route file.
//
// Bookshelf has no standard encoding for fence regions or logical
// hierarchy, which this placer needs for hierarchical mixed-size designs.
// Two documented extension files fill the gap:
//
//	.fence — fence regions:
//	    UCLA fence 1.0
//	    NumFences : F
//	    FenceName NumRects : K
//	        x1 y1 x2 y2
//	        ...
//
//	.hier — hierarchy tree and membership:
//	    UCLA hier 1.0
//	    NumModules : M
//	    Module <name> : parent <index|-1> fence <fenceName|->
//	        NumCells : C
//	        cellName
//	        ...
//
// Both files are optional; designs without them load as flat, fence-free
// netlists. Reading and then writing a design reproduces it exactly up to
// float formatting, which the round-trip tests pin down.
//
// Pin offsets in .nets are measured from the node center (Bookshelf
// convention); the database stores offsets from the lower-left corner, and
// the reader/writer convert.
package bookshelf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"strconv"
	"strings"
)

// ErrInvalidDesign marks input that parsed but failed design validation
// (dangling references, inconsistent geometry, ...). It is wrapped into
// the reader's validation failures so errors.Is can classify them.
var ErrInvalidDesign = errors.New("invalid design")

// IsBadInput reports whether err stems from malformed or inconsistent
// design input — a parse error, a missing design file, or a validation
// failure — as opposed to an environmental failure. The placerd job
// server maps bad input to HTTP 400 and everything else to 500.
func IsBadInput(err error) bool {
	var pe *ParseError
	return errors.As(err, &pe) || errors.Is(err, fs.ErrNotExist) || errors.Is(err, ErrInvalidDesign)
}

// scanner wraps line-based parsing with position tracking, comment
// stripping and the "Key : values" splitting that all Bookshelf files use.
type scanner struct {
	s    *bufio.Scanner
	file string
	line int
	cur  string
	done bool
}

func newScanner(r io.Reader, file string) *scanner {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &scanner{s: s, file: file}
}

// next advances to the next non-empty, non-comment line, returning false at
// EOF. Leading/trailing whitespace is trimmed; '#' comments are stripped.
func (sc *scanner) next() bool {
	for sc.s.Scan() {
		sc.line++
		ln := sc.s.Text()
		if i := strings.IndexByte(ln, '#'); i >= 0 {
			ln = ln[:i]
		}
		ln = strings.TrimSpace(ln)
		if ln == "" {
			continue
		}
		sc.cur = ln
		return true
	}
	sc.done = true
	return false
}

// ParseError locates a syntax or consistency error in a Bookshelf file.
// Every malformed-input error the reader produces is (or wraps) one of
// these, so callers — the placerd job server in particular — can
// distinguish bad input (HTTP 400) from environmental failures (500) with
// errors.As, and surface the offending file and line to the user.
type ParseError struct {
	File string
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// errf builds a *ParseError tagged with the scanner's file and line.
func (sc *scanner) errf(format string, args ...any) error {
	return &ParseError{File: sc.file, Line: sc.line, Msg: fmt.Sprintf(format, args...)}
}

// keyValue splits "Key : v1 v2" into key and value fields. ok is false when
// the line has no colon.
func keyValue(line string) (key string, vals []string, ok bool) {
	i := strings.IndexByte(line, ':')
	if i < 0 {
		return "", nil, false
	}
	return strings.TrimSpace(line[:i]), strings.Fields(line[i+1:]), true
}

func parseFloat(sc *scanner, tok string) (float64, error) {
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, sc.errf("bad number %q", tok)
	}
	return v, nil
}

func parseInt(sc *scanner, tok string) (int, error) {
	v, err := strconv.Atoi(tok)
	if err != nil {
		return 0, sc.errf("bad integer %q", tok)
	}
	return v, nil
}

// parseFloat1 parses the first value of a "Key : value" line, failing with
// a ParseError — instead of an index panic — when the value list is empty.
func parseFloat1(sc *scanner, key string, vals []string) (float64, error) {
	if len(vals) == 0 {
		return 0, sc.errf("%s needs a value", key)
	}
	return parseFloat(sc, vals[0])
}

// parseInt1 is parseFloat1 for integers.
func parseInt1(sc *scanner, key string, vals []string) (int, error) {
	if len(vals) == 0 {
		return 0, sc.errf("%s needs a value", key)
	}
	return parseInt(sc, vals[0])
}

// expectHeader consumes the "UCLA <kind> 1.0" (or "<kind> 1.0") header line.
func (sc *scanner) expectHeader(kind string) error {
	if !sc.next() {
		return sc.errf("missing %s header", kind)
	}
	f := strings.Fields(sc.cur)
	// Accept "UCLA kind x.y" and "kind x.y".
	if len(f) >= 2 && strings.EqualFold(f[0], "UCLA") {
		f = f[1:]
	}
	if len(f) < 1 || !strings.EqualFold(f[0], kind) {
		return sc.errf("expected %s header, got %q", kind, sc.cur)
	}
	return nil
}

// Files names the per-extension members of one Bookshelf design.
type Files struct {
	Nodes, Nets, Wts, Pl, Scl, Route, Fence, Hier string
}

// classify assigns a file name to its slot by extension.
func (f *Files) classify(name string) {
	switch {
	case strings.HasSuffix(name, ".nodes"):
		f.Nodes = name
	case strings.HasSuffix(name, ".nets"):
		f.Nets = name
	case strings.HasSuffix(name, ".wts"):
		f.Wts = name
	case strings.HasSuffix(name, ".pl"):
		f.Pl = name
	case strings.HasSuffix(name, ".scl"):
		f.Scl = name
	case strings.HasSuffix(name, ".route"):
		f.Route = name
	case strings.HasSuffix(name, ".fence"):
		f.Fence = name
	case strings.HasSuffix(name, ".hier"):
		f.Hier = name
	}
}

// ParseAux parses the .aux directory file and returns the member file names.
func ParseAux(r io.Reader, name string) (Files, error) {
	sc := newScanner(r, name)
	var files Files
	if !sc.next() {
		return files, sc.errf("empty aux file")
	}
	_, vals, ok := keyValue(sc.cur)
	if !ok {
		// Some aux files omit the "RowBasedPlacement :" prefix.
		vals = strings.Fields(sc.cur)
	}
	for _, v := range vals {
		files.classify(v)
	}
	if files.Nodes == "" || files.Nets == "" {
		return files, sc.errf("aux file must reference .nodes and .nets")
	}
	return files, nil
}
