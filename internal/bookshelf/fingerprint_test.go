package bookshelf

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFingerprintRoundTrip pins the core property of the design fingerprint:
// a Bookshelf write/read cycle preserves it, so the content-addressed
// artifact store recognizes a re-exported design as the same problem.
func TestFingerprintRoundTrip(t *testing.T) {
	d := sample()
	want := d.Fingerprint()

	aux, err := WriteDesign(d, t.TempDir())
	if err != nil {
		t.Fatalf("WriteDesign: %v", err)
	}
	d1, err := ReadDesign(aux)
	if err != nil {
		t.Fatalf("ReadDesign: %v", err)
	}
	if got := d1.Fingerprint(); got != want {
		t.Fatalf("fingerprint changed across write/read:\n in-memory %x\n reloaded  %x", want, got)
	}

	// Second generation: the round trip is a fixpoint.
	aux2, err := WriteDesign(d1, t.TempDir())
	if err != nil {
		t.Fatalf("WriteDesign(gen2): %v", err)
	}
	d2, err := ReadDesign(aux2)
	if err != nil {
		t.Fatalf("ReadDesign(gen2): %v", err)
	}
	if got := d2.Fingerprint(); got != want {
		t.Fatalf("fingerprint drifted on second round trip: %x != %x", got, want)
	}
}

// TestFingerprintIgnoresFormatting reformats every file of a written bundle
// — injected comments, tabs for spaces, trailing whitespace — and checks the
// reloaded design fingerprints identically. Formatting is not content.
func TestFingerprintIgnoresFormatting(t *testing.T) {
	dir := t.TempDir()
	aux, err := WriteDesign(sample(), dir)
	if err != nil {
		t.Fatalf("WriteDesign: %v", err)
	}
	d1, err := ReadDesign(aux)
	if err != nil {
		t.Fatalf("ReadDesign: %v", err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		p := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for i, ln := range strings.Split(string(data), "\n") {
			out = append(out, strings.ReplaceAll(ln, " ", "\t")+"  ")
			if i == 0 {
				out = append(out, "# injected by TestFingerprintIgnoresFormatting")
			}
		}
		if err := os.WriteFile(p, []byte(strings.Join(out, "\n")), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	d2, err := ReadDesign(aux)
	if err != nil {
		t.Fatalf("ReadDesign(reformatted): %v", err)
	}
	if d1.Fingerprint() != d2.Fingerprint() {
		t.Fatal("reformatting the Bookshelf bundle changed the fingerprint")
	}
}
