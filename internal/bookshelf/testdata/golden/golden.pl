UCLA pl 1.0
cellA    0    0 : N
cellB   20   12 : FS
macro1  60   24 : N /FIXED
pad_in   0   60 : N /FIXED_NI
cellC   40    0 : N
