package bookshelf

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/db"
)

// WriteDesign writes all Bookshelf files for the design into dir, using the
// design name as the base file name, and returns the path of the .aux file.
func WriteDesign(d *db.Design, dir string) (string, error) {
	base := d.Name
	if base == "" {
		base = "design"
	}
	files := Files{
		Nodes: base + ".nodes",
		Nets:  base + ".nets",
		Wts:   base + ".wts",
		Pl:    base + ".pl",
		Scl:   base + ".scl",
	}
	if d.Route != nil {
		files.Route = base + ".route"
	}
	if len(d.Regions) > 0 {
		files.Fence = base + ".fence"
	}
	if len(d.Modules) > 0 {
		files.Hier = base + ".hier"
	}
	writers := []struct {
		file string
		fn   func(io.Writer, *db.Design) error
	}{
		{files.Nodes, writeNodes},
		{files.Nets, writeNets},
		{files.Wts, writeWts},
		{files.Pl, writePl},
		{files.Scl, writeScl},
		{files.Route, writeRoute},
		{files.Fence, writeFence},
		{files.Hier, writeHier},
	}
	for _, w := range writers {
		if w.file == "" {
			continue
		}
		if err := writeFile(filepath.Join(dir, w.file), d, w.fn); err != nil {
			return "", err
		}
	}
	auxPath := filepath.Join(dir, base+".aux")
	f, err := os.Create(auxPath)
	if err != nil {
		return "", err
	}
	defer f.Close()
	fmt.Fprintf(f, "RowBasedPlacement : %s %s %s %s %s", files.Nodes, files.Nets, files.Wts, files.Pl, files.Scl)
	for _, extra := range []string{files.Route, files.Fence, files.Hier} {
		if extra != "" {
			fmt.Fprintf(f, " %s", extra)
		}
	}
	fmt.Fprintln(f)
	return auxPath, nil
}

func writeFile(path string, d *db.Design, fn func(io.Writer, *db.Design) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := fn(w, d); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeNodes(w io.Writer, d *db.Design) error {
	terms := 0
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			terms++
		}
	}
	fmt.Fprintf(w, "UCLA nodes 1.0\n\nNumNodes : %d\nNumTerminals : %d\n", len(d.Cells), terms)
	for i := range d.Cells {
		c := &d.Cells[i]
		switch {
		case c.Kind == db.Terminal && c.Area() == 0:
			fmt.Fprintf(w, "%s %g %g terminal_NI\n", c.Name, c.BaseW, c.BaseH)
		case c.Fixed:
			fmt.Fprintf(w, "%s %g %g terminal\n", c.Name, c.BaseW, c.BaseH)
		default:
			fmt.Fprintf(w, "%s %g %g\n", c.Name, c.BaseW, c.BaseH)
		}
	}
	return nil
}

func writeNets(w io.Writer, d *db.Design) error {
	fmt.Fprintf(w, "UCLA nets 1.0\n\nNumNets : %d\nNumPins : %d\n", len(d.Nets), len(d.Pins))
	for ni := range d.Nets {
		net := &d.Nets[ni]
		fmt.Fprintf(w, "NetDegree : %d %s\n", net.Degree(), net.Name)
		for _, pi := range net.Pins {
			p := &d.Pins[pi]
			c := &d.Cells[p.Cell]
			// Convert lower-left-relative offsets back to center-relative.
			dx := p.Offset.X - c.BaseW/2
			dy := p.Offset.Y - c.BaseH/2
			fmt.Fprintf(w, "\t%s B : %g %g\n", c.Name, dx, dy)
		}
	}
	return nil
}

func writeWts(w io.Writer, d *db.Design) error {
	fmt.Fprintf(w, "UCLA wts 1.0\n\n")
	for i := range d.Nets {
		wt := d.Nets[i].Weight
		if wt == 0 {
			wt = 1
		}
		fmt.Fprintf(w, "%s %g\n", d.Nets[i].Name, wt)
	}
	return nil
}

// WritePl writes just the placement (.pl) file for the design — the
// artifact the placer CLIs and the placerd result endpoint ship.
func WritePl(w io.Writer, d *db.Design) error {
	return writePl(w, d)
}

func writePl(w io.Writer, d *db.Design) error {
	fmt.Fprintf(w, "UCLA pl 1.0\n\n")
	for i := range d.Cells {
		c := &d.Cells[i]
		fmt.Fprintf(w, "%s %g %g : %s", c.Name, c.Pos.X, c.Pos.Y, c.Orient)
		if c.Fixed {
			if c.Kind == db.Terminal && c.Area() == 0 {
				fmt.Fprintf(w, " /FIXED_NI")
			} else {
				fmt.Fprintf(w, " /FIXED")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

func writeScl(w io.Writer, d *db.Design) error {
	fmt.Fprintf(w, "UCLA scl 1.0\n\nNumRows : %d\n", len(d.Rows))
	for i := range d.Rows {
		r := &d.Rows[i]
		fmt.Fprintf(w, "CoreRow Horizontal\n")
		fmt.Fprintf(w, " Coordinate : %g\n", r.Y)
		fmt.Fprintf(w, " Height : %g\n", r.Height)
		fmt.Fprintf(w, " Sitewidth : %g\n", r.SiteWidth)
		fmt.Fprintf(w, " Sitespacing : %g\n", r.SiteWidth)
		fmt.Fprintf(w, " Siteorient : 1\n Sitesymmetry : 1\n")
		fmt.Fprintf(w, " SubrowOrigin : %g NumSites : %d\n", r.X, r.NumSites)
		fmt.Fprintf(w, "End\n")
	}
	return nil
}

func writeRoute(w io.Writer, d *db.Design) error {
	ri := d.Route
	fmt.Fprintf(w, "route 1.0\n\n")
	fmt.Fprintf(w, "Grid : %d %d %d\n", ri.GridX, ri.GridY, ri.Layers)
	writeFloats := func(name string, vals []float64) {
		fmt.Fprintf(w, "%s :", name)
		for _, v := range vals {
			fmt.Fprintf(w, " %g", v)
		}
		fmt.Fprintln(w)
	}
	writeFloats("VerticalCapacity", ri.VertCap)
	writeFloats("HorizontalCapacity", ri.HorizCap)
	writeFloats("MinWireWidth", ri.MinWidth)
	writeFloats("MinWireSpacing", ri.MinSpacing)
	writeFloats("ViaSpacing", ri.ViaSpacing)
	fmt.Fprintf(w, "GridOrigin : %g %g\n", ri.Origin.X, ri.Origin.Y)
	fmt.Fprintf(w, "TileSize : %g %g\n", ri.TileW, ri.TileH)
	fmt.Fprintf(w, "BlockagePorosity : %g\n", ri.BlockagePorosity)
	fmt.Fprintf(w, "NumNiTerminals : %d\n", len(ri.NiTerminals))
	for _, ci := range ri.NiTerminals {
		fmt.Fprintf(w, "\t%s 1\n", d.Cells[ci].Name)
	}
	fmt.Fprintf(w, "NumBlockageNodes : %d\n", len(ri.Blockages))
	for _, b := range ri.Blockages {
		fmt.Fprintf(w, "\t%s %d", d.Cells[b.Cell].Name, len(b.Layers))
		for _, l := range b.Layers {
			fmt.Fprintf(w, " %d", l+1)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func writeFence(w io.Writer, d *db.Design) error {
	fmt.Fprintf(w, "UCLA fence 1.0\n\nNumFences : %d\n", len(d.Regions))
	for i := range d.Regions {
		rg := &d.Regions[i]
		fmt.Fprintf(w, "%s NumRects : %d\n", rg.Name, len(rg.Rects))
		for _, r := range rg.Rects {
			fmt.Fprintf(w, "\t%g %g %g %g\n", r.Lo.X, r.Lo.Y, r.Hi.X, r.Hi.Y)
		}
	}
	return nil
}

func writeHier(w io.Writer, d *db.Design) error {
	fmt.Fprintf(w, "UCLA hier 1.0\n\nNumModules : %d\n", len(d.Modules))
	for mi := range d.Modules {
		m := &d.Modules[mi]
		fence := "-"
		if m.Region != db.NoRegion {
			fence = d.Regions[m.Region].Name
		}
		fmt.Fprintf(w, "Module %s : parent %d fence %s\n", m.Name, m.Parent, fence)
		fmt.Fprintf(w, "NumCells : %d\n", len(m.Cells))
		for _, ci := range m.Cells {
			fmt.Fprintf(w, "\t%s\n", d.Cells[ci].Name)
		}
	}
	return nil
}
