package bookshelf

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/geom"
)

// sample builds a design exercising every feature the format carries:
// std cells, a movable macro, a fixed macro, terminals, weighted nets,
// rows, a routing grid with blockages, fences and hierarchy.
func sample() *db.Design {
	b := db.NewBuilder("samp", geom.NewRect(0, 0, 200, 100))
	root := b.AddModule("top", db.NoModule, db.NoRegion)
	f0 := b.AddRegion("fence_cpu", geom.NewRect(0, 0, 60, 40), geom.NewRect(80, 0, 120, 40))
	cpu := b.AddModule("cpu", root, f0)

	c0 := b.AddStdCell("c0", 4, 10)
	c1 := b.AddStdCell("c1", 6, 10)
	mm := b.AddMacro("mov_macro", 30, 30, false)
	fm := b.AddMacro("fix_macro", 40, 40, true)
	t0 := b.AddTerminal("pad0", geom.Point{X: 0, Y: 50})

	b.AssignModule(c0, cpu)
	b.AssignModule(c1, root)

	b.AddNet("n0", 1, b.CenterConn(c0), b.CenterConn(c1), db.Conn{Cell: t0})
	b.AddNet("n1", 2.5, db.Conn{Cell: mm, Offset: geom.Point{X: 1, Y: 2}}, b.CenterConn(c1), b.CenterConn(fm))
	b.MakeRows(10, 1)
	b.SetRoute(&db.RouteInfo{
		GridX: 20, GridY: 10, Layers: 2,
		VertCap: []float64{0, 20}, HorizCap: []float64{20, 0},
		MinWidth: []float64{1, 1}, MinSpacing: []float64{1, 1}, ViaSpacing: []float64{0, 0},
		Origin: geom.Point{X: 0, Y: 0}, TileW: 10, TileH: 10,
		BlockagePorosity: 0.2,
		Blockages:        []db.RouteBlockage{{Cell: fm, Layers: []int{0, 1}}},
	})
	d := b.MustDesign()
	d.Cells[c0].Pos = geom.Point{X: 10, Y: 0}
	d.Cells[c1].Pos = geom.Point{X: 30, Y: 10}
	d.Cells[mm].Pos = geom.Point{X: 100, Y: 50}
	d.Cells[mm].Orient = db.FN
	d.Cells[fm].Pos = geom.Point{X: 150, Y: 0}
	return d
}

func TestRoundTrip(t *testing.T) {
	d := sample()
	dir := t.TempDir()
	auxPath, err := WriteDesign(d, dir)
	if err != nil {
		t.Fatalf("WriteDesign: %v", err)
	}
	got, err := ReadDesign(auxPath)
	if err != nil {
		t.Fatalf("ReadDesign: %v", err)
	}
	if got.Name != "samp" {
		t.Errorf("name = %q", got.Name)
	}
	if len(got.Cells) != len(d.Cells) || len(got.Nets) != len(d.Nets) || len(got.Pins) != len(d.Pins) {
		t.Fatalf("sizes differ: cells %d/%d nets %d/%d pins %d/%d",
			len(got.Cells), len(d.Cells), len(got.Nets), len(d.Nets), len(got.Pins), len(d.Pins))
	}
	for i := range d.Cells {
		want, have := &d.Cells[i], &got.Cells[i]
		if want.Name != have.Name || want.Kind != have.Kind || want.Fixed != have.Fixed {
			t.Errorf("cell %d identity differs: want %+v have %+v", i, want, have)
		}
		if want.BaseW != have.BaseW || want.BaseH != have.BaseH {
			t.Errorf("cell %d dims differ", i)
		}
		if want.Pos != have.Pos || want.Orient != have.Orient {
			t.Errorf("cell %d placement differs: want %v/%v have %v/%v", i, want.Pos, want.Orient, have.Pos, have.Orient)
		}
		if want.Module != have.Module {
			t.Errorf("cell %d module differs: want %d have %d", i, want.Module, have.Module)
		}
	}
	for i := range d.Nets {
		if d.Nets[i].Name != got.Nets[i].Name || d.Nets[i].Weight != got.Nets[i].Weight {
			t.Errorf("net %d differs: want %+v have %+v", i, d.Nets[i], got.Nets[i])
		}
	}
	// Pin offsets survive the center-relative conversion.
	for i := range d.Pins {
		dp, gp := d.Pins[i], got.Pins[i]
		if dp.Cell != gp.Cell || dp.Net != gp.Net {
			t.Errorf("pin %d wiring differs", i)
		}
		if math.Abs(dp.Offset.X-gp.Offset.X) > 1e-9 || math.Abs(dp.Offset.Y-gp.Offset.Y) > 1e-9 {
			t.Errorf("pin %d offset differs: want %v have %v", i, dp.Offset, gp.Offset)
		}
	}
	if len(got.Rows) != len(d.Rows) {
		t.Errorf("rows differ: %d vs %d", len(got.Rows), len(d.Rows))
	}
	// HPWL must be identical on both databases.
	if math.Abs(d.HPWL()-got.HPWL()) > 1e-6 {
		t.Errorf("HPWL differs: %v vs %v", d.HPWL(), got.HPWL())
	}
	// Fences.
	if len(got.Regions) != 1 || got.Regions[0].Name != "fence_cpu" || len(got.Regions[0].Rects) != 2 {
		t.Fatalf("fence not preserved: %+v", got.Regions)
	}
	// Hierarchy: cell c0 inherits the cpu fence.
	if rg := got.CellRegion(got.CellIndex("c0")); rg != 0 {
		t.Errorf("CellRegion(c0) = %d", rg)
	}
	// Route info.
	if got.Route == nil {
		t.Fatal("route info lost")
	}
	if got.Route.GridX != 20 || got.Route.Layers != 2 || got.Route.TileW != 10 {
		t.Errorf("route grid differs: %+v", got.Route)
	}
	if len(got.Route.Blockages) != 1 || got.Route.Blockages[0].Cell != got.CellIndex("fix_macro") {
		t.Errorf("blockages differ: %+v", got.Route.Blockages)
	}
	if got.Route.BlockagePorosity != 0.2 {
		t.Errorf("porosity = %v", got.Route.BlockagePorosity)
	}
	// Movable macro must be classified macro (taller than row height).
	if got.Cells[got.CellIndex("mov_macro")].Kind != db.Macro {
		t.Error("movable macro lost its kind")
	}
	if got.Cells[got.CellIndex("mov_macro")].Movable() != true {
		t.Error("movable macro became fixed")
	}
}

func TestParseAuxVariants(t *testing.T) {
	cases := []struct {
		in      string
		wantErr bool
	}{
		{"RowBasedPlacement : a.nodes a.nets a.wts a.pl a.scl", false},
		{"a.nodes a.nets", false},
		{"# comment\nRowBasedPlacement : a.nodes a.nets", false},
		{"RowBasedPlacement : a.pl", true},
		{"", true},
	}
	for _, c := range cases {
		_, err := ParseAux(strings.NewReader(c.in), "t.aux")
		if (err != nil) != c.wantErr {
			t.Errorf("ParseAux(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
		}
	}
}

func TestReaderRejectsCorruptNodes(t *testing.T) {
	cases := []string{
		"UCLA nodes 1.0\nc0 4",             // missing height
		"UCLA nodes 1.0\nc0 x 2",           // bad number
		"UCLA nodes 1.0\nc0 4 2\nc0 4 2",   // duplicate
		"UCLA nodes 1.0\nc0 4 2 weirdattr", // unknown attribute
		"UCLA nets 1.0\nNumNodes : 1",      // wrong header
	}
	for _, in := range cases {
		r := &reader{design: &db.Design{}, cellIdx: map[string]int{}}
		if err := r.readNodes(strings.NewReader(in), "t.nodes"); err == nil {
			t.Errorf("readNodes(%q) accepted corrupt input", in)
		}
	}
}

func TestReaderRejectsCorruptNets(t *testing.T) {
	base := "UCLA nodes 1.0\nc0 4 2\nc1 4 2\n"
	r := &reader{design: &db.Design{}, cellIdx: map[string]int{}}
	if err := r.readNodes(strings.NewReader(base), "t.nodes"); err != nil {
		t.Fatal(err)
	}
	cases := []string{
		"UCLA nets 1.0\nNetDegree : 2 n0\nc0 B : 0 0",   // truncated
		"UCLA nets 1.0\nNetDegree : 1 n0\nnope B : 0 0", // unknown node
		"UCLA nets 1.0\njunk line",                      // no NetDegree
	}
	for _, in := range cases {
		r2 := &reader{design: &db.Design{Cells: r.design.Cells}, cellIdx: r.cellIdx}
		if err := r2.readNets(strings.NewReader(in), "t.nets"); err == nil {
			t.Errorf("readNets(%q) accepted corrupt input", in)
		}
	}
}

func TestWriteCreatesAllFiles(t *testing.T) {
	d := sample()
	dir := t.TempDir()
	if _, err := WriteDesign(d, dir); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{".aux", ".nodes", ".nets", ".wts", ".pl", ".scl", ".route", ".fence", ".hier"} {
		if _, err := os.Stat(filepath.Join(dir, "samp"+ext)); err != nil {
			t.Errorf("missing %s: %v", ext, err)
		}
	}
}

func TestMinimalDesignWithoutOptionalFiles(t *testing.T) {
	b := db.NewBuilder("mini", geom.NewRect(0, 0, 20, 20))
	a := b.AddStdCell("a", 2, 2)
	c := b.AddStdCell("b", 2, 2)
	b.AddNet("n", 1, b.CenterConn(a), b.CenterConn(c))
	b.MakeRows(2, 1)
	d := b.MustDesign()
	dir := t.TempDir()
	aux, err := WriteDesign(d, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadDesign(aux)
	if err != nil {
		t.Fatal(err)
	}
	if got.Route != nil || len(got.Regions) != 0 || len(got.Modules) != 0 {
		t.Error("optional structures materialized from nothing")
	}
	if got.Die.Empty() {
		t.Error("die not derived from rows")
	}
}

func TestDieDerivedFromRows(t *testing.T) {
	d := sample()
	dir := t.TempDir()
	aux, err := WriteDesign(d, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadDesign(aux)
	if err != nil {
		t.Fatal(err)
	}
	// Rows span the full die in sample().
	if got.Die.W() != d.Die.W() || got.Die.H() != d.Die.H() {
		t.Errorf("die = %v, want %v", got.Die, d.Die)
	}
}

func TestReaderRejectsCorruptRoute(t *testing.T) {
	base := "UCLA nodes 1.0\nc0 4 2\n"
	mk := func() *reader {
		r := &reader{design: &db.Design{}, cellIdx: map[string]int{}}
		if err := r.readNodes(strings.NewReader(base), "t.nodes"); err != nil {
			t.Fatal(err)
		}
		return r
	}
	cases := []string{
		"route 1.0\nGrid : 2",                         // short grid
		"route 1.0\nGrid : x 2 1",                     // bad int
		"route 1.0\nTileSize : 10",                    // short tile
		"route 1.0\nNumBlockageNodes : 1\n\tnope 1 1", // unknown node
		"route 1.0\nNumBlockageNodes : 2\n\tc0 1 1",   // truncated list
		"UCLA pl 1.0\nGrid : 2 2 1",                   // wrong header
	}
	for _, in := range cases {
		if err := mk().readRoute(strings.NewReader(in), "t.route"); err == nil {
			t.Errorf("readRoute(%q) accepted corrupt input", in)
		}
	}
}

func TestReaderRejectsCorruptFence(t *testing.T) {
	cases := []string{
		"UCLA fence 1.0\nweird line here x",              // malformed header line
		"UCLA fence 1.0\nf0 NumRects : 1",                // truncated rect list
		"UCLA fence 1.0\nf0 NumRects : 1\n\t1 2 3",       // short rect
		"UCLA fence 1.0\nf0 NumRects : 1\n\t1 2 three 4", // bad float
	}
	for _, in := range cases {
		r := &reader{design: &db.Design{}, cellIdx: map[string]int{}, fenceIdx: map[string]int{}}
		if err := r.readFence(strings.NewReader(in), "t.fence"); err == nil {
			t.Errorf("readFence(%q) accepted corrupt input", in)
		}
	}
}

func TestReaderRejectsCorruptHier(t *testing.T) {
	base := "UCLA nodes 1.0\nc0 4 2\n"
	cases := []string{
		"UCLA hier 1.0\nModule m : parent 5 fence -\nNumCells : 0",           // forward parent
		"UCLA hier 1.0\nModule m : parent -1 fence nofence\nNumCells : 0",    // unknown fence
		"UCLA hier 1.0\nModule m : parent -1 fence -\nNumCells : 1\n\tghost", // unknown cell
		"UCLA hier 1.0\nModule m : parent -1 fence -",                        // missing NumCells
		"UCLA hier 1.0\nnot a module line",                                   // malformed
	}
	for _, in := range cases {
		r := &reader{design: &db.Design{}, cellIdx: map[string]int{}, fenceIdx: map[string]int{}}
		if err := r.readNodes(strings.NewReader(base), "t.nodes"); err != nil {
			t.Fatal(err)
		}
		if err := r.readHier(strings.NewReader(in), "t.hier"); err == nil {
			t.Errorf("readHier(%q) accepted corrupt input", in)
		}
	}
}

func TestWtsIgnoresUnknownNets(t *testing.T) {
	r := &reader{design: &db.Design{Nets: []db.Net{{Name: "n0", Weight: 1}}}, cellIdx: map[string]int{}}
	in := "UCLA wts 1.0\nn0 2.5\nghost 9\n"
	if err := r.readWts(strings.NewReader(in), "t.wts"); err != nil {
		t.Fatal(err)
	}
	if r.design.Nets[0].Weight != 2.5 {
		t.Errorf("weight = %v", r.design.Nets[0].Weight)
	}
}

// TestGoldenDesign reads the hand-written Bookshelf bundle in testdata and
// checks the parsed structure in detail: center-relative pin offsets,
// fixed/NI terminal classification, row parsing, routing blockages (with
// 1-based layer conversion), fences and hierarchy inheritance.
func TestGoldenDesign(t *testing.T) {
	d, err := ReadDesign("testdata/golden/golden.aux")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != 5 || len(d.Nets) != 2 || len(d.Pins) != 5 || len(d.Rows) != 5 {
		t.Fatalf("sizes: %d cells %d nets %d pins %d rows", len(d.Cells), len(d.Nets), len(d.Pins), len(d.Rows))
	}
	// Kinds: macro1 is a fixed macro, pad_in a zero-area terminal.
	m := &d.Cells[d.CellIndex("macro1")]
	if m.Kind != db.Macro || !m.Fixed {
		t.Errorf("macro1 kind=%v fixed=%v", m.Kind, m.Fixed)
	}
	p := &d.Cells[d.CellIndex("pad_in")]
	if p.Kind != db.Terminal || !p.Fixed {
		t.Errorf("pad_in kind=%v fixed=%v", p.Kind, p.Fixed)
	}
	// cellB has orientation FS from the .pl.
	bb := &d.Cells[d.CellIndex("cellB")]
	if bb.Orient != db.FS {
		t.Errorf("cellB orient = %v", bb.Orient)
	}
	// Net weight from .wts.
	if d.Nets[0].Weight != 2 {
		t.Errorf("n_clk weight = %v", d.Nets[0].Weight)
	}
	// Pin position of cellA's clk pin: ll (0,0) + center (4,6) + (0,2).
	pos := d.PinPos(d.Nets[0].Pins[0])
	if pos.X != 4 || pos.Y != 8 {
		t.Errorf("cellA clk pin at %v", pos)
	}
	// Route info: blockage layers are 1-based in the file, 0-based here.
	if d.Route == nil || len(d.Route.Blockages) != 1 {
		t.Fatal("route blockages missing")
	}
	bl := d.Route.Blockages[0]
	if bl.Cell != d.CellIndex("macro1") || len(bl.Layers) != 2 || bl.Layers[0] != 0 || bl.Layers[1] != 1 {
		t.Errorf("blockage = %+v", bl)
	}
	if len(d.Route.NiTerminals) != 1 || d.Route.NiTerminals[0] != d.CellIndex("pad_in") {
		t.Errorf("ni terminals = %v", d.Route.NiTerminals)
	}
	// Hierarchy: cellA inherits the datapath fence through module dp.
	if rg := d.CellRegion(d.CellIndex("cellA")); rg != 0 {
		t.Errorf("cellA region = %d", rg)
	}
	if rg := d.CellRegion(d.CellIndex("cellC")); rg != db.NoRegion {
		t.Errorf("cellC region = %d", rg)
	}
	if got := d.ModulePath(1); got != "/top/dp" {
		t.Errorf("module path = %q", got)
	}
	// Die derived from rows: 120 wide, 60 tall.
	if d.Die.W() != 120 || d.Die.H() != 60 {
		t.Errorf("die = %v", d.Die)
	}
}
