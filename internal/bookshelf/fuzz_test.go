package bookshelf

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/db"
)

// The fuzz targets pin down the reader's error contract: malformed input of
// any shape must come back as a *ParseError — never a panic. Each target
// seeds from the golden Bookshelf bundle plus hand-written near-miss inputs
// (empty value lists, truncated sections, giant counts) that previously
// reached unguarded vals[0] indexing.

// requireParseError fails the fuzz run when a reader returned an error that
// is not (wrapping) a *ParseError.
func requireParseError(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		return
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("malformed input produced non-ParseError: %v", err)
	}
}

// seedGolden adds the golden file for ext (e.g. ".nets") to the corpus.
func seedGolden(f *testing.F, ext string) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden", "golden"+ext))
	if err != nil {
		f.Fatalf("reading golden seed: %v", err)
	}
	f.Add(string(data))
}

// fuzzReader builds a reader preloaded with a few nodes so nets, route and
// hier content can resolve cell names, mirroring the state ReadDesign has
// after .nodes parsing.
func fuzzReader() *reader {
	r := &reader{
		design:   &db.Design{Name: "fuzz"},
		cellIdx:  make(map[string]int),
		fenceIdx: make(map[string]int),
	}
	for i, n := range []string{"a", "b", "c"} {
		r.cellIdx[n] = i
		r.design.Cells = append(r.design.Cells, db.Cell{
			Name: n, BaseW: 2, BaseH: 2,
			Kind: db.StdCell, Region: db.NoRegion, Module: db.NoModule, Inflate: 1,
		})
	}
	return r
}

func FuzzReadAux(f *testing.F) {
	seedGolden(f, ".aux")
	f.Add("RowBasedPlacement : d.nodes d.nets d.pl d.scl d.wts d.route\n")
	f.Add("d.nodes d.nets\n")
	f.Add("RowBasedPlacement :\n")
	f.Add("")
	f.Add("#comment only\n")
	f.Fuzz(func(t *testing.T, data string) {
		_, err := ParseAux(strings.NewReader(data), "fuzz.aux")
		requireParseError(t, err)
	})
}

func FuzzReadNets(f *testing.F) {
	seedGolden(f, ".nets")
	f.Add("UCLA nets 1.0\nNetDegree : 2 n0\na I : 0 0\nb O : 0.5 -0.5\n")
	f.Add("UCLA nets 1.0\nNetDegree :\n")
	f.Add("UCLA nets 1.0\nNetDegree : 1 x\nq\n")
	f.Add("UCLA nets 1.0\nNetDegree : 999999999 big\na\n")
	f.Add("UCLA nets 1.0\nNetDegree : 2 t\na I :\nb O : z z\n")
	f.Fuzz(func(t *testing.T, data string) {
		r := fuzzReader()
		requireParseError(t, r.readNets(strings.NewReader(data), "fuzz.nets"))
	})
}

func FuzzReadScl(f *testing.F) {
	seedGolden(f, ".scl")
	f.Add("UCLA scl 1.0\nNumRows : 1\nCoreRow Horizontal\nCoordinate :\nEnd\n")
	f.Add("UCLA scl 1.0\nCoreRow Horizontal\nSubrowOrigin : 0 NumSites :\nEnd\n")
	f.Add("UCLA scl 1.0\nCoreRow Horizontal\nHeight :\nSitewidth :\nEnd\n")
	f.Fuzz(func(t *testing.T, data string) {
		r := fuzzReader()
		requireParseError(t, r.readScl(strings.NewReader(data), "fuzz.scl"))
	})
}

func FuzzReadRoute(f *testing.F) {
	seedGolden(f, ".route")
	f.Add("route 1.0\nGrid : 2 2 2\nBlockagePorosity :\n")
	f.Add("route 1.0\nNumNiTerminals :\n")
	f.Add("route 1.0\nNumBlockageNodes : 1\na\n")
	f.Add("route 1.0\nGrid :\n")
	f.Fuzz(func(t *testing.T, data string) {
		r := fuzzReader()
		requireParseError(t, r.readRoute(strings.NewReader(data), "fuzz.route"))
	})
}

func FuzzReadHier(f *testing.F) {
	seedGolden(f, ".hier")
	f.Add("UCLA hier 1.0\nModule top : parent -1 fence -\nNumCells :\n")
	f.Add("UCLA hier 1.0\nModule top : parent -1 fence -\nNumCells : 1\na\n")
	f.Add("UCLA hier 1.0\nModule top : parent 5 fence -\nNumCells : 0\n")
	f.Fuzz(func(t *testing.T, data string) {
		r := fuzzReader()
		requireParseError(t, r.readHier(strings.NewReader(data), "fuzz.hier"))
	})
}

// TestEmptyValueLines locks in the ParseError (not panic) behavior for
// "Key :" lines with no value, the regression the fuzz targets first found.
func TestEmptyValueLines(t *testing.T) {
	cases := []struct {
		name string
		run  func(r *reader, in string) error
		in   string
	}{
		{"scl-coordinate", func(r *reader, in string) error { return r.readScl(strings.NewReader(in), "t.scl") },
			"UCLA scl 1.0\nCoreRow Horizontal\nCoordinate :\nEnd\n"},
		{"scl-height", func(r *reader, in string) error { return r.readScl(strings.NewReader(in), "t.scl") },
			"UCLA scl 1.0\nCoreRow Horizontal\nHeight :\nEnd\n"},
		{"scl-sitewidth", func(r *reader, in string) error { return r.readScl(strings.NewReader(in), "t.scl") },
			"UCLA scl 1.0\nCoreRow Horizontal\nSitewidth :\nEnd\n"},
		{"scl-subroworigin", func(r *reader, in string) error { return r.readScl(strings.NewReader(in), "t.scl") },
			"UCLA scl 1.0\nCoreRow Horizontal\nSubrowOrigin :\nEnd\n"},
		{"route-blockageporosity", func(r *reader, in string) error { return r.readRoute(strings.NewReader(in), "t.route") },
			"route 1.0\nBlockagePorosity :\n"},
		{"route-niterminals", func(r *reader, in string) error { return r.readRoute(strings.NewReader(in), "t.route") },
			"route 1.0\nNumNiTerminals :\n"},
		{"route-blockagenodes", func(r *reader, in string) error { return r.readRoute(strings.NewReader(in), "t.route") },
			"route 1.0\nNumBlockageNodes :\n"},
		{"hier-numcells", func(r *reader, in string) error { return r.readHier(strings.NewReader(in), "t.hier") },
			"UCLA hier 1.0\nModule top : parent -1 fence -\nNumCells :\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(fuzzReader(), tc.in)
			if err == nil {
				t.Fatal("want error for empty value list, got nil")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("want *ParseError, got %T: %v", err, err)
			}
		})
	}
}
