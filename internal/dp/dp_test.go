package dp

import (
	"testing"

	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/legal"
)

func TestPermutations(t *testing.T) {
	if got := len(permutations(3)); got != 6 {
		t.Errorf("3! = %d", got)
	}
	if got := len(permutations(1)); got != 1 {
		t.Errorf("1! = %d", got)
	}
	seen := map[string]bool{}
	for _, p := range permutations(3) {
		key := ""
		for _, v := range p {
			key += string(rune('0' + v))
		}
		if seen[key] {
			t.Errorf("duplicate permutation %s", key)
		}
		seen[key] = true
	}
}

// crossed builds two cell pairs whose nets are crossed; a global swap of
// the two middle cells uncrosses them.
func TestGlobalSwapUncrosses(t *testing.T) {
	b := db.NewBuilder("sw", geom.NewRect(0, 0, 100, 10))
	l := b.AddTerminal("tl", geom.Point{X: 0, Y: 5})
	r := b.AddTerminal("tr", geom.Point{X: 100, Y: 5})
	a := b.AddStdCell("a", 4, 10)
	c := b.AddStdCell("c", 4, 10)
	b.AddNet("nl", 1, db.Conn{Cell: l}, b.CenterConn(a))
	b.AddNet("nr", 1, db.Conn{Cell: r}, b.CenterConn(c))
	b.MakeRows(10, 1)
	d := b.MustDesign()
	// a (connected left) sits right; c (connected right) sits left.
	d.Cells[a].Pos = geom.Point{X: 80, Y: 0}
	d.Cells[c].Pos = geom.Point{X: 20, Y: 0}
	before := d.HPWL()
	res := Optimize(d, Options{Passes: 1, SwapRadius: 20})
	if res.Swaps < 1 {
		t.Fatalf("expected a swap, got %+v", res)
	}
	if res.After >= before {
		t.Errorf("HPWL did not improve: %v -> %v", before, res.After)
	}
	if d.Cells[a].Pos.X > d.Cells[c].Pos.X {
		t.Error("cells not uncrossed")
	}
}

func TestRowShiftMovesTowardNet(t *testing.T) {
	b := db.NewBuilder("sh", geom.NewRect(0, 0, 100, 10))
	tr := b.AddTerminal("t", geom.Point{X: 90, Y: 5})
	a := b.AddStdCell("a", 4, 10)
	b.AddNet("n", 1, db.Conn{Cell: tr}, b.CenterConn(a))
	b.MakeRows(10, 1)
	d := b.MustDesign()
	d.Cells[a].Pos = geom.Point{X: 10, Y: 0}
	res := Optimize(d, Options{Passes: 1})
	if res.Shifts < 1 {
		t.Fatalf("expected a shift: %+v", res)
	}
	if got := d.Cells[a].Pos.X; got < 80 {
		t.Errorf("cell only moved to %v", got)
	}
}

func TestLocalReorderFixesTriple(t *testing.T) {
	b := db.NewBuilder("re", geom.NewRect(0, 0, 60, 10))
	tl := b.AddTerminal("tl", geom.Point{X: 0, Y: 5})
	tr := b.AddTerminal("tr", geom.Point{X: 60, Y: 5})
	a := b.AddStdCell("a", 4, 10) // wants left
	c := b.AddStdCell("c", 4, 10) // wants right
	e := b.AddStdCell("e", 4, 10) // middle, unconnected
	b.AddNet("nl", 1, db.Conn{Cell: tl}, b.CenterConn(a))
	b.AddNet("nr", 1, db.Conn{Cell: tr}, b.CenterConn(c))
	b.MakeRows(10, 1)
	d := b.MustDesign()
	// Order on the row: c, e, a (worst case).
	d.Cells[c].Pos = geom.Point{X: 20, Y: 0}
	d.Cells[e].Pos = geom.Point{X: 24, Y: 0}
	d.Cells[a].Pos = geom.Point{X: 28, Y: 0}
	before := d.HPWL()
	res := Optimize(d, Options{Passes: 2})
	if res.After >= before {
		t.Errorf("HPWL did not improve: %v -> %v (%+v)", before, res.After, res)
	}
	if d.Cells[a].Pos.X > d.Cells[c].Pos.X {
		t.Error("reorder did not place a left of c")
	}
}

func TestOptimizePreservesLegality(t *testing.T) {
	d := gen.MustGenerate(gen.Config{
		Name: "dp", Seed: 21, NumStdCells: 300, NumFixedMacros: 2,
		NumMovableMacros: 1, NumModules: 3, NumFences: 2, NumTerminals: 8,
		TargetUtil: 0.55,
	})
	for i, ci := range d.Movable() {
		c := &d.Cells[ci]
		c.SetCenter(geom.Point{
			X: d.Die.Lo.X + float64((i*37)%101)/101*d.Die.W(),
			Y: d.Die.Lo.Y + float64((i*53)%97)/97*d.Die.H(),
		})
		if rg := d.CellRegion(ci); rg != db.NoRegion {
			c.SetCenter(d.Regions[rg].Nearest(c.Center()))
		}
	}
	legal.LegalizeMacros(d)
	if _, err := legal.LegalizeCells(d); err != nil {
		t.Fatal(err)
	}
	before := d.HPWL()
	res := Optimize(d, Options{Passes: 2})
	if res.After > before+1e-6 {
		t.Errorf("detailed placement worsened HPWL: %v -> %v", before, res.After)
	}
	if v := d.OverlapViolations(); v != 0 {
		t.Errorf("overlaps introduced: %d", v)
	}
	if v := d.FenceViolations(); v != 0 {
		t.Errorf("fence violations introduced: %d", v)
	}
	if v := d.OutOfDie(); v != 0 {
		t.Errorf("cells pushed out of die: %d", v)
	}
	if res.Swaps+res.Reorders+res.Shifts == 0 {
		t.Error("optimizer made no moves at all on a scattered design")
	}
}

func TestFenceGuardBlocksEscapes(t *testing.T) {
	b := db.NewBuilder("fg", geom.NewRect(0, 0, 100, 10))
	rg := b.AddRegion("f", geom.NewRect(0, 0, 30, 10))
	tr := b.AddTerminal("t", geom.Point{X: 95, Y: 5})
	a := b.AddStdCell("a", 4, 10)
	b.AddNet("n", 1, db.Conn{Cell: tr}, b.CenterConn(a))
	b.MakeRows(10, 1)
	d := b.MustDesign()
	d.Cells[a].Region = rg
	d.Cells[a].Pos = geom.Point{X: 10, Y: 0}
	Optimize(d, Options{Passes: 2})
	if d.FenceViolations() != 0 {
		t.Errorf("fenced cell escaped to %v", d.Cells[a].Pos)
	}
	// It may shift right toward the net but only to the fence edge.
	if d.Cells[a].Pos.X > 26 {
		t.Errorf("cell beyond fence interior: %v", d.Cells[a].Pos.X)
	}
}
