package dp

import (
	"math"
	"sort"

	"repro/internal/db"
	"repro/internal/geom"
)

// independentSetMatching is the FastDP-style global move: gather a set of
// same-footprint cells that share no nets (so each cell's cost at each
// slot is independent of the others' assignment), build the cost matrix
// of placing every cell at every member's current slot, and solve the
// assignment optimally with the Hungarian algorithm. Because slots are
// exactly the cells' current positions, any permutation is legal as long
// as fences allow it.
func (o *optimizer) independentSetMatching(setSize int) int {
	d := o.d
	if setSize < 2 {
		setSize = 8
	}
	// Group by footprint.
	type dims struct{ w, h float64 }
	groups := map[dims][]int{}
	for _, ci := range o.cells {
		c := &d.Cells[ci]
		groups[dims{c.W(), c.H()}] = append(groups[dims{c.W(), c.H()}], ci)
	}
	keys := make([]dims, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].w != keys[j].w {
			return keys[i].w < keys[j].w
		}
		return keys[i].h < keys[j].h
	})
	moves := 0
	for _, k := range keys {
		group := groups[k]
		if len(group) < 2 {
			continue
		}
		// Walk the group, accumulating independent sets.
		used := make(map[int]bool, len(group))
		for start := 0; start < len(group); start++ {
			if used[group[start]] {
				continue
			}
			set := []int{group[start]}
			nets := map[int]bool{}
			for _, pi := range d.Cells[group[start]].Pins {
				nets[d.Pins[pi].Net] = true
			}
			for _, cj := range group[start+1:] {
				if used[cj] || len(set) >= setSize {
					continue
				}
				indep := true
				for _, pi := range d.Cells[cj].Pins {
					if nets[d.Pins[pi].Net] {
						indep = false
						break
					}
				}
				if !indep {
					continue
				}
				set = append(set, cj)
				for _, pi := range d.Cells[cj].Pins {
					nets[d.Pins[pi].Net] = true
				}
			}
			for _, ci := range set {
				used[ci] = true
			}
			if len(set) < 2 {
				continue
			}
			if o.matchSet(set) {
				moves++
			}
		}
	}
	return moves
}

// matchSet optimally permutes the given independent same-footprint cells
// over their current slots. Returns true when the assignment changed.
// The cost matrix holds exact deltas from DeltaEval — cost[i][j] is the
// cost change of moving cell i alone to slot j, which is also its cost
// under any joint assignment because the set shares no nets — and adding
// per-row constants does not change the optimal assignment, so deltas
// and absolute costs yield the same answer.
func (o *optimizer) matchSet(set []int) bool {
	d := o.d
	n := len(set)
	slots := make([]geom.Point, n)
	for i, ci := range set {
		slots[i] = d.Cells[ci].Pos
	}
	e := o.state(0).eval
	cost := make([][]float64, n)
	for i, ci := range set {
		cost[i] = make([]float64, n)
		for j := range slots {
			if j == i {
				continue // staying put costs zero by construction
			}
			if !o.fenceOKAt(ci, slots[j]) {
				cost[i][j] = math.Inf(1)
				continue
			}
			o.trials++
			e.Reset()
			e.Stage(ci, slots[j])
			cost[i][j] = e.Delta() + o.congDelta(ci, slots[j])
		}
	}
	assign := hungarian(cost)
	// Reject if the solver was forced through a forbidden pair, or if
	// nothing moved, or if the total delta is not a strict improvement.
	changed := false
	var total float64
	for i := range set {
		if math.IsInf(cost[i][assign[i]], 1) {
			return false
		}
		total += cost[i][assign[i]]
		if assign[i] != i {
			changed = true
		}
	}
	if !changed || total >= -eps {
		return false
	}
	for i, ci := range set {
		o.cache.Move(ci, slots[assign[i]])
	}
	return true
}

// OptimizeWithMatching runs the standard passes plus independent-set
// matching each round.
func OptimizeWithMatching(d *db.Design, opt Options) Result {
	opt = opt.withDefaults()
	o := newOptimizer(d, opt)
	res := Result{Before: d.HPWL(), Workers: o.workers}
	for p := 0; p < opt.Passes; p++ {
		res.Swaps += o.globalSwap()
		res.Swaps += o.independentSetMatching(8)
		res.Reorders += o.localReorder()
		res.Shifts += o.rowShift()
	}
	res.Trials = int(o.trials)
	res.After = d.HPWL()
	return res
}
