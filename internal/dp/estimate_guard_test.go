package dp

import (
	"bytes"
	"testing"

	"repro/internal/bookshelf"
	"repro/internal/estimate"
	"repro/internal/legal"
	"repro/internal/route"
)

// estimatePlacement runs legalize + detailed placement with a live
// estimator guard at the given worker count and renders the .pl bytes.
func estimatePlacement(t *testing.T, workers int) []byte {
	t.Helper()
	d := scatteredDesign(t)
	if _, err := legal.LegalizeCellsOpt(d, legal.Options{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	g, err := route.NewGrid(d)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		Passes:   2,
		Workers:  workers,
		Estimate: estimate.New(g, estimate.Options{Workers: workers}),
	}
	Optimize(d, opt)
	var buf bytes.Buffer
	if err := bookshelf.WritePl(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEstimateGuardDeterministicAcrossWorkers extends the cross-worker
// .pl byte-determinism guarantee to the live-estimator guard: the
// estimator is maintained incrementally through the commit phase, commits
// are serial in fixed order, and the propose phase only reads frozen
// state — so worker count must still not change a single byte.
func TestEstimateGuardDeterministicAcrossWorkers(t *testing.T) {
	ref := estimatePlacement(t, 1)
	for _, w := range []int{2, 8} {
		if got := estimatePlacement(t, w); !bytes.Equal(ref, got) {
			t.Errorf(".pl output differs between workers=1 and workers=%d with live estimate guard", w)
		}
	}
}

// TestEstimateGuardLegality checks the safety net with the live guard:
// no overlap, fence, or die violations, and the demand map stays in sync
// (a full recompute after DP matches the incrementally maintained one).
func TestEstimateGuardLegality(t *testing.T) {
	d := scatteredDesign(t)
	if _, err := legal.LegalizeCells(d); err != nil {
		t.Fatal(err)
	}
	g, err := route.NewGrid(d)
	if err != nil {
		t.Fatal(err)
	}
	est := estimate.New(g, estimate.Options{})
	Optimize(d, Options{Passes: 2, Workers: 4, Estimate: est})
	if v := d.OverlapViolations(); v != 0 {
		t.Errorf("overlaps introduced: %d", v)
	}
	if v := d.FenceViolations(); v != 0 {
		t.Errorf("fence violations introduced: %d", v)
	}
	if v := d.OutOfDie(); v != 0 {
		t.Errorf("cells pushed out of die: %d", v)
	}
	fresh := estimate.New(g, estimate.Options{})
	fresh.Recompute(d)
	ih, iv := est.SnapshotDemand()
	fh, fv := fresh.SnapshotDemand()
	for i := range ih {
		if ih[i] != fh[i] || iv[i] != fv[i] {
			t.Fatalf("live estimator diverged from full recompute at tile %d after DP", i)
		}
	}
}
