package dp

import (
	"bytes"
	"testing"

	"repro/internal/bookshelf"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/legal"
)

// scatteredDesign regenerates the same design and deterministic scatter
// for every call, so per-worker-count runs start from identical state.
func scatteredDesign(t testing.TB) *db.Design {
	t.Helper()
	d := gen.MustGenerate(gen.Config{
		Name: "det", Seed: 97, NumStdCells: 400, NumFixedMacros: 2,
		NumMovableMacros: 1, NumModules: 3, NumFences: 2, NumTerminals: 8,
		TargetUtil: 0.55,
	})
	for i, ci := range d.Movable() {
		c := &d.Cells[ci]
		c.SetCenter(geom.Point{
			X: d.Die.Lo.X + float64((i*37)%101)/101*d.Die.W(),
			Y: d.Die.Lo.Y + float64((i*53)%97)/97*d.Die.H(),
		})
		if rg := d.CellRegion(ci); rg != db.NoRegion {
			c.SetCenter(d.Regions[rg].Nearest(c.Center()))
		}
	}
	legal.LegalizeMacros(d)
	return d
}

// congestionFor builds a synthetic 8×8 congestion map with a hot stripe,
// positioned over the die.
func congestionFor(d *db.Design, opt *Options) {
	const n = 8
	opt.Congestion = make([]float64, n*n)
	for ty := 0; ty < n; ty++ {
		for tx := 0; tx < n; tx++ {
			u := 0.4
			if tx >= 3 && tx <= 4 {
				u = 1.6
			}
			opt.Congestion[ty*n+tx] = u
		}
	}
	opt.CongNX = n
	opt.CongOrigin = d.Die.Lo
	opt.CongTileW = d.Die.W() / n
	opt.CongTileH = d.Die.H() / n
}

// placement runs legalization and detailed placement at the given worker
// count on a fresh copy of the scattered design and renders the result as
// Bookshelf .pl bytes.
func placement(t *testing.T, workers int, congested bool) []byte {
	t.Helper()
	d := scatteredDesign(t)
	if _, err := legal.LegalizeCellsOpt(d, legal.Options{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	opt := Options{Passes: 2, Workers: workers}
	if congested {
		congestionFor(d, &opt)
	}
	Optimize(d, opt)
	var buf bytes.Buffer
	if err := bookshelf.WritePl(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPlacementDeterministicAcrossWorkers requires byte-identical .pl
// output through legalize + detailed placement for every worker count:
// workers decide only who evaluates proposals, never what commits.
func TestPlacementDeterministicAcrossWorkers(t *testing.T) {
	for _, congested := range []bool{false, true} {
		ref := placement(t, 1, congested)
		for _, w := range []int{2, 8} {
			got := placement(t, w, congested)
			if !bytes.Equal(ref, got) {
				t.Errorf("congested=%v: .pl output differs between workers=1 and workers=%d",
					congested, w)
			}
		}
	}
}

// totalCost is the optimizer's objective recomputed from scratch: HPWL
// plus the congestion penalty of every movable standard cell in place.
func totalCost(d *db.Design, opt Options) float64 {
	o := newOptimizer(d, opt.withDefaults())
	tot := d.HPWL()
	for _, ci := range o.cells {
		tot += o.congCostAt(ci, d.Cells[ci].Pos)
	}
	return tot
}

// TestOptimizeInvariants runs congestion-aware detailed placement and
// checks the safety net: the combined objective never worsens, and no
// overlap, fence, or die violations appear.
func TestOptimizeInvariants(t *testing.T) {
	d := scatteredDesign(t)
	if _, err := legal.LegalizeCells(d); err != nil {
		t.Fatal(err)
	}
	opt := Options{Passes: 2, Workers: 4}
	congestionFor(d, &opt)
	before := totalCost(d, opt)
	res := Optimize(d, opt)
	after := totalCost(d, opt)
	if after > before+1e-6 {
		t.Errorf("combined objective worsened: %v -> %v", before, after)
	}
	if v := d.OverlapViolations(); v != 0 {
		t.Errorf("overlaps introduced: %d", v)
	}
	if v := d.FenceViolations(); v != 0 {
		t.Errorf("fence violations introduced: %d", v)
	}
	if v := d.OutOfDie(); v != 0 {
		t.Errorf("cells pushed out of die: %d", v)
	}
	if res.Swaps+res.Reorders+res.Shifts == 0 {
		t.Error("optimizer made no moves at all on a scattered design")
	}
}
