package dp

import (
	"math"
)

// hungarian solves the square assignment problem: cost[i][j] is the cost
// of assigning row i to column j; the returned slice maps each row to its
// column. Costs may be +Inf to forbid an assignment (the solver treats
// them as a large finite penalty; callers should verify forbidden pairs
// were not chosen when infeasibility is possible). O(n³).
func hungarian(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	// Replace +Inf with a large finite sentinel so potentials stay finite.
	big := 1.0
	for i := range cost {
		for j := range cost[i] {
			if !math.IsInf(cost[i][j], 1) && math.Abs(cost[i][j]) > big {
				big = math.Abs(cost[i][j])
			}
		}
	}
	sentinel := big*float64(n+1) + 1
	c := make([][]float64, n)
	for i := range c {
		c[i] = make([]float64, n)
		for j := range c[i] {
			if math.IsInf(cost[i][j], 1) {
				c[i][j] = sentinel
			} else {
				c[i][j] = cost[i][j]
			}
		}
	}

	// Jonker-Volgenant-style shortest augmenting path formulation with
	// 1-based internal arrays (the classic e-maxx implementation).
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row assigned to column j
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := c[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assign := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
		}
	}
	return assign
}
