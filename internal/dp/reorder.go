package dp

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/incr"
)

// reorderProposal is one improving window packing from the propose phase:
// pack the named cells left-to-right starting at the window's left bound.
type reorderProposal struct {
	s     int   // window start within the row
	order []int // cell indices in desired left-to-right order
}

// shiftProposal is one improving row shift from the propose phase.
type shiftProposal struct {
	i     int     // cell's index within its row
	wantX float64 // net-optimal center x (clamped live at commit)
}

// localReorder permutes windows of consecutive row cells. Propose: rows
// fan out across workers, each scanning its windows against the frozen
// state. Commit: proposals apply serially in (row, window) order; each is
// re-validated against the live row (membership, bounds, fences, gain)
// since earlier overlapping windows may already have moved its cells.
func (o *optimizer) localReorder() int {
	d := o.d
	o.buildRows()
	o.buildAnchors()
	w := o.opt.WindowSize
	props := make([][]reorderProposal, len(o.rowList))
	o.forItems(len(o.rowList), func(ws *workerState, ri int) {
		row := o.rowList[ri]
		y := o.rowYs[ri]
		for s := 0; s+w <= len(row); s++ {
			left, right, ok := o.windowBounds(row, s, w, y)
			if !ok {
				continue
			}
			if order := o.bestOrder(ws, row[s:s+w], left, right, y); order != nil {
				props[ri] = append(props[ri],
					reorderProposal{s: s, order: append([]int(nil), order...)})
			}
		}
	})
	count := 0
	ws := o.state(0)
	for ri := range props {
		row := o.rowList[ri]
		y := o.rowYs[ri]
		for _, pr := range props[ri] {
			win := row[pr.s : pr.s+w]
			if !sameCells(win, pr.order) {
				continue
			}
			left, right, ok := o.windowBounds(row, pr.s, w, y)
			if !ok {
				continue
			}
			o.trials++
			gain, ok := o.orderGain(ws.eval, pr.order, left, right, y)
			if !ok || gain <= eps {
				continue
			}
			x := left
			o.cache.Begin()
			for _, ci := range pr.order {
				o.cache.Move(ci, geom.Point{X: x, Y: y})
				x += o.cellW[ci]
			}
			o.cache.Commit()
			count++
			// Re-sort the window slice by new x to keep the row ordered.
			sort.Slice(win, func(a, b int) bool {
				if d.Cells[win[a]].Pos.X != d.Cells[win[b]].Pos.X {
					return d.Cells[win[a]].Pos.X < d.Cells[win[b]].Pos.X
				}
				return win[a] < win[b]
			})
		}
	}
	return count
}

// windowBounds computes the free interval of the w-cell window starting
// at s: from the first cell's x to the next neighbour (or the die edge),
// narrowed by fixed obstacles. ok is false when the window cannot be
// packed into the interval.
func (o *optimizer) windowBounds(row []int, s, w int, y float64) (left, right float64, ok bool) {
	d := o.d
	left = d.Cells[row[s]].Pos.X
	right = d.Die.Hi.X
	if s+w < len(row) {
		right = d.Cells[row[s+w]].Pos.X
	}
	_, right = o.gapBounds(left, right, y, o.cellH[row[s]], left)
	var widthSum float64
	for _, ci := range row[s : s+w] {
		widthSum += o.cellW[ci]
	}
	if widthSum > right-left+eps {
		return 0, 0, false
	}
	return left, right, true
}

// bestOrder tries every window permutation and returns the best improving
// left-to-right cell order (worker-private storage), or nil. The identity
// permutation can win too: packing collapses gaps. Each permutation is
// priced against the pass anchors, so windows need no per-window setup.
func (o *optimizer) bestOrder(ws *workerState, win []int, left, right, y float64) []int {
	bestGain := eps
	found := false
	for _, perm := range o.perms {
		ws.trials++
		ws.order = ws.order[:0]
		for _, pi := range perm {
			ws.order = append(ws.order, win[pi])
		}
		gain, ok := o.orderGainGroup(ws, win, ws.order, left, right, y)
		if ok && gain > bestGain {
			bestGain = gain
			ws.bestOrder = append(ws.bestOrder[:0], ws.order...)
			found = true
		}
	}
	if !found {
		return nil
	}
	return ws.bestOrder
}

// orderGainGroup is orderGain against the pass anchors — the propose-scan
// variant. The packed positions are gathered in window-slot order and the
// whole placement is priced with one Anchors.GroupDelta call.
func (o *optimizer) orderGainGroup(ws *workerState, win, order []int, left, right, y float64) (float64, bool) {
	if cap(ws.groupPos) < len(win) {
		ws.groupPos = make([]geom.Point, len(win))
	}
	gpos := ws.groupPos[:len(win)]
	x := left
	var cong float64
	for _, ci := range order {
		pos := geom.Point{X: x, Y: y}
		x += o.cellW[ci]
		if !o.fenceOKAt(ci, pos) {
			return 0, false
		}
		cong += o.congDelta(ci, pos)
		for s, cw := range win {
			if cw == ci {
				gpos[s] = pos
				break
			}
		}
	}
	if x > right+eps {
		return 0, false
	}
	return -(o.anchors.GroupDelta(win, gpos) + cong), true
}

// orderGain evaluates packing the cells, in the given left-to-right
// order, from left. ok is false when the packing overflows right or
// violates a fence. Used by both the propose scan and the commit-phase
// re-validation.
func (o *optimizer) orderGain(e *incr.DeltaEval, order []int, left, right, y float64) (float64, bool) {
	e.Reset()
	x := left
	var cong float64
	for _, ci := range order {
		pos := geom.Point{X: x, Y: y}
		x += o.cellW[ci]
		if !o.fenceOKAt(ci, pos) {
			return 0, false
		}
		e.Stage(ci, pos)
		cong += o.congDelta(ci, pos)
	}
	if x > right+eps {
		return 0, false
	}
	return -(e.Delta() + cong), true
}

// sameCells reports whether order is a permutation of win (both length w,
// w small).
func sameCells(win, order []int) bool {
	if len(win) != len(order) {
		return false
	}
	for _, ci := range order {
		found := false
		for _, cj := range win {
			if ci == cj {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// rowShift slides every cell to its net-optimal x within its free gap.
// Propose: rows fan out across workers against the frozen state. Commit:
// serial in (row, cell) order, re-clamping against live neighbours.
func (o *optimizer) rowShift() int {
	o.buildRows()
	o.buildAnchors()
	hasCong := o.opt.Congestion != nil
	props := make([][]shiftProposal, len(o.rowList))
	o.forItems(len(o.rowList), func(ws *workerState, ri int) {
		row := o.rowList[ri]
		y := o.rowYs[ri]
		for i, ci := range row {
			if !hasCong && o.anchors.MaxGain(ci) <= eps {
				continue // no move of this cell can improve anything
			}
			want, ok := o.optimalPoint(ci)
			if !ok {
				continue
			}
			targetX, ok := o.clampShift(row, i, want.X, y)
			if !ok {
				continue
			}
			ws.trials++
			pos := geom.Point{X: targetX, Y: y}
			if !o.fenceOKAt(ci, pos) {
				continue
			}
			gain := -o.anchors.MoveDelta(ci, pos)
			if hasCong {
				gain -= o.congDelta(ci, pos)
			}
			if gain > eps {
				props[ri] = append(props[ri], shiftProposal{i: i, wantX: want.X})
			}
		}
	})
	count := 0
	ws := o.state(0)
	for ri := range props {
		row := o.rowList[ri]
		y := o.rowYs[ri]
		for _, pr := range props[ri] {
			ci := row[pr.i]
			targetX, ok := o.clampShift(row, pr.i, pr.wantX, y)
			if !ok {
				continue
			}
			o.trials++
			gain, ok := o.shiftGain(ws.eval, ci, targetX, y)
			if !ok || gain <= eps {
				continue
			}
			o.cache.Move(ci, geom.Point{X: targetX, Y: y})
			count++
		}
	}
	return count
}

// clampShift clamps a desired center x for the cell at row position i
// into its free gap between live neighbours and fixed obstacles. ok is
// false when the gap is too small or the clamp lands on the current x.
func (o *optimizer) clampShift(row []int, i int, wantX, y float64) (float64, bool) {
	d := o.d
	ci := row[i]
	c := &d.Cells[ci]
	left := d.Die.Lo.X
	if i > 0 {
		left = d.Cells[row[i-1]].Pos.X + o.cellW[row[i-1]]
	}
	right := d.Die.Hi.X
	if i+1 < len(row) {
		right = d.Cells[row[i+1]].Pos.X
	}
	left, right = o.gapBounds(left, right, y, o.cellH[ci], c.Pos.X)
	if right-left < o.cellW[ci] {
		return 0, false
	}
	targetX := max(left, min(wantX-o.cellW[ci]/2, right-o.cellW[ci]))
	if math.Abs(targetX-c.Pos.X) < eps {
		return 0, false
	}
	return targetX, true
}

// shiftGain is the exact cost reduction of moving the cell to x=targetX
// in its row; ok is false on a fence violation.
func (o *optimizer) shiftGain(e *incr.DeltaEval, ci int, targetX, y float64) (float64, bool) {
	pos := geom.Point{X: targetX, Y: y}
	if !o.fenceOKAt(ci, pos) {
		return 0, false
	}
	e.Reset()
	e.Stage(ci, pos)
	return -(e.Delta() + o.congDelta(ci, pos)), true
}
