// Package dp implements detailed placement on a legalized design: global
// swap (exchange same-size cells across the die toward their optimal
// regions), local reordering (permute small windows of row neighbours),
// and single-row shifting (slide each cell to its net-optimal x within the
// free gap). All moves are HPWL-greedy and fence-guarded: a move that
// would take a cell out of its fence, or an outsider into one, is
// rejected, so the legality invariants from the legalizer are preserved.
//
// Cost evaluation runs on an incremental engine (incr.BBoxCache): every
// trial move asks a DeltaEval for the exact change in weighted HPWL in
// O(pins-on-cell), instead of rescanning every pin of every touched net,
// and commits flow through the cache so the boxes stay exact. The warm
// trial path is allocation-free.
//
// Each pass is parallelized with the same recipe as the router: a
// *propose* phase fans the candidate moves out over par worker
// goroutines, each evaluating against the frozen pre-pass state and
// writing only its own per-item slot; then a serial *commit* phase walks
// the slots in fixed index order, re-validates every proposal against the
// live state (bounds, fences, and gain), and applies the survivors
// through the cache. Worker count decides only who evaluates, never what
// commits, so the result is byte-identical for any worker count.
package dp

import (
	"sort"

	"repro/internal/db"
	"repro/internal/estimate"
	"repro/internal/geom"
	"repro/internal/incr"
	"repro/internal/obs"
	"repro/internal/par"
)

// eps is the strict-improvement threshold shared by every move kind: a
// proposal commits only when it lowers cost by more than this.
const eps = 1e-9

// Options tunes detailed placement.
type Options struct {
	// Passes is the number of full optimization sweeps (default 2).
	Passes int
	// WindowSize is the local-reorder window (default 3; cost grows
	// factorially).
	WindowSize int
	// SwapRadius is the neighbourhood, in row heights, searched for swap
	// partners around a cell's optimal position (default 10).
	SwapRadius float64

	// Workers is the propose-phase worker count, resolved through
	// par.Workers (≤ 0 selects the automatic default). Placement output
	// is byte-identical for every worker count.
	Workers int

	// Congestion, when non-nil, makes detailed placement routability-
	// aware: moves into tiles whose utilization exceeds 1 pay a penalty
	// proportional to the overload, so HPWL-greedy moves stop piling
	// cells into routed hot spots. The map is indexed [ty*CongNX+tx].
	Congestion []float64
	CongNX     int
	// CongTile locates the congestion grid over the die.
	CongOrigin  geom.Point
	CongTileW   float64
	CongTileH   float64
	CongPenalty float64 // cost per unit overload per unit cell area (default 0.5)

	// Estimate, when non-nil, supplies a *live* probabilistic congestion
	// map (internal/estimate) as the routability guard instead of the
	// static Congestion snapshot. The optimizer attaches it to its
	// incremental engine, so every committed move updates the map in
	// O(pins-on-cell) and later moves see the relief (or new pressure)
	// earlier moves created. Takes precedence over Congestion. The
	// propose phase reads the frozen map and commits apply serially in
	// fixed order, so output stays byte-identical for any worker count.
	Estimate *estimate.Estimator

	// Obs, when non-nil, records a "dp" span with per-pass move counters
	// and debug logging (telemetry only — moves are unaffected).
	Obs *obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.Passes <= 0 {
		o.Passes = 2
	}
	if o.WindowSize <= 1 {
		o.WindowSize = 3
	}
	if o.SwapRadius <= 0 {
		o.SwapRadius = 10
	}
	if o.CongPenalty <= 0 {
		o.CongPenalty = 0.5
	}
	return o
}

// Result reports what detailed placement achieved.
type Result struct {
	Before, After float64
	Swaps         int
	Reorders      int
	Shifts        int
	// Trials counts evaluated candidate moves (propose and commit phases
	// combined); it is scheduling-independent.
	Trials int
	// Workers is the resolved propose-phase worker count.
	Workers int
}

// Optimize runs the detailed-placement passes over the design in place.
func Optimize(d *db.Design, opt Options) Result {
	opt = opt.withDefaults()
	o := newOptimizer(d, opt)
	sp := opt.Obs.StartSpan("dp")
	res := Result{Before: d.HPWL(), Workers: o.workers}
	for p := 0; p < opt.Passes; p++ {
		psp := sp.StartSpanf("pass-%d", p)
		sw, re, sh := o.globalSwap(), o.localReorder(), o.rowShift()
		res.Swaps += sw
		res.Reorders += re
		res.Shifts += sh
		if psp != nil {
			psp.Add("swaps", int64(sw))
			psp.Add("reorders", int64(re))
			psp.Add("shifts", int64(sh))
			psp.End()
		}
	}
	res.Trials = int(o.trials)
	res.After = d.HPWL()
	if sp != nil {
		sp.Add("swaps", int64(res.Swaps))
		sp.Add("reorders", int64(res.Reorders))
		sp.Add("shifts", int64(res.Shifts))
		sp.Add("trials", int64(res.Trials))
		sp.Add("workers", int64(res.Workers))
		sp.End()
		opt.Obs.Log().Debug("detailed placement done",
			"passes", opt.Passes, "workers", res.Workers, "trials", res.Trials,
			"swaps", res.Swaps, "reorders", res.Reorders, "shifts", res.Shifts,
			"hpwl_before", res.Before, "hpwl_after", res.After)
	}
	return res
}

type optimizer struct {
	d         *db.Design
	opt       Options
	workers   int
	obstacles []geom.Rect

	cache   *incr.BBoxCache
	anchors *incr.Anchors
	states  []*workerState

	cells      []int     // movable std cells, ascending index
	cellRegion []int     // CellRegion per design cell, precomputed
	cellW      []float64 // oriented cell dims, precomputed (orientation is
	cellH      []float64 // fixed during detailed placement)
	cellClass  []int32   // swap-compatibility class: same (W, H, region)
	perms      [][]int

	trials int64

	// Row scratch, reused across passes: cells grouped by row y, each row
	// sorted by x.
	rows    map[float64][]int
	rowYs   []float64
	rowList [][]int

	idx       bucketIndex
	swapProps []swapProposal
}

// workerState is the per-worker scratch of the propose phase: an
// evaluator over the shared cache plus a trial counter that is folded
// into the optimizer total after the parallel section.
type workerState struct {
	eval      *incr.DeltaEval
	order     []int // permutation scratch for the reorder scan
	bestOrder []int
	groupPos  []geom.Point // window-slot positions for the group pricing
	trials    int64
}

func newOptimizer(d *db.Design, opt Options) *optimizer {
	o := &optimizer{d: d, opt: opt, workers: par.Workers(opt.Workers)}
	o.cellRegion = make([]int, len(d.Cells))
	o.cellW = make([]float64, len(d.Cells))
	o.cellH = make([]float64, len(d.Cells))
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if !c.Movable() && c.Kind != db.Terminal && c.Area() > 0 {
			o.obstacles = append(o.obstacles, c.Rect())
		}
		if c.Movable() && c.Kind == db.StdCell {
			o.cells = append(o.cells, ci)
		}
		o.cellRegion[ci] = d.CellRegion(ci)
		o.cellW[ci] = c.W()
		o.cellH[ci] = c.H()
	}
	// Two cells may swap iff they have the same footprint and the same
	// region (same footprint + legal placement means each lands exactly on
	// the other's rect, so same-region is the whole fence condition; the
	// commit phase still re-checks exactly). One int compare per candidate
	// replaces the W/H/region triple.
	o.cellClass = make([]int32, len(d.Cells))
	type classKey struct {
		w, h float64
		rg   int
	}
	classes := make(map[classKey]int32)
	for _, ci := range o.cells {
		key := classKey{o.cellW[ci], o.cellH[ci], o.cellRegion[ci]}
		id, ok := classes[key]
		if !ok {
			id = int32(len(classes))
			classes[key] = id
		}
		o.cellClass[ci] = id
	}
	o.perms = permutations(opt.WindowSize)
	o.cache = incr.New(d)
	o.anchors = o.cache.NewAnchors()
	if opt.Estimate != nil {
		// Live routability guard: the estimator rides the cache's observer
		// hooks, so Move/Revert/Commit keep its demand map exact without
		// any polling in the move loops.
		estimate.Attach(opt.Estimate, o.cache)
	}
	return o
}

// buildAnchors refreshes every movable cell's anchor boxes against the
// frozen pre-pass state (cells are independent, so the build fans out).
func (o *optimizer) buildAnchors() {
	par.For(len(o.cells), o.workers, func(i int) { o.anchors.BuildCell(o.cells[i]) })
}

// state returns worker k's scratch, growing the pool on demand.
func (o *optimizer) state(k int) *workerState {
	for len(o.states) <= k {
		o.states = append(o.states, &workerState{eval: o.cache.NewEval()})
	}
	return o.states[k]
}

// forItems runs the propose phase: fn(ws, i) for every i in [0, n) across
// the optimizer's workers. fn must only read the frozen design/cache and
// write worker-private state or its own per-item slot. Worker trial
// counts are folded into the optimizer total before returning, so the
// aggregate is scheduling-independent.
func (o *optimizer) forItems(n int, fn func(ws *workerState, i int)) {
	w := o.workers
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	for k := 0; k < w; k++ {
		o.state(k)
	}
	par.ForWorker(n, w, func(k, i int) { fn(o.states[k], i) })
	for k := 0; k < w; k++ {
		o.trials += o.states[k].trials
		o.states[k].trials = 0
	}
}

// gapBounds narrows the free interval [left, right] for a cell occupying
// the vertical band [y, y+h) so it cannot slide into a fixed obstacle.
// The cell currently sits at x (legally, outside every obstacle).
func (o *optimizer) gapBounds(left, right, y, h, x float64) (float64, float64) {
	for _, ob := range o.obstacles {
		if ob.Hi.Y <= y || ob.Lo.Y >= y+h {
			continue
		}
		if ob.Hi.X <= x && ob.Hi.X > left {
			left = ob.Hi.X
		}
		if ob.Lo.X >= x && ob.Lo.X < right {
			right = ob.Lo.X
		}
	}
	return left, right
}

// congCostAt is the congestion penalty of the cell centered over pos:
// overload beyond 100% utilization costs CongPenalty per unit of cell
// width (the width proxy keeps the penalty commensurate with HPWL units).
// With a live estimator the overload is read from the continuously
// maintained probabilistic map; otherwise from the static snapshot.
func (o *optimizer) congCostAt(ci int, pos geom.Point) float64 {
	opt := &o.opt
	var over float64
	if e := opt.Estimate; e != nil {
		tx := int((pos.X + o.cellW[ci]/2 - e.Origin.X) / e.TileW)
		ty := int((pos.Y + o.cellH[ci]/2 - e.Origin.Y) / e.TileH)
		over = e.CongestionAt(tx, ty) - 1
	} else {
		if opt.Congestion == nil || opt.CongNX <= 0 || opt.CongTileW <= 0 || opt.CongTileH <= 0 {
			return 0
		}
		tx := int((pos.X + o.cellW[ci]/2 - opt.CongOrigin.X) / opt.CongTileW)
		ty := int((pos.Y + o.cellH[ci]/2 - opt.CongOrigin.Y) / opt.CongTileH)
		ny := len(opt.Congestion) / opt.CongNX
		if tx < 0 || ty < 0 || tx >= opt.CongNX || ty >= ny {
			return 0
		}
		over = opt.Congestion[ty*opt.CongNX+tx] - 1
	}
	if over <= 0 {
		return 0
	}
	return opt.CongPenalty * over * o.cellW[ci] * 10
}

// congDelta is the change in congestion penalty of moving cell ci from
// its current position to pos.
func (o *optimizer) congDelta(ci int, pos geom.Point) float64 {
	if o.opt.Congestion == nil && o.opt.Estimate == nil {
		return 0
	}
	return o.congCostAt(ci, pos) - o.congCostAt(ci, o.d.Cells[ci].Pos)
}

// optimalPoint returns the center of the cell's nets' bounding boxes,
// excluding the cell's own pins — a cheap optimal-region proxy. Reads
// the anchor base boxes, so it is only valid inside a propose phase
// that called buildAnchors against the current frozen state.
func (o *optimizer) optimalPoint(ci int) (geom.Point, bool) {
	return o.anchors.OptimalPoint(ci)
}

// fenceOKAt verifies the cell footprint at pos against its fence (both
// directions: members must be inside, outsiders outside every fence).
func (o *optimizer) fenceOKAt(ci int, pos geom.Point) bool {
	r := geom.Rect{Lo: pos, Hi: geom.Point{X: pos.X + o.cellW[ci], Y: pos.Y + o.cellH[ci]}}
	if rg := o.cellRegion[ci]; rg != db.NoRegion {
		return o.d.Regions[rg].Contains(r)
	}
	for gi := range o.d.Regions {
		for _, fr := range o.d.Regions[gi].Rects {
			if fr.Overlaps(r) {
				return false
			}
		}
	}
	return true
}

// buildRows groups the movable std cells by row y, each row sorted by x
// (cell index breaks ties). The map and slices are scratch reused across
// calls; only the grouping is recomputed.
func (o *optimizer) buildRows() {
	d := o.d
	if o.rows == nil {
		o.rows = make(map[float64][]int, 64)
	}
	for y, r := range o.rows {
		o.rows[y] = r[:0]
	}
	for _, ci := range o.cells {
		y := d.Cells[ci].Pos.Y
		o.rows[y] = append(o.rows[y], ci)
	}
	o.rowYs = o.rowYs[:0]
	for y, r := range o.rows {
		if len(r) > 0 {
			o.rowYs = append(o.rowYs, y)
		}
	}
	sort.Float64s(o.rowYs)
	o.rowList = o.rowList[:0]
	for _, y := range o.rowYs {
		row := o.rows[y]
		sort.Slice(row, func(a, b int) bool {
			if d.Cells[row[a]].Pos.X != d.Cells[row[b]].Pos.X {
				return d.Cells[row[a]].Pos.X < d.Cells[row[b]].Pos.X
			}
			return row[a] < row[b]
		})
		o.rowList = append(o.rowList, row)
	}
}

// permutations returns all permutations of [0, n).
func permutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	sub := permutations(n - 1)
	var out [][]int
	for _, p := range sub {
		for pos := 0; pos <= len(p); pos++ {
			np := make([]int, 0, n)
			np = append(np, p[:pos]...)
			np = append(np, n-1)
			np = append(np, p[pos:]...)
			out = append(out, np)
		}
	}
	return out
}
