// Package dp implements detailed placement on a legalized design: global
// swap (exchange same-size cells across the die toward their optimal
// regions), local reordering (permute small windows of row neighbours),
// and single-row shifting (slide each cell to its net-optimal x within the
// free gap). All moves are HPWL-greedy and fence-guarded: a move that
// would take a cell out of its fence, or an outsider into one, is
// rejected, so the legality invariants from the legalizer are preserved.
package dp

import (
	"math"
	"sort"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/obs"
)

// Options tunes detailed placement.
type Options struct {
	// Passes is the number of full optimization sweeps (default 2).
	Passes int
	// WindowSize is the local-reorder window (default 3; cost grows
	// factorially).
	WindowSize int
	// SwapRadius is the neighbourhood, in row heights, searched for swap
	// partners around a cell's optimal position (default 10).
	SwapRadius float64

	// Congestion, when non-nil, makes detailed placement routability-
	// aware: moves into tiles whose utilization exceeds 1 pay a penalty
	// proportional to the overload, so HPWL-greedy moves stop piling
	// cells into routed hot spots. The map is indexed [ty*CongNX+tx].
	Congestion []float64
	CongNX     int
	// CongTile locates the congestion grid over the die.
	CongOrigin  geom.Point
	CongTileW   float64
	CongTileH   float64
	CongPenalty float64 // cost per unit overload per unit cell area (default 0.5)

	// Obs, when non-nil, records a "dp" span with per-pass move counters
	// and debug logging (telemetry only — moves are unaffected).
	Obs *obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.Passes <= 0 {
		o.Passes = 2
	}
	if o.WindowSize <= 1 {
		o.WindowSize = 3
	}
	if o.SwapRadius <= 0 {
		o.SwapRadius = 10
	}
	if o.CongPenalty <= 0 {
		o.CongPenalty = 0.5
	}
	return o
}

// Result reports what detailed placement achieved.
type Result struct {
	Before, After float64
	Swaps         int
	Reorders      int
	Shifts        int
}

// Optimize runs the detailed-placement passes over the design in place.
func Optimize(d *db.Design, opt Options) Result {
	opt = opt.withDefaults()
	o := &optimizer{d: d, opt: opt}
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if !c.Movable() && c.Kind != db.Terminal && c.Area() > 0 {
			o.obstacles = append(o.obstacles, c.Rect())
		}
	}
	sp := opt.Obs.StartSpan("dp")
	res := Result{Before: d.HPWL()}
	for p := 0; p < opt.Passes; p++ {
		psp := sp.StartSpanf("pass-%d", p)
		sw, re, sh := o.globalSwap(), o.localReorder(), o.rowShift()
		res.Swaps += sw
		res.Reorders += re
		res.Shifts += sh
		if psp != nil {
			psp.Add("swaps", int64(sw))
			psp.Add("reorders", int64(re))
			psp.Add("shifts", int64(sh))
			psp.End()
		}
	}
	res.After = d.HPWL()
	if sp != nil {
		sp.Add("swaps", int64(res.Swaps))
		sp.Add("reorders", int64(res.Reorders))
		sp.Add("shifts", int64(res.Shifts))
		sp.End()
		opt.Obs.Log().Debug("detailed placement done",
			"passes", opt.Passes, "swaps", res.Swaps, "reorders", res.Reorders,
			"shifts", res.Shifts, "hpwl_before", res.Before, "hpwl_after", res.After)
	}
	return res
}

type optimizer struct {
	d         *db.Design
	opt       Options
	obstacles []geom.Rect
}

// gapBounds narrows the free interval [left, right] for a cell occupying
// the vertical band [y, y+h) so it cannot slide into a fixed obstacle.
// The cell currently sits at x (legally, outside every obstacle).
func (o *optimizer) gapBounds(left, right, y, h, x float64) (float64, float64) {
	for _, ob := range o.obstacles {
		if ob.Hi.Y <= y || ob.Lo.Y >= y+h {
			continue
		}
		if ob.Hi.X <= x && ob.Hi.X > left {
			left = ob.Hi.X
		}
		if ob.Lo.X >= x && ob.Lo.X < right {
			right = ob.Lo.X
		}
	}
	return left, right
}

// netCost returns the summed HPWL of all nets touching any of the cells,
// plus (when routability-aware) a congestion penalty for each cell sitting
// in an overloaded routing tile.
func (o *optimizer) netCost(cells ...int) float64 {
	seen := map[int]bool{}
	var total float64
	for _, ci := range cells {
		for _, pi := range o.d.Cells[ci].Pins {
			ni := o.d.Pins[pi].Net
			if seen[ni] {
				continue
			}
			seen[ni] = true
			w := o.d.Nets[ni].Weight
			if w == 0 {
				w = 1
			}
			total += w * o.d.NetHPWL(ni)
		}
		total += o.congCost(ci)
	}
	return total
}

// congCost is the congestion penalty of the cell's current tile: overload
// beyond 100% utilization costs CongPenalty per unit of cell width (the
// width proxy keeps the penalty commensurate with HPWL units).
func (o *optimizer) congCost(ci int) float64 {
	opt := &o.opt
	if opt.Congestion == nil || opt.CongNX <= 0 || opt.CongTileW <= 0 || opt.CongTileH <= 0 {
		return 0
	}
	c := &o.d.Cells[ci]
	ctr := c.Center()
	tx := int((ctr.X - opt.CongOrigin.X) / opt.CongTileW)
	ty := int((ctr.Y - opt.CongOrigin.Y) / opt.CongTileH)
	ny := len(opt.Congestion) / opt.CongNX
	if tx < 0 || ty < 0 || tx >= opt.CongNX || ty >= ny {
		return 0
	}
	over := opt.Congestion[ty*opt.CongNX+tx] - 1
	if over <= 0 {
		return 0
	}
	return opt.CongPenalty * over * c.W() * 10
}

// optimalPoint returns the center of the cell's nets' bounding boxes,
// excluding the cell's own pins — a cheap optimal-region proxy.
func (o *optimizer) optimalPoint(ci int) (geom.Point, bool) {
	d := o.d
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	found := false
	for _, pi := range d.Cells[ci].Pins {
		ni := d.Pins[pi].Net
		for _, qi := range d.Nets[ni].Pins {
			if d.Pins[qi].Cell == ci {
				continue
			}
			p := d.PinPos(qi)
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
			found = true
		}
	}
	if !found {
		return geom.Point{}, false
	}
	return geom.Point{X: (minX + maxX) / 2, Y: (minY + maxY) / 2}, true
}

// fenceOK verifies the cell footprint against its fence (both directions:
// members must be inside, outsiders outside every fence).
func (o *optimizer) fenceOK(ci int, r geom.Rect) bool {
	rg := o.d.CellRegion(ci)
	if rg != db.NoRegion {
		return o.d.Regions[rg].Contains(r)
	}
	for gi := range o.d.Regions {
		for _, fr := range o.d.Regions[gi].Rects {
			if fr.Overlaps(r) {
				return false
			}
		}
	}
	return true
}

// movableStd lists movable standard cells.
func (o *optimizer) movableStd() []int {
	var out []int
	for ci := range o.d.Cells {
		c := &o.d.Cells[ci]
		if c.Movable() && c.Kind == db.StdCell {
			out = append(out, ci)
		}
	}
	return out
}

// globalSwap exchanges same-footprint cells when that reduces HPWL.
func (o *optimizer) globalSwap() int {
	d := o.d
	cells := o.movableStd()
	// Spatial index: bucket cells by position on a coarse grid.
	rowH := d.RowHeight()
	if rowH <= 0 {
		rowH = 1
	}
	bucket := rowH * o.opt.SwapRadius
	type bkey struct{ x, y int }
	idx := make(map[bkey][]int)
	keyOf := func(p geom.Point) bkey {
		return bkey{int(p.X / bucket), int(p.Y / bucket)}
	}
	for _, ci := range cells {
		k := keyOf(d.Cells[ci].Pos)
		idx[k] = append(idx[k], ci)
	}
	swaps := 0
	for _, ci := range cells {
		c := &d.Cells[ci]
		want, ok := o.optimalPoint(ci)
		if !ok {
			continue
		}
		if want.Dist(c.Center()) < rowH {
			continue // already near optimal
		}
		// Find a same-size partner near the optimal point.
		k := keyOf(want)
		best := -1
		bestGain := 1e-9
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, cj := range idx[bkey{k.x + dx, k.y + dy}] {
					if cj == ci {
						continue
					}
					p := &d.Cells[cj]
					if p.W() != c.W() || p.H() != c.H() {
						continue
					}
					// Fence check both ways at the destination rects.
					if !o.fenceOK(ci, p.Rect()) || !o.fenceOK(cj, c.Rect()) {
						continue
					}
					before := o.netCost(ci, cj)
					d.Cells[ci].Pos, d.Cells[cj].Pos = d.Cells[cj].Pos, d.Cells[ci].Pos
					after := o.netCost(ci, cj)
					d.Cells[ci].Pos, d.Cells[cj].Pos = d.Cells[cj].Pos, d.Cells[ci].Pos
					if gain := before - after; gain > bestGain {
						bestGain = gain
						best = cj
					}
				}
			}
		}
		if best >= 0 {
			ki := keyOf(d.Cells[ci].Pos)
			kj := keyOf(d.Cells[best].Pos)
			d.Cells[ci].Pos, d.Cells[best].Pos = d.Cells[best].Pos, d.Cells[ci].Pos
			swaps++
			if ki != kj {
				idx[ki] = replaceIn(idx[ki], ci, best)
				idx[kj] = replaceIn(idx[kj], best, ci)
			}
		}
	}
	return swaps
}

func replaceIn(s []int, old, new int) []int {
	for i, v := range s {
		if v == old {
			s[i] = new
			break
		}
	}
	return s
}

// rowsOf groups movable std cells by row y and sorts each row by x.
func (o *optimizer) rowsOf() map[float64][]int {
	rows := make(map[float64][]int)
	for _, ci := range o.movableStd() {
		rows[o.d.Cells[ci].Pos.Y] = append(rows[o.d.Cells[ci].Pos.Y], ci)
	}
	for y := range rows {
		r := rows[y]
		sort.Slice(r, func(a, b int) bool {
			if o.d.Cells[r[a]].Pos.X != o.d.Cells[r[b]].Pos.X {
				return o.d.Cells[r[a]].Pos.X < o.d.Cells[r[b]].Pos.X
			}
			return r[a] < r[b]
		})
	}
	return rows
}

// sortedRowYs returns row keys in increasing order for deterministic
// iteration.
func sortedRowYs(rows map[float64][]int) []float64 {
	ys := make([]float64, 0, len(rows))
	for y := range rows {
		ys = append(ys, y)
	}
	sort.Float64s(ys)
	return ys
}

// localReorder permutes windows of consecutive row cells.
func (o *optimizer) localReorder() int {
	d := o.d
	rows := o.rowsOf()
	w := o.opt.WindowSize
	count := 0
	for _, y := range sortedRowYs(rows) {
		row := rows[y]
		for s := 0; s+w <= len(row); s++ {
			win := row[s : s+w]
			// Window bounds: from the first cell's x to the next
			// neighbour (or the die edge).
			left := d.Cells[win[0]].Pos.X
			right := d.Die.Hi.X
			if s+w < len(row) {
				right = d.Cells[row[s+w]].Pos.X
			}
			_, right = o.gapBounds(left, right, y, d.Cells[win[0]].H(), left)
			var widthSum float64
			for _, ci := range win {
				widthSum += d.Cells[ci].W()
			}
			if widthSum > right-left+1e-9 {
				continue
			}
			if o.tryPermutations(win, left, right) {
				count++
				// Re-sort the window slice by new x to keep row order.
				sort.Slice(win, func(a, b int) bool {
					return d.Cells[win[a]].Pos.X < d.Cells[win[b]].Pos.X
				})
			}
		}
	}
	return count
}

// tryPermutations packs each permutation of win left-to-right from
// leftBound and keeps the best legal one. Returns true when the order
// changed.
func (o *optimizer) tryPermutations(win []int, leftBound, rightBound float64) bool {
	d := o.d
	n := len(win)
	orig := make([]geom.Point, n)
	for i, ci := range win {
		orig[i] = d.Cells[ci].Pos
	}
	apply := func(perm []int) bool {
		x := leftBound
		for _, pi := range perm {
			ci := win[pi]
			c := &d.Cells[ci]
			c.Pos = geom.Point{X: x, Y: orig[0].Y}
			x += c.W()
		}
		if x > rightBound+1e-9 {
			return false
		}
		for _, pi := range perm {
			ci := win[pi]
			if !o.fenceOK(ci, d.Cells[ci].Rect()) {
				return false
			}
		}
		return true
	}
	restore := func() {
		for i, ci := range win {
			d.Cells[ci].Pos = orig[i]
		}
	}
	bestCost := o.netCost(win...)
	var bestPerm []int
	perms := permutations(n)
	for _, perm := range perms {
		if !apply(perm) {
			restore()
			continue
		}
		c := o.netCost(win...)
		if c < bestCost-1e-9 {
			bestCost = c
			bestPerm = append([]int(nil), perm...)
		}
		restore()
	}
	if bestPerm == nil {
		return false
	}
	apply(bestPerm)
	// Identity permutation may still have moved cells (gap collapsing);
	// only count real reorders.
	for i, pi := range bestPerm {
		if pi != i {
			return true
		}
	}
	return true
}

// permutations returns all permutations of [0, n).
func permutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	sub := permutations(n - 1)
	var out [][]int
	for _, p := range sub {
		for pos := 0; pos <= len(p); pos++ {
			np := make([]int, 0, n)
			np = append(np, p[:pos]...)
			np = append(np, n-1)
			np = append(np, p[pos:]...)
			out = append(out, np)
		}
	}
	return out
}

// rowShift slides every cell to its net-optimal x within its free gap.
func (o *optimizer) rowShift() int {
	d := o.d
	rows := o.rowsOf()
	count := 0
	for _, y := range sortedRowYs(rows) {
		row := rows[y]
		for i, ci := range row {
			c := &d.Cells[ci]
			left := d.Die.Lo.X
			if i > 0 {
				p := &d.Cells[row[i-1]]
				left = p.Pos.X + p.W()
			}
			right := d.Die.Hi.X
			if i+1 < len(row) {
				right = d.Cells[row[i+1]].Pos.X
			}
			left, right = o.gapBounds(left, right, y, c.H(), c.Pos.X)
			if right-left < c.W() {
				continue
			}
			want, ok := o.optimalPoint(ci)
			if !ok {
				continue
			}
			targetX := math.Max(left, math.Min(want.X-c.W()/2, right-c.W()))
			if math.Abs(targetX-c.Pos.X) < 1e-9 {
				continue
			}
			oldPos := c.Pos
			before := o.netCost(ci)
			c.Pos = geom.Point{X: targetX, Y: oldPos.Y}
			if !o.fenceOK(ci, c.Rect()) || o.netCost(ci) >= before-1e-9 {
				c.Pos = oldPos
				continue
			}
			count++
		}
	}
	return count
}
