package dp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/legal"
)

func TestHungarianKnownMatrix(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign := hungarian(cost)
	// Optimal: 0->1 (1), 1->0 (2), 2->2 (2) = 5.
	var total float64
	seen := map[int]bool{}
	for i, j := range assign {
		total += cost[i][j]
		if seen[j] {
			t.Fatalf("column %d assigned twice", j)
		}
		seen[j] = true
	}
	if total != 5 {
		t.Errorf("assignment cost = %v, want 5 (assign %v)", total, assign)
	}
}

func TestHungarianIdentityOptimal(t *testing.T) {
	cost := [][]float64{
		{0, 9, 9},
		{9, 0, 9},
		{9, 9, 0},
	}
	assign := hungarian(cost)
	for i, j := range assign {
		if i != j {
			t.Fatalf("assign = %v", assign)
		}
	}
}

func TestHungarianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Round(rng.Float64()*100) / 10
			}
		}
		assign := hungarian(cost)
		var got float64
		for i, j := range assign {
			got += cost[i][j]
		}
		best := math.Inf(1)
		for _, perm := range permutations(n) {
			var c float64
			for i, j := range perm {
				c += cost[i][j]
			}
			best = math.Min(best, c)
		}
		if math.Abs(got-best) > 1e-9 {
			t.Fatalf("trial %d: hungarian %v != brute force %v", trial, got, best)
		}
	}
}

func TestHungarianEmpty(t *testing.T) {
	if got := hungarian(nil); got != nil {
		t.Errorf("empty = %v", got)
	}
}

func TestMatchingUncrossesIndependentCells(t *testing.T) {
	// Four same-size cells wired to four terminals, placed rotated by two
	// positions; matching must restore the straight assignment.
	b := db.NewBuilder("m", geom.NewRect(0, 0, 100, 10))
	var terms, cells []int
	for i := 0; i < 4; i++ {
		terms = append(terms, b.AddTerminal(nm("t", i), geom.Point{X: float64(10 + 25*i), Y: 0}))
		cells = append(cells, b.AddStdCell(nm("c", i), 4, 10))
	}
	for i := 0; i < 4; i++ {
		b.AddNet(nm("n", i), 1, db.Conn{Cell: terms[i]}, b.CenterConn(cells[i]))
	}
	b.MakeRows(10, 1)
	d := b.MustDesign()
	for i := 0; i < 4; i++ {
		d.Cells[cells[i]].Pos = geom.Point{X: float64(8 + 25*((i+2)%4)), Y: 0}
	}
	before := d.HPWL()
	res := OptimizeWithMatching(d, Options{Passes: 1})
	if res.After >= before {
		t.Errorf("matching did not improve: %v -> %v", before, res.After)
	}
	// Each cell should now sit at its own terminal's column.
	for i := 0; i < 4; i++ {
		cx := d.Cells[cells[i]].Center().X
		tx := float64(10 + 25*i)
		if math.Abs(cx-tx) > 13 {
			t.Errorf("cell %d at %v, terminal at %v", i, cx, tx)
		}
	}
}

func TestMatchingPreservesLegality(t *testing.T) {
	d := gen.MustGenerate(gen.Config{
		Name: "dm", Seed: 33, NumStdCells: 300, NumFixedMacros: 2,
		NumModules: 3, NumFences: 2, NumTerminals: 8, TargetUtil: 0.55,
	})
	for i, ci := range d.Movable() {
		c := &d.Cells[ci]
		c.SetCenter(geom.Point{
			X: d.Die.Lo.X + float64((i*37)%101)/101*d.Die.W(),
			Y: d.Die.Lo.Y + float64((i*53)%97)/97*d.Die.H(),
		})
		if rg := d.CellRegion(ci); rg != db.NoRegion {
			c.SetCenter(d.Regions[rg].Nearest(c.Center()))
		}
	}
	legal.LegalizeMacros(d)
	if _, err := legal.LegalizeCells(d); err != nil {
		t.Fatal(err)
	}
	before := d.HPWL()
	res := OptimizeWithMatching(d, Options{Passes: 2})
	if res.After > before+1e-6 {
		t.Errorf("matching worsened HPWL: %v -> %v", before, res.After)
	}
	if d.OverlapViolations() != 0 || d.FenceViolations() != 0 || d.OutOfDie() != 0 {
		t.Errorf("legality broken: ov=%d fv=%d ood=%d",
			d.OverlapViolations(), d.FenceViolations(), d.OutOfDie())
	}
}

func TestMatchingBeatsPlainOptimize(t *testing.T) {
	build := func() *dbDesign {
		d := gen.MustGenerate(gen.Config{
			Name: "cmp", Seed: 44, NumStdCells: 250, NumFixedMacros: 1,
			NumModules: 2, NumFences: 1, NumTerminals: 16, TargetUtil: 0.5,
		})
		for i, ci := range d.Movable() {
			c := &d.Cells[ci]
			c.SetCenter(geom.Point{
				X: d.Die.Lo.X + float64((i*37)%101)/101*d.Die.W(),
				Y: d.Die.Lo.Y + float64((i*53)%97)/97*d.Die.H(),
			})
			if rg := d.CellRegion(ci); rg != db.NoRegion {
				c.SetCenter(d.Regions[rg].Nearest(c.Center()))
			}
		}
		legal.LegalizeMacros(d)
		if _, err := legal.LegalizeCells(d); err != nil {
			t.Fatal(err)
		}
		return d
	}
	plain := Optimize(build(), Options{Passes: 2})
	matched := OptimizeWithMatching(build(), Options{Passes: 2})
	if matched.After > plain.After*1.01 {
		t.Errorf("matching variant worse: %v vs plain %v", matched.After, plain.After)
	}
}

type dbDesign = db.Design

func nm(p string, i int) string { return p + string(rune('a'+i)) }

func TestCongestionPenaltyDetersHotMoves(t *testing.T) {
	// A cell pulled rightward by its net; the right half of the die is a
	// routed hot spot. Without the penalty the shift goes right; with a
	// strong penalty it stays put.
	build := func() *db.Design {
		b := db.NewBuilder("cg", geom.NewRect(0, 0, 100, 10))
		tr := b.AddTerminal("t", geom.Point{X: 95, Y: 5})
		a := b.AddStdCell("a", 4, 10)
		b.AddNet("n", 1, db.Conn{Cell: tr}, b.CenterConn(a))
		b.MakeRows(10, 1)
		d := b.MustDesign()
		d.Cells[a].Pos = geom.Point{X: 10, Y: 0}
		return d
	}
	hot := make([]float64, 10) // 10x1 tiles of 10x10
	for tx := 5; tx < 10; tx++ {
		hot[tx] = 3.0 // 300% overload on the right half
	}
	dFree := build()
	Optimize(dFree, Options{Passes: 1})
	dCong := build()
	Optimize(dCong, Options{
		Passes:      1,
		Congestion:  hot,
		CongNX:      10,
		CongTileW:   10,
		CongTileH:   10,
		CongPenalty: 10,
	})
	xFree := dFree.Cells[1].Pos.X
	xCong := dCong.Cells[1].Pos.X
	if xFree < 80 {
		t.Fatalf("unpenalized shift only reached %v", xFree)
	}
	if xCong >= 50 {
		t.Errorf("congestion-aware shift entered the hot zone: x=%v", xCong)
	}
}
