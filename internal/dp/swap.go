package dp

import (
	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/incr"
)

// bucketIndex is a reusable uniform-grid spatial index over cell
// positions: the partner scan of global swap looks up the 3×3 bucket
// neighbourhood around a cell's optimal point. Rebuilt per pass into the
// same backing storage, so steady-state passes allocate nothing.
type bucketIndex struct {
	origin  geom.Point
	inv     float64
	nx, ny  int
	buckets [][]int
}

// build re-indexes the given cells at their current positions on a grid
// of the given bucket size.
func (b *bucketIndex) build(d *db.Design, cells []int, size float64) {
	if size <= 0 {
		size = 1
	}
	b.origin = d.Die.Lo
	b.inv = 1 / size
	b.nx = int(d.Die.W()*b.inv) + 1
	b.ny = int(d.Die.H()*b.inv) + 1
	n := b.nx * b.ny
	if cap(b.buckets) < n {
		b.buckets = append(b.buckets[:cap(b.buckets)], make([][]int, n-cap(b.buckets))...)
	}
	b.buckets = b.buckets[:n]
	for i := range b.buckets {
		b.buckets[i] = b.buckets[i][:0]
	}
	for _, ci := range cells {
		bx, by := b.key(d.Cells[ci].Pos)
		b.buckets[by*b.nx+bx] = append(b.buckets[by*b.nx+bx], ci)
	}
}

// key maps a point to its bucket coordinates, clamped onto the grid.
func (b *bucketIndex) key(p geom.Point) (int, int) {
	bx := int((p.X - b.origin.X) * b.inv)
	by := int((p.Y - b.origin.Y) * b.inv)
	if bx < 0 {
		bx = 0
	} else if bx >= b.nx {
		bx = b.nx - 1
	}
	if by < 0 {
		by = 0
	} else if by >= b.ny {
		by = b.ny - 1
	}
	return bx, by
}

// at returns the bucket's cells, or nil off-grid.
func (b *bucketIndex) at(bx, by int) []int {
	if bx < 0 || by < 0 || bx >= b.nx || by >= b.ny {
		return nil
	}
	return b.buckets[by*b.nx+bx]
}

// swapProposal is one cell's chosen partner from the propose phase; a
// negative partner means no improving swap was found.
type swapProposal struct {
	partner int
}

// globalSwap exchanges same-footprint cells when that reduces cost.
// Propose: every cell independently scans the bucket neighbourhood of its
// optimal point against the frozen pre-pass state. Commit: proposals are
// re-validated and applied serially in cell order.
func (o *optimizer) globalSwap() int {
	d := o.d
	rowH := d.RowHeight()
	if rowH <= 0 {
		rowH = 1
	}
	o.idx.build(d, o.cells, rowH*o.opt.SwapRadius)
	o.buildAnchors()
	if cap(o.swapProps) < len(o.cells) {
		o.swapProps = make([]swapProposal, len(o.cells))
	}
	props := o.swapProps[:len(o.cells)]
	hasCong := o.opt.Congestion != nil
	o.forItems(len(o.cells), func(ws *workerState, i int) {
		props[i] = swapProposal{partner: -1}
		ci := o.cells[i]
		c := &d.Cells[ci]
		class := o.cellClass[ci]
		want, ok := o.optimalPoint(ci)
		if !ok {
			return
		}
		dx := want.X - (c.Pos.X + o.cellW[ci]/2)
		dy := want.Y - (c.Pos.Y + o.cellH[ci]/2)
		if dx*dx+dy*dy < rowH*rowH {
			return // already near optimal
		}
		bx, by := o.idx.key(want)
		best, bestGain := -1, eps
		mrCi := o.anchors.MaxGain(ci)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				for _, cj := range o.idx.at(bx+dx, by+dy) {
					if cj == ci || o.cellClass[cj] != class {
						continue
					}
					ws.trials++
					// Admissible prune: no single-cell move beats its
					// MaxGain bound, so a net-disjoint pair whose combined
					// bounds cannot top the best gain so far cannot win.
					// (Shared-net pairs can beat the sum — e.g. a two-pin
					// net between them collapses — so they are exempt.)
					if !hasCong && mrCi+o.anchors.MaxGain(cj) <= bestGain &&
						!o.anchors.SharesNet(ci, cj) {
						continue
					}
					gain := -o.anchors.SwapDelta(ci, cj)
					if hasCong {
						gain -= o.congDelta(ci, d.Cells[cj].Pos) + o.congDelta(cj, c.Pos)
					}
					if gain > bestGain {
						bestGain, best = gain, cj
					}
				}
			}
		}
		props[i].partner = best
	})
	// Serial commit in cell order, re-validated against the live state.
	swaps := 0
	ws := o.state(0)
	for i := range props {
		cj := props[i].partner
		if cj < 0 {
			continue
		}
		ci := o.cells[i]
		if !o.fenceOKAt(ci, d.Cells[cj].Pos) || !o.fenceOKAt(cj, d.Cells[ci].Pos) {
			continue
		}
		o.trials++
		if o.swapGain(ws.eval, ci, cj) <= eps {
			continue
		}
		pi, pj := d.Cells[ci].Pos, d.Cells[cj].Pos
		o.cache.Move(ci, pj)
		o.cache.Move(cj, pi)
		swaps++
	}
	return swaps
}

// swapGain is the exact cost reduction (weighted HPWL plus congestion) of
// exchanging the two cells' current positions; positive means the swap
// helps. Shared nets between the pair are handled exactly by the staged
// evaluation.
func (o *optimizer) swapGain(e *incr.DeltaEval, ci, cj int) float64 {
	d := o.d
	pi, pj := d.Cells[ci].Pos, d.Cells[cj].Pos
	e.Reset()
	e.Stage(ci, pj)
	e.Stage(cj, pi)
	delta := e.Delta()
	delta += o.congDelta(ci, pj)
	delta += o.congDelta(cj, pi)
	return -delta
}
