package dp

import (
	"testing"

	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/legal"
)

// BenchmarkOptimize2000 times the full detailed-placement pass set on
// the 2000-cell congested synthetic design, restarting from the same
// scattered-then-legalized placement each iteration (the design mirrors
// cmd/benchdp's engine configuration).
func BenchmarkOptimize2000(b *testing.B) {
	d := gen.MustGenerate(gen.Congested(2000, 3))
	for i, ci := range d.Movable() {
		c := &d.Cells[ci]
		c.SetCenter(geom.Point{
			X: d.Die.Lo.X + float64((i*37)%97)/97*d.Die.W(),
			Y: d.Die.Lo.Y + float64((i*61)%89)/89*d.Die.H(),
		})
		if rg := d.CellRegion(ci); rg != db.NoRegion {
			c.SetCenter(d.Regions[rg].Nearest(c.Center()))
		}
	}
	legal.LegalizeMacros(d)
	legal.LegalizeCells(d)
	start := make([]geom.Point, len(d.Cells))
	for ci := range d.Cells {
		start[ci] = d.Cells[ci].Pos
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for ci := range d.Cells {
			d.Cells[ci].Pos = start[ci]
		}
		b.StartTimer()
		Optimize(d, Options{Passes: 2, Workers: 1})
	}
}
