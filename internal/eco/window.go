package eco

import (
	"sort"

	"repro/internal/geom"
)

// expandWindows turns the dirty seed rectangles into die-clipped repair
// windows. Each seed grows by margin on every side; windows merge (to a
// fixpoint) only when their bounding box covers exactly their union —
// containment, aligned abutment, aligned overlap — so merging never
// swallows clean area. Diagonal or offset windows stay separate and may
// overlap each other; membership (inAnyWindow) is union semantics, which
// is all the freeze logic needs. Greedily merging any two touching
// windows into their bbox is tempting but wrong: scattered seeds chain
// into one die-sized window and the freeze degenerates to a full
// re-place. The result is deterministic and ordered by (y, x).
func expandWindows(seeds []geom.Rect, margin float64, die geom.Rect) []geom.Rect {
	if len(seeds) == 0 {
		return nil
	}
	wins := make([]geom.Rect, 0, len(seeds))
	for _, s := range seeds {
		// Intersect, not ClampRect: a window at the die edge must be
		// clipped in place, never slid inward over clean cells.
		w := s.Expand(margin).Intersect(die)
		if w.Empty() {
			continue
		}
		wins = append(wins, w)
	}
	sortRects(wins)
	for {
		merged := mergeOnce(wins)
		if len(merged) == len(wins) {
			return merged
		}
		wins = merged
	}
}

// mergeOnce folds every rectangle into the first earlier rectangle it
// merges losslessly with (bbox == exact union).
func mergeOnce(rects []geom.Rect) []geom.Rect {
	var out []geom.Rect
	for _, r := range rects {
		mergedIn := false
		for i := range out {
			if touches(out[i], r) && lossless(out[i], r) {
				out[i] = out[i].Union(r)
				mergedIn = true
				break
			}
		}
		if !mergedIn {
			out = append(out, r)
		}
	}
	sortRects(out)
	return out
}

// lossless reports whether the bounding box of a and b covers exactly
// their union — no clean area gets annexed by merging them.
func lossless(a, b geom.Rect) bool {
	u := a.Union(b)
	return u.Area() <= a.Area()+b.Area()-a.OverlapArea(b)+1e-9
}

// touches reports overlap including shared edges: windows that abut must
// merge, or the legalizer would pack their shared boundary twice.
func touches(a, b geom.Rect) bool {
	return a.Lo.X <= b.Hi.X && b.Lo.X <= a.Hi.X &&
		a.Lo.Y <= b.Hi.Y && b.Lo.Y <= a.Hi.Y
}

func sortRects(rects []geom.Rect) {
	sort.Slice(rects, func(i, j int) bool {
		if rects[i].Lo.Y != rects[j].Lo.Y {
			return rects[i].Lo.Y < rects[j].Lo.Y
		}
		if rects[i].Lo.X != rects[j].Lo.X {
			return rects[i].Lo.X < rects[j].Lo.X
		}
		if rects[i].Hi.Y != rects[j].Hi.Y {
			return rects[i].Hi.Y < rects[j].Hi.Y
		}
		return rects[i].Hi.X < rects[j].Hi.X
	})
}

// inAnyWindow reports whether r intersects (with positive area or edge
// contact) any window. Windows are few, so a linear scan beats an index.
func inAnyWindow(r geom.Rect, wins []geom.Rect) bool {
	for _, w := range wins {
		if touches(w, r) {
			return true
		}
	}
	return false
}
