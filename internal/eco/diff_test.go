package eco

import (
	"reflect"
	"testing"

	"repro/internal/db"
	"repro/internal/geom"
)

// testPair builds a small hand-made base design: four std cells in a row
// structure, one fixed macro, a terminal, and three nets (one of them
// net-weighted). The builder is returned so tests can derive edited
// variants with the same construction path.
func buildBase() *db.Design {
	b := db.NewBuilder("diff-base", geom.NewRect(0, 0, 100, 40))
	b.MakeRows(4, 1)
	a := b.AddStdCell("a", 4, 4)
	c2 := b.AddStdCell("b", 6, 4)
	c3 := b.AddStdCell("c", 4, 4)
	c4 := b.AddStdCell("d", 8, 4)
	m := b.AddMacro("blk", 12, 12, true)
	b.SetCellPos(m, geom.Point{X: 80, Y: 0})
	t0 := b.AddTerminal("pad", geom.Point{X: 0, Y: 40})
	b.AddNet("n1", 1, b.CenterConn(a), b.CenterConn(c2))
	b.AddNet("n2", 2, b.CenterConn(c2), b.CenterConn(c3), b.CenterConn(t0))
	b.AddNet("n3", 1, b.CenterConn(c3), b.CenterConn(c4))
	d := b.MustDesign()
	for i, ci := range []int{a, c2, c3, c4} {
		d.Cells[ci].Pos = geom.Point{X: float64(4 + 10*i), Y: 4}
	}
	return d
}

func TestDiffIdenticalIsEmpty(t *testing.T) {
	base := buildBase()
	next := base.Clone()
	df := DiffDesigns(base, next)
	if !df.Empty() {
		t.Fatalf("identical designs should diff empty, got %+v", df)
	}
	if got := df.ReuseRatio(); got != 1 {
		t.Fatalf("reuse ratio = %v, want 1", got)
	}
	if df.NetsUnchanged != 3 || df.NetsChanged+df.NetsAdded+df.NetsRemoved != 0 {
		t.Fatalf("net counts wrong: %+v", df)
	}
}

// A renamed-but-otherwise-identical cell must classify as removed+added —
// names are the identity — and must do so deterministically.
func TestDiffRenamedIdenticalCell(t *testing.T) {
	base := buildBase()
	next := base.Clone()
	ci := next.CellIndex("c")
	next.Cells[ci].Name = "c_renamed"
	next.InvalidateNameIndex()

	df := DiffDesigns(base, next)
	if len(df.Added) != 1 || next.Cells[df.Added[0]].Name != "c_renamed" {
		t.Fatalf("added = %v, want the renamed cell", df.Added)
	}
	if len(df.RemovedNames) != 1 || df.RemovedNames[0] != "c" {
		t.Fatalf("removed = %v, want [c]", df.RemovedNames)
	}
	// The rename must NOT ripple: n2 and n3 changed membership, but they
	// keep their names, so the neighbors' own pins still map to the same
	// nets and their base positions stay reusable.
	if len(df.Changed) != 0 {
		names := make([]string, 0, len(df.Changed))
		for _, i := range df.Changed {
			names = append(names, next.Cells[i].Name)
		}
		t.Errorf("rename dirtied neighbors %v, want none", names)
	}
	if df.NetsChanged != 2 {
		t.Errorf("NetsChanged = %d, want 2 (n2, n3)", df.NetsChanged)
	}
	if df.MacroDelta {
		t.Error("std-cell rename must not set MacroDelta")
	}
	// Determinism: the same inputs produce the identical diff.
	if df2 := DiffDesigns(base, next.Clone()); !reflect.DeepEqual(df, df2) {
		t.Errorf("diff is not deterministic:\n%+v\nvs\n%+v", df, df2)
	}
}

// Removing cells can strand nets at degree 1 or 0; the differ must
// classify without crashing and report the removals.
func TestDiffDegreeZeroNetAfterRemoval(t *testing.T) {
	base := buildBase()

	// Rebuild next without cells a and b: n1 drops to degree 0, n2 to
	// degree 1 (the terminal).
	b := db.NewBuilder("diff-base", geom.NewRect(0, 0, 100, 40))
	b.MakeRows(4, 1)
	c3 := b.AddStdCell("c", 4, 4)
	c4 := b.AddStdCell("d", 8, 4)
	m := b.AddMacro("blk", 12, 12, true)
	b.SetCellPos(m, geom.Point{X: 80, Y: 0})
	t0 := b.AddTerminal("pad", geom.Point{X: 0, Y: 40})
	b.AddNet("n1", 1)
	b.AddNet("n2", 2, b.CenterConn(t0))
	b.AddNet("n3", 1, b.CenterConn(c3), b.CenterConn(c4))
	next := b.MustDesign()

	df := DiffDesigns(base, next)
	if got := df.RemovedNames; len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("removed = %v, want [a b]", got)
	}
	if len(df.RemovedRects) != 2 {
		t.Fatalf("removed rects = %v", df.RemovedRects)
	}
	// c and d keep identical connectivity (n3 untouched, and c lost
	// nothing — its pins are on n2? no: c is on n2 and n3; n2 changed).
	if len(df.Added) != 0 {
		t.Errorf("added = %v, want none", df.Added)
	}
	if df.NetsChanged == 0 {
		t.Errorf("expected changed nets, got %+v", df)
	}
}

// Macro add/remove is beyond window repair: the diff must flag it and
// NeedFull must force the full-place fallback regardless of size.
func TestDiffMacroDeltaForcesFull(t *testing.T) {
	base := buildBase()

	next := base.Clone()
	next.Cells = append(next.Cells, db.Cell{
		Name: "blk2", Kind: db.Macro, BaseW: 10, BaseH: 10,
		Region: db.NoRegion, Module: db.NoModule, Inflate: 1,
	})
	next.InvalidateNameIndex()
	df := DiffDesigns(base, next)
	if !df.MacroDelta {
		t.Fatal("macro addition must set MacroDelta")
	}
	if !df.NeedFull(0) {
		t.Fatal("macro addition must force NeedFull")
	}
	if _, err := Place(next, df, FromDesign(base), Options{}); err != ErrNeedFull {
		t.Fatalf("Place = %v, want ErrNeedFull", err)
	}

	// Macro removal, same story.
	df2 := DiffDesigns(next, base)
	if !df2.MacroDelta || !df2.NeedFull(0) {
		t.Fatalf("macro removal must force full place: %+v", df2)
	}
}

func TestDiffDirtyFractionForcesFull(t *testing.T) {
	base := buildBase()
	next := base.Clone()
	// Rewire every cell: move the n1 pins to n3.
	for _, pi := range append([]int(nil), next.Nets[0].Pins...) {
		next.Nets[0].Pins = next.Nets[0].Pins[1:]
		next.Pins[pi].Net = 2
		next.Nets[2].Pins = append(next.Nets[2].Pins, pi)
	}
	df := DiffDesigns(base, next)
	if df.Empty() {
		t.Fatal("rewire must not be empty")
	}
	if !df.NeedFull(0.25) {
		t.Fatalf("dirty fraction %d/%d should exceed 0.25", df.DirtyCount(), len(next.Cells))
	}
	if df.NeedFull(1.5) {
		t.Fatal("a 150%% budget should accept any std-cell delta")
	}
}

// Moving a fixed object is a problem-statement change: same connectivity,
// but the cell must classify as changed so its surroundings get repaired.
func TestDiffMovedFixedCell(t *testing.T) {
	base := buildBase()
	next := base.Clone()
	mi := next.CellIndex("blk")
	next.Cells[mi].Pos = geom.Point{X: 60, Y: 20}
	df := DiffDesigns(base, next)
	found := false
	for _, i := range df.Changed {
		if next.Cells[i].Name == "blk" {
			found = true
		}
	}
	if !found {
		t.Fatalf("moved fixed macro must be in Changed: %+v", df)
	}
	if !df.MacroDelta {
		t.Fatal("moved macro must set MacroDelta")
	}
}

// Net names must not matter (mirroring the canonical fingerprint): a
// renamed net diffs empty.
func TestDiffNetRenameIgnored(t *testing.T) {
	base := buildBase()
	next := base.Clone()
	next.Nets[1].Name = "renamed_net"
	df := DiffDesigns(base, next)
	if !df.Empty() {
		t.Fatalf("net rename must diff empty, got %+v", df)
	}
}

func TestDiffPlacementNamePresence(t *testing.T) {
	base := buildBase()
	pl := FromDesign(base)

	next := base.Clone()
	ci := next.CellIndex("d")
	next.Cells[ci].Name = "d2"
	next.InvalidateNameIndex()

	df := DiffPlacement(next, pl)
	if len(df.Added) != 1 || next.Cells[df.Added[0]].Name != "d2" {
		t.Fatalf("added = %v", df.Added)
	}
	if len(df.RemovedNames) != 1 || df.RemovedNames[0] != "d" {
		t.Fatalf("removed = %v", df.RemovedNames)
	}
	// Placement-only removals carry point seeds at the recorded position.
	if r := df.RemovedRects[0]; r.W() != 0 || r.H() != 0 {
		t.Fatalf("placement-only removal rect should be a point, got %v", r)
	}
	if len(df.Unchanged) != len(next.Cells)-1 {
		t.Fatalf("unchanged = %d, want %d", len(df.Unchanged), len(next.Cells)-1)
	}
}
