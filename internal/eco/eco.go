package eco

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/db"
	"repro/internal/dp"
	"repro/internal/estimate"
	"repro/internal/geom"
	"repro/internal/legal"
	"repro/internal/obs"
	"repro/internal/route"
)

// ErrNeedFull is returned by Place when the diff is outside windowed
// repair's reach (macro delta or too large a dirty fraction). Callers
// should fall back to a from-scratch core.PlaceContext run.
var ErrNeedFull = errors.New("eco: delta needs a full place")

// Options configures the windowed repair pass. The zero value is
// serviceable.
type Options struct {
	// Workers is the worker count for legalization, detailed placement
	// and the congestion estimator (≤ 0 selects the shared internal/par
	// policy). Results are byte-identical for every worker count.
	Workers int
	// MarginRows is the window expansion margin around each dirty seed in
	// row heights (default 8). Legalization fallbacks double it and retry
	// up to two times before giving up.
	MarginRows float64
	// MaxDirtyFrac is the dirty-cell fraction above which Place returns
	// ErrNeedFull (≤ 0 = DefaultMaxDirtyFrac).
	MaxDirtyFrac float64
	// DPPasses is the detailed-placement pass count inside the windows
	// (≤ 0 = dp's default).
	DPPasses int
	// DisableEstimate skips the live congestion guard during window DP
	// (designs without a routing grid never build one).
	DisableEstimate bool
	// Obs records "eco" spans and debug logs (nil = disabled).
	Obs *obs.Recorder
}

// Result reports what the repair achieved.
type Result struct {
	// ChangedCells is the number of re-placed next cells (changed+added),
	// Added/Removed the netlist churn, ReuseRatio the fraction of next
	// cells whose base position transferred untouched.
	ChangedCells int
	Added        int
	Removed      int
	ReuseRatio   float64
	// Windows are the repaired rectangles (empty for an empty diff).
	Windows []geom.Rect
	// Frozen is the number of movable cells pinned outside the windows
	// during repair; Repaired the movable std cells inside them.
	Frozen   int
	Repaired int

	Legal legal.CellResult
	DP    dp.Result

	// Final quality of the repaired placement.
	HPWL            float64
	Overlaps        int
	FenceViolations int
	OutOfDie        int

	// LegalTime and DPTime attribute the repair wall time.
	LegalTime time.Duration
	DPTime    time.Duration
}

// Place repairs next in place: it transfers base positions onto every
// matched cell, seeds added cells near their connected neighbors, grows
// repair windows around the dirty set, and re-legalizes + re-optimizes
// only the window members while everything else is frozen in place.
//
// The diff must have been computed against the same base the placement
// came from (DiffDesigns when the base netlist is available, DiffPlacement
// for a bare .pl). Place returns ErrNeedFull — leaving next's positions in
// the transferred-but-unrepaired state — when the delta is out of reach;
// callers then run the full flow instead.
//
// An empty diff transfers every position and skips the repair entirely,
// reproducing the base placement byte-for-byte regardless of worker count.
// For non-empty diffs the repair rides the legalizer's serial Abacus
// dispatch and dp's frozen-state propose / fixed-order commit, so the
// repaired placement is byte-identical for every worker count too.
func Place(next *db.Design, df *Diff, base *Placement, opt Options) (Result, error) {
	res := Result{
		ChangedCells: df.ChangedCells(),
		Added:        len(df.Added),
		Removed:      len(df.RemovedNames),
		ReuseRatio:   df.ReuseRatio(),
	}
	if len(next.Cells) == 0 {
		return res, fmt.Errorf("eco: empty design")
	}
	if df.NeedFull(opt.MaxDirtyFrac) {
		transfer(next, df, base)
		return res, ErrNeedFull
	}
	sp := opt.Obs.StartSpan("eco")
	defer func() {
		if sp != nil {
			sp.Add("changed_cells", int64(res.ChangedCells))
			sp.Add("windows", int64(len(res.Windows)))
			sp.Add("frozen", int64(res.Frozen))
			sp.Add("repaired", int64(res.Repaired))
			sp.End()
		}
	}()

	transfer(next, df, base)
	pinBaseMacros(next, base)
	seedAdded(next, df, base)

	if df.Empty() {
		res.ReuseRatio = 1
		finishQuality(next, &res)
		return res, nil
	}

	rowH := next.RowHeight()
	if rowH <= 0 {
		rowH = 1
	}
	marginRows := opt.MarginRows
	if marginRows <= 0 {
		marginRows = 8
	}

	// Dirty seeds: the (post-transfer) footprints of every changed and
	// added cell, plus the freed footprints of removed cells.
	dirty := make(map[int]bool, df.ChangedCells())
	seeds := make([]geom.Rect, 0, df.DirtyCount())
	for _, i := range df.Changed {
		dirty[i] = true
		seeds = append(seeds, next.Cells[i].Rect())
	}
	for _, i := range df.Added {
		dirty[i] = true
		seeds = append(seeds, next.Cells[i].Rect())
	}
	seeds = append(seeds, df.RemovedRects...)

	// Re-legalize the windows with everything else frozen. Legalization
	// fallbacks mean a window was too tight to absorb its cells: widen
	// and retry before surrendering. The freeze stays in effect through
	// detailed placement so DP, too, only ever moves window members.
	var frozen []int
	t0 := time.Now()
	for attempt := 0; ; attempt++ {
		res.Windows = expandWindows(seeds, marginRows*rowH, next.Die)
		frozen = freezeOutside(next, dirty, res.Windows)
		res.Frozen = len(frozen)
		lres, lerr := legal.LegalizeCellsOpt(next, legal.Options{Workers: opt.Workers})
		if lerr != nil {
			unfreeze(next, frozen)
			return res, lerr
		}
		res.Legal = lres
		if lres.Fallbacks == 0 || attempt >= 2 {
			break
		}
		unfreeze(next, frozen)
		marginRows *= 2
		opt.Obs.Log().Debug("eco: legalize fallbacks, widening windows",
			"fallbacks", lres.Fallbacks, "margin_rows", marginRows)
	}
	res.LegalTime = time.Since(t0)
	res.Repaired = countMovableStd(next)

	// Detailed placement restricted to the windows: only unfrozen cells
	// enter the optimizer, riding the incremental wirelength cache; with
	// a routing grid present, a live probabilistic congestion estimator
	// guards moves the way the full flow's estimate mode does.
	dpOpt := dp.Options{Passes: opt.DPPasses, Workers: opt.Workers, Obs: opt.Obs}
	if next.Route != nil && !opt.DisableEstimate {
		if grid, err := route.NewGrid(next); err == nil {
			dpOpt.Estimate = estimate.New(grid, estimate.Options{Workers: opt.Workers})
		}
	}
	t1 := time.Now()
	res.DP = dp.Optimize(next, dpOpt)
	res.DPTime = time.Since(t1)

	unfreeze(next, frozen)
	finishQuality(next, &res)
	return res, nil
}

func finishQuality(d *db.Design, res *Result) {
	res.HPWL = d.HPWL()
	res.Overlaps = d.OverlapViolations()
	res.FenceViolations = d.FenceViolations()
	res.OutOfDie = d.OutOfDie()
}

// transfer seeds next with the base placement: every matched movable cell
// takes the base position and orientation. Non-movable cells keep next's
// stated position — for fixed objects the position is part of the problem,
// not the solution. Changed cells get the base position too; it is their
// repair starting point.
func transfer(next *db.Design, df *Diff, base *Placement) {
	apply := func(idx []int) {
		for _, i := range idx {
			c := &next.Cells[i]
			if !c.Movable() {
				continue
			}
			cp, ok := base.Cells[c.Name]
			if !ok {
				continue
			}
			c.Pos = geom.Point{X: cp.X, Y: cp.Y}
			if cp.Orient >= db.N && cp.Orient <= db.FW {
				c.Orient = cp.Orient
			}
		}
	}
	apply(df.Unchanged)
	apply(df.Changed)
}

// pinBaseMacros re-applies the base's pinned-macro state: the full flow's
// macro legalizer pins movable macros permanently once legalized, so the
// base placement records them as fixed. Mirroring that keeps the repaired
// design byte-compatible with a full run's .pl (the /FIXED markers match)
// and keeps window repair macro-free. It runs only on the repair path —
// the ErrNeedFull fallback hands the design to a full place, which must
// see the input's own movability.
func pinBaseMacros(next *db.Design, base *Placement) {
	for i := range next.Cells {
		c := &next.Cells[i]
		if !c.Movable() || c.Kind != db.Macro {
			continue
		}
		if cp, ok := base.Cells[c.Name]; ok && cp.Fixed {
			c.Fixed = true
		}
	}
}

// seedAdded places every added cell at the centroid of its already-placed
// net neighbors (die center when it has none), clamped into its fence
// when it has one. The legalizer does the real packing; the seed just
// keeps displacement and wirelength small.
func seedAdded(next *db.Design, df *Diff, base *Placement) {
	if len(df.Added) == 0 {
		return
	}
	added := make(map[int]bool, len(df.Added))
	for _, i := range df.Added {
		added[i] = true
	}
	for _, i := range df.Added {
		c := &next.Cells[i]
		if !c.Movable() {
			continue
		}
		var sx, sy float64
		var n int
		for _, p := range c.Pins {
			net := &next.Nets[next.Pins[p].Net]
			for _, q := range net.Pins {
				oi := next.Pins[q].Cell
				if oi == i || added[oi] {
					continue
				}
				ctr := next.Cells[oi].Center()
				sx += ctr.X
				sy += ctr.Y
				n++
			}
		}
		ctr := next.Die.Center()
		if n > 0 {
			ctr = geom.Point{X: sx / float64(n), Y: sy / float64(n)}
		}
		if ri := next.CellRegion(i); ri != db.NoRegion {
			ctr = clampIntoRegion(ctr, &next.Regions[ri])
		}
		c.SetCenter(next.Die.ClampPoint(ctr))
	}
}

// clampIntoRegion moves p into the nearest fence rectangle.
func clampIntoRegion(p geom.Point, rg *db.Region) geom.Point {
	if len(rg.Rects) == 0 || rg.ContainsPoint(p) {
		return p
	}
	best := rg.Rects[0].ClampPoint(p)
	bestD := best.ManhattanDist(p)
	for _, r := range rg.Rects[1:] {
		q := r.ClampPoint(p)
		if d := q.ManhattanDist(p); d < bestD {
			best, bestD = q, d
		}
	}
	return best
}

// freezeOutside pins every movable cell that is neither dirty nor inside a
// window by setting Fixed — the one bit both the legalizer and dp key
// movability on, which turns outside cells into exact blocking obstacles.
// Movable macros are always frozen: window repair never moves macros (a
// macro delta already forces the full-place fallback). Returns the frozen
// cell indices for unfreeze.
func freezeOutside(d *db.Design, dirty map[int]bool, wins []geom.Rect) []int {
	var frozen []int
	for i := range d.Cells {
		c := &d.Cells[i]
		if !c.Movable() {
			continue
		}
		if c.Kind == db.StdCell && (dirty[i] || inAnyWindow(c.Rect(), wins)) {
			continue
		}
		c.Fixed = true
		frozen = append(frozen, i)
	}
	return frozen
}

func unfreeze(d *db.Design, frozen []int) {
	for _, i := range frozen {
		d.Cells[i].Fixed = false
	}
}

func countMovableStd(d *db.Design) int {
	n := 0
	for i := range d.Cells {
		if c := &d.Cells[i]; c.Movable() && c.Kind == db.StdCell {
			n++
		}
	}
	return n
}
