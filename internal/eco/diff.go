package eco

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/db"
	"repro/internal/geom"
)

// Diff classifies every cell of the edited ("next") design against a base:
//
//   - Unchanged: same name, same canonical attributes, same connectivity —
//     the base position is reusable as-is.
//   - Changed: same name, but the cell's pins moved to different nets, its
//     offsets/dimensions/fence changed, or (for non-movable cells) its
//     position moved — the cell keeps the base position as a starting
//     point but must be re-placed.
//   - Added: present only in next.
//   - Removed: present only in the base; its old footprint is recorded so
//     the freed area joins the repair windows.
//
// A renamed-but-otherwise-identical cell deliberately classifies as
// removed+added: names are the only stable identity across netlist
// revisions, and guessing at structural matches would make the diff both
// slower and nondeterministic. The classification mirrors the canonical
// fingerprint (db.Design.Fingerprint): net names are ignored, net weight 0
// hashes like the default 1, and cell kinds compare in their canonical
// round-trip form.
type Diff struct {
	// Unchanged, Changed and Added index cells of the next design.
	Unchanged []int
	Changed   []int
	Added     []int
	// RemovedNames lists base-only cells in base order; RemovedRects holds
	// their base footprints (zero-area points when the base is a bare .pl
	// and the dimensions are unknown).
	RemovedNames []string
	RemovedRects []geom.Rect

	// MacroDelta is set when a macro (or a cell whose canonical kind is
	// macro) was added, removed or changed — window repair cannot move
	// macros, so callers must fall back to a full place.
	MacroDelta bool

	// Net classification counts (informational; net identity is by
	// connectivity signature first, then by name for edited nets).
	NetsUnchanged, NetsChanged, NetsAdded, NetsRemoved int

	// BaseCells is the base design's cell count (0 for placement-only
	// diffs where only matched names are known).
	BaseCells int
}

// ChangedCells is the number of next-design cells needing re-placement.
func (df *Diff) ChangedCells() int { return len(df.Changed) + len(df.Added) }

// Empty reports a no-op edit: every next cell matched an unchanged base
// cell and nothing was removed.
func (df *Diff) Empty() bool {
	return df.ChangedCells() == 0 && len(df.RemovedNames) == 0
}

// DirtyCount is the number of dirty seeds the repair windows grow from.
func (df *Diff) DirtyCount() int { return df.ChangedCells() + len(df.RemovedNames) }

// ReuseRatio is the fraction of next cells whose base position transfers.
func (df *Diff) ReuseRatio() float64 {
	total := len(df.Unchanged) + len(df.Changed) + len(df.Added)
	if total == 0 {
		return 0
	}
	return float64(len(df.Unchanged)) / float64(total)
}

// NeedFull reports whether the delta is outside windowed repair's reach:
// a macro changed, or the dirty fraction exceeds maxDirtyFrac (≤ 0 means
// the default 0.25) — past that, repairing windows costs more than it
// saves and quality suffers from the frozen surroundings.
func (df *Diff) NeedFull(maxDirtyFrac float64) bool {
	if df.MacroDelta {
		return true
	}
	if maxDirtyFrac <= 0 {
		maxDirtyFrac = DefaultMaxDirtyFrac
	}
	total := len(df.Unchanged) + len(df.Changed) + len(df.Added)
	if total == 0 {
		return true
	}
	return float64(df.DirtyCount())/float64(total) > maxDirtyFrac
}

// DefaultMaxDirtyFrac is the dirty-set fraction above which NeedFull
// recommends a from-scratch place.
const DefaultMaxDirtyFrac = 0.25

// DiffDesigns computes the full netlist diff between a base design and the
// edited next design. Both designs are read-only; the result indexes
// next's cells. The diff is deterministic: classifications come out in
// design order, never map order.
//
// Net identity is resolved in two passes — untouched nets match by
// connectivity signature (so net renames are invisible, like in the
// canonical fingerprint), then edited nets match by name. A cell is
// "moved-pin" only when its own pin list maps to different nets; cells
// that merely share a net with an edited cell keep their base position,
// which is what keeps small edits' dirty sets small.
func DiffDesigns(base, next *db.Design) *Diff {
	df := &Diff{BaseCells: len(base.Cells)}
	baseSigs := netSignatures(base)
	nextSigs := netSignatures(next)
	basePair, nextPair := df.pairNets(base, next, baseSigs, nextSigs)
	baseCellSig := cellSignatures(base, basePair)
	nextCellSig := cellSignatures(next, nextPair)

	baseRowH := base.RowHeight()
	nextRowH := next.RowHeight()
	for i := range next.Cells {
		nc := &next.Cells[i]
		bi := base.CellIndex(nc.Name)
		if bi < 0 {
			df.Added = append(df.Added, i)
			if kindForDiff(nc, nextRowH) == db.Macro {
				df.MacroDelta = true
			}
			continue
		}
		bc := &base.Cells[bi]
		same := baseCellSig[bi] == nextCellSig[i]
		// Positions of non-movable cells are part of the problem
		// statement, not the solution: a moved fixed macro or terminal
		// invalidates its surroundings even with identical connectivity.
		if same && !nc.Movable() {
			same = bc.Pos == nc.Pos && bc.Orient == nc.Orient
		}
		if same {
			df.Unchanged = append(df.Unchanged, i)
			continue
		}
		df.Changed = append(df.Changed, i)
		if kindForDiff(nc, nextRowH) == db.Macro || kindForDiff(bc, baseRowH) == db.Macro {
			df.MacroDelta = true
		}
	}
	for i := range base.Cells {
		bc := &base.Cells[i]
		if next.CellIndex(bc.Name) >= 0 {
			continue
		}
		df.RemovedNames = append(df.RemovedNames, bc.Name)
		df.RemovedRects = append(df.RemovedRects, bc.Rect())
		if kindForDiff(bc, baseRowH) == db.Macro {
			df.MacroDelta = true
		}
	}
	return df
}

// pairNets resolves net identity across the two designs and fills the
// Nets* counters. Untouched nets pair by connectivity signature (so net
// renames are invisible); edited nets pair by name; leftovers count as
// added/removed. The returned slices map each net index to a pair ID such
// that a base pin and a next pin carry the same ID exactly when their nets
// paired. Cell signatures hash pair IDs instead of raw connectivity, so an
// edit to a net dirties only cells whose own pins moved — not every cell
// that happens to share the net.
func (df *Diff) pairNets(base, next *db.Design, baseSigs, nextSigs []uint64) (basePair, nextPair []int64) {
	basePair = make([]int64, len(base.Nets))
	nextPair = make([]int64, len(next.Nets))
	for n := range basePair {
		basePair[n] = -1
	}
	for n := range nextPair {
		nextPair[n] = -1
	}

	// Pass 1: identical connectivity. Buckets keep base-index order and
	// next nets scan in index order, so duplicate signatures pair
	// deterministically.
	bySig := make(map[uint64][]int, len(base.Nets))
	for n := range base.Nets {
		bySig[baseSigs[n]] = append(bySig[baseSigs[n]], n)
	}
	var pairID int64
	var unresolved []int
	for n := range next.Nets {
		if bucket := bySig[nextSigs[n]]; len(bucket) > 0 {
			b := bucket[0]
			bySig[nextSigs[n]] = bucket[1:]
			basePair[b], nextPair[n] = pairID, pairID
			pairID++
			df.NetsUnchanged++
			continue
		}
		unresolved = append(unresolved, n)
	}

	// Pass 2: edited nets keep their name as identity (first base net
	// wins on a duplicate name).
	byName := make(map[string]int, len(base.Nets))
	for n := range base.Nets {
		if basePair[n] >= 0 {
			continue
		}
		if name := base.Nets[n].Name; name != "" {
			if _, dup := byName[name]; !dup {
				byName[name] = n
			}
		}
	}
	for _, n := range unresolved {
		if name := next.Nets[n].Name; name != "" {
			if b, ok := byName[name]; ok && basePair[b] < 0 {
				basePair[b], nextPair[n] = pairID, pairID
				pairID++
				df.NetsChanged++
				continue
			}
		}
		df.NetsAdded++
	}
	for n := range base.Nets {
		if basePair[n] < 0 {
			df.NetsRemoved++
		}
	}

	// Unpaired nets get side-disjoint IDs so a base pin on a removed net
	// never hashes equal to a next pin on an added net.
	const (
		removedBase = int64(1) << 40
		addedBase   = int64(1) << 41
	)
	for n := range basePair {
		if basePair[n] < 0 {
			basePair[n] = removedBase + int64(n)
		}
	}
	for n := range nextPair {
		if nextPair[n] < 0 {
			nextPair[n] = addedBase + int64(n)
		}
	}
	return basePair, nextPair
}

// DiffPlacement computes a name-presence diff of next against a bare base
// placement (a .pl with no netlist attached). With no base connectivity to
// compare, matched cells classify as unchanged — a rewired-but-renamed
// delta needs a design-level base (DiffDesigns) to be detected. Matched
// non-movable cells whose recorded position moved still classify as
// changed, and removed cells contribute point seeds at their recorded
// positions.
func DiffPlacement(next *db.Design, base *Placement) *Diff {
	df := &Diff{BaseCells: len(base.Order)}
	rowH := next.RowHeight()
	for i := range next.Cells {
		nc := &next.Cells[i]
		cp, ok := base.Cells[nc.Name]
		if !ok {
			df.Added = append(df.Added, i)
			if kindForDiff(nc, rowH) == db.Macro {
				df.MacroDelta = true
			}
			continue
		}
		if !nc.Movable() && (nc.Pos.X != cp.X || nc.Pos.Y != cp.Y) {
			df.Changed = append(df.Changed, i)
			if kindForDiff(nc, rowH) == db.Macro {
				df.MacroDelta = true
			}
			continue
		}
		df.Unchanged = append(df.Unchanged, i)
	}
	for _, name := range base.Order {
		if next.CellIndex(name) >= 0 {
			continue
		}
		cp := base.Cells[name]
		df.RemovedNames = append(df.RemovedNames, name)
		df.RemovedRects = append(df.RemovedRects, geom.Rect{
			Lo: geom.Point{X: cp.X, Y: cp.Y},
			Hi: geom.Point{X: cp.X, Y: cp.Y},
		})
	}
	return df
}

// kindForDiff mirrors the fingerprint's canonical kind: what matters for
// repair is whether the legalizer may move the cell as a standard cell.
func kindForDiff(c *db.Cell, rowH float64) db.CellKind {
	if c.Fixed || c.Kind == db.Terminal {
		if c.BaseW == 0 || c.BaseH == 0 {
			return db.Terminal
		}
		return db.Macro
	}
	if c.Kind == db.Macro {
		return db.Macro
	}
	if rowH > 0 && c.BaseH > rowH {
		return db.Macro
	}
	return db.StdCell
}

// netSignatures hashes every net's canonical connectivity: weight (0
// hashing like the default 1, as the fingerprint does) plus the sorted
// (cell name, pin offset) list. Net names are excluded, so renaming a net
// changes nothing; renaming a cell changes the signature of every net on
// it.
func netSignatures(d *db.Design) []uint64 {
	sigs := make([]uint64, len(d.Nets))
	var parts []string
	for n := range d.Nets {
		net := &d.Nets[n]
		parts = parts[:0]
		for _, p := range net.Pins {
			pin := &d.Pins[p]
			parts = append(parts, fmt.Sprintf("%s\x00%x\x00%x",
				d.Cells[pin.Cell].Name,
				math.Float64bits(canonF(pin.Offset.X)),
				math.Float64bits(canonF(pin.Offset.Y))))
		}
		sort.Strings(parts)
		h := fnv.New64a()
		w := net.Weight
		if w == 0 {
			w = 1
		}
		fmt.Fprintf(h, "w%x|", math.Float64bits(w))
		for _, s := range parts {
			h.Write([]byte(s))
			h.Write([]byte{'\n'})
		}
		sigs[n] = h.Sum64()
	}
	return sigs
}

// cellSignatures hashes every cell's repair-relevant identity: canonical
// kind, dimensions, fence (by region name, index-independent), and the
// sorted multiset of (pin offset, owning-net pair ID). Position is
// deliberately excluded for movable cells — that is the solution being
// transferred, not the problem. The Fixed flag is excluded too: the full
// flow pins movable macros after legalizing them, so a placed base always
// disagrees with a fresh input on that bit; what fixedness implies is
// covered by the position check DiffDesigns applies to non-movable cells.
func cellSignatures(d *db.Design, pairIDs []int64) []uint64 {
	sigs := make([]uint64, len(d.Cells))
	rowH := d.RowHeight()
	var parts []string
	for i := range d.Cells {
		c := &d.Cells[i]
		h := fnv.New64a()
		fmt.Fprintf(h, "k%d|w%x|h%x|",
			kindForDiff(c, rowH),
			math.Float64bits(canonF(c.BaseW)), math.Float64bits(canonF(c.BaseH)))
		if ri := d.CellRegion(i); ri != db.NoRegion {
			fmt.Fprintf(h, "r%s|", d.Regions[ri].Name)
		}
		parts = parts[:0]
		for _, p := range c.Pins {
			pin := &d.Pins[p]
			parts = append(parts, fmt.Sprintf("%x\x00%x\x00%x",
				math.Float64bits(canonF(pin.Offset.X)),
				math.Float64bits(canonF(pin.Offset.Y)),
				pairIDs[pin.Net]))
		}
		sort.Strings(parts)
		for _, s := range parts {
			h.Write([]byte(s))
			h.Write([]byte{'\n'})
		}
		sigs[i] = h.Sum64()
	}
	return sigs
}

// canonF canonicalizes -0.0 to 0.0, like the fingerprint's float encoder.
func canonF(v float64) float64 {
	if v == 0 {
		return 0
	}
	return v
}
