// Package eco implements incremental (engineering-change-order) placement:
// instead of re-running the full multilevel flow after a small netlist
// edit, it diffs the edited design against a previously placed base,
// transfers the base positions onto every unchanged cell, and repairs only
// rectangular windows around the changed cells — re-legalizing the windows
// fence-aware through internal/legal and polishing them with internal/dp
// on top of the incremental wirelength engine and the live congestion
// estimator.
//
// The three layers compose as
//
//	base placement (.pl / snap / placed design)
//	        │
//	eco.DiffDesigns / eco.DiffPlacement     netlist classification
//	        │
//	eco.Place                               transfer + windows + repair
//
// and the whole path inherits the repo-wide determinism contract: the
// legalizer's Abacus dispatch is serial and detailed placement uses
// frozen-state propose with fixed-order commit, so the repaired .pl is
// byte-identical for every worker count. An empty diff short-circuits the
// repair entirely and reproduces the base placement byte-for-byte.
package eco

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/db"
	"repro/internal/snap"
)

// CellPlace is one cell's placed state in a base placement.
type CellPlace struct {
	X, Y   float64
	Orient db.Orient
	Fixed  bool
}

// Placement is a base placement keyed by cell name — the portable form a
// delta job carries its reuse source in, whether it came from a placed
// design in memory, a result .pl, or a snap checkpoint.
type Placement struct {
	// Cells maps cell name to its placed state.
	Cells map[string]CellPlace
	// Order lists the cell names in base-design order; it makes
	// name-presence diffs deterministic without sorting.
	Order []string
}

// FromDesign snapshots a placed design as a base placement.
func FromDesign(d *db.Design) *Placement {
	p := &Placement{
		Cells: make(map[string]CellPlace, len(d.Cells)),
		Order: make([]string, 0, len(d.Cells)),
	}
	for i := range d.Cells {
		c := &d.Cells[i]
		p.Cells[c.Name] = CellPlace{X: c.Pos.X, Y: c.Pos.Y, Orient: c.Orient, Fixed: c.Fixed}
		p.Order = append(p.Order, c.Name)
	}
	return p
}

// FromSnap converts a snap checkpoint into a base placement. Checkpoints
// store positions by cell index, not by name, so the design the snapshot
// was taken from (or one with an identical cell list) must supply the
// names; a cell-count mismatch is rejected. For a netlist delta, use a
// .pl or a placed-design base instead.
func FromSnap(st *snap.State, d *db.Design) (*Placement, error) {
	if st.NumCells() != len(d.Cells) {
		return nil, fmt.Errorf("eco: checkpoint holds %d cells, design %q has %d — a snap base requires the base netlist",
			st.NumCells(), d.Name, len(d.Cells))
	}
	p := &Placement{
		Cells: make(map[string]CellPlace, len(d.Cells)),
		Order: make([]string, 0, len(d.Cells)),
	}
	for i := range d.Cells {
		c := &d.Cells[i]
		o := c.Orient
		if v := db.Orient(st.Orient[i]); v >= db.N && v <= db.FW {
			o = v
		}
		p.Cells[c.Name] = CellPlace{X: st.X[i], Y: st.Y[i], Orient: o, Fixed: c.Fixed}
		p.Order = append(p.Order, c.Name)
	}
	return p, nil
}

// ReadPl parses a UCLA .pl stream (the format cmd/placer and placerd
// emit) into a base placement.
func ReadPl(r io.Reader) (*Placement, error) {
	p := &Placement{Cells: make(map[string]CellPlace)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	seenHeader := false
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		if !seenHeader {
			if !strings.HasPrefix(s, "UCLA") {
				return nil, fmt.Errorf("eco: pl line %d: missing UCLA header", line)
			}
			seenHeader = true
			continue
		}
		fields := strings.Fields(s)
		if len(fields) < 3 {
			return nil, fmt.Errorf("eco: pl line %d: need name x y", line)
		}
		x, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("eco: pl line %d: bad x %q", line, fields[1])
		}
		y, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("eco: pl line %d: bad y %q", line, fields[2])
		}
		cp := CellPlace{X: x, Y: y, Orient: db.N}
		rest := fields[3:]
		if len(rest) > 0 && rest[0] == ":" {
			rest = rest[1:]
		}
		if len(rest) > 0 {
			if o, ok := db.ParseOrient(rest[0]); ok {
				cp.Orient = o
				rest = rest[1:]
			}
		}
		for _, tok := range rest {
			switch strings.ToUpper(tok) {
			case "/FIXED", "/FIXED_NI":
				cp.Fixed = true
			}
		}
		name := fields[0]
		if _, dup := p.Cells[name]; !dup {
			p.Order = append(p.Order, name)
		}
		p.Cells[name] = cp
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("eco: reading pl: %w", err)
	}
	if !seenHeader {
		return nil, fmt.Errorf("eco: empty pl input")
	}
	return p, nil
}
