package eco

import (
	"bytes"
	"testing"

	"repro/internal/bookshelf"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/legal"
)

// testConfig is the pinned synthetic design the repair tests run on: no
// movable macros (window repair freezes them anyway) and moderate
// utilization so legalization always converges from a centered start.
func testConfig() gen.Config {
	return gen.Config{
		Name: "eco-t", Seed: 7,
		NumStdCells: 300, NumFixedMacros: 2, NumMovableMacros: 0,
		MacroSizeRows: 4, NumModules: 3, NumFences: 2, NumTerminals: 16,
		TargetUtil: 0.6, LocalityWindow: 0.05, GlobalFrac: 0.1, TrackCapacity: 40,
	}
}

// placedBase generates the design and produces a legal "previous run"
// placement with the real legalizer (global placement is irrelevant to the
// repair contract, and skipping it keeps the test fast).
func placedBase(t *testing.T) *db.Design {
	t.Helper()
	d := gen.MustGenerate(testConfig())
	if _, err := legal.LegalizeCellsOpt(d, legal.Options{}); err != nil {
		t.Fatalf("base legalize: %v", err)
	}
	return d
}

func plBytes(t *testing.T, d *db.Design) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := bookshelf.WritePl(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// An empty diff must reproduce the base .pl byte-for-byte at every worker
// count — the differential determinism contract of the ECO path.
func TestEmptyDiffReproducesBasePl(t *testing.T) {
	base := placedBase(t)
	basePl := FromDesign(base)
	want := plBytes(t, base)

	for _, workers := range []int{1, 2, 8} {
		// A freshly "reloaded" copy with unplaced input positions.
		next := gen.MustGenerate(testConfig())
		df := DiffDesigns(base, next)
		if !df.Empty() {
			t.Fatalf("same generator output should diff empty, got %+v", df)
		}
		res, err := Place(next, df, basePl, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.ReuseRatio != 1 {
			t.Errorf("workers=%d: reuse ratio = %v, want 1", workers, res.ReuseRatio)
		}
		if len(res.Windows) != 0 {
			t.Errorf("workers=%d: empty diff produced windows %v", workers, res.Windows)
		}
		if got := plBytes(t, next); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: empty-diff ECO .pl differs from base", workers)
		}
	}
}

// A small delta must come back legal (no overlaps, no fence violations,
// nothing outside the die), reuse most of the base, and produce a
// byte-identical .pl for every worker count.
func TestWindowRepairSmallDelta(t *testing.T) {
	base := placedBase(t)
	basePl := FromDesign(base)
	pert := gen.Perturbation{Seed: 42, RemoveFrac: 0.01, AddFrac: 0.01, RewireFrac: 0.005}

	var want []byte
	for _, workers := range []int{1, 2, 8} {
		next := gen.Perturb(base, pert)
		df := DiffDesigns(base, next)
		if df.Empty() {
			t.Fatal("perturbation produced an empty diff")
		}
		if df.NeedFull(0) {
			t.Fatalf("small delta should be repairable: dirty %d of %d", df.DirtyCount(), len(next.Cells))
		}
		// MarginRows 2: the default 8-row margin is sized for real
		// designs and would blanket this ~19-row test die.
		res, err := Place(next, df, basePl, Options{Workers: workers, MarginRows: 2})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Overlaps != 0 || res.FenceViolations != 0 || res.OutOfDie != 0 {
			t.Fatalf("workers=%d: illegal repair: overlaps=%d fences=%d outside=%d",
				workers, res.Overlaps, res.FenceViolations, res.OutOfDie)
		}
		if len(res.Windows) == 0 {
			t.Error("expected repair windows")
		}
		if res.ReuseRatio < 0.8 {
			t.Errorf("reuse ratio = %v, want ≥ 0.8", res.ReuseRatio)
		}
		if res.Frozen == 0 {
			t.Error("expected frozen cells outside the windows")
		}
		movable := 0
		for i := range next.Cells {
			if c := &next.Cells[i]; c.Movable() && c.Kind == db.StdCell {
				movable++
			}
		}
		if res.Repaired >= movable {
			t.Errorf("repaired %d of %d movable cells — freeze did not restrict the repair", res.Repaired, movable)
		}
		got := plBytes(t, next)
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: repaired .pl differs from workers=1", workers)
		}
	}
}

// Cells that start outside every window are frozen and must not move.
// Membership is judged at the base position: a cell inside a packed
// window may legitimately be displaced past the window edge, but a cell
// that began outside must stay exactly where the base put it.
func TestRepairLeavesOutsideCellsUntouched(t *testing.T) {
	base := placedBase(t)
	basePl := FromDesign(base)
	next := gen.Perturb(base, gen.Perturbation{Seed: 9, AddFrac: 0.01})
	df := DiffDesigns(base, next)
	res, err := Place(next, df, basePl, Options{MarginRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frozen == 0 {
		t.Fatal("test design froze no cells — enlarge it")
	}
	outside := 0
	for i := range next.Cells {
		c := &next.Cells[i]
		if !c.Movable() || c.Kind != db.StdCell {
			continue
		}
		cp, ok := basePl.Cells[c.Name]
		if !ok {
			continue // added cell
		}
		baseRect := geom.NewRect(cp.X, cp.Y, cp.X+c.Rect().W(), cp.Y+c.Rect().H())
		if inAnyWindow(baseRect, res.Windows) {
			continue
		}
		if c.Pos.X != cp.X || c.Pos.Y != cp.Y {
			t.Fatalf("outside cell %q moved from (%g,%g) to %v", c.Name, cp.X, cp.Y, c.Pos)
		}
		outside++
	}
	if outside == 0 {
		t.Fatal("test design has no cells outside the windows — enlarge it")
	}
}

// Frozen flags must be restored even when repair succeeds or fails.
func TestFreezeRestored(t *testing.T) {
	base := placedBase(t)
	movableBefore := countMovableStd(base)
	next := gen.Perturb(base, gen.Perturbation{Seed: 3, RemoveFrac: 0.01, AddFrac: 0.01})
	df := DiffDesigns(base, next)
	if _, err := Place(next, df, FromDesign(base), Options{}); err != nil {
		t.Fatal(err)
	}
	if got := countMovableStd(next); got < movableBefore-int(0.02*float64(movableBefore))-2 {
		t.Fatalf("movable std cells after repair = %d, base had %d — freeze leaked", got, movableBefore)
	}
}

func TestReadPlRoundTrip(t *testing.T) {
	base := placedBase(t)
	pl, err := ReadPl(bytes.NewReader(plBytes(t, base)))
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Cells) != len(base.Cells) {
		t.Fatalf("parsed %d cells, want %d", len(pl.Cells), len(base.Cells))
	}
	for i := range base.Cells {
		c := &base.Cells[i]
		cp, ok := pl.Cells[c.Name]
		if !ok {
			t.Fatalf("cell %q missing from parsed placement", c.Name)
		}
		if cp.X != c.Pos.X || cp.Y != c.Pos.Y || cp.Orient != c.Orient || cp.Fixed != c.Fixed {
			t.Fatalf("cell %q: parsed %+v vs design %+v", c.Name, cp, c)
		}
	}
	// And the placement-diff of the same design against it is empty.
	if df := DiffPlacement(base, pl); !df.Empty() {
		t.Fatalf("self-diff not empty: %+v", df)
	}
}

func TestReadPlRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "not a pl file\nx 1 2\n", "UCLA pl 1.0\n\ncell 1\n"} {
		if _, err := ReadPl(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("ReadPl(%q) accepted garbage", in)
		}
	}
}
