package eco

import (
	"reflect"
	"testing"

	"repro/internal/geom"
)

func TestExpandWindowsMergesTouching(t *testing.T) {
	die := geom.NewRect(0, 0, 100, 100)
	seeds := []geom.Rect{
		geom.NewRect(10, 10, 12, 12),
		geom.NewRect(16, 10, 18, 12), // expansion overlaps the first
		geom.NewRect(80, 80, 82, 82), // far away, stays separate
	}
	wins := expandWindows(seeds, 4, die)
	if len(wins) != 2 {
		t.Fatalf("got %d windows %v, want 2", len(wins), wins)
	}
	if want := geom.NewRect(6, 6, 22, 16); wins[0] != want {
		t.Errorf("merged window = %v, want %v", wins[0], want)
	}
	if want := geom.NewRect(76, 76, 86, 86); wins[1] != want {
		t.Errorf("isolated window = %v, want %v", wins[1], want)
	}
}

func TestExpandWindowsClipsToDie(t *testing.T) {
	die := geom.NewRect(0, 0, 50, 50)
	wins := expandWindows([]geom.Rect{geom.NewRect(0, 0, 2, 2)}, 10, die)
	if len(wins) != 1 {
		t.Fatalf("wins = %v", wins)
	}
	if !die.ContainsRect(wins[0]) {
		t.Fatalf("window %v escapes the die %v", wins[0], die)
	}
	if want := geom.NewRect(0, 0, 12, 12); wins[0] != want {
		t.Errorf("window = %v, want %v", wins[0], want)
	}
}

// Input order must not matter: the merged set is sorted and identical for
// any seed permutation.
func TestExpandWindowsDeterministic(t *testing.T) {
	die := geom.NewRect(0, 0, 200, 200)
	seeds := []geom.Rect{
		geom.NewRect(5, 5, 7, 7),
		geom.NewRect(100, 100, 104, 104),
		geom.NewRect(11, 5, 13, 7),
		geom.NewRect(108, 104, 110, 110),
		geom.NewRect(50, 150, 52, 152),
	}
	want := expandWindows(seeds, 3, die)
	rev := make([]geom.Rect, len(seeds))
	for i, s := range seeds {
		rev[len(seeds)-1-i] = s
	}
	if got := expandWindows(rev, 3, die); !reflect.DeepEqual(got, want) {
		t.Fatalf("window set depends on seed order:\n%v\nvs\n%v", got, want)
	}
}

// Point seeds (placement-only removals) still grow real windows.
func TestExpandWindowsPointSeed(t *testing.T) {
	die := geom.NewRect(0, 0, 100, 100)
	point := geom.Rect{Lo: geom.Point{X: 40, Y: 40}, Hi: geom.Point{X: 40, Y: 40}}
	wins := expandWindows([]geom.Rect{point}, 5, die)
	if len(wins) != 1 || wins[0].Area() == 0 {
		t.Fatalf("point seed produced %v", wins)
	}
}

// A chain a–b–c where only consecutive pairs touch must collapse into one
// window (transitive merge needs the fixpoint loop).
func TestExpandWindowsTransitiveMerge(t *testing.T) {
	die := geom.NewRect(0, 0, 300, 100)
	seeds := []geom.Rect{
		geom.NewRect(200, 10, 210, 20), // deliberately out of order
		geom.NewRect(100, 10, 110, 20),
		geom.NewRect(150, 10, 160, 20),
	}
	wins := expandWindows(seeds, 25, die)
	if len(wins) != 1 {
		t.Fatalf("chain did not merge: %v", wins)
	}
}
