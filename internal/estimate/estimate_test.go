package estimate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/incr"
	"repro/internal/route"
)

// testDesign builds a small deterministic synthetic design plus its
// routing grid.
func testDesign(t testing.TB, cells int, seed int64) (*db.Design, *route.Grid) {
	t.Helper()
	cfg := gen.Congested(cells, seed)
	d, err := gen.Generate(cfg)
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	g, err := route.NewGrid(d)
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	return d, g
}

// movables returns the indices of movable cells.
func movables(d *db.Design) []int {
	var ms []int
	for ci := range d.Cells {
		if d.Cells[ci].Movable() {
			ms = append(ms, ci)
		}
	}
	return ms
}

func demandEqual(t *testing.T, ctx string, ah, av, bh, bv []int64) {
	t.Helper()
	if len(ah) != len(bh) || len(av) != len(bv) {
		t.Fatalf("%s: demand length mismatch", ctx)
	}
	for i := range ah {
		if ah[i] != bh[i] {
			t.Fatalf("%s: hDem[%d] = %d, want %d", ctx, i, ah[i], bh[i])
		}
		if av[i] != bv[i] {
			t.Fatalf("%s: vDem[%d] = %d, want %d", ctx, i, av[i], bv[i])
		}
	}
}

// TestRecomputeDeterministicAcrossWorkers pins that the sharded parallel
// recompute produces the same bits as the serial pass for every worker
// count — fixed-point integer accumulation is order-independent.
func TestRecomputeDeterministicAcrossWorkers(t *testing.T) {
	d, g := testDesign(t, 600, 7)
	var refH, refV []int64
	for _, w := range []int{1, 2, 8} {
		e := New(g, Options{Workers: w})
		e.Recompute(d)
		h, v := e.SnapshotDemand()
		if refH == nil {
			refH, refV = h, v
			continue
		}
		demandEqual(t, "workers", h, v, refH, refV)
	}
}

// TestIncrementalDifferential drives random direct moves plus
// Begin/Move/Revert and Begin/Move/Commit transactions through an
// attached cache and asserts the incrementally maintained demand grid is
// bitwise-equal to a fresh full recompute at every quiescent point.
func TestIncrementalDifferential(t *testing.T) {
	d, g := testDesign(t, 400, 11)
	ms := movables(d)
	cache := incr.New(d)
	est := New(g, Options{})
	Attach(est, cache)

	die := g.Origin
	w := float64(g.NX) * g.TileW
	h := float64(g.NY) * g.TileH
	rng := rand.New(rand.NewSource(42))
	randPos := func() geom.Point {
		return geom.Point{
			X: die.X + rng.Float64()*w,
			Y: die.Y + rng.Float64()*h,
		}
	}
	check := func(ctx string) {
		t.Helper()
		fresh := New(g, Options{})
		fresh.Recompute(d)
		ih, iv := est.SnapshotDemand()
		fh, fv := fresh.SnapshotDemand()
		demandEqual(t, ctx, ih, iv, fh, fv)
	}

	check("initial")
	for round := 0; round < 30; round++ {
		switch round % 3 {
		case 0: // direct (untracked) moves
			for k := 0; k < 5; k++ {
				cache.Move(ms[rng.Intn(len(ms))], randPos())
			}
			check("direct")
		case 1: // transaction, reverted
			cache.Begin()
			for k := 0; k < 5; k++ {
				cache.Move(ms[rng.Intn(len(ms))], randPos())
			}
			cache.Revert()
			check("revert")
		case 2: // transaction, committed
			cache.Begin()
			for k := 0; k < 5; k++ {
				cache.Move(ms[rng.Intn(len(ms))], randPos())
			}
			cache.Commit()
			check("commit")
		}
	}
}

// TestIncrementalRevertRestoresBits pins the journal-replay property on
// its own: a reverted transaction leaves the accumulators exactly as they
// were before Begin.
func TestIncrementalRevertRestoresBits(t *testing.T) {
	d, g := testDesign(t, 300, 3)
	ms := movables(d)
	cache := incr.New(d)
	est := New(g, Options{})
	Attach(est, cache)

	h0, v0 := est.SnapshotDemand()
	rng := rand.New(rand.NewSource(1))
	cache.Begin()
	for k := 0; k < 20; k++ {
		ci := ms[rng.Intn(len(ms))]
		cache.Move(ci, geom.Point{
			X: g.Origin.X + rng.Float64()*float64(g.NX)*g.TileW,
			Y: g.Origin.Y + rng.Float64()*float64(g.NY)*g.TileH,
		})
	}
	cache.Revert()
	h1, v1 := est.SnapshotDemand()
	demandEqual(t, "revert-bits", h1, v1, h0, v0)
}

// TestIncrementalMoveNoAllocs pins the 0-allocs/op warm path for both the
// direct-move and the transactional (journaled) update paths.
func TestIncrementalMoveNoAllocs(t *testing.T) {
	d, g := testDesign(t, 300, 5)
	ms := movables(d)
	cache := incr.New(d)
	est := New(g, Options{})
	Attach(est, cache)

	a := geom.Point{X: g.Origin.X + g.TileW*1.3, Y: g.Origin.Y + g.TileH*1.3}
	b := geom.Point{X: g.Origin.X + float64(g.NX-2)*g.TileW, Y: g.Origin.Y + float64(g.NY-2)*g.TileH}
	ci := ms[len(ms)/2]

	// Warm both paths: grow the journal and scratch to steady state.
	for i := 0; i < 4; i++ {
		cache.Begin()
		cache.Move(ci, a)
		cache.Move(ci, b)
		cache.Revert()
		cache.Move(ci, a)
		cache.Move(ci, b)
	}

	direct := testing.AllocsPerRun(100, func() {
		cache.Move(ci, a)
		cache.Move(ci, b)
	})
	if direct != 0 {
		t.Errorf("direct Move allocates %.1f allocs/op, want 0", direct)
	}
	txn := testing.AllocsPerRun(100, func() {
		cache.Begin()
		cache.Move(ci, a)
		cache.Move(ci, b)
		cache.Revert()
	})
	if txn != 0 {
		t.Errorf("txn Move/Revert allocates %.1f allocs/op, want 0", txn)
	}
}

// TestEstimateMatchesGridGeometry sanity-checks construction: tile count,
// positive capacity somewhere, and congestion responding to demand.
func TestEstimateMatchesGridGeometry(t *testing.T) {
	d, g := testDesign(t, 300, 9)
	e := New(g, Options{})
	if e.NX != g.NX || e.NY != g.NY {
		t.Fatalf("geometry mismatch: est %dx%d grid %dx%d", e.NX, e.NY, g.NX, g.NY)
	}
	if err := e.CheckGeometry(g.NX, g.NY); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckGeometry(g.NX+1, g.NY); err == nil {
		t.Fatal("CheckGeometry accepted a mismatched grid")
	}
	var capSum float64
	for _, c := range e.capTot {
		capSum += c
	}
	if capSum <= 0 {
		t.Fatal("no tile capacity derived from grid")
	}
	e.Recompute(d)
	if e.MaxTileCongestion() <= 0 {
		t.Fatal("recompute produced zero congestion everywhere")
	}
	cong := e.TileCongestion()
	if len(cong) != e.Tiles() {
		t.Fatalf("congestion length %d, want %d", len(cong), e.Tiles())
	}
	var into []float64
	into = e.CongestionInto(into)
	for i := range cong {
		if cong[i] != into[i] {
			t.Fatalf("CongestionInto diverges at %d", i)
		}
		tx, ty := i%e.NX, i/e.NX
		if got := e.CongestionAt(tx, ty); got != cong[i] {
			t.Fatalf("CongestionAt(%d,%d) = %v, want %v", tx, ty, got, cong[i])
		}
	}
	if prof := e.ACEProfile(); len(prof) != len(route.ACEPercentiles) {
		t.Fatalf("ACEProfile length %d, want %d", len(prof), len(route.ACEPercentiles))
	}
}

// TestCorrelationAgainstRouter is the drift gate: the estimator must rank
// tiles like the real router on a congested design. Measured values at
// 2500 cells (15×15 grid): pearson 0.91, spearman 0.83, overlap@4 0.75.
// The floors are pinned well below that so routine noise passes but a
// broken estimator — wrong axis, wrong denominator, dropped pin term —
// fails loudly.
func TestCorrelationAgainstRouter(t *testing.T) {
	d, g := testDesign(t, 2500, 13)
	r := route.NewRouter(g, route.RouterOptions{})
	r.RouteDesign(d)
	routed := g.TileCongestion()

	e := New(g, Options{})
	e.Recompute(d)
	c := Correlate(e.TileCongestion(), routed, 0)

	t.Logf("pearson=%.3f spearman=%.3f overlap@%d=%.3f tiles=%d",
		c.Pearson, c.Spearman, c.K, c.HotspotOverlap, c.Tiles)
	if c.Tiles < 100 {
		t.Fatalf("only %d finite tile pairs scored", c.Tiles)
	}
	if c.Pearson < 0.7 {
		t.Errorf("pearson %.3f below floor 0.7", c.Pearson)
	}
	if c.Spearman < 0.65 {
		t.Errorf("spearman %.3f below floor 0.65", c.Spearman)
	}
	if c.HotspotOverlap < 0.4 {
		t.Errorf("hotspot overlap %.3f below floor 0.4", c.HotspotOverlap)
	}
}

// TestCorrelateMath pins the harness arithmetic on hand-built vectors.
func TestCorrelateMath(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	// Perfect linear agreement.
	c := Correlate(x, x, 2)
	if math.Abs(c.Pearson-1) > 1e-12 || math.Abs(c.Spearman-1) > 1e-12 {
		t.Errorf("identity: pearson=%v spearman=%v, want 1,1", c.Pearson, c.Spearman)
	}
	if c.HotspotOverlap != 1 {
		t.Errorf("identity overlap = %v, want 1", c.HotspotOverlap)
	}
	// Perfect anti-correlation.
	y := []float64{8, 7, 6, 5, 4, 3, 2, 1}
	c = Correlate(x, y, 2)
	if math.Abs(c.Pearson+1) > 1e-12 || math.Abs(c.Spearman+1) > 1e-12 {
		t.Errorf("reversed: pearson=%v spearman=%v, want -1,-1", c.Pearson, c.Spearman)
	}
	if c.HotspotOverlap != 0 {
		t.Errorf("reversed overlap = %v, want 0", c.HotspotOverlap)
	}
	// Monotone but non-linear: Spearman stays 1, Pearson does not.
	z := []float64{1, 4, 9, 16, 25, 36, 49, 64}
	c = Correlate(x, z, 2)
	if math.Abs(c.Spearman-1) > 1e-12 {
		t.Errorf("monotone spearman = %v, want 1", c.Spearman)
	}
	if c.Pearson >= 1 {
		t.Errorf("monotone pearson = %v, want < 1", c.Pearson)
	}
	// Non-finite pairs are dropped.
	xi := []float64{1, 2, math.Inf(1), 4}
	yi := []float64{1, 2, 3, math.NaN()}
	c = Correlate(xi, yi, 1)
	if c.Tiles != 2 {
		t.Errorf("finite filter kept %d pairs, want 2", c.Tiles)
	}
	// Constant input: correlation defined as 0, no NaN escapes.
	c = Correlate([]float64{1, 1, 1}, []float64{1, 2, 3}, 1)
	if c.Pearson != 0 || c.Spearman != 0 {
		t.Errorf("constant input: pearson=%v spearman=%v, want 0,0", c.Pearson, c.Spearman)
	}
}

// BenchmarkRecompute measures the full-recompute throughput benchest
// reports as tiles/s.
func BenchmarkRecompute(b *testing.B) {
	d, g := testDesign(b, 2000, 17)
	e := New(g, Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Recompute(d)
	}
}

// BenchmarkIncrementalMove measures the per-move incremental update cost.
func BenchmarkIncrementalMove(b *testing.B) {
	d, g := testDesign(b, 2000, 17)
	ms := movables(d)
	cache := incr.New(d)
	est := New(g, Options{})
	Attach(est, cache)
	a := geom.Point{X: g.Origin.X + g.TileW, Y: g.Origin.Y + g.TileH}
	c2 := geom.Point{X: g.Origin.X + float64(g.NX-2)*g.TileW, Y: g.Origin.Y + float64(g.NY-2)*g.TileH}
	ci := ms[len(ms)/2]
	cache.Move(ci, a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			cache.Move(ci, c2)
		} else {
			cache.Move(ci, a)
		}
	}
}
