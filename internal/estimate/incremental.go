package estimate

import (
	"repro/internal/geom"
	"repro/internal/incr"
)

// savedNet is one incident net's pre-move bounding box, captured by
// PreMove so PostMove can diff it against the post-move box.
type savedNet struct {
	ni int32
	bb geom.Rect
}

// savedPin is one of the moving cell's pins with its pre-move tile.
type savedPin struct {
	pi  int32
	idx int32
}

// demandDelta is one raw accumulator mutation, journaled while the cache
// transaction is open so Reverted can replay the exact inverse.
type demandDelta struct {
	idx  int32
	vert int32 // 0 = hDem, 1 = vDem
	d    int64
}

// Incremental keeps an Estimator's demand map exact while cells move
// through an incr.BBoxCache. It implements incr.Observer: PreMove records
// the incident nets' boxes and the cell's pin tiles, PostMove diffs them
// against the post-move state and applies remove-old/add-new demand —
// O(pins-on-cell) incident nets, each touching only its box's tiles.
// Because every contribution is the same pure fixed-point function the
// full Recompute uses, the maintained grid is bitwise-equal to a fresh
// recompute at every quiescent point (pinned by the differential tests),
// and the warm path performs no allocations.
//
// While the cache is inside a Begin transaction, raw accumulator deltas
// are journaled; Reverted replays the journal in reverse with negated
// deltas, Committed discards it.
type Incremental struct {
	e *Estimator
	c *incr.BBoxCache

	// Per-PreMove scratch, epoch-stamped to dedup nets across the moving
	// cell's pins without a map.
	netEpoch uint32
	netSeen  []uint32
	nets     []savedNet
	pins     []savedPin

	journal []demandDelta
}

// Attach builds an Incremental over the estimator and cache, installs it
// as the cache's observer, and recomputes the demand map from the cache's
// design so the two start in sync. The returned Incremental stays valid
// until the cache is rebuilt behind it (call Resync after a Rebuild).
func Attach(e *Estimator, c *incr.BBoxCache) *Incremental {
	inc := &Incremental{
		e:       e,
		c:       c,
		netSeen: make([]uint32, len(c.Design().Nets)),
	}
	c.SetObserver(inc)
	inc.Resync()
	return inc
}

// Estimator returns the estimator being maintained.
func (in *Incremental) Estimator() *Estimator { return in.e }

// Resync rebuilds the demand map from the design's current state. Cheap
// insurance after any out-of-band position change plus cache Rebuild.
func (in *Incremental) Resync() {
	in.journal = in.journal[:0]
	in.e.Recompute(in.c.Design())
}

// apply mutates one accumulator entry and journals the mutation when the
// cache transaction is open.
func (in *Incremental) apply(idx int, vert int32, d int64) {
	if d == 0 {
		return
	}
	if vert == 0 {
		in.e.hDem[idx] += d
	} else {
		in.e.vDem[idx] += d
	}
	if in.c.InTxn() {
		in.journal = append(in.journal, demandDelta{idx: int32(idx), vert: vert, d: d})
	}
}

// applyBox adds (sign = +1) or removes (sign = −1) one net box's demand.
func (in *Incremental) applyBox(bb geom.Rect, w float64, sign int64) {
	in.e.netDemand(bb, w, func(idx int, hu, vu int64) {
		in.apply(idx, 0, sign*hu)
		in.apply(idx, 1, sign*vu)
	})
}

// PreMove implements incr.Observer: snapshot the incident nets' boxes and
// the moving cell's pin tiles before the cache mutates them.
func (in *Incremental) PreMove(ci int) {
	d := in.c.Design()
	bumpEpoch(&in.netEpoch, in.netSeen)
	in.nets = in.nets[:0]
	in.pins = in.pins[:0]
	for _, pi := range d.Cells[ci].Pins {
		ni := d.Pins[pi].Net
		if d.Nets[ni].Degree() >= 2 && in.netSeen[ni] != in.netEpoch {
			in.netSeen[ni] = in.netEpoch
			in.nets = append(in.nets, savedNet{ni: int32(ni), bb: in.c.NetBox(ni)})
		}
		in.pins = append(in.pins, savedPin{
			pi:  int32(pi),
			idx: in.e.tileIdx(in.c.PinPos(pi)),
		})
	}
}

// PostMove implements incr.Observer: diff the snapshots against the
// post-move cache state and apply the demand difference. Nets whose box
// did not change (the moved pin was interior) and pins that stayed in
// their tile cost nothing.
func (in *Incremental) PostMove(ci int) {
	for i := range in.nets {
		s := &in.nets[i]
		ni := int(s.ni)
		now := in.c.NetBox(ni)
		if now == s.bb {
			continue
		}
		w := in.c.NetWeight(ni)
		in.applyBox(s.bb, w, -1)
		in.applyBox(now, w, +1)
	}
	for i := range in.pins {
		s := &in.pins[i]
		now := in.e.tileIdx(in.c.PinPos(int(s.pi)))
		if now == s.idx {
			continue
		}
		in.apply(int(s.idx), 0, -in.e.pinHalf)
		in.apply(int(s.idx), 1, -in.e.pinHalf)
		in.apply(int(now), 0, in.e.pinHalf)
		in.apply(int(now), 1, in.e.pinHalf)
	}
}

// Reverted implements incr.Observer: undo every journaled delta in
// reverse order. Integer adds are exact, so the accumulators return to
// their pre-transaction bits.
func (in *Incremental) Reverted() {
	for i := len(in.journal) - 1; i >= 0; i-- {
		j := &in.journal[i]
		if j.vert == 0 {
			in.e.hDem[j.idx] -= j.d
		} else {
			in.e.vDem[j.idx] -= j.d
		}
	}
	in.journal = in.journal[:0]
}

// Committed implements incr.Observer: the moves stand, drop the journal.
func (in *Incremental) Committed() {
	in.journal = in.journal[:0]
}

// bumpEpoch mirrors incr's epoch trick: advance, and on wrap clear the
// stamp slice so stale stamps can never alias a live epoch.
func bumpEpoch(e *uint32, stamps []uint32) {
	*e++
	if *e == 0 {
		for i := range stamps {
			stamps[i] = 0
		}
		*e = 1
	}
}
