package estimate

import (
	"math"
	"sort"
)

// Correlation scores an estimated congestion map against a reference
// (routed) map over the same tiles. It is the drift gate between the
// probabilistic estimator and the real router: the estimator is useful
// exactly as long as it *ranks* tiles like the router does, so the tests
// and BENCH_estimate.json pin floors on these scores.
type Correlation struct {
	// Pearson is the linear correlation of the per-tile values.
	Pearson float64 `json:"pearson"`
	// Spearman is the Pearson correlation of the tie-averaged ranks —
	// the rank agreement, insensitive to the estimator's scale.
	Spearman float64 `json:"spearman"`
	// HotspotOverlap is |topK(est) ∩ topK(ref)| / K: how many of the
	// router's K worst tiles the estimator also flags. This is the score
	// that matters for inflation, which only acts on the worst tiles.
	HotspotOverlap float64 `json:"hotspot_overlap"`
	// K is the hotspot set size used (≥ 1).
	K int `json:"k"`
	// Tiles is the number of tile pairs scored after dropping non-finite
	// entries (zero-capacity tiles can be +Inf on either side).
	Tiles int `json:"tiles"`
}

// Correlate scores est against ref per tile. The slices must be the same
// length (same grid); pairs where either side is non-finite are dropped.
// k ≤ 0 selects 2% of the finite tiles (min 1) as the hotspot set.
func Correlate(est, ref []float64, k int) Correlation {
	if len(est) != len(ref) {
		panic("estimate: Correlate length mismatch")
	}
	// Filter to finite pairs, remembering original indices for overlap.
	type pair struct{ e, r float64 }
	ps := make([]pair, 0, len(est))
	for i := range est {
		if isFinite(est[i]) && isFinite(ref[i]) {
			ps = append(ps, pair{est[i], ref[i]})
		}
	}
	n := len(ps)
	c := Correlation{Tiles: n}
	if n < 2 {
		return c
	}
	es := make([]float64, n)
	rs := make([]float64, n)
	for i, p := range ps {
		es[i], rs[i] = p.e, p.r
	}
	c.Pearson = pearson(es, rs)
	c.Spearman = pearson(ranks(es), ranks(rs))
	if k <= 0 {
		k = n / 50
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	c.K = k
	c.HotspotOverlap = overlapAtK(es, rs, k)
	return c
}

func isFinite(x float64) bool { return !math.IsInf(x, 0) && !math.IsNaN(x) }

// pearson is the sample linear correlation; 0 when either side is
// constant (zero variance).
func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// ranks returns tie-averaged ranks (1-based; ties share the mean of the
// ranks they span), the standard Spearman convention.
func ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// overlapAtK returns |topK(x) ∩ topK(y)| / k, comparing by value with
// index as the deterministic tiebreak.
func overlapAtK(x, y []float64, k int) float64 {
	top := func(v []float64) map[int]bool {
		idx := make([]int, len(v))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			if v[idx[a]] != v[idx[b]] {
				return v[idx[a]] > v[idx[b]]
			}
			return idx[a] < idx[b]
		})
		s := make(map[int]bool, k)
		for _, i := range idx[:k] {
			s[i] = true
		}
		return s
	}
	tx, ty := top(x), top(y)
	hit := 0
	for i := range tx {
		if ty[i] {
			hit++
		}
	}
	return float64(hit) / float64(k)
}
