// Package estimate is the fast probabilistic congestion-estimation
// subsystem: a RUDY + pin-density model over the routing-grid geometry
// that stands in for the global router inside hot loops. Where the
// router's congestion map costs a full negotiated maze-route, the
// estimator costs one pass over net bounding boxes — O(#nets · box tiles)
// with tiny constants — and an *incremental* mode (see Incremental)
// updates it in O(pins-on-cell) touched tiles per cell move, which is what
// detailed placement and other move-loop consumers need.
//
// Demand is accumulated in fixed-point int64 "track units" rather than
// floats. Each net's per-tile contribution is a pure function of its
// bounding box, rounded once to fixed point; integer addition is exact,
// commutative and associative, so incremental add/remove replay and
// parallel sharded recomputes are all bitwise-equal to a serial full
// recompute — the differential tests and the cross-worker determinism
// tests pin exactly that.
//
// The estimator is calibrated against the real router by the correlation
// harness (Correlate): per-tile Pearson and Spearman correlation plus
// hotspot overlap@k between the estimated and the routed congestion maps.
// Floors on those scores are pinned in tests and in BENCH_estimate.json,
// so estimator drift is a test failure rather than a silent quality loss.
package estimate

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/par"
	"repro/internal/route"
)

// fpScale is the fixed-point scale of the demand accumulators: one track
// of demand is 1<<20 units. At typical capacities (tens of tracks per
// tile) the headroom to int64 overflow exceeds 2^40 nets per tile.
const fpScale = 1 << 20

// fp rounds a track quantity to fixed point. All demand enters the
// accumulators through this single rounding, which is what makes
// add/remove pairs cancel exactly.
func fp(tracks float64) int64 { return int64(math.Round(tracks * fpScale)) }

// Options tunes an Estimator.
type Options struct {
	// PerPin is the local pin-escape demand in tracks per pin, split
	// evenly between the horizontal and vertical accumulators of the
	// pin's tile (default 0.05). Pin density is what separates two
	// placements with identical net boxes but different cell crowding.
	PerPin float64
	// Workers is the full-recompute worker count, resolved through
	// par.Workers (≤ 0 selects the automatic policy). Demand grids are
	// byte-identical for every worker count.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.PerPin <= 0 {
		o.PerPin = 0.05
	}
	return o
}

// Estimator holds a probabilistic per-tile congestion map over a routing
// grid's geometry. Capacities are copied from the grid (blockage derating
// included) at construction; demand is owned by the estimator and filled
// by Recompute or maintained by an attached Incremental.
type Estimator struct {
	// NX, NY, Origin, TileW, TileH mirror the route.Grid geometry the
	// estimator was built over.
	NX, NY       int
	Origin       geom.Point
	TileW, TileH float64

	perPin  float64
	pinHalf int64 // fp(perPin)/2, precomputed
	workers int

	// hCap and vCap are per-tile capacities in tracks: the mean of the
	// tile's incident horizontal (resp. vertical) grid edges. capTot is
	// their sum, the denominator of TileCongestion.
	hCap, vCap []float64
	capTot     []float64

	// hDem and vDem are fixed-point per-tile demand, indexed ty*NX+tx.
	hDem, vDem []int64

	// chunks holds per-shard recompute accumulators (2·NX·NY int64 each),
	// grown on demand and reused across Recompute calls.
	chunks [][]int64
}

// New builds an estimator over the grid's geometry and capacities. The
// grid is only read during construction; routing demand on it is ignored.
func New(g *route.Grid, opt Options) *Estimator {
	opt = opt.withDefaults()
	e := &Estimator{
		NX: g.NX, NY: g.NY,
		Origin: g.Origin,
		TileW:  g.TileW, TileH: g.TileH,
		perPin:  opt.PerPin,
		pinHalf: fp(opt.PerPin) / 2,
		workers: par.Workers(opt.Workers),
	}
	n := e.NX * e.NY
	e.hCap = make([]float64, n)
	e.vCap = make([]float64, n)
	e.capTot = make([]float64, n)
	e.hDem = make([]int64, n)
	e.vDem = make([]int64, n)
	for ty := 0; ty < e.NY; ty++ {
		for tx := 0; tx < e.NX; tx++ {
			i := ty*e.NX + tx
			var hc, hn, vc, vn float64
			if tx > 0 {
				hc += g.HCap[g.HIdx(tx-1, ty)]
				hn++
			}
			if tx < e.NX-1 {
				hc += g.HCap[g.HIdx(tx, ty)]
				hn++
			}
			if ty > 0 {
				vc += g.VCap[g.VIdx(tx, ty-1)]
				vn++
			}
			if ty < e.NY-1 {
				vc += g.VCap[g.VIdx(tx, ty)]
				vn++
			}
			if hn > 0 {
				e.hCap[i] = hc / hn
			}
			if vn > 0 {
				e.vCap[i] = vc / vn
			}
			e.capTot[i] = e.hCap[i] + e.vCap[i]
		}
	}
	return e
}

// Tiles returns the tile count NX·NY.
func (e *Estimator) Tiles() int { return e.NX * e.NY }

// Reset zeroes the demand accumulators.
func (e *Estimator) Reset() {
	clear(e.hDem)
	clear(e.vDem)
}

// tileOf maps a point to its clamped tile coordinates, with the same
// floor-and-clamp convention as route.Grid.TileOf.
func (e *Estimator) tileOf(p geom.Point) (int, int) {
	tx := int(math.Floor((p.X - e.Origin.X) / e.TileW))
	ty := int(math.Floor((p.Y - e.Origin.Y) / e.TileH))
	if tx < 0 {
		tx = 0
	}
	if tx >= e.NX {
		tx = e.NX - 1
	}
	if ty < 0 {
		ty = 0
	}
	if ty >= e.NY {
		ty = e.NY - 1
	}
	return tx, ty
}

// tileIdx is tileOf flattened to the demand index.
func (e *Estimator) tileIdx(p geom.Point) int32 {
	tx, ty := e.tileOf(p)
	return int32(ty*e.NX + tx)
}

// netDemand walks the tiles covered by one net bounding box and calls
// emit(idx, hUnits, vUnits) with the box's fixed-point contribution to
// each. The contribution is the tile form of the classic RUDY smear: a
// net is expected to use one horizontal track somewhere in its box per
// unit of box height (so hTracks = w / boxHeightInTiles), scaled by the
// tile's fractional x/y coverage; vertical demand is symmetric. Degenerate
// boxes are widened to one tile so short nets still register pin-access
// demand in the cross direction.
//
// The walk and the per-tile rounding are pure functions of (bb, w), which
// is the contract the incremental add/remove replay relies on: removing a
// box emits exactly the integers adding it emitted.
func (e *Estimator) netDemand(bb geom.Rect, w float64, emit func(idx int, h, v int64)) {
	if bb.W() < e.TileW {
		c := (bb.Lo.X + bb.Hi.X) / 2
		bb.Lo.X, bb.Hi.X = c-e.TileW/2, c+e.TileW/2
	}
	if bb.H() < e.TileH {
		c := (bb.Lo.Y + bb.Hi.Y) / 2
		bb.Lo.Y, bb.Hi.Y = c-e.TileH/2, c+e.TileH/2
	}
	hTracks := w / math.Max(1, bb.H()/e.TileH)
	vTracks := w / math.Max(1, bb.W()/e.TileW)
	tx0, ty0 := e.tileOf(bb.Lo)
	tx1, ty1 := e.tileOf(geom.Point{X: bb.Hi.X - 1e-9, Y: bb.Hi.Y - 1e-9})
	for ty := ty0; ty <= ty1; ty++ {
		rowLo := e.Origin.Y + float64(ty)*e.TileH
		fy := (math.Min(rowLo+e.TileH, bb.Hi.Y) - math.Max(rowLo, bb.Lo.Y)) / e.TileH
		if fy <= 0 {
			continue
		}
		for tx := tx0; tx <= tx1; tx++ {
			colLo := e.Origin.X + float64(tx)*e.TileW
			fx := (math.Min(colLo+e.TileW, bb.Hi.X) - math.Max(colLo, bb.Lo.X)) / e.TileW
			if fx <= 0 {
				continue
			}
			cover := fx * fy
			emit(ty*e.NX+tx, fp(hTracks*cover), fp(vTracks*cover))
		}
	}
}

// addBox accumulates (sign = +1) or removes (sign = −1) one net box's
// demand into the given accumulators.
func addBoxInto(h, v []int64, e *Estimator, bb geom.Rect, w float64, sign int64) {
	e.netDemand(bb, w, func(idx int, hu, vu int64) {
		h[idx] += sign * hu
		v[idx] += sign * vu
	})
}

// Recompute rebuilds the demand map from the design's current positions:
// one RUDY box per net of degree ≥ 2 (net weight honored, 0 → 1) plus
// per-pin escape demand. With more than one worker the nets and pins are
// sharded over per-chunk integer accumulators and merged, which is
// bitwise-identical to the serial pass.
func (e *Estimator) Recompute(d *db.Design) {
	e.Reset()
	w := e.workers
	if w <= 1 || len(d.Nets) < 256 {
		e.recomputeChunk(d, e.hDem, e.vDem, 0, 1)
		return
	}
	for len(e.chunks) < w {
		e.chunks = append(e.chunks, make([]int64, 2*e.NX*e.NY))
	}
	par.ForWorker(w, w, func(_, i int) {
		buf := e.chunks[i]
		clear(buf)
		e.recomputeChunk(d, buf[:e.NX*e.NY], buf[e.NX*e.NY:], i, w)
	})
	n := e.NX * e.NY
	for i := 0; i < w; i++ {
		buf := e.chunks[i]
		for t := 0; t < n; t++ {
			e.hDem[t] += buf[t]
			e.vDem[t] += buf[n+t]
		}
	}
}

// recomputeChunk accumulates shard `shard` of `shards` (nets and pins
// strided) into the given accumulators.
func (e *Estimator) recomputeChunk(d *db.Design, h, v []int64, shard, shards int) {
	for ni := shard; ni < len(d.Nets); ni += shards {
		net := &d.Nets[ni]
		if net.Degree() < 2 {
			continue
		}
		w := net.Weight
		if w == 0 {
			w = 1
		}
		addBoxInto(h, v, e, d.NetBBox(ni), w, +1)
	}
	for pi := shard; pi < len(d.Pins); pi += shards {
		idx := e.tileIdx(d.PinPos(pi))
		h[idx] += e.pinHalf
		v[idx] += e.pinHalf
	}
}

// CongestionInto writes the per-tile congestion — total demand over total
// incident capacity, the same sum-not-max convention as
// route.Grid.TileCongestion — into out (grown if needed) and returns it.
// Tiles with zero capacity but positive demand are +Inf.
func (e *Estimator) CongestionInto(out []float64) []float64 {
	n := e.NX * e.NY
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	for i := 0; i < n; i++ {
		dem := float64(e.hDem[i]+e.vDem[i]) / fpScale
		switch {
		case e.capTot[i] > 0:
			out[i] = dem / e.capTot[i]
		case dem > 0:
			out[i] = math.Inf(1)
		default:
			out[i] = 0
		}
	}
	return out
}

// TileCongestion returns a freshly allocated congestion map (see
// CongestionInto).
func (e *Estimator) TileCongestion() []float64 {
	return e.CongestionInto(nil)
}

// CongestionAt returns the congestion of tile (tx, ty), or 0 outside the
// grid. Allocation-free — the per-move lookup of the detailed-placement
// routability guard.
func (e *Estimator) CongestionAt(tx, ty int) float64 {
	if tx < 0 || ty < 0 || tx >= e.NX || ty >= e.NY {
		return 0
	}
	i := ty*e.NX + tx
	dem := float64(e.hDem[i]+e.vDem[i]) / fpScale
	if e.capTot[i] > 0 {
		return dem / e.capTot[i]
	}
	if dem > 0 {
		return math.Inf(1)
	}
	return 0
}

// MaxTileCongestion returns the worst finite-or-not tile congestion.
func (e *Estimator) MaxTileCongestion() float64 {
	var m float64
	for i := range e.capTot {
		dem := float64(e.hDem[i]+e.vDem[i]) / fpScale
		if e.capTot[i] > 0 {
			if r := dem / e.capTot[i]; r > m {
				m = r
			}
		} else if dem > 0 {
			return math.Inf(1)
		}
	}
	return m
}

// ACEProfile returns the estimated Average Congestion of the top-x% most
// loaded tile directions at route.ACEPercentiles — the estimator's stand-in
// for route.Grid.ACEProfile, computed over per-tile directional ratios
// (hDem/hCap and vDem/vCap) instead of per-edge ratios.
func (e *Estimator) ACEProfile() []float64 {
	ratios := make([]float64, 0, 2*e.NX*e.NY)
	for i := range e.hCap {
		if e.hCap[i] > 0 {
			ratios = append(ratios, float64(e.hDem[i])/fpScale/e.hCap[i])
		}
		if e.vCap[i] > 0 {
			ratios = append(ratios, float64(e.vDem[i])/fpScale/e.vCap[i])
		}
	}
	out := make([]float64, len(route.ACEPercentiles))
	if len(ratios) == 0 {
		return out
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ratios)))
	for i, pct := range route.ACEPercentiles {
		k := int(float64(len(ratios)) * pct / 100)
		if k < 1 {
			k = 1
		}
		var s float64
		for _, r := range ratios[:k] {
			s += r
		}
		out[i] = s / float64(k)
	}
	return out
}

// SnapshotDemand returns copies of the fixed-point demand accumulators,
// for differential and determinism tests that compare grids bitwise.
func (e *Estimator) SnapshotDemand() (h, v []int64) {
	return append([]int64(nil), e.hDem...), append([]int64(nil), e.vDem...)
}

// CheckGeometry validates that the estimator was built over a grid
// matching (nx, ny) — a guard for callers that persist estimators across
// grid rebuilds.
func (e *Estimator) CheckGeometry(nx, ny int) error {
	if nx != e.NX || ny != e.NY {
		return fmt.Errorf("estimate: grid %dx%d does not match estimator %dx%d", nx, ny, e.NX, e.NY)
	}
	return nil
}
