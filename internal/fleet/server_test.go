package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

func newCoordServer(t *testing.T, opt Options) (*Coordinator, *httptest.Server) {
	t.Helper()
	c := mustCoordinator(t, opt)
	ts := httptest.NewServer(NewServer(c, ServerOptions{}))
	t.Cleanup(ts.Close)
	return c, ts
}

func postSpec(t *testing.T, url string, spec serve.Spec) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data
}

// TestAgentLifecycle exercises the real wire protocol end to end: a
// worker joins through its fleet agent, runs a job submitted over the
// coordinator's HTTP API, and leaves gracefully.
func TestAgentLifecycle(t *testing.T) {
	c, cts := newCoordServer(t, testOptions())

	mgr, err := serve.NewManager(serve.Options{Runner: completingRunner(nil)})
	if err != nil {
		t.Fatal(err)
	}
	wts := httptest.NewServer(serve.NewServer(mgr, serve.ServerOptions{}))
	t.Cleanup(func() {
		wts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
	})
	agent, err := StartAgent(AgentOptions{
		Coordinator: cts.URL,
		Advertise:   wts.URL,
		Capacity:    1,
		Manager:     mgr,
	})
	if err != nil {
		t.Fatalf("StartAgent: %v", err)
	}

	liveWorkers := func() int {
		n := 0
		for _, ws := range c.Workers() {
			if ws.Live {
				n++
			}
		}
		return n
	}
	deadline := time.Now().Add(30 * time.Second)
	for liveWorkers() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if liveWorkers() != 1 {
		t.Fatal("agent never registered")
	}
	if agent.WorkerID() == "" {
		t.Fatal("agent has no worker id after registration")
	}

	resp, data := postSpec(t, cts.URL, tinySpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, data)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	j, err := c.Get(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, serve.StateDone)

	// /fleet/workers over HTTP.
	wresp, err := http.Get(cts.URL + "/fleet/workers")
	if err != nil {
		t.Fatal(err)
	}
	var workers []WorkerStatus
	if err := json.NewDecoder(wresp.Body).Decode(&workers); err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	if len(workers) != 1 || !workers[0].Live || workers[0].Addr != wts.URL {
		t.Fatalf("workers = %+v", workers)
	}

	// Graceful leave: the worker deregisters and shows as not live.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := agent.Close(ctx); err != nil {
		t.Fatalf("agent.Close: %v", err)
	}
	if liveWorkers() != 0 {
		t.Error("worker still live after graceful deregistration")
	}
}

// readSSEIDs parses an SSE stream to completion, returning the event ids
// and types in order.
func readSSEIDs(t *testing.T, r io.Reader) (ids []int, types []string) {
	t.Helper()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.Atoi(line[len("id: "):])
			if err != nil {
				t.Fatalf("bad SSE id line %q", line)
			}
			ids = append(ids, id)
		case strings.HasPrefix(line, "event: "):
			types = append(types, line[len("event: "):])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE: %v", err)
	}
	return ids, types
}

// TestServerSSEFromReplay covers ?from= semantics on the coordinator's
// stitched stream: mid-log replay, exactly-at-end, past-end, and the
// negative rejection — on a job whose log spans a reassignment.
func TestServerSSEFromReplay(t *testing.T) {
	c, cts := newCoordServer(t, testOptions())
	started := make(chan string, 2)
	w1 := startWorker(t, c, serve.Options{Runner: func(ctx context.Context, j *serve.Job) error {
		started <- j.ID
		<-ctx.Done()
		return ctx.Err()
	}})
	startWorker(t, c, serve.Options{Runner: completingRunner(nil)})

	j, err := c.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	w1.stopHeartbeat()
	waitState(t, j, serve.StateDone)
	total := j.log.len()
	if total < 6 {
		t.Fatalf("stitched log has %d events, want ≥6 (two attempts)", total)
	}

	// Replay from the middle: ids continue exactly from the offset.
	resp, err := http.Get(cts.URL + "/jobs/" + j.ID + "/events?from=3")
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := readSSEIDs(t, resp.Body)
	resp.Body.Close()
	if len(ids) != total-3 {
		t.Fatalf("from=3 replayed %d events, want %d", len(ids), total-3)
	}
	for i, id := range ids {
		if id != 3+i {
			t.Fatalf("from=3 ids = %v: want contiguous from 3 across the reassignment", ids)
		}
	}

	// Exactly at the end of a terminal job: clean empty stream.
	resp, err = http.Get(cts.URL + "/jobs/" + j.ID + "/events?from=" + strconv.Itoa(total))
	if err != nil {
		t.Fatal(err)
	}
	ids, _ = readSSEIDs(t, resp.Body)
	resp.Body.Close()
	if len(ids) != 0 {
		t.Fatalf("from=end replayed %v, want nothing", ids)
	}

	// Past the end of a terminal job: also a clean empty stream.
	resp, err = http.Get(cts.URL + "/jobs/" + j.ID + "/events?from=" + strconv.Itoa(total+100))
	if err != nil {
		t.Fatal(err)
	}
	ids, _ = readSSEIDs(t, resp.Body)
	resp.Body.Close()
	if len(ids) != 0 {
		t.Fatalf("from=past-end replayed %v, want nothing", ids)
	}

	// Negative offsets are a client mistake.
	resp, err = http.Get(cts.URL + "/jobs/" + j.ID + "/events?from=-1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("from=-1 = %d, want 400", resp.StatusCode)
	}
}

// TestServerQueueFullBody checks the coordinator's 429 contract: the
// Retry-After header plus live queue gauges in the JSON error body.
func TestServerQueueFullBody(t *testing.T) {
	opt := testOptions()
	opt.QueueSize = 1
	_, cts := newCoordServer(t, opt) // no workers: jobs stay queued

	if resp, data := postSpec(t, cts.URL, tinySpec()); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1 = %d: %s", resp.StatusCode, data)
	}
	resp, data := postSpec(t, cts.URL, tinySpec())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit 2 = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatalf("429 body: %v", err)
	}
	if eb.QueueDepth != 1 || eb.QueueCap != 1 {
		t.Errorf("429 body gauges = depth %d cap %d, want 1/1", eb.QueueDepth, eb.QueueCap)
	}
}

// TestServerRejectsClientCheckpoint: the checkpoint field is
// fleet-internal; the public API must refuse it.
func TestServerRejectsClientCheckpoint(t *testing.T) {
	_, cts := newCoordServer(t, testOptions())
	spec := tinySpec()
	spec.Checkpoint = []byte("RPSN-bogus")
	resp, data := postSpec(t, cts.URL, spec)
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(data, []byte("fleet-internal")) {
		t.Fatalf("submit with checkpoint = %d %s, want 400 fleet-internal", resp.StatusCode, data)
	}
}

// TestServerMetrics spot-checks the placerd_fleet_* exposition.
func TestServerMetrics(t *testing.T) {
	c, cts := newCoordServer(t, testOptions())
	startWorker(t, c, serve.Options{Runner: completingRunner(nil)})
	j, err := c.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, serve.StateDone)

	resp, err := http.Get(cts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`placerd_fleet_workers{live="true"} 1`,
		`placerd_fleet_jobs_total{state="done"} 1`,
		"placerd_fleet_reassignments_total 0",
		"placerd_fleet_job_duration_seconds_count 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
