package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/serve"
)

// AgentOptions configures a worker's fleet agent.
type AgentOptions struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Advertise is the base URL under which the coordinator can reach this
	// worker's placerd API.
	Advertise string
	// Capacity is the number of jobs the worker accepts concurrently
	// (normally the manager's pool size).
	Capacity int
	// Manager is the local placerd job manager; its non-terminal jobs are
	// reported as active on every heartbeat.
	Manager *serve.Manager
	// Logger receives agent lifecycle logs (nil = discard).
	Logger *slog.Logger
	// Client issues agent→coordinator requests (nil = a 5s-timeout client).
	Client *http.Client
}

// registerRequest/registerResponse are the fleet registration wire types.
type registerRequest struct {
	Addr     string `json:"addr"`
	Capacity int    `json:"capacity"`
}

type registerResponse struct {
	WorkerID    string `json:"worker_id"`
	HeartbeatMS int64  `json:"heartbeat_ms"`
	LeaseMS     int64  `json:"lease_ms"`
}

// heartbeatRequest reports liveness and the worker-side ids of all
// non-terminal jobs.
type heartbeatRequest struct {
	WorkerID string   `json:"worker_id"`
	Active   []string `json:"active,omitempty"`
}

// Agent registers a placerd worker with a fleet coordinator and keeps the
// registration alive with periodic heartbeats. If the coordinator forgets
// the worker (restart, expiry) the agent transparently re-registers under
// a fresh identity.
type Agent struct {
	opt  AgentOptions
	stop chan struct{}
	wg   sync.WaitGroup

	mu       sync.Mutex
	workerID string
	beat     time.Duration
}

// StartAgent registers with the coordinator (retrying until it answers)
// and starts the heartbeat loop.
func StartAgent(opt AgentOptions) (*Agent, error) {
	if opt.Coordinator == "" || opt.Advertise == "" {
		return nil, fmt.Errorf("fleet agent: coordinator and advertise URLs are required")
	}
	if opt.Capacity <= 0 {
		opt.Capacity = 1
	}
	if opt.Logger == nil {
		opt.Logger = slog.New(slog.DiscardHandler)
	}
	if opt.Client == nil {
		opt.Client = &http.Client{Timeout: 5 * time.Second}
	}
	a := &Agent{opt: opt, stop: make(chan struct{})}
	a.wg.Add(1)
	go a.run()
	return a, nil
}

// WorkerID returns the coordinator-assigned identity ("" before the first
// successful registration).
func (a *Agent) WorkerID() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.workerID
}

// run is the agent loop: register (with backoff), then heartbeat until
// stopped; a 404 heartbeat means the coordinator no longer knows us, so
// drop the identity and register again.
func (a *Agent) run() {
	defer a.wg.Done()
	backoff := 250 * time.Millisecond
	for {
		select {
		case <-a.stop:
			return
		default:
		}
		if a.WorkerID() == "" {
			if err := a.register(); err != nil {
				a.opt.Logger.Warn("fleet registration failed; retrying", "coordinator", a.opt.Coordinator, "err", err)
				select {
				case <-a.stop:
					return
				case <-time.After(backoff):
				}
				backoff = min(backoff*2, 5*time.Second)
				continue
			}
			backoff = 250 * time.Millisecond
		}
		a.mu.Lock()
		beat := a.beat
		a.mu.Unlock()
		select {
		case <-a.stop:
			return
		case <-time.After(beat):
		}
		if err := a.heartbeat(); err != nil {
			a.opt.Logger.Warn("heartbeat failed", "err", err)
		}
	}
}

// register announces the worker and adopts the coordinator's cadence.
func (a *Agent) register() error {
	body, _ := json.Marshal(registerRequest{Addr: a.opt.Advertise, Capacity: a.opt.Capacity})
	resp, err := a.opt.Client.Post(a.opt.Coordinator+"/fleet/register", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("register: %s", errorMessage(data, resp.StatusCode))
	}
	var rr registerResponse
	if err := json.Unmarshal(data, &rr); err != nil || rr.WorkerID == "" {
		return fmt.Errorf("register: bad response: %v", err)
	}
	beat := time.Duration(rr.HeartbeatMS) * time.Millisecond
	if beat <= 0 {
		beat = 2 * time.Second
	}
	a.mu.Lock()
	a.workerID = rr.WorkerID
	a.beat = beat
	a.mu.Unlock()
	a.opt.Logger.Info("registered with fleet coordinator",
		"coordinator", a.opt.Coordinator, "worker", rr.WorkerID, "heartbeat", beat)
	return nil
}

// heartbeat reports liveness plus the active job set; on 404 the identity
// is dropped so the loop re-registers.
func (a *Agent) heartbeat() error {
	id := a.WorkerID()
	if id == "" {
		return nil
	}
	var active []string
	for _, j := range a.opt.Manager.List() {
		if !j.State().Terminal() {
			active = append(active, j.ID)
		}
	}
	body, _ := json.Marshal(heartbeatRequest{WorkerID: id, Active: active})
	resp, err := a.opt.Client.Post(a.opt.Coordinator+"/fleet/heartbeat", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode == http.StatusNotFound {
		a.opt.Logger.Warn("coordinator forgot this worker; re-registering", "worker", id)
		a.mu.Lock()
		a.workerID = ""
		a.mu.Unlock()
		return nil
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("heartbeat: HTTP %d", resp.StatusCode)
	}
	return nil
}

// Close stops the heartbeat loop and deregisters gracefully so the
// coordinator requeues this worker's jobs immediately instead of waiting
// out their leases.
func (a *Agent) Close(ctx context.Context) error {
	select {
	case <-a.stop:
		return nil
	default:
		close(a.stop)
	}
	a.wg.Wait()
	id := a.WorkerID()
	if id == "" {
		return nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, a.opt.Coordinator+"/fleet/workers/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := a.opt.Client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}
