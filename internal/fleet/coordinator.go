package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/store"
)

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	ID         string
	Addr       string // base URL, e.g. "http://127.0.0.1:8081"
	Capacity   int
	Registered time.Time
	LastBeat   time.Time
	Lost       bool
	jobs       map[string]*Job // fleet jobs currently leased to it
}

// WorkerStatus is the JSON view of a worker for /fleet/workers.
type WorkerStatus struct {
	ID         string    `json:"id"`
	Addr       string    `json:"addr"`
	Capacity   int       `json:"capacity"`
	Live       bool      `json:"live"`
	Jobs       []string  `json:"jobs,omitempty"`
	Registered time.Time `json:"registered"`
	LastBeat   time.Time `json:"last_heartbeat"`
}

// Coordinator owns the fleet: the job table, the worker registry, the
// lease scheduler and the artifact cache.
type Coordinator struct {
	opt   Options
	store *store.Store // nil without Options.StateDir

	mu         sync.Mutex
	jobs       map[string]*Job
	order      []string
	workers    map[string]*workerState
	nextJob    int
	nextWorker int
	closed     bool

	wake chan struct{} // scheduler kick, capacity 1
	done chan struct{} // closed on shutdown
	wg   sync.WaitGroup

	stats fleetStats
}

// NewCoordinator builds a coordinator and starts its scheduler. With a
// state directory it opens the fleet-wide artifact store for dedup.
func NewCoordinator(opt Options) (*Coordinator, error) {
	opt = opt.withDefaults()
	c := &Coordinator{
		opt:     opt,
		jobs:    make(map[string]*Job),
		workers: make(map[string]*workerState),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	c.stats.init()
	if opt.StateDir != "" {
		if err := os.MkdirAll(opt.StateDir, 0o755); err != nil {
			return nil, err
		}
		st, err := store.Open(filepath.Join(opt.StateDir, "store"), store.Options{MaxBytes: opt.StoreMaxBytes})
		if err != nil {
			return nil, fmt.Errorf("fleet: opening artifact store: %w", err)
		}
		c.store = st
	}
	c.wg.Add(1)
	go c.scheduler()
	return c, nil
}

// kick wakes the scheduler without blocking.
func (c *Coordinator) kick() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// Submit validates the spec, consults the fleet-wide dedup store, and
// queues a job for assignment. The design is loaded coordinator-side to
// compute the dedup fingerprint, exactly as a worker would load it.
func (c *Coordinator) Submit(spec serve.Spec) (*Job, error) {
	if len(spec.Checkpoint) > 0 {
		return nil, fmt.Errorf("%w: checkpoint is fleet-internal and cannot be submitted", ErrBadSpec)
	}
	if err := serve.ValidateSpec(spec); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	if _, err := core.New(spec.Config); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	d, err := serve.LoadDesign(spec, c.opt.AllowDir)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSpec, err)
	}

	storeKey := ""
	if c.store != nil {
		if key, kerr := serve.DedupKey(d, spec, c.opt.Workers); kerr == nil {
			storeKey = key
			if arts, ok, _ := c.store.Get(key); ok {
				return c.cachedJob(spec, d.Name, arts)
			}
		}
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrShuttingDown
	}
	if c.queuedLocked() >= c.opt.QueueSize {
		c.mu.Unlock()
		return nil, ErrQueueFull
	}
	c.nextJob++
	j := &Job{
		ID:   fmt.Sprintf("job-%06d", c.nextJob),
		Spec: spec,
		log:  newEventLog(),
	}
	j.state = serve.StateQueued
	j.submitted = time.Now()
	j.designName = d.Name
	j.storeKey = storeKey
	c.jobs[j.ID] = j
	c.order = append(c.order, j.ID)
	c.mu.Unlock()

	j.log.publish(serve.Event{Type: serve.EventState, State: serve.StateQueued})
	c.opt.Logger.Info("fleet job submitted", "job", j.ID, "design", d.Name)
	c.kick()
	return j, nil
}

// cachedJob registers a job born done from the fleet-wide artifact store.
func (c *Coordinator) cachedJob(spec serve.Spec, design string, arts map[string][]byte) (*Job, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrShuttingDown
	}
	c.nextJob++
	now := time.Now()
	j := &Job{
		ID:   fmt.Sprintf("job-%06d", c.nextJob),
		Spec: spec,
		log:  newEventLog(),
	}
	j.state = serve.StateDone
	j.cached = true
	j.submitted, j.started, j.finished = now, now, now
	j.designName = design
	j.report = arts[serve.ReportFile]
	j.pl = arts[serve.ResultFile]
	j.trace = arts[serve.TraceFile]
	c.jobs[j.ID] = j
	c.order = append(c.order, j.ID)
	c.mu.Unlock()

	j.log.publish(serve.Event{Type: serve.EventState, State: serve.StateDone, Cached: true})
	j.log.close()
	c.stats.jobsDone.Add(1)
	c.opt.Logger.Info("fleet job served from artifact store", "job", j.ID, "design", design)
	return j, nil
}

// queuedLocked counts jobs waiting for a worker. Caller holds c.mu.
func (c *Coordinator) queuedLocked() int {
	n := 0
	for _, j := range c.jobs {
		if j.State() == serve.StateQueued {
			n++
		}
	}
	return n
}

// QueueDepth is the number of jobs waiting for a worker.
func (c *Coordinator) QueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queuedLocked()
}

// QueueCap is the submission bound (for 429 bodies and metrics).
func (c *Coordinator) QueueCap() int { return c.opt.QueueSize }

// Get looks a job up by ID.
func (c *Coordinator) Get(id string) (*Job, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j, nil
}

// List returns all jobs in submission order.
func (c *Coordinator) List() []*Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Job, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.jobs[id])
	}
	return out
}

// Cancel requests cancellation: queued jobs turn terminal immediately,
// running jobs are canceled on their worker (the follower completes the
// transition when the worker confirms).
func (c *Coordinator) Cancel(id string) (*Job, error) {
	j, err := c.Get(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	j.canceled = true
	state := j.state
	addr, wjob := j.workerAddr, j.workerJob
	j.mu.Unlock()
	switch state {
	case serve.StateQueued:
		c.finishJob(j, serve.StateCanceled, "canceled while queued")
	case serve.StateRunning:
		if addr != "" && wjob != "" {
			go c.cancelWorkerJob(addr, wjob)
		}
	}
	c.opt.Logger.Info("fleet job cancel requested", "job", id, "state", state)
	return j, nil
}

// cancelWorkerJob best-effort cancels a job on its worker.
func (c *Coordinator) cancelWorkerJob(addr, workerJob string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, addr+"/jobs/"+workerJob, nil)
	if err != nil {
		return
	}
	resp, err := c.opt.Client.Do(req)
	if err != nil {
		return
	}
	resp.Body.Close()
}

// Register adds (or refreshes) a worker and returns its assigned id.
func (c *Coordinator) Register(addr string, capacity int) (*workerState, error) {
	if addr == "" {
		return nil, fmt.Errorf("%w: register requires a reachable addr", ErrBadSpec)
	}
	if capacity <= 0 {
		capacity = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrShuttingDown
	}
	// A re-registration from the same address supersedes the old identity:
	// the previous incarnation's leases are expired by their own clocks.
	c.nextWorker++
	w := &workerState{
		ID:         fmt.Sprintf("w-%06d", c.nextWorker),
		Addr:       addr,
		Capacity:   capacity,
		Registered: time.Now(),
		LastBeat:   time.Now(),
		jobs:       make(map[string]*Job),
	}
	c.workers[w.ID] = w
	c.opt.Logger.Info("worker registered", "worker", w.ID, "addr", addr, "capacity", capacity)
	c.kick()
	return w, nil
}

// Heartbeat records a sign of life from a worker and renews the leases of
// every assigned job the worker still reports as active. Jobs missing
// from the active set keep their current lease and lapse on schedule —
// the worker forgot them (restart, eviction), so they must be reassigned.
func (c *Coordinator) Heartbeat(workerID string, active []string) error {
	c.mu.Lock()
	w, ok := c.workers[workerID]
	if !ok || w.Lost {
		c.mu.Unlock()
		return ErrUnknownWorker
	}
	w.LastBeat = time.Now()
	activeSet := make(map[string]bool, len(active))
	for _, id := range active {
		activeSet[id] = true
	}
	renew := make([]*Job, 0, len(w.jobs))
	for _, j := range w.jobs {
		j.mu.Lock()
		if activeSet[j.workerJob] {
			renew = append(renew, j)
		}
		j.mu.Unlock()
	}
	c.mu.Unlock()
	for _, j := range renew {
		j.mu.Lock()
		attempt := j.attempts
		j.mu.Unlock()
		j.renewLease(attempt, c.opt.LeaseTTL)
	}
	return nil
}

// Deregister gracefully removes a worker: it is marked lost and its jobs
// are requeued immediately instead of waiting out their leases.
func (c *Coordinator) Deregister(workerID string) error {
	c.mu.Lock()
	w, ok := c.workers[workerID]
	if !ok {
		c.mu.Unlock()
		return ErrUnknownWorker
	}
	jobs := c.loseWorkerLocked(w)
	c.mu.Unlock()
	for _, j := range jobs {
		c.requeue(j, "worker deregistered")
	}
	c.opt.Logger.Info("worker deregistered", "worker", workerID)
	c.kick()
	return nil
}

// loseWorkerLocked marks a worker lost and returns the jobs it held.
// Caller holds c.mu.
func (c *Coordinator) loseWorkerLocked(w *workerState) []*Job {
	if w.Lost {
		return nil
	}
	w.Lost = true
	c.stats.workersLost.Add(1)
	jobs := make([]*Job, 0, len(w.jobs))
	for _, j := range w.jobs {
		jobs = append(jobs, j)
	}
	clear(w.jobs)
	return jobs
}

// Workers snapshots the registry for /fleet/workers, sorted by id.
func (c *Coordinator) Workers() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		ws := WorkerStatus{
			ID: w.ID, Addr: w.Addr, Capacity: w.Capacity,
			Live: !w.Lost, Registered: w.Registered, LastBeat: w.LastBeat,
		}
		for id := range w.jobs {
			ws.Jobs = append(ws.Jobs, id)
		}
		sort.Strings(ws.Jobs)
		out = append(out, ws)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// scheduler is the coordinator's control loop: every tick (or kick) it
// expires silent workers, reaps lapsed leases, and assigns queued jobs
// whose backoff has elapsed to live workers with free capacity.
func (c *Coordinator) scheduler() {
	defer c.wg.Done()
	t := time.NewTicker(c.opt.Tick)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		case <-c.wake:
		}
		c.reap()
		c.assign()
	}
}

// reap requeues the jobs of workers that stopped heartbeating and of
// assignments whose lease lapsed.
func (c *Coordinator) reap() {
	now := time.Now()
	var requeues []*Job
	var reasons []string

	c.mu.Lock()
	for _, w := range c.workers {
		if !w.Lost && now.Sub(w.LastBeat) > c.opt.LostAfter {
			c.opt.Logger.Warn("worker lost", "worker", w.ID, "addr", w.Addr,
				"silent", now.Sub(w.LastBeat).Round(time.Millisecond))
			for _, j := range c.loseWorkerLocked(w) {
				requeues = append(requeues, j)
				reasons = append(reasons, fmt.Sprintf("worker %s lost (no heartbeat for %s)", w.ID, now.Sub(w.LastBeat).Round(time.Millisecond)))
			}
		}
	}
	for _, id := range c.order {
		j := c.jobs[id]
		j.mu.Lock()
		lapsed := j.state == serve.StateRunning && now.After(j.leaseUntil)
		worker := j.worker
		j.mu.Unlock()
		if lapsed {
			requeues = append(requeues, j)
			reasons = append(reasons, fmt.Sprintf("lease expired on worker %s", worker))
		}
	}
	c.mu.Unlock()

	for i, j := range requeues {
		c.requeue(j, reasons[i])
	}
}

// assign leases queued jobs (past their backoff gate) to live workers
// with free capacity, least-loaded first.
func (c *Coordinator) assign() {
	now := time.Now()
	type pick struct {
		j       *Job
		w       *workerState
		attempt int
		ck      []byte
	}
	var picks []pick

	c.mu.Lock()
	for _, id := range c.order {
		j := c.jobs[id]
		j.mu.Lock()
		ready := j.state == serve.StateQueued && !j.canceled && !now.Before(j.notBefore)
		avoid := j.lastWorker
		j.mu.Unlock()
		if !ready {
			continue
		}
		w := c.freestWorkerLocked(avoid)
		if w == nil {
			break // no capacity anywhere; try again next tick
		}
		j.mu.Lock()
		j.attempts++
		j.state = serve.StateRunning
		j.running = false
		j.worker = w.ID
		j.workerAddr = w.Addr
		j.workerJob = ""
		j.leaseUntil = now.Add(c.opt.LeaseTTL)
		if j.started.IsZero() {
			j.started = now
		}
		attempt := j.attempts
		ck := j.checkpoint
		j.mu.Unlock()
		w.jobs[j.ID] = j
		picks = append(picks, pick{j, w, attempt, ck})
	}
	c.mu.Unlock()

	for _, p := range picks {
		p.j.log.publish(serve.Event{Type: EventAssign, Worker: p.w.ID})
		c.opt.Logger.Info("fleet job assigned", "job", p.j.ID, "worker", p.w.ID, "attempt", p.attempt, "resume", len(p.ck) > 0)
		// The follower's context is canceled when the scheduler takes the
		// job back (requeue), the job turns terminal, or the coordinator
		// shuts down — watchAttempt polls the assignment for that.
		ctx, cancel := context.WithCancel(context.Background())
		c.watchAttempt(p.j, p.attempt, cancel)
		c.wg.Add(1)
		go func(p pick, ctx context.Context) {
			defer c.wg.Done()
			c.follow(ctx, p.j, p.w.ID, p.w.Addr, p.attempt, p.ck)
		}(p, ctx)
	}
}

// watchAttempt cancels the follower's context once the job leaves the
// given assignment attempt (requeue, terminal, shutdown), so its stream
// and polls stop promptly.
func (c *Coordinator) watchAttempt(j *Job, attempt int, cancel context.CancelFunc) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer cancel()
		t := time.NewTicker(c.opt.Tick)
		defer t.Stop()
		for {
			select {
			case <-c.done:
				return
			case <-t.C:
				j.mu.Lock()
				live := j.state == serve.StateRunning && j.attempts == attempt
				j.mu.Unlock()
				if !live {
					return
				}
			}
		}
	}()
}

// freestWorkerLocked picks the live worker with the most free slots,
// preferring lower ids on ties. A reassigned job avoids the worker of
// its previous attempt (it may be dead but not yet declared lost) unless
// no other worker has capacity. Caller holds c.mu.
func (c *Coordinator) freestWorkerLocked(avoid string) *workerState {
	pick := func(skip string) *workerState {
		var best *workerState
		bestFree := 0
		for _, w := range c.workers {
			if w.Lost || w.ID == skip {
				continue
			}
			free := w.Capacity - len(w.jobs)
			if free > bestFree || (free == bestFree && free > 0 && (best == nil || w.ID < best.ID)) {
				best, bestFree = w, free
			}
		}
		return best
	}
	if w := pick(avoid); w != nil {
		return w
	}
	if avoid != "" {
		return pick("")
	}
	return nil
}

// requeue takes a running job back from its worker: within budget it goes
// back to the queue behind a capped exponential backoff, beyond it the
// job fails. Terminal/already-requeued jobs are left untouched, so the
// lease reaper, the follower and Deregister can all report the same death
// without double-counting.
func (c *Coordinator) requeue(j *Job, reason string) {
	c.mu.Lock()
	j.mu.Lock()
	if j.state != serve.StateRunning {
		j.mu.Unlock()
		c.mu.Unlock()
		return
	}
	oldWorker, oldAddr, oldJob := j.worker, j.workerAddr, j.workerJob
	if w := c.workers[oldWorker]; w != nil {
		delete(w.jobs, j.ID)
	}
	if j.canceled {
		j.mu.Unlock()
		c.mu.Unlock()
		c.finishJob(j, serve.StateCanceled, "canceled")
		return
	}
	if j.attempts > c.opt.RetryBudget {
		attempts := j.attempts
		j.mu.Unlock()
		c.mu.Unlock()
		c.stats.retriesExhausted.Add(1)
		c.finishJob(j, serve.StateFailed,
			fmt.Sprintf("retry budget exhausted after %d attempts: %s", attempts, reason))
		return
	}
	backoff := c.opt.backoff(j.attempts)
	j.state = serve.StateQueued
	j.lastWorker = oldWorker
	j.worker, j.workerAddr, j.workerJob = "", "", ""
	j.notBefore = time.Now().Add(backoff)
	hasCk := len(j.checkpoint) > 0
	attempts := j.attempts
	j.mu.Unlock()
	c.mu.Unlock()

	c.stats.reassignments.Add(1)
	j.log.publish(serve.Event{Type: EventRequeue, Worker: oldWorker, Error: reason})
	c.opt.Logger.Warn("fleet job requeued", "job", j.ID, "worker", oldWorker,
		"reason", reason, "attempt", attempts, "backoff", backoff, "checkpoint", hasCk)
	// Best-effort: tell the old worker to stop burning CPU on a job the
	// fleet no longer counts (it may well be dead; that is fine).
	if oldAddr != "" && oldJob != "" {
		go c.cancelWorkerJob(oldAddr, oldJob)
	}
	c.kick()
}

// finishJob moves a job to a terminal state, publishes the terminal
// event, completes the stream and updates metrics.
func (c *Coordinator) finishJob(j *Job, state serve.State, errMsg string) {
	c.mu.Lock()
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		c.mu.Unlock()
		return
	}
	if w := c.workers[j.worker]; w != nil {
		delete(w.jobs, j.ID)
	}
	worker := j.worker
	j.state = state
	if state != serve.StateDone {
		j.errMsg = errMsg
	}
	j.finished = time.Now()
	started := j.started
	j.mu.Unlock()
	c.mu.Unlock()

	j.log.publish(serve.Event{Type: serve.EventState, State: state, Error: errMsg, Worker: worker})
	j.log.close()
	dur := time.Duration(0)
	if !started.IsZero() {
		dur = time.Since(started)
	}
	c.stats.finish(state, dur)
	c.opt.Logger.Info("fleet job finished", "job", j.ID, "state", state, "worker", worker, "dur", dur, "err", errMsg)
}

// Shutdown stops the scheduler and followers, cancels non-terminal jobs
// and releases the artifact store. Jobs already running on workers keep
// running there; a restarted coordinator currently starts from an empty
// table (fleet jobs are not journaled — the workers' own durability
// covers their halves).
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)

	for _, j := range c.List() {
		if !j.State().Terminal() {
			c.finishJob(j, serve.StateCanceled, "coordinator shutdown")
		}
	}

	doneCh := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(doneCh)
	}()
	var err error
	select {
	case <-doneCh:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if c.store != nil {
		c.store.Close()
	}
	return err
}

// annotateReport injects fleet attribution into a worker-produced run
// report. On any decoding surprise the report passes through unchanged —
// attribution must never cost a client its artifact.
func annotateReport(report []byte, att map[string]any) []byte {
	var rep map[string]any
	if err := json.Unmarshal(report, &rep); err != nil || rep == nil {
		return report
	}
	rep["fleet"] = att
	out, err := json.Marshal(rep)
	if err != nil {
		return report
	}
	return append(out, '\n')
}
