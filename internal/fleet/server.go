package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/serve"
)

// ServerOptions tunes the coordinator's HTTP layer.
type ServerOptions struct {
	// MaxBodyBytes bounds submission bodies (default 32 MiB).
	MaxBodyBytes int64
	// RetryAfterSec is the Retry-After hint on 429 responses (default 2).
	RetryAfterSec int
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	if o.RetryAfterSec <= 0 {
		o.RetryAfterSec = 2
	}
	return o
}

// Server is the coordinator's HTTP API. The /jobs half is the same shape
// as a single placerd — clients cannot tell a fleet from one daemon —
// and /fleet/* is the worker-facing control plane:
//
//	POST   /jobs                submit (202; 429 when the queue is full)
//	GET    /jobs                list job statuses
//	GET    /jobs/{id}           one job's status (+ worker, attempts)
//	DELETE /jobs/{id}           cancel (202)
//	GET    /jobs/{id}/events    stitched SSE progress (?from=<seq> resumes,
//	                            gapless across reassignments)
//	GET    /jobs/{id}/report    final report (with fleet attribution)
//	GET    /jobs/{id}/result.pl placed .pl
//	GET    /jobs/{id}/trace     Chrome trace-event JSON
//	POST   /fleet/register      worker registration
//	POST   /fleet/heartbeat     worker liveness + active job set
//	GET    /fleet/workers       worker registry snapshot
//	DELETE /fleet/workers/{id}  graceful worker deregistration
//	GET    /healthz             liveness + queue/worker gauges
//	GET    /metrics             Prometheus text metrics
type Server struct {
	c   *Coordinator
	opt ServerOptions
	mux *http.ServeMux
}

// NewServer wires the coordinator API routes over c.
func NewServer(c *Coordinator, opt ServerOptions) *Server {
	s := &Server{c: c, opt: opt.withDefaults(), mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /jobs/{id}/result.pl", s.handleResultPl)
	s.mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("POST /fleet/register", s.handleRegister)
	s.mux.HandleFunc("POST /fleet/heartbeat", s.handleHeartbeat)
	s.mux.HandleFunc("GET /fleet/workers", s.handleWorkers)
	s.mux.HandleFunc("DELETE /fleet/workers/{id}", s.handleDeregister)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error      string `json:"error"`
	QueueDepth int    `json:"queue_depth,omitempty"`
	QueueCap   int    `json:"queue_cap,omitempty"`
}

// writeErr maps coordinator errors onto HTTP semantics, mirroring the
// single-node placerd API exactly.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	body := errorBody{Error: err.Error()}
	switch {
	case errors.Is(err, ErrBadSpec):
		code = http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.opt.RetryAfterSec))
		code = http.StatusTooManyRequests
		body.QueueDepth = s.c.QueueDepth()
		body.QueueCap = s.c.QueueCap()
	case errors.Is(err, ErrShuttingDown):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownJob), errors.Is(err, ErrUnknownWorker):
		code = http.StatusNotFound
	}
	writeJSON(w, code, body)
}

type submitResponse struct {
	Status
	Links map[string]string `json:"links"`
}

func jobLinks(id string) map[string]string {
	base := "/jobs/" + id
	return map[string]string{
		"self":   base,
		"events": base + "/events",
		"report": base + "/report",
		"result": base + "/result.pl",
		"trace":  base + "/trace",
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	var spec serve.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: err.Error()})
			return
		}
		s.writeErr(w, fmt.Errorf("%w: %w", ErrBadSpec, err))
		return
	}
	j, err := s.c.Submit(spec)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{Status: j.Status(), Links: jobLinks(j.ID)})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.c.List()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, err := s.c.Get(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, submitResponse{Status: j.Status(), Links: jobLinks(j.ID)})
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.c.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

// handleEvents streams the stitched per-job event log as SSE, exactly
// like single-node placerd: full replay from ?from=<seq>, then live tail.
// Because the coordinator re-sequences events from every assignment
// attempt into one contiguous log, resuming after a reassignment needs no
// client-side gap handling.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported"})
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			s.writeErr(w, fmt.Errorf("%w: bad from=%q", ErrBadSpec, q))
			return
		}
		from = v
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	for {
		evs, done, sig := j.Events(from)
		for i := range evs {
			data, err := json.Marshal(&evs[i])
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", evs[i].Seq, evs[i].Type, data)
		}
		from += len(evs)
		fl.Flush()
		if done {
			return
		}
		select {
		case <-sig:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) serveArtifact(w http.ResponseWriter, r *http.Request, contentType string, get func(*Job) []byte, what string) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	data := get(j)
	if data == nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf("job %s has no %s yet (state %s)", j.ID, what, j.State())})
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Write(data)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	s.serveArtifact(w, r, "application/json", (*Job).Report, "report")
}

func (s *Server) handleResultPl(w http.ResponseWriter, r *http.Request) {
	s.serveArtifact(w, r, "text/plain; charset=utf-8", (*Job).ResultPl, "placement result")
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.serveArtifact(w, r, "application/json", (*Job).Trace, "trace")
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, fmt.Errorf("%w: %w", ErrBadSpec, err))
		return
	}
	wk, err := s.c.Register(req.Addr, req.Capacity)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, registerResponse{
		WorkerID:    wk.ID,
		HeartbeatMS: s.c.opt.HeartbeatEvery.Milliseconds(),
		LeaseMS:     s.c.opt.LeaseTTL.Milliseconds(),
	})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, fmt.Errorf("%w: %w", ErrBadSpec, err))
		return
	}
	if err := s.c.Heartbeat(req.WorkerID, req.Active); err != nil {
		s.writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.c.Workers())
}

func (s *Server) handleDeregister(w http.ResponseWriter, r *http.Request) {
	if err := s.c.Deregister(r.PathValue("id")); err != nil {
		s.writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	live := 0
	for _, wk := range s.c.Workers() {
		if wk.Live {
			live++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"role":         "coordinator",
		"queue_depth":  s.c.QueueDepth(),
		"queue_cap":    s.c.QueueCap(),
		"workers_live": live,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.c.writeMetrics(w)
}
