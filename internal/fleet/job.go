package fleet

import (
	"sync"
	"time"

	"repro/internal/serve"
)

// Job is one fleet-level placement job: submitted once at the
// coordinator, executed one or more times on workers.
type Job struct {
	// ID is the coordinator-assigned job identifier. Immutable.
	ID string
	// Spec is the submitted specification (never carries a checkpoint;
	// checkpoints are injected into the copies sent to workers).
	Spec serve.Spec

	log *eventLog

	mu        sync.Mutex
	state     serve.State
	errMsg    string
	cached    bool
	canceled  bool // user requested cancellation
	submitted time.Time
	started   time.Time
	finished  time.Time

	designName string
	storeKey   string // artifact-store key ("" when dedup is off)

	// Assignment state, meaningful while state == running.
	attempts   int    // assignment attempts so far (1 = first)
	lastWorker string // worker of the previous attempt (reassignment anti-affinity)
	worker     string // owning worker id
	workerAddr string // owning worker base URL
	workerJob  string // job id on the owning worker
	leaseUntil time.Time
	notBefore  time.Time // backoff gate while queued
	running    bool      // a worker reported the running state this attempt

	// checkpoint is the latest snap-codec checkpoint fetched from a
	// worker, handed to the next assignment on requeue.
	checkpoint []byte

	report, pl, trace []byte
}

// Status is the JSON view of a fleet job: the serve.Status shape plus
// fleet attribution, so a client written against single-node placerd can
// read it unchanged.
type Status struct {
	serve.Status
	// Worker is the id of the worker currently (running) or last
	// (terminal) owning the job.
	Worker string `json:"worker,omitempty"`
	// Attempts is the number of assignment attempts consumed (1 = never
	// reassigned).
	Attempts int `json:"attempts,omitempty"`
}

// State returns the job's current lifecycle state.
func (j *Job) State() serve.State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Status snapshots the job for the API.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		Status: serve.Status{
			ID:        j.ID,
			State:     j.state,
			Design:    j.designName,
			Error:     j.errMsg,
			Submitted: j.submitted,
			Events:    j.log.len(),
			Cached:    j.cached,
		},
		Worker:   j.worker,
		Attempts: j.attempts,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.DurationMS = float64(end.Sub(j.started)) / float64(time.Millisecond)
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// Events exposes the stitched progress stream (see eventLog.since).
func (j *Job) Events(from int) ([]serve.Event, bool, <-chan struct{}) {
	return j.log.since(from)
}

// Report returns the final JSON run report fetched from the worker that
// completed the job, annotated with fleet attribution (nil until done).
func (j *Job) Report() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// ResultPl returns the placed .pl bytes (nil until done).
func (j *Job) ResultPl() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pl
}

// Trace returns the Chrome trace-event JSON (nil until done).
func (j *Job) Trace() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// setCheckpoint records the latest worker-reported checkpoint.
func (j *Job) setCheckpoint(data []byte) {
	if len(data) == 0 {
		return
	}
	j.mu.Lock()
	j.checkpoint = data
	j.mu.Unlock()
}

// publishProxied re-publishes a worker progress event into the stitched
// log, attributed to the worker, unless the attempt went stale.
func (j *Job) publishProxied(e serve.Event, worker string, attempt int) {
	j.mu.Lock()
	stale := j.attempts != attempt || j.state != serve.StateRunning
	j.mu.Unlock()
	if stale {
		return
	}
	e.Worker = worker
	j.log.publish(e)
}

// renewLease extends the lease while the job is still owned by the given
// attempt. Stale renewals (the scheduler already took the job back) are
// ignored.
func (j *Job) renewLease(attempt int, ttl time.Duration) {
	j.mu.Lock()
	if j.state == serve.StateRunning && j.attempts == attempt {
		j.leaseUntil = time.Now().Add(ttl)
	}
	j.mu.Unlock()
}

// publishRunning emits the running state event once per attempt, when the
// worker first reports it.
func (j *Job) publishRunning(worker string, attempt int) {
	j.mu.Lock()
	stale := j.attempts != attempt || j.running
	if !stale {
		j.running = true
	}
	j.mu.Unlock()
	if !stale {
		j.log.publish(serve.Event{Type: serve.EventState, State: serve.StateRunning, Worker: worker})
	}
}
