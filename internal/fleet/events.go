package fleet

import (
	"sync"

	"repro/internal/serve"
)

// Fleet-specific event types, alongside the serve.Event* types proxied
// from workers. The stitched stream of a reassigned job reads like:
//
//	state:queued → assign(w1) → state:running → gp… → requeue(w1, reason)
//	→ assign(w2) → state:running → gp… → state:done
const (
	// EventAssign marks the job being leased to Event.Worker.
	EventAssign = "assign"
	// EventRequeue marks the job being taken back from Event.Worker
	// (Event.Error carries the reason) and queued for reassignment.
	EventRequeue = "requeue"
)

// eventLog is the coordinator-side per-job event log: the fleet twin of
// serve's broker. Events proxied from every assignment attempt are
// appended here with coordinator-assigned contiguous sequence numbers, so
// SSE ?from= replay is gapless across reassignments.
type eventLog struct {
	mu     sync.Mutex
	events []serve.Event
	done   bool
	// sig is closed (and replaced) on every publish and on close — a
	// broadcast that wakes all waiting subscribers while they also select
	// on their client's disconnect.
	sig chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{sig: make(chan struct{})}
}

// publish appends e (assigning its Seq) and wakes subscribers. Events
// published after close are dropped.
func (l *eventLog) publish(e serve.Event) {
	l.mu.Lock()
	if l.done {
		l.mu.Unlock()
		return
	}
	e.Seq = len(l.events)
	l.events = append(l.events, e)
	close(l.sig)
	l.sig = make(chan struct{})
	l.mu.Unlock()
}

// close marks the log complete; subscribers drain and stop.
func (l *eventLog) close() {
	l.mu.Lock()
	if !l.done {
		l.done = true
		close(l.sig)
		l.sig = make(chan struct{})
	}
	l.mu.Unlock()
}

// since returns the events from index `from` on, whether the log is
// complete, and a channel closed on the next publish (or close). The
// returned slice aliases the log and must not be mutated.
func (l *eventLog) since(from int) (evs []serve.Event, done bool, sig <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from < len(l.events) {
		evs = l.events[from:]
	}
	return evs, l.done, l.sig
}

// len returns the number of published events.
func (l *eventLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}
