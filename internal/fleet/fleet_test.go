package fleet

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/snap"
)

// tinySpec is a generated design small enough that coordinator-side
// design loading (for validation and dedup fingerprints) is instant.
func tinySpec() serve.Spec {
	return serve.Spec{
		Generate: &gen.Config{
			Name: "fleet-t", Seed: 11,
			NumStdCells: 200, NumFixedMacros: 1, NumMovableMacros: 1,
			MacroSizeRows: 4, NumModules: 2, NumFences: 1, NumTerminals: 8,
			TargetUtil: 0.5,
		},
	}
}

// testOptions shrinks every fleet timescale so lease lapses and backoff
// play out in milliseconds.
func testOptions() Options {
	return Options{
		LeaseTTL:       500 * time.Millisecond,
		HeartbeatEvery: 40 * time.Millisecond,
		LostAfter:      200 * time.Millisecond,
		BackoffBase:    10 * time.Millisecond,
		BackoffMax:     50 * time.Millisecond,
		Tick:           15 * time.Millisecond,
	}
}

func mustCoordinator(t *testing.T, opt Options) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(opt)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	})
	return c
}

// testWorker is one worker: a real serve.Manager behind a real HTTP
// server, registered with the coordinator, with heartbeats driven by the
// test so individual tests can stop them to simulate a crash.
type testWorker struct {
	ID  string
	mgr *serve.Manager
	ts  *httptest.Server

	stopOnce sync.Once
	stop     chan struct{}
}

func startWorker(t *testing.T, c *Coordinator, sopt serve.Options) *testWorker {
	t.Helper()
	mgr, err := serve.NewManager(sopt)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	ts := httptest.NewServer(serve.NewServer(mgr, serve.ServerOptions{}))
	capacity := sopt.Jobs
	if capacity <= 0 {
		capacity = 1
	}
	ws, err := c.Register(ts.URL, capacity)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	w := &testWorker{ID: ws.ID, mgr: mgr, ts: ts, stop: make(chan struct{})}
	go func() {
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-tick.C:
				var active []string
				for _, j := range mgr.List() {
					if !j.State().Terminal() {
						active = append(active, j.ID)
					}
				}
				c.Heartbeat(w.ID, active)
			}
		}
	}()
	t.Cleanup(func() {
		w.stopHeartbeat()
		ts.Close()
		// Cancel leftovers first: Shutdown waits out its whole context
		// before canceling, and wedged test runners never finish on their
		// own.
		for _, j := range mgr.List() {
			if !j.State().Terminal() {
				mgr.Cancel(j.ID)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
	})
	return w
}

// waitOwned waits until the coordinator has recorded the worker-side job
// id for the current assignment — the point where cancels and requeues
// can reach the worker.
func waitOwned(t *testing.T, j *Job) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j.mu.Lock()
		owned := j.workerJob != ""
		j.mu.Unlock()
		if owned {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never got a worker-side id", j.ID)
}

// stopHeartbeat simulates a crash/partition: the worker's placerd may or
// may not still be up, but the coordinator stops hearing from it.
func (w *testWorker) stopHeartbeat() {
	w.stopOnce.Do(func() { close(w.stop) })
}

func waitState(t *testing.T, j *Job, want serve.State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s state = %s, want %s (status %+v)", j.ID, j.State(), want, j.Status())
}

// completingRunner emits a GP round and sets artifacts, like the real
// placement body would.
func completingRunner(runs *atomic.Int64) func(context.Context, *serve.Job) error {
	return func(ctx context.Context, j *serve.Job) error {
		if runs != nil {
			runs.Add(1)
		}
		j.PublishObs(obs.Event{GP: &obs.GPRound{Round: 1, HPWL: 42}})
		j.SetArtifacts([]byte(`{"version":1}`), []byte("pl-result\n"), nil, nil)
		return nil
	}
}

func TestFleetHappyPath(t *testing.T) {
	c := mustCoordinator(t, testOptions())
	w := startWorker(t, c, serve.Options{Runner: completingRunner(nil)})

	j, err := c.Submit(tinySpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, j, serve.StateDone)

	evs, done, _ := j.Events(0)
	if !done {
		t.Fatal("event log not closed after terminal state")
	}
	var types []string
	for i, e := range evs {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d: stitched log must be contiguous", i, e.Seq)
		}
		types = append(types, e.Type)
	}
	got := strings.Join(types, ",")
	want := "state,assign,state,gp,state"
	if got != want {
		t.Fatalf("event types = %s, want %s", got, want)
	}
	if evs[1].Worker != w.ID {
		t.Errorf("assign event worker = %q, want %q", evs[1].Worker, w.ID)
	}

	if string(j.ResultPl()) != "pl-result\n" {
		t.Errorf("ResultPl = %q", j.ResultPl())
	}
	var rep struct {
		Fleet *obs.FleetAttribution `json:"fleet"`
	}
	if err := json.Unmarshal(j.Report(), &rep); err != nil {
		t.Fatalf("report: %v", err)
	}
	if rep.Fleet == nil || rep.Fleet.Worker != w.ID || rep.Fleet.Attempt != 1 || rep.Fleet.Resumed {
		t.Errorf("fleet attribution = %+v, want worker %s attempt 1 fresh", rep.Fleet, w.ID)
	}

	st := j.Status()
	if st.Worker != w.ID || st.Attempts != 1 || st.State != serve.StateDone {
		t.Errorf("status = %+v", st)
	}
}

func TestFleetReassignsOnWorkerLoss(t *testing.T) {
	c := mustCoordinator(t, testOptions())

	// Worker 1 wedges every job; worker 2 completes them. Assignment
	// prefers the lowest worker id on ties, so the job lands on w1 first.
	started := make(chan string, 4)
	w1 := startWorker(t, c, serve.Options{Runner: func(ctx context.Context, j *serve.Job) error {
		started <- j.ID
		<-ctx.Done()
		return ctx.Err()
	}})
	w2 := startWorker(t, c, serve.Options{Runner: completingRunner(nil)})

	j, err := c.Submit(tinySpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started // wedged on w1

	// Crash w1: heartbeats stop, placerd keeps the connection open (the
	// wedge), so only the liveness sweep can free the job.
	w1.stopHeartbeat()
	waitState(t, j, serve.StateDone)

	st := j.Status()
	if st.Worker != w2.ID {
		t.Errorf("finished on worker %q, want %q", st.Worker, w2.ID)
	}
	if st.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", st.Attempts)
	}
	if got := c.stats.reassignments.Load(); got != 1 {
		t.Errorf("reassignments = %d, want 1", got)
	}

	// The stitched stream must read: queued, assign(w1), running(w1),
	// requeue(w1), assign(w2), running(w2), gp, done — contiguous seqs.
	evs, done, _ := j.Events(0)
	if !done {
		t.Fatal("event log not closed")
	}
	var requeues, assigns int
	for i, e := range evs {
		if e.Seq != i {
			t.Fatalf("seq gap at %d (seq %d)", i, e.Seq)
		}
		switch e.Type {
		case EventRequeue:
			requeues++
			if e.Worker != w1.ID {
				t.Errorf("requeue attributed to %q, want %q", e.Worker, w1.ID)
			}
		case EventAssign:
			assigns++
		}
	}
	if requeues != 1 || assigns != 2 {
		t.Errorf("requeues=%d assigns=%d, want 1 and 2", requeues, assigns)
	}

	// The lost worker shows as not live in the registry.
	for _, ws := range c.Workers() {
		if ws.ID == w1.ID && ws.Live {
			t.Errorf("worker %s still live after missed heartbeats", w1.ID)
		}
	}
}

func TestFleetRetryBudgetExhausted(t *testing.T) {
	opt := testOptions()
	opt.RetryBudget = 1
	c := mustCoordinator(t, opt)

	// A worker whose placerd is already gone: submits fail, every attempt
	// burns retry budget. Heartbeats keep flowing so the worker stays
	// "live" and keeps being picked.
	w := startWorker(t, c, serve.Options{Runner: completingRunner(nil)})
	w.ts.Close()

	j, err := c.Submit(tinySpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, j, serve.StateFailed)

	st := j.Status()
	if !strings.Contains(st.Error, "retry budget exhausted") {
		t.Errorf("error = %q, want retry budget exhaustion", st.Error)
	}
	if st.Attempts != 2 { // 1 first run + 1 retry
		t.Errorf("attempts = %d, want 2", st.Attempts)
	}
	if got := c.stats.retriesExhausted.Load(); got != 1 {
		t.Errorf("retriesExhausted = %d, want 1", got)
	}
}

func TestFleetCheckpointHandoff(t *testing.T) {
	c := mustCoordinator(t, testOptions())

	ckState := &snap.State{
		Design: "fleet-t", Stage: snap.StageGP, Round: 3,
		Lambda: 0.5, Mu: 1,
		X: []float64{1, 2}, Y: []float64{3, 4},
		Orient: []uint8{0, 0}, Inflate: []float64{1, 1},
	}

	// Worker 1 journals a checkpoint, then wedges. Its manager needs a
	// state dir: SaveCheckpoint writes through the job journal.
	saved := make(chan struct{}, 1)
	w1 := startWorker(t, c, serve.Options{
		StateDir: t.TempDir(),
		Runner: func(ctx context.Context, j *serve.Job) error {
			if err := j.SaveCheckpoint(ckState); err != nil {
				t.Errorf("SaveCheckpoint: %v", err)
			}
			saved <- struct{}{}
			<-ctx.Done()
			return ctx.Err()
		},
	})

	j, err := c.Submit(tinySpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-saved

	// Wait for the coordinator's checkpoint poller to pick it up, then
	// crash w1.
	deadline := time.Now().Add(30 * time.Second)
	for {
		j.mu.Lock()
		got := len(j.checkpoint) > 0
		j.mu.Unlock()
		if got {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never fetched the checkpoint")
		}
		time.Sleep(10 * time.Millisecond)
	}
	w1.stopHeartbeat()

	// Worker 2 must receive the checkpoint decoded into its resume slot.
	resumed := make(chan *snap.State, 1)
	w2 := startWorker(t, c, serve.Options{Runner: func(ctx context.Context, sj *serve.Job) error {
		resumed <- sj.Resume()
		return completingRunner(nil)(ctx, sj)
	}})
	_ = w2

	waitState(t, j, serve.StateDone)
	st := <-resumed
	if st == nil {
		t.Fatal("reassigned run did not receive the checkpoint")
	}
	if st.Round != ckState.Round || len(st.X) != 2 || st.X[0] != 1 {
		t.Errorf("resumed state = round %d X %v, want round %d X %v", st.Round, st.X, ckState.Round, ckState.X)
	}

	var rep struct {
		Fleet *obs.FleetAttribution `json:"fleet"`
	}
	if err := json.Unmarshal(j.Report(), &rep); err != nil {
		t.Fatalf("report: %v", err)
	}
	if rep.Fleet == nil || !rep.Fleet.Resumed || rep.Fleet.Attempt != 2 {
		t.Errorf("fleet attribution = %+v, want resumed attempt 2", rep.Fleet)
	}
}

func TestFleetDedupAcrossSubmissions(t *testing.T) {
	opt := testOptions()
	opt.StateDir = t.TempDir()
	c := mustCoordinator(t, opt)
	var runs atomic.Int64
	startWorker(t, c, serve.Options{Runner: completingRunner(&runs)})

	j1, err := c.Submit(tinySpec())
	if err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	waitState(t, j1, serve.StateDone)

	j2, err := c.Submit(tinySpec())
	if err != nil {
		t.Fatalf("Submit 2: %v", err)
	}
	waitState(t, j2, serve.StateDone)

	if got := runs.Load(); got != 1 {
		t.Errorf("worker ran %d times, want 1 (second submission served from store)", got)
	}
	if !j2.Status().Cached {
		t.Error("second submission not marked cached")
	}
	if string(j2.ResultPl()) != "pl-result\n" {
		t.Errorf("cached ResultPl = %q", j2.ResultPl())
	}
}

// TestFleetDeltaJobPassThrough pins the coordinator's delta-job
// contract: base_fingerprint travels through Submit to the worker
// unchanged, the worker resolves it against its own artifact store, and
// an unchanged netlist reproduces the base placement byte-for-byte with
// the eco annotation on the fetched report. Real runner — the eco-base
// store entry is published by the actual placement body.
func TestFleetDeltaJobPassThrough(t *testing.T) {
	c := mustCoordinator(t, testOptions())
	startWorker(t, c, serve.Options{StateDir: t.TempDir()})

	base, err := c.Submit(tinySpec())
	if err != nil {
		t.Fatalf("Submit base: %v", err)
	}
	waitState(t, base, serve.StateDone)

	fp := gen.MustGenerate(*tinySpec().Generate).Fingerprint()
	spec := tinySpec()
	spec.BaseFingerprint = hex.EncodeToString(fp[:])
	delta, err := c.Submit(spec)
	if err != nil {
		t.Fatalf("Submit delta: %v", err)
	}
	waitState(t, delta, serve.StateDone)

	if !bytes.Equal(delta.ResultPl(), base.ResultPl()) || len(base.ResultPl()) == 0 {
		t.Error("empty-diff delta .pl differs from the base placement")
	}
	var rep struct {
		Eco *obs.EcoSummary `json:"eco"`
	}
	if err := json.Unmarshal(delta.Report(), &rep); err != nil {
		t.Fatalf("delta report: %v", err)
	}
	if rep.Eco == nil {
		t.Fatal("delta report carries no eco block")
	}
	if rep.Eco.BaseFingerprint != spec.BaseFingerprint || rep.Eco.ReuseRatio != 1 ||
		rep.Eco.ChangedCells != 0 || rep.Eco.FellBack {
		t.Errorf("eco block = %+v, want full reuse of %s", rep.Eco, spec.BaseFingerprint)
	}
}

func TestFleetCancelRunningJob(t *testing.T) {
	c := mustCoordinator(t, testOptions())
	started := make(chan string, 1)
	startWorker(t, c, serve.Options{Runner: func(ctx context.Context, j *serve.Job) error {
		started <- j.ID
		<-ctx.Done()
		return ctx.Err()
	}})

	j, err := c.Submit(tinySpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	if _, err := c.Cancel(j.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	waitState(t, j, serve.StateCanceled)
	if _, done, _ := j.Events(0); !done {
		t.Error("event log not closed after cancel")
	}
}

func TestFleetWorkerFailurePermanent(t *testing.T) {
	c := mustCoordinator(t, testOptions())
	startWorker(t, c, serve.Options{Runner: func(ctx context.Context, j *serve.Job) error {
		return fmt.Errorf("placement exploded deterministically")
	}})

	j, err := c.Submit(tinySpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, j, serve.StateFailed)
	st := j.Status()
	if !strings.Contains(st.Error, "placement exploded") {
		t.Errorf("error = %q, want the worker's failure verbatim", st.Error)
	}
	if st.Attempts != 1 {
		t.Errorf("attempts = %d: a deterministic failure must not be retried", st.Attempts)
	}
}

func TestCoordinatorRejectsClientCheckpoint(t *testing.T) {
	c := mustCoordinator(t, testOptions())
	spec := tinySpec()
	spec.Checkpoint = snap.Encode(&snap.State{Design: "x", Stage: snap.StageGP})
	if _, err := c.Submit(spec); err == nil || !strings.Contains(err.Error(), "fleet-internal") {
		t.Fatalf("Submit with checkpoint: err = %v, want fleet-internal rejection", err)
	}
}

func TestFleetGracefulDeregisterRequeues(t *testing.T) {
	c := mustCoordinator(t, testOptions())
	started := make(chan string, 2)
	w1 := startWorker(t, c, serve.Options{Runner: func(ctx context.Context, j *serve.Job) error {
		started <- j.ID
		<-ctx.Done()
		return ctx.Err()
	}})
	w2 := startWorker(t, c, serve.Options{Runner: completingRunner(nil)})

	j, err := c.Submit(tinySpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	waitOwned(t, j)

	// Graceful deregistration must requeue immediately — well inside one
	// lease TTL.
	begin := time.Now()
	if err := c.Deregister(w1.ID); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	waitState(t, j, serve.StateDone)
	if took := time.Since(begin); took > c.opt.LeaseTTL {
		t.Errorf("reassignment after deregister took %v, want < lease TTL %v", took, c.opt.LeaseTTL)
	}
	if st := j.Status(); st.Worker != w2.ID {
		t.Errorf("finished on %q, want %q", st.Worker, w2.ID)
	}
}
