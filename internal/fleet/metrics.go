package fleet

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/obs/hist"
	"repro/internal/serve"
)

// fleetStats aggregates the coordinator counters /metrics exports as the
// placerd_fleet_* series.
type fleetStats struct {
	jobsDone          atomic.Int64
	jobsFailed        atomic.Int64
	jobsCanceled      atomic.Int64
	reassignments     atomic.Int64
	retriesExhausted  atomic.Int64
	workersLost       atomic.Int64
	eventsProxied     atomic.Int64
	checkpointFetches atomic.Int64
	latency           *hist.Histogram
}

func (s *fleetStats) init() {
	s.latency = hist.New(hist.LatencySeconds())
}

func (s *fleetStats) finish(state serve.State, dur time.Duration) {
	switch state {
	case serve.StateDone:
		s.jobsDone.Add(1)
	case serve.StateFailed:
		s.jobsFailed.Add(1)
	case serve.StateCanceled:
		s.jobsCanceled.Add(1)
	}
	s.latency.Observe(dur.Seconds())
}

// writeMetrics renders the coordinator's Prometheus text exposition.
func (c *Coordinator) writeMetrics(w io.Writer) {
	workers := c.Workers()
	live, lost := 0, 0
	for _, wk := range workers {
		if wk.Live {
			live++
		} else {
			lost++
		}
	}
	running := 0
	for _, j := range c.List() {
		if j.State() == serve.StateRunning {
			running++
		}
	}

	fmt.Fprintf(w, "# HELP placerd_fleet_workers Registered workers by liveness.\n")
	fmt.Fprintf(w, "# TYPE placerd_fleet_workers gauge\n")
	fmt.Fprintf(w, "placerd_fleet_workers{live=\"true\"} %d\n", live)
	fmt.Fprintf(w, "placerd_fleet_workers{live=\"false\"} %d\n", lost)
	fmt.Fprintf(w, "# HELP placerd_fleet_workers_lost_total Workers declared lost after missed heartbeats or deregistration.\n")
	fmt.Fprintf(w, "# TYPE placerd_fleet_workers_lost_total counter\n")
	fmt.Fprintf(w, "placerd_fleet_workers_lost_total %d\n", c.stats.workersLost.Load())
	fmt.Fprintf(w, "# HELP placerd_fleet_queue_depth Jobs waiting for a worker.\n")
	fmt.Fprintf(w, "# TYPE placerd_fleet_queue_depth gauge\n")
	fmt.Fprintf(w, "placerd_fleet_queue_depth %d\n", c.QueueDepth())
	fmt.Fprintf(w, "# HELP placerd_fleet_queue_capacity Submission bound (beyond it: 429).\n")
	fmt.Fprintf(w, "# TYPE placerd_fleet_queue_capacity gauge\n")
	fmt.Fprintf(w, "placerd_fleet_queue_capacity %d\n", c.QueueCap())
	fmt.Fprintf(w, "# HELP placerd_fleet_jobs_running Jobs currently leased to workers.\n")
	fmt.Fprintf(w, "# TYPE placerd_fleet_jobs_running gauge\n")
	fmt.Fprintf(w, "placerd_fleet_jobs_running %d\n", running)
	fmt.Fprintf(w, "# HELP placerd_fleet_jobs_total Fleet jobs finished, by terminal state.\n")
	fmt.Fprintf(w, "# TYPE placerd_fleet_jobs_total counter\n")
	fmt.Fprintf(w, "placerd_fleet_jobs_total{state=\"done\"} %d\n", c.stats.jobsDone.Load())
	fmt.Fprintf(w, "placerd_fleet_jobs_total{state=\"failed\"} %d\n", c.stats.jobsFailed.Load())
	fmt.Fprintf(w, "placerd_fleet_jobs_total{state=\"canceled\"} %d\n", c.stats.jobsCanceled.Load())
	fmt.Fprintf(w, "# HELP placerd_fleet_reassignments_total Jobs taken back from a worker and requeued (lease lapse, lost worker, broken stream).\n")
	fmt.Fprintf(w, "# TYPE placerd_fleet_reassignments_total counter\n")
	fmt.Fprintf(w, "placerd_fleet_reassignments_total %d\n", c.stats.reassignments.Load())
	fmt.Fprintf(w, "# HELP placerd_fleet_retries_exhausted_total Jobs failed because the retry budget ran out.\n")
	fmt.Fprintf(w, "# TYPE placerd_fleet_retries_exhausted_total counter\n")
	fmt.Fprintf(w, "placerd_fleet_retries_exhausted_total %d\n", c.stats.retriesExhausted.Load())
	fmt.Fprintf(w, "# HELP placerd_fleet_events_proxied_total Worker SSE events stitched into coordinator streams.\n")
	fmt.Fprintf(w, "# TYPE placerd_fleet_events_proxied_total counter\n")
	fmt.Fprintf(w, "placerd_fleet_events_proxied_total %d\n", c.stats.eventsProxied.Load())
	fmt.Fprintf(w, "# HELP placerd_fleet_checkpoint_fetches_total Checkpoints pulled from workers for reassignment resume.\n")
	fmt.Fprintf(w, "# TYPE placerd_fleet_checkpoint_fetches_total counter\n")
	fmt.Fprintf(w, "placerd_fleet_checkpoint_fetches_total %d\n", c.stats.checkpointFetches.Load())

	if c.store != nil {
		st := c.store.Stats()
		fmt.Fprintf(w, "# HELP placerd_fleet_store_hits_total Fleet artifact-store lookups served from cache.\n")
		fmt.Fprintf(w, "# TYPE placerd_fleet_store_hits_total counter\n")
		fmt.Fprintf(w, "placerd_fleet_store_hits_total %d\n", st.Hits)
		fmt.Fprintf(w, "# HELP placerd_fleet_store_misses_total Fleet artifact-store lookups that missed.\n")
		fmt.Fprintf(w, "# TYPE placerd_fleet_store_misses_total counter\n")
		fmt.Fprintf(w, "placerd_fleet_store_misses_total %d\n", st.Misses)
		fmt.Fprintf(w, "# HELP placerd_fleet_store_entries Entries currently cached fleet-wide.\n")
		fmt.Fprintf(w, "# TYPE placerd_fleet_store_entries gauge\n")
		fmt.Fprintf(w, "placerd_fleet_store_entries %d\n", st.Entries)
		fmt.Fprintf(w, "# HELP placerd_fleet_store_bytes Artifact bytes currently cached fleet-wide.\n")
		fmt.Fprintf(w, "# TYPE placerd_fleet_store_bytes gauge\n")
		fmt.Fprintf(w, "placerd_fleet_store_bytes %d\n", st.Bytes)
	}

	fmt.Fprintf(w, "# HELP placerd_fleet_job_duration_seconds Fleet job wall time from first assignment to terminal state.\n")
	fmt.Fprintf(w, "# TYPE placerd_fleet_job_duration_seconds histogram\n")
	c.stats.latency.WriteProm(w, "placerd_fleet_job_duration_seconds", "")
}
