package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/serve"
)

// TestFleetProcessE2E is the full fault-tolerance drill with real
// processes: build placerd, start a coordinator and two joined workers,
// submit a placement job, SIGKILL the worker that owns it mid-run, and
// assert the coordinator reassigns the job and it completes — with a
// gapless stitched SSE log and a final .pl byte-identical to an
// uninterrupted run (workers run without -state-dir, so the reassigned
// attempt is a fresh, deterministic rerun).
func TestFleetProcessE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e skipped in -short mode")
	}

	bin := filepath.Join(t.TempDir(), "placerd")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/placerd")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building placerd: %v\n%s", err, out)
	}

	// Fast fault detection: 300ms heartbeats → lost after ~900ms.
	coord := startProc(t, bin, "-coordinator", "-addr", "127.0.0.1:0",
		"-lease", "3s", "-heartbeat", "300ms")
	coordURL := "http://" + coord.waitAddr(t)

	w1 := startProc(t, bin, "-addr", "127.0.0.1:0", "-join", coordURL)
	w2 := startProc(t, bin, "-addr", "127.0.0.1:0", "-join", coordURL)
	w1URL := "http://" + w1.waitAddr(t)
	w2URL := "http://" + w2.waitAddr(t)

	// Both workers registered and live.
	waitUntil(t, 30*time.Second, "2 live workers", func() bool {
		return len(liveWorkers(t, coordURL)) == 2
	})

	// A design big enough that the kill lands mid-run with room to spare.
	spec := serve.Spec{
		Generate: &gen.Config{
			Name: "fleet-e2e", Seed: 3,
			NumStdCells: 1200, NumFixedMacros: 2, NumMovableMacros: 2,
			MacroSizeRows: 6, NumModules: 4, NumFences: 2, NumTerminals: 16,
			TargetUtil: 0.55,
		},
		Config: core.Config{DisableDP: true},
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(coordURL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, data)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}

	// Wait for the job to be running AND producing gp progress, so the
	// kill is guaranteed to land mid-placement.
	var owner string
	waitUntil(t, 60*time.Second, "job running with gp progress", func() bool {
		st := jobStatus(t, coordURL, sub.ID)
		owner = st.Worker
		return st.State == "running" && st.Events >= 4 // queued, assign, running, gp…
	})

	// Map the owning worker id to its process and SIGKILL it.
	ownerAddr := ""
	for _, w := range liveWorkers(t, coordURL) {
		if w.ID == owner {
			ownerAddr = w.Addr
		}
	}
	var victim, survivor *proc
	var survivorURL string
	switch ownerAddr {
	case w1URL:
		victim, survivor, survivorURL = w1, w2, w2URL
	case w2URL:
		victim, survivor, survivorURL = w2, w1, w1URL
	default:
		t.Fatalf("owner %s has unknown addr %q (workers %s / %s)", owner, ownerAddr, w1URL, w2URL)
	}
	t.Logf("killing owner %s (%s)", owner, ownerAddr)
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}

	// The coordinator must detect the death, reassign, and the job must
	// complete on the survivor.
	waitUntil(t, 180*time.Second, "job done after reassignment", func() bool {
		return jobStatus(t, coordURL, sub.ID).State == "done"
	})
	st := jobStatus(t, coordURL, sub.ID)
	if st.Worker == owner {
		t.Errorf("job finished on the killed worker %s", owner)
	}
	if st.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", st.Attempts)
	}
	_ = survivor

	// Stitched SSE replay: contiguous ids, two assigns, one requeue.
	sse, err := http.Get(coordURL + "/jobs/" + sub.ID + "/events?from=0")
	if err != nil {
		t.Fatal(err)
	}
	ids, types := readSSEIDs(t, sse.Body)
	sse.Body.Close()
	for i, id := range ids {
		if id != i {
			t.Fatalf("SSE ids not contiguous at %d (id %d)", i, id)
		}
	}
	var assigns, requeues int
	for _, ty := range types {
		switch ty {
		case EventAssign:
			assigns++
		case EventRequeue:
			requeues++
		}
	}
	if assigns != 2 || requeues != 1 {
		t.Errorf("stitched stream has %d assigns / %d requeues, want 2/1 (types %v)", assigns, requeues, types)
	}

	// The fleet result must be byte-identical to an uninterrupted
	// single-node run of the same spec on the survivor.
	fleetPl := getBytes(t, coordURL+"/jobs/"+sub.ID+"/result.pl")
	resp2, err := http.Post(survivorURL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("direct submit = %d: %s", resp2.StatusCode, data2)
	}
	var sub2 struct {
		ID string `json:"id"`
	}
	json.Unmarshal(data2, &sub2)
	waitUntil(t, 180*time.Second, "direct job done", func() bool {
		return jobStatus(t, survivorURL, sub2.ID).State == "done"
	})
	directPl := getBytes(t, survivorURL+"/jobs/"+sub2.ID+"/result.pl")
	if !bytes.Equal(fleetPl, directPl) {
		t.Errorf("fleet .pl (%d bytes) differs from uninterrupted run (%d bytes)", len(fleetPl), len(directPl))
	}

	// The report attributes the run to the surviving worker, attempt 2.
	var rep struct {
		Fleet struct {
			Worker  string `json:"worker"`
			Attempt int    `json:"attempt"`
		} `json:"fleet"`
	}
	if err := json.Unmarshal(getBytes(t, coordURL+"/jobs/"+sub.ID+"/report"), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Fleet.Worker != st.Worker || rep.Fleet.Attempt != 2 {
		t.Errorf("report fleet attribution = %+v, want worker %s attempt 2", rep.Fleet, st.Worker)
	}
}

// proc is one spawned placerd process with its parsed listen address.
type proc struct {
	cmd  *exec.Cmd
	name string

	mu   sync.Mutex
	addr string
	logs []string
}

var addrRe = regexp.MustCompile(`\baddr=([0-9A-Za-z.\[\]:]+:[0-9]+)`)

func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	p := &proc{cmd: exec.Command(bin, args...), name: strings.Join(args, " ")}
	stderr, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("starting placerd %s: %v", p.name, err)
	}
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.logs = append(p.logs, line)
			if p.addr == "" && strings.Contains(line, "listening") {
				if m := addrRe.FindStringSubmatch(line); m != nil {
					p.addr = m[1]
				}
			}
			p.mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		p.cmd.Process.Kill()
		p.cmd.Wait()
		if t.Failed() {
			p.mu.Lock()
			t.Logf("=== logs of placerd %s ===\n%s", p.name, strings.Join(p.logs, "\n"))
			p.mu.Unlock()
		}
	})
	return p
}

func (p *proc) waitAddr(t *testing.T) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		p.mu.Lock()
		addr := p.addr
		p.mu.Unlock()
		if addr != "" {
			return addr
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("placerd %s never logged its listen address", p.name)
	return ""
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func liveWorkers(t *testing.T, coordURL string) []WorkerStatus {
	t.Helper()
	resp, err := http.Get(coordURL + "/fleet/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var all []WorkerStatus
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	live := all[:0]
	for _, w := range all {
		if w.Live {
			live = append(live, w)
		}
	}
	return live
}

func jobStatus(t *testing.T, base, id string) Status {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s/jobs/%s = %d: %s", base, id, resp.StatusCode, body)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, data)
	}
	return data
}
