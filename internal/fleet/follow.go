package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/serve"
)

// follow runs one assignment attempt end to end: submit the job to the
// worker (with the latest checkpoint injected), proxy its SSE progress
// stream into the coordinator-side event log (renewing the lease on every
// event), poll its checkpoint while running, and on a terminal state
// fetch artifacts / requeue / fail as the outcome demands. The context is
// canceled once the scheduler takes the job away from this attempt.
func (c *Coordinator) follow(ctx context.Context, j *Job, workerID, addr string, attempt int, ck []byte) {
	wjob, err := c.submitToWorker(ctx, j, addr, ck)
	if err != nil {
		if ctx.Err() != nil {
			return // attempt already revoked; the scheduler owns the job now
		}
		if permanent, msg := isPermanentSubmitError(err); permanent {
			c.finishJob(j, serve.StateFailed, fmt.Sprintf("worker %s rejected spec: %s", workerID, msg))
			return
		}
		c.requeue(j, fmt.Sprintf("submit to worker %s failed: %v", workerID, err))
		return
	}
	j.mu.Lock()
	if j.attempts != attempt {
		j.mu.Unlock()
		go c.cancelWorkerJob(addr, wjob)
		return
	}
	j.workerJob = wjob
	cancelPending := j.canceled
	j.mu.Unlock()
	if cancelPending {
		// Cancel arrived before the worker job id was known; deliver it now.
		go c.cancelWorkerJob(addr, wjob)
	}

	pollCtx, stopPoll := context.WithCancel(ctx)
	defer stopPoll()
	go c.pollCheckpoint(pollCtx, j, addr, wjob)

	terminal, streamErr := c.streamEvents(ctx, j, workerID, addr, wjob, attempt, len(ck) > 0)
	if terminal {
		return
	}
	if ctx.Err() != nil {
		return // revoked mid-stream; nothing to decide here
	}
	c.requeue(j, fmt.Sprintf("progress stream from worker %s broke: %v", workerID, streamErr))
}

// permanentSubmitError marks a worker 400: resubmitting the same spec
// elsewhere cannot succeed, so the job fails immediately.
type permanentSubmitError struct{ msg string }

func (e *permanentSubmitError) Error() string { return e.msg }

func isPermanentSubmitError(err error) (bool, string) {
	if pe, ok := err.(*permanentSubmitError); ok {
		return true, pe.msg
	}
	return false, ""
}

// submitToWorker posts the job spec (checkpoint injected) to the worker's
// placerd API and returns the worker-side job id.
func (c *Coordinator) submitToWorker(ctx context.Context, j *Job, addr string, ck []byte) (string, error) {
	spec := j.Spec
	spec.Checkpoint = ck
	body, err := json.Marshal(spec)
	if err != nil {
		return "", &permanentSubmitError{msg: err.Error()}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.opt.Client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	switch {
	case resp.StatusCode == http.StatusAccepted:
		var st struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(data, &st); err != nil || st.ID == "" {
			return "", fmt.Errorf("bad submit response: %v", err)
		}
		return st.ID, nil
	case resp.StatusCode == http.StatusBadRequest:
		return "", &permanentSubmitError{msg: errorMessage(data, resp.StatusCode)}
	default:
		return "", fmt.Errorf("submit: %s", errorMessage(data, resp.StatusCode))
	}
}

// errorMessage extracts the JSON error body, falling back to the code.
func errorMessage(data []byte, code int) string {
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
		return eb.Error
	}
	return fmt.Sprintf("HTTP %d", code)
}

// pollCheckpoint periodically fetches the worker's journaled checkpoint
// for the job so a reassignment after worker death resumes from the last
// round the dead worker managed to persist.
func (c *Coordinator) pollCheckpoint(ctx context.Context, j *Job, addr, wjob string) {
	t := time.NewTicker(c.opt.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/jobs/"+wjob+"/checkpoint", nil)
		if err != nil {
			return
		}
		resp, err := c.opt.Client.Do(req)
		if err != nil {
			continue // transient; the lease machinery decides liveness
		}
		if resp.StatusCode == http.StatusOK {
			if data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20)); err == nil {
				j.setCheckpoint(data)
				c.stats.checkpointFetches.Add(1)
			}
		}
		resp.Body.Close()
	}
}

// streamEvents follows the worker job's SSE stream, republishing progress
// into the coordinator's stitched per-job log and renewing the lease on
// every event. Returns terminal=true when the stream delivered a terminal
// state this attempt handled (done/failed/user-cancel); false means the
// stream broke and the caller must requeue.
func (c *Coordinator) streamEvents(ctx context.Context, j *Job, workerID, addr, wjob string, attempt int, resumed bool) (terminal bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/jobs/"+wjob+"/events", nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.opt.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return false, fmt.Errorf("events: %s", errorMessage(data, resp.StatusCode))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = []byte(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		case line == "" && data != nil:
			var ev serve.Event
			payload := data
			data = nil
			if json.Unmarshal(payload, &ev) != nil {
				continue
			}
			j.renewLease(attempt, c.opt.LeaseTTL)
			c.stats.eventsProxied.Add(1)
			if done, ok := c.handleWorkerEvent(ctx, j, workerID, addr, wjob, attempt, resumed, ev); ok {
				return done, nil
			}
		}
	}
	return false, firstErr(sc.Err(), io.ErrUnexpectedEOF)
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// handleWorkerEvent routes one proxied worker event. ok=true means the
// event was terminal and fully handled (the bool result mirrors it for
// streamEvents' return).
func (c *Coordinator) handleWorkerEvent(ctx context.Context, j *Job, workerID, addr, wjob string, attempt int, resumed bool, ev serve.Event) (terminal, ok bool) {
	switch ev.Type {
	case serve.EventState:
		switch ev.State {
		case serve.StateQueued:
			// The coordinator already published its own queued event.
			return false, false
		case serve.StateRunning:
			j.publishRunning(workerID, attempt)
			return false, false
		case serve.StateDone:
			c.completeFromWorker(ctx, j, workerID, addr, wjob, attempt, resumed, ev.Cached)
			return true, true
		case serve.StateFailed:
			// A worker-reported failure is deterministic (bad placement run,
			// per-job panic): rerunning elsewhere would fail the same way.
			c.finishJob(j, serve.StateFailed, fmt.Sprintf("worker %s: %s", workerID, ev.Error))
			return true, true
		case serve.StateCanceled:
			j.mu.Lock()
			userCancel := j.canceled
			j.mu.Unlock()
			if userCancel {
				c.finishJob(j, serve.StateCanceled, "canceled")
				return true, true
			}
			// The worker canceled on its own (drain, per-job timeout racing a
			// reassignment): infrastructure trouble, not a client verdict.
			c.requeue(j, fmt.Sprintf("worker %s canceled the job (drain or local timeout)", workerID))
			return true, true
		}
		return false, false
	case serve.EventGP, serve.EventRoute:
		j.publishProxied(ev, workerID, attempt)
		return false, false
	default:
		return false, false
	}
}

// completeFromWorker finishes a done job: fetch the artifacts, stamp
// fleet attribution into the report, cache the result in the artifact
// store, and publish the terminal event.
func (c *Coordinator) completeFromWorker(ctx context.Context, j *Job, workerID, addr, wjob string, attempt int, resumed, cached bool) {
	report := c.fetchArtifact(ctx, addr+"/jobs/"+wjob+"/report")
	pl := c.fetchArtifact(ctx, addr+"/jobs/"+wjob+"/result.pl")
	trace := c.fetchArtifact(ctx, addr+"/jobs/"+wjob+"/trace")
	if report != nil {
		report = annotateReport(report, map[string]any{
			"worker":  workerID,
			"addr":    addr,
			"attempt": attempt,
			"resumed": resumed,
		})
	}
	j.mu.Lock()
	j.report, j.pl, j.trace = report, pl, trace
	storeKey := j.storeKey
	j.mu.Unlock()

	if c.store != nil && storeKey != "" && report != nil && pl != nil {
		arts := map[string][]byte{
			serve.ReportFile: report,
			serve.ResultFile: pl,
		}
		if trace != nil {
			arts[serve.TraceFile] = trace
		}
		if err := c.store.Put(storeKey, arts); err != nil {
			c.opt.Logger.Warn("artifact store put failed", "job", j.ID, "err", err)
		}
	}
	if cached {
		j.mu.Lock()
		j.cached = true
		j.mu.Unlock()
	}
	c.finishJob(j, serve.StateDone, "")
}

// fetchArtifact downloads one artifact with brief retries (the worker
// writes artifacts just before publishing the terminal event, so a 409
// here is a race worth a couple of retries — or a mock runner that simply
// produced none, which is fine: nil).
func (c *Coordinator) fetchArtifact(ctx context.Context, url string) []byte {
	for try := 0; try < 3; try++ {
		if try > 0 {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(100 * time.Millisecond):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil
		}
		resp, err := c.opt.Client.Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusOK {
			data, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
			resp.Body.Close()
			if rerr == nil {
				return data
			}
			continue
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			return nil
		}
	}
	return nil
}
