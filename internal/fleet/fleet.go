// Package fleet turns N placerd processes into one fault-tolerant
// placement service: a coordinator that owns the fleet-wide job table and
// a worker agent that registers a placerd with the coordinator and keeps
// it alive there with heartbeats.
//
// The coordinator assigns jobs to workers via expiring leases. A lease is
// renewed whenever the owning worker makes progress (every event on the
// job's proxied SSE stream) and whenever the worker's heartbeat reports
// the job as still active. A job whose lease lapses — its worker died,
// was partitioned away, or silently lost the job — is taken back and
// requeued with capped exponential backoff; after a per-job retry budget
// of reassignments is exhausted the job is marked failed. Reassigned jobs
// resume from the last checkpoint the coordinator managed to fetch from
// the previous worker (GET /jobs/{id}/checkpoint, polled while the job
// runs) and start fresh when none was journaled.
//
// The coordinator's public HTTP API is the same shape as a single
// placerd — submit/status/cancel, SSE progress, artifact download — so
// clients cannot tell a fleet from one daemon. The SSE stream is stitched
// coordinator-side: events proxied from every attempt land in one
// contiguous per-job log, so ?from= replay works across reassignments
// without gaps. Fingerprint-based dedup (internal/store) is consulted at
// the coordinator, so an identical submission short-circuits fleet-wide
// without touching a worker.
//
// The lease state machine:
//
//	queued ──assign──► running(worker w, lease t) ──terminal──► done/failed/canceled
//	  ▲                      │
//	  └──requeue(backoff)────┘  lease lapse, worker lost, stream broken
//	        │
//	        └──────► failed     retry budget exhausted
package fleet

import (
	"errors"
	"log/slog"
	"net/http"
	"time"
)

// Errors the HTTP layer maps to status codes (mirroring internal/serve).
var (
	// ErrQueueFull rejects a submission because too many jobs are already
	// waiting for a worker (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("fleet: job queue full")
	// ErrShuttingDown rejects submissions during coordinator shutdown (503).
	ErrShuttingDown = errors.New("fleet: shutting down")
	// ErrBadSpec wraps client mistakes (400).
	ErrBadSpec = errors.New("fleet: bad job spec")
	// ErrUnknownJob is returned for lookups of nonexistent job IDs (404).
	ErrUnknownJob = errors.New("fleet: unknown job")
	// ErrUnknownWorker is returned for heartbeats from workers the
	// coordinator does not know (the worker must re-register).
	ErrUnknownWorker = errors.New("fleet: unknown worker")
)

// Options configures a Coordinator. The zero value is serviceable for
// local fleets.
type Options struct {
	// QueueSize bounds the number of jobs waiting for a worker (default
	// 64). Submissions beyond it are rejected with ErrQueueFull.
	QueueSize int
	// LeaseTTL is how long an assignment stays valid without any sign of
	// life from its worker (default 15s). Every proxied progress event and
	// every heartbeat that reports the job active renews the lease.
	LeaseTTL time.Duration
	// HeartbeatEvery is the heartbeat interval advertised to workers at
	// registration (default 2s).
	HeartbeatEvery time.Duration
	// LostAfter is how long a worker may miss heartbeats before it is
	// declared lost and its jobs are requeued (default 3×HeartbeatEvery).
	LostAfter time.Duration
	// RetryBudget is the number of reassignments a job may consume before
	// it is marked failed (default 3). The first assignment is free: a job
	// runs at most 1+RetryBudget times.
	RetryBudget int
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between reassignments (defaults 500ms and 15s): the n-th requeue
	// waits min(BackoffBase·2ⁿ⁻¹, BackoffMax).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Tick is the scheduler's wake interval for lease/liveness sweeps
	// (default 250ms, floored well below LeaseTTL in tests).
	Tick time.Duration
	// AllowDir, when non-empty, permits Spec.Aux path jobs (the
	// coordinator loads designs itself to compute dedup fingerprints, so
	// it applies the same allowlist as a worker).
	AllowDir string
	// Workers is the per-job kernel worker default used for dedup-key
	// parity with the workers' own Options.Workers.
	Workers int
	// StateDir, when non-empty, opens a content-addressed artifact store
	// under StateDir/store: completed results are cached there and
	// identical submissions are answered fleet-wide without running.
	StateDir string
	// StoreMaxBytes bounds the artifact cache (0 = store.DefaultMaxBytes,
	// negative disables eviction). Ignored without StateDir.
	StoreMaxBytes int64
	// Logger receives fleet lifecycle logs (nil = discard).
	Logger *slog.Logger
	// Client issues all coordinator→worker HTTP requests (nil =
	// http.DefaultClient). Streaming requests manage their own deadlines
	// through contexts, so the client should not set a global timeout.
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.QueueSize <= 0 {
		o.QueueSize = 64
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 15 * time.Second
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 2 * time.Second
	}
	if o.LostAfter <= 0 {
		o.LostAfter = 3 * o.HeartbeatEvery
	}
	if o.RetryBudget < 0 {
		o.RetryBudget = 0
	} else if o.RetryBudget == 0 {
		o.RetryBudget = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 500 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 15 * time.Second
	}
	if o.Tick <= 0 {
		o.Tick = 250 * time.Millisecond
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	return o
}

// backoff is the capped exponential reassignment delay after `attempts`
// completed assignment attempts.
func (o Options) backoff(attempts int) time.Duration {
	d := o.BackoffBase
	for i := 1; i < attempts && d < o.BackoffMax; i++ {
		d *= 2
	}
	return min(d, o.BackoffMax)
}
