package route

// Allocation-free maze search. Each worker owns one searchState whose
// dist/prev arrays are invalidated by epoch stamping instead of O(n)
// clears, and whose binary heap is a pooled slice of plain structs (no
// container/heap interface boxing). The search itself is A* under an
// admissible Manhattan × min-edge-cost heuristic, restricted to a
// bounding-box window around the segment so reroutes stop paying
// full-grid Dijkstra.

// window is an inclusive tile rectangle bounding a maze search.
type window struct{ x0, y0, x1, y1 int }

// fullWindow covers the whole grid.
func fullWindow(g *Grid) window { return window{0, 0, g.NX - 1, g.NY - 1} }

func (w window) isFull(g *Grid) bool {
	return w.x0 == 0 && w.y0 == 0 && w.x1 == g.NX-1 && w.y1 == g.NY-1
}

// segWindow is the bounding box of a and b expanded by margin tiles,
// clamped to the grid.
func segWindow(g *Grid, a, b tile, margin int) window {
	w := window{
		x0: min(a.x, b.x) - margin, y0: min(a.y, b.y) - margin,
		x1: max(a.x, b.x) + margin, y1: max(a.y, b.y) + margin,
	}
	if w.x0 < 0 {
		w.x0 = 0
	}
	if w.y0 < 0 {
		w.y0 = 0
	}
	if w.x1 > g.NX-1 {
		w.x1 = g.NX - 1
	}
	if w.y1 > g.NY-1 {
		w.y1 = g.NY - 1
	}
	return w
}

// baseMargin is the initial search-window margin for a segment: a quarter
// of its Manhattan span plus a small constant, so short reroutes stay
// local while long ones get room to detour. The same margin defines the
// disjointness windows used for batch partitioning.
func baseMargin(a, b tile) int {
	return (abs(a.x-b.x)+abs(a.y-b.y))/4 + 4
}

// costSnapshot caches the negotiated cost of every grid edge so the inner
// relax loop is two array reads instead of re-deriving the PathFinder
// cost formula. minEdge is the smallest cached cost, the admissible unit
// of the A* heuristic; within an RRR round demand only increases after
// the snapshot is built, so minEdge never over-estimates.
type costSnapshot struct {
	h, v    []float64
	minEdge float64
}

// snapshotCosts (re)builds the cost cache from the grid's current demand,
// capacity and history state.
func (r *Router) snapshotCosts() {
	cs := &r.costs
	g := r.G
	if len(cs.h) != len(g.HCap) {
		cs.h = make([]float64, len(g.HCap))
	}
	if len(cs.v) != len(g.VCap) {
		cs.v = make([]float64, len(g.VCap))
	}
	cs.minEdge = 1
	first := true
	for i := range cs.h {
		c := r.edgeCost(g.HDem[i], g.HCap[i], g.HHist[i])
		cs.h[i] = c
		if first || c < cs.minEdge {
			cs.minEdge = c
			first = false
		}
	}
	for i := range cs.v {
		c := r.edgeCost(g.VDem[i], g.VCap[i], g.VHist[i])
		cs.v[i] = c
		if c < cs.minEdge {
			cs.minEdge = c
		}
	}
	if cs.minEdge <= 0 || first {
		cs.minEdge = 1
	}
}

// updatePathCosts refreshes the snapshot entries of every edge on path
// after its demand changed (O(len(path)), keeping per-batch snapshot
// maintenance off the O(edges) rebuild path). Rip-ups can lower an edge
// below the round's initial minimum, so minEdge follows decreases — it
// must never exceed the true minimum or the heuristic turns inadmissible.
func (r *Router) updatePathCosts(path []tile) {
	g := r.G
	cs := &r.costs
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		var c float64
		if a.y == b.y {
			e := g.HIdx(min(a.x, b.x), a.y)
			c = r.edgeCost(g.HDem[e], g.HCap[e], g.HHist[e])
			cs.h[e] = c
		} else {
			e := g.VIdx(a.x, min(a.y, b.y))
			c = r.edgeCost(g.VDem[e], g.VCap[e], g.VHist[e])
			cs.v[e] = c
		}
		if c < cs.minEdge {
			cs.minEdge = c
		}
	}
}

// heapEntry is one open-list node: prio = g + heuristic, g the exact
// distance from the source (kept so stale entries are skipped lazily).
type heapEntry struct {
	prio float64
	g    float64
	idx  int32
}

// searchHeap is a hand-rolled binary min-heap over heapEntry slices; push
// and pop never allocate once the backing array has grown.
type searchHeap []heapEntry

func (h *searchHeap) push(e heapEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].prio <= s[i].prio {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *searchHeap) pop() heapEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	s = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if rc := l + 1; rc < n && s[rc].prio < s[l].prio {
			m = rc
		}
		if s[i].prio <= s[m].prio {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// searchState is the reusable per-worker scratch of the maze search.
// dist/prev entries are valid only where stamp matches the current epoch,
// so starting a new search is one integer increment instead of an O(n)
// memset.
type searchState struct {
	dist  []float64
	prev  []int32
	stamp []uint32
	epoch uint32
	heap  searchHeap
}

func (ss *searchState) ensure(n int) {
	if len(ss.dist) < n {
		ss.dist = make([]float64, n)
		ss.prev = make([]int32, n)
		ss.stamp = make([]uint32, n)
		ss.epoch = 0
	}
	if ss.heap == nil {
		ss.heap = make(searchHeap, 0, 256)
	}
}

// begin opens a new search epoch, clearing stamps only on the (rare)
// 32-bit wraparound.
func (ss *searchState) begin() {
	ss.epoch++
	if ss.epoch == 0 {
		for i := range ss.stamp {
			ss.stamp[i] = 0
		}
		ss.epoch = 1
	}
	ss.heap = ss.heap[:0]
}

// aStar finds the minimum-cost path a→b inside win under the router's
// frozen cost snapshot, appending the result to dst (reusing its
// capacity). The caller must hold the grid and snapshot constant for the
// duration. Returns nil only if the goal is unreachable, which cannot
// happen on a rectangular window (every edge has finite cost) and is
// handled by the caller as a defensive fallback.
func (ss *searchState) aStar(r *Router, a, b tile, win window, dst []tile) []tile {
	g := r.G
	nx := g.NX
	ss.ensure(nx * g.NY)
	ss.begin()
	cs := &r.costs
	hUnit := cs.minEdge
	start := int32(a.y*nx + a.x)
	goal := int32(b.y*nx + b.x)
	ss.dist[start] = 0
	ss.prev[start] = -1
	ss.stamp[start] = ss.epoch
	ss.heap.push(heapEntry{float64(abs(a.x-b.x)+abs(a.y-b.y)) * hUnit, 0, start})
	for len(ss.heap) > 0 {
		e := ss.heap.pop()
		u := e.idx
		if e.g > ss.dist[u] {
			continue // stale open-list entry
		}
		if u == goal {
			break
		}
		ux, uy := int(u)%nx, int(u)/nx
		relax := func(v int32, vx, vy int, c float64) {
			nd := e.g + c
			if ss.stamp[v] == ss.epoch && nd >= ss.dist[v] {
				return
			}
			ss.stamp[v] = ss.epoch
			ss.dist[v] = nd
			ss.prev[v] = u
			h := float64(abs(vx-b.x)+abs(vy-b.y)) * hUnit
			ss.heap.push(heapEntry{nd + h, nd, v})
		}
		if ux+1 <= win.x1 {
			relax(u+1, ux+1, uy, cs.h[g.HIdx(ux, uy)])
		}
		if ux-1 >= win.x0 {
			relax(u-1, ux-1, uy, cs.h[g.HIdx(ux-1, uy)])
		}
		if uy+1 <= win.y1 {
			relax(u+int32(nx), ux, uy+1, cs.v[g.VIdx(ux, uy)])
		}
		if uy-1 >= win.y0 {
			relax(u-int32(nx), ux, uy-1, cs.v[g.VIdx(ux, uy-1)])
		}
	}
	if ss.stamp[goal] != ss.epoch && goal != start {
		return nil
	}
	// Reconstruct goal→start into dst, then reverse in place.
	dst = dst[:0]
	for u := goal; ; u = ss.prev[u] {
		dst = append(dst, tile{int(u) % nx, int(u) / nx})
		if u == start {
			break
		}
	}
	for i, j := 0, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// pathWouldOverflow reports whether routing one more track along path
// would push any of its edges over capacity (dem+1 > cap), under the
// grid's current (frozen-during-batch) demand.
func (r *Router) pathWouldOverflow(path []tile) bool {
	g := r.G
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		if a.y == b.y {
			e := g.HIdx(min(a.x, b.x), a.y)
			if g.HDem[e]+1 > g.HCap[e] {
				return true
			}
		} else {
			e := g.VIdx(a.x, min(a.y, b.y))
			if g.VDem[e]+1 > g.VCap[e] {
				return true
			}
		}
	}
	return false
}

// rerouteSegment computes a fresh path for s into s.path's storage. The
// search starts in the segment's base window and expands (×4 margin per
// attempt, then the full grid) while the best in-window path would still
// overflow — congestion that a wider detour could avoid.
func (r *Router) rerouteSegment(ss *searchState, s *segment) []tile {
	if s.a == s.b {
		return append(s.path[:0], s.a)
	}
	margin := baseMargin(s.a, s.b)
	for {
		win := segWindow(r.G, s.a, s.b, margin)
		path := ss.aStar(r, s.a, s.b, win, s.path[:0])
		if path == nil {
			// Defensive: cannot happen on a rectangular window. Fall back
			// to a straight L so the segment stays routed.
			return lPath(s.path[:0], s.a, s.b)
		}
		s.path = path
		if win.isFull(r.G) || !r.pathWouldOverflow(path) {
			return path
		}
		margin *= 4
	}
}

// lPath appends the horizontal-first L route a→b to dst (race-free
// fallback: no shared scratch, no cost evaluation).
func lPath(dst []tile, a, b tile) []tile {
	dst = append(dst, a)
	if b.x != a.x {
		dst = hSpan(dst, a.x, b.x, a.y)
	}
	if b.y != a.y {
		dst = vSpanSimple(dst, a.y, b.y, b.x)
	}
	return dst
}
