package route

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/db"
)

// ACEPercentiles are the contest's congestion percentiles: the Average
// Congestion of the top-x% most congested g-cell Edges is computed for
// each x in this list and the RC index averages them.
var ACEPercentiles = []float64{0.5, 1, 2, 5}

// ACE returns the average congestion ratio (demand/capacity) of the top
// pct% most congested edges, over all edges with positive capacity. The
// result is a ratio (1.0 = exactly full).
func (g *Grid) ACE(pct float64) float64 {
	ratios := g.congestionRatios()
	if len(ratios) == 0 {
		return 0
	}
	k := int(float64(len(ratios)) * pct / 100)
	if k < 1 {
		k = 1
	}
	var s float64
	for _, r := range ratios[:k] {
		s += r
	}
	return s / float64(k)
}

// ACEProfile returns the ACE value at each of the contest percentiles.
func (g *Grid) ACEProfile() []float64 {
	ratios := g.congestionRatios()
	out := make([]float64, len(ACEPercentiles))
	if len(ratios) == 0 {
		return out
	}
	for i, pct := range ACEPercentiles {
		k := int(float64(len(ratios)) * pct / 100)
		if k < 1 {
			k = 1
		}
		var s float64
		for _, r := range ratios[:k] {
			s += r
		}
		out[i] = s / float64(k)
	}
	return out
}

// congestionRatios returns demand/capacity for all capacitated edges,
// sorted descending.
func (g *Grid) congestionRatios() []float64 {
	ratios := make([]float64, 0, len(g.HDem)+len(g.VDem))
	for i := range g.HDem {
		if g.HCap[i] > 0 {
			ratios = append(ratios, g.HDem[i]/g.HCap[i])
		}
	}
	for i := range g.VDem {
		if g.VCap[i] > 0 {
			ratios = append(ratios, g.VDem[i]/g.VCap[i])
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ratios)))
	return ratios
}

// RC converts an ACE profile into the contest's Routing Congestion index:
// RC = max(100, 100 · mean(ACE values)). 100 means "fits"; every point
// above 100 is penalized in the scaled wirelength.
func RC(aceProfile []float64) float64 {
	if len(aceProfile) == 0 {
		return 100
	}
	var s float64
	for _, v := range aceProfile {
		s += v
	}
	rc := 100 * s / float64(len(aceProfile))
	if rc < 100 {
		rc = 100
	}
	return rc
}

// PenaltyFactor is the contest's sHPWL slope: 3% of HPWL per RC point
// above 100.
const PenaltyFactor = 0.03

// ScaledHPWL applies the contest scoring: sHPWL = HPWL·(1 + 0.03·(RC−100)).
func ScaledHPWL(hpwl, rc float64) float64 {
	return hpwl * (1 + PenaltyFactor*(rc-100))
}

// Metrics bundles one evaluation of a placement.
type Metrics struct {
	HPWL        float64
	ACE         []float64 // at ACEPercentiles
	RC          float64
	ScaledHPWL  float64
	Overflow    float64
	MaxCong     float64
	RoutedTiles int
}

// EvaluateDesign builds the design's routing grid, routes every net and
// returns the full contest metric set. This is the evaluator the
// experiment tables call after placement.
func EvaluateDesign(d *db.Design, opt RouterOptions) (Metrics, error) {
	return EvaluateDesignCtx(context.Background(), d, opt)
}

// EvaluateDesignCtx is EvaluateDesign honoring ctx; on cancellation the
// zero Metrics and ctx's error are returned.
func EvaluateDesignCtx(ctx context.Context, d *db.Design, opt RouterOptions) (Metrics, error) {
	g, err := NewGrid(d)
	if err != nil {
		return Metrics{}, err
	}
	r := NewRouter(g, opt)
	res, err := r.RouteDesignCtx(ctx, d)
	if err != nil {
		return Metrics{}, err
	}
	ace := g.ACEProfile()
	rc := RC(ace)
	hp := d.HPWL()
	return Metrics{
		HPWL:        hp,
		ACE:         ace,
		RC:          rc,
		ScaledHPWL:  ScaledHPWL(hp, rc),
		Overflow:    res.Overflow,
		MaxCong:     res.MaxCongestion,
		RoutedTiles: res.WirelengthTiles,
	}, nil
}

// String renders the metrics as one report line.
func (m Metrics) String() string {
	return fmt.Sprintf("HPWL %.4g  RC %.1f  sHPWL %.4g  ovfl %.0f  maxcong %.2f  tiles %d",
		m.HPWL, m.RC, m.ScaledHPWL, m.Overflow, m.MaxCong, m.RoutedTiles)
}
