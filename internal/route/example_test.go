package route_test

import (
	"fmt"

	"repro/internal/route"
)

func ExampleRC() {
	// An ACE profile of 1.20/1.10/1.05/1.00 (20% over capacity in the
	// hottest half-percent of edges) maps to the contest RC index.
	ace := []float64{1.20, 1.10, 1.05, 1.00}
	rc := route.RC(ace)
	fmt.Printf("RC %.2f\n", rc)
	fmt.Printf("sHPWL of 1000: %.1f\n", route.ScaledHPWL(1000, rc))
	// Output:
	// RC 108.75
	// sHPWL of 1000: 1262.5
}
