package route

import (
	"context"
	"math"
	"sort"
	"time"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/steiner"
)

// RouterOptions tunes the negotiated global router.
type RouterOptions struct {
	// MaxRRRIters is the number of rip-up-and-reroute rounds after the
	// initial pattern-routing pass (default 4).
	MaxRRRIters int
	// HistoryInc is added to every overflowed edge's history cost per
	// round (default 0.5).
	HistoryInc float64
	// OverflowPenalty is the cost slope per unit of overflow (default 8).
	OverflowPenalty float64
	// ZSamples is the number of intermediate bend positions tried per
	// Z-shape direction in pattern routing (default 8).
	ZSamples int
	// Workers is the rip-up-and-reroute worker count; ≤ 0 selects the
	// shared automatic policy (par.Workers: REPRO_WORKERS env override,
	// else GOMAXPROCS capped). The routed Result is byte-identical for
	// every worker count — see parallel.go for the batching contract.
	Workers int
	// Obs, when non-nil, records a span and per-round overflow trace for
	// every RouteDesign call. Nil keeps the warm reroute path free of
	// telemetry overhead (0 allocs/op, pinned by TestWarmRerouteNoAllocs)
	// and recording never changes routing results.
	Obs *obs.Recorder
	// TraceLabel names this router's trace records ("route" when empty);
	// SetTraceContext overrides it per RouteDesign call.
	TraceLabel string
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.MaxRRRIters <= 0 {
		o.MaxRRRIters = 4
	}
	if o.HistoryInc <= 0 {
		o.HistoryInc = 0.5
	}
	if o.OverflowPenalty <= 0 {
		o.OverflowPenalty = 8
	}
	if o.ZSamples <= 0 {
		o.ZSamples = 8
	}
	return o
}

// tile is a grid coordinate.
type tile struct{ x, y int }

// segment is one two-pin connection produced by net decomposition, with
// its current route as a tile path.
type segment struct {
	net  int
	a, b tile
	path []tile
}

// Router routes a design over a Grid and accumulates demand on it. All
// scratch state (segment paths, cost snapshot, per-worker search states,
// batch partitions) is retained between RouteDesign calls, so repeated
// routing of the same design — the placer's routability loop — runs
// nearly allocation-free after the first call.
type Router struct {
	G       *Grid
	opt     RouterOptions
	workers int
	segs    []segment

	// ctx is the cancellation context of the RouteDesignCtx call in
	// flight; it is polled only at batch boundaries so the committed
	// demand stays consistent (see rrrRound). Nil between calls.
	ctx context.Context

	// Telemetry (see RouterOptions.Obs and SetTraceContext). roundRerouted
	// and roundBatches are written by rrrRound for RouteDesign to record.
	obs           *obs.Recorder
	obsParent     *obs.Span
	obsLabel      string
	roundRerouted int
	roundBatches  int

	// Reusable scratch (see search.go and parallel.go).
	costs             costSnapshot
	states            []*searchState
	order             []int
	overflowed        []int
	batchSegs         [][]int
	batchOcc          []occMask
	batchPool         [][]int
	patBest, patTrial []tile
	seenTiles         map[tile]bool
	pts               []steiner.Point
	samples           []int
}

// NewRouter wraps a grid (whose demand it owns during routing).
func NewRouter(g *Grid, opt RouterOptions) *Router {
	return &Router{G: g, opt: opt.withDefaults(), workers: resolveWorkers(opt.Workers), obs: opt.Obs, obsLabel: opt.TraceLabel}
}

// SetTraceContext parents subsequent RouteDesign spans under sp (nil =
// recorder root) and labels their per-round trace records with label.
// The placer's routability loop uses it to attribute each routing call
// to its loop iteration.
func (r *Router) SetTraceContext(sp *obs.Span, label string) {
	r.obsParent = sp
	r.obsLabel = label
}

// traceLabel is the context label for trace records ("route" default).
func (r *Router) traceLabel() string {
	if r.obsLabel == "" {
		return "route"
	}
	return r.obsLabel
}

// Result summarizes one routing run.
type Result struct {
	// Segments is the number of routed two-pin segments.
	Segments int
	// WirelengthTiles is the total routed length in tile crossings.
	WirelengthTiles int
	// InitialOverflow is the overflow after the pattern-routing pass,
	// before any rip-up rounds.
	InitialOverflow float64
	// Overflow is the total demand above capacity, in tracks.
	Overflow float64
	// MaxCongestion is the worst edge utilization.
	MaxCongestion float64
	// RRRIters is the number of rip-up rounds actually run.
	RRRIters int
}

// RouteDesign decomposes every net into Steiner-tree segments over pin tiles,
// pattern-routes them, then rips up and reroutes through congestion until
// overflow clears or the round budget is exhausted. Demand is left on the
// grid for metric extraction. Reroute rounds run batch-parallel (see
// parallel.go); the result is identical for every worker count.
func (r *Router) RouteDesign(d *db.Design) Result {
	res, _ := r.RouteDesignCtx(context.Background(), d)
	return res
}

// RouteDesignCtx is RouteDesign honoring ctx: cancellation is observed
// between reroute batches (never inside one), so the grid demand the
// router leaves behind is always the consistent image of every committed
// path. On cancellation the partial Result and ctx's error are returned.
// A ctx that never cancels yields byte-identical results to RouteDesign.
func (r *Router) RouteDesignCtx(ctx context.Context, d *db.Design) (Result, error) {
	r.ctx = ctx
	defer func() { r.ctx = nil }()
	var sp *obs.Span
	var t0 time.Time
	if r.obs.Enabled() {
		sp = obs.ChildSpan(r.obsParent, r.obs, "route")
		t0 = r.obs.Now()
	}
	r.G.ResetDemand()
	r.G.ResetHistory()
	r.segs = r.segs[:0]
	for ni := range d.Nets {
		r.decompose(d, ni)
	}
	// Initial pass: short segments first so long nets negotiate around
	// the fabric the short ones already claimed.
	r.order = r.order[:0]
	for i := range r.segs {
		r.order = append(r.order, i)
	}
	order := r.order
	sort.Slice(order, func(i, j int) bool {
		si, sj := &r.segs[order[i]], &r.segs[order[j]]
		di := abs(si.a.x-si.b.x) + abs(si.a.y-si.b.y)
		dj := abs(sj.a.x-sj.b.x) + abs(sj.a.y-sj.b.y)
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	for _, si := range order {
		s := &r.segs[si]
		s.path = r.patternRouteInto(s.path[:0], s.a, s.b)
		r.commit(s.path, +1)
	}

	res := Result{Segments: len(r.segs), InitialOverflow: r.G.TotalOverflow()}
	if r.obs.Enabled() {
		now := r.obs.Now()
		r.obs.RecordRouteRound(obs.RouteRound{
			Context: r.traceLabel(), Round: 0,
			Overflow: res.InitialOverflow, Rerouted: len(r.segs),
			WallMS: wallMS(now.Sub(t0)),
		})
		t0 = now
	}
	for iter := 0; iter < r.opt.MaxRRRIters; iter++ {
		if ctx.Err() != nil || r.G.TotalOverflow() <= 0 {
			break
		}
		res.RRRIters = iter + 1
		if !r.rrrRound() {
			break
		}
		if r.obs.Enabled() {
			now := r.obs.Now()
			r.obs.RecordRouteRound(obs.RouteRound{
				Context: r.traceLabel(), Round: iter + 1,
				Overflow: r.G.TotalOverflow(), Rerouted: r.roundRerouted,
				Batches: r.roundBatches, WallMS: wallMS(now.Sub(t0)),
			})
			t0 = now
		}
	}
	for si := range r.segs {
		res.WirelengthTiles += len(r.segs[si].path) - 1
	}
	res.Overflow = r.G.TotalOverflow()
	res.MaxCongestion = r.G.MaxCongestion()
	if sp != nil {
		sp.Add("segments", int64(res.Segments))
		sp.Add("rrr_iters", int64(res.RRRIters))
		sp.Add("wirelength_tiles", int64(res.WirelengthTiles))
		sp.End()
		r.obs.Log().Debug("route design",
			"context", r.traceLabel(), "segments", res.Segments,
			"initial_overflow", res.InitialOverflow, "overflow", res.Overflow,
			"max_congestion", res.MaxCongestion, "rrr_iters", res.RRRIters)
	}
	return res, ctx.Err()
}

// wallMS converts a duration to fractional milliseconds.
func wallMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// decompose maps a net's pins to distinct tiles and adds the edges of a
// rectilinear Steiner tree over them as two-pin segments. Steiner points
// become ordinary route endpoints, so shared trunks are routed (and their
// demand counted) once instead of per pin pair.
func (r *Router) decompose(d *db.Design, ni int) {
	net := &d.Nets[ni]
	if net.Degree() < 2 {
		return
	}
	if r.seenTiles == nil {
		r.seenTiles = make(map[tile]bool, 16)
	}
	seen := r.seenTiles
	clear(seen)
	pts := r.pts[:0]
	for _, pi := range net.Pins {
		tx, ty := r.G.TileOf(d.PinPos(pi))
		tl := tile{tx, ty}
		if !seen[tl] {
			seen[tl] = true
			pts = append(pts, steiner.Point{X: tx, Y: ty})
		}
	}
	r.pts = pts
	if len(pts) < 2 {
		return
	}
	tree := steiner.Build(pts)
	for _, e := range tree.Edges {
		a := tree.Points[e.A]
		b := tree.Points[e.B]
		if a == b {
			continue
		}
		r.segs = appendSeg(r.segs, ni, tile{a.X, a.Y}, tile{b.X, b.Y})
	}
}

// appendSeg grows segs by one entry, recycling the path buffer of the
// slot it lands in when the backing array is reused across RouteDesign
// calls.
func appendSeg(segs []segment, net int, a, b tile) []segment {
	if len(segs) < cap(segs) {
		segs = segs[:len(segs)+1]
		s := &segs[len(segs)-1]
		s.net, s.a, s.b = net, a, b
		s.path = s.path[:0]
		return segs
	}
	return append(segs, segment{net: net, a: a, b: b})
}

// edgeCost is the negotiated cost of pushing one more track through an
// edge with the given demand, capacity and history.
func (r *Router) edgeCost(dem, cap, hist float64) float64 {
	c := 1 + hist
	if cap <= 0 {
		return c * (1 + r.opt.OverflowPenalty*(dem+1))
	}
	if over := dem + 1 - cap; over > 0 {
		c *= 1 + r.opt.OverflowPenalty*over/cap
	}
	return c
}

func (r *Router) hCost(x, y int) float64 {
	i := r.G.HIdx(x, y)
	return r.edgeCost(r.G.HDem[i], r.G.HCap[i], r.G.HHist[i])
}

func (r *Router) vCost(x, y int) float64 {
	i := r.G.VIdx(x, y)
	return r.edgeCost(r.G.VDem[i], r.G.VCap[i], r.G.VHist[i])
}

// pathCost sums the negotiated costs along a tile path.
func (r *Router) pathCost(path []tile) float64 {
	var c float64
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		if a.y == b.y {
			c += r.hCost(min(a.x, b.x), a.y)
		} else {
			c += r.vCost(a.x, min(a.y, b.y))
		}
	}
	return c
}

// pathOverflows reports whether any edge on the path is over capacity.
func (r *Router) pathOverflows(path []tile) bool {
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		if a.y == b.y {
			e := r.G.HIdx(min(a.x, b.x), a.y)
			if r.G.HDem[e] > r.G.HCap[e] {
				return true
			}
		} else {
			e := r.G.VIdx(a.x, min(a.y, b.y))
			if r.G.VDem[e] > r.G.VCap[e] {
				return true
			}
		}
	}
	return false
}

// commit adds (dir=+1) or removes (dir=−1) one track of demand along path.
func (r *Router) commit(path []tile, dir float64) {
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		if a.y == b.y {
			r.G.HDem[r.G.HIdx(min(a.x, b.x), a.y)] += dir
		} else {
			r.G.VDem[r.G.VIdx(a.x, min(a.y, b.y))] += dir
		}
	}
}

// bumpHistory raises history cost on every overflowed edge.
func (r *Router) bumpHistory() {
	for i := range r.G.HDem {
		if r.G.HDem[i] > r.G.HCap[i] {
			r.G.HHist[i] += r.opt.HistoryInc
		}
	}
	for i := range r.G.VDem {
		if r.G.VDem[i] > r.G.VCap[i] {
			r.G.VHist[i] += r.opt.HistoryInc
		}
	}
}

// hSpan appends the tiles of a horizontal run from (x0,y) to (x1,y)
// exclusive of the first tile.
func hSpan(path []tile, x0, x1, y int) []tile {
	step := 1
	if x1 < x0 {
		step = -1
	}
	for x := x0 + step; ; x += step {
		path = append(path, tile{x, y})
		if x == x1 {
			break
		}
	}
	return path
}

// patternRoute picks the cheapest of the L- and sampled Z-shaped routes
// between a and b under current negotiated costs. Serial-only (shared
// scratch); returns a freshly allocated path.
func (r *Router) patternRoute(a, b tile) []tile {
	return r.patternRouteInto(nil, a, b)
}

// patternRouteInto is patternRoute writing its winner into dst (reusing
// dst's capacity). Candidate paths are built in two router-owned scratch
// buffers, so the pattern pass allocates nothing after warm-up. Not safe
// for concurrent use.
func (r *Router) patternRouteInto(dst []tile, a, b tile) []tile {
	if a == b {
		return append(dst[:0], a)
	}
	best, trial := r.patBest[:0], r.patTrial[:0]
	bestCost := math.Inf(1)
	try := func(c int, vertical bool) {
		trial = buildZPath(trial[:0], a, b, c, vertical)
		if cost := r.pathCost(trial); cost < bestCost {
			bestCost = cost
			best, trial = trial, best
		}
	}
	switch {
	case a.x == b.x:
		try(a.x, true)
		// Also consider small detours one column away when congested.
		if a.x+1 < r.G.NX {
			try(a.x+1, true)
		}
		if a.x-1 >= 0 {
			try(a.x-1, true)
		}
	case a.y == b.y:
		try(a.y, false)
		if a.y+1 < r.G.NY {
			try(a.y+1, false)
		}
		if a.y-1 >= 0 {
			try(a.y-1, false)
		}
	default:
		// L shapes are the z-shape extremes, covered by the sweeps at the
		// endpoint columns/rows.
		r.samples = sampleInto(r.samples[:0], a.x, b.x, r.opt.ZSamples)
		for _, c := range r.samples {
			try(c, true)
		}
		r.samples = sampleInto(r.samples[:0], a.y, b.y, r.opt.ZSamples)
		for _, c := range r.samples {
			try(c, false)
		}
	}
	r.patBest, r.patTrial = best, trial
	return append(dst[:0], best...)
}

// sampleBetween returns up to n+2 evenly spaced integers covering [a, b]
// inclusive (order-normalized, endpoints always included).
func sampleBetween(a, b, n int) []int { return sampleInto(nil, a, b, n) }

// sampleInto is sampleBetween appending into out (reusing its capacity).
func sampleInto(out []int, a, b, n int) []int {
	if a > b {
		a, b = b, a
	}
	span := b - a
	if span <= n {
		for v := a; v <= b; v++ {
			out = append(out, v)
		}
		return out
	}
	for i := 0; i <= n+1; i++ {
		out = append(out, a+span*i/(n+1))
	}
	return out
}

// buildZPath appends to dst the Z-shaped path from a to b bending at
// column c (vertical=true: run horizontally to c, vertically to b.y,
// horizontally to b.x) or at row c (vertical=false, transposed).
func buildZPath(dst []tile, a, b tile, c int, vertical bool) []tile {
	path := append(dst, a)
	if vertical {
		if c != a.x {
			path = hSpan(path, a.x, c, a.y)
		}
		if b.y != a.y {
			path = vSpanSimple(path, a.y, b.y, c)
		}
		if b.x != c {
			path = hSpan(path, c, b.x, b.y)
		}
	} else {
		if c != a.y {
			path = vSpanSimple(path, a.y, c, a.x)
		}
		if b.x != a.x {
			path = hSpan(path, a.x, b.x, c)
		}
		if b.y != c {
			path = vSpanSimple(path, c, b.y, b.x)
		}
	}
	return path
}

// vSpanSimple appends tiles from (x, y0) to (x, y1), excluding the first.
func vSpanSimple(path []tile, y0, y1, x int) []tile {
	step := 1
	if y1 < y0 {
		step = -1
	}
	for y := y0 + step; ; y += step {
		path = append(path, tile{x, y})
		if y == y1 {
			break
		}
	}
	return path
}

// mazeRoute runs a full-grid A* search under the current negotiated edge
// costs (snapshotting them first). Serial-only; returns a fresh path.
func (r *Router) mazeRoute(a, b tile) []tile {
	r.snapshotCosts()
	path := r.state(0).aStar(r, a, b, fullWindow(r.G), nil)
	if path == nil {
		// Unreachable should not happen on a connected grid; fall back to
		// a pattern route.
		return r.patternRoute(a, b)
	}
	return path
}

// SegmentsForNet returns the routed tile paths of a net (for tests and
// visualization).
func (r *Router) SegmentsForNet(ni int) [][]tile {
	var out [][]tile
	for i := range r.segs {
		if r.segs[i].net == ni {
			out = append(out, r.segs[i].path)
		}
	}
	return out
}

// PinTileSpan is a helper for tests: the Manhattan tile distance between
// two points on the grid.
func (g *Grid) PinTileSpan(p, q geom.Point) int {
	ax, ay := g.TileOf(p)
	bx, by := g.TileOf(q)
	return abs(ax-bx) + abs(ay-by)
}
