package route

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/steiner"
)

// RouterOptions tunes the negotiated global router.
type RouterOptions struct {
	// MaxRRRIters is the number of rip-up-and-reroute rounds after the
	// initial pattern-routing pass (default 4).
	MaxRRRIters int
	// HistoryInc is added to every overflowed edge's history cost per
	// round (default 0.5).
	HistoryInc float64
	// OverflowPenalty is the cost slope per unit of overflow (default 8).
	OverflowPenalty float64
	// ZSamples is the number of intermediate bend positions tried per
	// Z-shape direction in pattern routing (default 8).
	ZSamples int
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.MaxRRRIters <= 0 {
		o.MaxRRRIters = 4
	}
	if o.HistoryInc <= 0 {
		o.HistoryInc = 0.5
	}
	if o.OverflowPenalty <= 0 {
		o.OverflowPenalty = 8
	}
	if o.ZSamples <= 0 {
		o.ZSamples = 8
	}
	return o
}

// tile is a grid coordinate.
type tile struct{ x, y int }

// segment is one two-pin connection produced by net decomposition, with
// its current route as a tile path.
type segment struct {
	net  int
	a, b tile
	path []tile
}

// Router routes a design over a Grid and accumulates demand on it.
type Router struct {
	G    *Grid
	opt  RouterOptions
	segs []segment
}

// NewRouter wraps a grid (whose demand it owns during routing).
func NewRouter(g *Grid, opt RouterOptions) *Router {
	return &Router{G: g, opt: opt.withDefaults()}
}

// Result summarizes one routing run.
type Result struct {
	// Segments is the number of routed two-pin segments.
	Segments int
	// WirelengthTiles is the total routed length in tile crossings.
	WirelengthTiles int
	// InitialOverflow is the overflow after the pattern-routing pass,
	// before any rip-up rounds.
	InitialOverflow float64
	// Overflow is the total demand above capacity, in tracks.
	Overflow float64
	// MaxCongestion is the worst edge utilization.
	MaxCongestion float64
	// RRRIters is the number of rip-up rounds actually run.
	RRRIters int
}

// RouteDesign decomposes every net into Steiner-tree segments over pin tiles,
// pattern-routes them, then rips up and reroutes through congestion until
// overflow clears or the round budget is exhausted. Demand is left on the
// grid for metric extraction.
func (r *Router) RouteDesign(d *db.Design) Result {
	r.G.ResetDemand()
	r.G.ResetHistory()
	r.segs = r.segs[:0]
	for ni := range d.Nets {
		r.decompose(d, ni)
	}
	// Initial pass: short segments first so long nets negotiate around
	// the fabric the short ones already claimed.
	order := make([]int, len(r.segs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		si, sj := &r.segs[order[i]], &r.segs[order[j]]
		di := abs(si.a.x-si.b.x) + abs(si.a.y-si.b.y)
		dj := abs(sj.a.x-sj.b.x) + abs(sj.a.y-sj.b.y)
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	for _, si := range order {
		s := &r.segs[si]
		s.path = r.patternRoute(s.a, s.b)
		r.commit(s.path, +1)
	}

	res := Result{Segments: len(r.segs), InitialOverflow: r.G.TotalOverflow()}
	for iter := 0; iter < r.opt.MaxRRRIters; iter++ {
		if r.G.TotalOverflow() <= 0 {
			break
		}
		res.RRRIters = iter + 1
		r.bumpHistory()
		for si := range r.segs {
			s := &r.segs[si]
			if !r.pathOverflows(s.path) {
				continue
			}
			r.commit(s.path, -1)
			s.path = r.mazeRoute(s.a, s.b)
			r.commit(s.path, +1)
		}
	}
	for si := range r.segs {
		res.WirelengthTiles += len(r.segs[si].path) - 1
	}
	res.Overflow = r.G.TotalOverflow()
	res.MaxCongestion = r.G.MaxCongestion()
	return res
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// decompose maps a net's pins to distinct tiles and adds the edges of a
// rectilinear Steiner tree over them as two-pin segments. Steiner points
// become ordinary route endpoints, so shared trunks are routed (and their
// demand counted) once instead of per pin pair.
func (r *Router) decompose(d *db.Design, ni int) {
	net := &d.Nets[ni]
	if net.Degree() < 2 {
		return
	}
	seen := make(map[tile]bool, net.Degree())
	var pts []steiner.Point
	for _, pi := range net.Pins {
		tx, ty := r.G.TileOf(d.PinPos(pi))
		tl := tile{tx, ty}
		if !seen[tl] {
			seen[tl] = true
			pts = append(pts, steiner.Point{X: tx, Y: ty})
		}
	}
	if len(pts) < 2 {
		return
	}
	tree := steiner.Build(pts)
	for _, e := range tree.Edges {
		a := tree.Points[e.A]
		b := tree.Points[e.B]
		if a == b {
			continue
		}
		r.segs = append(r.segs, segment{net: ni, a: tile{a.X, a.Y}, b: tile{b.X, b.Y}})
	}
}

// edgeCost is the negotiated cost of pushing one more track through an
// edge with the given demand, capacity and history.
func (r *Router) edgeCost(dem, cap, hist float64) float64 {
	c := 1 + hist
	if cap <= 0 {
		return c * (1 + r.opt.OverflowPenalty*(dem+1))
	}
	if over := dem + 1 - cap; over > 0 {
		c *= 1 + r.opt.OverflowPenalty*over/cap
	}
	return c
}

func (r *Router) hCost(x, y int) float64 {
	i := r.G.HIdx(x, y)
	return r.edgeCost(r.G.HDem[i], r.G.HCap[i], r.G.HHist[i])
}

func (r *Router) vCost(x, y int) float64 {
	i := r.G.VIdx(x, y)
	return r.edgeCost(r.G.VDem[i], r.G.VCap[i], r.G.VHist[i])
}

// pathCost sums the negotiated costs along a tile path.
func (r *Router) pathCost(path []tile) float64 {
	var c float64
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		if a.y == b.y {
			c += r.hCost(min(a.x, b.x), a.y)
		} else {
			c += r.vCost(a.x, min(a.y, b.y))
		}
	}
	return c
}

// pathOverflows reports whether any edge on the path is over capacity.
func (r *Router) pathOverflows(path []tile) bool {
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		if a.y == b.y {
			e := r.G.HIdx(min(a.x, b.x), a.y)
			if r.G.HDem[e] > r.G.HCap[e] {
				return true
			}
		} else {
			e := r.G.VIdx(a.x, min(a.y, b.y))
			if r.G.VDem[e] > r.G.VCap[e] {
				return true
			}
		}
	}
	return false
}

// commit adds (dir=+1) or removes (dir=−1) one track of demand along path.
func (r *Router) commit(path []tile, dir float64) {
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		if a.y == b.y {
			r.G.HDem[r.G.HIdx(min(a.x, b.x), a.y)] += dir
		} else {
			r.G.VDem[r.G.VIdx(a.x, min(a.y, b.y))] += dir
		}
	}
}

// bumpHistory raises history cost on every overflowed edge.
func (r *Router) bumpHistory() {
	for i := range r.G.HDem {
		if r.G.HDem[i] > r.G.HCap[i] {
			r.G.HHist[i] += r.opt.HistoryInc
		}
	}
	for i := range r.G.VDem {
		if r.G.VDem[i] > r.G.VCap[i] {
			r.G.VHist[i] += r.opt.HistoryInc
		}
	}
}

// hSpan appends the tiles of a horizontal run from (x0,y) to (x1,y)
// exclusive of the first tile.
func hSpan(path []tile, x0, x1, y int) []tile {
	step := 1
	if x1 < x0 {
		step = -1
	}
	for x := x0 + step; ; x += step {
		path = append(path, tile{x, y})
		if x == x1 {
			break
		}
	}
	return path
}

// patternRoute picks the cheapest of the L- and sampled Z-shaped routes
// between a and b under current negotiated costs.
func (r *Router) patternRoute(a, b tile) []tile {
	if a == b {
		return []tile{a}
	}
	var best []tile
	bestCost := math.Inf(1)
	try := func(path []tile) {
		if c := r.pathCost(path); c < bestCost {
			bestCost = c
			best = path
		}
	}
	if a.x == b.x {
		try(buildZPath(a, b, a.x, true))
		// Also consider small detours one column away when congested.
		if a.x+1 < r.G.NX {
			try(buildZPath(a, b, a.x+1, true))
		}
		if a.x-1 >= 0 {
			try(buildZPath(a, b, a.x-1, true))
		}
		return best
	}
	if a.y == b.y {
		try(buildZPath(a, b, a.y, false))
		if a.y+1 < r.G.NY {
			try(buildZPath(a, b, a.y+1, false))
		}
		if a.y-1 >= 0 {
			try(buildZPath(a, b, a.y-1, false))
		}
		return best
	}
	// L shapes: bend at (b.x, a.y) or (a.x, b.y) — these are the z-shape
	// extremes, covered by the sweeps below at k = 0 and k = n.
	// Vertical-bend Z: horizontal at y=a.y to column c, vertical to b.y,
	// horizontal to b.x.
	cols := sampleBetween(a.x, b.x, r.opt.ZSamples)
	for _, c := range cols {
		try(buildZPath(a, b, c, true))
	}
	rows := sampleBetween(a.y, b.y, r.opt.ZSamples)
	for _, c := range rows {
		try(buildZPath(a, b, c, false))
	}
	return best
}

// sampleBetween returns up to n+2 evenly spaced integers covering [a, b]
// inclusive (order-normalized, endpoints always included).
func sampleBetween(a, b, n int) []int {
	if a > b {
		a, b = b, a
	}
	span := b - a
	if span <= n {
		out := make([]int, 0, span+1)
		for v := a; v <= b; v++ {
			out = append(out, v)
		}
		return out
	}
	out := make([]int, 0, n+2)
	for i := 0; i <= n+1; i++ {
		out = append(out, a+span*i/(n+1))
	}
	return out
}

// buildZPath builds the Z-shaped path from a to b bending at column c
// (vertical=true: run horizontally to c, vertically to b.y, horizontally
// to b.x) or at row c (vertical=false, transposed).
func buildZPath(a, b tile, c int, vertical bool) []tile {
	path := []tile{a}
	if vertical {
		if c != a.x {
			path = hSpan(path, a.x, c, a.y)
		}
		if b.y != a.y {
			path = vSpanSimple(path, a.y, b.y, c)
		}
		if b.x != c {
			path = hSpan(path, c, b.x, b.y)
		}
	} else {
		if c != a.y {
			path = vSpanSimple(path, a.y, c, a.x)
		}
		if b.x != a.x {
			path = hSpan(path, a.x, b.x, c)
		}
		if b.y != c {
			path = vSpanSimple(path, c, b.y, b.x)
		}
	}
	return path
}

// vSpanSimple appends tiles from (x, y0) to (x, y1), excluding the first.
func vSpanSimple(path []tile, y0, y1, x int) []tile {
	step := 1
	if y1 < y0 {
		step = -1
	}
	for y := y0 + step; ; y += step {
		path = append(path, tile{x, y})
		if y == y1 {
			break
		}
	}
	return path
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	tile tile
	cost float64
}

type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].cost < p[j].cost }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any          { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }

// mazeRoute runs Dijkstra over the tile graph under negotiated edge costs.
func (r *Router) mazeRoute(a, b tile) []tile {
	nx, ny := r.G.NX, r.G.NY
	n := nx * ny
	dist := make([]float64, n)
	prev := make([]int32, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	id := func(t tile) int { return t.y*nx + t.x }
	start, goal := id(a), id(b)
	dist[start] = 0
	q := &pq{{a, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := id(it.tile)
		if done[u] {
			continue
		}
		done[u] = true
		if u == goal {
			break
		}
		t := it.tile
		relax := func(v tile, c float64) {
			vi := id(v)
			if nd := dist[u] + c; nd < dist[vi] {
				dist[vi] = nd
				prev[vi] = int32(u)
				heap.Push(q, pqItem{v, nd})
			}
		}
		if t.x+1 < nx {
			relax(tile{t.x + 1, t.y}, r.hCost(t.x, t.y))
		}
		if t.x-1 >= 0 {
			relax(tile{t.x - 1, t.y}, r.hCost(t.x-1, t.y))
		}
		if t.y+1 < ny {
			relax(tile{t.x, t.y + 1}, r.vCost(t.x, t.y))
		}
		if t.y-1 >= 0 {
			relax(tile{t.x, t.y - 1}, r.vCost(t.x, t.y-1))
		}
	}
	// Reconstruct.
	if prev[goal] == -1 && goal != start {
		// Unreachable should not happen on a connected grid; fall back to
		// a pattern route.
		return r.patternRoute(a, b)
	}
	var rev []tile
	for u := goal; u != -1; {
		rev = append(rev, tile{u % nx, u / nx})
		if u == start {
			break
		}
		u = int(prev[u])
	}
	path := make([]tile, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return path
}

// SegmentsForNet returns the routed tile paths of a net (for tests and
// visualization).
func (r *Router) SegmentsForNet(ni int) [][]tile {
	var out [][]tile
	for i := range r.segs {
		if r.segs[i].net == ni {
			out = append(out, r.segs[i].path)
		}
	}
	return out
}

// PinTileSpan is a helper for tests: the Manhattan tile distance between
// two points on the grid.
func (g *Grid) PinTileSpan(p, q geom.Point) int {
	ax, ay := g.TileOf(p)
	bx, by := g.TileOf(q)
	return abs(ax-bx) + abs(ay-by)
}
