package route

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/geom"
)

// routedState captures everything the router left behind: the Result and
// the full per-edge demand maps (byte-identical comparison).
type routedState struct {
	res  Result
	hdem []float64
	vdem []float64
}

func routeWithWorkers(t *testing.T, cfg gen.Config, workers int) routedState {
	t.Helper()
	d := gen.MustGenerate(cfg)
	for i, ci := range d.Movable() {
		c := &d.Cells[ci]
		c.SetCenter(geom.Point{
			X: d.Die.Lo.X + float64((i*37)%97)/97*d.Die.W(),
			Y: d.Die.Lo.Y + float64((i*61)%89)/89*d.Die.H(),
		})
	}
	g, err := NewGrid(d)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, RouterOptions{Workers: workers, MaxRRRIters: 6})
	res := r.RouteDesign(d)
	return routedState{
		res:  res,
		hdem: append([]float64(nil), g.HDem...),
		vdem: append([]float64(nil), g.VDem...),
	}
}

// TestRouterDeterministicAcrossWorkers is the reproducibility contract of
// the batch-parallel router: the Result and the complete routed demand
// maps must be byte-identical for worker counts 1, 2 and 8.
func TestRouterDeterministicAcrossWorkers(t *testing.T) {
	suites := []gen.Config{
		{Name: "det-a", Seed: 9, NumStdCells: 300, NumFixedMacros: 2,
			NumMovableMacros: 1, NumModules: 2, NumFences: 1, NumTerminals: 8,
			TargetUtil: 0.6},
		gen.Congested(400, 3),
	}
	for _, cfg := range suites {
		ref := routeWithWorkers(t, cfg, 1)
		if ref.res.Segments == 0 {
			t.Fatalf("%s: nothing routed", cfg.Name)
		}
		for _, w := range []int{2, 8} {
			got := routeWithWorkers(t, cfg, w)
			if got.res != ref.res {
				t.Errorf("%s: Result differs at %d workers:\n  1: %+v\n  %d: %+v",
					cfg.Name, w, ref.res, w, got.res)
			}
			for i := range ref.hdem {
				if got.hdem[i] != ref.hdem[i] {
					t.Fatalf("%s: H demand differs at edge %d with %d workers: %v vs %v",
						cfg.Name, i, w, got.hdem[i], ref.hdem[i])
				}
			}
			for i := range ref.vdem {
				if got.vdem[i] != ref.vdem[i] {
					t.Fatalf("%s: V demand differs at edge %d with %d workers: %v vs %v",
						cfg.Name, i, w, got.vdem[i], ref.vdem[i])
				}
			}
		}
	}
}

// TestRouterRepeatedRunsIdentical guards the scratch-reuse paths: routing
// the same design twice through one Router (the routability loop's usage
// pattern) must reproduce the first run exactly.
func TestRouterRepeatedRunsIdentical(t *testing.T) {
	d := gen.MustGenerate(gen.Congested(400, 7))
	g, err := NewGrid(d)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, RouterOptions{Workers: 2})
	first := r.RouteDesign(d)
	hd := append([]float64(nil), g.HDem...)
	second := r.RouteDesign(d)
	if first != second {
		t.Errorf("repeated RouteDesign differs: %+v vs %+v", first, second)
	}
	for i := range hd {
		if g.HDem[i] != hd[i] {
			t.Fatalf("repeated run demand differs at edge %d", i)
		}
	}
}

// TestSearchWindow exercises window clamping and the epoch-stamped state
// across many searches (including an epoch wraparound).
func TestSearchWindow(t *testing.T) {
	g := uniform(16, 12, 4)
	if w := segWindow(g, tile{1, 1}, tile{2, 2}, 100); !w.isFull(g) {
		t.Errorf("oversized margin must clamp to the full grid: %+v", w)
	}
	w := segWindow(g, tile{5, 5}, tile{7, 6}, 2)
	if w.x0 != 3 || w.y0 != 3 || w.x1 != 9 || w.y1 != 8 {
		t.Errorf("window = %+v", w)
	}
	r := NewRouter(g, RouterOptions{})
	r.snapshotCosts()
	ss := r.state(0)
	ss.ensure(g.NX * g.NY)
	ss.epoch = math.MaxUint32 - 2 // force a wraparound within the loop
	for i := 0; i < 8; i++ {
		p := ss.aStar(r, tile{1, 1}, tile{14, 10}, fullWindow(g), nil)
		if len(p) != 1+13+9 {
			t.Fatalf("iter %d: shortest path length %d, want 23", i, len(p))
		}
	}
}

// TestWindowedSearchStaysInWindow: with uniform costs the path must not
// leave the bounding window even when a wider detour exists.
func TestWindowedSearchStaysInWindow(t *testing.T) {
	g := uniform(20, 20, 4)
	r := NewRouter(g, RouterOptions{})
	r.snapshotCosts()
	win := segWindow(g, tile{5, 10}, tile{15, 10}, 2)
	p := r.state(0).aStar(r, tile{5, 10}, tile{15, 10}, win, nil)
	for _, tl := range p {
		if tl.x < win.x0 || tl.x > win.x1 || tl.y < win.y0 || tl.y > win.y1 {
			t.Fatalf("path left the window: %v outside %+v", tl, win)
		}
	}
}

// TestPartitionDisjoint checks the batching invariant: within one batch no
// two segments' base windows overlap, and every overflowed segment lands
// in exactly one batch.
func TestPartitionDisjoint(t *testing.T) {
	g := uniform(40, 40, 1)
	r := NewRouter(g, RouterOptions{})
	// A scatter of short segments, some clustered (must split into
	// batches), some far apart (may share one).
	ends := [][4]int{
		{2, 2, 6, 2}, {3, 3, 7, 3}, {30, 30, 34, 30}, {2, 30, 6, 30},
		{30, 2, 34, 2}, {18, 18, 22, 18}, {19, 19, 23, 19},
	}
	for i, e := range ends {
		r.segs = appendSeg(r.segs, i, tile{e[0], e[1]}, tile{e[2], e[3]})
	}
	idxs := make([]int, len(r.segs))
	for i := range idxs {
		idxs[i] = i
	}
	batches := r.partition(idxs)
	seen := make(map[int]bool)
	total := 0
	for _, b := range batches {
		for i, si := range b {
			if seen[si] {
				t.Fatalf("segment %d in two batches", si)
			}
			seen[si] = true
			total++
			wi := segWindow(g, r.segs[si].a, r.segs[si].b, baseMargin(r.segs[si].a, r.segs[si].b))
			for _, sj := range b[:i] {
				wj := segWindow(g, r.segs[sj].a, r.segs[sj].b, baseMargin(r.segs[sj].a, r.segs[sj].b))
				if wi.x0 <= wj.x1 && wj.x0 <= wi.x1 && wi.y0 <= wj.y1 && wj.y0 <= wi.y1 {
					t.Errorf("batch holds overlapping windows %+v and %+v", wi, wj)
				}
			}
		}
	}
	if total != len(r.segs) {
		t.Errorf("%d of %d segments batched", total, len(r.segs))
	}
	if len(batches) < 2 {
		t.Errorf("clustered segments should force ≥ 2 batches, got %d", len(batches))
	}
	r.reclaimBatches()
}

// TestHeapOrdering pushes a shuffled sequence and pops it back sorted.
func TestHeapOrdering(t *testing.T) {
	var h searchHeap
	vals := []float64{5, 1, 4, 1.5, 9, 0.25, 7, 3, 2}
	for i, v := range vals {
		h.push(heapEntry{prio: v, g: v, idx: int32(i)})
	}
	prev := math.Inf(-1)
	for len(h) > 0 {
		e := h.pop()
		if e.prio < prev {
			t.Fatalf("heap popped %v after %v", e.prio, prev)
		}
		prev = e.prio
	}
}
