package route

import (
	"math"

	"repro/internal/db"
	"repro/internal/geom"
)

// EstimateRUDY fills the grid's demands with the RUDY probabilistic
// congestion estimate: each net smears one horizontal track over its
// bounding box per unit of box height (so a net of width w contributes
// w/TileW tracks to each fully covered horizontal edge, weighted by
// vertical coverage) and symmetrically for vertical demand. Degenerate
// boxes get a one-tile extent so short nets still register.
//
// The estimate is the placer's inner-loop congestion signal: O(#nets)
// with small constants, no routing.
func (g *Grid) EstimateRUDY(d *db.Design) {
	g.ResetDemand()
	for ni := range d.Nets {
		if d.Nets[ni].Degree() < 2 {
			continue
		}
		bb := d.NetBBox(ni)
		w := d.Nets[ni].Weight
		if w == 0 {
			w = 1
		}
		g.addRUDYBox(bb, w)
	}
}

// addRUDYBox adds one net bounding box's probabilistic demand.
func (g *Grid) addRUDYBox(bb geom.Rect, weight float64) {
	// Widen degenerate boxes to one tile so pure-horizontal nets still
	// demand vertical capacity for their pin access and vice versa.
	if bb.W() < g.TileW {
		c := (bb.Lo.X + bb.Hi.X) / 2
		bb.Lo.X, bb.Hi.X = c-g.TileW/2, c+g.TileW/2
	}
	if bb.H() < g.TileH {
		c := (bb.Lo.Y + bb.Hi.Y) / 2
		bb.Lo.Y, bb.Hi.Y = c-g.TileH/2, c+g.TileH/2
	}
	// A net spanning the box is expected to use ~1 horizontal track over
	// its width at some y in the box: per horizontal edge the expected
	// demand is (edge span covered) / (box height in tiles).
	hTracks := weight / math.Max(1, bb.H()/g.TileH)
	vTracks := weight / math.Max(1, bb.W()/g.TileW)

	tx0, ty0 := g.TileOf(bb.Lo)
	tx1, ty1 := g.TileOf(geom.Point{X: bb.Hi.X - 1e-9, Y: bb.Hi.Y - 1e-9})
	for ty := ty0; ty <= ty1; ty++ {
		// Vertical coverage fraction of this tile row by the box.
		tileY := geom.Interval{Lo: g.Origin.Y + float64(ty)*g.TileH, Hi: g.Origin.Y + float64(ty+1)*g.TileH}
		fy := tileY.Overlap(bb.YInterval()) / g.TileH
		for tx := tx0; tx < tx1; tx++ {
			// Horizontal edge (tx,ty)-(tx+1,ty) lies inside the box span.
			g.HDem[g.HIdx(tx, ty)] += hTracks * fy
		}
	}
	for tx := tx0; tx <= tx1; tx++ {
		tileX := geom.Interval{Lo: g.Origin.X + float64(tx)*g.TileW, Hi: g.Origin.X + float64(tx+1)*g.TileW}
		fx := tileX.Overlap(bb.XInterval()) / g.TileW
		for ty := ty0; ty < ty1; ty++ {
			g.VDem[g.VIdx(tx, ty)] += vTracks * fx
		}
	}
}

// EstimatePins adds local pin-access demand: tiles crowded with pins need
// extra tracks to escape them. Each pin adds `perPin` tracks of demand to
// the edges of its tile, split between directions.
func (g *Grid) EstimatePins(d *db.Design, perPin float64) {
	for pi := range d.Pins {
		p := d.PinPos(pi)
		tx, ty := g.TileOf(p)
		if tx < g.NX-1 {
			g.HDem[g.HIdx(tx, ty)] += perPin / 2
		}
		if tx > 0 {
			g.HDem[g.HIdx(tx-1, ty)] += perPin / 2
		}
		if ty < g.NY-1 {
			g.VDem[g.VIdx(tx, ty)] += perPin / 2
		}
		if ty > 0 {
			g.VDem[g.VIdx(tx, ty-1)] += perPin / 2
		}
	}
}
