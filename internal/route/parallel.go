package route

// Batch-parallel rip-up-and-reroute. Each RRR round collects the
// overflowed segments in deterministic (index) order, rips them all up,
// and partitions them into spatially disjoint batches: two segments share
// a batch only if their expanded search windows do not overlap (tested on
// a coarse occupancy bitmap, so false positives cost parallelism, never
// correctness). Segments within a batch are routed concurrently against a
// frozen cost snapshot — no worker observes another's route — and their
// demand is committed in segment-index order between batches. The routed
// Result is therefore byte-identical for any worker count: worker
// scheduling decides only who computes each (pure) search, never what is
// searched or in which order effects land.

import (
	"sync"
	"sync/atomic"

	"repro/internal/par"
)

// coarseDim is the side of the occupancy bitmap used for window-overlap
// tests during batch partitioning: the grid is collapsed onto a
// coarseDim×coarseDim bit grid (coarseWords 64-bit words per batch).
const coarseDim = 32

const coarseWords = coarseDim * coarseDim / 64

// maxBatchScan bounds how many existing batches a segment probes before
// opening a new one, keeping partitioning near-linear under adversarial
// overlap patterns.
const maxBatchScan = 32

type occMask [coarseWords]uint64

func (m *occMask) overlaps(o *occMask) bool {
	for i := range m {
		if m[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

func (m *occMask) or(o *occMask) {
	for i := range m {
		m[i] |= o[i]
	}
}

// windowMask rasterizes a window onto the coarse occupancy grid.
func (r *Router) windowMask(w window) occMask {
	g := r.G
	cw := (g.NX + coarseDim - 1) / coarseDim
	ch := (g.NY + coarseDim - 1) / coarseDim
	var m occMask
	for cy := w.y0 / ch; cy <= w.y1/ch; cy++ {
		for cx := w.x0 / cw; cx <= w.x1/cw; cx++ {
			bit := cy*coarseDim + cx
			m[bit/64] |= 1 << (bit % 64)
		}
	}
	return m
}

// collectOverflowed appends to buf the indices of segments whose current
// path crosses an over-capacity edge, in segment order.
func (r *Router) collectOverflowed(buf []int) []int {
	buf = buf[:0]
	for si := range r.segs {
		if r.pathOverflows(r.segs[si].path) {
			buf = append(buf, si)
		}
	}
	return buf
}

// partition splits the overflowed segment indices into batches of
// segments with pairwise-disjoint base search windows. Iteration order
// and the greedy first-fit rule are fixed, so the partition depends only
// on the segment set — not on worker count or scheduling.
func (r *Router) partition(idxs []int) [][]int {
	r.batchSegs = r.batchSegs[:0]
	r.batchOcc = r.batchOcc[:0]
	for _, si := range idxs {
		s := &r.segs[si]
		m := r.windowMask(segWindow(r.G, s.a, s.b, baseMargin(s.a, s.b)))
		placed := false
		scan := len(r.batchSegs)
		if scan > maxBatchScan {
			scan = maxBatchScan
		}
		for bi := 0; bi < scan; bi++ {
			if !r.batchOcc[bi].overlaps(&m) {
				r.batchOcc[bi].or(&m)
				r.batchSegs[bi] = append(r.batchSegs[bi], si)
				placed = true
				break
			}
		}
		if !placed {
			r.batchSegs = append(r.batchSegs, append(r.scratchBatch(), si))
			r.batchOcc = append(r.batchOcc, m)
		}
	}
	return r.batchSegs
}

// scratchBatch recycles batch index slices across rounds and RouteDesign
// calls.
func (r *Router) scratchBatch() []int {
	if n := len(r.batchPool); n > 0 {
		b := r.batchPool[n-1][:0]
		r.batchPool = r.batchPool[:n-1]
		return b
	}
	return make([]int, 0, 8)
}

// reclaimBatches returns all batch slices to the pool.
func (r *Router) reclaimBatches() {
	r.batchPool = append(r.batchPool, r.batchSegs...)
	r.batchSegs = r.batchSegs[:0]
	r.batchOcc = r.batchOcc[:0]
}

// state returns worker k's reusable searchState, growing the pool on
// demand.
func (r *Router) state(k int) *searchState {
	for len(r.states) <= k {
		r.states = append(r.states, &searchState{})
	}
	return r.states[k]
}

// routeBatch reroutes every segment in idxs against the frozen grid and
// cost snapshot. With more than one worker the segments are pulled off a
// shared atomic cursor; every search is a pure function of the frozen
// state, so the work assignment cannot influence any path.
func (r *Router) routeBatch(idxs []int) {
	w := r.workers
	if w > len(idxs) {
		w = len(idxs)
	}
	if w <= 1 {
		ss := r.state(0)
		for _, si := range idxs {
			s := &r.segs[si]
			s.path = r.rerouteSegment(ss, s)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			ss := r.state(k)
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(idxs) {
					return
				}
				s := &r.segs[idxs[i]]
				s.path = r.rerouteSegment(ss, s)
			}
		}(k)
	}
	wg.Wait()
}

// rrrRound runs one negotiated rip-up-and-reroute round. It returns false
// when no segment overflowed (nothing to do). Rip-up is per batch, so a
// segment negotiates against the still-committed demand of every
// overflowed segment in later batches — the same visibility the serial
// one-at-a-time loop had, except among batch members, whose disjoint
// windows keep them from competing for the same edges anyway.
func (r *Router) rrrRound() bool {
	r.bumpHistory()
	r.overflowed = r.collectOverflowed(r.overflowed)
	if len(r.overflowed) == 0 {
		return false
	}
	r.snapshotCosts()
	batches := r.partition(r.overflowed)
	r.roundRerouted = len(r.overflowed)
	r.roundBatches = len(batches)
	for _, batch := range batches {
		// Cancellation is observed only here, between batches: every path
		// is either fully committed or untouched, so a canceled routing
		// call still leaves the grid demand consistent.
		if r.ctx != nil && r.ctx.Err() != nil {
			break
		}
		for _, si := range batch {
			r.commit(r.segs[si].path, -1)
			r.updatePathCosts(r.segs[si].path)
		}
		r.routeBatch(batch)
		// Deterministic commit: demand (and the incremental snapshot
		// refresh) lands in segment-index order regardless of which worker
		// routed what.
		for _, si := range batch {
			r.commit(r.segs[si].path, +1)
			r.updatePathCosts(r.segs[si].path)
		}
	}
	r.reclaimBatches()
	return true
}

// Workers reports the resolved worker count the router routes with.
func (r *Router) Workers() int { return r.workers }

// resolveWorkers applies the shared policy (internal/par) to the option.
func resolveWorkers(n int) int { return par.Workers(n) }
