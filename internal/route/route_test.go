package route

import (
	"math"
	"testing"

	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/geom"
)

func uniform(nx, ny int, cap float64) *Grid {
	return NewUniformGrid(geom.NewRect(0, 0, float64(nx*10), float64(ny*10)), nx, ny, cap, cap)
}

func TestGridIndexing(t *testing.T) {
	g := uniform(4, 3, 10)
	if len(g.HCap) != 3*3 || len(g.VCap) != 4*2 {
		t.Fatalf("edge counts: H=%d V=%d", len(g.HCap), len(g.VCap))
	}
	if tx, ty := g.TileOf(geom.Point{X: 5, Y: 5}); tx != 0 || ty != 0 {
		t.Errorf("TileOf(5,5) = %d,%d", tx, ty)
	}
	if tx, ty := g.TileOf(geom.Point{X: 39.9, Y: 29.9}); tx != 3 || ty != 2 {
		t.Errorf("TileOf(39.9,29.9) = %d,%d", tx, ty)
	}
	// Out-of-range points clamp.
	if tx, ty := g.TileOf(geom.Point{X: -5, Y: 500}); tx != 0 || ty != 2 {
		t.Errorf("clamped TileOf = %d,%d", tx, ty)
	}
	if r := g.TileRect(1, 1); r != geom.NewRect(10, 10, 20, 20) {
		t.Errorf("TileRect = %v", r)
	}
}

func TestGridFromRouteInfo(t *testing.T) {
	b := db.NewBuilder("g", geom.NewRect(0, 0, 100, 100))
	fm := b.AddMacro("m", 30, 30, true)
	b.SetRoute(&db.RouteInfo{
		GridX: 10, GridY: 10, Layers: 2,
		HorizCap: []float64{20, 0}, VertCap: []float64{0, 20},
		MinWidth: []float64{1, 1}, MinSpacing: []float64{1, 1}, ViaSpacing: []float64{0, 0},
		TileW: 10, TileH: 10,
		BlockagePorosity: 0,
		Blockages:        []db.RouteBlockage{{Cell: fm, Layers: []int{0, 1}}},
	})
	d := b.MustDesign()
	d.Cells[fm].Pos = geom.Point{X: 40, Y: 40}
	g, err := NewGrid(d)
	if err != nil {
		t.Fatal(err)
	}
	// An edge far from the macro has full capacity.
	if got := g.HCap[g.HIdx(0, 0)]; got != 20 {
		t.Errorf("clear edge capacity = %v", got)
	}
	// Edges fully under the macro (tiles 4..6, rows 4..6) lose capacity.
	under := g.HCap[g.HIdx(4, 5)]
	if under > 1 {
		t.Errorf("blocked edge capacity = %v, want ~0", under)
	}
}

func TestBlockagePorosityKeepsSomeCapacity(t *testing.T) {
	b := db.NewBuilder("g", geom.NewRect(0, 0, 100, 100))
	fm := b.AddMacro("m", 30, 30, true)
	b.SetRoute(&db.RouteInfo{
		GridX: 10, GridY: 10, Layers: 1,
		HorizCap: []float64{20}, VertCap: []float64{20},
		MinWidth: []float64{1}, MinSpacing: []float64{1}, ViaSpacing: []float64{0},
		TileW: 10, TileH: 10,
		BlockagePorosity: 0.5,
		Blockages:        []db.RouteBlockage{{Cell: fm, Layers: []int{0}}},
	})
	d := b.MustDesign()
	d.Cells[fm].Pos = geom.Point{X: 40, Y: 40}
	g, err := NewGrid(d)
	if err != nil {
		t.Fatal(err)
	}
	under := g.HCap[g.HIdx(4, 5)]
	if under < 9 {
		t.Errorf("porous blockage should keep ≥ half capacity, got %v", under)
	}
}

func TestRUDYBasics(t *testing.T) {
	b := db.NewBuilder("r", geom.NewRect(0, 0, 100, 100))
	a := b.AddStdCell("a", 2, 2)
	c := b.AddStdCell("b", 2, 2)
	b.AddNet("n", 1, b.CenterConn(a), b.CenterConn(c))
	d := b.MustDesign()
	d.Cells[a].Pos = geom.Point{X: 9, Y: 49}  // center (10,50)
	d.Cells[c].Pos = geom.Point{X: 89, Y: 49} // center (90,50)
	g := uniform(10, 10, 10)
	g.EstimateRUDY(d)
	// The net spans tiles 1..9 horizontally in row 5 (after widening to
	// one tile height): edges between them should carry demand.
	mid := g.HDem[g.HIdx(4, 5)]
	if mid <= 0 {
		t.Errorf("no demand on spanned edge")
	}
	// Demand far away must be zero.
	if g.HDem[g.HIdx(4, 0)] != 0 {
		t.Errorf("spurious demand far from net")
	}
	// Total horizontal demand ≈ tiles spanned × ~1 track.
	var tot float64
	for _, v := range g.HDem {
		tot += v
	}
	if tot < 4 || tot > 12 {
		t.Errorf("total H demand %v outside plausible range", tot)
	}
}

func TestRUDYWeightScales(t *testing.T) {
	b := db.NewBuilder("r", geom.NewRect(0, 0, 100, 100))
	a := b.AddStdCell("a", 2, 2)
	c := b.AddStdCell("b", 2, 2)
	b.AddNet("n", 3, b.CenterConn(a), b.CenterConn(c))
	d := b.MustDesign()
	d.Cells[a].Pos = geom.Point{X: 9, Y: 49}
	d.Cells[c].Pos = geom.Point{X: 89, Y: 49}
	g := uniform(10, 10, 10)
	g.EstimateRUDY(d)
	w3 := g.HDem[g.HIdx(4, 5)]
	d.Nets[0].Weight = 1
	g.EstimateRUDY(d)
	w1 := g.HDem[g.HIdx(4, 5)]
	if math.Abs(w3-3*w1) > 1e-9 {
		t.Errorf("weight scaling wrong: w3=%v w1=%v", w3, w1)
	}
}

func TestPatternRouteLShape(t *testing.T) {
	g := uniform(10, 10, 10)
	r := NewRouter(g, RouterOptions{})
	path := r.patternRoute(tile{1, 1}, tile{5, 4})
	if len(path) != 1+4+3 {
		t.Fatalf("path length %d, want 8 tiles", len(path))
	}
	if path[0] != (tile{1, 1}) || path[len(path)-1] != (tile{5, 4}) {
		t.Fatalf("endpoints wrong: %v", path)
	}
	// Path must be connected: every hop 4-adjacent.
	for i := 0; i+1 < len(path); i++ {
		dx := abs(path[i].x-path[i+1].x) + abs(path[i].y-path[i+1].y)
		if dx != 1 {
			t.Fatalf("path not connected at %d: %v -> %v", i, path[i], path[i+1])
		}
	}
}

func TestPatternRouteAvoidsCongestion(t *testing.T) {
	g := uniform(10, 10, 2)
	r := NewRouter(g, RouterOptions{})
	// Saturate the straight horizontal corridor at y=0.
	for x := 0; x < 9; x++ {
		g.HDem[g.HIdx(x, 0)] = 2
	}
	path := r.patternRoute(tile{0, 0}, tile{9, 0})
	// The chosen route should leave row 0.
	offRow := false
	for _, tl := range path {
		if tl.y != 0 {
			offRow = true
		}
	}
	if !offRow {
		t.Error("pattern route ignored congestion on the straight corridor")
	}
}

func TestMazeRouteFindsDetour(t *testing.T) {
	g := uniform(8, 8, 1)
	r := NewRouter(g, RouterOptions{OverflowPenalty: 100})
	// Wall of zero capacity across column 3..4 except at the top row.
	for y := 0; y < 7; y++ {
		g.HCap[g.HIdx(3, y)] = 0
	}
	path := r.mazeRoute(tile{0, 3}, tile{7, 3})
	if path[0] != (tile{0, 3}) || path[len(path)-1] != (tile{7, 3}) {
		t.Fatalf("endpoints wrong")
	}
	// Must cross column 3→4 at y=7 (the only free horizontal edge).
	crossedAtTop := false
	for i := 0; i+1 < len(path); i++ {
		if path[i].y == 7 && path[i+1].y == 7 &&
			((path[i].x == 3 && path[i+1].x == 4) || (path[i].x == 4 && path[i+1].x == 3)) {
			crossedAtTop = true
		}
	}
	if !crossedAtTop {
		t.Errorf("maze route did not detour through the gap: %v", path)
	}
}

// routable builds a small design and routes it end to end.
func TestRouteDesignEndToEnd(t *testing.T) {
	d := gen.MustGenerate(gen.Config{
		Name: "rt", Seed: 5, NumStdCells: 200, NumFixedMacros: 2,
		NumMovableMacros: 1, NumModules: 2, NumFences: 1, NumTerminals: 8,
		TargetUtil: 0.6,
	})
	// Spread cells deterministically so nets have extent.
	for i, ci := range d.Movable() {
		c := &d.Cells[ci]
		c.SetCenter(geom.Point{
			X: d.Die.Lo.X + float64((i*37)%97)/97*d.Die.W(),
			Y: d.Die.Lo.Y + float64((i*61)%89)/89*d.Die.H(),
		})
	}
	g, err := NewGrid(d)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, RouterOptions{})
	res := r.RouteDesign(d)
	if res.Segments == 0 || res.WirelengthTiles == 0 {
		t.Fatalf("nothing routed: %+v", res)
	}
	// Demand conservation: sum of demands equals total routed tiles.
	var dem float64
	for _, v := range g.HDem {
		dem += v
	}
	for _, v := range g.VDem {
		dem += v
	}
	if math.Abs(dem-float64(res.WirelengthTiles)) > 1e-6 {
		t.Errorf("demand %v != routed tiles %d", dem, res.WirelengthTiles)
	}
}

func TestRRRReducesOverflow(t *testing.T) {
	// Bus design: 12 horizontal nets concentrated on two middle rows of a
	// 2-track fabric. The pattern pass overloads those rows; rip-up must
	// spread nets across neighbouring rows (plenty of free capacity, and
	// each source tile holds at most 6 nets against 6 escape tracks, so a
	// legal solution exists).
	b := db.NewBuilder("bus", geom.NewRect(0, 0, 100, 100))
	var conns []int
	for i := 0; i < 12; i++ {
		l := b.AddStdCell(name("l", i), 2, 2)
		r := b.AddStdCell(name("r", i), 2, 2)
		b.AddNet(name("n", i), 1, b.CenterConn(l), b.CenterConn(r))
		conns = append(conns, l, r)
	}
	d := b.MustDesign()
	for i := 0; i < 12; i++ {
		y := 44.0
		if i%2 == 1 {
			y = 54.0
		}
		d.Cells[conns[2*i]].Pos = geom.Point{X: 2, Y: y}
		d.Cells[conns[2*i+1]].Pos = geom.Point{X: 94, Y: y}
	}
	g := uniform(10, 10, 2)
	rt := NewRouter(g, RouterOptions{MaxRRRIters: 8})
	res := rt.RouteDesign(d)
	if res.InitialOverflow <= 0 {
		t.Fatalf("construction failed to overflow initially: %+v", res)
	}
	if res.Overflow >= res.InitialOverflow {
		t.Errorf("RRR did not reduce overflow: %v -> %v", res.InitialOverflow, res.Overflow)
	}
	if res.Overflow > 8 {
		t.Errorf("RRR left overflow %v (max cong %v)", res.Overflow, res.MaxCongestion)
	}
	if res.RRRIters == 0 {
		t.Error("expected rip-up rounds to run")
	}
}

func name(p string, i int) string { return p + string(rune('a'+i/26)) + string(rune('a'+i%26)) }

func TestACEAndRC(t *testing.T) {
	g := uniform(11, 2, 10) // 10 H edges per row, 2 rows; 11 V edges
	// Make exactly one edge 200% congested, everything else 0.
	g.HDem[g.HIdx(0, 0)] = 20
	nEdges := len(g.HCap) + len(g.VCap)
	ace05 := g.ACE(0.5)
	// Top 0.5% of 31 edges = 1 edge -> ratio 2.0.
	if math.Abs(ace05-2.0) > 1e-9 {
		t.Errorf("ACE(0.5) = %v, want 2 (edges=%d)", ace05, nEdges)
	}
	prof := g.ACEProfile()
	if prof[0] < prof[3] {
		t.Error("ACE must be non-increasing in percentile")
	}
	rc := RC(prof)
	if rc < 100 {
		t.Errorf("RC = %v", rc)
	}
	// Un-congested grid: RC floors at 100.
	g2 := uniform(11, 2, 10)
	if got := RC(g2.ACEProfile()); got != 100 {
		t.Errorf("empty grid RC = %v, want 100", got)
	}
}

func TestScaledHPWL(t *testing.T) {
	if got := ScaledHPWL(1000, 100); got != 1000 {
		t.Errorf("RC=100 must not scale: %v", got)
	}
	if got := ScaledHPWL(1000, 110); math.Abs(got-1300) > 1e-9 {
		t.Errorf("RC=110 -> %v, want 1300", got)
	}
}

func TestTileCongestionMap(t *testing.T) {
	g := uniform(4, 4, 10)
	g.HDem[g.HIdx(1, 2)] = 15 // 150% on edge (1,2)-(2,2)
	m := g.TileCongestion()
	// The flanking tiles share the hot edge's demand over their total
	// incident capacity; they must be the hottest tiles and equally so.
	if m[2*4+1] <= m[0] || math.Abs(m[2*4+1]-m[2*4+2]) > 1e-9 {
		t.Errorf("tiles flanking hot edge: %v %v (cold %v)", m[9], m[10], m[0])
	}
	if m[0] != 0 {
		t.Errorf("cold tile congested: %v", m[0])
	}
	// A tile's congestion reflects demand/total-capacity: tile (1,2) has
	// 4 incident edges of capacity 10 and one carries 15 tracks.
	if math.Abs(m[2*4+1]-15.0/40.0) > 1e-9 {
		t.Errorf("tile (1,2) congestion = %v, want 0.375", m[9])
	}
}

func TestEvaluateDesign(t *testing.T) {
	d := gen.MustGenerate(gen.Config{
		Name: "ev", Seed: 6, NumStdCells: 150, NumFixedMacros: 2,
		NumModules: 2, NumFences: 1, NumTerminals: 8, TargetUtil: 0.6,
	})
	for i, ci := range d.Movable() {
		c := &d.Cells[ci]
		c.SetCenter(geom.Point{
			X: d.Die.Lo.X + float64((i*37)%97)/97*d.Die.W(),
			Y: d.Die.Lo.Y + float64((i*61)%89)/89*d.Die.H(),
		})
	}
	m, err := EvaluateDesign(d, RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.HPWL <= 0 || m.RC < 100 || m.ScaledHPWL < m.HPWL {
		t.Errorf("implausible metrics: %+v", m)
	}
	if len(m.ACE) != len(ACEPercentiles) {
		t.Errorf("ACE profile size %d", len(m.ACE))
	}
	if m.String() == "" {
		t.Error("empty String()")
	}
}

func TestEvaluateDesignWithoutRouteInfo(t *testing.T) {
	b := db.NewBuilder("no", geom.NewRect(0, 0, 10, 10))
	b.AddStdCell("a", 1, 1)
	d := b.MustDesign()
	if _, err := EvaluateDesign(d, RouterOptions{}); err == nil {
		t.Error("expected error for design without route info")
	}
}

func TestSampleBetween(t *testing.T) {
	s := sampleBetween(3, 3, 4)
	if len(s) != 1 || s[0] != 3 {
		t.Errorf("degenerate sample: %v", s)
	}
	s = sampleBetween(0, 3, 8)
	if len(s) != 4 {
		t.Errorf("small span should enumerate: %v", s)
	}
	s = sampleBetween(0, 100, 4)
	if s[0] != 0 || s[len(s)-1] != 100 {
		t.Errorf("endpoints missing: %v", s)
	}
	if len(s) > 6 {
		t.Errorf("too many samples: %v", s)
	}
	s = sampleBetween(100, 0, 4) // reversed input
	if s[0] != 0 || s[len(s)-1] != 100 {
		t.Errorf("reversed endpoints: %v", s)
	}
}

// TestWarmRerouteNoAllocs pins the disabled-telemetry contract documented
// on RouterOptions.Obs: with a nil recorder, a warmed-up rerouteSegment
// (the hot path of every RRR round) performs zero allocations.
func TestWarmRerouteNoAllocs(t *testing.T) {
	g, fx := benchDesign(800)
	r := NewRouter(g, RouterOptions{Workers: 1})
	r.RouteDesign(fx.d)
	best, span := 0, -1
	for si := range r.segs {
		s := &r.segs[si]
		if d := abs(s.a.x-s.b.x) + abs(s.a.y-s.b.y); d > span {
			span, best = d, si
		}
	}
	s := &r.segs[best]
	r.snapshotCosts()
	ss := r.state(0)
	s.path = r.rerouteSegment(ss, s) // warm the path buffer
	allocs := testing.AllocsPerRun(100, func() {
		s.path = r.rerouteSegment(ss, s)
	})
	if allocs != 0 {
		t.Errorf("warm reroute with telemetry disabled allocates %.1f/op, want 0", allocs)
	}
}
