// Package route is the global-routing substrate of the reproduction: a
// g-cell grid with per-edge capacities derived from the design's .route
// description (macro blockages included), a fast probabilistic congestion
// estimator used inside the placer's routability loop, a PathFinder-style
// negotiated global router used for evaluation, and the DAC-2012 contest
// metrics (ACE, RC, scaled HPWL).
//
// The grid collapses routing layers into one horizontal and one vertical
// capacity per edge, which is exactly the abstraction the contest
// evaluator exposes to placers; demand is counted in tracks, one per net
// crossing an edge.
package route

import (
	"fmt"
	"math"

	"repro/internal/db"
	"repro/internal/geom"
)

// Grid is the g-cell routing grid. Tiles are indexed (tx, ty) with tile
// (0,0) at the die's lower-left. A horizontal edge h(x,y) joins tiles
// (x,y)–(x+1,y); a vertical edge v(x,y) joins (x,y)–(x,y+1).
type Grid struct {
	NX, NY       int
	Origin       geom.Point
	TileW, TileH float64

	// HCap has (NX−1)·NY entries indexed y·(NX−1)+x.
	HCap []float64
	// VCap has NX·(NY−1) entries indexed y·NX+x.
	VCap []float64
	// HDem and VDem are the current demands, same indexing.
	HDem []float64
	VDem []float64
	// HHist and VHist are PathFinder history costs.
	HHist []float64
	VHist []float64
}

// NewUniformGrid builds a grid over die with uniform per-edge capacities.
func NewUniformGrid(die geom.Rect, nx, ny int, hcap, vcap float64) *Grid {
	g := &Grid{
		NX: nx, NY: ny,
		Origin: die.Lo,
		TileW:  die.W() / float64(nx),
		TileH:  die.H() / float64(ny),
	}
	g.alloc()
	for i := range g.HCap {
		g.HCap[i] = hcap
	}
	for i := range g.VCap {
		g.VCap[i] = vcap
	}
	return g
}

// NewGrid builds the routing grid for a design from its RouteInfo,
// collapsing layers and applying macro blockages with the blockage
// porosity. Terminals and standard cells do not block routing.
func NewGrid(d *db.Design) (*Grid, error) {
	ri := d.Route
	if ri == nil {
		return nil, fmt.Errorf("route: design %q has no routing info", d.Name)
	}
	if ri.GridX < 2 || ri.GridY < 2 {
		return nil, fmt.Errorf("route: grid %dx%d too small", ri.GridX, ri.GridY)
	}
	g := &Grid{
		NX: ri.GridX, NY: ri.GridY,
		Origin: ri.Origin,
		TileW:  ri.TileW,
		TileH:  ri.TileH,
	}
	if g.TileW <= 0 || g.TileH <= 0 {
		g.TileW = d.Die.W() / float64(g.NX)
		g.TileH = d.Die.H() / float64(g.NY)
	}
	g.alloc()
	var hTotal, vTotal float64
	for l := 0; l < ri.Layers; l++ {
		hTotal += ri.HorizCap[l]
		vTotal += ri.VertCap[l]
	}
	for i := range g.HCap {
		g.HCap[i] = hTotal
	}
	for i := range g.VCap {
		g.VCap[i] = vTotal
	}
	// Blockage pass: each blocked layer under the cell footprint loses
	// its share of capacity, scaled by the covered fraction of the edge's
	// tile span and softened by porosity.
	for _, b := range ri.Blockages {
		c := &d.Cells[b.Cell]
		r := c.Rect()
		var hBlocked, vBlocked float64
		for _, l := range b.Layers {
			hBlocked += ri.HorizCap[l]
			vBlocked += ri.VertCap[l]
		}
		g.applyBlockage(r, hBlocked, vBlocked, ri.BlockagePorosity)
	}
	return g, nil
}

func (g *Grid) alloc() {
	g.HCap = make([]float64, (g.NX-1)*g.NY)
	g.VCap = make([]float64, g.NX*(g.NY-1))
	g.HDem = make([]float64, len(g.HCap))
	g.VDem = make([]float64, len(g.VCap))
	g.HHist = make([]float64, len(g.HCap))
	g.VHist = make([]float64, len(g.VCap))
}

// applyBlockage reduces capacity under rectangle r. Each edge spans two
// tiles; its blocked share is the mean covered fraction of those tiles
// times the blocked-layer capacity, softened by porosity (the fraction of
// blocked capacity that survives).
func (g *Grid) applyBlockage(r geom.Rect, hBlocked, vBlocked, porosity float64) {
	if porosity < 0 {
		porosity = 0
	}
	if porosity > 1 {
		porosity = 1
	}
	loss := 1 - porosity
	tx0, ty0 := g.TileOf(r.Lo)
	tx1, ty1 := g.TileOf(geom.Point{X: r.Hi.X - 1e-9, Y: r.Hi.Y - 1e-9})
	frac := func(tx, ty int) float64 {
		tileR := g.TileRect(tx, ty)
		return tileR.OverlapArea(r) / tileR.Area()
	}
	// Horizontal edges whose either endpoint tile is covered.
	for ty := ty0; ty <= ty1; ty++ {
		xa := tx0 - 1
		if xa < 0 {
			xa = 0
		}
		xb := tx1
		if xb > g.NX-2 {
			xb = g.NX - 2
		}
		for x := xa; x <= xb; x++ {
			f := (frac(x, ty) + frac(x+1, ty)) / 2
			if f <= 0 {
				continue
			}
			i := g.HIdx(x, ty)
			g.HCap[i] = math.Max(0, g.HCap[i]-hBlocked*f*loss)
		}
	}
	for tx := tx0; tx <= tx1; tx++ {
		ya := ty0 - 1
		if ya < 0 {
			ya = 0
		}
		yb := ty1
		if yb > g.NY-2 {
			yb = g.NY - 2
		}
		for y := ya; y <= yb; y++ {
			f := (frac(tx, y) + frac(tx, y+1)) / 2
			if f <= 0 {
				continue
			}
			i := g.VIdx(tx, y)
			g.VCap[i] = math.Max(0, g.VCap[i]-vBlocked*f*loss)
		}
	}
}

// TileOf returns the tile containing point p, clamped to the grid.
func (g *Grid) TileOf(p geom.Point) (int, int) {
	tx := int(math.Floor((p.X - g.Origin.X) / g.TileW))
	ty := int(math.Floor((p.Y - g.Origin.Y) / g.TileH))
	if tx < 0 {
		tx = 0
	}
	if tx >= g.NX {
		tx = g.NX - 1
	}
	if ty < 0 {
		ty = 0
	}
	if ty >= g.NY {
		ty = g.NY - 1
	}
	return tx, ty
}

// TileRect returns tile (tx, ty)'s rectangle.
func (g *Grid) TileRect(tx, ty int) geom.Rect {
	x := g.Origin.X + float64(tx)*g.TileW
	y := g.Origin.Y + float64(ty)*g.TileH
	return geom.NewRect(x, y, x+g.TileW, y+g.TileH)
}

// TileCenter returns the center of tile (tx, ty).
func (g *Grid) TileCenter(tx, ty int) geom.Point {
	return geom.Point{
		X: g.Origin.X + (float64(tx)+0.5)*g.TileW,
		Y: g.Origin.Y + (float64(ty)+0.5)*g.TileH,
	}
}

// HIdx returns the horizontal edge index for the edge (x,y)–(x+1,y).
func (g *Grid) HIdx(x, y int) int { return y*(g.NX-1) + x }

// VIdx returns the vertical edge index for the edge (x,y)–(x,y+1).
func (g *Grid) VIdx(x, y int) int { return y*g.NX + x }

// ResetDemand zeroes all demands (history is kept).
func (g *Grid) ResetDemand() {
	for i := range g.HDem {
		g.HDem[i] = 0
	}
	for i := range g.VDem {
		g.VDem[i] = 0
	}
}

// ResetHistory zeroes PathFinder history costs.
func (g *Grid) ResetHistory() {
	for i := range g.HHist {
		g.HHist[i] = 0
	}
	for i := range g.VHist {
		g.VHist[i] = 0
	}
}

// Clone returns a deep copy of the grid (demands and history included).
func (g *Grid) Clone() *Grid {
	out := *g
	out.HCap = append([]float64(nil), g.HCap...)
	out.VCap = append([]float64(nil), g.VCap...)
	out.HDem = append([]float64(nil), g.HDem...)
	out.VDem = append([]float64(nil), g.VDem...)
	out.HHist = append([]float64(nil), g.HHist...)
	out.VHist = append([]float64(nil), g.VHist...)
	return &out
}

// TotalOverflow returns the sum over edges of max(0, demand − capacity).
func (g *Grid) TotalOverflow() float64 {
	var of float64
	for i := range g.HDem {
		if ex := g.HDem[i] - g.HCap[i]; ex > 0 {
			of += ex
		}
	}
	for i := range g.VDem {
		if ex := g.VDem[i] - g.VCap[i]; ex > 0 {
			of += ex
		}
	}
	return of
}

// MaxCongestion returns the maximum demand/capacity ratio over all edges
// with positive capacity.
func (g *Grid) MaxCongestion() float64 {
	m := 0.0
	for i := range g.HDem {
		if g.HCap[i] > 0 {
			if r := g.HDem[i] / g.HCap[i]; r > m {
				m = r
			}
		}
	}
	for i := range g.VDem {
		if g.VCap[i] > 0 {
			if r := g.VDem[i] / g.VCap[i]; r > m {
				m = r
			}
		}
	}
	return m
}

// TileCongestion returns, per tile, the total demand of the edges incident
// to the tile divided by their total capacity. The sum (rather than a max
// over edges) keeps a single near-zero-capacity edge — e.g. under a macro
// blockage — from marking the whole tile infinitely hot, which would send
// the placer's inflation loop into a feedback spiral.
func (g *Grid) TileCongestion() []float64 {
	dem := make([]float64, g.NX*g.NY)
	capTot := make([]float64, g.NX*g.NY)
	add := func(tx, ty int, d, c float64) {
		i := ty*g.NX + tx
		dem[i] += d
		capTot[i] += c
	}
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX-1; x++ {
			i := g.HIdx(x, y)
			add(x, y, g.HDem[i], g.HCap[i])
			add(x+1, y, g.HDem[i], g.HCap[i])
		}
	}
	for y := 0; y < g.NY-1; y++ {
		for x := 0; x < g.NX; x++ {
			i := g.VIdx(x, y)
			add(x, y, g.VDem[i], g.VCap[i])
			add(x, y+1, g.VDem[i], g.VCap[i])
		}
	}
	out := make([]float64, g.NX*g.NY)
	for i := range out {
		if capTot[i] > 0 {
			out[i] = dem[i] / capTot[i]
		} else if dem[i] > 0 {
			out[i] = math.Inf(1)
		}
	}
	return out
}
