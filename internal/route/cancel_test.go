package route

import (
	"context"
	"errors"
	"testing"

	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/geom"
)

func cancelTestDesign(t *testing.T) (*Router, *Grid, *db.Design) {
	t.Helper()
	d := gen.MustGenerate(gen.Config{
		Name: "rt-cancel", Seed: 5, NumStdCells: 200, NumFixedMacros: 2,
		NumMovableMacros: 1, NumModules: 2, NumFences: 1, NumTerminals: 8,
		TargetUtil: 0.6,
	})
	for i, ci := range d.Movable() {
		c := &d.Cells[ci]
		c.SetCenter(geom.Point{
			X: d.Die.Lo.X + float64((i*37)%97)/97*d.Die.W(),
			Y: d.Die.Lo.Y + float64((i*61)%89)/89*d.Die.H(),
		})
	}
	g, err := NewGrid(d)
	if err != nil {
		t.Fatal(err)
	}
	return NewRouter(g, RouterOptions{}), g, d
}

func TestRouteDesignCtxPreCanceled(t *testing.T) {
	r, g, d := cancelTestDesign(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := r.RouteDesignCtx(ctx, d)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RouteDesignCtx(canceled) err = %v, want context.Canceled", err)
	}
	if res.Segments != 0 {
		t.Errorf("canceled routing committed %d segments, want none", res.Segments)
	}
	var dem float64
	for _, v := range g.HDem {
		dem += v
	}
	for _, v := range g.VDem {
		dem += v
	}
	if dem != 0 {
		t.Errorf("canceled routing left %v track demand on the grid", dem)
	}
}

// TestRouteDesignCtxBackgroundMatchesRouteDesign guards the delegation
// contract: threading a live context must not change the routing result.
func TestRouteDesignCtxBackgroundMatchesRouteDesign(t *testing.T) {
	r1, _, d1 := cancelTestDesign(t)
	r2, _, d2 := cancelTestDesign(t)
	a := r1.RouteDesign(d1)
	b, err := r2.RouteDesignCtx(context.Background(), d2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("RouteDesignCtx(Background) = %+v, RouteDesign = %+v", b, a)
	}
}

// TestEvaluateDesignCtxCanceled: the metrics entry point propagates
// cancellation instead of scoring a half-routed design.
func TestEvaluateDesignCtxCanceled(t *testing.T) {
	_, _, d := cancelTestDesign(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EvaluateDesignCtx(ctx, d, RouterOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("EvaluateDesignCtx(canceled) err = %v, want context.Canceled", err)
	}
}
