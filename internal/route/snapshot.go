package route

import "fmt"

// DemandState is a deep copy of the grid's mutable routing state: present
// demand plus the negotiated-congestion history. Capacities are excluded —
// they are derived from the design and rebuilt by NewGrid — so a
// checkpointed state stays valid as long as the design is unchanged.
type DemandState struct {
	NX, NY                   int
	HDem, VDem, HHist, VHist []float64
}

// SnapshotDemand captures the grid's demand and history for checkpointing.
func (g *Grid) SnapshotDemand() DemandState {
	return DemandState{
		NX: g.NX, NY: g.NY,
		HDem:  append([]float64(nil), g.HDem...),
		VDem:  append([]float64(nil), g.VDem...),
		HHist: append([]float64(nil), g.HHist...),
		VHist: append([]float64(nil), g.VHist...),
	}
}

// RestoreDemand overwrites the grid's demand and history from a snapshot
// taken on a grid of identical geometry.
func (g *Grid) RestoreDemand(st DemandState) error {
	if st.NX != g.NX || st.NY != g.NY {
		return fmt.Errorf("route: demand snapshot is %dx%d, grid is %dx%d", st.NX, st.NY, g.NX, g.NY)
	}
	if len(st.HDem) != len(g.HDem) || len(st.VDem) != len(g.VDem) ||
		len(st.HHist) != len(g.HHist) || len(st.VHist) != len(g.VHist) {
		return fmt.Errorf("route: demand snapshot edge counts do not match a %dx%d grid", g.NX, g.NY)
	}
	copy(g.HDem, st.HDem)
	copy(g.VDem, st.VDem)
	copy(g.HHist, st.HHist)
	copy(g.VHist, st.VHist)
	return nil
}
