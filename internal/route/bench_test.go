package route

import (
	"fmt"
	"testing"

	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/obs"
)

// benchDesign is a congestion-prone placement with spread-out cells so
// the rip-up rounds have real negotiation to do.
func benchDesign(n int) (*Grid, *routerFixture) {
	d := gen.MustGenerate(gen.Congested(n, 3))
	for i, ci := range d.Movable() {
		c := &d.Cells[ci]
		c.SetCenter(geom.Point{
			X: d.Die.Lo.X + float64((i*37)%97)/97*d.Die.W(),
			Y: d.Die.Lo.Y + float64((i*61)%89)/89*d.Die.H(),
		})
	}
	g, err := NewGrid(d)
	if err != nil {
		panic(err)
	}
	return g, &routerFixture{d: d}
}

type routerFixture struct{ d *db.Design }

// BenchmarkMazeReroute measures one windowed A* reroute on a warmed-up
// router: the epoch-stamped search state and pooled heap make the steady
// state allocation-free (allocs/op ≈ 0 — the old implementation paid
// three O(NX·NY) slabs plus a fresh heap per call).
func BenchmarkMazeReroute(b *testing.B) {
	g, fx := benchDesign(800)
	r := NewRouter(g, RouterOptions{Workers: 1})
	r.RouteDesign(fx.d)
	// Pick the longest segment for a representative reroute.
	best, span := 0, -1
	for si := range r.segs {
		s := &r.segs[si]
		if d := abs(s.a.x-s.b.x) + abs(s.a.y-s.b.y); d > span {
			span, best = d, si
		}
	}
	s := &r.segs[best]
	r.snapshotCosts()
	ss := r.state(0)
	s.path = r.rerouteSegment(ss, s) // warm the path buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.path = r.rerouteSegment(ss, s)
	}
}

// BenchmarkFullGridMaze is the worst case: a full-grid search (the old
// router paid this for every reroute; the windowed search only on final
// escalation).
func BenchmarkFullGridMaze(b *testing.B) {
	g, fx := benchDesign(800)
	r := NewRouter(g, RouterOptions{Workers: 1})
	r.RouteDesign(fx.d)
	r.snapshotCosts()
	ss := r.state(0)
	a, z := tile{0, 0}, tile{g.NX - 1, g.NY - 1}
	var p []tile
	p = ss.aStar(r, a, z, fullWindow(g), p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p = ss.aStar(r, a, z, fullWindow(g), p[:0])
	}
}

// BenchmarkRouteDesignObs measures the telemetry layer's overhead on the
// full routing flow: "off" (nil recorder, the default) must track the
// uninstrumented baseline, "on" shows the cost of per-round trace capture.
func BenchmarkRouteDesignObs(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			var rec *obs.Recorder
			if mode == "on" {
				rec = obs.New(obs.Config{})
			}
			g, fx := benchDesign(800)
			r := NewRouter(g, RouterOptions{Workers: 1, Obs: rec})
			r.RouteDesign(fx.d) // warm scratch outside the timer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.RouteDesign(fx.d)
			}
		})
	}
}

// BenchmarkRouteDesign times the full negotiated routing flow at several
// worker counts (the second and later iterations run on warmed scratch,
// which is the routability loop's steady state).
func BenchmarkRouteDesign(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			g, fx := benchDesign(1200)
			r := NewRouter(g, RouterOptions{Workers: w})
			r.RouteDesign(fx.d) // warm scratch outside the timer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.RouteDesign(fx.d)
			}
		})
	}
}
