// Package cluster implements the hierarchy-aware multilevel coarsening
// used by global placement. Objects connected by strong nets are merged
// level by level (first-choice clustering with best-neighbor scoring)
// until the problem is small enough to optimize cheaply; solutions are
// then interpolated back down, level by level, for refinement.
//
// Hierarchy awareness is the property that distinguishes this placer's
// clustering: two objects may merge only when they belong to the same
// logical module (same Group) and the same fence region, so clusters never
// straddle a fence boundary and the declustered placement inherits the
// hierarchical structure instead of fighting it. Macros never merge.
package cluster

import (
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/wl"
)

// Problem is one level of the multilevel hierarchy: a flat placement view
// with per-object metadata and a netlist over object indices (wl.Fixed
// pins are absolute).
type Problem struct {
	// Per-object arrays, all of length NumObjs().
	Area         []float64
	HalfW, HalfH []float64
	// Group is the hierarchy-compatibility key (module index, or -1 for
	// root-level objects); only equal groups merge.
	Group []int
	// Region is the fence constraint (db.NoRegion = -1 when free); only
	// equal regions merge.
	Region []int
	// Macro marks objects that must not participate in clustering.
	Macro []bool
	// X, Y are object centers.
	X, Y []float64
	// Nets is the connectivity over this level's objects.
	Nets []wl.Net
}

// NumObjs returns the number of objects at this level.
func (p *Problem) NumObjs() int { return len(p.Area) }

// TotalArea returns the sum of object areas.
func (p *Problem) TotalArea() float64 {
	var a float64
	for _, v := range p.Area {
		a += v
	}
	return a
}

// Clone deep-copies the problem (used by experiments that perturb levels).
func (p *Problem) Clone() *Problem {
	out := &Problem{
		Area:   append([]float64(nil), p.Area...),
		HalfW:  append([]float64(nil), p.HalfW...),
		HalfH:  append([]float64(nil), p.HalfH...),
		Group:  append([]int(nil), p.Group...),
		Region: append([]int(nil), p.Region...),
		Macro:  append([]bool(nil), p.Macro...),
		X:      append([]float64(nil), p.X...),
		Y:      append([]float64(nil), p.Y...),
		Nets:   make([]wl.Net, len(p.Nets)),
	}
	for i := range p.Nets {
		out.Nets[i] = p.Nets[i]
		out.Nets[i].Pins = append([]wl.PinRef(nil), p.Nets[i].Pins...)
	}
	return out
}

// Hierarchy is a stack of increasingly coarse problems. Levels[0] is the
// original problem; Maps[l][i] gives the index at Levels[l+1] of the
// cluster containing object i of Levels[l].
type Hierarchy struct {
	Levels []*Problem
	Maps   [][]int
}

// Options tunes coarsening.
type Options struct {
	// MinObjs stops coarsening when a level has at most this many objects
	// (default 500).
	MinObjs int
	// MaxLevels bounds the hierarchy depth (default 6).
	MaxLevels int
	// MaxClusterAreaFactor bounds any cluster to this multiple of the
	// average object area at the level being coarsened (default 10).
	MaxClusterAreaFactor float64
	// MaxNetDegree ignores nets larger than this during scoring
	// (default 16); huge nets carry little locality information.
	MaxNetDegree int

	// Obs, when non-nil, records a coarsening span with per-level
	// object/net counters and debug logging (telemetry only — it never
	// changes the hierarchy).
	Obs *obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.MinObjs <= 0 {
		o.MinObjs = 500
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 6
	}
	if o.MaxClusterAreaFactor <= 0 {
		o.MaxClusterAreaFactor = 10
	}
	if o.MaxNetDegree <= 0 {
		o.MaxNetDegree = 16
	}
	return o
}

// Build constructs the multilevel hierarchy above p.
func Build(p *Problem, opt Options) *Hierarchy {
	opt = opt.withDefaults()
	sp := opt.Obs.StartSpan("coarsen")
	h := &Hierarchy{Levels: []*Problem{p}}
	for len(h.Levels) < opt.MaxLevels {
		cur := h.Levels[len(h.Levels)-1]
		if cur.NumObjs() <= opt.MinObjs {
			break
		}
		lvl := sp.StartSpanf("level-%d", len(h.Levels))
		next, mapping, merged := coarsen(cur, opt)
		if !merged {
			lvl.End()
			break
		}
		h.Levels = append(h.Levels, next)
		h.Maps = append(h.Maps, mapping)
		if lvl != nil {
			lvl.Add("objects", int64(next.NumObjs()))
			lvl.Add("nets", int64(len(next.Nets)))
			lvl.End()
		}
	}
	if sp != nil {
		sp.Add("levels", int64(len(h.Levels)))
		sp.End()
		opt.Obs.Log().Debug("coarsen done",
			"levels", len(h.Levels),
			"objects_fine", p.NumObjs(),
			"objects_coarse", h.Levels[len(h.Levels)-1].NumObjs())
	}
	return h
}

// Interpolate copies cluster positions from level l+1 down to level l:
// every fine object moves to its cluster's center. A small deterministic
// stagger breaks exact coincidence so the next refinement has usable
// gradients.
func (h *Hierarchy) Interpolate(l int) {
	fine := h.Levels[l]
	coarse := h.Levels[l+1]
	mapping := h.Maps[l]
	counter := make([]int, coarse.NumObjs())
	for i := 0; i < fine.NumObjs(); i++ {
		c := mapping[i]
		k := counter[c]
		counter[c]++
		// Golden-angle stagger within a radius proportional to the
		// cluster footprint.
		r := 0.3 * math.Sqrt(coarse.Area[c]) * math.Sqrt(float64(k)/(float64(k)+8))
		a := 2.399963 * float64(k)
		fine.X[i] = coarse.X[c] + r*math.Cos(a)
		fine.Y[i] = coarse.Y[c] + r*math.Sin(a)
	}
}

// edge is one scored candidate pair during clustering.
type edge struct {
	u, v int
	w    float64
}

// coarsen performs one first-choice clustering pass. It returns the
// coarser problem, the fine→coarse mapping, and whether any merge
// happened.
func coarsen(p *Problem, opt Options) (*Problem, []int, bool) {
	n := p.NumObjs()
	avgArea := p.TotalArea() / math.Max(1, float64(n))
	maxArea := avgArea * opt.MaxClusterAreaFactor

	// Pairwise connectivity weights from nets (clique model, weight
	// w/(d−1) per pair, degree-capped).
	type key struct{ u, v int }
	conn := make(map[key]float64)
	for ni := range p.Nets {
		net := &p.Nets[ni]
		d := len(net.Pins)
		if d < 2 || d > opt.MaxNetDegree {
			continue
		}
		w := net.Weight
		if w == 0 {
			w = 1
		}
		pw := w / float64(d-1)
		for i := 0; i < d; i++ {
			if net.Pins[i].Obj == wl.Fixed {
				continue
			}
			for j := i + 1; j < d; j++ {
				if net.Pins[j].Obj == wl.Fixed {
					continue
				}
				u, v := net.Pins[i].Obj, net.Pins[j].Obj
				if u == v {
					continue
				}
				if u > v {
					u, v = v, u
				}
				conn[key{u, v}] += pw
			}
		}
	}
	if len(conn) == 0 {
		return nil, nil, false
	}

	// Score candidate pairs: connectivity normalized by combined area
	// (best-choice scoring), filtered by compatibility.
	edges := make([]edge, 0, len(conn))
	for k, w := range conn {
		u, v := k.u, k.v
		if p.Macro[u] || p.Macro[v] {
			continue
		}
		if p.Group[u] != p.Group[v] || p.Region[u] != p.Region[v] {
			continue
		}
		if p.Area[u]+p.Area[v] > maxArea {
			continue
		}
		edges = append(edges, edge{u, v, w / (p.Area[u] + p.Area[v] + avgArea)})
	}
	if len(edges) == 0 {
		return nil, nil, false
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})

	// Greedy matching over the sorted edges.
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	merges := 0
	for _, e := range edges {
		if match[e.u] != -1 || match[e.v] != -1 {
			continue
		}
		match[e.u] = e.v
		match[e.v] = e.u
		merges++
	}
	if merges == 0 {
		return nil, nil, false
	}

	// Assign coarse indices: matched pairs share one, everything else
	// keeps its own cluster.
	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = -1
	}
	next := 0
	for i := 0; i < n; i++ {
		if mapping[i] != -1 {
			continue
		}
		mapping[i] = next
		if m := match[i]; m > i {
			mapping[m] = next
		}
		next++
	}

	// Build the coarse problem.
	out := &Problem{
		Area:   make([]float64, next),
		HalfW:  make([]float64, next),
		HalfH:  make([]float64, next),
		Group:  make([]int, next),
		Region: make([]int, next),
		Macro:  make([]bool, next),
		X:      make([]float64, next),
		Y:      make([]float64, next),
	}
	wsum := make([]float64, next)
	for i := 0; i < n; i++ {
		c := mapping[i]
		out.Area[c] += p.Area[i]
		out.Group[c] = p.Group[i]
		out.Region[c] = p.Region[i]
		out.Macro[c] = out.Macro[c] || p.Macro[i]
		out.X[c] += p.X[i] * p.Area[i]
		out.Y[c] += p.Y[i] * p.Area[i]
		wsum[c] += p.Area[i]
	}
	for c := 0; c < next; c++ {
		if wsum[c] > 0 {
			out.X[c] /= wsum[c]
			out.Y[c] /= wsum[c]
		}
		// Clusters are modeled as squares of equal area; singleton macros
		// keep their true footprint below.
		half := math.Sqrt(out.Area[c]) / 2
		out.HalfW[c] = half
		out.HalfH[c] = half
	}
	// Preserve exact footprints for unmerged objects (macros especially).
	for i := 0; i < n; i++ {
		if match[i] == -1 {
			c := mapping[i]
			out.HalfW[c] = p.HalfW[i]
			out.HalfH[c] = p.HalfH[i]
		}
	}

	// Lower the nets: remap pins, zero offsets for merged pins, dedupe,
	// and drop nets that collapse to fewer than two distinct endpoints.
	for ni := range p.Nets {
		net := &p.Nets[ni]
		seen := make(map[int]bool, len(net.Pins))
		newNet := wl.Net{Weight: net.Weight}
		fixedCount := 0
		for _, pin := range net.Pins {
			if pin.Obj == wl.Fixed {
				newNet.Pins = append(newNet.Pins, pin)
				fixedCount++
				continue
			}
			c := mapping[pin.Obj]
			if seen[c] {
				continue
			}
			seen[c] = true
			np := wl.PinRef{Obj: c}
			if match[pin.Obj] == -1 {
				// Unmerged object: the pin offset stays meaningful.
				np.OffX, np.OffY = pin.OffX, pin.OffY
			}
			newNet.Pins = append(newNet.Pins, np)
		}
		if len(seen)+fixedCount >= 2 {
			out.Nets = append(out.Nets, newNet)
		}
	}
	return out, mapping, true
}
