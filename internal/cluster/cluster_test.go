package cluster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/wl"
)

// chainProblem builds n unit objects in a chain: i — i+1 nets, all in one
// group/region.
func chainProblem(n int) *Problem {
	p := &Problem{
		Area:   make([]float64, n),
		HalfW:  make([]float64, n),
		HalfH:  make([]float64, n),
		Group:  make([]int, n),
		Region: make([]int, n),
		Macro:  make([]bool, n),
		X:      make([]float64, n),
		Y:      make([]float64, n),
	}
	for i := 0; i < n; i++ {
		p.Area[i] = 1
		p.HalfW[i] = 0.5
		p.HalfH[i] = 0.5
		p.Group[i] = -1
		p.Region[i] = -1
		p.X[i] = float64(i)
	}
	for i := 0; i+1 < n; i++ {
		p.Nets = append(p.Nets, wl.Net{Weight: 1, Pins: []wl.PinRef{{Obj: i}, {Obj: i + 1}}})
	}
	return p
}

func TestCoarsenHalvesChain(t *testing.T) {
	p := chainProblem(100)
	next, mapping, ok := coarsen(p, Options{}.withDefaults())
	if !ok {
		t.Fatal("no merges on a chain")
	}
	if next.NumObjs() >= 100 || next.NumObjs() < 50 {
		t.Errorf("coarse size = %d, want in [50, 100)", next.NumObjs())
	}
	if len(mapping) != 100 {
		t.Fatalf("mapping length %d", len(mapping))
	}
	// Area conservation.
	if math.Abs(next.TotalArea()-p.TotalArea()) > 1e-9 {
		t.Errorf("area changed: %v -> %v", p.TotalArea(), next.TotalArea())
	}
	// Mapping must be onto [0, next.NumObjs()).
	seen := make([]bool, next.NumObjs())
	for _, c := range mapping {
		if c < 0 || c >= next.NumObjs() {
			t.Fatalf("mapping out of range: %d", c)
		}
		seen[c] = true
	}
	for c, s := range seen {
		if !s {
			t.Errorf("coarse object %d has no members", c)
		}
	}
}

func TestGroupBoundaryRespected(t *testing.T) {
	p := chainProblem(10)
	// Two groups split at index 5: the 4–5 edge must never merge.
	for i := range p.Group {
		if i >= 5 {
			p.Group[i] = 1
		} else {
			p.Group[i] = 0
		}
	}
	h := Build(p, Options{MinObjs: 1, MaxLevels: 10})
	top := h.Levels[len(h.Levels)-1]
	if top.NumObjs() < 2 {
		t.Fatalf("groups collapsed into %d objects", top.NumObjs())
	}
	// Verify by walking mappings: objects 0 and 9 must never share a
	// cluster.
	a, b := 0, 9
	for _, m := range h.Maps {
		a, b = m[a], m[b]
		if a == b {
			t.Fatal("objects from different groups merged")
		}
	}
}

func TestRegionBoundaryRespected(t *testing.T) {
	p := chainProblem(10)
	p.Region[3] = 7 // lone fenced object
	h := Build(p, Options{MinObjs: 1, MaxLevels: 10})
	idx := 3
	for l, m := range h.Maps {
		idx = m[idx]
		lvl := h.Levels[l+1]
		if lvl.Region[idx] != 7 {
			t.Fatal("fenced object lost its region")
		}
		if lvl.Area[idx] != 1 {
			t.Fatal("fenced object merged with incompatible neighbor")
		}
	}
}

func TestMacrosNeverMerge(t *testing.T) {
	p := chainProblem(10)
	p.Macro[4] = true
	p.Area[4] = 100
	h := Build(p, Options{MinObjs: 1, MaxLevels: 10})
	idx := 4
	for l, m := range h.Maps {
		idx = m[idx]
		if h.Levels[l+1].Area[idx] != 100 {
			t.Fatal("macro merged with a neighbor")
		}
		if !h.Levels[l+1].Macro[idx] {
			t.Fatal("macro flag lost")
		}
	}
}

func TestBuildReachesTarget(t *testing.T) {
	p := chainProblem(1000)
	h := Build(p, Options{MinObjs: 50, MaxLevels: 20})
	top := h.Levels[len(h.Levels)-1]
	if top.NumObjs() > 100 {
		t.Errorf("top level still has %d objects", top.NumObjs())
	}
	if len(h.Levels) < 3 {
		t.Errorf("expected several levels, got %d", len(h.Levels))
	}
}

func TestNetLoweringDropsInternalNets(t *testing.T) {
	// Two objects joined by one net merge; their net must disappear.
	p := chainProblem(2)
	next, _, ok := coarsen(p, Options{}.withDefaults())
	if !ok {
		t.Fatal("no merge")
	}
	if next.NumObjs() != 1 {
		t.Fatalf("expected 1 cluster, got %d", next.NumObjs())
	}
	if len(next.Nets) != 0 {
		t.Errorf("internal net survived: %+v", next.Nets)
	}
}

func TestNetLoweringKeepsFixedPins(t *testing.T) {
	p := chainProblem(2)
	p.Nets = append(p.Nets, wl.Net{Weight: 1, Pins: []wl.PinRef{
		{Obj: 0},
		{Obj: wl.Fixed, OffX: 50, OffY: 50},
	}})
	next, _, ok := coarsen(p, Options{}.withDefaults())
	if !ok {
		t.Fatal("no merge")
	}
	found := false
	for _, n := range next.Nets {
		for _, pin := range n.Pins {
			if pin.Obj == wl.Fixed && pin.OffX == 50 {
				found = true
			}
		}
	}
	if !found {
		t.Error("fixed pin lost during lowering")
	}
}

func TestInterpolatePlacesMembersNearCluster(t *testing.T) {
	p := chainProblem(40)
	h := Build(p, Options{MinObjs: 5, MaxLevels: 10})
	if len(h.Levels) < 2 {
		t.Fatal("no coarsening happened")
	}
	top := len(h.Levels) - 1
	// Move top-level clusters to distinctive positions.
	for i := 0; i < h.Levels[top].NumObjs(); i++ {
		h.Levels[top].X[i] = float64(100 + i*10)
		h.Levels[top].Y[i] = 42
	}
	for l := top - 1; l >= 0; l-- {
		h.Interpolate(l)
	}
	// Every fine object must sit near its (transitive) cluster.
	for i := 0; i < 40; i++ {
		c := i
		for _, m := range h.Maps {
			c = m[c]
		}
		cx := h.Levels[top].X[c]
		dx := math.Abs(h.Levels[0].X[i] - cx)
		if dx > 10 {
			t.Errorf("object %d interpolated %v away from cluster at %v", i, dx, cx)
		}
	}
	// Coincident members must be staggered apart.
	distinct := map[[2]float64]bool{}
	for i := 0; i < 40; i++ {
		distinct[[2]float64{h.Levels[0].X[i], h.Levels[0].Y[i]}] = true
	}
	if len(distinct) < 20 {
		t.Errorf("interpolation left too many coincident objects: %d distinct", len(distinct))
	}
}

func TestClusterCentroidIsAreaWeighted(t *testing.T) {
	p := chainProblem(2)
	p.Area[0] = 3
	p.Area[1] = 1
	p.X[0] = 0
	p.X[1] = 4
	next, mapping, ok := coarsen(p, Options{}.withDefaults())
	if !ok {
		t.Fatal("no merge")
	}
	c := mapping[0]
	if math.Abs(next.X[c]-1.0) > 1e-9 { // (3·0 + 1·4)/4
		t.Errorf("centroid = %v, want 1", next.X[c])
	}
}

func TestHugeNetsIgnoredForScoring(t *testing.T) {
	// A single net connecting everything must not drive clustering by
	// itself when over the degree cap.
	n := 30
	p := &Problem{
		Area:   make([]float64, n),
		HalfW:  make([]float64, n),
		HalfH:  make([]float64, n),
		Group:  make([]int, n),
		Region: make([]int, n),
		Macro:  make([]bool, n),
		X:      make([]float64, n),
		Y:      make([]float64, n),
	}
	big := wl.Net{Weight: 1}
	for i := 0; i < n; i++ {
		p.Area[i] = 1
		p.Group[i] = -1
		p.Region[i] = -1
		big.Pins = append(big.Pins, wl.PinRef{Obj: i})
	}
	p.Nets = []wl.Net{big}
	_, _, ok := coarsen(p, Options{MaxNetDegree: 16}.withDefaults())
	if ok {
		t.Error("degree-capped net still produced merges")
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	build := func() *Hierarchy {
		p := chainProblem(200)
		// Add random cross nets from a fixed seed for both runs.
		r := rand.New(rand.NewSource(99))
		for i := 0; i < 100; i++ {
			a, b := r.Intn(200), r.Intn(200)
			if a != b {
				p.Nets = append(p.Nets, wl.Net{Weight: 1, Pins: []wl.PinRef{{Obj: a}, {Obj: b}}})
			}
		}
		return Build(p, Options{MinObjs: 20})
	}
	h1 := build()
	h2 := build()
	_ = rng
	if len(h1.Levels) != len(h2.Levels) {
		t.Fatal("level counts differ between identical builds")
	}
	for l := range h1.Maps {
		for i := range h1.Maps[l] {
			if h1.Maps[l][i] != h2.Maps[l][i] {
				t.Fatalf("mapping differs at level %d obj %d", l, i)
			}
		}
	}
}
