package obs

import (
	"bytes"
	"encoding/json"
	"io"

	"repro/internal/atomicfile"
	"repro/internal/db"
	"repro/internal/metrics"
)

// ReportVersion is bumped whenever the report schema changes shape (the
// golden-file test pins the schema for each version).
const ReportVersion = 1

// Report is the versioned, machine-readable record of one run: what was
// placed, with which configuration, how each stage spent its time, how
// the optimization converged, and what it scored.
type Report struct {
	Version int    `json:"version"`
	Tool    string `json:"tool,omitempty"`

	// Canceled marks a run that was aborted by cancellation or timeout;
	// the rest of the report describes the state the run died in (the
	// CLIs and placerd still flush a full report on cancellation).
	Canceled bool `json:"canceled,omitempty"`

	Design *DesignInfo `json:"design,omitempty"`
	// Config is the tool configuration (the placer's core.Config, or a
	// CLI-specific record for the evaluator).
	Config any `json:"config,omitempty"`

	// Spans is the stage timing tree in creation order.
	Spans []*SpanRecord `json:"spans,omitempty"`
	// Attribution sums wall time and resource deltas per top-level stage
	// (gp, routability, legalize, dp, route, ...), keyed by root span
	// name. Resource fields are only populated when the recorder sampled
	// resources (Config.SampleResources); wall time is always attributed.
	Attribution map[string]*ResourceRecord `json:"attribution,omitempty"`
	// GPTrace and RouteTrace are the per-round convergence curves.
	GPTrace    []GPRound    `json:"gp_trace,omitempty"`
	RouteTrace []RouteRound `json:"route_trace,omitempty"`

	// Metrics is the final paper-style result row.
	Metrics *metrics.Row `json:"metrics,omitempty"`

	// Heatmaps holds the captured per-round congestion maps (only when
	// capture was requested).
	Heatmaps []Heatmap `json:"heatmaps,omitempty"`

	// Fleet attributes the run to the fleet worker that executed it. The
	// fleet coordinator sets it on reports fetched from workers; it is
	// absent on single-node runs.
	Fleet *FleetAttribution `json:"fleet,omitempty"`

	// Eco describes the incremental (ECO) path when the run repaired a
	// base placement instead of placing from scratch; absent otherwise.
	Eco *EcoSummary `json:"eco,omitempty"`
}

// EcoSummary annotates a report produced by the incremental (ECO) path.
type EcoSummary struct {
	// BaseJob or BaseFingerprint identifies the placement that was reused
	// (whichever the caller provided).
	BaseJob         string `json:"base_job,omitempty"`
	BaseFingerprint string `json:"base_fingerprint,omitempty"`
	// ChangedCells counts re-placed cells (changed + added), Windows the
	// repair rectangles, and ReuseRatio the fraction of cells whose base
	// position transferred untouched.
	ChangedCells int     `json:"changed_cells"`
	Windows      int     `json:"windows"`
	ReuseRatio   float64 `json:"reuse_ratio"`
	// FellBack marks a delta that was out of windowed repair's reach
	// (macro delta or dirty fraction too large): the run completed as a
	// full from-scratch place.
	FellBack bool `json:"fell_back,omitempty"`
}

// FleetAttribution records which fleet worker produced a run and on which
// assignment attempt (1 = never reassigned).
type FleetAttribution struct {
	Worker  string `json:"worker"`
	Addr    string `json:"addr,omitempty"`
	Attempt int    `json:"attempt"`
	// Resumed marks a run that restarted from a checkpoint journaled by an
	// earlier attempt on another worker.
	Resumed bool `json:"resumed,omitempty"`
}

// SpanRecord is the serialized form of a Span subtree. Times are
// milliseconds; StartMS is relative to recorder creation.
type SpanRecord struct {
	Name     string           `json:"name"`
	StartMS  float64          `json:"start_ms"`
	DurMS    float64          `json:"dur_ms"`
	Counters map[string]int64 `json:"counters,omitempty"`
	// Resources is the span's runtime-resource delta (only when the
	// recorder sampled resources).
	Resources *ResourceRecord `json:"resources,omitempty"`
	Children  []*SpanRecord   `json:"children,omitempty"`
}

// DesignInfo summarizes the placed design for the report header.
type DesignInfo struct {
	Name         string  `json:"name"`
	Cells        int     `json:"cells"`
	StdCells     int     `json:"std_cells"`
	Macros       int     `json:"macros"`
	MovableMacro int     `json:"movable_macros"`
	Terminals    int     `json:"terminals"`
	Nets         int     `json:"nets"`
	Pins         int     `json:"pins"`
	Fences       int     `json:"fences"`
	Modules      int     `json:"modules"`
	Utilization  float64 `json:"utilization"`
	DieW         float64 `json:"die_w"`
	DieH         float64 `json:"die_h"`
	HasRouteGrid bool    `json:"has_route_grid"`
}

// DescribeDesign builds the report's design summary from a design.
func DescribeDesign(d *db.Design) *DesignInfo {
	s := d.ComputeStats()
	return &DesignInfo{
		Name:         s.Name,
		Cells:        s.NumCells,
		StdCells:     s.NumStdCells,
		Macros:       s.NumMacros,
		MovableMacro: s.NumMovMacro,
		Terminals:    s.NumTerms,
		Nets:         s.NumNets,
		Pins:         s.NumPins,
		Fences:       s.NumRegions,
		Modules:      s.NumModules,
		Utilization:  s.Utilization,
		DieW:         s.DieW,
		DieH:         s.DieH,
		HasRouteGrid: d.Route != nil,
	}
}

// BuildReport snapshots the recorder's telemetry into a Report. The
// caller fills in Tool, Design, Config and Metrics. Nil recorder yields
// an empty (but valid, versioned) report.
func (r *Recorder) BuildReport() *Report {
	rep := &Report{Version: ReportVersion}
	if r == nil {
		return rep
	}
	r.mu.Lock()
	spans := append([]*Span(nil), r.spans...)
	rep.GPTrace = append([]GPRound(nil), r.gp...)
	rep.RouteTrace = append([]RouteRound(nil), r.route...)
	rep.Heatmaps = append([]Heatmap(nil), r.heat...)
	r.mu.Unlock()
	for _, s := range spans {
		rep.Spans = append(rep.Spans, s.record(r.start))
	}
	if len(rep.Spans) > 0 {
		rep.Attribution = attribute(rep.Spans)
	}
	return rep
}

// attribute folds the root spans into per-stage cost buckets. Root spans
// with the same name (the router's repeated "route" spans, say) sum into
// one bucket.
func attribute(roots []*SpanRecord) map[string]*ResourceRecord {
	out := make(map[string]*ResourceRecord, len(roots))
	for _, s := range roots {
		b := out[s.Name]
		if b == nil {
			b = &ResourceRecord{}
			out[s.Name] = b
		}
		b.add(s.Resources, s.DurMS)
	}
	return out
}

// WriteJSON writes the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteFile writes the report to path as indented JSON, atomically
// (temp file + fsync + rename): a crash mid-write leaves the previous
// report or none, never a torn report.json.
func (rep *Report) WriteFile(path string) error {
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		return err
	}
	return atomicfile.WriteFile(path, buf.Bytes(), 0o644)
}
