package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/atomicfile"
)

// Chrome trace-event export: a Report's span tree and per-round GP/route
// convergence traces rendered as the Trace Event Format JSON that
// Perfetto (https://ui.perfetto.dev) and chrome://tracing load directly.
// Spans become complete ("X") events on one thread track — nesting falls
// out of time containment — and the convergence traces become counter
// ("C") series sampled at each round's t_ms stamp, so HPWL and overflow
// curves render right under the stage timeline that produced them.
//
// The emitted schema is pinned by a golden file
// (testdata/trace.golden.json), like the report schema.

// traceEvent is one Trace Event Format entry. Field order is the
// serialization order, which the golden test pins.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds since trace origin
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the document shape Perfetto's JSON importer expects.
type chromeTrace struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

const (
	tracePid     = 1
	traceTidMain = 1
)

// WriteChromeTrace renders the report as Chrome trace-event JSON.
func (rep *Report) WriteChromeTrace(w io.Writer) error {
	tool := rep.Tool
	if tool == "" {
		tool = "placer"
	}
	tr := chromeTrace{DisplayTimeUnit: "ms"}
	tr.TraceEvents = append(tr.TraceEvents,
		traceEvent{Name: "process_name", Ph: "M", Pid: tracePid, Args: map[string]any{"name": tool}},
		traceEvent{Name: "thread_name", Ph: "M", Pid: tracePid, Tid: traceTidMain, Args: map[string]any{"name": "stages"}},
	)
	for _, s := range rep.Spans {
		tr.TraceEvents = appendSpanEvents(tr.TraceEvents, s)
	}
	for _, g := range rep.GPTrace {
		ts := g.TMS * 1e3
		tr.TraceEvents = append(tr.TraceEvents,
			traceEvent{Name: "gp hpwl", Ph: "C", Ts: ts, Pid: tracePid, Args: map[string]any{"hpwl": g.HPWL}},
			traceEvent{Name: "gp overflow", Ph: "C", Ts: ts, Pid: tracePid,
				Args: map[string]any{"coarse": g.CoarseOverflow, "fine": g.FineOverflow}},
		)
	}
	for _, t := range rep.RouteTrace {
		ts := t.TMS * 1e3
		tr.TraceEvents = append(tr.TraceEvents,
			traceEvent{Name: "route overflow", Ph: "C", Ts: ts, Pid: tracePid, Args: map[string]any{"overflow": t.Overflow}},
			traceEvent{Name: "route rerouted", Ph: "C", Ts: ts, Pid: tracePid, Args: map[string]any{"rerouted": t.Rerouted}},
		)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&tr)
}

// appendSpanEvents emits the span subtree as complete events, depth
// first, all on the main thread track (Perfetto nests by containment).
// A span that never ended (a canceled run) is emitted with zero
// duration so the trace still loads.
func appendSpanEvents(evs []traceEvent, s *SpanRecord) []traceEvent {
	dur := s.DurMS * 1e3
	args := make(map[string]any, 2)
	if len(s.Counters) > 0 {
		args["counters"] = s.Counters
	}
	if s.Resources != nil {
		args["resources"] = s.Resources
	}
	if len(args) == 0 {
		args = nil
	}
	evs = append(evs, traceEvent{
		Name: s.Name, Ph: "X",
		Ts: s.StartMS * 1e3, Dur: &dur,
		Pid: tracePid, Tid: traceTidMain,
		Cat: "stage", Args: args,
	})
	for _, c := range s.Children {
		evs = appendSpanEvents(evs, c)
	}
	return evs
}

// WriteChromeTraceFile writes the trace to path atomically.
func (rep *Report) WriteChromeTraceFile(path string) error {
	var buf bytes.Buffer
	if err := rep.WriteChromeTrace(&buf); err != nil {
		return fmt.Errorf("obs: rendering chrome trace: %w", err)
	}
	return atomicfile.WriteFile(path, buf.Bytes(), 0o644)
}
