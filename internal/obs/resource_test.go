package obs

import (
	"runtime"
	"testing"
	"time"
)

// fakeSampler returns a deterministic resource sampler: every snapshot
// advances each series by a fixed stride, so span deltas are exact and
// golden files stay byte-stable.
func fakeSampler() func() resSample {
	n := uint64(0)
	return func() resSample {
		n++
		return resSample{
			cpuSeconds:     float64(n) * 0.5,
			allocBytes:     n * 4096,
			allocObjects:   n * 64,
			heapLiveBytes:  1 << 20, // flat live heap: zero delta
			gcCycles:       n,
			goroutines:     8,
			gcPauseSeconds: float64(n) * 0.001,
		}
	}
}

func TestResourceAttribution(t *testing.T) {
	rec := New(Config{SampleResources: true, Clock: fakeClock(time.Unix(0, 0), 100*time.Millisecond)})
	rec.sampleRes = fakeSampler()

	gp := rec.StartSpan("gp") // sample 1
	gp.End()                  // sample 2
	dp := rec.StartSpan("dp") // sample 3
	dp.End()                  // sample 4

	rep := rec.BuildReport()
	if len(rep.Spans) != 2 {
		t.Fatalf("spans = %d", len(rep.Spans))
	}
	res := rep.Spans[0].Resources
	if res == nil {
		t.Fatal("gp span has no resources")
	}
	// One sampler stride between start and end.
	if res.CPUSeconds != 0.5 || res.AllocBytes != 4096 || res.AllocObjects != 64 {
		t.Errorf("gp delta = %+v", res)
	}
	if res.HeapDeltaBytes != 0 || res.GCCycles != 1 || res.GCPauseMS != 1 || res.Goroutines != 8 {
		t.Errorf("gp delta = %+v", res)
	}

	if rep.Attribution == nil {
		t.Fatal("no attribution")
	}
	for _, stage := range []string{"gp", "dp"} {
		b := rep.Attribution[stage]
		if b == nil {
			t.Fatalf("attribution missing %q (have %v)", stage, rep.Attribution)
		}
		if b.AllocBytes != 4096 || b.CPUSeconds != 0.5 {
			t.Errorf("%s attribution = %+v", stage, b)
		}
		if b.WallMS <= 0 {
			t.Errorf("%s attribution wall = %v, want > 0", stage, b.WallMS)
		}
	}
}

// TestAttributionMergesRepeatedStages checks that root spans sharing a
// name (the router's repeated "route" spans) sum into one bucket.
func TestAttributionMergesRepeatedStages(t *testing.T) {
	rec := New(Config{SampleResources: true, Clock: fakeClock(time.Unix(0, 0), 100*time.Millisecond)})
	rec.sampleRes = fakeSampler()
	rec.StartSpan("route").End()
	rec.StartSpan("route").End()
	rep := rec.BuildReport()
	b := rep.Attribution["route"]
	if b == nil {
		t.Fatal("no route bucket")
	}
	if b.AllocBytes != 2*4096 || b.CPUSeconds != 1.0 || b.GCCycles != 2 {
		t.Errorf("merged bucket = %+v", b)
	}
}

// TestAttributionWithoutSampling: wall time is attributed even when
// resource sampling is off, and spans carry no resource record.
func TestAttributionWithoutSampling(t *testing.T) {
	rec := New(Config{Clock: fakeClock(time.Unix(0, 0), 100*time.Millisecond)})
	rec.StartSpan("legalize").End()
	rep := rec.BuildReport()
	if rep.Spans[0].Resources != nil {
		t.Error("resources recorded with sampling off")
	}
	b := rep.Attribution["legalize"]
	if b == nil || b.WallMS != 100 {
		t.Errorf("legalize bucket = %+v", b)
	}
	if b.AllocBytes != 0 || b.CPUSeconds != 0 {
		t.Errorf("resource fields set without sampling: %+v", b)
	}
}

// TestRealSamplerProducesPlausibleDeltas runs the real runtime/metrics
// sampler against a deliberately allocating span.
func TestRealSamplerProducesPlausibleDeltas(t *testing.T) {
	rec := New(Config{SampleResources: true})
	sp := rec.StartSpan("alloc")
	sink = make([]byte, 1<<20)
	runtime.KeepAlive(sink)
	sp.End()
	res := rec.BuildReport().Spans[0].Resources
	if res == nil {
		t.Fatal("no resources sampled")
	}
	if res.AllocBytes < 1<<20 {
		t.Errorf("alloc bytes = %d, want >= 1MiB", res.AllocBytes)
	}
	if res.Goroutines < 1 {
		t.Errorf("goroutines = %d", res.Goroutines)
	}
}

var sink []byte

// TestReadRuntimeSnapshot sanity-checks the absolute-value export the
// placerd metrics endpoint uses.
func TestReadRuntimeSnapshot(t *testing.T) {
	s := ReadRuntimeSnapshot()
	if s.Goroutines < 1 {
		t.Errorf("goroutines = %d", s.Goroutines)
	}
	if s.HeapLiveBytes <= 0 || s.TotalAllocBytes <= 0 {
		t.Errorf("heap = %d, alloc = %d", s.HeapLiveBytes, s.TotalAllocBytes)
	}
}

// TestDisabledSamplingAllocFree pins that an enabled recorder WITHOUT
// resource sampling keeps spans off the sampler path entirely, and the
// nil-recorder path stays allocation-free with the config knob present.
func TestDisabledSamplingAllocFree(t *testing.T) {
	var rec *Recorder
	if n := testing.AllocsPerRun(100, func() {
		s := rec.StartSpan("gp")
		s.End()
	}); n != 0 {
		t.Errorf("nil recorder span allocates %v per op, want 0", n)
	}
	on := New(Config{})
	if on.sampleRes != nil {
		t.Fatal("sampler installed without SampleResources")
	}
}
