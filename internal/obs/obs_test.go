package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a clock that advances by step on every read.
func fakeClock(start time.Time, step time.Duration) func() time.Time {
	t := start
	return func() time.Time {
		out := t
		t = t.Add(step)
		return out
	}
}

func TestSpanNestingAndTiming(t *testing.T) {
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	var now time.Time = base
	rec := New(Config{Clock: func() time.Time { return now }})

	gp := rec.StartSpan("gp")
	now = now.Add(10 * time.Millisecond)
	lvl := gp.StartSpan("level-0")
	now = now.Add(30 * time.Millisecond)
	lvl.End()
	now = now.Add(5 * time.Millisecond)
	gp.End()

	if got := lvl.Duration(); got != 30*time.Millisecond {
		t.Errorf("child duration = %v, want 30ms", got)
	}
	if got := gp.Duration(); got != 45*time.Millisecond {
		t.Errorf("parent duration = %v, want 45ms", got)
	}
	kids := gp.Children()
	if len(kids) != 1 || kids[0].Name() != "level-0" {
		t.Fatalf("children = %v", kids)
	}
	// End is idempotent.
	now = now.Add(time.Hour)
	gp.End()
	if got := gp.Duration(); got != 45*time.Millisecond {
		t.Errorf("duration after second End = %v, want 45ms", got)
	}

	rep := rec.BuildReport()
	if len(rep.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(rep.Spans))
	}
	sr := rep.Spans[0]
	if sr.Name != "gp" || sr.DurMS != 45 || len(sr.Children) != 1 {
		t.Errorf("span record = %+v", sr)
	}
	if c := sr.Children[0]; c.Name != "level-0" || c.StartMS != 10 || c.DurMS != 30 {
		t.Errorf("child record = %+v", c)
	}
}

func TestOpenSpanHasZeroDuration(t *testing.T) {
	rec := New(Config{Clock: fakeClock(time.Unix(0, 0), time.Millisecond)})
	sp := rec.StartSpan("open")
	if d := sp.Duration(); d != 0 {
		t.Errorf("open span duration = %v, want 0", d)
	}
	if sr := rec.BuildReport().Spans[0]; sr.DurMS != 0 {
		t.Errorf("open span record dur = %v, want 0", sr.DurMS)
	}
}

// TestCounterAggregationConcurrent must pass under -race: many
// goroutines hammer counters and child creation on a shared span.
func TestCounterAggregationConcurrent(t *testing.T) {
	rec := New(Config{})
	sp := rec.StartSpan("route")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp.Add("segments", 1)
				sp.Add("tiles", 3)
				if i%100 == 0 {
					c := sp.StartSpanf("w%d-%d", w, i)
					c.Add("probes", 2)
					c.End()
				}
				rec.RecordRouteRound(RouteRound{Context: "t", Round: i})
			}
		}(w)
	}
	wg.Wait()
	sp.End()
	if got := sp.Counter("segments"); got != workers*perWorker {
		t.Errorf("segments = %d, want %d", got, workers*perWorker)
	}
	if got := sp.Counter("tiles"); got != 3*workers*perWorker {
		t.Errorf("tiles = %d, want %d", got, 3*workers*perWorker)
	}
	if got := len(sp.Children()); got != workers*perWorker/100 {
		t.Errorf("children = %d, want %d", got, workers*perWorker/100)
	}
	if got := len(rec.RouteRounds()); got != workers*perWorker {
		t.Errorf("route rounds = %d, want %d", got, workers*perWorker)
	}
}

// TestNilRecorderNoOps drives the whole API through a nil recorder: the
// disabled state must be inert and crash-free.
func TestNilRecorderNoOps(t *testing.T) {
	var rec *Recorder
	if rec.Enabled() {
		t.Error("nil recorder enabled")
	}
	if rec.HeatmapsEnabled() {
		t.Error("nil recorder captures heatmaps")
	}
	sp := rec.StartSpan("x")
	if sp != nil {
		t.Fatal("nil recorder produced a span")
	}
	child := sp.StartSpan("y")
	child.Add("n", 1)
	child.End()
	sp.StartSpanf("z-%d", 1).End()
	ChildSpan(nil, rec, "w").End()
	rec.RecordGPRound(GPRound{})
	rec.RecordRouteRound(RouteRound{})
	rec.RecordHeatmap("h", 1, 1, []float64{1})
	if rec.GPRounds() != nil || rec.RouteRounds() != nil || rec.Heatmaps() != nil {
		t.Error("nil recorder returned traces")
	}
	rec.Log().Debug("discarded")
	rep := rec.BuildReport()
	if rep == nil || rep.Version != ReportVersion {
		t.Errorf("nil recorder report = %+v", rep)
	}
}

// TestDisabledPathAllocFree pins the disabled fast path at zero
// allocations: this is the overhead contract the placer's and router's
// hot loops rely on.
func TestDisabledPathAllocFree(t *testing.T) {
	var rec *Recorder
	var sp *Span
	if n := testing.AllocsPerRun(100, func() {
		if rec.Enabled() {
			t.Fatal("enabled")
		}
		s := rec.StartSpan("route")
		s.Add("segments", 1)
		c := s.StartSpan("round")
		c.End()
		s.End()
		sp.Add("n", 1)
		rec.RecordGPRound(GPRound{Level: 1, Lambda: 2})
		rec.RecordRouteRound(RouteRound{Round: 3})
	}); n != 0 {
		t.Errorf("disabled telemetry path allocates %v per op, want 0", n)
	}
}

func TestLogLevels(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	rec := New(Config{Logger: logger})
	rec.Log().Debug("gp round", "round", 3, "lambda", 0.5)
	if out := buf.String(); !strings.Contains(out, "gp round") || !strings.Contains(out, "lambda=0.5") {
		t.Errorf("log output %q missing fields", out)
	}
	// Logger-less recorder discards without crashing.
	New(Config{}).Log().Info("discarded")
}

func TestHeatmapCapture(t *testing.T) {
	rec := New(Config{CaptureHeatmaps: true})
	src := []float64{1, 2, 3, 4}
	rec.RecordHeatmap("round-0", 2, 2, src)
	src[0] = 99 // recorder must hold a copy
	hs := rec.Heatmaps()
	if len(hs) != 1 {
		t.Fatalf("heatmaps = %d", len(hs))
	}
	if hs[0].Label != "round-0" || hs[0].NX != 2 || hs[0].NY != 2 || hs[0].Cong[0] != 1 {
		t.Errorf("heatmap = %+v", hs[0])
	}
	// Capture off: dropped.
	off := New(Config{})
	off.RecordHeatmap("x", 1, 1, src)
	if len(off.Heatmaps()) != 0 {
		t.Error("heatmap captured with capture disabled")
	}
}
