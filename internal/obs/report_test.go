package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenReport builds a fully-populated report from deterministic
// inputs (fake clock, fixed traces, fake resource sampler) so its JSON
// is byte-stable.
func goldenReport() *Report {
	base := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	rec := New(Config{CaptureHeatmaps: true, Clock: fakeClock(base, 250*time.Millisecond)})
	rec.sampleRes = fakeSampler()

	gp := rec.StartSpan("gp")
	lvl := gp.StartSpan("level-0")
	round := lvl.StartSpan("round-0")
	round.Add("cg_iters", 30)
	round.End()
	lvl.Add("lambda_rounds", 1)
	lvl.Add("cg_iters", 30)
	lvl.End()
	gp.End()
	rt := rec.StartSpan("routability")
	rt.Add("iters", 2)
	rt.End()

	rec.RecordGPRound(GPRound{
		Level: 0, Phase: "gp", Round: 0,
		Lambda: 0.003, Mu: 0.001,
		CoarseOverflow: 0.42, FineOverflow: 0.61,
		FenceDist: 12.5, HPWL: 1.25e6, CGIters: 30,
	})
	rec.RecordGPRound(GPRound{
		Level: 0, Phase: "respread", Round: 1,
		Lambda: 0.006, Mu: 0.002,
		CoarseOverflow: 0.08, FineOverflow: 0.15,
		FenceDist: 0, HPWL: 1.31e6, CGIters: 18,
	})
	rec.RecordRouteRound(RouteRound{Context: "routability-0", Round: 0, Overflow: 240, Rerouted: 512, Batches: 0, WallMS: 12.5})
	rec.RecordRouteRound(RouteRound{Context: "routability-0", Round: 1, Overflow: 36, Rerouted: 120, Batches: 9, WallMS: 4.25})
	rec.RecordHeatmap("final", 2, 2, []float64{0.5, 1.25, 0.75, 1})

	b := db.NewBuilder("golden", geom.NewRect(0, 0, 100, 80))
	b.AddStdCell("c0", 2, 2)
	b.AddMacro("m0", 10, 10, true)
	d := b.MustDesign()

	rep := rec.BuildReport()
	rep.Tool = "placer"
	rep.Design = DescribeDesign(d)
	rep.Config = map[string]any{"model": "wa", "workers": 4}
	rep.Metrics = &metrics.Row{
		Design: "golden", Variant: "wa",
		HPWL: 1.3e6, ScaledHPWL: 1.36e6, RC: 101.5,
		ACE:      []float64{1.2, 1.1, 1.05, 1.0},
		Overflow: 0.08, Overlaps: 0, FenceViol: 0,
		GPTime: 1500 * time.Millisecond, TotalTime: 2250 * time.Millisecond,
	}
	return rep
}

// TestReportGolden pins the run-report JSON schema: any shape change
// must be deliberate (update the golden with -update and bump
// ReportVersion when the change is breaking).
func TestReportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "report.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report JSON differs from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
			path, buf.Bytes(), want)
	}
}

// TestReportRoundTrip checks the report (including the embedded
// metrics.Row custom marshalling) survives JSON round-tripping.
func TestReportRoundTrip(t *testing.T) {
	rep := goldenReport()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Version != ReportVersion || back.Tool != "placer" {
		t.Errorf("header = %d %q", back.Version, back.Tool)
	}
	if back.Design == nil || back.Design.Name != "golden" || back.Design.Cells != 2 {
		t.Errorf("design = %+v", back.Design)
	}
	if len(back.GPTrace) != 2 || back.GPTrace[1].Phase != "respread" {
		t.Errorf("gp trace = %+v", back.GPTrace)
	}
	if len(back.RouteTrace) != 2 || back.RouteTrace[1].Batches != 9 {
		t.Errorf("route trace = %+v", back.RouteTrace)
	}
	if back.Metrics == nil || back.Metrics.GPTime != 1500*time.Millisecond {
		t.Errorf("metrics = %+v", back.Metrics)
	}
	if len(back.Spans) != 2 || back.Spans[0].Children[0].Counters["lambda_rounds"] != 1 {
		t.Errorf("spans = %+v", back.Spans)
	}
	if len(back.Heatmaps) != 1 || back.Heatmaps[0].Cong[1] != 1.25 {
		t.Errorf("heatmaps = %+v", back.Heatmaps)
	}
}
