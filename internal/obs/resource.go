package obs

import (
	"math"
	"runtime/metrics"
)

// Resource attribution: when Config.SampleResources is set, every span
// snapshots a small set of runtime/metrics series at start and end, and
// its SpanRecord carries the deltas — CPU seconds, allocation volume,
// live-heap growth, GC activity — so BuildReport can say not just how
// long a stage (gp, routability, legalize, dp, route) took but what it
// cost the process. Sampling is a handful of microseconds per snapshot
// (one runtime/metrics.Read over seven series), which is noise at span
// granularity; it is still opt-in because the deltas are process-wide:
// with concurrent spans the attribution overlaps.
//
// The disabled paths stay free: a nil Recorder never reaches the
// sampler, and an enabled recorder without SampleResources keeps the
// pre-sampling span cost (no snapshot allocation, no metrics.Read).

// Names of the runtime/metrics series one snapshot reads. Series missing
// from the running Go version degrade to zero instead of failing.
const (
	mCPUTotal   = "/cpu/classes/total:cpu-seconds"
	mAllocBytes = "/gc/heap/allocs:bytes"
	mAllocObjs  = "/gc/heap/allocs:objects"
	mHeapLive   = "/memory/classes/heap/objects:bytes"
	mGCCycles   = "/gc/cycles/total:gc-cycles"
	mGoroutines = "/sched/goroutines:goroutines"
	mGCPauses   = "/sched/pauses/total/gc:seconds"
)

var sampleNames = []string{
	mCPUTotal, mAllocBytes, mAllocObjs, mHeapLive, mGCCycles, mGoroutines, mGCPauses,
}

// resSample is one snapshot of the sampled series, reduced to scalars.
type resSample struct {
	cpuSeconds     float64
	allocBytes     uint64
	allocObjects   uint64
	heapLiveBytes  uint64
	gcCycles       uint64
	goroutines     uint64
	gcPauseSeconds float64
}

// readResources takes one snapshot. It allocates the metrics.Sample
// scratch per call; sampling is opt-in and span-granular, so this is
// cold-path allocation by construction.
func readResources() resSample {
	samples := make([]metrics.Sample, len(sampleNames))
	for i, n := range sampleNames {
		samples[i].Name = n
	}
	metrics.Read(samples)
	var s resSample
	for i := range samples {
		v := &samples[i].Value
		switch samples[i].Name {
		case mCPUTotal:
			if v.Kind() == metrics.KindFloat64 {
				s.cpuSeconds = v.Float64()
			}
		case mAllocBytes:
			if v.Kind() == metrics.KindUint64 {
				s.allocBytes = v.Uint64()
			}
		case mAllocObjs:
			if v.Kind() == metrics.KindUint64 {
				s.allocObjects = v.Uint64()
			}
		case mHeapLive:
			if v.Kind() == metrics.KindUint64 {
				s.heapLiveBytes = v.Uint64()
			}
		case mGCCycles:
			if v.Kind() == metrics.KindUint64 {
				s.gcCycles = v.Uint64()
			}
		case mGoroutines:
			if v.Kind() == metrics.KindUint64 {
				s.goroutines = v.Uint64()
			}
		case mGCPauses:
			if v.Kind() == metrics.KindFloat64Histogram {
				s.gcPauseSeconds = histogramTotal(v.Float64Histogram())
			}
		}
	}
	return s
}

// histogramTotal approximates the cumulative sum of a runtime/metrics
// histogram by weighting each bucket's count with its midpoint (the
// boundary itself for the open-ended edge buckets). Deltas of this
// approximation track total GC pause time closely enough for stage
// attribution.
func histogramTotal(h *metrics.Float64Histogram) float64 {
	total := 0.0
	for i, count := range h.Counts {
		if count == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		var mid float64
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		default:
			mid = (lo + hi) / 2
		}
		total += float64(count) * mid
	}
	return total
}

// ResourceRecord is the serialized resource delta of one span (or one
// attribution bucket). All fields are deltas between the span's start
// and end snapshots except Goroutines, which is the count at span end.
type ResourceRecord struct {
	// WallMS is only set on attribution summaries (the span's own wall
	// time already lives in SpanRecord.DurMS).
	WallMS float64 `json:"wall_ms,omitempty"`
	// CPUSeconds is process CPU time consumed while the span was open
	// (user + GC + scavenger + idle, per runtime/metrics; approximate).
	CPUSeconds float64 `json:"cpu_seconds,omitempty"`
	// AllocBytes / AllocObjects are cumulative heap allocation deltas.
	AllocBytes   int64 `json:"alloc_bytes,omitempty"`
	AllocObjects int64 `json:"alloc_objects,omitempty"`
	// HeapDeltaBytes is live-heap growth (negative when GC freed more
	// than the span allocated).
	HeapDeltaBytes int64 `json:"heap_delta_bytes,omitempty"`
	// GCCycles and GCPauseMS are collector activity during the span.
	GCCycles  int64   `json:"gc_cycles,omitempty"`
	GCPauseMS float64 `json:"gc_pause_ms,omitempty"`
	// Goroutines is the goroutine count when the span ended.
	Goroutines int64 `json:"goroutines,omitempty"`
}

// delta reduces a start/end snapshot pair to the serialized record.
func delta(start, end resSample) *ResourceRecord {
	return &ResourceRecord{
		CPUSeconds:     end.cpuSeconds - start.cpuSeconds,
		AllocBytes:     int64(end.allocBytes) - int64(start.allocBytes),
		AllocObjects:   int64(end.allocObjects) - int64(start.allocObjects),
		HeapDeltaBytes: int64(end.heapLiveBytes) - int64(start.heapLiveBytes),
		GCCycles:       int64(end.gcCycles) - int64(start.gcCycles),
		GCPauseMS:      (end.gcPauseSeconds - start.gcPauseSeconds) * 1e3,
		Goroutines:     int64(end.goroutines),
	}
}

// add accumulates other into r (attribution buckets sum their spans).
func (r *ResourceRecord) add(other *ResourceRecord, wallMS float64) {
	r.WallMS += wallMS
	if other == nil {
		return
	}
	r.CPUSeconds += other.CPUSeconds
	r.AllocBytes += other.AllocBytes
	r.AllocObjects += other.AllocObjects
	r.HeapDeltaBytes += other.HeapDeltaBytes
	r.GCCycles += other.GCCycles
	r.GCPauseMS += other.GCPauseMS
	if other.Goroutines > r.Goroutines {
		r.Goroutines = other.Goroutines
	}
}

// RuntimeSnapshot is a point-in-time view of the Go runtime, for gauge
// exports (placerd /metrics).
type RuntimeSnapshot struct {
	Goroutines      int64
	HeapLiveBytes   int64
	TotalAllocBytes int64
	GCCycles        int64
	GCPauseSeconds  float64
	CPUSeconds      float64
}

// ReadRuntimeSnapshot samples the runtime series resource attribution
// uses, as absolute values.
func ReadRuntimeSnapshot() RuntimeSnapshot {
	s := readResources()
	return RuntimeSnapshot{
		Goroutines:      int64(s.goroutines),
		HeapLiveBytes:   int64(s.heapLiveBytes),
		TotalAllocBytes: int64(s.allocBytes),
		GCCycles:        int64(s.gcCycles),
		GCPauseSeconds:  s.gcPauseSeconds,
		CPUSeconds:      s.cpuSeconds,
	}
}
