package obs

import (
	"fmt"
	"sync"
	"time"
)

// Span is one timed region of the run, arranged hierarchically
// (stage → round → solve). Counters accumulate named int64 deltas;
// both counters and child creation are safe under concurrent writers.
// All methods are no-ops on a nil span, so disabled telemetry costs one
// nil check per call.
type Span struct {
	rec   *Recorder
	name  string
	start time.Time
	// resStart is the resource snapshot at span start (nil when the
	// recorder does not sample resources).
	resStart *resSample

	mu       sync.Mutex
	end      time.Time
	ended    bool
	counters map[string]int64
	children []*Span
	// res is the start→end resource delta, computed at End.
	res *ResourceRecord
}

// StartSpan opens a new root-level span.
func (r *Recorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{rec: r, name: name, start: r.now()}
	if r.sampleRes != nil {
		snap := r.sampleRes()
		s.resStart = &snap
	}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
	return s
}

// StartSpan opens a child span.
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{rec: s.rec, name: name, start: s.rec.now()}
	if s.rec.sampleRes != nil {
		snap := s.rec.sampleRes()
		c.resStart = &snap
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// StartSpanf is StartSpan with a formatted name; the format arguments
// are not evaluated on a nil span.
func (s *Span) StartSpanf(format string, args ...any) *Span {
	if s == nil {
		return nil
	}
	return s.StartSpan(fmt.Sprintf(format, args...))
}

// ChildSpan opens a span under parent when non-nil, else at the
// recorder's root — the shape used by components (like the router) that
// may run either inside a stage or standalone.
func ChildSpan(parent *Span, r *Recorder, name string) *Span {
	if parent != nil {
		return parent.StartSpan(name)
	}
	return r.StartSpan(name)
}

// End closes the span. Later End calls are ignored, so deferred and
// explicit closes compose.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.rec.now()
	var res *ResourceRecord
	if s.resStart != nil {
		res = delta(*s.resStart, s.rec.sampleRes())
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.end = now
		s.res = res
	}
	s.mu.Unlock()
}

// Add accumulates delta into the named counter.
func (s *Span) Add(counter string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64, 4)
	}
	s.counters[counter] += delta
	s.mu.Unlock()
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Counter reads a counter's current value (0 on nil or unknown).
func (s *Span) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// Duration returns end−start, or 0 while the span is open.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return 0
	}
	return s.end.Sub(s.start)
}

// Children returns the child spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// record converts the span subtree into its serializable form, with
// start offsets relative to origin.
func (s *Span) record(origin time.Time) *SpanRecord {
	s.mu.Lock()
	rec := &SpanRecord{
		Name:    s.name,
		StartMS: durMS(s.start.Sub(origin)),
	}
	if s.ended {
		rec.DurMS = durMS(s.end.Sub(s.start))
		rec.Resources = s.res
	}
	if len(s.counters) > 0 {
		rec.Counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			rec.Counters[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		rec.Children = append(rec.Children, c.record(origin))
	}
	return rec
}

func durMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
