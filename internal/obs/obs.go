// Package obs is the placer's structured telemetry layer: leveled
// logging on log/slog, hierarchical timed spans with counters
// (stage → round → CG solve), and a trace recorder that captures the
// per-round convergence state of global placement and global routing.
// A run's telemetry is assembled into a versioned, machine-readable
// Report (see report.go) that the CLIs emit with -report.
//
// The disabled state is a nil *Recorder: every method on Recorder and
// Span nil-checks and returns immediately, so instrumented hot paths pay
// one pointer comparison and allocate nothing (guarded by
// BenchmarkDisabled* and the AllocsPerRun tests). Recording is
// observation only — it never mutates placer or router state — so
// placement and routing results are byte-identical with telemetry on or
// off, at any worker count (internal/core's determinism test pins this).
package obs

import (
	"log/slog"
	"sync"
	"time"
)

// Config configures a Recorder.
type Config struct {
	// Logger receives the structured debug/info log stream. Nil disables
	// logging: Log() returns a shared discard logger.
	Logger *slog.Logger
	// CaptureHeatmaps retains a per-round copy of the routed tile
	// congestion map (memory-proportional to rounds × tiles, so opt-in).
	CaptureHeatmaps bool
	// SampleResources snapshots runtime/metrics (CPU seconds, allocation
	// volume, live-heap growth, GC cycles and pauses, goroutines) at every
	// span's start and end, so the run report attributes resource cost per
	// stage (see resource.go). Off, spans keep their pre-sampling cost.
	SampleResources bool
	// Clock overrides time.Now for spans and wall-time measurements
	// (tests inject a fake clock to make timings deterministic).
	Clock func() time.Time
	// OnEvent, when non-nil, is invoked synchronously (outside the
	// recorder lock, from the recording goroutine) for every GP and
	// routing round as it is recorded — the live-progress tap the serving
	// layer streams over SSE. The callback must be fast and must not
	// block; hand the event to a channel or buffer and return.
	OnEvent func(Event)
}

// Event is one live telemetry sample: exactly one of GP and Route is set.
type Event struct {
	GP    *GPRound    `json:"gp,omitempty"`
	Route *RouteRound `json:"route,omitempty"`
}

// Recorder is the telemetry sink for one run. All methods are safe for
// concurrent use and safe on a nil receiver (the disabled fast path).
type Recorder struct {
	log             *slog.Logger
	now             func() time.Time
	start           time.Time
	captureHeatmaps bool
	onEvent         func(Event)
	// sampleRes takes a resource snapshot for span attribution; nil means
	// sampling is off. Tests swap in a deterministic sampler.
	sampleRes func() resSample

	mu    sync.Mutex
	spans []*Span
	gp    []GPRound
	route []RouteRound
	heat  []Heatmap
}

// New builds an enabled recorder.
func New(cfg Config) *Recorder {
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	r := &Recorder{
		log:             cfg.Logger,
		now:             now,
		start:           now(),
		captureHeatmaps: cfg.CaptureHeatmaps,
		onEvent:         cfg.OnEvent,
	}
	if cfg.SampleResources {
		r.sampleRes = readResources
	}
	return r
}

// Enabled reports whether telemetry is being recorded. It is the
// nil-check fast path instrumentation sites use to skip argument
// preparation (HPWL evaluation, label formatting) entirely.
func (r *Recorder) Enabled() bool { return r != nil }

var nopLogger = slog.New(slog.DiscardHandler)

// Log returns the structured logger; on a nil or logger-less recorder it
// returns a shared discard logger, so call sites never nil-check.
func (r *Recorder) Log() *slog.Logger {
	if r == nil || r.log == nil {
		return nopLogger
	}
	return r.log
}

// Now reads the recorder's clock (zero time when disabled). Wall-time
// measurements go through this so tests can fake the clock.
func (r *Recorder) Now() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.now()
}

// GPRound is one λ round of global placement: the full convergence state
// NTUplace-style flows are tuned by watching.
type GPRound struct {
	// Level is the multilevel hierarchy level (0 = flattest).
	Level int `json:"level"`
	// Phase is "gp" for the main solve, "respread" for routability-loop
	// respreads.
	Phase string `json:"phase"`
	// Round is the λ-escalation round within the solve.
	Round int `json:"round"`

	Lambda float64 `json:"lambda"`
	Mu     float64 `json:"mu"`
	// CoarseOverflow is the convergence-check overflow (few cells per
	// bin); FineOverflow is at cell-scale resolution.
	CoarseOverflow float64 `json:"coarse_overflow"`
	FineOverflow   float64 `json:"fine_overflow"`
	// FenceDist is the largest center-to-fence distance over fenced
	// objects.
	FenceDist float64 `json:"fence_dist"`
	HPWL      float64 `json:"hpwl"`
	CGIters   int     `json:"cg_iters"`

	// TMS is when the round was recorded, in milliseconds since recorder
	// creation — the timestamp trace export (trace.go) places counter
	// samples at. Stamped by RecordGPRound.
	TMS float64 `json:"t_ms,omitempty"`
}

// RouteRound is one pass of the global router: the initial pattern pass
// (Round 0) or a rip-up-and-reroute round (Round ≥ 1).
type RouteRound struct {
	// Context labels which routing call this round belongs to
	// ("routability-0", "final", "evaluate", ...).
	Context string `json:"context"`
	Round   int    `json:"round"`
	// Overflow is the total demand above capacity after the round.
	Overflow float64 `json:"overflow"`
	// Rerouted is the number of segments (re)routed this round.
	Rerouted int `json:"rerouted"`
	// Batches is the number of disjoint parallel batches the round's
	// segments partitioned into (0 for the initial pattern pass).
	Batches int `json:"batches"`
	// WallMS is the round's wall-clock time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// TMS is when the round was recorded, in milliseconds since recorder
	// creation (see GPRound.TMS). Stamped by RecordRouteRound.
	TMS float64 `json:"t_ms,omitempty"`
}

// Heatmap is one captured congestion map (row-major, [ty*NX+tx]).
type Heatmap struct {
	Label string    `json:"label"`
	NX    int       `json:"nx"`
	NY    int       `json:"ny"`
	Cong  []float64 `json:"cong"`
}

// RecordGPRound appends one GP convergence sample and publishes it to the
// OnEvent subscriber.
func (r *Recorder) RecordGPRound(g GPRound) {
	if r == nil {
		return
	}
	g.TMS = durMS(r.now().Sub(r.start))
	r.mu.Lock()
	r.gp = append(r.gp, g)
	r.mu.Unlock()
	if r.onEvent != nil {
		// Copy into a branch-local so the parameter itself never escapes:
		// the hot no-subscriber path stays allocation-free.
		ev := g
		r.onEvent(Event{GP: &ev})
	}
}

// RecordRouteRound appends one routing round sample and publishes it to
// the OnEvent subscriber.
func (r *Recorder) RecordRouteRound(t RouteRound) {
	if r == nil {
		return
	}
	t.TMS = durMS(r.now().Sub(r.start))
	r.mu.Lock()
	r.route = append(r.route, t)
	r.mu.Unlock()
	if r.onEvent != nil {
		ev := t
		r.onEvent(Event{Route: &ev})
	}
}

// HeatmapsEnabled reports whether RecordHeatmap will retain data; call
// sites use it to skip building the congestion map at all.
func (r *Recorder) HeatmapsEnabled() bool {
	return r != nil && r.captureHeatmaps
}

// RecordHeatmap captures a copy of cong under label. A no-op unless
// heatmap capture was requested at construction.
func (r *Recorder) RecordHeatmap(label string, nx, ny int, cong []float64) {
	if !r.HeatmapsEnabled() {
		return
	}
	h := Heatmap{Label: label, NX: nx, NY: ny, Cong: append([]float64(nil), cong...)}
	r.mu.Lock()
	r.heat = append(r.heat, h)
	r.mu.Unlock()
}

// GPRounds returns a copy of the recorded GP trace (nil when disabled).
func (r *Recorder) GPRounds() []GPRound {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]GPRound(nil), r.gp...)
}

// RouteRounds returns a copy of the recorded routing trace.
func (r *Recorder) RouteRounds() []RouteRound {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]RouteRound(nil), r.route...)
}

// Heatmaps returns a copy of the captured heatmap list (the congestion
// slices are shared — callers must not mutate them).
func (r *Recorder) Heatmaps() []Heatmap {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Heatmap(nil), r.heat...)
}
