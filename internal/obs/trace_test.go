package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestChromeTraceGolden pins the Chrome trace-event JSON schema the same
// way report.golden.json pins the run-report schema: regenerate with
// -update, and treat any diff as a deliberate schema change.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenReport().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSON differs from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
			path, buf.Bytes(), want)
	}
}

// TestChromeTraceStructure decodes the emitted trace and checks the
// invariants Perfetto relies on: every span becomes a complete event
// whose name, start and duration match the report's span records, and
// the convergence counters land at the rounds' t_ms stamps.
func TestChromeTraceStructure(t *testing.T) {
	rep := goldenReport()
	var buf bytes.Buffer
	if err := rep.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	// Index complete events by name.
	type xev struct{ ts, dur float64 }
	complete := map[string]xev{}
	counters := 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			complete[e.Name] = xev{e.Ts, e.Dur}
		case "C":
			counters++
		case "M":
		default:
			t.Errorf("unexpected phase %q (event %q)", e.Ph, e.Name)
		}
	}

	// Every span record (recursively) must appear with matching times,
	// microseconds vs the report's milliseconds.
	var check func(s *SpanRecord)
	check = func(s *SpanRecord) {
		ev, ok := complete[s.Name]
		if !ok {
			t.Errorf("span %q missing from trace", s.Name)
			return
		}
		if ev.ts != s.StartMS*1e3 || ev.dur != s.DurMS*1e3 {
			t.Errorf("span %q: trace (ts=%v dur=%v) vs report (start=%v dur=%v ms)",
				s.Name, ev.ts, ev.dur, s.StartMS, s.DurMS)
		}
		for _, c := range s.Children {
			check(c)
		}
	}
	for _, s := range rep.Spans {
		check(s)
	}

	// Two counter series per GP round, two per route round.
	if want := 2*len(rep.GPTrace) + 2*len(rep.RouteTrace); counters != want {
		t.Errorf("counter events = %d, want %d", counters, want)
	}
}

// TestChromeTraceEmptyReport keeps a nil-recorder report loadable.
func TestChromeTraceEmptyReport(t *testing.T) {
	var rec *Recorder
	var buf bytes.Buffer
	if err := rec.BuildReport().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
}

func TestWriteChromeTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := goldenReport().WriteChromeTraceFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
}
