package obs

import "testing"

// BenchmarkDisabledSpan measures the nil-recorder span path — the cost
// every instrumented stage pays when telemetry is off. Must stay at
// 0 allocs/op (also pinned by TestDisabledPathAllocFree).
func BenchmarkDisabledSpan(b *testing.B) {
	var rec *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := rec.StartSpan("route")
		sp.Add("segments", 1)
		c := sp.StartSpan("round")
		c.End()
		sp.End()
	}
}

// BenchmarkDisabledTrace measures disabled trace recording — the
// per-round call sites in the GP loop and the router's warm reroute
// path. Must stay at 0 allocs/op.
func BenchmarkDisabledTrace(b *testing.B) {
	var rec *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rec.Enabled() {
			b.Fatal("enabled")
		}
		rec.RecordGPRound(GPRound{Level: 1, Round: i, Lambda: 0.5})
		rec.RecordRouteRound(RouteRound{Round: i, Overflow: 3})
	}
}

// BenchmarkEnabledSpan is the enabled-path reference point for the
// disabled benchmarks above.
func BenchmarkEnabledSpan(b *testing.B) {
	rec := New(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := rec.StartSpan("route")
		sp.Add("segments", 1)
		sp.End()
	}
}

// BenchmarkEnabledTrace is the enabled trace-recording reference point.
func BenchmarkEnabledTrace(b *testing.B) {
	rec := New(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.RecordRouteRound(RouteRound{Round: i, Overflow: 3})
	}
}

// BenchmarkSampledSpan measures a span with resource attribution on:
// two runtime/metrics snapshots (start + end). This is the per-stage
// cost -sample-resources adds — microseconds, but not free, which is
// why sampling is opt-in.
func BenchmarkSampledSpan(b *testing.B) {
	rec := New(Config{SampleResources: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.StartSpan("gp").End()
	}
}
