// Package hist is a fixed-bucket cumulative histogram in the Prometheus
// exposition shape: le-labeled upper bounds, an implicit +Inf bucket,
// and _sum/_count series. It started life as internal/serve's private
// job-latency histogram and was promoted so every subsystem exporting
// /metrics (job latency, per-stage placement seconds, future backends)
// shares one observe/render implementation.
package hist

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Histogram is a concurrency-safe cumulative histogram. The zero value
// is not usable; construct with New.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // cumulative: counts[i] covers v <= bounds[i]
	sum    float64
	n      uint64
}

// LatencySeconds returns the default seconds-scale bucket boundaries
// used for job and stage durations (100ms .. 2min).
func LatencySeconds() []float64 {
	return []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}
}

// New builds a histogram over the given ascending upper bounds. The
// bounds slice is copied. Panics on empty or unsorted bounds — bucket
// layouts are compile-time decisions, not runtime inputs.
func New(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("hist: no bounds")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("hist: bounds not ascending")
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	// Cumulative at observe time: every bucket whose bound covers v is
	// incremented, matching Prometheus bucket semantics directly.
	for i := len(h.bounds) - 1; i >= 0 && v <= h.bounds[i]; i-- {
		h.counts[i]++
	}
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Snapshot is a consistent copy of the histogram's state.
type Snapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] is the cumulative
	// count of observations <= Bounds[i] (the +Inf bucket is Count).
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the current state under the lock.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Snapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.n,
	}
}

// WriteProm renders the histogram's _bucket/_sum/_count series in the
// Prometheus text exposition format. labels is a pre-rendered constant
// label list (`stage="gp"`), or "" for none; the caller writes the
// # HELP / # TYPE header (one header may cover many label sets).
func (h *Histogram) WriteProm(w io.Writer, name, labels string) {
	s := h.Snapshot()
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i, b := range s.Bounds {
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, b, s.Counts[i])
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count)
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, s.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
}
