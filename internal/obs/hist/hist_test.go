package hist

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	h := New([]float64{1, 2, 5})

	// Exactly on a bound counts into that bucket (le semantics).
	h.Observe(1)
	h.Observe(2)
	h.Observe(5)
	// Between bounds.
	h.Observe(1.5)
	// Above every bound: only +Inf (Count).
	h.Observe(100)

	s := h.Snapshot()
	if got, want := s.Counts[0], uint64(1); got != want { // <= 1: {1}
		t.Errorf("counts[le=1] = %d, want %d", got, want)
	}
	if got, want := s.Counts[1], uint64(3); got != want { // <= 2: {1, 2, 1.5}
		t.Errorf("counts[le=2] = %d, want %d", got, want)
	}
	if got, want := s.Counts[2], uint64(4); got != want { // <= 5: all but 100
		t.Errorf("counts[le=5] = %d, want %d", got, want)
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if s.Sum != 1+2+5+1.5+100 {
		t.Errorf("sum = %g", s.Sum)
	}
}

// TestCumulativeCounts pins the Prometheus invariant: bucket counts are
// monotonically non-decreasing and the +Inf bucket equals Count.
func TestCumulativeCounts(t *testing.T) {
	h := New(LatencySeconds())
	for _, v := range []float64{0.05, 0.2, 0.2, 0.7, 3, 40, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	prev := uint64(0)
	for i, c := range s.Counts {
		if c < prev {
			t.Errorf("bucket %d (le=%g) count %d < previous %d", i, s.Bounds[i], c, prev)
		}
		prev = c
	}
	if prev > s.Count {
		t.Errorf("last bucket %d exceeds total count %d", prev, s.Count)
	}
}

func TestNewValidation(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":    {},
		"unsorted": {2, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%s) did not panic", name)
				}
			}()
			New(bounds)
		}()
	}
}

// TestConcurrentObserve hammers Observe from many goroutines; run under
// -race this is the data-race check, and the final count pins that no
// observation was lost.
func TestConcurrentObserve(t *testing.T) {
	h := New([]float64{0.5, 1, 2})
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%4) * 0.6)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Errorf("count = %d, want %d", s.Count, goroutines*per)
	}
	// 0 and 0.6*... values: everything <= 2 except 0.6*3 = 1.8 <= 2 too,
	// so the last bucket must equal the total.
	if s.Counts[len(s.Counts)-1] != s.Count {
		t.Errorf("last bucket = %d, want %d", s.Counts[len(s.Counts)-1], s.Count)
	}
}

func TestWriteProm(t *testing.T) {
	h := New([]float64{1, 5})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(10)

	var plain bytes.Buffer
	h.WriteProm(&plain, "x_seconds", "")
	want := strings.Join([]string{
		`x_seconds_bucket{le="1"} 1`,
		`x_seconds_bucket{le="5"} 2`,
		`x_seconds_bucket{le="+Inf"} 3`,
		`x_seconds_sum 13.5`,
		`x_seconds_count 3`,
	}, "\n") + "\n"
	if plain.String() != want {
		t.Errorf("plain exposition:\n%s--- want ---\n%s", plain.String(), want)
	}

	var labeled bytes.Buffer
	h.WriteProm(&labeled, "x_seconds", `stage="gp"`)
	for _, line := range []string{
		`x_seconds_bucket{stage="gp",le="1"} 1`,
		`x_seconds_bucket{stage="gp",le="+Inf"} 3`,
		`x_seconds_sum{stage="gp"} 13.5`,
		`x_seconds_count{stage="gp"} 3`,
	} {
		if !strings.Contains(labeled.String(), line) {
			t.Errorf("labeled exposition missing %q:\n%s", line, labeled.String())
		}
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	h := New([]float64{1})
	h.Observe(0.5)
	s := h.Snapshot()
	s.Counts[0] = 999
	s.Bounds[0] = 999
	if got := h.Snapshot(); got.Counts[0] != 1 || got.Bounds[0] != 1 {
		t.Errorf("mutating a snapshot leaked into the histogram: %+v", got)
	}
}
