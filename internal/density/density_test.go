package density

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func newTestGrid() *Grid {
	return NewGrid(geom.NewRect(0, 0, 100, 100), 10, 10, 0.8)
}

func TestGridGeometry(t *testing.T) {
	g := newTestGrid()
	if g.BinW != 10 || g.BinH != 10 {
		t.Fatalf("bin dims %v x %v", g.BinW, g.BinH)
	}
	r := g.binRect(0, 0)
	if r != geom.NewRect(0, 0, 10, 10) {
		t.Errorf("binRect(0,0) = %v", r)
	}
	r = g.binRect(9, 9)
	if r != geom.NewRect(90, 90, 100, 100) {
		t.Errorf("binRect(9,9) = %v", r)
	}
}

func TestAddFixedAccounting(t *testing.T) {
	g := newTestGrid()
	g.AddFixed(geom.NewRect(0, 0, 15, 10))
	if got := g.Base(0, 0); got != 100 {
		t.Errorf("bin (0,0) base = %v, want 100", got)
	}
	if got := g.Base(1, 0); got != 50 {
		t.Errorf("bin (1,0) base = %v, want 50", got)
	}
	if got := g.Base(2, 0); got != 0 {
		t.Errorf("bin (2,0) base = %v, want 0", got)
	}
	// Capacity reflects the target density over free area.
	if got := g.capArea[0]; got != 0 {
		t.Errorf("blocked bin capacity = %v", got)
	}
	if got := g.capArea[1]; math.Abs(got-0.8*50) > 1e-9 {
		t.Errorf("half-blocked bin capacity = %v, want 40", got)
	}
}

func TestBellShape(t *testing.T) {
	hw, wb := 3.0, 2.0
	// Center: full potential.
	p0, dp0 := bell(0, hw, wb)
	if p0 != 1 || dp0 != 0 {
		t.Errorf("bell(0) = %v, %v", p0, dp0)
	}
	// Beyond support: zero.
	p, dp := bell(hw+2*wb+0.001, hw, wb)
	if p != 0 || dp != 0 {
		t.Errorf("bell beyond support = %v, %v", p, dp)
	}
	// Continuity at the inner/outer boundary.
	d0 := hw + wb
	pIn, dIn := bell(d0-1e-9, hw, wb)
	pOut, dOut := bell(d0+1e-9, hw, wb)
	if math.Abs(pIn-pOut) > 1e-6 {
		t.Errorf("bell value discontinuous at %v: %v vs %v", d0, pIn, pOut)
	}
	if math.Abs(dIn-dOut) > 1e-6 {
		t.Errorf("bell derivative discontinuous at %v: %v vs %v", d0, dIn, dOut)
	}
	// Monotone decreasing on [0, support].
	prev := 1.1
	for d := 0.0; d <= hw+2*wb; d += 0.05 {
		p, _ := bell(d, hw, wb)
		if p > prev+1e-12 {
			t.Fatalf("bell not monotone at d=%v", d)
		}
		prev = p
	}
}

func TestAreaConservation(t *testing.T) {
	g := newTestGrid()
	rng := rand.New(rand.NewSource(3))
	n := 40
	objs := make([]Obj, n)
	x := make([]float64, n)
	y := make([]float64, n)
	var want float64
	for i := range objs {
		objs[i] = Obj{HalfW: 1 + rng.Float64()*4, HalfH: 1 + rng.Float64()*2, Area: 5 + rng.Float64()*20}
		// Keep objects in the interior so no bell mass is clipped.
		x[i] = 20 + rng.Float64()*60
		y[i] = 20 + rng.Float64()*60
		want += objs[i].Area
	}
	g.Penalty(objs, x, y, nil, nil)
	if got := g.TotalDeposited(); math.Abs(got-want) > 1e-6*want {
		t.Errorf("deposited %v, want %v", got, want)
	}
}

func TestPenaltyGradientMatchesFiniteDifference(t *testing.T) {
	g := NewGrid(geom.NewRect(0, 0, 60, 60), 6, 6, 0.9)
	g.AddFixed(geom.NewRect(0, 0, 20, 20))
	rng := rand.New(rand.NewSource(5))
	n := 6
	objs := make([]Obj, n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range objs {
		objs[i] = Obj{HalfW: 2 + rng.Float64()*3, HalfH: 2 + rng.Float64()*3, Area: 30 + rng.Float64()*50}
		x[i] = 10 + rng.Float64()*40
		y[i] = 10 + rng.Float64()*40
	}
	gx := make([]float64, n)
	gy := make([]float64, n)
	g.Penalty(objs, x, y, gx, gy)
	const h = 1e-5
	for i := 0; i < n; i++ {
		orig := x[i]
		x[i] = orig + h
		fp := g.Penalty(objs, x, y, nil, nil)
		x[i] = orig - h
		fm := g.Penalty(objs, x, y, nil, nil)
		x[i] = orig
		fd := (fp - fm) / (2 * h)
		if math.Abs(fd-gx[i]) > 1e-3*(1+math.Abs(fd)) {
			t.Errorf("x gradient obj %d: analytic %v fd %v", i, gx[i], fd)
		}
		orig = y[i]
		y[i] = orig + h
		fp = g.Penalty(objs, x, y, nil, nil)
		y[i] = orig - h
		fm = g.Penalty(objs, x, y, nil, nil)
		y[i] = orig
		fd = (fp - fm) / (2 * h)
		if math.Abs(fd-gy[i]) > 1e-3*(1+math.Abs(fd)) {
			t.Errorf("y gradient obj %d: analytic %v fd %v", i, gy[i], fd)
		}
	}
}

func TestGradientPushesApart(t *testing.T) {
	// Two identical objects stacked at the same point: gradients must
	// point in opposite directions (or both be pushed outward), and a
	// descent step must reduce the penalty.
	g := newTestGrid()
	objs := []Obj{
		{HalfW: 5, HalfH: 5, Area: 100},
		{HalfW: 5, HalfH: 5, Area: 100},
	}
	x := []float64{50, 51}
	y := []float64{50, 50}
	gx := make([]float64, 2)
	gy := make([]float64, 2)
	before := g.Penalty(objs, x, y, gx, gy)
	// Object 1 sits right of object 0: pushing 1 right reduces overlap.
	if gx[1] >= 0 {
		t.Errorf("expected negative-penalty direction to the right, gx[1] = %v", gx[1])
	}
	step := 2.0 / math.Max(math.Abs(gx[0]), math.Abs(gx[1]))
	x[0] -= step * gx[0]
	x[1] -= step * gx[1]
	after := g.Penalty(objs, x, y, nil, nil)
	if after >= before {
		t.Errorf("descent step did not reduce penalty: %v -> %v", before, after)
	}
}

func TestOverflowMetric(t *testing.T) {
	g := NewGrid(geom.NewRect(0, 0, 100, 100), 10, 10, 1.0)
	// One object filling one bin exactly: no overflow at target 1.
	objs := []Obj{{HalfW: 5, HalfH: 5, Area: 100}}
	x := []float64{15}
	y := []float64{15}
	if ov := g.Overflow(objs, x, y); ov > 1e-9 {
		t.Errorf("single aligned object overflow = %v", ov)
	}
	// Two objects in the same bin: half the area overflows.
	objs = append(objs, Obj{HalfW: 5, HalfH: 5, Area: 100})
	x = append(x, 15)
	y = append(y, 15)
	ov := g.Overflow(objs, x, y)
	if math.Abs(ov-0.5) > 1e-9 {
		t.Errorf("stacked objects overflow = %v, want 0.5", ov)
	}
}

func TestOverflowRespectsBase(t *testing.T) {
	g := NewGrid(geom.NewRect(0, 0, 100, 100), 10, 10, 1.0)
	g.AddFixed(geom.NewRect(10, 10, 20, 20)) // block bin (1,1)
	objs := []Obj{{HalfW: 5, HalfH: 5, Area: 100}}
	x := []float64{15}
	y := []float64{15}
	if ov := g.Overflow(objs, x, y); math.Abs(ov-1.0) > 1e-9 {
		t.Errorf("object on blocked bin overflow = %v, want 1", ov)
	}
}

func TestDensityMap(t *testing.T) {
	g := NewGrid(geom.NewRect(0, 0, 100, 100), 10, 10, 1.0)
	objs := []Obj{{HalfW: 5, HalfH: 5, Area: 100}}
	x := []float64{15}
	y := []float64{15}
	m := g.DensityMap(objs, x, y)
	if math.Abs(m[1*10+1]-1.0) > 1e-9 {
		t.Errorf("bin (1,1) density = %v, want 1", m[11])
	}
	if m[0] != 0 {
		t.Errorf("bin (0,0) density = %v, want 0", m[0])
	}
}

func TestSmallObjectsStillSpread(t *testing.T) {
	// Objects much smaller than a bin must produce non-zero gradients
	// thanks to the effHalf widening.
	g := newTestGrid()
	objs := []Obj{
		{HalfW: 0.5, HalfH: 0.5, Area: 1},
		{HalfW: 0.5, HalfH: 0.5, Area: 1},
	}
	x := []float64{50, 50.3}
	y := []float64{50, 50}
	gx := make([]float64, 2)
	gy := make([]float64, 2)
	g.Penalty(objs, x, y, gx, gy)
	if gx[0] == 0 && gx[1] == 0 {
		t.Error("tiny stacked objects produced zero gradient")
	}
}

func TestPenaltyDropsAsObjectsSpread(t *testing.T) {
	g := newTestGrid()
	n := 16
	objs := make([]Obj, n)
	for i := range objs {
		objs[i] = Obj{HalfW: 4, HalfH: 4, Area: 64}
	}
	// Clumped.
	xc := make([]float64, n)
	yc := make([]float64, n)
	for i := range xc {
		xc[i] = 50 + float64(i%4)
		yc[i] = 50 + float64(i/4)
	}
	clumped := g.Penalty(objs, xc, yc, nil, nil)
	// Uniform 4x4 arrangement.
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = 12.5 + 25*float64(i%4)
		ys[i] = 12.5 + 25*float64(i/4)
	}
	spread := g.Penalty(objs, xs, ys, nil, nil)
	if spread >= clumped {
		t.Errorf("spread penalty %v should be below clumped %v", spread, clumped)
	}
}

func BenchmarkPenaltyWithGradient(b *testing.B) {
	g := NewGrid(geom.NewRect(0, 0, 1000, 1000), 64, 64, 0.8)
	rng := rand.New(rand.NewSource(31))
	n := 5000
	objs := make([]Obj, n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range objs {
		objs[i] = Obj{HalfW: 2 + rng.Float64()*6, HalfH: 6, Area: 50}
		x[i] = rng.Float64() * 1000
		y[i] = rng.Float64() * 1000
	}
	gx := make([]float64, n)
	gy := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Penalty(objs, x, y, gx, gy)
	}
}

func TestDerateNarrowChannels(t *testing.T) {
	// Two macros with a 10-unit channel between them (bins are 10 wide):
	// the single channel column between x=40..50 must derate.
	g := NewGrid(geom.NewRect(0, 0, 100, 100), 10, 10, 1.0)
	g.AddFixed(geom.NewRect(0, 20, 40, 80))
	g.AddFixed(geom.NewRect(50, 20, 100, 80))
	before := g.capArea[5*10+4] // bin (4,5) in the channel
	n := g.DerateNarrowChannels(25, 0.5)
	if n == 0 {
		t.Fatal("no bins derated")
	}
	after := g.capArea[5*10+4]
	if math.Abs(after-before*0.5) > 1e-9 {
		t.Errorf("channel bin capacity %v, want %v", after, before*0.5)
	}
	// Open area far from macros must be untouched.
	if g.capArea[0] != 1.0*100 {
		t.Errorf("open bin capacity changed: %v", g.capArea[0])
	}
}

func TestDerateIgnoresWideChannels(t *testing.T) {
	// 30-unit channel with a 25-unit threshold: no derating.
	g := NewGrid(geom.NewRect(0, 0, 100, 100), 10, 10, 1.0)
	g.AddFixed(geom.NewRect(0, 20, 30, 80))
	g.AddFixed(geom.NewRect(60, 20, 100, 80))
	if n := g.DerateNarrowChannels(25, 0.5); n != 0 {
		t.Errorf("wide channel derated %d bins", n)
	}
}

func TestDerateRequiresBothBounds(t *testing.T) {
	// A single macro: free bins beside it touch the die edge, so they are
	// not channels.
	g := NewGrid(geom.NewRect(0, 0, 100, 100), 10, 10, 1.0)
	g.AddFixed(geom.NewRect(40, 40, 60, 60))
	if n := g.DerateNarrowChannels(35, 0.5); n != 0 {
		t.Errorf("edge-adjacent area derated %d bins", n)
	}
}

func TestParallelPenaltyMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g1 := NewGrid(geom.NewRect(0, 0, 200, 200), 24, 24, 0.8)
	g2 := NewGrid(geom.NewRect(0, 0, 200, 200), 24, 24, 0.8)
	g1.AddFixed(geom.NewRect(30, 30, 80, 90))
	g2.AddFixed(geom.NewRect(30, 30, 80, 90))
	g2.SetWorkers(5)
	n := 300
	objs := make([]Obj, n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range objs {
		objs[i] = Obj{HalfW: 1 + rng.Float64()*4, HalfH: 2 + rng.Float64()*3, Area: 10 + rng.Float64()*30}
		x[i] = rng.Float64() * 200
		y[i] = rng.Float64() * 200
	}
	gx1 := make([]float64, n)
	gy1 := make([]float64, n)
	gx2 := make([]float64, n)
	gy2 := make([]float64, n)
	v1 := g1.Penalty(objs, x, y, gx1, gy1)
	v2 := g2.Penalty(objs, x, y, gx2, gy2)
	if math.Abs(v1-v2) > 1e-6*(1+math.Abs(v1)) {
		t.Errorf("value differs: serial %v parallel %v", v1, v2)
	}
	for i := 0; i < n; i++ {
		if math.Abs(gx1[i]-gx2[i]) > 1e-6*(1+math.Abs(gx1[i])) ||
			math.Abs(gy1[i]-gy2[i]) > 1e-6*(1+math.Abs(gy1[i])) {
			t.Fatalf("gradient differs at obj %d: (%v,%v) vs (%v,%v)", i, gx1[i], gy1[i], gx2[i], gy2[i])
		}
	}
	// Value-only path too.
	if v1b, v2b := g1.Penalty(objs, x, y, nil, nil), g2.Penalty(objs, x, y, nil, nil); math.Abs(v1b-v2b) > 1e-6*(1+v1b) {
		t.Errorf("value-only differs: %v vs %v", v1b, v2b)
	}
}

func TestSetWorkersSmallInputFallsBack(t *testing.T) {
	g := NewGrid(geom.NewRect(0, 0, 100, 100), 10, 10, 0.8)
	g.SetWorkers(8)
	objs := []Obj{{HalfW: 2, HalfH: 2, Area: 16}}
	x := []float64{50}
	y := []float64{50}
	// Single object: serial path must be used without panicking.
	if v := g.Penalty(objs, x, y, nil, nil); v <= 0 {
		t.Errorf("penalty = %v", v)
	}
}

func BenchmarkPenaltyParallel(b *testing.B) {
	g := NewGrid(geom.NewRect(0, 0, 1000, 1000), 64, 64, 0.8)
	g.SetWorkers(0)
	rng := rand.New(rand.NewSource(31))
	n := 5000
	objs := make([]Obj, n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range objs {
		objs[i] = Obj{HalfW: 2 + rng.Float64()*6, HalfH: 6, Area: 50}
		x[i] = rng.Float64() * 1000
		y[i] = rng.Float64() * 1000
	}
	gx := make([]float64, n)
	gy := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Penalty(objs, x, y, gx, gy)
	}
}
