package density

import (
	"sync"

	"repro/internal/par"
)

// bellScratch is per-worker scratch for bell evaluation.
type bellScratch struct {
	px, py   []float64
	dpx, dpy []float64
	demand   []float64
}

func (s *bellScratch) ensure(span, bins int) {
	if cap(s.px) < span {
		s.px = make([]float64, span*2)
		s.py = make([]float64, span*2)
		s.dpx = make([]float64, span*2)
		s.dpy = make([]float64, span*2)
	}
	if len(s.demand) < bins {
		s.demand = make([]float64, bins)
	}
}

// SetWorkers enables parallel Penalty evaluation with the given worker
// count (≤ 0 selects the shared automatic policy — par.Workers, honoring
// the REPRO_WORKERS override; 1 restores serial evaluation). Results
// match the serial path up to floating-point reassociation in the demand
// reduction, deterministically for a fixed worker count.
func (g *Grid) SetWorkers(w int) {
	w = par.Workers(w)
	g.workers = w
	if w > 1 && len(g.scratch) < w {
		g.scratch = make([]bellScratch, w)
	}
}

// depositRange deposits objects [lo, hi) into dst using scr.
func (g *Grid) depositRange(objs []Obj, x, y []float64, lo, hi int, dst []float64, scr *bellScratch) {
	for i := lo; i < hi; i++ {
		hw := effHalf(objs[i].HalfW, g.BinW)
		hh := effHalf(objs[i].HalfH, g.BinH)
		x0, x1 := bellRange(x[i], hw+2*g.BinW, g.Die.Lo.X+g.BinW/2, g.BinW, g.NX)
		y0, y1 := bellRange(y[i], hh+2*g.BinH, g.Die.Lo.Y+g.BinH/2, g.BinH, g.NY)
		span := x1 - x0 + 1
		if y1-y0+1 > span {
			span = y1 - y0 + 1
		}
		scr.ensure(span, len(dst))
		px := scr.px[:x1-x0+1]
		py := scr.py[:y1-y0+1]
		var sx, sy float64
		for bx := x0; bx <= x1; bx++ {
			cx := g.Die.Lo.X + (float64(bx)+0.5)*g.BinW
			p, _ := bell(absf(x[i]-cx), hw, g.BinW)
			px[bx-x0] = p
			sx += p
		}
		for by := y0; by <= y1; by++ {
			cy := g.Die.Lo.Y + (float64(by)+0.5)*g.BinH
			p, _ := bell(absf(y[i]-cy), hh, g.BinH)
			py[by-y0] = p
			sy += p
		}
		if sx <= 0 || sy <= 0 {
			continue
		}
		c := objs[i].Area / (sx * sy)
		for by := y0; by <= y1; by++ {
			row := by * g.NX
			pyv := py[by-y0]
			for bx := x0; bx <= x1; bx++ {
				dst[row+bx] += c * px[bx-x0] * pyv
			}
		}
	}
}

// gradientRange accumulates ∂N/∂ for objects [lo, hi) into gx, gy (their
// own slots only, so ranges may run concurrently).
func (g *Grid) gradientRange(objs []Obj, x, y []float64, lo, hi int, gx, gy []float64, scr *bellScratch) {
	for i := lo; i < hi; i++ {
		hw := effHalf(objs[i].HalfW, g.BinW)
		hh := effHalf(objs[i].HalfH, g.BinH)
		x0, x1 := bellRange(x[i], hw+2*g.BinW, g.Die.Lo.X+g.BinW/2, g.BinW, g.NX)
		y0, y1 := bellRange(y[i], hh+2*g.BinH, g.Die.Lo.Y+g.BinH/2, g.BinH, g.NY)
		span := x1 - x0 + 1
		if y1-y0+1 > span {
			span = y1 - y0 + 1
		}
		scr.ensure(span, 0)
		px := scr.px[:x1-x0+1]
		dpx := scr.dpx[:x1-x0+1]
		py := scr.py[:y1-y0+1]
		dpy := scr.dpy[:y1-y0+1]
		var sx, sy, dsx, dsy float64
		for bx := x0; bx <= x1; bx++ {
			cx := g.Die.Lo.X + (float64(bx)+0.5)*g.BinW
			d := x[i] - cx
			p, dp := bell(absf(d), hw, g.BinW)
			if d < 0 {
				dp = -dp
			}
			px[bx-x0] = p
			dpx[bx-x0] = dp
			sx += p
			dsx += dp
		}
		for by := y0; by <= y1; by++ {
			cy := g.Die.Lo.Y + (float64(by)+0.5)*g.BinH
			d := y[i] - cy
			p, dp := bell(absf(d), hh, g.BinH)
			if d < 0 {
				dp = -dp
			}
			py[by-y0] = p
			dpy[by-y0] = dp
			sy += p
			dsy += dp
		}
		if sx <= 0 || sy <= 0 {
			continue
		}
		c := objs[i].Area / (sx * sy)
		var gxi, gyi float64
		for by := y0; by <= y1; by++ {
			row := by * g.NX
			pyv := py[by-y0]
			dpyv := dpy[by-y0]
			for bx := x0; bx <= x1; bx++ {
				e := 2 * (g.demand[row+bx] - g.capArea[row+bx])
				pxv := px[bx-x0]
				gxi += e * c * pyv * (dpx[bx-x0] - pxv*dsx/sx)
				gyi += e * c * pxv * (dpyv - pyv*dsy/sy)
			}
		}
		if gx != nil {
			gx[i] += gxi
		}
		if gy != nil {
			gy[i] += gyi
		}
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// penaltyParallel is the worker-pool version of Penalty.
func (g *Grid) penaltyParallel(objs []Obj, x, y []float64, gx, gy []float64) float64 {
	w := g.workers
	nb := g.NX * g.NY
	n := len(objs)
	var wg sync.WaitGroup
	// Deposit into per-worker slabs.
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			scr := &g.scratch[k]
			scr.ensure(1, nb)
			dst := scr.demand[:nb]
			for i := range dst {
				dst[i] = 0
			}
			g.depositRange(objs, x, y, n*k/w, n*(k+1)/w, dst, scr)
		}(k)
	}
	wg.Wait()
	// Reduce slabs into g.demand over disjoint bin ranges.
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			lo, hi := nb*k/w, nb*(k+1)/w
			dem := g.demand[lo:hi]
			for i := range dem {
				dem[i] = 0
			}
			for j := 0; j < w; j++ {
				slab := g.scratch[j].demand[lo:hi]
				for i := range dem {
					dem[i] += slab[i]
				}
			}
		}(k)
	}
	wg.Wait()
	var total float64
	for b := 0; b < nb; b++ {
		e := g.demand[b] - g.capArea[b]
		total += e * e
	}
	if gx == nil && gy == nil {
		return total
	}
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			g.gradientRange(objs, x, y, n*k/w, n*(k+1)/w, gx, gy, &g.scratch[k])
		}(k)
	}
	wg.Wait()
	return total
}
