// Package density implements the bin-density model of analytical global
// placement: a uniform grid over the die, a base occupancy map from fixed
// objects, the NTUplace-style bell-shaped per-cell density potential with
// analytic gradient, and the exact-overlap overflow metric used to decide
// when spreading is done.
//
// The penalty the placer minimizes is
//
//	N(x, y) = Σ_b ( D_b(x, y) − M_b )²
//
// where D_b is the smoothed movable-area density of bin b and M_b the
// bin's target capacity (target density × free bin area). Each movable
// object deposits area into nearby bins through a twice-differentiable
// bell curve per axis; the curve's support spans the object plus two bins
// on each side, and small objects are widened to one bin so that gradients
// never vanish. Per-object normalization keeps the deposited area exactly
// equal to the object's (inflated) area, so total area is conserved no
// matter the bell shapes.
package density

import (
	"math"

	"repro/internal/geom"
)

// Obj is one movable object as the density model sees it: half-dimensions
// for spreading and the area to deposit (already inflated when routability
// inflation is active). Coordinates live in the caller's arrays.
type Obj struct {
	HalfW, HalfH float64
	Area         float64
}

// Grid is the density bin structure.
type Grid struct {
	Die        geom.Rect
	NX, NY     int
	BinW, BinH float64
	// Target is the target density in (0, 1].
	Target float64

	// base[b] is the area of fixed objects overlapping bin b.
	base []float64
	// capArea[b] = Target · (binArea − base[b]), the allowed movable area.
	capArea []float64

	// scratch reused across Penalty calls.
	demand   []float64
	px, py   []float64 // per-object bell values along each axis
	dpx, dpy []float64 // per-object bell derivatives (gradient pass)

	// workers > 1 enables the parallel Penalty path (see SetWorkers).
	workers int
	scratch []bellScratch
}

// NewGrid builds an nx×ny grid over die with the given target density.
func NewGrid(die geom.Rect, nx, ny int, target float64) *Grid {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	if target <= 0 || target > 1 {
		target = 1
	}
	g := &Grid{
		Die: die, NX: nx, NY: ny,
		BinW: die.W() / float64(nx), BinH: die.H() / float64(ny),
		Target: target,
		base:   make([]float64, nx*ny),
		demand: make([]float64, nx*ny),
	}
	g.recomputeCap()
	return g
}

func (g *Grid) recomputeCap() {
	binArea := g.BinW * g.BinH
	if g.capArea == nil {
		g.capArea = make([]float64, len(g.base))
	}
	for i, b := range g.base {
		free := binArea - b
		if free < 0 {
			free = 0
		}
		g.capArea[i] = g.Target * free
	}
}

// AddFixed deposits a fixed object's footprint into the base map by exact
// rectangle overlap. Call for every fixed macro before placement; the die
// clip is applied internally.
func (g *Grid) AddFixed(r geom.Rect) {
	r = r.Intersect(g.Die)
	if r.Empty() {
		return
	}
	x0, x1 := g.binRangeX(r.Lo.X, r.Hi.X)
	y0, y1 := g.binRangeY(r.Lo.Y, r.Hi.Y)
	for by := y0; by <= y1; by++ {
		for bx := x0; bx <= x1; bx++ {
			g.base[by*g.NX+bx] += g.binRect(bx, by).OverlapArea(r)
		}
	}
	g.recomputeCap()
}

// Base returns the fixed-area occupancy of bin (bx, by).
func (g *Grid) Base(bx, by int) float64 { return g.base[by*g.NX+bx] }

// binRect returns the rectangle of bin (bx, by).
func (g *Grid) binRect(bx, by int) geom.Rect {
	x := g.Die.Lo.X + float64(bx)*g.BinW
	y := g.Die.Lo.Y + float64(by)*g.BinH
	return geom.NewRect(x, y, x+g.BinW, y+g.BinH)
}

// binRangeX clamps [lo, hi] to valid x bin indices.
func (g *Grid) binRangeX(lo, hi float64) (int, int) {
	b0 := int(math.Floor((lo - g.Die.Lo.X) / g.BinW))
	b1 := int(math.Floor((hi - g.Die.Lo.X) / g.BinW))
	if b0 < 0 {
		b0 = 0
	}
	if b1 >= g.NX {
		b1 = g.NX - 1
	}
	return b0, b1
}

func (g *Grid) binRangeY(lo, hi float64) (int, int) {
	b0 := int(math.Floor((lo - g.Die.Lo.Y) / g.BinH))
	b1 := int(math.Floor((hi - g.Die.Lo.Y) / g.BinH))
	if b0 < 0 {
		b0 = 0
	}
	if b1 >= g.NY {
		b1 = g.NY - 1
	}
	return b0, b1
}

// bellRange returns the first and last bin index whose center can be
// within the bell support [c − span, c + span] along one axis.
func bellRange(c, span, origin, step float64, n int) (int, int) {
	b0 := int(math.Floor((c - span - origin) / step))
	b1 := int(math.Ceil((c + span - origin) / step))
	if b0 < 0 {
		b0 = 0
	}
	if b1 >= n {
		b1 = n - 1
	}
	return b0, b1
}

// bell evaluates the bell-shaped potential and its derivative for center
// distance d ≥ 0, object half-width hw and bin width wb:
//
//	p(d) = 1 − a·d²                    for d ≤ hw + wb
//	p(d) = b·(d − hw − 2wb)²           for hw + wb < d ≤ hw + 2wb
//	p(d) = 0                           beyond
//
// with a, b chosen for C¹ continuity.
func bell(d, hw, wb float64) (p, dp float64) {
	w := 2 * hw
	inner := hw + wb
	outer := hw + 2*wb
	switch {
	case d <= inner:
		a := 4 / ((w + 2*wb) * (w + 4*wb))
		return 1 - a*d*d, -2 * a * d
	case d <= outer:
		b := 2 / (wb * (w + 4*wb))
		t := d - outer
		return b * t * t, 2 * b * t
	default:
		return 0, 0
	}
}

// effHalf widens an object's half-extent to at least one bin so that the
// bell support always covers several bin centers.
func effHalf(h, binDim float64) float64 {
	if h < binDim {
		return binDim
	}
	return h
}

// DerateNarrowChannels reduces the capacity of bins lying in narrow
// channels: maximal runs of free bins, bounded on both sides by
// macro-blocked bins, whose extent is below minSpan. Cells placed in such
// channels are nearly unroutable (the macros also block routing layers),
// so the placer derates them by the given factor and spreading naturally
// avoids them. It returns the number of derated bins. Call after all
// AddFixed calls.
func (g *Grid) DerateNarrowChannels(minSpan, factor float64) int {
	if factor < 0 {
		factor = 0
	}
	if factor > 1 {
		factor = 1
	}
	binArea := g.BinW * g.BinH
	blocked := func(bx, by int) bool {
		return g.base[by*g.NX+bx] >= 0.5*binArea
	}
	derate := make([]bool, g.NX*g.NY)
	// Horizontal runs.
	for by := 0; by < g.NY; by++ {
		run := 0
		leftBounded := false
		flush := func(end int, rightBounded bool) {
			if run > 0 && leftBounded && rightBounded && float64(run)*g.BinW < minSpan {
				for bx := end - run; bx < end; bx++ {
					derate[by*g.NX+bx] = true
				}
			}
		}
		for bx := 0; bx < g.NX; bx++ {
			if blocked(bx, by) {
				flush(bx, true)
				run = 0
				leftBounded = true
			} else {
				run++
			}
		}
		flush(g.NX, false)
	}
	// Vertical runs.
	for bx := 0; bx < g.NX; bx++ {
		run := 0
		lowBounded := false
		flush := func(end int, highBounded bool) {
			if run > 0 && lowBounded && highBounded && float64(run)*g.BinH < minSpan {
				for by := end - run; by < end; by++ {
					derate[by*g.NX+bx] = true
				}
			}
		}
		for by := 0; by < g.NY; by++ {
			if blocked(bx, by) {
				flush(by, true)
				run = 0
				lowBounded = true
			} else {
				run++
			}
		}
		flush(g.NY, false)
	}
	count := 0
	for i, dr := range derate {
		if dr {
			g.capArea[i] *= factor
			count++
		}
	}
	return count
}

// EnsureCapacity rescales the bin capacities so their sum is at least
// margin × required. Derating (channels) and dense fixed layouts can push
// the summed target capacity below the movable area, which makes the
// density system infeasible and stalls spreading; this restores global
// feasibility while preserving the relative shape of the capacity map.
// It returns the scale factor applied (1 when nothing was needed).
func (g *Grid) EnsureCapacity(required, margin float64) float64 {
	var total float64
	for _, c := range g.capArea {
		total += c
	}
	want := required * margin
	if total >= want || total <= 0 {
		return 1
	}
	scale := want / total
	for i := range g.capArea {
		g.capArea[i] *= scale
	}
	return scale
}

// Penalty evaluates the density penalty Σ_b (D_b − M_b)² over the objects
// at centers (x[i], y[i]) and adds ∂N/∂x, ∂N/∂y into gx, gy when non-nil.
func (g *Grid) Penalty(objs []Obj, x, y []float64, gx, gy []float64) float64 {
	if g.workers > 1 && len(objs) >= 4*g.workers {
		return g.penaltyParallel(objs, x, y, gx, gy)
	}
	nb := g.NX * g.NY
	for i := 0; i < nb; i++ {
		g.demand[i] = 0
	}
	// Deposit pass.
	maxSpan := 0
	for i := range objs {
		hw := effHalf(objs[i].HalfW, g.BinW)
		hh := effHalf(objs[i].HalfH, g.BinH)
		x0, x1 := bellRange(x[i], hw+2*g.BinW, g.Die.Lo.X+g.BinW/2, g.BinW, g.NX)
		y0, y1 := bellRange(y[i], hh+2*g.BinH, g.Die.Lo.Y+g.BinH/2, g.BinH, g.NY)
		if n := x1 - x0 + 1; n > maxSpan {
			maxSpan = n
		}
		if n := y1 - y0 + 1; n > maxSpan {
			maxSpan = n
		}
		if cap(g.px) < maxSpan {
			g.px = make([]float64, maxSpan*2)
			g.py = make([]float64, maxSpan*2)
			g.dpx = make([]float64, maxSpan*2)
			g.dpy = make([]float64, maxSpan*2)
		}
		px := g.px[:x1-x0+1]
		py := g.py[:y1-y0+1]
		var sx, sy float64
		for bx := x0; bx <= x1; bx++ {
			cx := g.Die.Lo.X + (float64(bx)+0.5)*g.BinW
			p, _ := bell(math.Abs(x[i]-cx), hw, g.BinW)
			px[bx-x0] = p
			sx += p
		}
		for by := y0; by <= y1; by++ {
			cy := g.Die.Lo.Y + (float64(by)+0.5)*g.BinH
			p, _ := bell(math.Abs(y[i]-cy), hh, g.BinH)
			py[by-y0] = p
			sy += p
		}
		if sx <= 0 || sy <= 0 {
			continue
		}
		c := objs[i].Area / (sx * sy)
		for by := y0; by <= y1; by++ {
			row := by * g.NX
			pyv := py[by-y0]
			for bx := x0; bx <= x1; bx++ {
				g.demand[row+bx] += c * px[bx-x0] * pyv
			}
		}
	}
	// Penalty value.
	var total float64
	for b := 0; b < nb; b++ {
		e := g.demand[b] - g.capArea[b]
		total += e * e
	}
	if gx == nil && gy == nil {
		return total
	}
	// Gradient pass. With per-object normalization c = A/(sx·sy), the
	// exact derivative of each deposit is
	//
	//	∂(c·px·py)/∂x = c · py · (px' − px · sx'/sx)
	//
	// where sx' = Σ_b px'(b); the sx'/sx term keeps area conservation
	// differentiated rather than approximated away.
	for i := range objs {
		hw := effHalf(objs[i].HalfW, g.BinW)
		hh := effHalf(objs[i].HalfH, g.BinH)
		x0, x1 := bellRange(x[i], hw+2*g.BinW, g.Die.Lo.X+g.BinW/2, g.BinW, g.NX)
		y0, y1 := bellRange(y[i], hh+2*g.BinH, g.Die.Lo.Y+g.BinH/2, g.BinH, g.NY)
		px := g.px[:x1-x0+1]
		dpx := g.dpx[:x1-x0+1]
		py := g.py[:y1-y0+1]
		dpy := g.dpy[:y1-y0+1]
		var sx, sy, dsx, dsy float64
		for bx := x0; bx <= x1; bx++ {
			cx := g.Die.Lo.X + (float64(bx)+0.5)*g.BinW
			d := x[i] - cx
			p, dp := bell(math.Abs(d), hw, g.BinW)
			if d < 0 {
				dp = -dp
			}
			px[bx-x0] = p
			dpx[bx-x0] = dp
			sx += p
			dsx += dp
		}
		for by := y0; by <= y1; by++ {
			cy := g.Die.Lo.Y + (float64(by)+0.5)*g.BinH
			d := y[i] - cy
			p, dp := bell(math.Abs(d), hh, g.BinH)
			if d < 0 {
				dp = -dp
			}
			py[by-y0] = p
			dpy[by-y0] = dp
			sy += p
			dsy += dp
		}
		if sx <= 0 || sy <= 0 {
			continue
		}
		c := objs[i].Area / (sx * sy)
		var gxi, gyi float64
		for by := y0; by <= y1; by++ {
			row := by * g.NX
			pyv := py[by-y0]
			dpyv := dpy[by-y0]
			for bx := x0; bx <= x1; bx++ {
				e := 2 * (g.demand[row+bx] - g.capArea[row+bx])
				pxv := px[bx-x0]
				gxi += e * c * pyv * (dpx[bx-x0] - pxv*dsx/sx)
				gyi += e * c * pxv * (dpyv - pyv*dsy/sy)
			}
		}
		if gx != nil {
			gx[i] += gxi
		}
		if gy != nil {
			gy[i] += gyi
		}
	}
	return total
}

// Overflow returns the total-overflow ratio using exact rectangle overlap:
// Σ_b max(0, demand_b − capacity_b) / Σ area. It is the convergence
// criterion for spreading (not differentiable; evaluated between solver
// rounds).
func (g *Grid) Overflow(objs []Obj, x, y []float64) float64 {
	nb := g.NX * g.NY
	dem := make([]float64, nb)
	var totalArea float64
	for i := range objs {
		totalArea += objs[i].Area
		r := geom.NewRect(x[i]-objs[i].HalfW, y[i]-objs[i].HalfH, x[i]+objs[i].HalfW, y[i]+objs[i].HalfH)
		r = r.Intersect(g.Die)
		if r.Empty() {
			continue
		}
		// Scale so clipped deposits still sum to the full area.
		scale := objs[i].Area / (4 * objs[i].HalfW * objs[i].HalfH)
		x0, x1 := g.binRangeX(r.Lo.X, r.Hi.X)
		y0, y1 := g.binRangeY(r.Lo.Y, r.Hi.Y)
		for by := y0; by <= y1; by++ {
			for bx := x0; bx <= x1; bx++ {
				dem[by*g.NX+bx] += scale * g.binRect(bx, by).OverlapArea(r)
			}
		}
	}
	if totalArea <= 0 {
		return 0
	}
	var over float64
	for b := 0; b < nb; b++ {
		if ex := dem[b] - g.capArea[b]; ex > 0 {
			over += ex
		}
	}
	return over / totalArea
}

// DensityMap returns the exact-overlap density (demand / free bin area)
// per bin, for congestion-style visualization and tests.
func (g *Grid) DensityMap(objs []Obj, x, y []float64) []float64 {
	nb := g.NX * g.NY
	dem := make([]float64, nb)
	for i := range objs {
		r := geom.NewRect(x[i]-objs[i].HalfW, y[i]-objs[i].HalfH, x[i]+objs[i].HalfW, y[i]+objs[i].HalfH)
		r = r.Intersect(g.Die)
		if r.Empty() {
			continue
		}
		scale := objs[i].Area / (4 * objs[i].HalfW * objs[i].HalfH)
		x0, x1 := g.binRangeX(r.Lo.X, r.Hi.X)
		y0, y1 := g.binRangeY(r.Lo.Y, r.Hi.Y)
		for by := y0; by <= y1; by++ {
			for bx := x0; bx <= x1; bx++ {
				dem[by*g.NX+bx] += scale * g.binRect(bx, by).OverlapArea(r)
			}
		}
	}
	binArea := g.BinW * g.BinH
	out := make([]float64, nb)
	for b := 0; b < nb; b++ {
		free := binArea - g.base[b]
		if free <= 1e-12 {
			out[b] = 0
			if dem[b] > 0 {
				out[b] = math.Inf(1)
			}
			continue
		}
		out[b] = dem[b] / free
	}
	return out
}

// TotalDeposited returns the sum of smoothed demand after the last Penalty
// call; used by area-conservation tests.
func (g *Grid) TotalDeposited() float64 {
	var s float64
	for _, d := range g.demand {
		s += d
	}
	return s
}
