// Package nlopt provides the nonlinear conjugate-gradient solver that
// drives analytical global placement: Polak–Ribière+ directions with
// automatic restarts, an Armijo backtracking line search with adaptive
// initial step, and an optional projection hook that the placer uses to
// keep object centers inside the die after every step.
package nlopt

import (
	"math"
)

// Func is the objective: it returns f(v) and, when grad is non-nil, writes
// ∇f(v) into grad (grad arrives zeroed).
type Func func(v []float64, grad []float64) float64

// Options tunes the CG run. Zero values select reasonable defaults.
type Options struct {
	// MaxIter bounds the number of CG iterations (default 300).
	MaxIter int
	// GradTol stops the run when the gradient ∞-norm falls below it
	// (default 1e-6).
	GradTol float64
	// RelTol, when positive, stops the run once the per-iteration relative
	// objective decrease falls below it — the cheap plateau detector the
	// placer uses to avoid burning iterations at a converged λ round.
	RelTol float64
	// StepInit is the first trial step length (default 1; subsequent
	// iterations start from twice the last accepted step).
	StepInit float64
	// MaxBacktrack bounds the Armijo halvings per iteration (default 30).
	MaxBacktrack int
	// ArmijoC is the sufficient-decrease constant (default 1e-4).
	ArmijoC float64
	// Project, when non-nil, is applied to the iterate after every
	// accepted step (e.g. clamping into the die). Projection composes
	// with the line search: the Armijo test is evaluated at the projected
	// point.
	Project func(v []float64)
	// OnIter, when non-nil, is called after every iteration with the
	// iteration index and current objective value; placement experiments
	// use it to record convergence traces.
	OnIter func(iter int, f float64)
	// Stop, when non-nil, is polled once per iteration before any work;
	// returning true aborts the run with the current iterate intact. The
	// placer wires context cancellation through it so a canceled job
	// returns at CG-iteration granularity. A Stop that never fires does
	// not perturb the trajectory, so results are unchanged when unused.
	Stop func() bool
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 300
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-6
	}
	if o.StepInit <= 0 {
		o.StepInit = 1
	}
	if o.MaxBacktrack <= 0 {
		o.MaxBacktrack = 30
	}
	if o.ArmijoC <= 0 {
		o.ArmijoC = 1e-4
	}
	return o
}

// Result reports the outcome of a CG run.
type Result struct {
	Value     float64
	Iters     int
	FuncEvals int
	// Converged is true when the gradient tolerance was met (as opposed
	// to stopping on MaxIter or a stalled line search).
	Converged bool
}

func infNorm(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// CG minimizes f starting from v (modified in place) and returns the run
// summary. The method is Polak–Ribière+ nonlinear CG: the direction is
// reset to steepest descent whenever β < 0 or the direction loses descent,
// which makes it globally convergent on the nonconvex placement
// objectives it is used for.
func CG(f Func, v []float64, opt Options) Result {
	opt = opt.withDefaults()
	n := len(v)
	res := Result{}
	if n == 0 {
		res.Converged = true
		return res
	}

	grad := make([]float64, n)
	prevGrad := make([]float64, n)
	dir := make([]float64, n)
	trial := make([]float64, n)

	fv := f(v, grad)
	res.FuncEvals++
	for i := range dir {
		dir[i] = -grad[i]
	}
	step := opt.StepInit

	for iter := 0; iter < opt.MaxIter; iter++ {
		if opt.Stop != nil && opt.Stop() {
			break
		}
		res.Iters = iter + 1
		gnorm := infNorm(grad)
		if gnorm <= opt.GradTol {
			res.Converged = true
			break
		}
		// Ensure a descent direction; restart on failure.
		dd := dot(dir, grad)
		if dd >= 0 {
			for i := range dir {
				dir[i] = -grad[i]
			}
			dd = -dot(grad, grad)
		}
		// Scale the trial step so the largest coordinate move is about
		// `step` units; this keeps the search robust to gradient
		// magnitude swings as the density weight grows.
		dmax := infNorm(dir)
		if dmax == 0 {
			res.Converged = true
			break
		}
		alpha := step / dmax
		accepted := false
		var fNew float64
		for bt := 0; bt < opt.MaxBacktrack; bt++ {
			for i := range trial {
				trial[i] = v[i] + alpha*dir[i]
			}
			if opt.Project != nil {
				opt.Project(trial)
			}
			fNew = f(trial, nil)
			res.FuncEvals++
			if fNew <= fv+opt.ArmijoC*alpha*dd {
				accepted = true
				break
			}
			alpha /= 2
		}
		if !accepted {
			// Line search stalled: tighten the step budget and retry from
			// steepest descent next round; if the step is already tiny,
			// declare convergence to the achievable precision.
			step /= 4
			for i := range dir {
				dir[i] = -grad[i]
			}
			if step < 1e-12 {
				break
			}
			continue
		}
		copy(v, trial)
		copy(prevGrad, grad)
		for i := range grad {
			grad[i] = 0
		}
		fPrev := fv
		fv = f(v, grad)
		res.FuncEvals++
		if opt.RelTol > 0 && fPrev-fv < opt.RelTol*(math.Abs(fPrev)+1e-30) {
			if opt.OnIter != nil {
				opt.OnIter(iter, fv)
			}
			res.Converged = true
			break
		}
		if opt.OnIter != nil {
			opt.OnIter(iter, fv)
		}
		// Polak–Ribière+ β with automatic restart.
		var num, den float64
		for i := range grad {
			num += grad[i] * (grad[i] - prevGrad[i])
			den += prevGrad[i] * prevGrad[i]
		}
		beta := 0.0
		if den > 0 {
			beta = num / den
		}
		if beta < 0 {
			beta = 0
		}
		for i := range dir {
			dir[i] = -grad[i] + beta*dir[i]
		}
		// Grow the step budget after a clean acceptance.
		step = math.Min(step*2, opt.StepInit*16)
	}
	res.Value = fv
	return res
}
