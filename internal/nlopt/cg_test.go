package nlopt

import (
	"math"
	"testing"
)

// quadratic builds a separable quadratic Σ cᵢ(vᵢ − tᵢ)².
func quadratic(c, target []float64) Func {
	return func(v []float64, grad []float64) float64 {
		var f float64
		for i := range v {
			d := v[i] - target[i]
			f += c[i] * d * d
			if grad != nil {
				grad[i] += 2 * c[i] * d
			}
		}
		return f
	}
}

func TestQuadraticBowl(t *testing.T) {
	c := []float64{1, 1, 1}
	target := []float64{3, -2, 7}
	v := []float64{0, 0, 0}
	res := CG(quadratic(c, target), v, Options{MaxIter: 200, GradTol: 1e-8})
	if !res.Converged {
		t.Errorf("did not converge: %+v", res)
	}
	for i := range v {
		if math.Abs(v[i]-target[i]) > 1e-5 {
			t.Errorf("v[%d] = %v, want %v", i, v[i], target[i])
		}
	}
}

func TestIllConditionedQuadratic(t *testing.T) {
	// Condition number 1e4: CG must still reach the optimum.
	c := []float64{1, 100, 10000}
	target := []float64{1, 2, 3}
	v := []float64{-5, 5, -5}
	res := CG(quadratic(c, target), v, Options{MaxIter: 2000, GradTol: 1e-8, StepInit: 1})
	if res.Value > 1e-6 {
		t.Errorf("residual %v too large after %d iters", res.Value, res.Iters)
	}
}

func TestRosenbrock(t *testing.T) {
	f := func(v []float64, grad []float64) float64 {
		x, y := v[0], v[1]
		a := 1 - x
		b := y - x*x
		fv := a*a + 100*b*b
		if grad != nil {
			grad[0] += -2*a - 400*x*b
			grad[1] += 200 * b
		}
		return fv
	}
	v := []float64{-1.2, 1}
	res := CG(f, v, Options{MaxIter: 5000, GradTol: 1e-6, StepInit: 0.5})
	if res.Value > 1e-5 {
		t.Errorf("Rosenbrock residual %v at %v after %d iters", res.Value, v, res.Iters)
	}
}

func TestMonotoneDecrease(t *testing.T) {
	c := []float64{2, 1}
	target := []float64{4, -4}
	v := []float64{10, 10}
	prev := math.Inf(1)
	CG(quadratic(c, target), v, Options{
		MaxIter: 100,
		OnIter: func(iter int, f float64) {
			if f > prev+1e-9 {
				t.Errorf("objective rose at iter %d: %v -> %v", iter, prev, f)
			}
			prev = f
		},
	})
}

func TestProjectionRespected(t *testing.T) {
	// Minimize (v-10)² with v clamped to [0, 4]: solution sticks at 4.
	f := func(v []float64, grad []float64) float64 {
		d := v[0] - 10
		if grad != nil {
			grad[0] += 2 * d
		}
		return d * d
	}
	v := []float64{0}
	res := CG(f, v, Options{
		MaxIter: 100,
		Project: func(v []float64) {
			if v[0] > 4 {
				v[0] = 4
			}
			if v[0] < 0 {
				v[0] = 0
			}
		},
	})
	if v[0] != 4 {
		t.Errorf("projected solution = %v, want 4 (result %+v)", v[0], res)
	}
}

func TestEmptyProblem(t *testing.T) {
	res := CG(func(v, g []float64) float64 { return 0 }, nil, Options{})
	if !res.Converged {
		t.Error("empty problem must converge trivially")
	}
}

func TestAlreadyOptimal(t *testing.T) {
	c := []float64{1}
	target := []float64{5}
	v := []float64{5}
	res := CG(quadratic(c, target), v, Options{GradTol: 1e-9})
	if !res.Converged || res.Iters > 1 {
		t.Errorf("optimal start should converge immediately: %+v", res)
	}
}

func TestFuncEvalsCounted(t *testing.T) {
	c := []float64{1, 1}
	target := []float64{1, 1}
	v := []float64{0, 0}
	res := CG(quadratic(c, target), v, Options{MaxIter: 50})
	if res.FuncEvals < res.Iters {
		t.Errorf("FuncEvals %d < Iters %d", res.FuncEvals, res.Iters)
	}
}

func BenchmarkCGQuadratic1000(b *testing.B) {
	n := 1000
	c := make([]float64, n)
	target := make([]float64, n)
	for i := range c {
		c[i] = 1 + float64(i%7)
		target[i] = float64(i % 13)
	}
	f := quadratic(c, target)
	for i := 0; i < b.N; i++ {
		v := make([]float64, n)
		CG(f, v, Options{MaxIter: 100, GradTol: 1e-6})
	}
}

func TestRelTolStopsOnPlateau(t *testing.T) {
	// A flat valley: f decreases negligibly after the first step, so the
	// plateau detector must stop the run early.
	f := func(v, grad []float64) float64 {
		x := v[0]
		fv := 1 + 1e-9*x*x
		if grad != nil {
			grad[0] += 2e-9 * x
		}
		return fv
	}
	v := []float64{1}
	res := CG(f, v, Options{MaxIter: 500, RelTol: 1e-4, GradTol: 1e-30})
	if res.Iters > 5 {
		t.Errorf("plateau run used %d iterations", res.Iters)
	}
	if !res.Converged {
		t.Error("plateau stop should report convergence")
	}
}

func TestRelTolZeroDisablesPlateauStop(t *testing.T) {
	c := []float64{1, 100}
	target := []float64{1, 2}
	v := []float64{-3, 4}
	res := CG(quadratic(c, target), v, Options{MaxIter: 300, GradTol: 1e-10})
	if res.Value > 1e-8 {
		t.Errorf("without RelTol the run should fully converge, residual %v", res.Value)
	}
}
