//go:build !unix

package store

import "os"

// Non-unix fallback: no advisory locking. Single-writer discipline is the
// operator's responsibility on these platforms.
func acquireLock(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
}

func releaseLock(f *os.File) error { return f.Close() }
