//go:build unix

package store

import (
	"errors"
	"os"
	"syscall"
)

// acquireLock takes a non-blocking exclusive flock on path. The kernel
// releases the lock when the process dies, so a crashed daemon never
// leaves the store permanently locked.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return nil, ErrLocked
		}
		return nil, err
	}
	return f, nil
}

func releaseLock(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
