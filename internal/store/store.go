// Package store is a content-addressed on-disk artifact store for
// placement results. Entries are keyed by SHA-256 over a canonical design
// fingerprint (db.Design.Fingerprint) plus the serialized placer
// configuration, so two submissions of the same placement problem — even
// from differently formatted input files — resolve to the same key and the
// second is served from disk instead of re-placed.
//
// Layout under the store root:
//
//	.lock                  flock'd for single-writer exclusion
//	entries/<key>/         one directory per entry
//	    meta.json          key, sizes, per-artifact SHA-256, access times
//	    <artifact files>   report.json, result.pl, heatmaps.json, ...
//	quarantine/<key>/      entries that failed their checksum on read
//
// The store is size-bounded: when the total artifact bytes exceed
// Options.MaxBytes, least-recently-accessed entries are evicted. Reads
// verify every artifact against its recorded checksum and quarantine the
// whole entry on mismatch (a quarantined entry is a miss, never an error:
// corruption must degrade to a cache miss, not break the caller).
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// DefaultMaxBytes bounds the store when Options.MaxBytes is zero.
const DefaultMaxBytes = 256 << 20

// ErrLocked is returned by Open when another process holds the store.
var ErrLocked = errors.New("store: already locked by another process")

// Options configures Open.
type Options struct {
	// MaxBytes is the eviction threshold over total artifact bytes.
	// 0 means DefaultMaxBytes; negative disables eviction.
	MaxBytes int64
	// Clock overrides time.Now for access stamps (tests).
	Clock func() time.Time
}

// Stats is a snapshot of the store's counters since Open.
type Stats struct {
	Hits        int64
	Misses      int64
	Puts        int64
	Evictions   int64
	Corruptions int64
	Entries     int
	Bytes       int64
}

// Store is a single-writer content-addressed artifact store.
type Store struct {
	dir   string
	max   int64
	clock func() time.Time
	lock  *os.File

	mu      sync.Mutex
	entries map[string]*entryInfo
	bytes   int64
	stats   Stats
}

type entryInfo struct {
	size       int64
	lastAccess time.Time
}

type meta struct {
	Key        string            `json:"key"`
	Size       int64             `json:"size"`
	Created    time.Time         `json:"created"`
	LastAccess time.Time         `json:"last_access"`
	SHA256     map[string]string `json:"sha256"`
}

// Key derives the store key for a design fingerprint and a serialized
// placer configuration.
func Key(fingerprint [32]byte, config []byte) string {
	h := sha256.New()
	h.Write([]byte("repro/store key v1\x00"))
	h.Write(fingerprint[:])
	h.Write(config)
	return hex.EncodeToString(h.Sum(nil))
}

// Open opens (creating if needed) the store rooted at dir and takes the
// single-writer lock. A second Open of the same directory — from this or
// any other process — fails with ErrLocked until Close. The on-disk index
// is rebuilt by scanning entry metadata; entries with unreadable metadata
// are quarantined on the spot.
func Open(dir string, opt Options) (*Store, error) {
	for _, sub := range []string{"", "entries", "quarantine"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	lock, err := acquireLock(filepath.Join(dir, ".lock"))
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:     dir,
		max:     opt.MaxBytes,
		clock:   opt.Clock,
		lock:    lock,
		entries: make(map[string]*entryInfo),
	}
	if s.max == 0 {
		s.max = DefaultMaxBytes
	}
	if s.clock == nil {
		s.clock = time.Now
	}
	ents, err := os.ReadDir(s.entriesDir())
	if err != nil {
		s.Close()
		return nil, err
	}
	for _, de := range ents {
		if !de.IsDir() {
			continue
		}
		key := de.Name()
		m, err := s.readMeta(key)
		if err != nil || m.Key != key {
			s.quarantineLocked(key)
			s.stats.Corruptions++
			continue
		}
		s.entries[key] = &entryInfo{size: m.Size, lastAccess: m.LastAccess}
		s.bytes += m.Size
	}
	return s, nil
}

// Close releases the single-writer lock. The store must not be used after.
func (s *Store) Close() error {
	if s.lock == nil {
		return nil
	}
	err := releaseLock(s.lock)
	s.lock = nil
	return err
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// Put stores the named artifacts under key, replacing any existing entry,
// then evicts least-recently-accessed entries until the store fits its
// size bound (the entry just written is exempt, so a single oversized
// result is still cached once).
func (s *Store) Put(key string, artifacts map[string][]byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	tmp, err := os.MkdirTemp(s.entriesDir(), ".put-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	m := meta{
		Key:        key,
		Created:    s.clock().UTC(),
		LastAccess: s.clock().UTC(),
		SHA256:     make(map[string]string, len(artifacts)),
	}
	for name, data := range artifacts {
		if name == metaName || !filepath.IsLocal(name) {
			return fmt.Errorf("store: bad artifact name %q", name)
		}
		if err := os.WriteFile(filepath.Join(tmp, name), data, 0o644); err != nil {
			return err
		}
		sum := sha256.Sum256(data)
		m.SHA256[name] = hex.EncodeToString(sum[:])
		m.Size += int64(len(data))
	}
	mb, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(tmp, metaName), mb, 0o644); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[key]; ok {
		s.bytes -= old.size
		delete(s.entries, key)
		if err := os.RemoveAll(s.entryDir(key)); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, s.entryDir(key)); err != nil {
		return err
	}
	s.entries[key] = &entryInfo{size: m.Size, lastAccess: m.LastAccess}
	s.bytes += m.Size
	s.stats.Puts++
	s.evictLocked(key)
	return nil
}

// Get returns the artifacts stored under key. ok is false on a miss — the
// key is absent, or the entry failed its checksum and was quarantined.
// The error is reserved for real I/O failures.
func (s *Store) Get(key string) (artifacts map[string][]byte, ok bool, err error) {
	if err := validKey(key); err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, found := s.entries[key]
	if !found {
		s.stats.Misses++
		return nil, false, nil
	}
	m, err := s.readMeta(key)
	if err != nil {
		s.corruptLocked(key, e)
		return nil, false, nil
	}
	artifacts = make(map[string][]byte, len(m.SHA256))
	for name, wantHex := range m.SHA256 {
		data, err := os.ReadFile(filepath.Join(s.entryDir(key), name))
		if err != nil {
			s.corruptLocked(key, e)
			return nil, false, nil
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != wantHex {
			s.corruptLocked(key, e)
			return nil, false, nil
		}
		artifacts[name] = data
	}
	e.lastAccess = s.clock().UTC()
	m.LastAccess = e.lastAccess
	// Best-effort access-time persistence; an unwritable meta only weakens
	// LRU ordering across restarts.
	if mb, err := json.MarshalIndent(m, "", "  "); err == nil {
		os.WriteFile(filepath.Join(s.entryDir(key), metaName), mb, 0o644)
	}
	s.stats.Hits++
	return artifacts, true, nil
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	return st
}

const metaName = "meta.json"

func (s *Store) entriesDir() string         { return filepath.Join(s.dir, "entries") }
func (s *Store) entryDir(key string) string { return filepath.Join(s.entriesDir(), key) }

func (s *Store) readMeta(key string) (*meta, error) {
	data, err := os.ReadFile(filepath.Join(s.entryDir(key), metaName))
	if err != nil {
		return nil, err
	}
	m := &meta{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, err
	}
	return m, nil
}

// corruptLocked quarantines a damaged entry and records it as a miss.
func (s *Store) corruptLocked(key string, e *entryInfo) {
	s.quarantineLocked(key)
	s.bytes -= e.size
	delete(s.entries, key)
	s.stats.Corruptions++
	s.stats.Misses++
}

// quarantineLocked moves an entry directory aside for post-mortem instead
// of deleting it.
func (s *Store) quarantineLocked(key string) {
	dst := filepath.Join(s.dir, "quarantine", key)
	os.RemoveAll(dst)
	if err := os.Rename(s.entryDir(key), dst); err != nil {
		// Fall back to removal so a poisoned entry cannot keep serving.
		os.RemoveAll(s.entryDir(key))
	}
}

// evictLocked removes least-recently-accessed entries until the store is
// within its size bound. keep is never evicted.
func (s *Store) evictLocked(keep string) {
	if s.max < 0 {
		return
	}
	type cand struct {
		key string
		e   *entryInfo
	}
	var cands []cand
	for k, e := range s.entries {
		if k != keep {
			cands = append(cands, cand{k, e})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].e.lastAccess.Before(cands[j].e.lastAccess)
	})
	for _, c := range cands {
		if s.bytes <= s.max {
			return
		}
		os.RemoveAll(s.entryDir(c.key))
		s.bytes -= c.e.size
		delete(s.entries, c.key)
		s.stats.Evictions++
	}
}

func validKey(key string) error {
	if len(key) != 64 {
		return fmt.Errorf("store: malformed key %q", key)
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("store: malformed key %q", key)
		}
	}
	return nil
}
