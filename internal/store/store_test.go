package store

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// testClock is a deterministic, strictly increasing clock.
func testClock() func() time.Time {
	t := time.Unix(1000000, 0)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

func testKey(b byte) string {
	var fp [32]byte
	return Key(fp, []byte{b})
}

func mustOpen(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	if opt.Clock == nil {
		opt.Clock = testClock()
	}
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	key := testKey(1)
	want := map[string][]byte{
		"report.json": []byte(`{"ok":true}`),
		"result.pl":   []byte("UCLA pl 1.0\n"),
	}
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get = ok=%v err=%v, want hit", ok, err)
	}
	for name, data := range want {
		if !bytes.Equal(got[name], data) {
			t.Errorf("artifact %s = %q, want %q", name, got[name], data)
		}
	}
	if _, ok, _ := s.Get(testKey(2)); ok {
		t.Error("Get of absent key reported a hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 put / 1 entry", st)
	}
}

func TestKeyDerivation(t *testing.T) {
	var fpA, fpB [32]byte
	fpB[0] = 1
	cfg := []byte(`{"workers":4}`)
	if Key(fpA, cfg) != Key(fpA, cfg) {
		t.Error("Key is not deterministic")
	}
	if Key(fpA, cfg) == Key(fpB, cfg) {
		t.Error("different fingerprints collide")
	}
	if Key(fpA, cfg) == Key(fpA, []byte(`{"workers":8}`)) {
		t.Error("different configs collide")
	}
	if err := validKey(Key(fpA, cfg)); err != nil {
		t.Error(err)
	}
	if _, _, err := (&Store{}).Get("not-a-key"); err == nil {
		t.Error("malformed key accepted")
	}
}

func TestCorruptionQuarantine(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	key := testKey(3)
	if err := s.Put(key, map[string][]byte{"report.json": []byte("good")}); err != nil {
		t.Fatal(err)
	}
	// Flip the artifact on disk behind the store's back.
	path := filepath.Join(dir, "entries", key, "report.json")
	if err := os.WriteFile(path, []byte("evil"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(key); ok || err != nil {
		t.Fatalf("Get of corrupted entry = ok=%v err=%v, want miss", ok, err)
	}
	st := s.Stats()
	if st.Corruptions != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v, want 1 corruption and 0 entries", st)
	}
	// The damaged entry is preserved for post-mortem, not served again.
	if _, err := os.Stat(filepath.Join(dir, "quarantine", key, "report.json")); err != nil {
		t.Errorf("quarantined artifact missing: %v", err)
	}
	if _, ok, _ := s.Get(key); ok {
		t.Error("corrupted entry served after quarantine")
	}
}

func TestLRUEviction(t *testing.T) {
	// Three 100-byte entries in a 250-byte store: the LRU one must go.
	s := mustOpen(t, t.TempDir(), Options{MaxBytes: 250})
	payload := func(b byte) map[string][]byte {
		return map[string][]byte{"result.pl": bytes.Repeat([]byte{b}, 100)}
	}
	k1, k2, k3 := testKey(1), testKey(2), testKey(3)
	for i, k := range []string{k1, k2} {
		if err := s.Put(k, payload(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k1 so k2 becomes least recently used.
	if _, ok, _ := s.Get(k1); !ok {
		t.Fatal("k1 missing before eviction")
	}
	if err := s.Put(k3, payload(9)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(k2); ok {
		t.Error("LRU entry k2 survived eviction")
	}
	for _, k := range []string{k1, k3} {
		if _, ok, _ := s.Get(k); !ok {
			t.Errorf("entry %s evicted out of LRU order", k[:8])
		}
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > 250 {
		t.Errorf("store holds %d bytes, bound is 250", st.Bytes)
	}
}

func TestOversizedEntryStillCached(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{MaxBytes: 10})
	key := testKey(7)
	if err := s.Put(key, map[string][]byte{"big": make([]byte, 1000)}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(key); !ok {
		t.Error("freshly put oversized entry was evicted immediately")
	}
}

func TestPersistenceAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	key := testKey(5)
	s := mustOpen(t, dir, Options{})
	if err := s.Put(key, map[string][]byte{"report.json": []byte("kept")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	got, ok, err := s2.Get(key)
	if err != nil || !ok {
		t.Fatalf("entry lost across reopen: ok=%v err=%v", ok, err)
	}
	if string(got["report.json"]) != "kept" {
		t.Errorf("artifact = %q after reopen", got["report.json"])
	}
	if st := s2.Stats(); st.Entries != 1 || st.Bytes != 4 {
		t.Errorf("rebuilt index = %+v, want 1 entry of 4 bytes", st)
	}
}

func TestSingleWriterLock(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open err = %v, want ErrLocked", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	s2.Close()
}

func TestBadArtifactNames(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	for _, name := range []string{"meta.json", "../escape", "/abs"} {
		if err := s.Put(testKey(8), map[string][]byte{name: []byte("x")}); err == nil {
			t.Errorf("artifact name %q accepted", name)
		}
	}
}

func TestChecksumMatchesContent(t *testing.T) {
	// The recorded checksum must be the plain SHA-256 of the artifact, so
	// external tooling can audit entries.
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	key := testKey(9)
	data := []byte("audit me")
	if err := s.Put(key, map[string][]byte{"a.txt": data}); err != nil {
		t.Fatal(err)
	}
	m, err := s.readMeta(key)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	if want := sum[:]; m.SHA256["a.txt"] != hexString(want) {
		t.Errorf("meta sha = %s, want %x", m.SHA256["a.txt"], want)
	}
}

func hexString(b []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 2*len(b))
	for i, v := range b {
		out[2*i], out[2*i+1] = digits[v>>4], digits[v&0xf]
	}
	return string(out)
}
