package core

import (
	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/route"
	"repro/internal/snap"
)

// checkpointer captures flow state into snap.State values and hands them
// to the Config.Checkpoint hook. The design fingerprint is computed once
// per run (it hashes the whole netlist) and stamped on every snapshot so
// a resume can verify it is being fed the design it was taken from.
type checkpointer struct {
	d   *db.Design
	cfg Config
	fp  [32]byte
}

func newCheckpointer(d *db.Design, cfg Config) *checkpointer {
	return &checkpointer{d: d, cfg: cfg, fp: d.Fingerprint()}
}

// gpHook builds the levelSolver round observer for finest-level global
// placement: every CheckpointEvery-th round it publishes the in-flight
// solver positions to the design and emits a StageGP snapshot.
// roundBase offsets the recorded round count on resumed runs, so a
// checkpoint of a resumed run still counts rounds from the original start.
func (ck *checkpointer) gpHook(prob *cluster.Problem, pm *problemMap, roundBase int) func(int, float64, float64, []float64, []float64) {
	every := ck.cfg.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	return func(round int, lambda, mu float64, x, y []float64) {
		done := round + 1
		if done%every != 0 {
			return
		}
		copy(prob.X, x)
		copy(prob.Y, y)
		writeBack(ck.d, prob, pm)
		ck.emit(snap.StageGP, 0, roundBase+done, 0, lambda, mu, nil)
	}
}

// emit snapshots the design's current cell state and invokes the hook.
func (ck *checkpointer) emit(stage snap.Stage, level, round, routIter int, lambda, mu float64, grid *route.Grid) {
	d := ck.d
	n := len(d.Cells)
	st := &snap.State{
		Design:      d.Name,
		Fingerprint: ck.fp,
		Stage:       stage,
		Level:       level,
		Round:       round,
		RoutIter:    routIter,
		Lambda:      lambda,
		Mu:          mu,
		X:           make([]float64, n),
		Y:           make([]float64, n),
		Orient:      make([]uint8, n),
		Inflate:     make([]float64, n),
	}
	for i := range d.Cells {
		c := &d.Cells[i]
		st.X[i] = c.Pos.X
		st.Y[i] = c.Pos.Y
		st.Orient[i] = uint8(c.Orient)
		if c.Inflate > 1 {
			st.Inflate[i] = c.Inflate
		} else {
			st.Inflate[i] = 1
		}
	}
	if grid != nil {
		ds := grid.SnapshotDemand()
		st.Route = &snap.RouteState{
			NX: ds.NX, NY: ds.NY,
			HDem: ds.HDem, VDem: ds.VDem,
			HHist: ds.HHist, VHist: ds.VHist,
		}
	}
	ck.cfg.Checkpoint(st)
}
