package core

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/route"
	"repro/internal/snap"
)

// checkpointer captures flow state into snap.State values and hands them
// to the Config.Checkpoint hook. The design fingerprint is computed once
// per run (it hashes the whole netlist) and stamped on every snapshot so
// a resume can verify it is being fed the design it was taken from.
type checkpointer struct {
	d   *db.Design
	cfg Config
	fp  [32]byte
}

func newCheckpointer(d *db.Design, cfg Config) *checkpointer {
	return &checkpointer{d: d, cfg: cfg, fp: d.Fingerprint()}
}

// gpHook builds the levelSolver round observer for finest-level global
// placement: every CheckpointEvery-th round it publishes the in-flight
// solver positions to the design and emits a StageGP snapshot.
// roundBase offsets the recorded round count on resumed runs, so a
// checkpoint of a resumed run still counts rounds from the original start.
func (ck *checkpointer) gpHook(prob *cluster.Problem, pm *problemMap, roundBase int) func(int, float64, float64, []float64, []float64) {
	every := ck.cfg.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	return func(round int, lambda, mu float64, x, y []float64) {
		done := round + 1
		if done%every != 0 {
			return
		}
		copy(prob.X, x)
		copy(prob.Y, y)
		writeBack(ck.d, prob, pm)
		ck.emit(snap.StageGP, 0, roundBase+done, 0, lambda, mu, nil)
	}
}

// recordConfig projects the result-shaping knobs of a (defaulted) Config
// into the checkpoint's config section. ValidateResumeConfig is its
// inverse check.
func recordConfig(cfg Config) *snap.RunConfig {
	return &snap.RunConfig{
		Model:              cfg.Model,
		TargetDensity:      cfg.TargetDensity,
		Workers:            cfg.Workers,
		MaxLambdaRounds:    cfg.MaxLambdaRounds,
		RoutabilityIters:   cfg.RoutabilityIters,
		CongestionSource:   cfg.CongestionSource,
		RouteLastRounds:    cfg.RouteLastRounds,
		DisableRoutability: cfg.DisableRoutability,
		DisableFences:      cfg.DisableFences,
		DisableDP:          cfg.DisableDP,
		DisableMultilevel:  cfg.DisableMultilevel,
	}
}

// ValidateResumeConfig rejects a resume whose current configuration would
// place a different problem than the checkpointed run: every recorded
// result-shaping knob must match. Checkpoints without a config section
// (schema v1) pass vacuously. Workers deliberately does not participate —
// legalization, detailed placement and routing are byte-identical for
// every worker count, so resuming on different parallelism is safe.
func ValidateResumeConfig(cfg Config, st *snap.State) error {
	if st == nil || st.Config == nil {
		return nil
	}
	cfg = cfg.withDefaults()
	rc, now := st.Config, recordConfig(cfg)
	var bad []string
	add := func(knob string, have, want any) {
		bad = append(bad, fmt.Sprintf("%s is %v, checkpoint ran with %v", knob, have, want))
	}
	if now.Model != rc.Model {
		add("model", now.Model, rc.Model)
	}
	if now.TargetDensity != rc.TargetDensity {
		add("target density", now.TargetDensity, rc.TargetDensity)
	}
	if now.MaxLambdaRounds != rc.MaxLambdaRounds {
		add("max lambda rounds", now.MaxLambdaRounds, rc.MaxLambdaRounds)
	}
	if now.RoutabilityIters != rc.RoutabilityIters {
		add("routability iters", now.RoutabilityIters, rc.RoutabilityIters)
	}
	if now.CongestionSource != rc.CongestionSource {
		add("congestion source", now.CongestionSource, rc.CongestionSource)
	}
	if now.RouteLastRounds != rc.RouteLastRounds {
		add("route last rounds", now.RouteLastRounds, rc.RouteLastRounds)
	}
	if now.DisableRoutability != rc.DisableRoutability {
		add("disable routability", now.DisableRoutability, rc.DisableRoutability)
	}
	if now.DisableFences != rc.DisableFences {
		add("disable fences", now.DisableFences, rc.DisableFences)
	}
	if now.DisableDP != rc.DisableDP {
		add("disable dp", now.DisableDP, rc.DisableDP)
	}
	if now.DisableMultilevel != rc.DisableMultilevel {
		add("disable multilevel", now.DisableMultilevel, rc.DisableMultilevel)
	}
	if len(bad) > 0 {
		return fmt.Errorf("core: resume config mismatch: %s", strings.Join(bad, "; "))
	}
	return nil
}

// emit snapshots the design's current cell state and invokes the hook.
func (ck *checkpointer) emit(stage snap.Stage, level, round, routIter int, lambda, mu float64, grid *route.Grid) {
	d := ck.d
	n := len(d.Cells)
	st := &snap.State{
		Design:      d.Name,
		Fingerprint: ck.fp,
		Config:      recordConfig(ck.cfg),
		Stage:       stage,
		Level:       level,
		Round:       round,
		RoutIter:    routIter,
		Lambda:      lambda,
		Mu:          mu,
		X:           make([]float64, n),
		Y:           make([]float64, n),
		Orient:      make([]uint8, n),
		Inflate:     make([]float64, n),
	}
	for i := range d.Cells {
		c := &d.Cells[i]
		st.X[i] = c.Pos.X
		st.Y[i] = c.Pos.Y
		st.Orient[i] = uint8(c.Orient)
		if c.Inflate > 1 {
			st.Inflate[i] = c.Inflate
		} else {
			st.Inflate[i] = 1
		}
	}
	if grid != nil {
		ds := grid.SnapshotDemand()
		st.Route = &snap.RouteState{
			NX: ds.NX, NY: ds.NY,
			HDem: ds.HDem, VDem: ds.VDem,
			HHist: ds.HHist, VHist: ds.VHist,
		}
	}
	ck.cfg.Checkpoint(st)
}
