package core

import (
	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/nlopt"
	"repro/internal/wl"
)

// quadInit warm-starts the problem with a quadratic star-model solve:
// minimize Σ_nets w · Σ_pins (pin − net centroid)², whose gradient with
// respect to a movable pin is simply 2w·(pin − centroid) (the centroid
// terms cancel). Fixed pins anchor the system, pulling each connected
// component toward its I/O; without the warm start, a poorly seeded
// design (all cells at the origin, or a generator clump) costs the
// nonlinear solver many rounds to untangle. Positions are projected into
// the die afterwards.
func quadInit(p *cluster.Problem, die geom.Rect) {
	n := p.NumObjs()
	if n == 0 {
		return
	}
	f := func(v []float64, grad []float64) float64 {
		x, y := v[:n], v[n:]
		var gx, gy []float64
		if grad != nil {
			gx, gy = grad[:n], grad[n:]
		}
		var total float64
		for ni := range p.Nets {
			net := &p.Nets[ni]
			deg := len(net.Pins)
			if deg < 2 {
				continue
			}
			w := net.Weight
			if w == 0 {
				w = 1
			}
			var cx, cy float64
			for _, pin := range net.Pins {
				if pin.Obj == wl.Fixed {
					cx += pin.OffX
					cy += pin.OffY
				} else {
					cx += x[pin.Obj] + pin.OffX
					cy += y[pin.Obj] + pin.OffY
				}
			}
			cx /= float64(deg)
			cy /= float64(deg)
			for _, pin := range net.Pins {
				var px, py float64
				if pin.Obj == wl.Fixed {
					px, py = pin.OffX, pin.OffY
				} else {
					px, py = x[pin.Obj]+pin.OffX, y[pin.Obj]+pin.OffY
				}
				dx, dy := px-cx, py-cy
				total += w * (dx*dx + dy*dy)
				if grad != nil && pin.Obj != wl.Fixed {
					gx[pin.Obj] += 2 * w * dx
					gy[pin.Obj] += 2 * w * dy
				}
			}
		}
		return total
	}
	v := make([]float64, 2*n)
	copy(v[:n], p.X)
	copy(v[n:], p.Y)
	nlopt.CG(f, v, nlopt.Options{
		MaxIter:  150,
		RelTol:   1e-6,
		StepInit: (die.W() + die.H()) / 8,
	})
	for i := 0; i < n; i++ {
		p.X[i] = geom.Interval{Lo: die.Lo.X, Hi: die.Hi.X}.Clamp(v[i])
		p.Y[i] = geom.Interval{Lo: die.Lo.Y, Hi: die.Hi.Y}.Clamp(v[n+i])
	}
}
