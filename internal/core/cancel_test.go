package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
)

func TestPlaceContextPreCanceled(t *testing.T) {
	d := gen.MustGenerate(smallCfg())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	_, err := MustNew(Config{}).PlaceContext(ctx, d)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("PlaceContext(canceled ctx) err = %v, want context.Canceled", err)
	}
	if el := time.Since(t0); el > 2*time.Second {
		t.Errorf("pre-canceled placement took %v, want immediate return", el)
	}
}

// TestPlaceContextCancelWithinOneRound pins the cancellation granularity
// the serving layer relies on: after cancel, at most one more GP round
// completes (the one whose CG run the Stop hook aborts mid-flight) —
// measured by counting recorded rounds, not wall clock, so the test is
// immune to machine speed.
func TestPlaceContextCancelWithinOneRound(t *testing.T) {
	d := gen.MustGenerate(gen.Congested(800, 1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var rounds, atCancel atomic.Int64
	rec := obs.New(obs.Config{OnEvent: func(e obs.Event) {
		if e.GP == nil {
			return
		}
		if n := rounds.Add(1); n == 3 {
			atCancel.Store(n)
			cancel()
		}
	}})
	before := runtime.NumGoroutine()
	_, err := MustNew(Config{RoutabilityIters: 3, Obs: rec}).PlaceContext(ctx, d)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("PlaceContext err = %v, want context.Canceled", err)
	}
	if atCancel.Load() == 0 {
		t.Fatal("placement finished before the third GP round; design too small for this test")
	}
	if total := rounds.Load(); total > atCancel.Load()+1 {
		t.Errorf("%d GP rounds ran after cancellation (total %d, canceled at %d), want at most 1",
			total-atCancel.Load(), total, atCancel.Load())
	}
	// All kernel workers must have wound down with the run.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines grew from %d to %d after canceled placement", before, n)
	}
}

// TestPlaceContextBackgroundMatchesPlace guards the compatibility
// contract: a never-canceled context must not change results.
func TestPlaceContextBackgroundMatchesPlace(t *testing.T) {
	d1 := gen.MustGenerate(smallCfg())
	d2 := gen.MustGenerate(smallCfg())
	r1, err := MustNew(Config{DisableRoutability: true}).Place(d1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MustNew(Config{DisableRoutability: true}).PlaceContext(context.Background(), d2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.HPWLFinal != r2.HPWLFinal || r1.CGIters != r2.CGIters {
		t.Errorf("PlaceContext(Background) diverged from Place: HPWL %v/%v, CG iters %d/%d",
			r1.HPWLFinal, r2.HPWLFinal, r1.CGIters, r2.CGIters)
	}
}
