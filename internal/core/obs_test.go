package core

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/route"
)

// TestTelemetryDoesNotPerturbResults pins the observation-only contract
// of internal/obs: the full flow (placement + routed evaluation) must be
// byte-identical with telemetry off and with the most intrusive telemetry
// configuration (trace + heatmap capture), at any worker count.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			place := func(rec *obs.Recorder) (*resultSnapshot, *obs.Recorder) {
				d := gen.MustGenerate(smallCfg())
				if _, err := MustNew(Config{Workers: workers, Obs: rec}).Place(d); err != nil {
					t.Fatal(err)
				}
				m, err := route.EvaluateDesign(d, route.RouterOptions{Workers: workers, Obs: rec})
				if err != nil {
					t.Fatal(err)
				}
				snap := &resultSnapshot{metrics: m}
				for i := range d.Cells {
					snap.pos = append(snap.pos, [2]float64{d.Cells[i].Pos.X, d.Cells[i].Pos.Y})
					snap.orient = append(snap.orient, int(d.Cells[i].Orient))
				}
				return snap, rec
			}

			off, _ := place(nil)
			on, rec := place(obs.New(obs.Config{CaptureHeatmaps: true}))

			for i := range off.pos {
				if off.pos[i] != on.pos[i] || off.orient[i] != on.orient[i] {
					t.Fatalf("cell %d differs with telemetry on: %v/%d vs %v/%d",
						i, off.pos[i], off.orient[i], on.pos[i], on.orient[i])
				}
			}
			if off.metrics.HPWL != on.metrics.HPWL ||
				off.metrics.RC != on.metrics.RC ||
				off.metrics.ScaledHPWL != on.metrics.ScaledHPWL ||
				off.metrics.Overflow != on.metrics.Overflow ||
				off.metrics.RoutedTiles != on.metrics.RoutedTiles {
				t.Fatalf("routed metrics differ with telemetry on: %+v vs %+v", off.metrics, on.metrics)
			}
			for i := range off.metrics.ACE {
				if off.metrics.ACE[i] != on.metrics.ACE[i] {
					t.Fatalf("ACE[%d] differs with telemetry on: %v vs %v",
						i, off.metrics.ACE[i], on.metrics.ACE[i])
				}
			}
			// The enabled run must actually have recorded something, or the
			// comparison above proves nothing.
			if len(rec.GPRounds()) == 0 || len(rec.RouteRounds()) == 0 || len(rec.Heatmaps()) == 0 {
				t.Fatalf("telemetry run recorded nothing: gp=%d route=%d heat=%d",
					len(rec.GPRounds()), len(rec.RouteRounds()), len(rec.Heatmaps()))
			}
		})
	}
}

type resultSnapshot struct {
	pos     [][2]float64
	orient  []int
	metrics route.Metrics
}
