package core

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/wl"
)

// problemMap ties the flat GP problem back to design cells.
type problemMap struct {
	// objToCell[i] is the design cell index of object i.
	objToCell []int
	// cellToObj[c] is the object index of cell c, or -1 for non-movable
	// cells.
	cellToObj []int
}

// lower flattens the design into a cluster.Problem over its movable cells.
// Pin offsets are taken relative to each cell's center in its current
// orientation; fixed pins become absolute positions.
func lower(d *db.Design) (*cluster.Problem, *problemMap) {
	pm := &problemMap{cellToObj: make([]int, len(d.Cells))}
	for i := range pm.cellToObj {
		pm.cellToObj[i] = -1
	}
	p := &cluster.Problem{}
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if !c.Movable() {
			continue
		}
		pm.cellToObj[ci] = len(pm.objToCell)
		pm.objToCell = append(pm.objToCell, ci)
		p.Area = append(p.Area, c.Area())
		p.HalfW = append(p.HalfW, c.W()/2)
		p.HalfH = append(p.HalfH, c.H()/2)
		p.Group = append(p.Group, c.Module)
		p.Region = append(p.Region, d.CellRegion(ci))
		p.Macro = append(p.Macro, c.Kind == db.Macro)
		ctr := c.Center()
		p.X = append(p.X, ctr.X)
		p.Y = append(p.Y, ctr.Y)
	}
	for ni := range d.Nets {
		net := &d.Nets[ni]
		if net.Degree() < 2 {
			continue
		}
		out := wl.Net{Weight: net.Weight}
		for _, pi := range net.Pins {
			pin := &d.Pins[pi]
			c := &d.Cells[pin.Cell]
			if obj := pm.cellToObj[pin.Cell]; obj >= 0 {
				off := c.OrientOffset(pin.Offset)
				out.Pins = append(out.Pins, wl.PinRef{
					Obj:  obj,
					OffX: off.X - c.W()/2,
					OffY: off.Y - c.H()/2,
				})
			} else {
				pos := d.PinPos(pi)
				out.Pins = append(out.Pins, wl.PinRef{Obj: wl.Fixed, OffX: pos.X, OffY: pos.Y})
			}
		}
		p.Nets = append(p.Nets, out)
	}
	return p, pm
}

// staggerCoincident displaces objects that share (nearly) the same center
// onto a small deterministic golden-angle spiral. Exactly coincident
// objects receive identical wirelength and density gradients and would
// move in lockstep forever — a degenerate start that occurs whenever a
// netlist arrives unplaced (every cell at the origin) or a caller parks
// all movables on one spot.
func staggerCoincident(p *cluster.Problem, die geom.Rect) {
	eps := (die.W() + die.H()) / 2 * 1e-4
	type key struct{ x, y int64 }
	seen := make(map[key]int, p.NumObjs())
	for i := 0; i < p.NumObjs(); i++ {
		k := key{int64(p.X[i] / eps), int64(p.Y[i] / eps)}
		n := seen[k]
		seen[k] = n + 1
		if n == 0 {
			continue
		}
		r := eps * 2 * math.Sqrt(float64(n))
		a := 2.399963 * float64(n)
		p.X[i] += r * math.Cos(a)
		p.Y[i] += r * math.Sin(a)
	}
}

// writeBack copies object centers into design cell positions, clamping
// footprints into the die.
func writeBack(d *db.Design, p *cluster.Problem, pm *problemMap) {
	for i, ci := range pm.objToCell {
		c := &d.Cells[ci]
		c.SetCenter(geom.Point{X: p.X[i], Y: p.Y[i]})
		c.Pos = d.Die.ClampRect(c.Rect()).Lo
	}
}

// fixedRects returns the footprints of fixed space-occupying objects,
// clipped to the die, for density base accounting.
func fixedRects(d *db.Design) []geom.Rect {
	var out []geom.Rect
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Movable() || c.Kind == db.Terminal || c.Area() == 0 {
			continue
		}
		r := c.Rect().Intersect(d.Die)
		if !r.Empty() {
			out = append(out, r)
		}
	}
	return out
}

// stripFences removes every fence constraint from the design in place
// (the "flat" baseline). The region records themselves are deleted too:
// leaving them would keep the fence areas reserved during legalization,
// which is the opposite of "ignore fences".
func stripFences(d *db.Design) {
	for i := range d.Cells {
		d.Cells[i].Region = db.NoRegion
	}
	for i := range d.Modules {
		d.Modules[i].Region = db.NoRegion
	}
	d.Regions = nil
}
