package core

import (
	"math"
	"testing"

	"repro/internal/bookshelf"
	"repro/internal/db"
	"repro/internal/dp"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/legal"
	"repro/internal/route"
)

// TestPlacedDesignSurvivesBookshelfRoundTrip places a design, writes it as
// a Bookshelf bundle, reads it back and checks that the wirelength and the
// routed score are identical — the end-to-end property a downstream user
// of the placer + evaluator pipeline relies on.
func TestPlacedDesignSurvivesBookshelfRoundTrip(t *testing.T) {
	d := gen.MustGenerate(smallCfg())
	if _, err := MustNew(Config{DisableRoutability: true}).Place(d); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	aux, err := bookshelf.WriteDesign(d, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bookshelf.ReadDesign(aux)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.HPWL()-d.HPWL()) > 1e-6*d.HPWL() {
		t.Errorf("HPWL changed across round trip: %v -> %v", d.HPWL(), got.HPWL())
	}
	if got.OverlapViolations() != 0 || got.FenceViolations() != 0 {
		t.Errorf("legality lost across round trip: overlaps=%d fences=%d",
			got.OverlapViolations(), got.FenceViolations())
	}
	m1, err := route.EvaluateDesign(d, route.RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := route.EvaluateDesign(got, route.RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m1.RC-m2.RC) > 1e-9 {
		t.Errorf("routed RC changed across round trip: %v -> %v", m1.RC, m2.RC)
	}
}

// TestLegalizationIdempotent re-legalizes an already legal placement and
// verifies cells barely move (Abacus may re-snap within a site).
func TestLegalizationIdempotent(t *testing.T) {
	d := gen.MustGenerate(smallCfg())
	if _, err := MustNew(Config{DisableRoutability: true}).Place(d); err != nil {
		t.Fatal(err)
	}
	before := make(map[int][2]float64)
	for _, ci := range d.Movable() {
		before[ci] = [2]float64{d.Cells[ci].Pos.X, d.Cells[ci].Pos.Y}
	}
	res, err := legal.LegalizeCells(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallbacks != 0 {
		t.Fatalf("re-legalization fell back on %d cells", res.Fallbacks)
	}
	siteW := d.Rows[0].SiteWidth
	moved := 0
	for ci, p := range before {
		c := &d.Cells[ci]
		if !c.Movable() {
			continue
		}
		if math.Abs(c.Pos.X-p[0]) > 2*siteW || math.Abs(c.Pos.Y-p[1]) > 1e-9 {
			moved++
		}
	}
	// A legal placement is a fixed point up to site re-snapping; allow a
	// tiny fraction of boundary cells to shuffle.
	if moved > len(before)/20 {
		t.Errorf("re-legalization moved %d/%d cells", moved, len(before))
	}
	if d.OverlapViolations() != 0 {
		t.Error("re-legalization broke legality")
	}
}

// TestDPIdempotentOnConvergedPlacement runs detailed placement twice; the
// second pass must find almost nothing left to improve.
func TestDPIdempotentOnConvergedPlacement(t *testing.T) {
	d := gen.MustGenerate(smallCfg())
	if _, err := MustNew(Config{DisableRoutability: true, DPPasses: 3}).Place(d); err != nil {
		t.Fatal(err)
	}
	h1 := d.HPWL()
	res := dp.Optimize(d, dp.Options{Passes: 2})
	improvement := (h1 - res.After) / h1
	if improvement > 0.02 {
		t.Errorf("second DP run improved HPWL by %.1f%%; first run under-converged", 100*improvement)
	}
	if d.OverlapViolations() != 0 || d.FenceViolations() != 0 {
		t.Error("extra DP pass broke legality")
	}
}

// TestDeterministicEndToEnd runs the full flow twice on identical inputs
// and demands bit-identical placements — the reproducibility property the
// benchmark tables depend on.
func TestDeterministicEndToEnd(t *testing.T) {
	run := func() *gen.Config { c := smallCfg(); return &c }
	d1 := gen.MustGenerate(*run())
	d2 := gen.MustGenerate(*run())
	if _, err := MustNew(Config{}).Place(d1); err != nil {
		t.Fatal(err)
	}
	if _, err := MustNew(Config{}).Place(d2); err != nil {
		t.Fatal(err)
	}
	for i := range d1.Cells {
		if d1.Cells[i].Pos != d2.Cells[i].Pos || d1.Cells[i].Orient != d2.Cells[i].Orient {
			t.Fatalf("cell %d differs between identical runs: %v/%v vs %v/%v",
				i, d1.Cells[i].Pos, d1.Cells[i].Orient, d2.Cells[i].Pos, d2.Cells[i].Orient)
		}
	}
}

// TestQuadInitPullsTowardAnchors checks the quadratic warm start: a cell
// whose only net ends at a corner terminal must move toward that corner.
func TestQuadInitPullsTowardAnchors(t *testing.T) {
	b := db.NewBuilder("q", geom.NewRect(0, 0, 100, 100))
	tl := b.AddTerminal("t", geom.Point{X: 0, Y: 0})
	a := b.AddStdCell("a", 2, 2)
	c := b.AddStdCell("c", 2, 2)
	b.AddNet("n0", 1, db.Conn{Cell: tl}, b.CenterConn(a))
	b.AddNet("n1", 1, b.CenterConn(a), b.CenterConn(c))
	d := b.MustDesign()
	d.Cells[a].SetCenter(geom.Point{X: 90, Y: 90})
	d.Cells[c].SetCenter(geom.Point{X: 90, Y: 90})
	prob, pm := lower(d)
	quadInit(prob, d.Die)
	writeBack(d, prob, pm)
	if got := d.Cells[a].Center(); got.X > 30 || got.Y > 30 {
		t.Errorf("anchored cell stayed at %v", got)
	}
	// The chained cell follows.
	if got := d.Cells[c].Center(); got.X > 40 || got.Y > 40 {
		t.Errorf("chained cell stayed at %v", got)
	}
}

// TestQuadInitNoAnchorsIsStable verifies the warm start does not fling an
// anchor-free design around (translation-invariant system).
func TestQuadInitNoAnchorsIsStable(t *testing.T) {
	b := db.NewBuilder("q2", geom.NewRect(0, 0, 100, 100))
	a := b.AddStdCell("a", 2, 2)
	c := b.AddStdCell("c", 2, 2)
	b.AddNet("n", 1, b.CenterConn(a), b.CenterConn(c))
	d := b.MustDesign()
	d.Cells[a].SetCenter(geom.Point{X: 40, Y: 50})
	d.Cells[c].SetCenter(geom.Point{X: 60, Y: 50})
	prob, pm := lower(d)
	quadInit(prob, d.Die)
	writeBack(d, prob, pm)
	// The pair should collapse toward a common point between them, not
	// leave the die or separate.
	pa, pc := d.Cells[a].Center(), d.Cells[c].Center()
	if pa.Dist(pc) > 20.01 {
		t.Errorf("pair separated: %v %v", pa, pc)
	}
	mid := geom.Point{X: (pa.X + pc.X) / 2, Y: (pa.Y + pc.Y) / 2}
	if mid.Dist(geom.Point{X: 50, Y: 50}) > 10 {
		t.Errorf("pair drifted: midpoint %v", mid)
	}
}

// TestDisableQuadInitStillLegal checks the cold-start ablation path.
func TestDisableQuadInitStillLegal(t *testing.T) {
	d := gen.MustGenerate(smallCfg())
	res, err := MustNew(Config{DisableRoutability: true, DisableQuadInit: true}).Place(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overlaps != 0 || res.OutOfDie != 0 || res.FenceViolations != 0 {
		t.Errorf("cold start broke legality: %+v", res)
	}
}
