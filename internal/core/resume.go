package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/route"
	"repro/internal/snap"
)

// PlaceFromCheckpoint resumes a placement flow from a snapshot produced by
// the Config.Checkpoint hook and runs it to a legal final result. The
// design must be the one the checkpoint was taken from (cell count and
// fingerprint are verified). The resumed flow is single-level: multilevel
// clustering, the quadratic warm start and coincidence staggering are all
// skipped because the checkpoint already carries spread positions.
//
// A StageGP checkpoint re-enters the λ-escalation loop at the recorded
// weights with the remaining round budget, then runs the routability loop
// and the finishing stages. A StageRoutability checkpoint skips global
// placement entirely, restores the router demand/history grid and
// re-enters the routability loop at the recorded iteration.
//
// Checkpoints taken by the resumed run itself (when cfg.Checkpoint is set)
// continue the original round numbering, so a twice-resumed run still
// converges within the configured budgets.
func (pl *Placer) PlaceFromCheckpoint(ctx context.Context, d *db.Design, st *snap.State) (Result, error) {
	cfg := pl.cfg
	res := Result{}
	if st == nil {
		return res, fmt.Errorf("core: nil checkpoint")
	}
	if len(d.Cells) == 0 {
		return res, fmt.Errorf("core: empty design")
	}
	if d.Die.Empty() {
		return res, fmt.Errorf("core: design %q has empty die", d.Name)
	}
	if st.Stage != snap.StageGP && st.Stage != snap.StageRoutability {
		return res, fmt.Errorf("core: checkpoint stage %v is not resumable", st.Stage)
	}
	// A checkpoint stamped with its run configuration only resumes under a
	// matching one — continuing with, say, a different congestion source
	// would finish a run neither configuration describes.
	if err := ValidateResumeConfig(cfg, st); err != nil {
		return res, err
	}
	if st.NumCells() != len(d.Cells) {
		return res, fmt.Errorf("core: checkpoint holds %d cells, design %q has %d",
			st.NumCells(), d.Name, len(d.Cells))
	}
	// Fence stripping must mirror PlaceContext before the fingerprint
	// check: the checkpoint was fingerprinted after stripping.
	if cfg.DisableFences {
		stripFences(d)
	}
	// The input-identity fingerprint must be taken before the checkpoint
	// positions are applied: a checkpoint emitted by this resumed run has
	// to carry the ORIGINAL problem's fingerprint, or a second resume
	// against a freshly loaded design would be rejected.
	fp := d.Fingerprint()
	if st.Fingerprint != ([32]byte{}) && fp != st.Fingerprint {
		return res, fmt.Errorf("core: checkpoint fingerprint %x… does not match design %q (%x…)",
			st.Fingerprint[:6], d.Name, fp[:6])
	}

	// Apply the checkpointed cell state.
	for i := range d.Cells {
		c := &d.Cells[i]
		c.Pos = geom.Point{X: st.X[i], Y: st.Y[i]}
		if o := db.Orient(st.Orient[i]); o >= db.N && o <= db.FW {
			c.Orient = o
		}
		if st.Inflate != nil && st.Inflate[i] > 1 {
			c.Inflate = st.Inflate[i]
		}
	}

	target := cfg.TargetDensity
	if target == 0 {
		u := d.Utilization()
		target = math.Min(1, u*1.15+0.05)
	}

	rec := cfg.Obs
	t0 := time.Now()
	lowSp := rec.StartSpan("lower")
	prob, pm := lower(d)
	if len(pm.objToCell) == 0 {
		return res, fmt.Errorf("core: design %q has no movable cells", d.Name)
	}
	fixed := fixedRects(d)
	// The density model must see the checkpointed inflation, not the base
	// cell areas (a routability-stage resume would otherwise respread at
	// pre-inflation density and undo the loop's relief work).
	for i, ci := range pm.objToCell {
		prob.Area[i] = d.Cells[ci].InflatedArea()
	}
	if lowSp != nil {
		lowSp.Add("objects", int64(prob.NumObjs()))
		lowSp.Add("nets", int64(len(prob.Nets)))
		lowSp.End()
	}

	var ck *checkpointer
	if cfg.Checkpoint != nil {
		ck = &checkpointer{d: d, cfg: cfg, fp: fp}
	}
	res.Levels = 1
	lastLambda, lastMu := st.Lambda, st.Mu
	if st.Stage == snap.StageGP && st.Round < cfg.MaxLambdaRounds {
		rcfg := cfg
		rcfg.MaxLambdaRounds = cfg.MaxLambdaRounds - st.Round
		gpSp := rec.StartSpan("gp")
		s := newLevelSolver(rcfg, prob, d.Die, fixed, d.Regions, target, d.RowHeight())
		s.startLambda = st.Lambda
		s.startMu = st.Mu
		s.rec = rec
		s.level = 0
		s.span = gpSp.StartSpanf("level-%d", 0)
		if ck != nil {
			s.onRound = ck.gpHook(prob, pm, st.Round)
		}
		gst := s.solve(ctx, cfg.Trace)
		if s.span != nil {
			s.span.Add("lambda_rounds", int64(gst.LambdaRounds))
			s.span.Add("cg_iters", int64(gst.CGIters))
			s.span.End()
		}
		res.LambdaRounds = st.Round + gst.LambdaRounds
		res.CGIters = gst.CGIters
		res.Overflow = gst.Overflow
		lastLambda = gst.FinalLambda
		lastMu = gst.FinalMu
		if err := ctx.Err(); err != nil {
			gpSp.End()
			writeBack(d, prob, pm)
			return res, canceled("global placement", err)
		}
		gpSp.End()
		writeBack(d, prob, pm)
	} else {
		res.LambdaRounds = st.Round
	}
	res.GPTime = time.Since(t0)
	res.HPWLGlobal = d.HPWL()
	rec.Log().Debug("resumed global placement done",
		"stage", st.Stage.String(), "lambda_rounds", res.LambdaRounds,
		"hpwl", res.HPWLGlobal)

	var routedGrid *route.Grid
	if !cfg.DisableRoutability && d.Route != nil {
		t1 := time.Now()
		grid, err := route.NewGrid(d)
		if err != nil {
			return res, err
		}
		startIter := 0
		if st.Stage == snap.StageRoutability {
			startIter = st.RoutIter
			if st.Route != nil {
				if err := grid.RestoreDemand(route.DemandState{
					NX: st.Route.NX, NY: st.Route.NY,
					HDem: st.Route.HDem, VDem: st.Route.VDem,
					HHist: st.Route.HHist, VHist: st.Route.VHist,
				}); err != nil {
					return res, err
				}
			}
		}
		g, err := pl.routabilityLoop(ctx, d, prob, pm, fixed, target, lastLambda, lastMu, &res, ck, grid, startIter)
		if err != nil {
			return res, err
		}
		routedGrid = g
		res.RouteOptTime = time.Since(t1)
		res.HPWLGlobal = d.HPWL()
	}
	return res, pl.finish(ctx, d, routedGrid, &res)
}
