package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/dp"
	"repro/internal/estimate"
	"repro/internal/geom"
	"repro/internal/legal"
	"repro/internal/route"
	"repro/internal/snap"
)

// Placer runs the full placement flow for one configuration.
type Placer struct {
	cfg Config
}

// New builds a placer; the zero Config is the full WA-model,
// routability-driven, hierarchy-aware flow.
func New(cfg Config) (*Placer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Placer{cfg: cfg.withDefaults()}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Placer {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Place runs global placement, the routability loop, macro orientation,
// legalization and detailed placement on d, mutating cell positions (and
// orientations, and macro Fixed flags). It returns the run report.
func (pl *Placer) Place(d *db.Design) (Result, error) {
	return pl.PlaceContext(context.Background(), d)
}

// Canceled wraps the context error of an aborted placement so callers can
// both errors.Is against context.Canceled/DeadlineExceeded and see which
// stage the run died in.
func canceled(stage string, err error) error {
	return fmt.Errorf("core: placement canceled during %s: %w", stage, err)
}

// PlaceContext is Place honoring ctx for cancellation and deadlines.
// Cancellation is observed at CG-iteration, λ-round, routability-iteration
// and reroute-batch granularity, so a canceled run returns within a
// fraction of one GP round. The design is left in whatever intermediate
// state the flow reached — callers that must not ship partial placements
// should treat a non-nil error as "discard d". A ctx that never cancels
// leaves results byte-identical to Place.
func (pl *Placer) PlaceContext(ctx context.Context, d *db.Design) (Result, error) {
	cfg := pl.cfg
	res := Result{}
	if len(d.Cells) == 0 {
		return res, fmt.Errorf("core: empty design")
	}
	if d.Die.Empty() {
		return res, fmt.Errorf("core: design %q has empty die", d.Name)
	}
	if cfg.DisableFences {
		stripFences(d)
	}

	target := cfg.TargetDensity
	if target == 0 {
		u := d.Utilization()
		target = math.Min(1, u*1.15+0.05)
	}

	// ---- Global placement -------------------------------------------
	rec := cfg.Obs
	t0 := time.Now()
	lowSp := rec.StartSpan("lower")
	prob, pm := lower(d)
	if len(pm.objToCell) == 0 {
		return res, fmt.Errorf("core: design %q has no movable cells", d.Name)
	}
	fixed := fixedRects(d)
	staggerCoincident(prob, d.Die)
	if !cfg.DisableQuadInit {
		quadInit(prob, d.Die)
		staggerCoincident(prob, d.Die)
	}
	if lowSp != nil {
		lowSp.Add("objects", int64(prob.NumObjs()))
		lowSp.Add("nets", int64(len(prob.Nets)))
		lowSp.End()
	}

	var hier *cluster.Hierarchy
	if cfg.DisableMultilevel {
		hier = &cluster.Hierarchy{Levels: []*cluster.Problem{prob}}
	} else {
		hier = cluster.Build(prob, cluster.Options{MinObjs: cfg.ClusterMinObjs, Obs: rec})
	}
	res.Levels = len(hier.Levels)
	var ck *checkpointer
	if cfg.Checkpoint != nil {
		ck = newCheckpointer(d, cfg)
	}
	gpSp := rec.StartSpan("gp")
	var lastLambda, lastMu float64
	for l := len(hier.Levels) - 1; l >= 0; l-- {
		var trace *Trace
		if l == 0 {
			trace = cfg.Trace
		}
		s := newLevelSolver(cfg, hier.Levels[l], d.Die, fixed, d.Regions, target, d.RowHeight())
		s.rec = rec
		s.level = l
		s.span = gpSp.StartSpanf("level-%d", l)
		if ck != nil && l == 0 {
			// Checkpoints are only meaningful at the finest level, where
			// problem objects are real cells (coarse-level cluster centers
			// cannot seed a resumed flow).
			s.onRound = ck.gpHook(prob, pm, 0)
		}
		st := s.solve(ctx, trace)
		if s.span != nil {
			s.span.Add("lambda_rounds", int64(st.LambdaRounds))
			s.span.Add("cg_iters", int64(st.CGIters))
			s.span.End()
		}
		res.LambdaRounds += st.LambdaRounds
		res.CGIters += st.CGIters
		res.Overflow = st.Overflow
		lastLambda = st.FinalLambda
		lastMu = st.FinalMu
		if err := ctx.Err(); err != nil {
			gpSp.End()
			writeBack(d, prob, pm)
			return res, canceled("global placement", err)
		}
		if l > 0 {
			hier.Interpolate(l - 1)
		}
	}
	gpSp.End()
	writeBack(d, prob, pm)
	res.GPTime = time.Since(t0)
	res.HPWLGlobal = d.HPWL()
	rec.Log().Debug("global placement done",
		"levels", res.Levels, "lambda_rounds", res.LambdaRounds,
		"cg_iters", res.CGIters, "overflow", res.Overflow, "hpwl", res.HPWLGlobal)

	// ---- Routability loop -------------------------------------------
	var routedGrid *route.Grid
	if !cfg.DisableRoutability && d.Route != nil {
		t1 := time.Now()
		g, err := pl.routabilityLoop(ctx, d, prob, pm, fixed, target, lastLambda, lastMu, &res, ck, nil, 0)
		if err != nil {
			return res, err
		}
		routedGrid = g
		res.RouteOptTime = time.Since(t1)
		res.HPWLGlobal = d.HPWL()
	}
	return res, pl.finish(ctx, d, routedGrid, &res)
}

// finish is the back half of the flow shared by PlaceContext and
// PlaceFromCheckpoint: macro orientation, legalization, detailed placement
// and the final quality checks. routedGrid, when non-nil, supplies the
// congestion map for routability-aware detailed placement.
func (pl *Placer) finish(ctx context.Context, d *db.Design, routedGrid *route.Grid, res *Result) error {
	cfg := pl.cfg
	rec := cfg.Obs
	if err := ctx.Err(); err != nil {
		return canceled("routability", err)
	}

	// ---- Macro orientation ------------------------------------------
	if !cfg.DisableMacroOrient {
		oSp := rec.StartSpan("orient")
		orientMacros(d)
		oSp.End()
	}

	// ---- Legalization ------------------------------------------------
	t2 := time.Now()
	legSp := rec.StartSpan("legalize")
	legal.LegalizeMacros(d)
	lres, err := legal.LegalizeCellsOpt(d, legal.Options{Workers: cfg.Workers})
	if err != nil {
		return err
	}
	if legSp != nil {
		legSp.Add("fallbacks", int64(lres.Fallbacks))
		legSp.Add("workers", int64(lres.Workers))
		legSp.End()
	}
	res.Legal = lres
	res.LegalTime = time.Since(t2)
	res.HPWLLegal = d.HPWL()
	rec.Log().Debug("legalization done", "fallbacks", lres.Fallbacks, "hpwl", res.HPWLLegal)
	if err := ctx.Err(); err != nil {
		return canceled("legalization", err)
	}

	// ---- Detailed placement ------------------------------------------
	if !cfg.DisableDP {
		t3 := time.Now()
		dpOpt := dp.Options{Passes: cfg.DPPasses, Workers: cfg.Workers, Obs: rec}
		if routedGrid != nil {
			if src, _ := cfg.ResolvedCongestion(); src == "estimate" {
				// Estimate mode: hand detailed placement a *live*
				// probabilistic map instead of a frozen routed snapshot —
				// the dp engine attaches it to its incremental cache so
				// every committed move updates the guard in
				// O(pins-on-cell), and later moves see earlier relief.
				dpOpt.Estimate = estimate.New(routedGrid, estimate.Options{Workers: cfg.Workers})
			} else {
				// Routability-aware detailed placement: the final routed
				// congestion map penalizes moves into overloaded tiles.
				dpOpt.Congestion = routedGrid.TileCongestion()
				dpOpt.CongNX = routedGrid.NX
				dpOpt.CongOrigin = routedGrid.Origin
				dpOpt.CongTileW = routedGrid.TileW
				dpOpt.CongTileH = routedGrid.TileH
			}
		}
		res.DP = dp.Optimize(d, dpOpt)
		res.DPTime = time.Since(t3)
	}
	res.HPWLFinal = d.HPWL()
	res.Overlaps = d.OverlapViolations()
	res.FenceViolations = d.FenceViolations()
	res.OutOfDie = d.OutOfDie()
	return nil
}

// routabilityLoop runs estimate → inflate → respread rounds on the level-0
// problem, updating design positions after each round. Cancellation of
// ctx aborts between (and inside, at batch granularity) routing calls and
// respread rounds. ck, when non-nil, checkpoints after every iteration.
// grid, when non-nil, is a pre-built (possibly demand-restored) routing
// grid; startIter skips already-completed iterations on resume.
func (pl *Placer) routabilityLoop(ctx context.Context, d *db.Design, prob *cluster.Problem, pm *problemMap, fixed []geom.Rect, target float64, lastLambda, lastMu float64, res *Result, ck *checkpointer, grid *route.Grid, startIter int) (*route.Grid, error) {
	cfg := pl.cfg
	rec := cfg.Obs
	if grid == nil {
		var err error
		grid, err = route.NewGrid(d)
		if err != nil {
			return nil, err
		}
	}
	loopSp := rec.StartSpan("routability")
	// Inflation budget: inflated movable area must stay within the
	// spreadable capacity or the density solver can never converge.
	freeArea := d.Die.Area() - d.FixedAreaInDie()
	budget := 0.9 * target * freeArea
	// Wirelength guard: spreading for routability is only worth a bounded
	// wirelength hit (the sHPWL metric trades 3% HPWL per RC point).
	hpwlBudget := d.HPWL() * 1.15
	origW := make([]float64, len(prob.Nets))
	for ni := range prob.Nets {
		origW[ni] = prob.Nets[ni].Weight
	}

	router := route.NewRouter(grid, route.RouterOptions{MaxRRRIters: 2, Workers: cfg.Workers, Obs: rec})
	// Congestion source: "route" routes every round; "estimate" replaces
	// the early rounds' router calls with the probabilistic estimator and
	// keeps the router only for the trailing RouteLastRounds rounds (and
	// the final validation route below, which always runs).
	congSource, switchover := cfg.ResolvedCongestion()
	var est *estimate.Estimator
	if congSource == "estimate" {
		est = estimate.New(grid, estimate.Options{Workers: cfg.Workers})
		if loopSp != nil {
			loopSp.Add("switchover_round", int64(switchover))
		}
	}
	// The loop is gated: every *routed* iteration's placement is scored
	// with the router (the same sHPWL proxy the final evaluation uses) and
	// the best snapshot wins, so the loop can explore without ever
	// shipping a placement worse than its starting point. Estimate-only
	// rounds are not scored (that is the time they save); the trailing
	// routed rounds and the final route re-enter the gate.
	bestX := append([]float64(nil), prob.X...)
	bestY := append([]float64(nil), prob.Y...)
	bestScore := math.Inf(1)
	scoreNow := func() float64 {
		rc := route.RC(grid.ACEProfile())
		return route.ScaledHPWL(d.HPWL(), rc)
	}
	for iter := startIter; iter < cfg.RoutabilityIters; iter++ {
		estimated := est != nil && iter < switchover
		iterSp := loopSp.StartSpanf("iter-%d", iter)
		var tileCong []float64
		var stat CongStat
		if estimated {
			// Estimate round: the congestion signal is the RUDY +
			// pin-density map over the current positions — no routing.
			est.Recompute(d)
			tileCong = est.TileCongestion()
			stat = CongStat{ACE: est.ACEProfile(), Estimated: true}
			if iterSp != nil {
				iterSp.Add("estimated", 1)
			}
			if loopSp != nil {
				loopSp.Add("estimate_rounds", 1)
			}
			if rec.HeatmapsEnabled() {
				rec.RecordHeatmap(fmt.Sprintf("estimate-%d", iter), est.NX, est.NY, tileCong)
			}
		} else {
			if rec.Enabled() {
				router.SetTraceContext(iterSp, fmt.Sprintf("routability-%d", iter))
			}
			// Routed round: the congestion signal is the *routed* demand
			// map — the design is globally routed with a reduced rip-up
			// budget and the leftover per-tile utilization marks the spots
			// placement must relieve.
			if _, err := router.RouteDesignCtx(ctx, d); err != nil {
				iterSp.End()
				loopSp.End()
				return nil, canceled("routability", err)
			}
			if rec.HeatmapsEnabled() {
				rec.RecordHeatmap(fmt.Sprintf("routability-%d", iter), grid.NX, grid.NY, grid.TileCongestion())
			}
			if sc := scoreNow(); sc < bestScore {
				bestScore = sc
				copy(bestX, prob.X)
				copy(bestY, prob.Y)
			}
			tileCong = grid.TileCongestion()
			stat = CongStat{ACE: grid.ACEProfile()}
		}
		for _, c := range tileCong {
			if c > stat.MaxTileCongestion {
				stat.MaxTileCongestion = c
			}
		}
		// Inflation is relative: only tiles that are congested both in
		// absolute terms and versus the design's 75th percentile inflate,
		// so a uniformly overloaded design still gets *targeted* relief
		// of its worst spots instead of a blanket (and useless) blow-up.
		ref := math.Max(cfg.CongestionThreshold, quantile(tileCong, 0.75))
		inflated := 0
		for _, ci := range pm.objToCell {
			c := &d.Cells[ci]
			if c.Kind == db.Macro {
				// Macros are never inflated: their footprints already
				// dominate their tiles and inflating them just thrashes
				// the whole region.
				continue
			}
			tx, ty := grid.TileOf(c.Center())
			cong := tileCong[ty*grid.NX+tx]
			if cong <= ref {
				continue
			}
			ratio := math.Min(cfg.InflateMax, math.Pow(cong/ref, cfg.InflateExp))
			// Grow gently: at most +25% density footprint per iteration,
			// so one noisy estimate cannot blow a region up.
			ratio = math.Min(ratio, c.Inflate*1.25)
			if ratio > c.Inflate {
				c.Inflate = ratio
				inflated++
			}
		}
		// Enforce the area budget by scaling the inflation excess down.
		var inflatedArea float64
		for _, ci := range pm.objToCell {
			inflatedArea += d.Cells[ci].InflatedArea()
		}
		if inflatedArea > budget {
			baseArea := 0.0
			for _, ci := range pm.objToCell {
				baseArea += d.Cells[ci].Area()
			}
			if inflatedArea > baseArea {
				scale := (budget - baseArea) / (inflatedArea - baseArea)
				if scale < 0 {
					scale = 0
				}
				for _, ci := range pm.objToCell {
					c := &d.Cells[ci]
					c.Inflate = 1 + (c.Inflate-1)*scale
				}
			}
		}
		for i, ci := range pm.objToCell {
			prob.Area[i] = d.Cells[ci].InflatedArea()
		}
		stat.Inflated = inflated
		res.Cong = append(res.Cong, stat)
		if iterSp != nil {
			iterSp.Add("inflated", int64(inflated))
		}
		rec.Log().Debug("routability iteration",
			"iter", iter, "inflated", inflated, "estimated", estimated,
			"max_tile_congestion", stat.MaxTileCongestion, "score", bestScore)
		if inflated == 0 {
			iterSp.End()
			break
		}
		weightNetsByCongestion(prob, grid, tileCong, ref, origW)
		// Respread with the inflated areas: a short run that resumes the
		// λ escalation near where the main GP ended, so the established
		// spreading is preserved and only the inflated regions move.
		respread := cfg
		respread.MaxLambdaRounds = 4
		s := newLevelSolver(respread, prob, d.Die, fixed, d.Regions, target, d.RowHeight())
		s.startLambda = lastLambda
		s.startMu = lastMu
		s.freeze = true
		s.stepScale = 0.25
		s.rec = rec
		s.phase = "respread"
		s.span = iterSp.StartSpan("respread")
		st := s.solve(ctx, nil)
		s.span.End()
		res.LambdaRounds += st.LambdaRounds
		res.CGIters += st.CGIters
		res.Overflow = st.Overflow
		writeBack(d, prob, pm)
		iterSp.End()
		if err := ctx.Err(); err != nil {
			loopSp.End()
			return nil, canceled("routability", err)
		}
		if ck != nil {
			ck.emit(snap.StageRoutability, 0, res.LambdaRounds, iter+1, lastLambda, lastMu, grid)
		}
		if d.HPWL() > hpwlBudget {
			break
		}
	}
	// Restore pre-loop net weights so later HPWL-driven stages (macro
	// orientation, detailed placement) see the design's true weights.
	for ni := range prob.Nets {
		prob.Nets[ni].Weight = origW[ni]
	}
	// Score the final state, restore the best snapshot if it lost, and
	// record the shipped state's congestion profile (experiment F6 reads
	// res.Cong's last entry as "after the loop").
	if rec.Enabled() {
		router.SetTraceContext(loopSp, "final")
	}
	if _, err := router.RouteDesignCtx(ctx, d); err != nil {
		loopSp.End()
		return nil, canceled("routability", err)
	}
	if scoreNow() > bestScore {
		copy(prob.X, bestX)
		copy(prob.Y, bestY)
		writeBack(d, prob, pm)
		if _, err := router.RouteDesignCtx(ctx, d); err != nil {
			loopSp.End()
			return nil, canceled("routability", err)
		}
	}
	final := CongStat{ACE: grid.ACEProfile()}
	for _, c := range grid.TileCongestion() {
		if c > final.MaxTileCongestion {
			final.MaxTileCongestion = c
		}
	}
	res.Cong = append(res.Cong, final)
	if rec.HeatmapsEnabled() {
		rec.RecordHeatmap("final", grid.NX, grid.NY, grid.TileCongestion())
	}
	loopSp.End()
	return grid, nil
}

// weightNetsByCongestion scales each GP net's weight by how congested the
// tiles under its bounding box are (relative to ref, clamped to [1, 3]),
// so the respread's wirelength model preferentially shortens nets that
// run through hot regions — reducing their routing demand directly.
// origW holds the pre-loop weights so multipliers never compound.
func weightNetsByCongestion(prob *cluster.Problem, grid *route.Grid, tileCong []float64, ref float64, origW []float64) {
	for ni := range prob.Nets {
		net := &prob.Nets[ni]
		if len(net.Pins) < 2 {
			continue
		}
		// Bounding box over current pin positions.
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for _, p := range net.Pins {
			var px, py float64
			if p.Obj >= 0 {
				px, py = prob.X[p.Obj]+p.OffX, prob.Y[p.Obj]+p.OffY
			} else {
				px, py = p.OffX, p.OffY
			}
			minX = math.Min(minX, px)
			maxX = math.Max(maxX, px)
			minY = math.Min(minY, py)
			maxY = math.Max(maxY, py)
		}
		// Sample congestion at the box center and corners.
		var cong float64
		for _, pt := range [...][2]float64{
			{(minX + maxX) / 2, (minY + maxY) / 2},
			{minX, minY}, {maxX, maxY}, {minX, maxY}, {maxX, minY},
		} {
			tx, ty := grid.TileOf(geom.Point{X: pt[0], Y: pt[1]})
			cong += tileCong[ty*grid.NX+tx]
		}
		cong /= 5
		mult := 1.0
		if ref > 0 && cong > ref {
			mult = math.Min(3, cong/ref)
		}
		net.Weight = origW[ni] * mult
	}
}

// quantile returns the q-quantile (0..1) of vs by sorting a copy.
func quantile(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	cp := append([]float64(nil), vs...)
	sort.Float64s(cp)
	i := int(q * float64(len(cp)-1))
	return cp[i]
}

// orientMacros greedily picks, per movable macro, the orientation that
// minimizes the HPWL of its incident nets (the discrete counterpart of
// the paper's rotation force; candidates keep the footprint inside the
// die).
func orientMacros(d *db.Design) {
	candidates := []db.Orient{db.N, db.S, db.FN, db.FS, db.E, db.W, db.FE, db.FW}
	for _, mi := range d.MovableMacros() {
		c := &d.Cells[mi]
		center := c.Center()
		bestOrient := c.Orient
		bestCost := math.Inf(1)
		origOrient := c.Orient
		for _, o := range candidates {
			c.Orient = o
			c.SetCenter(center)
			if !d.Die.ContainsRect(c.Rect()) {
				continue
			}
			var cost float64
			for _, pi := range c.Pins {
				cost += d.NetHPWL(d.Pins[pi].Net)
			}
			if cost < bestCost {
				bestCost = cost
				bestOrient = o
			}
		}
		if math.IsInf(bestCost, 1) {
			bestOrient = origOrient
		}
		c.Orient = bestOrient
		c.SetCenter(center)
	}
}
