package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/route"
	"repro/internal/snap"
)

// resumeCfg is the placer configuration for the kill/resume tests: the
// full default flow with a fixed worker count so both runs are
// deterministic. Checkpoints are only emitted at the finest level, so the
// resumed (single-level) flow traverses the same level-0 machinery the
// uninterrupted run does.
func resumeCfg() Config {
	return Config{Workers: 1}
}

// resumeGenCfg generates a moderately congested design that the full flow
// legalizes cleanly: tight enough routing capacity that the routability
// loop actually inflates, loose enough placement density that overlaps
// resolve to zero (checked by the tests).
func resumeGenCfg(seed int64) gen.Config {
	return gen.Config{
		Name: "ck", Seed: seed, NumStdCells: 500,
		NumFixedMacros: 2, NumMovableMacros: 1, MacroSizeRows: 4,
		NumModules: 3, NumFences: 2, NumTerminals: 24,
		TargetUtil: 0.58, TrackCapacity: 12,
	}
}

// TestCheckpointResumeEquivalence is the acceptance test for the
// persistence subsystem: a run checkpointed every λ round and killed
// mid-GP, then resumed from its last checkpoint on a freshly loaded
// design, must produce a legal placement whose sHPWL is within 1% of the
// uninterrupted run's.
func TestCheckpointResumeEquivalence(t *testing.T) {
	genCfg := resumeGenCfg(3)

	// Uninterrupted reference run.
	ref := gen.MustGenerate(genCfg)
	refRes, err := MustNew(resumeCfg()).Place(ref)
	if err != nil {
		t.Fatalf("reference Place: %v", err)
	}
	refM, err := route.EvaluateDesign(ref, route.RouterOptions{Workers: 1})
	if err != nil {
		t.Fatalf("reference evaluate: %v", err)
	}

	// Checkpointed run, killed deterministically mid-GP: the context is
	// canceled inside the checkpoint hook itself (same goroutine), so the
	// solver stops at the following λ round on every execution.
	const killAfter = 5
	var blobs [][]byte
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := resumeCfg()
	cfg.Checkpoint = func(st *snap.State) {
		blobs = append(blobs, snap.Encode(st))
		if st.Stage == snap.StageGP && st.Round >= killAfter {
			cancel()
		}
	}
	killed := gen.MustGenerate(genCfg)
	if _, err := MustNew(cfg).PlaceContext(ctx, killed); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run err = %v, want context.Canceled", err)
	}
	if len(blobs) < killAfter {
		t.Fatalf("only %d checkpoints before the kill", len(blobs))
	}

	// Resume on a fresh design (as a restarted process would reload it)
	// from the last checkpoint, decoded through the real codec.
	last, err := snap.Decode(blobs[len(blobs)-1])
	if err != nil {
		t.Fatalf("decode last checkpoint: %v", err)
	}
	if last.Stage != snap.StageGP {
		t.Fatalf("last checkpoint stage = %v, want gp", last.Stage)
	}
	resumed := gen.MustGenerate(genCfg)
	res, err := MustNew(resumeCfg()).PlaceFromCheckpoint(context.Background(), resumed, last)
	if err != nil {
		t.Fatalf("PlaceFromCheckpoint: %v", err)
	}
	if res.Overlaps != 0 || res.OutOfDie != 0 || res.FenceViolations != 0 {
		t.Errorf("resumed placement not legal: overlaps=%d out=%d fence=%d",
			res.Overlaps, res.OutOfDie, res.FenceViolations)
	}
	if res.LambdaRounds <= last.Round {
		t.Errorf("resumed run reports %d λ rounds, checkpoint already had %d", res.LambdaRounds, last.Round)
	}

	resM, err := route.EvaluateDesign(resumed, route.RouterOptions{Workers: 1})
	if err != nil {
		t.Fatalf("resumed evaluate: %v", err)
	}
	rel := math.Abs(resM.ScaledHPWL-refM.ScaledHPWL) / refM.ScaledHPWL
	t.Logf("sHPWL uninterrupted=%.6g resumed=%.6g (Δ %.3f%%)",
		refM.ScaledHPWL, resM.ScaledHPWL, 100*rel)
	if rel > 0.01 {
		t.Errorf("resumed sHPWL %.6g deviates %.2f%% from uninterrupted %.6g (budget 1%%)",
			resM.ScaledHPWL, 100*rel, refM.ScaledHPWL)
	}
	if refRes.Overlaps != 0 {
		t.Errorf("reference run not legal: %d overlaps", refRes.Overlaps)
	}
}

// TestCheckpointRoutabilityResume kills the run between routability
// iterations and resumes from the StageRoutability snapshot, which must
// restore the router demand grid and still finish legally.
func TestCheckpointRoutabilityResume(t *testing.T) {
	genCfg := resumeGenCfg(7)

	var routBlob []byte
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := resumeCfg()
	cfg.Checkpoint = func(st *snap.State) {
		if st.Stage == snap.StageRoutability {
			routBlob = snap.Encode(st)
			cancel()
		}
	}
	killed := gen.MustGenerate(genCfg)
	_, err := MustNew(cfg).PlaceContext(ctx, killed)
	if routBlob == nil {
		t.Skipf("design converged without inflation (no routability checkpoint); err=%v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run err = %v, want context.Canceled", err)
	}

	st, err := snap.Decode(routBlob)
	if err != nil {
		t.Fatal(err)
	}
	if st.Route == nil {
		t.Fatal("routability checkpoint carries no demand grid")
	}
	if st.RoutIter < 1 {
		t.Fatalf("RoutIter = %d, want >= 1", st.RoutIter)
	}
	anyInflated := false
	for _, r := range st.Inflate {
		if r > 1 {
			anyInflated = true
			break
		}
	}
	if !anyInflated {
		t.Error("routability checkpoint carries no inflation")
	}

	resumed := gen.MustGenerate(genCfg)
	res, err := MustNew(resumeCfg()).PlaceFromCheckpoint(context.Background(), resumed, st)
	if err != nil {
		t.Fatalf("PlaceFromCheckpoint: %v", err)
	}
	if res.Overlaps != 0 || res.OutOfDie != 0 || res.FenceViolations != 0 {
		t.Errorf("resumed placement not legal: overlaps=%d out=%d fence=%d",
			res.Overlaps, res.OutOfDie, res.FenceViolations)
	}
	if res.HPWLFinal <= 0 {
		t.Error("no final HPWL")
	}
}

func TestPlaceFromCheckpointValidation(t *testing.T) {
	d := gen.MustGenerate(smallCfg())
	pl := MustNew(resumeCfg())
	ctx := context.Background()

	if _, err := pl.PlaceFromCheckpoint(ctx, d, nil); err == nil {
		t.Error("nil checkpoint accepted")
	}

	// Wrong cell count.
	st := &snap.State{Stage: snap.StageGP, X: []float64{1}, Y: []float64{1},
		Orient: []uint8{0}, Inflate: []float64{1}}
	if _, err := pl.PlaceFromCheckpoint(ctx, d, st); err == nil {
		t.Error("cell-count mismatch accepted")
	}

	// Right count, wrong fingerprint.
	n := len(d.Cells)
	st = &snap.State{Stage: snap.StageGP,
		X: make([]float64, n), Y: make([]float64, n),
		Orient: make([]uint8, n), Inflate: make([]float64, n)}
	st.Fingerprint[0] = 0xde
	if _, err := pl.PlaceFromCheckpoint(ctx, d, st); err == nil {
		t.Error("fingerprint mismatch accepted")
	}

	// Unknown stage.
	st.Fingerprint = d.Fingerprint()
	st.Stage = 99
	if _, err := pl.PlaceFromCheckpoint(ctx, d, st); err == nil {
		t.Error("unknown stage accepted")
	}

	// Config mismatch: the checkpoint ran with a different congestion
	// source than the resuming placer.
	st.Stage = snap.StageGP
	st.Config = recordConfig(resumeCfg().withDefaults())
	st.Config.CongestionSource = "estimate"
	if _, err := pl.PlaceFromCheckpoint(ctx, d, st); err == nil ||
		!strings.Contains(err.Error(), "congestion source") {
		t.Errorf("config mismatch err = %v, want congestion-source complaint", err)
	}
}

// ValidateResumeConfig must pass identical configs (and config-less v1
// checkpoints) and name every mismatched knob, while ignoring the worker
// count — results are byte-identical across worker counts by contract.
func TestValidateResumeConfig(t *testing.T) {
	base := Config{Workers: 2, CongestionSource: "estimate", RouteLastRounds: 2}
	st := &snap.State{Config: recordConfig(base.withDefaults())}

	if err := ValidateResumeConfig(base, st); err != nil {
		t.Errorf("identical config rejected: %v", err)
	}
	if err := ValidateResumeConfig(base, &snap.State{}); err != nil {
		t.Errorf("config-less checkpoint rejected: %v", err)
	}

	workers := base
	workers.Workers = 8
	if err := ValidateResumeConfig(workers, st); err != nil {
		t.Errorf("worker-count change rejected: %v", err)
	}

	changed := base
	changed.CongestionSource = "route"
	changed.RouteLastRounds = 0 // defaults to 1, recorded run used 2
	changed.DisableDP = true
	err := ValidateResumeConfig(changed, st)
	if err == nil {
		t.Fatal("mismatched config accepted")
	}
	for _, want := range []string{"congestion source", "route last rounds", "disable dp"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("mismatch error %q does not name %q", err, want)
		}
	}
}
