// Package core implements the routability-driven analytical placer for
// hierarchical mixed-size designs that this repository reproduces
// (NTUplace4h, DAC 2013). The flow is:
//
//  1. hierarchy-aware multilevel clustering (internal/cluster);
//  2. per-level global placement minimizing WL + λ·density by nonlinear
//     conjugate gradient (internal/wl, internal/density, internal/nlopt),
//     with fence pull forces for hierarchical region constraints;
//  3. a routability loop — routed-congestion estimation, targeted cell
//     inflation, congested-net weighting, frozen-weight respreading, all
//     gated by a router-scored best snapshot (internal/route);
//  4. discrete macro orientation selection;
//  5. macro legalization, fence-aware Abacus standard-cell legalization
//     (internal/legal) and HPWL-greedy detailed placement (internal/dp).
//
// Baselines for the experiment tables are configurations of the same
// engine: LSE wirelength model, routability off, multilevel off, fences
// stripped.
package core

import (
	"fmt"
	"time"

	"repro/internal/dp"
	"repro/internal/legal"
	"repro/internal/obs"
	"repro/internal/snap"
)

// Config selects the placer variant. The zero value is the full
// NTUplace4h-style flow with the WA wirelength model. The JSON tags
// define the "config" section of the machine-readable run report
// (internal/obs).
type Config struct {
	// Model picks the smooth wirelength model: "wa" (default) or "lse".
	Model string `json:"model"`

	// TargetDensity is the bin target density in (0,1]; 0 derives it from
	// design utilization with a 15% margin.
	TargetDensity float64 `json:"target_density"`

	// GammaFactor scales the wirelength smoothing parameter relative to
	// the bin dimension (default 0.8).
	GammaFactor float64 `json:"gamma_factor"`

	// Workers is the worker count for the parallel kernels (wirelength
	// gradients, density penalty, global routing, detailed placement,
	// legalization). 0 selects the shared automatic policy (internal/par:
	// REPRO_WORKERS env override, else GOMAXPROCS capped); 1 forces serial
	// evaluation. Placement results are deterministic for a fixed worker
	// count, and routing, detailed-placement and legalization results are
	// byte-identical for every worker count.
	Workers int `json:"workers"`

	// GPIterPerRound is the CG iteration budget per λ round (default 30).
	GPIterPerRound int `json:"gp_iter_per_round"`
	// MaxLambdaRounds bounds the density-weight escalation (default 24).
	MaxLambdaRounds int `json:"max_lambda_rounds"`
	// OverflowStop ends spreading when total overflow falls below this
	// fraction of movable area (default 0.10).
	OverflowStop float64 `json:"overflow_stop"`

	// DisableQuadInit skips the quadratic star-model warm start that seeds
	// global placement (ablation; mainly useful to study cold starts).
	DisableQuadInit bool `json:"disable_quad_init"`
	// DisableMultilevel solves flat (single-level) global placement.
	DisableMultilevel bool `json:"disable_multilevel"`
	// DisableRoutability turns the congestion-driven inflation loop off.
	DisableRoutability bool `json:"disable_routability"`
	// DisableFences strips fence regions from the design before placing:
	// the hierarchical constraints are ignored entirely (the "flat"
	// baseline of experiment T4).
	DisableFences bool `json:"disable_fences"`
	// DisableMacroOrient skips the discrete macro-orientation pass.
	DisableMacroOrient bool `json:"disable_macro_orient"`
	// DisableDP skips detailed placement.
	DisableDP bool `json:"disable_dp"`

	// RoutabilityIters is the number of estimate→inflate→respread rounds
	// (default 2).
	RoutabilityIters int `json:"routability_iters"`
	// CongestionSource selects the congestion signal driving the
	// routability loop's inflation rounds: "route" (default) runs the
	// global router every round; "estimate" uses the probabilistic
	// RUDY + pin-density estimator (internal/estimate) for the early
	// rounds and falls back to the real router for the last
	// RouteLastRounds rounds plus the final validation route. The
	// estimator is orders of magnitude cheaper than a route, at the cost
	// of the best-snapshot gate not scoring estimate-only rounds.
	CongestionSource string `json:"congestion_source"`
	// RouteLastRounds is how many trailing routability rounds keep using
	// the real router when CongestionSource is "estimate" (default 1).
	// Set it ≥ RoutabilityIters to disable the estimator entirely — the
	// flow then resolves to the plain "route" path, byte-identical to
	// CongestionSource "route".
	RouteLastRounds int `json:"route_last_rounds"`
	// InflateMax caps the per-cell area inflation ratio (default 2.2).
	InflateMax float64 `json:"inflate_max"`
	// InflateExp shapes the congestion→inflation curve: ratio =
	// min(InflateMax, congestion^InflateExp) (default 1.6).
	InflateExp float64 `json:"inflate_exp"`
	// CongestionThreshold is the tile utilization above which cells
	// inflate (default 0.8).
	CongestionThreshold float64 `json:"congestion_threshold"`

	// DPPasses forwards to detailed placement (default 2).
	DPPasses int `json:"dp_passes"`

	// EnableChannelDerate statically halves placement capacity in narrow
	// channels between macros. It is opt-in: it pays off when packing at
	// tight target densities (it keeps cells out of nearly-unroutable
	// slots), but under the default generous density target the dynamic
	// routability loop subsumes it and the lost capacity just lengthens
	// wires (ablation T11).
	EnableChannelDerate bool `json:"enable_channel_derate"`
	// ChannelMinSpan is the channel width below which capacity is derated,
	// in row heights of the design (default 4).
	ChannelMinSpan float64 `json:"channel_min_span"`
	// ChannelDerate is the capacity multiplier applied to narrow-channel
	// bins (default 0.5).
	ChannelDerate float64 `json:"channel_derate"`

	// ClusterMinObjs stops coarsening below this object count
	// (default 400).
	ClusterMinObjs int `json:"cluster_min_objs"`

	// Trace, when non-nil, records the level-0 convergence curve
	// (experiment F7).
	Trace *Trace `json:"-"`

	// Obs, when non-nil, receives structured telemetry: stage spans,
	// per-round GP and routing traces, debug logging, and (opt-in)
	// congestion heatmaps. Nil disables telemetry at zero cost, and
	// recording never perturbs results — placement and routing output is
	// byte-identical with Obs on or off.
	Obs *obs.Recorder `json:"-"`

	// Checkpoint, when non-nil, receives flow-state snapshots the run can
	// later be resumed from with PlaceFromCheckpoint: after every
	// CheckpointEvery-th λ round of finest-level global placement and
	// after every routability iteration. The hook runs synchronously on
	// the placement goroutine and owns the state it receives; typical
	// implementations hand it to snap.WriteFile. Hook failures are the
	// hook's problem — the placer never aborts a run over checkpointing.
	// Like Obs, the hook never perturbs results. Excluded from the report
	// schema (json) on purpose.
	Checkpoint func(*snap.State) `json:"-"`
	// CheckpointEvery is the λ-round interval between GP checkpoints
	// (default 1: every round). Ignored when Checkpoint is nil.
	CheckpointEvery int `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.Model == "" {
		c.Model = "wa"
	}
	if c.GammaFactor <= 0 {
		c.GammaFactor = 0.8
	}
	if c.GPIterPerRound <= 0 {
		c.GPIterPerRound = 30
	}
	if c.MaxLambdaRounds <= 0 {
		c.MaxLambdaRounds = 24
	}
	if c.OverflowStop <= 0 {
		c.OverflowStop = 0.10
	}
	if c.RoutabilityIters <= 0 {
		c.RoutabilityIters = 2
	}
	if c.CongestionSource == "" {
		c.CongestionSource = "route"
	}
	if c.RouteLastRounds <= 0 {
		c.RouteLastRounds = 1
	}
	if c.InflateMax <= 1 {
		c.InflateMax = 2.2
	}
	if c.InflateExp <= 0 {
		c.InflateExp = 1.6
	}
	if c.CongestionThreshold <= 0 {
		c.CongestionThreshold = 0.8
	}
	if c.DPPasses <= 0 {
		c.DPPasses = 2
	}
	if c.ClusterMinObjs <= 0 {
		c.ClusterMinObjs = 400
	}
	if c.ChannelMinSpan <= 0 {
		c.ChannelMinSpan = 4
	}
	if c.ChannelDerate <= 0 {
		c.ChannelDerate = 0.5
	}
	return c
}

// Validate rejects configurations the engine cannot honor.
func (c Config) Validate() error {
	switch c.Model {
	case "", "wa", "lse":
	default:
		return fmt.Errorf("core: unknown wirelength model %q", c.Model)
	}
	if c.TargetDensity < 0 || c.TargetDensity > 1 {
		return fmt.Errorf("core: target density %v outside [0,1]", c.TargetDensity)
	}
	switch c.CongestionSource {
	case "", "route", "estimate":
	default:
		return fmt.Errorf("core: unknown congestion source %q (want \"route\" or \"estimate\")", c.CongestionSource)
	}
	return nil
}

// ResolvedCongestion reports the congestion source the routability loop
// will actually use after defaults: the source name ("route" or
// "estimate", "" when routability is disabled) and, for "estimate", the
// zero-based round at which the loop switches over to the real router
// (0 for "route"). "estimate" with RouteLastRounds ≥ RoutabilityIters
// resolves to plain "route" — the estimator would never run.
func (c Config) ResolvedCongestion() (source string, switchover int) {
	c = c.withDefaults()
	if c.DisableRoutability {
		return "", 0
	}
	if c.CongestionSource != "estimate" || c.RouteLastRounds >= c.RoutabilityIters {
		return "route", 0
	}
	return "estimate", c.RoutabilityIters - c.RouteLastRounds
}

// CongStat records one routability iteration for experiment F6/T10.
type CongStat struct {
	// ACE is the routed congestion profile at route.ACEPercentiles (from
	// the loop's reduced-budget router).
	ACE []float64
	// Inflated is the number of cells whose inflation ratio grew this
	// iteration.
	Inflated int
	// MaxTileCongestion is the worst estimated tile utilization.
	MaxTileCongestion float64
	// Estimated marks iterations whose congestion signal came from the
	// probabilistic estimator (internal/estimate) instead of the router;
	// their ACE profile is the estimator's, not a routed one.
	Estimated bool
}

// Result reports a full placement run.
type Result struct {
	// HPWL after global placement, after legalization, and final.
	HPWLGlobal float64
	HPWLLegal  float64
	HPWLFinal  float64

	// Overflow is the density overflow ratio at the end of GP.
	Overflow float64

	// Levels is the multilevel depth used; LambdaRounds and CGIters are
	// summed over levels.
	Levels       int
	LambdaRounds int
	CGIters      int

	// Cong has one entry per routability iteration.
	Cong []CongStat

	Legal legal.CellResult
	DP    dp.Result

	// Quality checks on the final placement.
	Overlaps        int
	FenceViolations int
	OutOfDie        int

	// Stage wall-clock durations.
	GPTime, RouteOptTime, LegalTime, DPTime time.Duration
}

// Trace records the convergence of level-0 global placement.
type Trace struct {
	// Iter, Objective and HPWL are parallel arrays sampled once per CG
	// iteration.
	Iter      []int
	Objective []float64
	HPWL      []float64
	// LambdaRound marks the λ round each sample belongs to.
	LambdaRound []int
}

func (t *Trace) add(iter, round int, obj, hpwl float64) {
	t.Iter = append(t.Iter, iter)
	t.Objective = append(t.Objective, obj)
	t.HPWL = append(t.HPWL, hpwl)
	t.LambdaRound = append(t.LambdaRound, round)
}
