package core

import (
	"bytes"
	"testing"

	"repro/internal/bookshelf"
	"repro/internal/db"
	"repro/internal/gen"
)

// estimateTestDesign builds the small congested design the estimate-mode
// tests place.
func estimateTestDesign(t *testing.T) *db.Design {
	t.Helper()
	d, err := gen.Generate(gen.Congested(400, 21))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func placePl(t *testing.T, cfg Config) []byte {
	t.Helper()
	d := estimateTestDesign(t)
	if _, err := MustNew(cfg).Place(d); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bookshelf.WritePl(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEstimateFallbackIdenticalPl pins the estimate-on/off equivalence
// when the last-rounds router fallback covers every round: "estimate"
// with RouteLastRounds ≥ RoutabilityIters resolves to the plain "route"
// path, so the final .pl must be byte-identical to CongestionSource
// "route".
func TestEstimateFallbackIdenticalPl(t *testing.T) {
	iters := 2
	plRoute := placePl(t, Config{
		CongestionSource: "route", RoutabilityIters: iters,
	})
	plEst := placePl(t, Config{
		CongestionSource: "estimate", RoutabilityIters: iters, RouteLastRounds: iters,
	})
	if !bytes.Equal(plRoute, plEst) {
		t.Fatal("estimate mode with full router fallback produced a different .pl than route mode")
	}
}

// TestEstimateModeRuns exercises the estimate-driven loop end to end:
// the early rounds must be marked Estimated, the trailing rounds and the
// final validation routed, and the placement must come out legal.
func TestEstimateModeRuns(t *testing.T) {
	d := estimateTestDesign(t)
	cfg := Config{
		CongestionSource: "estimate",
		RoutabilityIters: 3,
		RouteLastRounds:  1,
	}
	if src, sw := cfg.ResolvedCongestion(); src != "estimate" || sw != 2 {
		t.Fatalf("ResolvedCongestion = %q/%d, want estimate/2", src, sw)
	}
	res, err := MustNew(cfg).Place(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cong) == 0 {
		t.Fatal("no routability iterations recorded")
	}
	// Early entries estimated; the loop may stop early (inflated == 0),
	// but whatever ran before the switchover must carry the marker, and
	// the final entry (post-loop validation route) must not.
	for i, st := range res.Cong[:len(res.Cong)-1] {
		if i < 2 && !st.Estimated {
			t.Errorf("round %d not marked Estimated", i)
		}
		if i >= 2 && st.Estimated {
			t.Errorf("round %d marked Estimated after switchover", i)
		}
	}
	if res.Cong[len(res.Cong)-1].Estimated {
		t.Error("final congestion entry marked Estimated; want routed validation")
	}
	if res.HPWLFinal <= 0 {
		t.Errorf("bad final HPWL %v", res.HPWLFinal)
	}
	// Legality must be no worse than the same design placed with the
	// router every round (this design config legalizes with one residual
	// overlap in both modes — the estimator must not add more).
	dRoute := estimateTestDesign(t)
	resRoute, err := MustNew(Config{
		CongestionSource: "route", RoutabilityIters: 3,
	}).Place(dRoute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overlaps > resRoute.Overlaps {
		t.Errorf("estimate mode has %d overlaps, route mode %d", res.Overlaps, resRoute.Overlaps)
	}
	if res.FenceViolations > resRoute.FenceViolations {
		t.Errorf("estimate mode has %d fence violations, route mode %d", res.FenceViolations, resRoute.FenceViolations)
	}
}

// TestEstimateModeDeterministicAcrossWorkers pins that estimate-mode
// placement — including the live-estimator DP guard — stays
// byte-identical across worker counts, like the rest of the flow.
func TestEstimateModeDeterministicAcrossWorkers(t *testing.T) {
	cfg := func(w int) Config {
		return Config{
			CongestionSource: "estimate",
			RoutabilityIters: 2,
			RouteLastRounds:  1,
			Workers:          w,
		}
	}
	ref := placePl(t, cfg(1))
	for _, w := range []int{2, 8} {
		if got := placePl(t, cfg(w)); !bytes.Equal(ref, got) {
			t.Fatalf("estimate-mode .pl differs between workers 1 and %d", w)
		}
	}
}
