package core

import (
	"context"
	"math"

	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/density"
	"repro/internal/geom"
	"repro/internal/nlopt"
	"repro/internal/obs"
	"repro/internal/wl"
)

// gpStats summarizes one level's global placement.
type gpStats struct {
	LambdaRounds int
	CGIters      int
	Overflow     float64
	// FinalLambda and FinalMu are the density and fence weights at
	// termination; the routability loop resumes respreading from (a
	// fraction of) them instead of re-annealing from scratch, which would
	// undo the spreading and let density pressure eject fenced cells.
	FinalLambda float64
	FinalMu     float64
}

// levelSolver minimizes WL + λ·density + μ·fence over one problem level.
type levelSolver struct {
	cfg     Config
	p       *cluster.Problem
	die     geom.Rect
	regions []db.Region
	grid    *density.Grid
	// ovGrid is a coarser companion grid used only for the overflow
	// convergence check: at solver (cell-scale) resolution the discrete
	// cells make exact-overlap density inherently lumpy, so convergence
	// is judged at a few-cells-per-bin scale like the contest evaluators.
	ovGrid *density.Grid
	model  wl.Model
	nl     *wl.Netlist
	objs   []density.Obj

	lambda, mu float64
	// startLambda and startMu, when positive, seed the λ/μ escalation
	// instead of the gradient-ratio initialization (used by routability
	// respreads).
	startLambda float64
	startMu     float64
	// freeze keeps λ and μ constant across rounds (routability respreads
	// relax into a new equilibrium at the already-converged weights
	// rather than re-annealing, which would either undo spreading or blow
	// the density term up).
	freeze bool
	// stepScale shrinks the CG trial step (respreads make small moves).
	stepScale float64
	// rec receives per-round convergence telemetry (nil = disabled);
	// span, when non-nil, parents the per-round solve spans. level and
	// phase label the trace records ("gp" when phase is empty).
	rec   *obs.Recorder
	span  *obs.Span
	level int
	phase string
	// onRound, when non-nil, observes the end of every λ round with the
	// weights used that round and the current packed positions (valid only
	// during the call). The placer's checkpoint hook hangs off it.
	onRound func(round int, lambda, mu float64, x, y []float64)
	// scratch gradient buffers
	gdx, gdy []float64
	gfx, gfy []float64
}

// newLevelSolver sizes the density grid to the level and builds the model.
// rowH carries the design row height for narrow-channel detection (pass 0
// to skip derating).
func newLevelSolver(cfg Config, p *cluster.Problem, die geom.Rect, fixed []geom.Rect, regions []db.Region, target, rowH float64) *levelSolver {
	n := p.NumObjs()
	// Grid: several bins per object so the bell resolution approaches the
	// cell scale and the smoothed density cannot hide intra-bin clumping
	// from the exact-overlap overflow check.
	bins := 4 * float64(n)
	if bins < 256 {
		bins = 256
	}
	nx := int(math.Round(math.Sqrt(bins * die.W() / math.Max(1, die.H()))))
	ny := int(math.Round(bins / math.Max(1, float64(nx))))
	nx = clampInt(nx, 4, 512)
	ny = clampInt(ny, 4, 512)
	grid := density.NewGrid(die, nx, ny, target)
	for _, r := range fixed {
		grid.AddFixed(r)
	}
	ovBins := float64(n) / 4
	if ovBins < 64 {
		ovBins = 64
	}
	ovx := clampInt(int(math.Round(math.Sqrt(ovBins*die.W()/math.Max(1, die.H())))), 4, 256)
	ovy := clampInt(int(math.Round(ovBins/math.Max(1, float64(ovx)))), 4, 256)
	ovGrid := density.NewGrid(die, ovx, ovy, target)
	for _, r := range fixed {
		ovGrid.AddFixed(r)
	}
	if cfg.EnableChannelDerate && rowH > 0 && len(fixed) > 0 {
		span := cfg.ChannelMinSpan * rowH
		grid.DerateNarrowChannels(span, cfg.ChannelDerate)
		ovGrid.DerateNarrowChannels(span, cfg.ChannelDerate)
		// Derating must not make the density system infeasible: the
		// summed capacity has to exceed the movable area or spreading
		// stalls and legalization pays with huge displacement.
		grid.EnsureCapacity(p.TotalArea(), 1.08)
		ovGrid.EnsureCapacity(p.TotalArea(), 1.08)
	}
	gamma := cfg.GammaFactor * (grid.BinW + grid.BinH) / 2
	var model wl.Model
	if cfg.Model == "lse" {
		model = wl.LSE{Gamma: gamma}
	} else {
		model = wl.WA{Gamma: gamma}
	}
	// Large levels evaluate in parallel; results stay deterministic for a
	// fixed worker count (partition and reduction order are fixed).
	if n >= 2000 && cfg.Workers != 1 {
		model = wl.NewParallel(model, cfg.Workers)
		grid.SetWorkers(cfg.Workers)
	}
	s := &levelSolver{
		cfg: cfg, p: p, die: die, regions: regions,
		grid: grid, ovGrid: ovGrid, model: model,
		nl:   &wl.Netlist{Nets: p.Nets, NumObjs: n},
		objs: make([]density.Obj, n),
		gdx:  make([]float64, n), gdy: make([]float64, n),
		gfx: make([]float64, n), gfy: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		s.objs[i] = density.Obj{HalfW: p.HalfW[i], HalfH: p.HalfH[i], Area: p.Area[i]}
	}
	return s
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// fencePenalty evaluates the fence pull term Σ aᵢ·dᵢ² and its gradient
// (area-weighted squared distance from each fenced object's center to its
// region).
func (s *levelSolver) fencePenalty(x, y []float64, gx, gy []float64) float64 {
	var total float64
	for i := range s.p.Region {
		rg := s.p.Region[i]
		if rg < 0 || rg >= len(s.regions) {
			continue
		}
		pos := geom.Point{X: x[i], Y: y[i]}
		q := s.regions[rg].Nearest(pos)
		dx, dy := pos.X-q.X, pos.Y-q.Y
		if dx == 0 && dy == 0 {
			continue
		}
		a := s.p.Area[i]
		total += a * (dx*dx + dy*dy)
		if gx != nil {
			gx[i] += 2 * a * dx
			gy[i] += 2 * a * dy
		}
	}
	return total
}

// objective evaluates f = WL + λ·N + μ·F into the packed vector layout
// ([x..., y...]) used by the CG solver.
func (s *levelSolver) objective(v []float64, grad []float64) float64 {
	n := s.p.NumObjs()
	x, y := v[:n], v[n:]
	var gx, gy []float64
	if grad != nil {
		gx, gy = grad[:n], grad[n:]
	}
	f := s.model.Eval(s.nl, x, y, gx, gy)
	if s.lambda > 0 {
		for i := range s.gdx {
			s.gdx[i] = 0
			s.gdy[i] = 0
		}
		var dgx, dgy []float64
		if grad != nil {
			dgx, dgy = s.gdx, s.gdy
		}
		den := s.grid.Penalty(s.objs, x, y, dgx, dgy)
		f += s.lambda * den
		if grad != nil {
			for i := range gx {
				gx[i] += s.lambda * s.gdx[i]
				gy[i] += s.lambda * s.gdy[i]
			}
		}
	}
	if s.mu > 0 {
		for i := range s.gfx {
			s.gfx[i] = 0
			s.gfy[i] = 0
		}
		var fgx, fgy []float64
		if grad != nil {
			fgx, fgy = s.gfx, s.gfy
		}
		fen := s.fencePenalty(x, y, fgx, fgy)
		f += s.mu * fen
		if grad != nil {
			for i := range gx {
				gx[i] += s.mu * s.gfx[i]
				gy[i] += s.mu * s.gfy[i]
			}
		}
	}
	return f
}

// gradL1 returns Σ|g| of a term's gradient evaluated in isolation.
func gradL1(gx, gy []float64) float64 {
	var s float64
	for i := range gx {
		s += math.Abs(gx[i]) + math.Abs(gy[i])
	}
	return s
}

// initWeights sets λ and μ so the density and fence gradients start as
// small fractions of the wirelength gradient (then double every round).
func (s *levelSolver) initWeights(v []float64) {
	n := s.p.NumObjs()
	x, y := v[:n], v[n:]
	gwx := make([]float64, n)
	gwy := make([]float64, n)
	s.model.Eval(s.nl, x, y, gwx, gwy)
	wlG := gradL1(gwx, gwy) + 1e-12

	for i := range s.gdx {
		s.gdx[i] = 0
		s.gdy[i] = 0
	}
	s.grid.Penalty(s.objs, x, y, s.gdx, s.gdy)
	denG := gradL1(s.gdx, s.gdy)
	if denG > 0 {
		s.lambda = 0.03 * wlG / denG
	} else {
		s.lambda = 0
	}

	for i := range s.gfx {
		s.gfx[i] = 0
		s.gfy[i] = 0
	}
	fen := s.fencePenalty(x, y, s.gfx, s.gfy)
	fenG := gradL1(s.gfx, s.gfy)
	if fen > 0 && fenG > 0 {
		s.mu = 0.05 * wlG / fenG
	} else {
		s.mu = 0
	}
}

// project clamps object centers so footprints stay inside the die.
func (s *levelSolver) project(v []float64) {
	n := s.p.NumObjs()
	for i := 0; i < n; i++ {
		hw, hh := s.p.HalfW[i], s.p.HalfH[i]
		lox, hix := s.die.Lo.X+hw, s.die.Hi.X-hw
		loy, hiy := s.die.Lo.Y+hh, s.die.Hi.Y-hh
		if lox > hix {
			c := (s.die.Lo.X + s.die.Hi.X) / 2
			lox, hix = c, c
		}
		if loy > hiy {
			c := (s.die.Lo.Y + s.die.Hi.Y) / 2
			loy, hiy = c, c
		}
		if v[i] < lox {
			v[i] = lox
		}
		if v[i] > hix {
			v[i] = hix
		}
		if v[n+i] < loy {
			v[n+i] = loy
		}
		if v[n+i] > hiy {
			v[n+i] = hiy
		}
	}
}

// maxFenceDist returns the largest center-to-fence distance over fenced
// objects (0 when all are home).
func (s *levelSolver) maxFenceDist(x, y []float64) float64 {
	m := 0.0
	for i := range s.p.Region {
		rg := s.p.Region[i]
		if rg < 0 || rg >= len(s.regions) {
			continue
		}
		pos := geom.Point{X: x[i], Y: y[i]}
		if d := pos.Dist(s.regions[rg].Nearest(pos)); d > m {
			m = d
		}
	}
	return m
}

// solve runs the λ-escalation loop. Positions are read from and written
// back to the problem. trace, when non-nil, records the convergence curve.
// Cancellation of ctx aborts between CG iterations (the Stop hook) and
// between λ rounds; the partially-spread positions are still written back
// so callers can inspect (or report on) the state the run died in. A ctx
// that is never canceled does not perturb the trajectory.
func (s *levelSolver) solve(ctx context.Context, trace *Trace) gpStats {
	n := s.p.NumObjs()
	v := make([]float64, 2*n)
	copy(v[:n], s.p.X)
	copy(v[n:], s.p.Y)
	s.project(v)
	s.initWeights(v)
	if s.startLambda > 0 {
		s.lambda = s.startLambda
	}
	if s.startMu > 0 {
		s.mu = s.startMu
	}
	var stop func() bool
	if ctx != nil && ctx.Done() != nil {
		stop = func() bool { return ctx.Err() != nil }
	}

	stats := gpStats{}
	iterBase := 0
	fenceTol := (s.grid.BinW + s.grid.BinH) / 2
	prevFine := math.Inf(1)
	prevOv := math.Inf(1)
	for round := 0; round < s.cfg.MaxLambdaRounds; round++ {
		if stop != nil && stop() {
			break
		}
		stats.LambdaRounds = round + 1
		rsp := s.span.StartSpanf("round-%d", round)
		var onIter func(int, float64)
		if trace != nil {
			onIter = func(it int, f float64) {
				trace.add(iterBase+it, round, f, wl.HPWL(s.nl, v[:n], v[n:]))
			}
		}
		step := (s.grid.BinW + s.grid.BinH) / 2
		if s.stepScale > 0 {
			step *= s.stepScale
		}
		relTol := 1e-4
		if s.freeze {
			// Frozen respreads operate where the density term dominates
			// the objective; the plateau detector would misread slow but
			// real relief work as convergence.
			relTol = 0
		}
		res := nlopt.CG(s.objective, v, nlopt.Options{
			MaxIter:  s.cfg.GPIterPerRound,
			GradTol:  1e-9,
			RelTol:   relTol,
			StepInit: step,
			Project:  s.project,
			OnIter:   onIter,
			Stop:     stop,
		})
		stats.CGIters += res.Iters
		iterBase += res.Iters
		stats.Overflow = s.ovGrid.Overflow(s.objs, v[:n], v[n:])
		fenced := s.maxFenceDist(v[:n], v[n:])
		// Converged when the neighbourhood-scale overflow is below the
		// stop threshold, fences are satisfied, and cell-scale clumping
		// (which drives legalization displacement) has either gotten
		// small or stopped improving — it has a structural floor set by
		// the discreteness of cells at bin resolution.
		fineOv := s.grid.Overflow(s.objs, v[:n], v[n:])
		fineDone := fineOv < 2*s.cfg.OverflowStop || fineOv > prevFine*0.97
		prevFine = fineOv
		if rsp != nil {
			rsp.Add("cg_iters", int64(res.Iters))
			rsp.End()
		}
		if s.rec.Enabled() {
			phase := s.phase
			if phase == "" {
				phase = "gp"
			}
			hp := wl.HPWL(s.nl, v[:n], v[n:])
			s.rec.RecordGPRound(obs.GPRound{
				Level: s.level, Phase: phase, Round: round,
				Lambda: s.lambda, Mu: s.mu,
				CoarseOverflow: stats.Overflow, FineOverflow: fineOv,
				FenceDist: fenced, HPWL: hp, CGIters: res.Iters,
			})
			s.rec.Log().Debug("gp round",
				"level", s.level, "phase", phase, "round", round,
				"lambda", s.lambda, "mu", s.mu,
				"coarse", stats.Overflow, "fine", fineOv,
				"fence", fenced, "hpwl", hp, "iters", res.Iters)
		}
		if stats.Overflow < s.cfg.OverflowStop && fineDone && fenced <= fenceTol {
			break
		}
		if s.freeze {
			continue
		}
		// Escalate λ; when the round was a no-op (overflow unchanged and
		// CG hit an immediate plateau) the weight is far from the regime
		// where density matters, so fast-forward instead of burning the
		// round budget two-fold at a time.
		factor := 2.0
		if stats.Overflow > 0.5 && stats.Overflow > 0.99*prevOv && res.Iters <= 2 {
			factor = 8
		}
		prevOv = stats.Overflow
		s.lambda *= factor
		if s.mu > 0 {
			s.mu *= factor
		} else if fenced > fenceTol {
			// Fences engaged late (objects drifted out): bootstrap μ.
			s.initWeights(v)
			if s.mu == 0 {
				s.mu = s.lambda
			}
		}
		// The round observer fires after escalation on purpose: a
		// checkpoint must record the weights the NEXT round would use, so
		// a resumed run continues the λ schedule instead of replaying one
		// doubling behind it. Converged rounds break above without a
		// checkpoint — the run finishes anyway.
		if s.onRound != nil {
			s.onRound(round, s.lambda, s.mu, v[:n], v[n:])
		}
	}
	copy(s.p.X, v[:n])
	copy(s.p.Y, v[n:])
	stats.FinalLambda = s.lambda
	stats.FinalMu = s.mu
	return stats
}
