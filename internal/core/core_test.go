package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/route"
)

func smallCfg() gen.Config {
	return gen.Config{
		Name: "core-t", Seed: 77,
		NumStdCells: 250, NumFixedMacros: 2, NumMovableMacros: 1,
		MacroSizeRows: 4, NumModules: 3, NumFences: 2, NumTerminals: 12,
		TargetUtil: 0.55,
	}
}

func TestPlaceFullFlow(t *testing.T) {
	d := gen.MustGenerate(smallCfg())
	pl := MustNew(Config{})
	res, err := pl.Place(d)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if res.HPWLFinal <= 0 {
		t.Fatal("zero final HPWL")
	}
	if res.Overlaps != 0 {
		t.Errorf("final placement has %d overlaps", res.Overlaps)
	}
	if res.OutOfDie != 0 {
		t.Errorf("%d cells out of die", res.OutOfDie)
	}
	if res.FenceViolations != 0 {
		t.Errorf("%d fence violations", res.FenceViolations)
	}
	if res.Legal.Fallbacks != 0 {
		t.Errorf("%d legalization fallbacks", res.Legal.Fallbacks)
	}
	if res.Levels < 1 || res.CGIters == 0 {
		t.Errorf("GP did not run: %+v", res)
	}
	// GP must actually spread cells: overflow below stop threshold.
	if res.Overflow > 0.25 {
		t.Errorf("GP overflow still %v", res.Overflow)
	}
	// Detailed placement must not worsen wirelength.
	if res.HPWLFinal > res.HPWLLegal+1e-6 {
		t.Errorf("DP worsened HPWL: %v -> %v", res.HPWLLegal, res.HPWLFinal)
	}
}

func TestPlaceSpreadsBetterThanStart(t *testing.T) {
	d := gen.MustGenerate(smallCfg())
	// All movables start clumped at the center; after placement the
	// spread (stddev of centers) must be much larger.
	pl := MustNew(Config{DisableRoutability: true})
	if _, err := pl.Place(d); err != nil {
		t.Fatal(err)
	}
	var sx, sy, n float64
	for _, ci := range d.Movable() {
		c := d.Cells[ci].Center()
		sx += c.X
		sy += c.Y
		n++
	}
	mx, my := sx/n, sy/n
	var varSum float64
	for _, ci := range d.Movable() {
		c := d.Cells[ci].Center()
		varSum += (c.X-mx)*(c.X-mx) + (c.Y-my)*(c.Y-my)
	}
	spread := math.Sqrt(varSum / n)
	if spread < d.Die.W()/8 {
		t.Errorf("placement spread %v too small for die %v", spread, d.Die)
	}
}

func TestLSEModelRuns(t *testing.T) {
	d := gen.MustGenerate(smallCfg())
	pl := MustNew(Config{Model: "lse", DisableRoutability: true})
	res, err := pl.Place(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overlaps != 0 || res.HPWLFinal <= 0 {
		t.Errorf("LSE flow broken: %+v", res)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := New(Config{Model: "bogus"}); err == nil {
		t.Error("bogus model accepted")
	}
	if _, err := New(Config{TargetDensity: 1.5}); err == nil {
		t.Error("bad target density accepted")
	}
}

func TestEmptyDesignRejected(t *testing.T) {
	pl := MustNew(Config{})
	if _, err := pl.Place(&db.Design{Die: geom.NewRect(0, 0, 10, 10)}); err == nil {
		t.Error("empty design accepted")
	}
}

func TestRoutabilityLoopRunsAndRecords(t *testing.T) {
	d := gen.MustGenerate(gen.Congested(400, 3))
	pl := MustNew(Config{RoutabilityIters: 3})
	res, err := pl.Place(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cong) < 2 {
		t.Fatalf("routability loop recorded %d stats", len(res.Cong))
	}
	first := res.Cong[0]
	if first.Inflated == 0 {
		t.Skip("design not congested enough to trigger inflation")
	}
	for i, c := range res.Cong {
		if len(c.ACE) != len(route.ACEPercentiles) {
			t.Fatalf("iteration %d: ACE profile size %d", i, len(c.ACE))
		}
		for _, v := range c.ACE {
			if math.IsNaN(v) || v < 0 {
				t.Fatalf("iteration %d: bad ACE value %v", i, v)
			}
		}
	}
	// The loop must respect the wirelength budget: the relieved placement
	// cannot cost more than ~15% HPWL over the blind GP result (the guard
	// in routabilityLoop), so downstream HPWL stays sane.
	if res.HPWLGlobal <= 0 {
		t.Error("missing GP HPWL")
	}
	// Some inflation must survive into cell records.
	inflatedCells := 0
	for i := range d.Cells {
		if d.Cells[i].Inflate > 1 {
			inflatedCells++
		}
	}
	if inflatedCells == 0 {
		t.Error("no cell retained an inflation ratio")
	}
}

func TestRoutabilityImprovesRoutedCongestion(t *testing.T) {
	// The headline claim (experiment T2 shape): over a set of congested
	// designs, routability-driven placement yields lower routed RC and
	// lower scaled HPWL than the wirelength-driven baseline (tight target
	// density, no congestion feedback) in geometric mean — matching how
	// the paper family reports aggregate wins. Individual designs may go
	// either way; the aggregate must not.
	if testing.Short() {
		t.Skip("multi-seed placement comparison is slow")
	}
	seeds := []int64{3, 5, 7}
	var rcOn, rcOff, shOn, shOff []float64
	for _, seed := range seeds {
		base := gen.Congested(1200, seed)

		dOn := gen.MustGenerate(base)
		if _, err := MustNew(Config{RoutabilityIters: 3}).Place(dOn); err != nil {
			t.Fatal(err)
		}
		mOn, err := route.EvaluateDesign(dOn, route.RouterOptions{})
		if err != nil {
			t.Fatal(err)
		}

		dOff := gen.MustGenerate(base)
		if _, err := MustNew(Config{
			DisableRoutability: true, TargetDensity: 1.0,
		}).Place(dOff); err != nil {
			t.Fatal(err)
		}
		mOff, err := route.EvaluateDesign(dOff, route.RouterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("seed %d: on  %s", seed, mOn)
		t.Logf("seed %d: off %s", seed, mOff)
		rcOn = append(rcOn, mOn.RC)
		rcOff = append(rcOff, mOff.RC)
		shOn = append(shOn, mOn.ScaledHPWL)
		shOff = append(shOff, mOff.ScaledHPWL)
	}
	if gm(rcOn) >= gm(rcOff) {
		t.Errorf("geomean RC: routability-driven %.1f not better than blind %.1f", gm(rcOn), gm(rcOff))
	}
	if gm(shOn) >= gm(shOff) {
		t.Errorf("geomean sHPWL: routability-driven %.4g not better than blind %.4g", gm(shOn), gm(shOff))
	}
}

// gm is the geometric mean.
func gm(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

func TestFenceAwareVsFlat(t *testing.T) {
	cfg := smallCfg()
	dFence := gen.MustGenerate(cfg)
	if _, err := MustNew(Config{DisableRoutability: true}).Place(dFence); err != nil {
		t.Fatal(err)
	}
	if dFence.FenceViolations() != 0 {
		t.Errorf("fence-aware flow violated fences: %d", dFence.FenceViolations())
	}

	dFlat := gen.MustGenerate(cfg)
	if _, err := MustNew(Config{DisableRoutability: true, DisableFences: true}).Place(dFlat); err != nil {
		t.Fatal(err)
	}
	// The flat flow ignores fences entirely (violations are expected and
	// not counted because constraints were stripped); its HPWL should be
	// no worse than the constrained flow's.
	if dFlat.HPWL() > dFence.HPWL()*1.3 {
		t.Errorf("flat HPWL %v unexpectedly much worse than fenced %v", dFlat.HPWL(), dFence.HPWL())
	}
}

func TestSingleLevelMatchesQuality(t *testing.T) {
	cfg := smallCfg()
	dML := gen.MustGenerate(cfg)
	resML, err := MustNew(Config{DisableRoutability: true}).Place(dML)
	if err != nil {
		t.Fatal(err)
	}
	dSL := gen.MustGenerate(cfg)
	resSL, err := MustNew(Config{DisableRoutability: true, DisableMultilevel: true}).Place(dSL)
	if err != nil {
		t.Fatal(err)
	}
	if resML.Levels < 2 {
		t.Skip("design too small to coarsen")
	}
	if resSL.Levels != 1 {
		t.Errorf("single-level used %d levels", resSL.Levels)
	}
	// Both must be legal; quality within a loose band of each other.
	if resSL.Overlaps != 0 || resML.Overlaps != 0 {
		t.Error("overlaps in one of the variants")
	}
	ratio := resML.HPWLFinal / resSL.HPWLFinal
	if ratio > 1.6 || ratio < 1/1.6 {
		t.Errorf("multilevel/single-level HPWL ratio %v implausible", ratio)
	}
}

func TestTraceRecorded(t *testing.T) {
	d := gen.MustGenerate(smallCfg())
	tr := &Trace{}
	pl := MustNew(Config{DisableRoutability: true, Trace: tr})
	if _, err := pl.Place(d); err != nil {
		t.Fatal(err)
	}
	if len(tr.Iter) == 0 {
		t.Fatal("no trace samples")
	}
	if len(tr.Iter) != len(tr.Objective) || len(tr.Iter) != len(tr.HPWL) || len(tr.Iter) != len(tr.LambdaRound) {
		t.Fatal("trace arrays out of sync")
	}
	// HPWL samples must be positive and finite.
	for i, h := range tr.HPWL {
		if h <= 0 || math.IsNaN(h) || math.IsInf(h, 0) {
			t.Fatalf("trace HPWL[%d] = %v", i, h)
		}
	}
}

func TestOrientMacrosImprovesOrKeeps(t *testing.T) {
	b := db.NewBuilder("om", geom.NewRect(0, 0, 100, 100))
	tl := b.AddTerminal("t", geom.Point{X: 0, Y: 0})
	m := b.AddMacro("m", 20, 10, false)
	// Pin at the far corner of the macro in N orientation.
	b.AddNet("n", 1, db.Conn{Cell: tl}, db.Conn{Cell: m, Offset: geom.Point{X: 20, Y: 10}})
	b.MakeRows(10, 1)
	d := b.MustDesign()
	d.Cells[m].Pos = geom.Point{X: 50, Y: 50}
	before := d.HPWL()
	orientMacros(d)
	after := d.HPWL()
	if after > before {
		t.Errorf("orientation worsened HPWL: %v -> %v", before, after)
	}
	// Rotating 180° (S) brings the pin to the macro's lower-left, much
	// closer to the terminal.
	if d.Cells[m].Orient == db.N {
		t.Error("expected a non-identity orientation")
	}
}

func TestPlacePreservesNetlist(t *testing.T) {
	d := gen.MustGenerate(smallCfg())
	nets, pins, cells := len(d.Nets), len(d.Pins), len(d.Cells)
	if _, err := MustNew(Config{DisableRoutability: true}).Place(d); err != nil {
		t.Fatal(err)
	}
	if len(d.Nets) != nets || len(d.Pins) != pins || len(d.Cells) != cells {
		t.Error("placement changed netlist structure")
	}
	if err := d.Validate(); err != nil {
		t.Errorf("design invalid after placement: %v", err)
	}
}

func TestChannelDerateKeepsCellsOutOfChannels(t *testing.T) {
	// Two big fixed macros with a 3-row channel between them: with
	// derating on, fewer cells should settle in the channel.
	build := func() *db.Design {
		b := db.NewBuilder("chan", geom.NewRect(0, 0, 300, 300))
		b.MakeRows(12, 1)
		m1 := b.AddMacro("m1", 120, 120, true)
		m2 := b.AddMacro("m2", 120, 120, true)
		b.SetCellPos(m1, geom.Point{X: 20, Y: 84})
		b.SetCellPos(m2, geom.Point{X: 176, Y: 84})
		var cells []int
		for i := 0; i < 500; i++ {
			cells = append(cells, b.AddStdCell(fmt.Sprintf("c%d", i), 6, 12))
		}
		for i := 0; i+1 < len(cells); i += 2 {
			b.AddNet(fmt.Sprintf("n%d", i), 1, b.CenterConn(cells[i]), b.CenterConn(cells[i+1]))
		}
		d := b.MustDesign()
		for _, ci := range d.Movable() {
			d.Cells[ci].SetCenter(d.Die.Center())
		}
		return d
	}
	channel := geom.NewRect(140, 84, 176, 204)
	inChannel := func(d *db.Design) int {
		n := 0
		for _, ci := range d.Movable() {
			if channel.Overlaps(d.Cells[ci].Rect()) {
				n++
			}
		}
		return n
	}
	dOn := build()
	if _, err := MustNew(Config{DisableRoutability: true, EnableChannelDerate: true}).Place(dOn); err != nil {
		t.Fatal(err)
	}
	dOff := build()
	if _, err := MustNew(Config{DisableRoutability: true}).Place(dOff); err != nil {
		t.Fatal(err)
	}
	on, off := inChannel(dOn), inChannel(dOff)
	t.Logf("channel occupancy: derate-on=%d derate-off=%d", on, off)
	if on > off {
		t.Errorf("channel derating increased channel occupancy: %d > %d", on, off)
	}
}
