// Package snap is the placement checkpoint codec: a versioned,
// deterministic binary encoding of mid-flow placer state — cell positions
// and orientations, the current global-placement level and λ round,
// routability inflation ratios and the router's demand grid — small enough
// to write every few λ rounds and complete enough for
// core.Placer.PlaceFromCheckpoint to resume the flow and still converge to
// a legal placement.
//
// The format is pinned by golden files (testdata/v1.snap,
// testdata/v2.snap): any change to the byte layout must bump Version and
// add a new golden, never rewrite an old one. Encoders always write the
// current version; the decoder also reads every older version (v1 files
// simply have no recorded run config). Files are written atomically (temp
// file + fsync + rename) so a crash mid-write leaves either the previous
// checkpoint or none, and every file carries a CRC32 footer so torn or
// bit-rotted checkpoints are detected on load instead of resuming from
// garbage.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"repro/internal/atomicfile"
)

// Magic identifies a snap checkpoint file.
const Magic = "RPSN"

// Version is the current schema version. The encoder always writes it;
// the decoder reads it and every older version.
const Version = 2

// ErrCorrupt is wrapped by decode errors caused by a damaged or truncated
// checkpoint (bad magic, short buffer, length overrun, CRC mismatch).
// Callers should treat it as "no checkpoint", not as a fatal error.
var ErrCorrupt = errors.New("snap: corrupt checkpoint")

// Stage says which phase of the placement flow the checkpoint was taken in.
type Stage uint8

const (
	// StageGP is mid global placement: λ-round state at the finest level.
	StageGP Stage = 1
	// StageRoutability is between routability iterations: the router demand
	// grid and inflation map are live.
	StageRoutability Stage = 2
)

func (s Stage) String() string {
	switch s {
	case StageGP:
		return "gp"
	case StageRoutability:
		return "routability"
	default:
		return fmt.Sprintf("Stage(%d)", uint8(s))
	}
}

// RouteState is a deep copy of the router demand grid: present demand and
// the negotiated-congestion history accumulated across rip-up rounds.
// Restoring it lets a resumed routability loop keep its pricing instead of
// re-learning congestion from scratch.
type RouteState struct {
	NX, NY                   int
	HDem, VDem, HHist, VHist []float64
}

// RunConfig records the result-shaping placer configuration the
// checkpoint was taken under (schema v2+). A resume under a different
// configuration would silently produce a placement neither run would
// have — core.ValidateResumeConfig compares this against the resuming
// config and rejects mismatches up front. Workers is recorded for
// forensics but is not binding: legalization, detailed placement and
// routing are byte-identical for every worker count.
type RunConfig struct {
	Model              string
	TargetDensity      float64
	Workers            int
	MaxLambdaRounds    int
	RoutabilityIters   int
	CongestionSource   string
	RouteLastRounds    int
	DisableRoutability bool
	DisableFences      bool
	DisableDP          bool
	DisableMultilevel  bool
}

// State is one checkpoint of the placement flow.
type State struct {
	// Design is the design name, an advisory label; Fingerprint is the
	// binding identity check (db.Design.Fingerprint at checkpoint time,
	// after any fence stripping the config asked for).
	Design      string
	Fingerprint [32]byte

	Stage Stage
	// Level is the clustering level the GP checkpoint was taken at
	// (checkpoints are only emitted at the finest level, 0).
	Level int
	// Round is the number of completed λ rounds at Level (StageGP), or the
	// total GP rounds when the checkpoint is post-GP (StageRoutability).
	Round int
	// RoutIter is the number of completed routability iterations.
	RoutIter int
	// Lambda and Mu are the density and fence multipliers to resume with.
	Lambda, Mu float64

	// X, Y are cell lower-left positions, indexed like db.Design.Cells.
	X, Y []float64
	// Orient is the per-cell orientation (db.Orient, 0..7).
	Orient []uint8
	// Inflate is the per-cell routability inflation ratio (0 or 1 = none).
	Inflate []float64

	// Route carries the router demand grid for StageRoutability
	// checkpoints; nil otherwise.
	Route *RouteState

	// Config records the run configuration the checkpoint was taken
	// under; nil when absent (v1 files, or emitters that do not stamp it).
	Config *RunConfig
}

// NumCells returns the cell count the checkpoint was taken over.
func (st *State) NumCells() int { return len(st.X) }

// Encode serializes the state in the versioned little-endian layout:
//
//	magic "RPSN" | u32 version | str design | 32B fingerprint |
//	u8 stage | u32 level | u32 round | u32 routIter | f64 λ | f64 μ |
//	u32 n | n×f64 X | n×f64 Y | n×u8 orient | n×f64 inflate |
//	u8 hasRoute [ u32 nx | u32 ny | 4×(u32 len | len×f64) ] |
//	u8 hasConfig [ str model | f64 targetDensity | u32 workers |          (v2+)
//	               u32 maxLambdaRounds | u32 routabilityIters |
//	               str congestionSource | u32 routeLastRounds | u8 flags ] |
//	u32 crc32-IEEE of everything above
//
// flags packs the disable bits: 1 routability, 2 fences, 4 dp,
// 8 multilevel.
func Encode(st *State) []byte {
	n := len(st.X)
	size := 4 + 4 + 4 + len(st.Design) + 32 + 1 + 4*3 + 8*2 + 4 + n*(8+8+1+8) + 1 + 4
	if st.Route != nil {
		size += 4*2 + 4*4 + 8*(len(st.Route.HDem)+len(st.Route.VDem)+len(st.Route.HHist)+len(st.Route.VHist))
	}
	e := encoder{buf: make([]byte, 0, size)}
	e.bytes([]byte(Magic))
	e.u32(Version)
	e.str(st.Design)
	e.bytes(st.Fingerprint[:])
	e.u8(uint8(st.Stage))
	e.u32(uint32(st.Level))
	e.u32(uint32(st.Round))
	e.u32(uint32(st.RoutIter))
	e.f64(st.Lambda)
	e.f64(st.Mu)
	e.u32(uint32(n))
	e.f64s(st.X)
	e.f64s(st.Y)
	e.bytes(st.Orient)
	e.f64s(st.Inflate)
	if st.Route == nil {
		e.u8(0)
	} else {
		e.u8(1)
		e.u32(uint32(st.Route.NX))
		e.u32(uint32(st.Route.NY))
		for _, s := range [][]float64{st.Route.HDem, st.Route.VDem, st.Route.HHist, st.Route.VHist} {
			e.u32(uint32(len(s)))
			e.f64s(s)
		}
	}
	if st.Config == nil {
		e.u8(0)
	} else {
		c := st.Config
		e.u8(1)
		e.str(c.Model)
		e.f64(c.TargetDensity)
		e.u32(uint32(c.Workers))
		e.u32(uint32(c.MaxLambdaRounds))
		e.u32(uint32(c.RoutabilityIters))
		e.str(c.CongestionSource)
		e.u32(uint32(c.RouteLastRounds))
		var flags uint8
		if c.DisableRoutability {
			flags |= 1
		}
		if c.DisableFences {
			flags |= 2
		}
		if c.DisableDP {
			flags |= 4
		}
		if c.DisableMultilevel {
			flags |= 8
		}
		e.u8(flags)
	}
	e.u32(crc32.ChecksumIEEE(e.buf))
	return e.buf
}

// Decode parses a checkpoint produced by Encode. Damaged input yields an
// error wrapping ErrCorrupt; a valid file of a different schema version
// yields a plain version-mismatch error.
func Decode(data []byte) (*State, error) {
	if len(data) < 4+4+4 {
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrCorrupt, len(data))
	}
	if string(data[:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("%w: crc mismatch (have %08x, footer says %08x)", ErrCorrupt, got, want)
	}
	dec := decoder{buf: body[4:]}
	v := dec.u32()
	if v < 1 || v > Version {
		return nil, fmt.Errorf("snap: checkpoint schema version %d (this build reads 1..%d)", v, Version)
	}
	st := &State{}
	st.Design = dec.str()
	copy(st.Fingerprint[:], dec.bytes(32))
	st.Stage = Stage(dec.u8())
	st.Level = int(dec.u32())
	st.Round = int(dec.u32())
	st.RoutIter = int(dec.u32())
	st.Lambda = dec.f64()
	st.Mu = dec.f64()
	n := int(dec.u32())
	st.X = dec.f64s(n)
	st.Y = dec.f64s(n)
	st.Orient = append([]uint8(nil), dec.bytes(n)...)
	st.Inflate = dec.f64s(n)
	if dec.u8() == 1 {
		r := &RouteState{NX: int(dec.u32()), NY: int(dec.u32())}
		r.HDem = dec.f64s(int(dec.u32()))
		r.VDem = dec.f64s(int(dec.u32()))
		r.HHist = dec.f64s(int(dec.u32()))
		r.VHist = dec.f64s(int(dec.u32()))
		st.Route = r
	}
	if v >= 2 && dec.u8() == 1 {
		c := &RunConfig{}
		c.Model = dec.str()
		c.TargetDensity = dec.f64()
		c.Workers = int(dec.u32())
		c.MaxLambdaRounds = int(dec.u32())
		c.RoutabilityIters = int(dec.u32())
		c.CongestionSource = dec.str()
		c.RouteLastRounds = int(dec.u32())
		flags := dec.u8()
		c.DisableRoutability = flags&1 != 0
		c.DisableFences = flags&2 != 0
		c.DisableDP = flags&4 != 0
		c.DisableMultilevel = flags&8 != 0
		st.Config = c
	}
	if dec.err != nil {
		return nil, dec.err
	}
	if len(dec.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(dec.buf))
	}
	if st.Stage != StageGP && st.Stage != StageRoutability {
		return nil, fmt.Errorf("%w: unknown stage %d", ErrCorrupt, st.Stage)
	}
	return st, nil
}

// WriteFile writes the checkpoint atomically (temp file + fsync +
// rename, via internal/atomicfile). Readers therefore never observe a
// partially written checkpoint.
func WriteFile(path string, st *State) error {
	return atomicfile.WriteFile(path, Encode(st), 0o644)
}

// ReadFile loads and validates a checkpoint written by WriteFile.
func ReadFile(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	st, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return st, nil
}

type encoder struct{ buf []byte }

func (e *encoder) bytes(b []byte) { e.buf = append(e.buf, b...) }
func (e *encoder) u8(v uint8)     { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32)   { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *encoder) f64s(s []float64) {
	for _, v := range s {
		e.f64(v)
	}
}
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf) {
		d.err = fmt.Errorf("%w: truncated (need %d bytes, have %d)", ErrCorrupt, n, len(d.buf))
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) bytes(n int) []byte { return d.take(n) }

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) f64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (d *decoder) f64s(n int) []float64 {
	if d.err != nil || n <= 0 {
		return nil
	}
	b := d.take(8 * n)
	if b == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func (d *decoder) str() string {
	n := int(d.u32())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
