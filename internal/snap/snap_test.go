package snap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenState is a fixed checkpoint exercising every field of the current
// schema. It must never change: together with testdata/v2.snap it pins the
// byte layout of schema version 2. Its Config-less restriction
// (goldenStateV1) pins version 1 via testdata/v1.snap, which modern
// decoders must keep reading forever.
func goldenState() *State {
	st := goldenStateV1()
	st.Config = &RunConfig{
		Model:            "wa",
		TargetDensity:    0.85,
		Workers:          4,
		MaxLambdaRounds:  24,
		RoutabilityIters: 3,
		CongestionSource: "estimate",
		RouteLastRounds:  1,
		DisableFences:    true,
	}
	return st
}

func goldenStateV1() *State {
	st := &State{
		Design:   "golden",
		Stage:    StageRoutability,
		Level:    0,
		Round:    7,
		RoutIter: 2,
		Lambda:   0.015625,
		Mu:       3.5,
		X:        []float64{0, 1.5, -2.25, 1e6},
		Y:        []float64{10, 20.125, 30, -0.5},
		Orient:   []uint8{0, 1, 5, 7},
		Inflate:  []float64{1, 1, 1.21, 1},
		Route: &RouteState{
			NX: 2, NY: 2,
			HDem:  []float64{0, 1, 2, 3},
			VDem:  []float64{3, 2, 1, 0},
			HHist: []float64{0.5, 0, 0, 0.5},
			VHist: []float64{0, 0.25, 0.25, 0},
		},
	}
	for i := range st.Fingerprint {
		st.Fingerprint[i] = byte(i)
	}
	return st
}

func TestGolden(t *testing.T) {
	path := filepath.Join("testdata", "v2.snap")
	got := Encode(goldenState())
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoding of the golden state changed (%d bytes vs %d golden).\n"+
			"The v2 schema is frozen: bump Version and add a new golden instead.",
			len(got), len(want))
	}
	st, err := Decode(want)
	if err != nil {
		t.Fatalf("decode golden: %v", err)
	}
	if !reflect.DeepEqual(st, goldenState()) {
		t.Errorf("golden decode mismatch:\n got %+v\nwant %+v", st, goldenState())
	}
}

// Checkpoints written by v1 builds must stay readable forever: the frozen
// testdata/v1.snap (never regenerated) decodes to the golden state with no
// recorded config.
func TestGoldenV1Decode(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "v1.snap"))
	if err != nil {
		t.Fatalf("frozen v1 golden missing: %v", err)
	}
	st, err := Decode(want)
	if err != nil {
		t.Fatalf("decode v1 golden: %v", err)
	}
	if st.Config != nil {
		t.Errorf("v1 checkpoint decoded with a config section: %+v", st.Config)
	}
	if !reflect.DeepEqual(st, goldenStateV1()) {
		t.Errorf("v1 golden decode mismatch:\n got %+v\nwant %+v", st, goldenStateV1())
	}
}

func TestRoundTrip(t *testing.T) {
	cases := []*State{
		goldenState(),
		{Design: "", Stage: StageGP},
		{
			Design: "gp-only", Stage: StageGP, Round: 3, Lambda: 2e-6, Mu: 0,
			X: []float64{1}, Y: []float64{2}, Orient: []uint8{4}, Inflate: []float64{1},
		},
	}
	for _, want := range cases {
		got, err := Decode(Encode(want))
		if err != nil {
			t.Fatalf("%s: %v", want.Design, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", want.Design, got, want)
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	good := Encode(goldenState())

	check := func(name string, data []byte) {
		t.Helper()
		if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	check("empty", nil)
	check("short", good[:8])
	check("truncated", good[:len(good)-5])

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	check("bit flip", flipped)

	magic := append([]byte(nil), good...)
	copy(magic, "NOPE")
	check("bad magic", magic)

	// Claim more cells than the buffer holds, with a fixed-up CRC: the
	// length check must catch it, not a slice panic.
	huge := append([]byte(nil), good...)
	off := 4 + 4 + 4 + len("golden") + 32 + 1 + 12 + 16 // offset of the cell count
	binary.LittleEndian.PutUint32(huge[off:], 1<<30)
	binary.LittleEndian.PutUint32(huge[len(huge)-4:], crc32.ChecksumIEEE(huge[:len(huge)-4]))
	check("huge count", huge)
}

func TestDecodeVersionMismatch(t *testing.T) {
	data := Encode(goldenState())
	binary.LittleEndian.PutUint32(data[4:], 99)
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(data[:len(data)-4]))
	_, err := Decode(data)
	if err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want a version-mismatch error distinct from ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "version 99") {
		t.Errorf("err = %v, want mention of version 99", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.snap")
	want := goldenState()
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("file round trip mismatch")
	}

	// Overwrite with a newer checkpoint; no temp files may be left behind.
	want.Round = 9
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 9 {
		t.Errorf("Round = %d after overwrite, want 9", got.Round)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries after atomic writes, want 1", len(entries))
	}

	if _, err := ReadFile(filepath.Join(dir, "missing.snap")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file err = %v, want ErrNotExist", err)
	}
}
