// Package par centralizes worker-count policy for the data-parallel
// kernels (wirelength, density, global routing). Every knob in the repo
// resolves through Workers so the cap and the environment override live in
// exactly one place.
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// DefaultCap bounds the automatic worker count: the parallel kernels are
// memory-bandwidth bound and saturate well before high core counts on
// typical hosts. Explicit worker counts (flag, config, env) are not capped.
const DefaultCap = 8

// EnvWorkers is the environment variable consulted by Workers when the
// requested count is automatic (≤ 0). It overrides the GOMAXPROCS-derived
// default, e.g. REPRO_WORKERS=16 on a machine where the cap is too low.
const EnvWorkers = "REPRO_WORKERS"

// Workers resolves a worker-count knob: n > 0 is honored as-is; n ≤ 0
// selects the EnvWorkers override when set to a positive integer, and
// otherwise GOMAXPROCS capped at DefaultCap. The result is always ≥ 1.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if s := os.Getenv(EnvWorkers); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	w := runtime.GOMAXPROCS(0)
	if w > DefaultCap {
		w = DefaultCap
	}
	if w < 1 {
		w = 1
	}
	return w
}

// DefaultWorkers is Workers(0): the automatic choice.
func DefaultWorkers() int { return Workers(0) }

// ForWorker runs fn(worker, i) for every i in [0, n), pulling items off a
// shared atomic cursor with the given number of workers. Item order is
// unspecified across workers, so fn must be a pure function of i writing
// only worker-private state or per-item slots — the pattern every
// deterministic parallel stage in this repo (router batches, DP proposal
// sweeps, legalizer row builds) is built on. With workers ≤ 1 (or n ≤ 1)
// everything runs on the calling goroutine as worker 0.
func ForWorker(n, workers int, fn func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(k, i)
			}
		}(k)
	}
	wg.Wait()
}

// For is ForWorker for callers that do not need worker-private state.
func For(n, workers int, fn func(i int)) {
	ForWorker(n, workers, func(_, i int) { fn(i) })
}
