// Package par centralizes worker-count policy for the data-parallel
// kernels (wirelength, density, global routing). Every knob in the repo
// resolves through Workers so the cap and the environment override live in
// exactly one place.
package par

import (
	"os"
	"runtime"
	"strconv"
)

// DefaultCap bounds the automatic worker count: the parallel kernels are
// memory-bandwidth bound and saturate well before high core counts on
// typical hosts. Explicit worker counts (flag, config, env) are not capped.
const DefaultCap = 8

// EnvWorkers is the environment variable consulted by Workers when the
// requested count is automatic (≤ 0). It overrides the GOMAXPROCS-derived
// default, e.g. REPRO_WORKERS=16 on a machine where the cap is too low.
const EnvWorkers = "REPRO_WORKERS"

// Workers resolves a worker-count knob: n > 0 is honored as-is; n ≤ 0
// selects the EnvWorkers override when set to a positive integer, and
// otherwise GOMAXPROCS capped at DefaultCap. The result is always ≥ 1.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if s := os.Getenv(EnvWorkers); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	w := runtime.GOMAXPROCS(0)
	if w > DefaultCap {
		w = DefaultCap
	}
	if w < 1 {
		w = 1
	}
	return w
}

// DefaultWorkers is Workers(0): the automatic choice.
func DefaultWorkers() int { return Workers(0) }
