package par

import (
	"runtime"
	"testing"
)

func TestExplicitCountHonored(t *testing.T) {
	for _, n := range []int{1, 3, 64} {
		if got := Workers(n); got != n {
			t.Errorf("Workers(%d) = %d", n, got)
		}
	}
}

func TestAutomaticCapped(t *testing.T) {
	t.Setenv(EnvWorkers, "")
	got := DefaultWorkers()
	want := runtime.GOMAXPROCS(0)
	if want > DefaultCap {
		want = DefaultCap
	}
	if got != want {
		t.Errorf("DefaultWorkers() = %d, want %d", got, want)
	}
}

func TestEnvOverride(t *testing.T) {
	t.Setenv(EnvWorkers, "5")
	if got := Workers(0); got != 5 {
		t.Errorf("env override: Workers(0) = %d, want 5", got)
	}
	// Explicit counts beat the environment.
	if got := Workers(2); got != 2 {
		t.Errorf("explicit beats env: Workers(2) = %d", got)
	}
	// Garbage and non-positive values fall back to the automatic choice.
	for _, bad := range []string{"x", "0", "-3"} {
		t.Setenv(EnvWorkers, bad)
		if got := Workers(0); got < 1 || got > DefaultCap {
			t.Errorf("env %q: Workers(0) = %d outside [1,%d]", bad, got, DefaultCap)
		}
	}
}
