package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dist(q); !almostEq(got, math.Hypot(2, 6)) {
		t.Errorf("Dist = %v", got)
	}
	if got := p.ManhattanDist(q); !almostEq(got, 8) {
		t.Errorf("ManhattanDist = %v", got)
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{2, 5}
	if got := iv.Len(); got != 3 {
		t.Errorf("Len = %v", got)
	}
	if (Interval{5, 2}).Len() != 0 {
		t.Error("inverted interval should have zero length")
	}
	if !iv.Contains(2) || !iv.Contains(5) || iv.Contains(5.1) {
		t.Error("Contains boundary behaviour wrong")
	}
	if got := iv.Clamp(0); got != 2 {
		t.Errorf("Clamp low = %v", got)
	}
	if got := iv.Clamp(9); got != 5 {
		t.Errorf("Clamp high = %v", got)
	}
	if got := iv.Clamp(3); got != 3 {
		t.Errorf("Clamp inside = %v", got)
	}
}

func TestIntervalOverlap(t *testing.T) {
	cases := []struct {
		a, b Interval
		want float64
	}{
		{Interval{0, 4}, Interval{2, 6}, 2},
		{Interval{0, 4}, Interval{4, 6}, 0},
		{Interval{0, 4}, Interval{5, 6}, 0},
		{Interval{0, 10}, Interval{2, 3}, 1},
		{Interval{2, 3}, Interval{0, 10}, 1},
	}
	for _, c := range cases {
		if got := c.a.Overlap(c.b); !almostEq(got, c.want) {
			t.Errorf("Overlap(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	if r.Lo != (Point{1, 2}) || r.Hi != (Point{5, 7}) {
		t.Errorf("NewRect did not normalize: %v", r)
	}
}

func TestRectDimensions(t *testing.T) {
	r := NewRect(0, 0, 3, 4)
	if r.W() != 3 || r.H() != 4 || r.Area() != 12 {
		t.Errorf("dimensions wrong: w=%v h=%v a=%v", r.W(), r.H(), r.Area())
	}
	if r.Empty() {
		t.Error("non-degenerate rect reported empty")
	}
	if !(Rect{}).Empty() {
		t.Error("zero rect should be empty")
	}
	if c := r.Center(); c != (Point{1.5, 2}) {
		t.Errorf("Center = %v", c)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 10}) {
		t.Error("boundary points should be contained")
	}
	if r.Contains(Point{10.001, 5}) {
		t.Error("outside point contained")
	}
	if !r.ContainsRect(NewRect(1, 1, 9, 9)) {
		t.Error("inner rect should be contained")
	}
	if r.ContainsRect(NewRect(1, 1, 11, 9)) {
		t.Error("overhanging rect should not be contained")
	}
}

func TestRectOverlap(t *testing.T) {
	a := NewRect(0, 0, 4, 4)
	b := NewRect(2, 2, 6, 6)
	if got := a.OverlapArea(b); !almostEq(got, 4) {
		t.Errorf("OverlapArea = %v", got)
	}
	if !a.Overlaps(b) {
		t.Error("should overlap")
	}
	touch := NewRect(4, 0, 8, 4)
	if a.Overlaps(touch) {
		t.Error("touching rects should not count as overlapping")
	}
	inter := a.Intersect(b)
	if inter != NewRect(2, 2, 4, 4) {
		t.Errorf("Intersect = %v", inter)
	}
}

func TestRectUnion(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(5, 5, 6, 8)
	u := a.Union(b)
	if u != NewRect(0, 0, 6, 8) {
		t.Errorf("Union = %v", u)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("union with empty should be identity, got %v", got)
	}
	if got := (Rect{}).Union(b); got != b {
		t.Errorf("empty union b = %v", got)
	}
}

func TestRectTranslateExpand(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	if got := r.Translate(Point{1, -1}); got != NewRect(1, -1, 3, 1) {
		t.Errorf("Translate = %v", got)
	}
	if got := r.Expand(1); got != NewRect(-1, -1, 3, 3) {
		t.Errorf("Expand = %v", got)
	}
	// Over-shrinking must collapse to the midline, not invert.
	s := r.Expand(-5)
	if s.W() != 0 || s.H() != 0 {
		t.Errorf("over-shrunk rect should be degenerate, got %v", s)
	}
}

func TestClampRect(t *testing.T) {
	die := NewRect(0, 0, 10, 10)
	cases := []struct {
		in, want Rect
	}{
		{NewRect(-2, 3, 1, 6), NewRect(0, 3, 3, 6)},
		{NewRect(8, 8, 12, 12), NewRect(6, 6, 10, 10)},
		{NewRect(2, 2, 4, 4), NewRect(2, 2, 4, 4)},
		// Larger than die: aligned to low edge.
		{NewRect(-1, 0, 14, 3), NewRect(0, 0, 15, 3)},
	}
	for _, c := range cases {
		if got := die.ClampRect(c.in); got != c.want {
			t.Errorf("ClampRect(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDistToPoint(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	if d := r.DistToPoint(Point{1, 1}); d != 0 {
		t.Errorf("inside dist = %v", d)
	}
	if d := r.DistToPoint(Point{5, 2}); !almostEq(d, 3) {
		t.Errorf("axis dist = %v", d)
	}
	if d := r.DistToPoint(Point{5, 6}); !almostEq(d, 5) {
		t.Errorf("corner dist = %v", d)
	}
}

func TestBoundingBoxAndHPWL(t *testing.T) {
	pts := []Point{{1, 5}, {4, 2}, {3, 3}}
	bb := BoundingBox(pts)
	if bb != NewRect(1, 2, 4, 5) {
		t.Errorf("BoundingBox = %v", bb)
	}
	if got := HPWL(pts); !almostEq(got, 6) {
		t.Errorf("HPWL = %v", got)
	}
	if HPWL(nil) != 0 || HPWL(pts[:1]) != 0 {
		t.Error("degenerate HPWL should be 0")
	}
	if !BoundingBox(nil).Empty() {
		t.Error("bounding box of no points should be empty")
	}
}

// Property: overlap area is symmetric and bounded by each rectangle's area.
func TestOverlapAreaProperties(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3, x4, y4 float64) bool {
		a := NewRect(mod(x1), mod(y1), mod(x2), mod(y2))
		b := NewRect(mod(x3), mod(y3), mod(x4), mod(y4))
		ab, ba := a.OverlapArea(b), b.OverlapArea(a)
		if !almostEq(ab, ba) {
			return false
		}
		return ab <= a.Area()+1e-9 && ab <= b.Area()+1e-9 && ab >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: clamping into a rect yields a contained point, and is idempotent.
func TestClampPointProperties(t *testing.T) {
	r := NewRect(-3, -7, 11, 13)
	f := func(x, y float64) bool {
		p := r.ClampPoint(Point{mod(x), mod(y)})
		return r.Contains(p) && r.ClampPoint(p) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: union contains both operands; intersection is contained in both.
func TestUnionIntersectProperties(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3, x4, y4 float64) bool {
		a := NewRect(mod(x1), mod(y1), mod(x2), mod(y2))
		b := NewRect(mod(x3), mod(y3), mod(x4), mod(y4))
		u := a.Union(b)
		// Union treats empty rectangles as absorbing, so containment is
		// only promised for non-empty operands.
		if !a.Empty() && !u.ContainsRect(a) {
			return false
		}
		if !b.Empty() && !u.ContainsRect(b) {
			return false
		}
		i := a.Intersect(b)
		if i.Empty() {
			return true
		}
		return a.ContainsRect(i) && b.ContainsRect(i)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// mod squashes arbitrary quick-generated floats (which may be NaN/Inf/huge)
// into a well-behaved finite range so geometric identities are testable.
func mod(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1000)
}
