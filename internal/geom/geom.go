// Package geom provides the planar geometry primitives used throughout the
// placer: points, axis-aligned rectangles and closed intervals, together
// with the overlap, clamping and area arithmetic that placement, density
// accounting, legalization and routing all share.
//
// All coordinates are float64 in database units. Rectangles are half-open
// in spirit — two rectangles that merely touch have zero overlap area — but
// Contains treats boundaries inclusively, which matches how fence regions
// and die boundaries are interpreted by legalization.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the placement plane.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// ManhattanDist returns the L1 distance between p and q, the natural metric
// for rectilinear routing.
func (p Point) ManhattanDist(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Interval is a closed range [Lo, Hi] on one axis.
type Interval struct {
	Lo, Hi float64
}

// Len returns the length of the interval, or 0 for an inverted interval.
func (iv Interval) Len() float64 {
	if iv.Hi <= iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Contains reports whether v lies in [Lo, Hi].
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Clamp returns v restricted to [Lo, Hi].
func (iv Interval) Clamp(v float64) float64 {
	if v < iv.Lo {
		return iv.Lo
	}
	if v > iv.Hi {
		return iv.Hi
	}
	return v
}

// Overlap returns the length of the intersection of two intervals.
func (iv Interval) Overlap(o Interval) float64 {
	lo := math.Max(iv.Lo, o.Lo)
	hi := math.Min(iv.Hi, o.Hi)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Rect is an axis-aligned rectangle with Lo as the lower-left corner and Hi
// as the upper-right corner.
type Rect struct {
	Lo, Hi Point
}

// NewRect builds a rectangle from any two opposite corners, normalizing so
// that Lo is the lower-left corner.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x2 < x1 {
		x1, x2 = x2, x1
	}
	if y2 < y1 {
		y1, y2 = y2, y1
	}
	return Rect{Point{x1, y1}, Point{x2, y2}}
}

// W returns the rectangle width (0 if degenerate).
func (r Rect) W() float64 {
	if r.Hi.X <= r.Lo.X {
		return 0
	}
	return r.Hi.X - r.Lo.X
}

// H returns the rectangle height (0 if degenerate).
func (r Rect) H() float64 {
	if r.Hi.Y <= r.Lo.Y {
		return 0
	}
	return r.Hi.Y - r.Lo.Y
}

// Area returns width times height.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Empty reports whether the rectangle has zero area.
func (r Rect) Empty() bool { return r.Hi.X <= r.Lo.X || r.Hi.Y <= r.Lo.Y }

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// XInterval returns the projection of r on the x axis.
func (r Rect) XInterval() Interval { return Interval{r.Lo.X, r.Hi.X} }

// YInterval returns the projection of r on the y axis.
func (r Rect) YInterval() Interval { return Interval{r.Lo.Y, r.Hi.Y} }

// Contains reports whether p lies in r, boundaries inclusive.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X <= r.Hi.X && p.Y >= r.Lo.Y && p.Y <= r.Hi.Y
}

// ContainsRect reports whether o lies entirely within r, boundaries
// inclusive. Every rectangle contains an empty rectangle whose corner is
// inside it.
func (r Rect) ContainsRect(o Rect) bool {
	return o.Lo.X >= r.Lo.X && o.Hi.X <= r.Hi.X && o.Lo.Y >= r.Lo.Y && o.Hi.Y <= r.Hi.Y
}

// Intersect returns the intersection of r and o; the result may be empty.
func (r Rect) Intersect(o Rect) Rect {
	return Rect{
		Point{math.Max(r.Lo.X, o.Lo.X), math.Max(r.Lo.Y, o.Lo.Y)},
		Point{math.Min(r.Hi.X, o.Hi.X), math.Min(r.Hi.Y, o.Hi.Y)},
	}
}

// OverlapArea returns the area of the intersection of r and o.
func (r Rect) OverlapArea(o Rect) float64 {
	return r.XInterval().Overlap(o.XInterval()) * r.YInterval().Overlap(o.YInterval())
}

// Overlaps reports whether r and o share positive area.
func (r Rect) Overlaps(o Rect) bool { return r.OverlapArea(o) > 0 }

// Union returns the bounding box of r and o. Empty rectangles are treated
// as absorbing: the union with an empty rectangle returns the other one.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	return Rect{
		Point{math.Min(r.Lo.X, o.Lo.X), math.Min(r.Lo.Y, o.Lo.Y)},
		Point{math.Max(r.Hi.X, o.Hi.X), math.Max(r.Hi.Y, o.Hi.Y)},
	}
}

// Translate returns r shifted by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{r.Lo.Add(d), r.Hi.Add(d)}
}

// Expand returns r grown by m on every side (shrunk for negative m; the
// result is normalized so it never inverts).
func (r Rect) Expand(m float64) Rect {
	out := Rect{Point{r.Lo.X - m, r.Lo.Y - m}, Point{r.Hi.X + m, r.Hi.Y + m}}
	if out.Hi.X < out.Lo.X {
		c := (out.Hi.X + out.Lo.X) / 2
		out.Lo.X, out.Hi.X = c, c
	}
	if out.Hi.Y < out.Lo.Y {
		c := (out.Hi.Y + out.Lo.Y) / 2
		out.Lo.Y, out.Hi.Y = c, c
	}
	return out
}

// ClampPoint returns p moved to the nearest point inside r.
func (r Rect) ClampPoint(p Point) Point {
	return Point{r.XInterval().Clamp(p.X), r.YInterval().Clamp(p.Y)}
}

// ClampRect returns o translated by the smallest displacement that places it
// inside r. If o is larger than r on an axis, o is aligned to r's low edge
// on that axis.
func (r Rect) ClampRect(o Rect) Rect {
	dx, dy := 0.0, 0.0
	switch {
	case o.W() > r.W() || o.Lo.X < r.Lo.X:
		dx = r.Lo.X - o.Lo.X
	case o.Hi.X > r.Hi.X:
		dx = r.Hi.X - o.Hi.X
	}
	switch {
	case o.H() > r.H() || o.Lo.Y < r.Lo.Y:
		dy = r.Lo.Y - o.Lo.Y
	case o.Hi.Y > r.Hi.Y:
		dy = r.Hi.Y - o.Hi.Y
	}
	return o.Translate(Point{dx, dy})
}

// DistToPoint returns the Euclidean distance from p to the rectangle
// (0 if p is inside).
func (r Rect) DistToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.Lo.X-p.X, p.X-r.Hi.X))
	dy := math.Max(0, math.Max(r.Lo.Y-p.Y, p.Y-r.Hi.Y))
	return math.Hypot(dx, dy)
}

func (r Rect) String() string {
	return fmt.Sprintf("[%s %s]", r.Lo, r.Hi)
}

// BoundingBox returns the smallest rectangle containing all points; it
// returns an empty Rect when pts is empty.
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	bb := Rect{pts[0], pts[0]}
	for _, p := range pts[1:] {
		if p.X < bb.Lo.X {
			bb.Lo.X = p.X
		}
		if p.Y < bb.Lo.Y {
			bb.Lo.Y = p.Y
		}
		if p.X > bb.Hi.X {
			bb.Hi.X = p.X
		}
		if p.Y > bb.Hi.Y {
			bb.Hi.Y = p.Y
		}
	}
	return bb
}

// HPWL returns the half-perimeter wirelength of the bounding box of pts.
func HPWL(pts []Point) float64 {
	if len(pts) < 2 {
		return 0
	}
	bb := BoundingBox(pts)
	return (bb.Hi.X - bb.Lo.X) + (bb.Hi.Y - bb.Lo.Y)
}
