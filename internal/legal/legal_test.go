package legal

import (
	"math"
	"testing"

	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/geom"
)

func TestAbacusSingleSegmentPacking(t *testing.T) {
	s := &rowSeg{y: 0, x1: 0, x2: 100, domain: db.NoRegion}
	// Three cells wanting to stack at x=10.
	b := db.NewBuilder("p", geom.NewRect(0, 0, 100, 10))
	for i := 0; i < 3; i++ {
		b.AddStdCell(string(rune('a'+i)), 4, 2)
	}
	d := b.MustDesign()
	for i := 0; i < 3; i++ {
		s.insert(i, 10, 4)
	}
	s.finalize(d, 1)
	// Cells must abut around x=10 without overlapping.
	xs := []float64{d.Cells[0].Pos.X, d.Cells[1].Pos.X, d.Cells[2].Pos.X}
	if !(xs[0] < xs[1] && xs[1] < xs[2]) {
		t.Fatalf("order broken: %v", xs)
	}
	for i := 0; i < 2; i++ {
		if xs[i+1]-xs[i] < 4 {
			t.Errorf("cells %d,%d overlap: %v", i, i+1, xs)
		}
	}
	// The pack centers near the common wish.
	mid := (xs[0] + xs[2] + 4) / 2
	if math.Abs(mid-12) > 4 {
		t.Errorf("pack center %v far from wish", mid)
	}
}

func TestAbacusRespectsSegmentBounds(t *testing.T) {
	s := &rowSeg{y: 0, x1: 10, x2: 30, domain: db.NoRegion}
	b := db.NewBuilder("p", geom.NewRect(0, 0, 100, 10))
	for i := 0; i < 4; i++ {
		b.AddStdCell(string(rune('a'+i)), 5, 2)
	}
	d := b.MustDesign()
	// All four want x=0 (left of segment).
	for i := 0; i < 4; i++ {
		s.insert(i, 0, 5)
	}
	s.finalize(d, 1)
	for i := 0; i < 4; i++ {
		p := d.Cells[i].Pos.X
		if p < 10-1e-9 || p+5 > 30+1e-9 {
			t.Errorf("cell %d at %v outside segment [10,30]", i, p)
		}
	}
}

func TestTrialMatchesInsert(t *testing.T) {
	s := &rowSeg{y: 0, x1: 0, x2: 50, domain: db.NoRegion}
	s.insert(0, 5, 4)
	s.insert(1, 6, 4)
	cost, landX := s.trial(7, 0, 4)
	if math.IsInf(cost, 1) {
		t.Fatal("trial infeasible on roomy segment")
	}
	s.insert(2, 7, 4)
	// Recompute the actual landing from clusters.
	last := s.clusters[len(s.clusters)-1]
	actual := last.x + last.w - 4
	if math.Abs(landX-actual) > 1e-9 {
		t.Errorf("trial landX %v != actual %v", landX, actual)
	}
}

func TestTrialRejectsFullSegment(t *testing.T) {
	s := &rowSeg{y: 0, x1: 0, x2: 10, domain: db.NoRegion}
	s.insert(0, 0, 6)
	if cost, _ := s.trial(0, 0, 6); !math.IsInf(cost, 1) {
		t.Errorf("expected Inf cost, got %v", cost)
	}
}

// legalSmall generates a small design, scatters cells, and legalizes.
func legalSmall(t *testing.T, cfg gen.Config) *db.Design {
	t.Helper()
	d := gen.MustGenerate(cfg)
	// Scatter cells deterministically (pretend GP happened).
	for i, ci := range d.Movable() {
		c := &d.Cells[ci]
		c.SetCenter(geom.Point{
			X: d.Die.Lo.X + float64((i*37)%101)/101*d.Die.W(),
			Y: d.Die.Lo.Y + float64((i*53)%97)/97*d.Die.H(),
		})
		// If fenced, pre-pull into the fence bounding box (GP would).
		if rg := d.CellRegion(ci); rg != db.NoRegion {
			c.SetCenter(d.Regions[rg].Nearest(c.Center()))
		}
	}
	LegalizeMacros(d)
	res, err := LegalizeCells(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallbacks > 0 {
		t.Fatalf("%d fallback cells (capacity problem)", res.Fallbacks)
	}
	return d
}

func TestLegalizeEndToEnd(t *testing.T) {
	d := legalSmall(t, gen.Config{
		Name: "lg", Seed: 11, NumStdCells: 400, NumFixedMacros: 2,
		NumMovableMacros: 2, NumModules: 3, NumFences: 2, NumTerminals: 8,
		TargetUtil: 0.55,
	})
	if v := d.OverlapViolations(); v != 0 {
		t.Errorf("overlaps after legalization: %d", v)
	}
	if v := d.OutOfDie(); v != 0 {
		t.Errorf("cells outside die: %d", v)
	}
	if v := d.FenceViolations(); v != 0 {
		t.Errorf("fence violations: %d", v)
	}
	// Row alignment: every movable std cell bottom must sit on a row.
	rowH := d.RowHeight()
	for _, ci := range d.Movable() {
		c := &d.Cells[ci]
		if c.Kind != db.StdCell {
			continue
		}
		frac := math.Mod(c.Pos.Y-d.Die.Lo.Y, rowH)
		if frac > 1e-6 && rowH-frac > 1e-6 {
			t.Fatalf("cell %q not row aligned: y=%v", c.Name, c.Pos.Y)
		}
	}
}

func TestLegalizeMacrosAvoidOverlap(t *testing.T) {
	b := db.NewBuilder("m", geom.NewRect(0, 0, 100, 100))
	fixed := b.AddMacro("fx", 30, 30, true)
	m1 := b.AddMacro("m1", 20, 20, false)
	m2 := b.AddMacro("m2", 20, 20, false)
	b.MakeRows(10, 1)
	d := b.MustDesign()
	d.Cells[fixed].Pos = geom.Point{X: 40, Y: 40}
	// Both movable macros on top of the fixed one.
	d.Cells[m1].Pos = geom.Point{X: 45, Y: 45}
	d.Cells[m2].Pos = geom.Point{X: 45, Y: 45}
	disp := LegalizeMacros(d)
	if disp <= 0 {
		t.Error("expected nonzero displacement")
	}
	if v := d.OverlapViolations(); v != 0 {
		t.Errorf("macro overlaps remain: %d", v)
	}
	if !d.Cells[m1].Fixed || !d.Cells[m2].Fixed {
		t.Error("legalized macros must be fixed")
	}
	// Row/site alignment.
	for _, mi := range []int{m1, m2} {
		p := d.Cells[mi].Pos
		if math.Mod(p.Y, 10) > 1e-9 || math.Mod(p.X, 1) > 1e-9 {
			t.Errorf("macro %d not lattice aligned: %v", mi, p)
		}
	}
}

func TestBuildSegmentsAroundObstacle(t *testing.T) {
	b := db.NewBuilder("s", geom.NewRect(0, 0, 100, 30))
	b.AddMacro("fx", 20, 30, true)
	b.MakeRows(10, 1)
	d := b.MustDesign()
	d.Cells[0].Pos = geom.Point{X: 40, Y: 0}
	segs := buildSegments(d, 1)
	// 3 rows × 2 segments each.
	if len(segs) != 6 {
		t.Fatalf("expected 6 segments, got %d", len(segs))
	}
	for _, s := range segs {
		if s.x1 < 0 || s.x2 > 100 {
			t.Errorf("segment out of row: [%v, %v]", s.x1, s.x2)
		}
		if s.x2 > 40 && s.x1 < 60 {
			t.Errorf("segment overlaps obstacle: [%v, %v]", s.x1, s.x2)
		}
	}
}

func TestBuildSegmentsFenceDomains(t *testing.T) {
	b := db.NewBuilder("f", geom.NewRect(0, 0, 100, 10))
	b.AddRegion("fence", geom.NewRect(20, 0, 50, 10))
	b.AddStdCell("a", 2, 2)
	b.MakeRows(10, 1)
	d := b.MustDesign()
	segs := buildSegments(d, 1)
	if len(segs) != 3 {
		t.Fatalf("expected 3 segments (out, fence, out), got %d", len(segs))
	}
	domains := map[int]float64{}
	for _, s := range segs {
		domains[s.domain] += s.length()
	}
	if math.Abs(domains[0]-30) > 1e-9 {
		t.Errorf("fence domain length = %v, want 30", domains[0])
	}
	if math.Abs(domains[db.NoRegion]-70) > 1e-9 {
		t.Errorf("outside domain length = %v, want 70", domains[db.NoRegion])
	}
}

func TestFencedCellStaysInFence(t *testing.T) {
	b := db.NewBuilder("fc", geom.NewRect(0, 0, 100, 20))
	rg := b.AddRegion("fence", geom.NewRect(60, 0, 90, 20))
	ci := b.AddStdCell("a", 4, 10)
	co := b.AddStdCell("b", 4, 10)
	b.MakeRows(10, 1)
	d := b.MustDesign()
	d.Cells[ci].Region = rg
	// Fenced cell wishes far outside; outsider wishes inside the fence.
	d.Cells[ci].Pos = geom.Point{X: 10, Y: 0}
	d.Cells[co].Pos = geom.Point{X: 70, Y: 0}
	if _, err := LegalizeCells(d); err != nil {
		t.Fatal(err)
	}
	if d.FenceViolations() != 0 {
		t.Errorf("fenced cell at %v escaped fence", d.Cells[ci].Pos)
	}
	// The outsider must have been pushed out of the fence.
	or := d.Cells[co].Rect()
	if d.Regions[rg].Contains(or) {
		t.Errorf("outsider cell legalized inside exclusive fence: %v", or)
	}
}

func TestLegalizeCellsRequiresRows(t *testing.T) {
	b := db.NewBuilder("nr", geom.NewRect(0, 0, 10, 10))
	b.AddStdCell("a", 1, 1)
	d := b.MustDesign()
	if _, err := LegalizeCells(d); err == nil {
		t.Error("expected error without rows")
	}
}

func TestDisplacementReported(t *testing.T) {
	b := db.NewBuilder("disp", geom.NewRect(0, 0, 100, 10))
	a := b.AddStdCell("a", 4, 10)
	b.MakeRows(10, 1)
	d := b.MustDesign()
	d.Cells[a].Pos = geom.Point{X: 13.7, Y: 3}
	res, err := LegalizeCells(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 1 || res.TotalDisp <= 0 || res.MaxDisp != res.TotalDisp {
		t.Errorf("displacement stats wrong: %+v", res)
	}
}

func TestAlternateRowOrientations(t *testing.T) {
	d := legalSmall(t, gen.Config{
		Name: "or", Seed: 51, NumStdCells: 200, NumFixedMacros: 1,
		NumModules: 2, NumFences: 1, NumTerminals: 4, TargetUtil: 0.5,
	})
	flipped := AlternateRowOrientations(d)
	if flipped == 0 {
		t.Fatal("no cells flipped")
	}
	// Legality preserved.
	if d.OverlapViolations() != 0 || d.OutOfDie() != 0 || d.FenceViolations() != 0 {
		t.Error("row flipping broke legality")
	}
	// Every movable std cell's orientation must match its row parity.
	rowH := d.RowHeight()
	for _, ci := range d.Movable() {
		c := &d.Cells[ci]
		if c.Kind != db.StdCell {
			continue
		}
		row := int(math.Round((c.Pos.Y - d.Rows[0].Y) / rowH))
		want := db.N
		if row%2 == 1 {
			want = db.FS
		}
		if c.Orient != want {
			t.Fatalf("cell %q in row %d has orientation %v", c.Name, row, c.Orient)
		}
	}
	// Idempotent.
	if again := AlternateRowOrientations(d); again != 0 {
		t.Errorf("second pass flipped %d cells", again)
	}
}

func TestAlternateRowOrientationsNoRows(t *testing.T) {
	b := db.NewBuilder("nr", geom.NewRect(0, 0, 10, 10))
	b.AddStdCell("a", 1, 1)
	d := b.MustDesign()
	if got := AlternateRowOrientations(d); got != 0 {
		t.Errorf("flipped %d without rows", got)
	}
}
