package legal

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/db"
	"repro/internal/geom"
	"repro/internal/par"
)

// rowSeg is one obstacle-free interval of a placement row, tagged with the
// fence domain that may use it (db.NoRegion = outside every fence).
type rowSeg struct {
	row    int
	y      float64
	x1, x2 float64
	domain int

	cells    []int // design cell indices, in insertion (sorted-x) order
	clusters []clus
	used     float64
}

// clus is one Abacus cluster: a maximal run of abutting cells with a
// common optimal position.
type clus struct {
	first   int // index into rowSeg.cells of the cluster's first cell
	e, q, w float64
	x       float64
}

func (s *rowSeg) length() float64 { return s.x2 - s.x1 }

// clampClusterX returns the legal position of a cluster of width w.
func (s *rowSeg) clampClusterX(x, w float64) float64 {
	if x < s.x1 {
		x = s.x1
	}
	if x > s.x2-w {
		x = s.x2 - w
	}
	return x
}

// trial computes the displacement cost of appending a cell with the given
// desired position and width, without mutating the segment. The second
// return is the x the cell would land at.
func (s *rowSeg) trial(desiredX, desiredY, width float64) (cost, landX float64) {
	if width > s.length()-s.used {
		return math.Inf(1), 0
	}
	e, q, w := 1.0, desiredX, width
	x := s.clampClusterX(q/e, w)
	for i := len(s.clusters) - 1; i >= 0; i-- {
		c := &s.clusters[i]
		if c.x+c.w <= x {
			break
		}
		q = c.q + q - e*c.w
		e += c.e
		w += c.w
		x = s.clampClusterX(q/e, w)
	}
	landX = x + w - width
	return math.Abs(landX-desiredX) + math.Abs(s.y-desiredY), landX
}

// insert appends the cell, merging clusters per the Abacus recurrence.
func (s *rowSeg) insert(cell int, desiredX, width float64) {
	pos := len(s.cells)
	s.cells = append(s.cells, cell)
	s.used += width
	nc := clus{first: pos, e: 1, q: desiredX, w: width}
	nc.x = s.clampClusterX(nc.q/nc.e, nc.w)
	for len(s.clusters) > 0 {
		last := &s.clusters[len(s.clusters)-1]
		if last.x+last.w <= nc.x {
			break
		}
		nc.q = last.q + nc.q - nc.e*last.w
		nc.e += last.e
		nc.w += last.w
		nc.first = last.first
		nc.x = s.clampClusterX(nc.q/nc.e, nc.w)
		s.clusters = s.clusters[:len(s.clusters)-1]
	}
	s.clusters = append(s.clusters, nc)
}

// finalize writes the legalized positions into the design, snapping
// cluster starts to the site grid.
func (s *rowSeg) finalize(d *db.Design, siteW float64) {
	for ci := range s.clusters {
		c := &s.clusters[ci]
		end := len(s.cells)
		if ci+1 < len(s.clusters) {
			end = s.clusters[ci+1].first
		}
		x := c.x
		// Snap left, then right if that violates the segment start.
		sx := math.Floor((x-s.x1)/siteW)*siteW + s.x1
		if sx >= s.x1 && c.w <= s.x2-sx {
			x = sx
		}
		for k := c.first; k < end; k++ {
			cell := &d.Cells[s.cells[k]]
			cell.Pos = geom.Point{X: x, Y: s.y}
			x += cell.W()
		}
	}
}

// CellResult reports standard-cell legalization quality.
type CellResult struct {
	// Placed is the number of cells legalized through row segments.
	Placed int
	// Fallbacks is the number of cells that found no feasible segment and
	// were clamped in place (they may overlap; callers should treat any
	// nonzero value as a capacity problem).
	Fallbacks int
	// TotalDisp and MaxDisp are Manhattan displacement stats.
	TotalDisp float64
	MaxDisp   float64
	// Workers is the resolved worker count used for the parallel phases.
	Workers int
}

// Options tunes standard-cell legalization.
type Options struct {
	// Workers parallelizes the per-row segment build and the per-segment
	// finalize, resolved through par.Workers (≤ 0 selects the automatic
	// default). The Tetris/Abacus dispatch itself is inherently serial
	// (each insertion depends on the previous cluster state), so results
	// are byte-identical for every worker count.
	Workers int
}

// LegalizeCells legalizes all movable standard cells onto row segments
// using Tetris dispatch ordered by x with Abacus row packing, honoring
// fence domains. Macros must already be legal (and fixed).
func LegalizeCells(d *db.Design) (CellResult, error) {
	return LegalizeCellsOpt(d, Options{})
}

// LegalizeCellsOpt is LegalizeCells with explicit options.
func LegalizeCellsOpt(d *db.Design, opt Options) (CellResult, error) {
	if len(d.Rows) == 0 {
		return CellResult{}, fmt.Errorf("legal: design %q has no rows", d.Name)
	}
	workers := par.Workers(opt.Workers)
	segs := buildSegments(d, workers)
	// Per-row segment index for candidate lookup.
	rowSegs := make([][]*rowSeg, len(d.Rows))
	for i := range segs {
		s := segs[i]
		rowSegs[s.row] = append(rowSegs[s.row], s)
	}

	var cells []int
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if c.Movable() && c.Kind == db.StdCell {
			cells = append(cells, ci)
		}
	}
	// Tetris order: by desired x, ties by y then index, so per-segment
	// arrivals are sorted and Abacus insertion is append-only.
	sort.Slice(cells, func(a, b int) bool {
		ca, cb := &d.Cells[cells[a]], &d.Cells[cells[b]]
		if ca.Pos.X != cb.Pos.X {
			return ca.Pos.X < cb.Pos.X
		}
		if ca.Pos.Y != cb.Pos.Y {
			return ca.Pos.Y < cb.Pos.Y
		}
		return cells[a] < cells[b]
	})

	rowH := d.RowHeight()
	res := CellResult{Workers: workers}
	// Parallel slices (not a map) so the displacement reduction below sums
	// in deterministic placement order.
	wishCell := make([]int, 0, len(cells))
	wishPos := make([]geom.Point, 0, len(cells))
	for _, ci := range cells {
		c := &d.Cells[ci]
		domain := d.CellRegion(ci)
		want := c.Pos
		bestCost := math.Inf(1)
		var bestSeg *rowSeg
		// Expand the row search window until a feasible segment appears
		// and one further ring confirms it is locally optimal.
		baseRow := int((want.Y - d.Die.Lo.Y) / rowH)
		maxR := len(d.Rows)
		foundAt := -1
		for radius := 0; radius < maxR; radius++ {
			if foundAt >= 0 && radius > foundAt+2 {
				break
			}
			for _, row := range []int{baseRow - radius, baseRow + radius} {
				if row < 0 || row >= len(d.Rows) {
					continue
				}
				if radius == 0 && row != baseRow {
					continue
				}
				for _, s := range rowSegs[row] {
					if s.domain != domain {
						continue
					}
					cost, _ := s.trial(want.X, want.Y, c.W())
					if cost < bestCost {
						bestCost = cost
						bestSeg = s
						if foundAt < 0 {
							foundAt = radius
						}
					}
				}
				if bestSeg != nil && foundAt < 0 {
					foundAt = radius
				}
			}
		}
		if bestSeg == nil {
			res.Fallbacks++
			c.Pos = d.Die.ClampRect(c.Rect()).Lo
			continue
		}
		bestSeg.insert(ci, want.X, c.W())
		wishCell = append(wishCell, ci)
		wishPos = append(wishPos, want)
		res.Placed++
	}
	siteW := d.Rows[0].SiteWidth
	if siteW <= 0 {
		siteW = 1
	}
	// Each segment owns a disjoint set of cells, so finalize is
	// embarrassingly parallel and writes deterministic positions.
	par.For(len(segs), workers, func(i int) {
		segs[i].finalize(d, siteW)
	})
	for i, ci := range wishCell {
		c := &d.Cells[ci]
		want := wishPos[i]
		disp := math.Abs(c.Pos.X-want.X) + math.Abs(c.Pos.Y-want.Y)
		res.TotalDisp += disp
		if disp > res.MaxDisp {
			res.MaxDisp = disp
		}
	}
	return res, nil
}

// buildSegments splits every row into obstacle-free intervals and assigns
// fence domains. Fence rectangles are assumed row-aligned (the generator
// and reader snap them); a row piece strictly inside a fence rect belongs
// to that fence's domain, everything else to NoRegion.
//
// The blocking rects are gathered once (not per row), and the per-row
// sweep fans out over the workers: rows are independent and each writes
// only its own slot, so the concatenated result is identical for any
// worker count.
func buildSegments(d *db.Design, workers int) []*rowSeg {
	// Gather blocking rects from fixed, space-occupying cells, once.
	var blockRects []geom.Rect
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if c.Movable() || c.Kind == db.Terminal || c.Area() == 0 {
			continue
		}
		blockRects = append(blockRects, c.Rect())
	}
	perRow := make([][]*rowSeg, len(d.Rows))
	par.For(len(d.Rows), workers, func(ri int) {
		perRow[ri] = buildRowSegments(d, ri, blockRects)
	})
	var segs []*rowSeg
	for _, rs := range perRow {
		segs = append(segs, rs...)
	}
	return segs
}

// buildRowSegments computes one row's obstacle-free, fence-split segments.
func buildRowSegments(d *db.Design, ri int, blockRects []geom.Rect) []*rowSeg {
	var segs []*rowSeg
	row := &d.Rows[ri]
	rowRect := row.Rect()
	// Gather blocking intervals overlapping this row's band.
	type iv struct{ a, b float64 }
	var blocks []iv
	for _, r := range blockRects {
		if r.Lo.Y < rowRect.Hi.Y && r.Hi.Y > rowRect.Lo.Y {
			blocks = append(blocks, iv{r.Lo.X, r.Hi.X})
		}
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].a < blocks[j].a })
	// Sweep to produce free intervals.
	var free []iv
	cursor := rowRect.Lo.X
	for _, b := range blocks {
		if b.a > cursor {
			free = append(free, iv{cursor, math.Min(b.a, rowRect.Hi.X)})
		}
		if b.b > cursor {
			cursor = b.b
		}
		if cursor >= rowRect.Hi.X {
			break
		}
	}
	if cursor < rowRect.Hi.X {
		free = append(free, iv{cursor, rowRect.Hi.X})
	}
	// Split each free interval at fence boundaries.
	for _, f := range free {
		cuts := []float64{f.a, f.b}
		for gi := range d.Regions {
			for _, fr := range d.Regions[gi].Rects {
				if fr.Lo.Y <= rowRect.Lo.Y && fr.Hi.Y >= rowRect.Hi.Y {
					if fr.Lo.X > f.a && fr.Lo.X < f.b {
						cuts = append(cuts, fr.Lo.X)
					}
					if fr.Hi.X > f.a && fr.Hi.X < f.b {
						cuts = append(cuts, fr.Hi.X)
					}
				}
			}
		}
		sort.Float64s(cuts)
		for i := 0; i+1 < len(cuts); i++ {
			a, b := cuts[i], cuts[i+1]
			if b-a < 1e-9 {
				continue
			}
			domain := db.NoRegion
			mid := geom.Point{X: (a + b) / 2, Y: (rowRect.Lo.Y + rowRect.Hi.Y) / 2}
			for gi := range d.Regions {
				for _, fr := range d.Regions[gi].Rects {
					if fr.Lo.Y <= rowRect.Lo.Y && fr.Hi.Y >= rowRect.Hi.Y && fr.Contains(mid) {
						domain = gi
					}
				}
			}
			segs = append(segs, &rowSeg{row: ri, y: row.Y, x1: a, x2: b, domain: domain})
		}
	}
	return segs
}
