// Package legal turns a global placement into a legal one: movable macros
// are legalized first (greedy displacement-minimizing search over a
// candidate lattice, avoiding fixed macros and each other), then standard
// cells are packed into row segments by a Tetris-style dispatch refined
// with Abacus row dynamic programming. Both stages honor fence regions:
// a fenced cell only considers row segments inside its fence, and cells
// without a fence only use segments outside every fence (fences are
// exclusive, matching hierarchical-design semantics).
package legal

import (
	"math"
	"sort"

	"repro/internal/db"
	"repro/internal/geom"
)

// LegalizeMacros places every movable macro on the row/site lattice
// without overlapping fixed objects or previously legalized macros,
// minimizing displacement greedily (largest macros first). Legalized
// macros are marked Fixed so later stages treat them as blockages.
// It returns the total displacement.
func LegalizeMacros(d *db.Design) float64 {
	rowH := d.RowHeight()
	if rowH <= 0 {
		rowH = 1
	}
	siteW := 1.0
	if len(d.Rows) > 0 && d.Rows[0].SiteWidth > 0 {
		siteW = d.Rows[0].SiteWidth
	}

	// Obstacles: fixed space-occupying cells.
	var obstacles []geom.Rect
	for i := range d.Cells {
		c := &d.Cells[i]
		if !c.Movable() && c.Kind != db.Terminal && c.Area() > 0 {
			obstacles = append(obstacles, c.Rect())
		}
	}

	macros := d.MovableMacros()
	sort.Slice(macros, func(i, j int) bool {
		ai, aj := d.Cells[macros[i]].Area(), d.Cells[macros[j]].Area()
		if ai != aj {
			return ai > aj
		}
		return macros[i] < macros[j]
	})

	var totalDisp float64
	for _, mi := range macros {
		c := &d.Cells[mi]
		want := c.Pos
		// Fence regions the macro does not belong to are exclusion zones:
		// parking a macro inside one would silently destroy the fence's
		// standard-cell capacity.
		forbidden := obstacles
		if len(d.Regions) > 0 {
			own := d.CellRegion(mi)
			forbidden = append([]geom.Rect(nil), obstacles...)
			for rg := range d.Regions {
				if rg == own {
					continue
				}
				forbidden = append(forbidden, d.Regions[rg].Rects...)
			}
		}
		pos, ok := findMacroSpot(d, c, forbidden, rowH, siteW)
		if !ok && len(forbidden) != len(obstacles) {
			// No spot exists outside foreign fences; tolerate a fence
			// overlap rather than a physical one.
			pos, ok = findMacroSpot(d, c, obstacles, rowH, siteW)
		}
		if !ok {
			// Fall back: clamp into the die even if overlapping; the
			// overlap will surface in quality metrics rather than
			// silently corrupting the database.
			pos = d.Die.ClampRect(c.Rect()).Lo
		}
		c.Pos = pos
		c.Fixed = true
		obstacles = append(obstacles, c.Rect())
		totalDisp += math.Abs(pos.X-want.X) + math.Abs(pos.Y-want.Y)
	}
	return totalDisp
}

// findMacroSpot searches a spiral of lattice-aligned candidate positions
// around the macro's desired location for the nearest overlap-free spot.
func findMacroSpot(d *db.Design, c *db.Cell, obstacles []geom.Rect, rowH, siteW float64) (geom.Point, bool) {
	w, h := c.W(), c.H()
	die := d.Die
	// Desired lattice position, clamped so the macro fits.
	clampX := func(x float64) float64 {
		x = math.Round((x-die.Lo.X)/siteW)*siteW + die.Lo.X
		return math.Max(die.Lo.X, math.Min(x, die.Hi.X-w))
	}
	clampY := func(y float64) float64 {
		y = math.Round((y-die.Lo.Y)/rowH)*rowH + die.Lo.Y
		return math.Max(die.Lo.Y, math.Min(y, die.Hi.Y-h))
	}
	fits := func(p geom.Point) bool {
		r := geom.Rect{Lo: p, Hi: geom.Point{X: p.X + w, Y: p.Y + h}}
		if !die.ContainsRect(r) {
			return false
		}
		for _, o := range obstacles {
			if o.Overlaps(r) {
				return false
			}
		}
		return true
	}
	cx, cy := clampX(c.Pos.X), clampY(c.Pos.Y)
	if fits(geom.Point{X: cx, Y: cy}) {
		return geom.Point{X: cx, Y: cy}, true
	}
	// Spiral search over ring offsets in lattice steps; step sizes grow
	// with the macro so the search covers the die in bounded work.
	stepX := math.Max(siteW, w/4)
	stepY := math.Max(rowH, h/4)
	maxRing := int(math.Ceil(math.Max(die.W()/stepX, die.H()/stepY)))
	for ring := 1; ring <= maxRing; ring++ {
		bestD := math.Inf(1)
		var best geom.Point
		found := false
		for _, off := range ringOffsets(ring) {
			p := geom.Point{
				X: clampX(c.Pos.X + float64(off[0])*stepX),
				Y: clampY(c.Pos.Y + float64(off[1])*stepY),
			}
			if !fits(p) {
				continue
			}
			dd := math.Abs(p.X-c.Pos.X) + math.Abs(p.Y-c.Pos.Y)
			if dd < bestD {
				bestD, best, found = dd, p, true
			}
		}
		if found {
			return best, true
		}
	}
	return geom.Point{}, false
}

// ringOffsets enumerates the lattice offsets on the square ring of radius r.
func ringOffsets(r int) [][2]int {
	var out [][2]int
	for dx := -r; dx <= r; dx++ {
		out = append(out, [2]int{dx, -r}, [2]int{dx, r})
	}
	for dy := -r + 1; dy < r; dy++ {
		out = append(out, [2]int{-r, dy}, [2]int{r, dy})
	}
	return out
}
