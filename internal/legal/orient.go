package legal

import (
	"math"

	"repro/internal/db"
)

// AlternateRowOrientations flips standard cells in every other row upside
// down (orientation FS), the standard-cell-library convention that lets
// neighbouring rows share power rails. Pin offsets transform with the
// orientation, so wirelength changes slightly; footprints do not change,
// so legality is preserved. Rows are identified by the cell's current y
// position; cells not aligned to a row are left alone. It returns the
// number of cells flipped.
//
// The pass is an opt-in post-legalization step (real flows require it;
// the contest evaluation ignores orientation), so the core placer does
// not call it by default.
func AlternateRowOrientations(d *db.Design) int {
	rowH := d.RowHeight()
	if rowH <= 0 || len(d.Rows) == 0 {
		return 0
	}
	y0 := d.Rows[0].Y
	flipped := 0
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if !c.Movable() || c.Kind != db.StdCell {
			continue
		}
		idx := (c.Pos.Y - y0) / rowH
		ridx := math.Round(idx)
		if math.Abs(idx-ridx) > 1e-6 {
			continue // off-row cell (should not happen post-legalization)
		}
		want := db.N
		if int(ridx)%2 == 1 {
			want = db.FS
		}
		if c.Orient != want {
			c.Orient = want
			flipped++
		}
	}
	return flipped
}
