package atomicfile

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")

	if err := WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("read back %q, %v", got, err)
	}

	if err := WriteFile(path, []byte("v2 longer content"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2 longer content" {
		t.Fatalf("after replace: %q", got)
	}
}

func TestWriteFileLeavesNoTempDroppings(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFile(filepath.Join(dir, "a"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
	if len(ents) != 1 {
		t.Errorf("dir has %d entries, want 1", len(ents))
	}
}

func TestWriteFilePermissions(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("unix permissions")
	}
	path := filepath.Join(t.TempDir(), "locked")
	if err := WriteFile(path, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o600 {
		t.Errorf("perm = %o, want 600", fi.Mode().Perm())
	}
}

func TestWriteFileFailurePreservesOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "missing-parent", "out")
	if err := WriteFile(path, []byte("x"), 0o644); err == nil {
		t.Fatal("expected error for missing parent directory")
	}
}
