// Package atomicfile writes files atomically: data goes to a temporary
// file in the destination directory, is fsynced, and is then renamed over
// the final path. Readers therefore observe either the previous complete
// file or the new complete file — never a torn write. The checkpoint
// codec (internal/snap), the job journal (internal/serve) and the run
// report writer (internal/obs) all persist through this package.
package atomicfile

import (
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. The temporary file is
// created in path's directory so the final rename never crosses a
// filesystem boundary. On any error the temporary file is removed and
// the previous contents of path are left untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
