// Package wl implements the wirelength models used by analytical global
// placement: the exact half-perimeter wirelength (HPWL), the classical
// log-sum-exp (LSE) smooth approximation, and the weighted-average (WA)
// model this paper family introduced. Both smooth models come with
// analytic gradients and a max-shift scheme that keeps the exponentials
// numerically stable for any coordinate magnitude.
//
// The models operate on a lightweight view of the netlist: movable objects
// are identified by index into flat coordinate arrays (their centers), and
// each net pin is either an offset from a movable object or an absolute
// fixed location. The global placer lowers the db.Design (or a clustered
// version of it) into this view once per level and then evaluates
// gradients thousands of times without touching the database.
//
// Model bracketing: for every net, WA ≤ HPWL ≤ LSE, and both smooth models
// converge to HPWL as the smoothing parameter γ → 0. The property tests
// pin these inequalities down; the WA model's tighter error bound is the
// theoretical selling point reproduced by experiment T3.
package wl

import (
	"math"
)

// PinRef locates one pin of a net. For movable pins, Obj is the index of
// the owning object and Off* the pin offset from the object's center. For
// fixed pins, Obj is Fixed and Off* hold the absolute pin position.
type PinRef struct {
	Obj        int
	OffX, OffY float64
}

// Fixed marks a PinRef that does not move with any object.
const Fixed = -1

// Net is one hyperedge over the flat object view.
type Net struct {
	Weight float64
	Pins   []PinRef
}

// Netlist is the flattened connectivity a Model evaluates.
type Netlist struct {
	Nets []Net
	// NumObjs is the length of the coordinate arrays the nets refer to.
	NumObjs int
}

// Model is a differentiable wirelength approximation. Eval returns the
// total weighted wirelength and adds ∂WL/∂x and ∂WL/∂y into gx and gy
// (callers zero them first when they want a pure wirelength gradient).
type Model interface {
	Eval(nl *Netlist, x, y []float64, gx, gy []float64) float64
	Name() string
}

// pinX returns the x coordinate of pin p given object positions.
func pinX(p PinRef, x []float64) float64 {
	if p.Obj == Fixed {
		return p.OffX
	}
	return x[p.Obj] + p.OffX
}

// pinY returns the y coordinate of pin p given object positions.
func pinY(p PinRef, y []float64) float64 {
	if p.Obj == Fixed {
		return p.OffY
	}
	return y[p.Obj] + p.OffY
}

// HPWL returns the exact weighted half-perimeter wirelength of the view.
func HPWL(nl *Netlist, x, y []float64) float64 {
	var total float64
	for i := range nl.Nets {
		net := &nl.Nets[i]
		if len(net.Pins) < 2 {
			continue
		}
		w := net.Weight
		if w == 0 {
			w = 1
		}
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for _, p := range net.Pins {
			px, py := pinX(p, x), pinY(p, y)
			minX = math.Min(minX, px)
			maxX = math.Max(maxX, px)
			minY = math.Min(minY, py)
			maxY = math.Max(maxY, py)
		}
		total += w * ((maxX - minX) + (maxY - minY))
	}
	return total
}

// NetHPWL returns the exact half-perimeter of a single net.
func NetHPWL(net *Net, x, y []float64) float64 {
	if len(net.Pins) < 2 {
		return 0
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range net.Pins {
		px, py := pinX(p, x), pinY(p, y)
		minX = math.Min(minX, px)
		maxX = math.Max(maxX, px)
		minY = math.Min(minY, py)
		maxY = math.Max(maxY, py)
	}
	return (maxX - minX) + (maxY - minY)
}

// WA is the weighted-average wirelength model with smoothing parameter
// Gamma. Smaller Gamma tracks HPWL more closely but yields stiffer
// gradients; global placement anneals Gamma from coarse to fine.
type WA struct {
	Gamma float64
}

func (WA) Name() string { return "WA" }

// Eval implements Model. Per net and axis it computes
//
//	WL = Σ xᵢ·e^{xᵢ/γ} / Σ e^{xᵢ/γ} − Σ xᵢ·e^{−xᵢ/γ} / Σ e^{−xᵢ/γ}
//
// with all exponentials shifted by the net max/min so their arguments are
// ≤ 0 (the max-shift stabilization; the value is mathematically unchanged).
func (m WA) Eval(nl *Netlist, x, y []float64, gx, gy []float64) float64 {
	g := m.Gamma
	var total float64
	for i := range nl.Nets {
		net := &nl.Nets[i]
		if len(net.Pins) < 2 {
			continue
		}
		w := net.Weight
		if w == 0 {
			w = 1
		}
		total += w * waAxis(net, x, gx, g, w, pinX)
		total += w * waAxis(net, y, gy, g, w, pinY)
	}
	return total
}

// waAxis evaluates the WA model on one axis and accumulates w·gradient.
// The returned value is unweighted; the caller applies the net weight.
// Exponentials are computed once per pin and cached in stack buffers for
// typical net degrees (the gradient pass reuses them).
func waAxis(net *Net, coord []float64, grad []float64, gamma, w float64, at func(PinRef, []float64) float64) float64 {
	deg := len(net.Pins)
	var bufV, bufA, bufB [32]float64
	vs, as, bs := bufV[:0], bufA[:0], bufB[:0]
	if deg > len(bufV) {
		vs = make([]float64, 0, deg)
		as = make([]float64, 0, deg)
		bs = make([]float64, 0, deg)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range net.Pins {
		v := at(p, coord)
		vs = append(vs, v)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sPos, nPos, sNeg, nNeg float64
	for _, v := range vs {
		a := math.Exp((v - hi) / gamma)
		b := math.Exp((lo - v) / gamma)
		as = append(as, a)
		bs = append(bs, b)
		sPos += a
		nPos += v * a
		sNeg += b
		nNeg += v * b
	}
	maxTerm := nPos / sPos
	minTerm := nNeg / sNeg
	if grad != nil {
		for i, p := range net.Pins {
			if p.Obj == Fixed {
				continue
			}
			v := vs[i]
			dMax := as[i] / sPos * (1 + (v-maxTerm)/gamma)
			dMin := bs[i] / sNeg * (1 - (v-minTerm)/gamma)
			grad[p.Obj] += w * (dMax - dMin)
		}
	}
	return maxTerm - minTerm
}

// LSE is the log-sum-exp wirelength model with smoothing parameter Gamma:
//
//	WL = γ·ln Σ e^{xᵢ/γ} + γ·ln Σ e^{−xᵢ/γ}
//
// also max-shift stabilized. It upper-bounds HPWL by at most γ·ln(degree)
// per axis.
type LSE struct {
	Gamma float64
}

func (LSE) Name() string { return "LSE" }

// Eval implements Model.
func (m LSE) Eval(nl *Netlist, x, y []float64, gx, gy []float64) float64 {
	g := m.Gamma
	var total float64
	for i := range nl.Nets {
		net := &nl.Nets[i]
		if len(net.Pins) < 2 {
			continue
		}
		w := net.Weight
		if w == 0 {
			w = 1
		}
		total += w * lseAxis(net, x, gx, g, w, pinX)
		total += w * lseAxis(net, y, gy, g, w, pinY)
	}
	return total
}

func lseAxis(net *Net, coord []float64, grad []float64, gamma, w float64, at func(PinRef, []float64) float64) float64 {
	deg := len(net.Pins)
	var bufA, bufB [32]float64
	as, bs := bufA[:0], bufB[:0]
	if deg > len(bufA) {
		as = make([]float64, 0, deg)
		bs = make([]float64, 0, deg)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range net.Pins {
		v := at(p, coord)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sPos, sNeg float64
	for _, p := range net.Pins {
		v := at(p, coord)
		a := math.Exp((v - hi) / gamma)
		b := math.Exp((lo - v) / gamma)
		as = append(as, a)
		bs = append(bs, b)
		sPos += a
		sNeg += b
	}
	if grad != nil {
		for i, p := range net.Pins {
			if p.Obj == Fixed {
				continue
			}
			grad[p.Obj] += w * (as[i]/sPos - bs[i]/sNeg)
		}
	}
	// ln Σ e^{(v-hi)/γ} = ln Σ e^{v/γ} − hi/γ, so add the shifts back.
	return gamma*math.Log(sPos) + hi + (gamma*math.Log(sNeg) - lo)
}
