package wl_test

import (
	"fmt"

	"repro/internal/wl"
)

func ExampleWA() {
	// One two-pin net between movable objects 0 and 1, plus a fixed pad.
	nl := &wl.Netlist{
		NumObjs: 2,
		Nets: []wl.Net{{
			Weight: 1,
			Pins: []wl.PinRef{
				{Obj: 0},
				{Obj: 1},
				{Obj: wl.Fixed, OffX: 0, OffY: 0},
			},
		}},
	}
	x := []float64{10, 30}
	y := []float64{0, 0}
	exact := wl.HPWL(nl, x, y)
	smooth := wl.WA{Gamma: 1}.Eval(nl, x, y, nil, nil)
	fmt.Printf("HPWL %.1f, WA underestimates: %v\n", exact, smooth <= exact)
	// Output:
	// HPWL 30.0, WA underestimates: true
}
