package wl

import (
	"sync"

	"repro/internal/par"
)

// Parallel wraps a Model and evaluates it with a worker pool: nets are
// partitioned across workers, each accumulating into a private gradient
// buffer, and the buffers are reduced in parallel slabs. Results are
// bit-for-bit independent of the worker count only up to floating-point
// reassociation; the reduction order is deterministic for a fixed worker
// count, which keeps placement runs reproducible.
type Parallel struct {
	Model   Model
	Workers int

	mu     sync.Mutex
	bufs   [][]float64 // per-worker [2n] gradient scratch
	shards []float64   // per-worker partial objective values
}

// NewParallel wraps model with the given worker count; ≤ 0 selects the
// shared automatic policy (par.Workers: REPRO_WORKERS env override, else
// GOMAXPROCS capped — wirelength evaluation saturates memory bandwidth
// before core count on typical hosts).
func NewParallel(model Model, workers int) *Parallel {
	return &Parallel{Model: model, Workers: par.Workers(workers)}
}

// Name implements Model.
func (p *Parallel) Name() string { return p.Model.Name() + "-parallel" }

// Eval implements Model.
func (p *Parallel) Eval(nl *Netlist, x, y []float64, gx, gy []float64) float64 {
	w := p.Workers
	if w == 1 || len(nl.Nets) < 4*w {
		return p.Model.Eval(nl, x, y, gx, gy)
	}
	n := nl.NumObjs
	p.mu.Lock()
	if len(p.bufs) < w || (len(p.bufs) > 0 && len(p.bufs[0]) < 2*n) {
		p.bufs = make([][]float64, w)
		for i := range p.bufs {
			p.bufs[i] = make([]float64, 2*n)
		}
		p.shards = make([]float64, w)
	}
	bufs := p.bufs[:w]
	shards := p.shards[:w]
	p.mu.Unlock()

	needGrad := gx != nil || gy != nil
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			lo := len(nl.Nets) * k / w
			hi := len(nl.Nets) * (k + 1) / w
			sub := Netlist{Nets: nl.Nets[lo:hi], NumObjs: n}
			var bgx, bgy []float64
			if needGrad {
				buf := bufs[k]
				for i := range buf {
					buf[i] = 0
				}
				bgx, bgy = buf[:n], buf[n:]
			}
			shards[k] = p.Model.Eval(&sub, x, y, bgx, bgy)
		}(k)
	}
	wg.Wait()
	var total float64
	for _, s := range shards {
		total += s
	}
	if needGrad {
		// Parallel reduction over index slabs: each goroutine owns a
		// disjoint range of object indices, so no write contention.
		var rg sync.WaitGroup
		for k := 0; k < w; k++ {
			rg.Add(1)
			go func(k int) {
				defer rg.Done()
				lo := n * k / w
				hi := n * (k + 1) / w
				for _, buf := range bufs {
					if gx != nil {
						for i := lo; i < hi; i++ {
							gx[i] += buf[i]
						}
					}
					if gy != nil {
						for i := lo; i < hi; i++ {
							gy[i] += buf[n+i]
						}
					}
				}
			}(k)
		}
		rg.Wait()
	}
	return total
}
