package wl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoPin builds a single two-pin net between objects 0 and 1.
func twoPin() *Netlist {
	return &Netlist{
		NumObjs: 2,
		Nets: []Net{{
			Weight: 1,
			Pins:   []PinRef{{Obj: 0}, {Obj: 1}},
		}},
	}
}

func TestHPWLTwoPin(t *testing.T) {
	nl := twoPin()
	x := []float64{0, 3}
	y := []float64{0, 4}
	if got := HPWL(nl, x, y); got != 7 {
		t.Errorf("HPWL = %v, want 7", got)
	}
}

func TestHPWLRespectsWeightAndOffsets(t *testing.T) {
	nl := &Netlist{
		NumObjs: 2,
		Nets: []Net{{
			Weight: 2,
			Pins:   []PinRef{{Obj: 0, OffX: 1, OffY: 0}, {Obj: 1, OffX: -1, OffY: 0}},
		}},
	}
	x := []float64{0, 10}
	y := []float64{0, 0}
	// Pin positions: 1 and 9 -> span 8, weight 2 -> 16.
	if got := HPWL(nl, x, y); got != 16 {
		t.Errorf("HPWL = %v, want 16", got)
	}
}

func TestHPWLFixedPins(t *testing.T) {
	nl := &Netlist{
		NumObjs: 1,
		Nets: []Net{{
			Weight: 1,
			Pins:   []PinRef{{Obj: 0}, {Obj: Fixed, OffX: 100, OffY: 50}},
		}},
	}
	x := []float64{10}
	y := []float64{20}
	if got := HPWL(nl, x, y); got != 90+30 {
		t.Errorf("HPWL = %v, want 120", got)
	}
}

func TestDegenerateNetsIgnored(t *testing.T) {
	nl := &Netlist{
		NumObjs: 1,
		Nets:    []Net{{Weight: 1, Pins: []PinRef{{Obj: 0}}}, {Weight: 1}},
	}
	x := []float64{5}
	y := []float64{5}
	if HPWL(nl, x, y) != 0 {
		t.Error("single-pin and empty nets must contribute 0")
	}
	for _, m := range []Model{WA{Gamma: 1}, LSE{Gamma: 1}} {
		if got := m.Eval(nl, x, y, nil, nil); got != 0 {
			t.Errorf("%s on degenerate nets = %v", m.Name(), got)
		}
	}
}

// randNetlist builds a random netlist over n objects for property tests.
func randNetlist(rng *rand.Rand, n, nets int) (*Netlist, []float64, []float64) {
	nl := &Netlist{NumObjs: n}
	for i := 0; i < nets; i++ {
		deg := 2 + rng.Intn(6)
		net := Net{Weight: 0.5 + rng.Float64()}
		for j := 0; j < deg; j++ {
			if rng.Float64() < 0.15 {
				net.Pins = append(net.Pins, PinRef{Obj: Fixed, OffX: rng.Float64() * 100, OffY: rng.Float64() * 100})
			} else {
				net.Pins = append(net.Pins, PinRef{
					Obj:  rng.Intn(n),
					OffX: rng.Float64()*4 - 2,
					OffY: rng.Float64()*4 - 2,
				})
			}
		}
		nl.Nets = append(nl.Nets, net)
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 100
		y[i] = rng.Float64() * 100
	}
	return nl, x, y
}

// Property: WA ≤ HPWL ≤ LSE for every random netlist.
func TestModelBracketing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nl, x, y := randNetlist(rng, 20, 30)
		h := HPWL(nl, x, y)
		wa := WA{Gamma: 2}.Eval(nl, x, y, nil, nil)
		lse := LSE{Gamma: 2}.Eval(nl, x, y, nil, nil)
		if wa > h+1e-6 {
			t.Fatalf("trial %d: WA %v > HPWL %v", trial, wa, h)
		}
		if lse < h-1e-6 {
			t.Fatalf("trial %d: LSE %v < HPWL %v", trial, lse, h)
		}
	}
}

// Property: both models converge to HPWL as gamma -> 0.
func TestGammaConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	nl, x, y := randNetlist(rng, 15, 20)
	h := HPWL(nl, x, y)
	for _, gamma := range []float64{8, 2, 0.5, 0.1} {
		wa := WA{Gamma: gamma}.Eval(nl, x, y, nil, nil)
		lse := LSE{Gamma: gamma}.Eval(nl, x, y, nil, nil)
		waErr := math.Abs(wa-h) / h
		lseErr := math.Abs(lse-h) / h
		if gamma <= 0.1 {
			if waErr > 0.01 {
				t.Errorf("WA at gamma=%v: rel err %v", gamma, waErr)
			}
			if lseErr > 0.01 {
				t.Errorf("LSE at gamma=%v: rel err %v", gamma, lseErr)
			}
		}
	}
	// Error must shrink monotonically with gamma for WA.
	prevErr := math.Inf(1)
	for _, gamma := range []float64{8, 4, 2, 1, 0.5} {
		wa := WA{Gamma: gamma}.Eval(nl, x, y, nil, nil)
		err := math.Abs(wa - h)
		if err > prevErr+1e-9 {
			t.Errorf("WA error grew when gamma shrank to %v", gamma)
		}
		prevErr = err
	}
}

// Property: the WA model is tighter than LSE (its approximation error is
// smaller) on random netlists — the paper's theoretical claim.
func TestWATighterThanLSE(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	waWins := 0
	trials := 40
	for trial := 0; trial < trials; trial++ {
		nl, x, y := randNetlist(rng, 20, 30)
		h := HPWL(nl, x, y)
		waErr := math.Abs(WA{Gamma: 4}.Eval(nl, x, y, nil, nil) - h)
		lseErr := math.Abs(LSE{Gamma: 4}.Eval(nl, x, y, nil, nil) - h)
		if waErr <= lseErr {
			waWins++
		}
	}
	if waWins < trials*3/4 {
		t.Errorf("WA tighter in only %d/%d trials", waWins, trials)
	}
}

// checkGradient compares the analytic gradient against central finite
// differences.
func checkGradient(t *testing.T, m Model, nl *Netlist, x, y []float64) {
	t.Helper()
	n := nl.NumObjs
	gx := make([]float64, n)
	gy := make([]float64, n)
	m.Eval(nl, x, y, gx, gy)
	const h = 1e-5
	for i := 0; i < n; i++ {
		for axis := 0; axis < 2; axis++ {
			coord := x
			grad := gx
			if axis == 1 {
				coord = y
				grad = gy
			}
			orig := coord[i]
			coord[i] = orig + h
			fp := m.Eval(nl, x, y, nil, nil)
			coord[i] = orig - h
			fm := m.Eval(nl, x, y, nil, nil)
			coord[i] = orig
			fd := (fp - fm) / (2 * h)
			if math.Abs(fd-grad[i]) > 1e-4*(1+math.Abs(fd)) {
				t.Errorf("%s grad mismatch obj %d axis %d: analytic %v fd %v", m.Name(), i, axis, grad[i], fd)
			}
		}
	}
}

func TestWAGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	nl, x, y := randNetlist(rng, 8, 12)
	checkGradient(t, WA{Gamma: 3}, nl, x, y)
}

func TestLSEGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	nl, x, y := randNetlist(rng, 8, 12)
	checkGradient(t, LSE{Gamma: 3}, nl, x, y)
}

// Numerical stability: huge coordinates must not produce NaN/Inf thanks to
// the max-shift scheme.
func TestNumericalStability(t *testing.T) {
	nl := twoPin()
	x := []float64{0, 1e7}
	y := []float64{-1e7, 1e7}
	for _, m := range []Model{WA{Gamma: 0.5}, LSE{Gamma: 0.5}} {
		gx := make([]float64, 2)
		gy := make([]float64, 2)
		v := m.Eval(nl, x, y, gx, gy)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s value not finite: %v", m.Name(), v)
		}
		for i := range gx {
			if math.IsNaN(gx[i]) || math.IsNaN(gy[i]) {
				t.Errorf("%s gradient not finite at obj %d", m.Name(), i)
			}
		}
	}
}

// Gradient direction: moving the right object of a two-pin net rightward
// increases wirelength, so its x gradient must be positive and the left
// object's negative.
func TestGradientDirection(t *testing.T) {
	nl := twoPin()
	x := []float64{0, 10}
	y := []float64{0, 0}
	for _, m := range []Model{WA{Gamma: 1}, LSE{Gamma: 1}} {
		gx := make([]float64, 2)
		gy := make([]float64, 2)
		m.Eval(nl, x, y, gx, gy)
		if gx[1] <= 0 || gx[0] >= 0 {
			t.Errorf("%s gradient signs wrong: %v", m.Name(), gx)
		}
	}
}

// Property: translation invariance — shifting every object by a constant
// leaves both models unchanged (fixed pins excluded).
func TestTranslationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	nl := &Netlist{NumObjs: 10}
	for i := 0; i < 15; i++ {
		deg := 2 + rng.Intn(4)
		net := Net{Weight: 1}
		for j := 0; j < deg; j++ {
			net.Pins = append(net.Pins, PinRef{Obj: rng.Intn(10)})
		}
		nl.Nets = append(nl.Nets, net)
	}
	x := make([]float64, 10)
	y := make([]float64, 10)
	for i := range x {
		x[i] = rng.Float64() * 50
		y[i] = rng.Float64() * 50
	}
	f := func(shift float64) bool {
		shift = math.Mod(shift, 1e4)
		if math.IsNaN(shift) {
			return true
		}
		xs := make([]float64, 10)
		ys := make([]float64, 10)
		for i := range x {
			xs[i] = x[i] + shift
			ys[i] = y[i] + shift
		}
		for _, m := range []Model{WA{Gamma: 2}, LSE{Gamma: 2}} {
			a := m.Eval(nl, x, y, nil, nil)
			b := m.Eval(nl, xs, ys, nil, nil)
			if math.Abs(a-b) > 1e-6*(1+math.Abs(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWAEval(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	nl, x, y := randNetlist(rng, 1000, 3000)
	gx := make([]float64, 1000)
	gy := make([]float64, 1000)
	m := WA{Gamma: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Eval(nl, x, y, gx, gy)
	}
}

func BenchmarkLSEEval(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	nl, x, y := randNetlist(rng, 1000, 3000)
	gx := make([]float64, 1000)
	gy := make([]float64, 1000)
	m := LSE{Gamma: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Eval(nl, x, y, gx, gy)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	nl, x, y := randNetlist(rng, 200, 600)
	for _, base := range []Model{WA{Gamma: 2}, LSE{Gamma: 2}} {
		gx1 := make([]float64, 200)
		gy1 := make([]float64, 200)
		v1 := base.Eval(nl, x, y, gx1, gy1)
		for _, workers := range []int{1, 2, 4, 7, 8} {
			par := NewParallel(base, workers)
			gx2 := make([]float64, 200)
			gy2 := make([]float64, 200)
			v2 := par.Eval(nl, x, y, gx2, gy2)
			if math.Abs(v1-v2) > 1e-9*(1+math.Abs(v1)) {
				t.Errorf("%s w=%d: value %v != %v", base.Name(), workers, v2, v1)
			}
			for i := range gx1 {
				if math.Abs(gx1[i]-gx2[i]) > 1e-9*(1+math.Abs(gx1[i])) ||
					math.Abs(gy1[i]-gy2[i]) > 1e-9*(1+math.Abs(gy1[i])) {
					t.Fatalf("%s w=%d: gradient differs at %d", base.Name(), workers, i)
				}
			}
		}
	}
}

func TestParallelSmallFallsBack(t *testing.T) {
	nl := twoPin()
	x := []float64{0, 3}
	y := []float64{0, 4}
	par := NewParallel(WA{Gamma: 1}, 8)
	serial := WA{Gamma: 1}.Eval(nl, x, y, nil, nil)
	if got := par.Eval(nl, x, y, nil, nil); got != serial {
		t.Errorf("small netlist path differs: %v vs %v", got, serial)
	}
	if par.Name() != "WA-parallel" {
		t.Errorf("Name = %q", par.Name())
	}
}

func BenchmarkWAParallelEval(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	nl, x, y := randNetlist(rng, 20000, 60000)
	gx := make([]float64, 20000)
	gy := make([]float64, 20000)
	m := NewParallel(WA{Gamma: 2}, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Eval(nl, x, y, gx, gy)
	}
}
