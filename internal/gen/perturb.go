package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/db"
	"repro/internal/geom"
)

// Perturbation describes a deterministic ECO-style netlist edit: remove a
// fraction of the movable standard cells, add a fraction of new ones wired
// into existing nets, and move a fraction of the surviving pins onto
// different nets. Fractions are relative to the movable standard-cell
// count (removal, addition) or their pin count (rewiring); the same seed
// always produces the same edited design.
type Perturbation struct {
	Seed       int64
	RemoveFrac float64
	AddFrac    float64
	RewireFrac float64
}

// Perturb returns an edited deep copy of d. The input design is never
// modified. Removed cells disappear from the cell, pin, module and
// routing tables (their nets keep the surviving pins, so nets can drop to
// degree 1 or 0 — exactly the degenerate shapes an incremental-placement
// differ must tolerate). Added cells are named eco_add_<k>, sized like a
// random surviving cell, wired to two random existing nets, and dropped
// at a random in-die position. Rewired pins move from their net to a
// different random net with their offsets intact.
func Perturb(d *db.Design, p Perturbation) *db.Design {
	rng := rand.New(rand.NewSource(p.Seed))
	out := d.Clone()
	out.InvalidateNameIndex()

	var movable []int
	for i := range out.Cells {
		c := &out.Cells[i]
		if c.Movable() && c.Kind == db.StdCell {
			movable = append(movable, i)
		}
	}

	nRemove := int(p.RemoveFrac*float64(len(movable)) + 0.5)
	if nRemove > len(movable) {
		nRemove = len(movable)
	}
	if nRemove > 0 {
		perm := rng.Perm(len(movable))
		removed := make(map[int]bool, nRemove)
		for _, pi := range perm[:nRemove] {
			removed[movable[pi]] = true
		}
		removeCells(out, removed)
		movable = movable[:0]
		for i := range out.Cells {
			c := &out.Cells[i]
			if c.Movable() && c.Kind == db.StdCell {
				movable = append(movable, i)
			}
		}
	}

	nAdd := int(p.AddFrac*float64(len(movable))+0.5) * boolInt(len(movable) > 0)
	for k := 0; k < nAdd; k++ {
		tmpl := &out.Cells[movable[rng.Intn(len(movable))]]
		ci := len(out.Cells)
		out.Cells = append(out.Cells, db.Cell{
			Name:   fmt.Sprintf("eco_add_%d", k),
			Kind:   db.StdCell,
			BaseW:  tmpl.BaseW,
			BaseH:  tmpl.BaseH,
			Region: db.NoRegion,
			Module: db.NoModule,
		})
		c := &out.Cells[ci]
		c.Pos = geom.Point{
			X: out.Die.Lo.X + rng.Float64()*(out.Die.W()-c.BaseW),
			Y: out.Die.Lo.Y + rng.Float64()*(out.Die.H()-c.BaseH),
		}
		// Two pins into random existing non-empty nets.
		for pk := 0; pk < 2 && len(out.Nets) > 0; pk++ {
			ni := rng.Intn(len(out.Nets))
			pi := len(out.Pins)
			out.Pins = append(out.Pins, db.Pin{
				Cell:   ci,
				Net:    ni,
				Offset: geom.Point{X: c.BaseW / 2, Y: c.BaseH / 2},
			})
			c.Pins = append(c.Pins, pi)
			out.Nets[ni].Pins = append(out.Nets[ni].Pins, pi)
		}
	}

	// Rewire: move surviving movable-std-cell pins onto different nets.
	if p.RewireFrac > 0 && len(out.Nets) > 1 {
		var pins []int
		for _, ci := range movable {
			pins = append(pins, out.Cells[ci].Pins...)
		}
		nRewire := int(p.RewireFrac*float64(len(pins)) + 0.5)
		if nRewire > len(pins) {
			nRewire = len(pins)
		}
		perm := rng.Perm(len(pins))
		for _, idx := range perm[:nRewire] {
			pi := pins[idx]
			pin := &out.Pins[pi]
			to := rng.Intn(len(out.Nets) - 1)
			if to >= pin.Net {
				to++
			}
			detachPin(&out.Nets[pin.Net], pi)
			out.Nets[to].Pins = append(out.Nets[to].Pins, pi)
			pin.Net = to
		}
	}

	out.InvalidateNameIndex()
	return out
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// detachPin removes pin index pi from the net's pin list, preserving
// order.
func detachPin(net *db.Net, pi int) {
	for k, q := range net.Pins {
		if q == pi {
			net.Pins = append(net.Pins[:k], net.Pins[k+1:]...)
			return
		}
	}
}

// removeCells rebuilds the design without the given cells, remapping every
// index table (pins, nets, modules, routing blockages). Nets keep their
// surviving pins even when that leaves them with one or zero.
func removeCells(d *db.Design, removed map[int]bool) {
	cellMap := make([]int, len(d.Cells))
	newCells := make([]db.Cell, 0, len(d.Cells)-len(removed))
	for i := range d.Cells {
		if removed[i] {
			cellMap[i] = -1
			continue
		}
		cellMap[i] = len(newCells)
		newCells = append(newCells, d.Cells[i])
	}

	pinMap := make([]int, len(d.Pins))
	newPins := make([]db.Pin, 0, len(d.Pins))
	for i := range d.Pins {
		ci := cellMap[d.Pins[i].Cell]
		if ci < 0 {
			pinMap[i] = -1
			continue
		}
		pinMap[i] = len(newPins)
		pin := d.Pins[i]
		pin.Cell = ci
		newPins = append(newPins, pin)
	}

	for n := range d.Nets {
		net := &d.Nets[n]
		kept := net.Pins[:0]
		for _, pi := range net.Pins {
			if pinMap[pi] >= 0 {
				kept = append(kept, pinMap[pi])
			}
		}
		net.Pins = kept
	}
	for i := range newCells {
		c := &newCells[i]
		kept := make([]int, 0, len(c.Pins))
		for _, pi := range c.Pins {
			if pinMap[pi] >= 0 {
				kept = append(kept, pinMap[pi])
			}
		}
		c.Pins = kept
	}
	for m := range d.Modules {
		mod := &d.Modules[m]
		kept := mod.Cells[:0]
		for _, ci := range mod.Cells {
			if cellMap[ci] >= 0 {
				kept = append(kept, cellMap[ci])
			}
		}
		mod.Cells = kept
	}
	if d.Route != nil {
		r := d.Route
		keptNi := r.NiTerminals[:0]
		for _, ci := range r.NiTerminals {
			if cellMap[ci] >= 0 {
				keptNi = append(keptNi, cellMap[ci])
			}
		}
		r.NiTerminals = keptNi
		keptBl := r.Blockages[:0]
		for _, bl := range r.Blockages {
			if cellMap[bl.Cell] >= 0 {
				bl.Cell = cellMap[bl.Cell]
				keptBl = append(keptBl, bl)
			}
		}
		r.Blockages = keptBl
	}
	d.Cells = newCells
	d.Pins = newPins
	d.InvalidateNameIndex()
}
