// Package gen produces synthetic hierarchical mixed-size benchmark designs
// for the reproduction suite. The DAC-2012 superblue designs the paper
// family evaluates on are proprietary, so this generator fabricates
// circuits with the same structural features that drive the placement and
// routability behaviour under study:
//
//   - standard cells of varying widths plus a population of large macros
//     (some fixed as blockages, some movable), giving mixed-size dynamics
//     and macro-induced narrow channels;
//   - a logical hierarchy tree whose modules own contiguous cell ranges,
//     with fence regions assigned to a subset of modules;
//   - Rent's-rule-like connectivity: mostly short local nets within a
//     module, a tail of higher-degree nets, and a sprinkling of global
//     nets to peripheral I/O terminals;
//   - a two-layer routing grid with capacities and reduced porosity over
//     macro blockages, in the DAC-2012 .route style.
//
// Generation is deterministic for a given Config (seeded math/rand), so
// benchmark tables are reproducible run to run.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/db"
	"repro/internal/geom"
)

// Config parameterizes one synthetic design.
type Config struct {
	Name string
	Seed int64

	// NumStdCells is the number of standard cells.
	NumStdCells int
	// NumFixedMacros and NumMovableMacros control the macro population.
	NumFixedMacros   int
	NumMovableMacros int
	// MacroSizeRows is the macro edge length in row heights (approximate;
	// individual macros vary ±40%).
	MacroSizeRows int

	// NumModules is the number of non-root hierarchy modules; NumFences of
	// them (≤ NumModules) receive fence regions.
	NumModules int
	NumFences  int

	// NumTerminals is the number of peripheral I/O pads.
	NumTerminals int

	// TargetUtil is movable area / free area; the die is sized to hit it.
	TargetUtil float64

	// AvgNetDegree shifts the net-degree distribution (typical 3–4). The
	// number of nets is chosen so total pins ≈ NumStdCells * 4.
	AvgNetDegree float64

	// LocalityWindow is the index range within which most net members are
	// drawn, as a fraction of the design size (smaller = more local nets).
	LocalityWindow float64

	// GlobalFrac is the fraction of nets drawn uniformly across the whole
	// design (default 0.12). Real circuits keep absolute net lengths
	// roughly constant as they grow, so large benchmarks use both a
	// smaller LocalityWindow and a smaller GlobalFrac.
	GlobalFrac float64

	// RowHeight and SiteWidth fix the placement fabric geometry.
	RowHeight float64
	SiteWidth float64

	// GridTilesPerRow controls routing-tile size: one g-cell spans this
	// many row heights.
	GridTilesPerRow float64
	// TrackCapacity is the per-layer routing capacity in tracks per tile.
	TrackCapacity float64
}

// Default fills unset Config fields with sensible values.
func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "synth"
	}
	if c.NumStdCells <= 0 {
		c.NumStdCells = 1000
	}
	if c.MacroSizeRows <= 0 {
		c.MacroSizeRows = 8
	}
	if c.TargetUtil <= 0 || c.TargetUtil >= 1 {
		c.TargetUtil = 0.7
	}
	if c.AvgNetDegree <= 2 {
		c.AvgNetDegree = 3.5
	}
	if c.LocalityWindow <= 0 {
		c.LocalityWindow = 0.05
	}
	if c.GlobalFrac <= 0 {
		c.GlobalFrac = 0.12
	}
	if c.GlobalFrac > 0.5 {
		c.GlobalFrac = 0.5
	}
	if c.RowHeight <= 0 {
		c.RowHeight = 12
	}
	if c.SiteWidth <= 0 {
		c.SiteWidth = 1
	}
	if c.GridTilesPerRow <= 0 {
		c.GridTilesPerRow = 4
	}
	if c.TrackCapacity <= 0 {
		c.TrackCapacity = 64
	}
	if c.NumTerminals < 0 {
		c.NumTerminals = 0
	}
	if c.NumFences > c.NumModules {
		c.NumFences = c.NumModules
	}
	return c
}

// Generate builds the synthetic design described by cfg.
func Generate(cfg Config) (*db.Design, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{cfg: cfg, rng: rng}
	return g.run()
}

// MustGenerate is Generate for known-good configurations; it panics on
// error.
func MustGenerate(cfg Config) *db.Design {
	d, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// macroDim is the footprint of one generated macro.
type macroDim struct{ w, h float64 }

type generator struct {
	cfg Config
	rng *rand.Rand

	b        *db.Builder
	die      geom.Rect
	cells    []int // std cell indices in generation order
	modOf    []int // module of each std cell (index into modules slice)
	modules  []int // builder module indices (non-root)
	rowH     float64
	numRows  int
	rowWidth float64
}

func (g *generator) run() (*db.Design, error) {
	cfg := g.cfg

	// Standard-cell dimensions: widths 2–16 sites, one row tall.
	widths := make([]float64, cfg.NumStdCells)
	var stdArea float64
	for i := range widths {
		w := float64(2+g.rng.Intn(15)) * cfg.SiteWidth
		widths[i] = w
		stdArea += w * cfg.RowHeight
	}

	// Macro dimensions.
	macroEdge := float64(cfg.MacroSizeRows) * cfg.RowHeight
	fixedDims := make([]macroDim, cfg.NumFixedMacros)
	movDims := make([]macroDim, cfg.NumMovableMacros)
	var fixedArea, movArea float64
	dim := func() macroDim {
		f := func() float64 { return macroEdge * (0.6 + 0.8*g.rng.Float64()) }
		return macroDim{w: snap(f(), cfg.SiteWidth), h: snap(f(), cfg.RowHeight)}
	}
	for i := range fixedDims {
		fixedDims[i] = dim()
		fixedArea += fixedDims[i].w * fixedDims[i].h
	}
	for i := range movDims {
		movDims[i] = dim()
		movArea += movDims[i].w * movDims[i].h
	}

	// Die sizing: free area must hold movable area at the target
	// utilization; fixed macros add on top.
	dieArea := (stdArea+movArea)/cfg.TargetUtil + fixedArea
	side := math.Sqrt(dieArea)
	g.numRows = int(math.Ceil(side / cfg.RowHeight))
	g.rowH = cfg.RowHeight
	g.rowWidth = snap(dieArea/(float64(g.numRows)*cfg.RowHeight), cfg.SiteWidth)
	g.die = geom.NewRect(0, 0, g.rowWidth, float64(g.numRows)*cfg.RowHeight)

	g.b = db.NewBuilder(cfg.Name, g.die)
	g.b.MakeRows(cfg.RowHeight, cfg.SiteWidth)

	root := g.b.AddModule("top", db.NoModule, db.NoRegion)

	// Fixed macros first: they define blockages and channels. Place them
	// on a jittered grid with margins so channels between them exist.
	fixedIdx := g.placeFixedMacros(fixedDims)

	// Fences: carve disjoint rectangles out of macro-free die area.
	fenceIdx := g.makeFences(cfg.NumFences, stdArea, fixedIdx)

	// Modules: each non-root module owns a contiguous slice of std cells.
	g.makeModules(root, fenceIdx)

	// Standard cells, assigned to modules in contiguous ranges.
	g.makeStdCells(widths)

	// Movable macros, assigned to the root module.
	movIdx := make([]int, 0, len(movDims))
	for i, md := range movDims {
		ci := g.b.AddMacro(fmt.Sprintf("mm%d", i), md.w, md.h, false)
		movIdx = append(movIdx, ci)
	}

	// Terminals around the periphery.
	terms := g.makeTerminals(cfg.NumTerminals)

	// Connectivity.
	g.makeNets(movIdx, fixedIdx, terms)

	// Routing grid.
	g.makeRoute(fixedIdx)

	d, err := g.b.Design()
	if err != nil {
		return nil, err
	}
	// Initial positions: movable objects at the die center with a small
	// deterministic spread (analytical placers need non-degenerate
	// gradients), movable macros included.
	ctr := g.die.Center()
	spread := math.Min(g.die.W(), g.die.H()) * 0.1
	for _, ci := range d.Movable() {
		c := &d.Cells[ci]
		c.SetCenter(geom.Point{
			X: ctr.X + (g.rng.Float64()-0.5)*spread,
			Y: ctr.Y + (g.rng.Float64()-0.5)*spread,
		})
	}
	return d, nil
}

func snap(v, grid float64) float64 {
	if grid <= 0 {
		return v
	}
	s := math.Round(v/grid) * grid
	if s < grid {
		s = grid
	}
	return s
}

// placeFixedMacros distributes fixed macros over the die interior without
// overlaps, leaving routing channels between them.
func (g *generator) placeFixedMacros(dims []macroDim) []int {
	var placed []geom.Rect
	idx := make([]int, 0, len(dims))
	margin := 2 * g.rowH
	for i, md := range dims {
		ci := g.b.AddMacro(fmt.Sprintf("fm%d", i), md.w, md.h, true)
		idx = append(idx, ci)
		// Rejection-sample a spot; shrink ambitions after many failures.
		var r geom.Rect
		ok := false
		for try := 0; try < 400; try++ {
			x := g.die.Lo.X + margin + g.rng.Float64()*math.Max(1, g.die.W()-md.w-2*margin)
			y := g.die.Lo.Y + margin + g.rng.Float64()*math.Max(1, g.die.H()-md.h-2*margin)
			x = snap(x, g.cfg.SiteWidth)
			y = snap(y, g.rowH)
			r = geom.NewRect(x, y, x+md.w, y+md.h)
			if !g.die.ContainsRect(r) {
				continue
			}
			conflict := false
			for _, pr := range placed {
				if pr.Expand(margin).Overlaps(r) {
					conflict = true
					break
				}
			}
			if !conflict {
				ok = true
				break
			}
		}
		if !ok {
			// Deterministic raster scan without margins: take the first
			// overlap-free in-die spot.
			r, ok = g.rasterScan(md, placed)
		}
		if !ok {
			// Truly no room; clamp to the origin — the design is
			// over-constrained and tests will surface the overlap.
			r = g.die.ClampRect(geom.NewRect(0, 0, md.w, md.h))
		}
		g.setPos(ci, r.Lo)
		placed = append(placed, r)
	}
	return idx
}

// setPos fixes a cell's position during construction; fixed macros need
// their final spots before fence carving, which avoids them.
func (g *generator) setPos(ci int, p geom.Point) {
	g.b.SetCellPos(ci, p)
}

// rasterScan walks a row-height lattice over the die and returns the first
// spot where a macro of the given dimensions fits without overlapping the
// already-placed rectangles.
func (g *generator) rasterScan(md macroDim, placed []geom.Rect) (geom.Rect, bool) {
	for y := g.die.Lo.Y; y+md.h <= g.die.Hi.Y+1e-9; y += g.rowH {
		for x := g.die.Lo.X; x+md.w <= g.die.Hi.X+1e-9; x += g.rowH {
			r := geom.NewRect(snap(x, g.cfg.SiteWidth), snap(y, g.rowH),
				snap(x, g.cfg.SiteWidth)+md.w, snap(y, g.rowH)+md.h)
			if !g.die.ContainsRect(r) {
				continue
			}
			free := true
			for _, pr := range placed {
				if pr.Overlaps(r) {
					free = false
					break
				}
			}
			if free {
				return r, true
			}
		}
	}
	return geom.Rect{}, false
}

// makeFences carves NumFences disjoint rectangles out of macro-free area.
func (g *generator) makeFences(n int, stdArea float64, fixedIdx []int) []int {
	if n <= 0 {
		return nil
	}
	// Two thirds of the standard cells live in modules (see makeStdCells),
	// so one module's area share is (2/3)·stdArea / NumModules. The fence
	// starts at a comfortable 65% local utilization; when no free spot
	// exists between macros it shrinks toward an 80%-utilization floor.
	// The floor leaves real slack per row: legalization is bin packing,
	// and at 90%+ fill the per-row fragments get smaller than the widest
	// cells, stranding them outside the fence.
	moduleArea := stdArea * 2 / 3 / float64(maxInt(1, g.cfg.NumModules))
	side := math.Sqrt(moduleArea / 0.65)
	minSide := math.Sqrt(moduleArea / 0.8)
	var fences []int
	var used []geom.Rect
	for _, fi := range fixedIdx {
		used = append(used, g.b.CellRect(fi).Expand(g.rowH))
	}
	for f := 0; f < n; f++ {
		w := side * (0.95 + 0.15*g.rng.Float64())
		h := side * (0.95 + 0.15*g.rng.Float64())
		var r geom.Rect
		ok := false
		for !ok && w >= minSide*0.9 && h >= minSide*0.9 {
			for try := 0; try < 400; try++ {
				sw := snap(w, g.cfg.SiteWidth)
				sh := snap(h, g.rowH)
				x := g.die.Lo.X + g.rng.Float64()*math.Max(1, g.die.W()-sw)
				y := g.die.Lo.Y + g.rng.Float64()*math.Max(1, g.die.H()-sh)
				x = snap(x, g.cfg.SiteWidth)
				y = snap(y, g.rowH)
				r = geom.NewRect(x, y, x+sw, y+sh)
				if !g.die.ContainsRect(r) {
					continue
				}
				conflict := false
				for _, ur := range used {
					if ur.Overlaps(r) {
						conflict = true
						break
					}
				}
				if !conflict {
					ok = true
					break
				}
			}
			if !ok {
				w *= 0.92
				h *= 0.92
			}
		}
		if !ok {
			continue
		}
		used = append(used, r.Expand(g.rowH))
		fences = append(fences, g.b.AddRegion(fmt.Sprintf("fence%d", f), r))
	}
	return fences
}

// makeModules creates the module tree: NumModules children of the root,
// the first len(fences) of which are fenced.
func (g *generator) makeModules(root int, fences []int) {
	for m := 0; m < g.cfg.NumModules; m++ {
		region := db.NoRegion
		if m < len(fences) {
			region = fences[m]
		}
		mi := g.b.AddModule(fmt.Sprintf("mod%d", m), root, region)
		g.modules = append(g.modules, mi)
	}
}

// makeStdCells creates standard cells and assigns contiguous index ranges
// to modules (hierarchical netlists keep related logic adjacent).
func (g *generator) makeStdCells(widths []float64) {
	n := len(widths)
	perMod := 0
	if len(g.modules) > 0 {
		// Two thirds of the cells live in modules, the rest at the root.
		perMod = (2 * n / 3) / len(g.modules)
	}
	for i, w := range widths {
		ci := g.b.AddStdCell(fmt.Sprintf("c%d", i), w, g.rowH)
		g.cells = append(g.cells, ci)
		mod := -1
		if perMod > 0 && i/perMod < len(g.modules) {
			mod = i / perMod
			g.b.AssignModule(ci, g.modules[mod])
		}
		g.modOf = append(g.modOf, mod)
	}
}

// makeTerminals rings the die with I/O pads.
func (g *generator) makeTerminals(n int) []int {
	terms := make([]int, 0, n)
	for i := 0; i < n; i++ {
		var p geom.Point
		t := g.rng.Float64()
		switch g.rng.Intn(4) {
		case 0:
			p = geom.Point{X: g.die.Lo.X, Y: g.die.Lo.Y + t*g.die.H()}
		case 1:
			p = geom.Point{X: g.die.Hi.X, Y: g.die.Lo.Y + t*g.die.H()}
		case 2:
			p = geom.Point{X: g.die.Lo.X + t*g.die.W(), Y: g.die.Lo.Y}
		default:
			p = geom.Point{X: g.die.Lo.X + t*g.die.W(), Y: g.die.Hi.Y}
		}
		terms = append(terms, g.b.AddTerminal(fmt.Sprintf("p%d", i), p))
	}
	return terms
}

// netDegree samples the net-degree distribution: geometric-ish with mean
// near AvgNetDegree, clipped to [2, 24].
func (g *generator) netDegree() int {
	r := g.rng.Float64()
	switch {
	case r < 0.55:
		return 2
	case r < 0.75:
		return 3
	case r < 0.87:
		return 4
	default:
		d := 5 + int(g.rng.ExpFloat64()*(g.cfg.AvgNetDegree-2))
		if d > 24 {
			d = 24
		}
		return d
	}
}

// makeNets wires the design: local nets inside index windows (and hence
// mostly inside modules), global nets across modules, terminal nets, and
// macro connections.
func (g *generator) makeNets(movMacros, fixedMacros, terms []int) {
	n := len(g.cells)
	if n == 0 {
		return
	}
	targetPins := int(float64(n) * 4)
	window := maxInt(8, int(g.cfg.LocalityWindow*float64(n)))
	pins := 0
	netID := 0
	pinOn := func(ci int) db.Conn { return g.b.CenterConn(ci) }

	for pins < targetPins {
		deg := g.netDegree()
		conns := make([]db.Conn, 0, deg)
		seen := map[int]bool{}
		r := g.rng.Float64()
		localCut := 1 - g.cfg.GlobalFrac - 0.08 // 8% of nets reach I/O pads
		globalCut := 1 - 0.08
		switch {
		case r < localCut:
			// Local net around an anchor cell.
			anchor := g.rng.Intn(n)
			for len(conns) < deg {
				j := anchor + g.rng.Intn(2*window+1) - window
				if j < 0 || j >= n || seen[j] {
					continue
				}
				seen[j] = true
				conns = append(conns, pinOn(g.cells[j]))
				if len(seen) >= n {
					break
				}
			}
		case r < globalCut || len(terms) == 0:
			// Global net: uniformly random members.
			for len(conns) < deg {
				j := g.rng.Intn(n)
				if seen[j] {
					continue
				}
				seen[j] = true
				conns = append(conns, pinOn(g.cells[j]))
				if len(seen) >= n {
					break
				}
			}
		default:
			// I/O net: a terminal plus random cells.
			conns = append(conns, db.Conn{Cell: terms[g.rng.Intn(len(terms))]})
			for len(conns) < deg {
				j := g.rng.Intn(n)
				if seen[j] {
					continue
				}
				seen[j] = true
				conns = append(conns, pinOn(g.cells[j]))
			}
		}
		if len(conns) >= 2 {
			g.b.AddNet(fmt.Sprintf("n%d", netID), 1, conns...)
			netID++
			pins += len(conns)
		}
	}

	// Every macro connects to a handful of nearby-index cells.
	for _, mi := range append(append([]int{}, movMacros...), fixedMacros...) {
		deg := 3 + g.rng.Intn(4)
		conns := []db.Conn{g.macroConn(mi)}
		seen := map[int]bool{}
		for len(conns) < deg+1 {
			j := g.rng.Intn(n)
			if seen[j] {
				continue
			}
			seen[j] = true
			conns = append(conns, pinOn(g.cells[j]))
		}
		g.b.AddNet(fmt.Sprintf("n%d", netID), 1, conns...)
		netID++
	}
}

// macroConn returns a pin on a random location of the macro boundary
// region rather than its center, as macro pins sit near edges in practice.
func (g *generator) macroConn(ci int) db.Conn {
	w, h := g.b.CellDims(ci)
	fx, fy := g.rng.Float64(), g.rng.Float64()
	// Push the pin toward an edge.
	if g.rng.Intn(2) == 0 {
		fx = math.Round(fx)
	} else {
		fy = math.Round(fy)
	}
	return db.Conn{Cell: ci, Offset: geom.Point{X: fx * w, Y: fy * h}}
}

// makeRoute attaches a two-layer routing grid (layer 0 horizontal, layer 1
// vertical) with macro blockages.
func (g *generator) makeRoute(fixedIdx []int) {
	tile := g.cfg.GridTilesPerRow * g.rowH
	gx := maxInt(4, int(math.Ceil(g.die.W()/tile)))
	gy := maxInt(4, int(math.Ceil(g.die.H()/tile)))
	ri := &db.RouteInfo{
		GridX: gx, GridY: gy, Layers: 2,
		HorizCap:         []float64{g.cfg.TrackCapacity, 0},
		VertCap:          []float64{0, g.cfg.TrackCapacity},
		MinWidth:         []float64{1, 1},
		MinSpacing:       []float64{1, 1},
		ViaSpacing:       []float64{0, 0},
		Origin:           g.die.Lo,
		TileW:            g.die.W() / float64(gx),
		TileH:            g.die.H() / float64(gy),
		BlockagePorosity: 0.1,
	}
	for _, ci := range fixedIdx {
		ri.Blockages = append(ri.Blockages, db.RouteBlockage{Cell: ci, Layers: []int{0, 1}})
	}
	g.b.SetRoute(ri)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
