package gen

import "math"

// Suite returns the reproduction benchmark suite sb-a … sb-e: five
// synthetic hierarchical mixed-size designs of increasing size, standing
// in for the proprietary DAC-2012 superblue designs (see DESIGN.md §2).
// Utilization and macro counts rise with size so that the larger designs
// are also the more congestion-prone ones, matching the contest suite's
// character.
func Suite() []Config {
	return []Config{
		{
			Name: "sb-a", Seed: 101,
			NumStdCells: 2000, NumFixedMacros: 4, NumMovableMacros: 2,
			MacroSizeRows: 6, NumModules: 6, NumFences: 4, NumTerminals: 32,
			TargetUtil: 0.65, LocalityWindow: 0.05, GlobalFrac: 0.12, TrackCapacity: 64,
		},
		{
			Name: "sb-b", Seed: 202,
			NumStdCells: 5000, NumFixedMacros: 6, NumMovableMacros: 3,
			MacroSizeRows: 8, NumModules: 8, NumFences: 5, NumTerminals: 48,
			TargetUtil: 0.70, LocalityWindow: 0.02, GlobalFrac: 0.08, TrackCapacity: 80,
		},
		{
			Name: "sb-c", Seed: 303,
			NumStdCells: 10000, NumFixedMacros: 8, NumMovableMacros: 4,
			MacroSizeRows: 10, NumModules: 10, NumFences: 6, NumTerminals: 64,
			TargetUtil: 0.72, LocalityWindow: 0.01, GlobalFrac: 0.05, TrackCapacity: 96,
		},
		{
			Name: "sb-d", Seed: 404,
			NumStdCells: 20000, NumFixedMacros: 10, NumMovableMacros: 5,
			MacroSizeRows: 12, NumModules: 12, NumFences: 8, NumTerminals: 96,
			TargetUtil: 0.75, LocalityWindow: 0.005, GlobalFrac: 0.035, TrackCapacity: 112,
		},
		{
			Name: "sb-e", Seed: 505,
			NumStdCells: 40000, NumFixedMacros: 12, NumMovableMacros: 6,
			MacroSizeRows: 14, NumModules: 16, NumFences: 10, NumTerminals: 128,
			TargetUtil: 0.78, LocalityWindow: 0.0025, GlobalFrac: 0.022, TrackCapacity: 128,
		},
	}
}

// SmallSuite returns shrunken versions of the suite for fast tests and CI.
func SmallSuite() []Config {
	out := Suite()[:3]
	for i := range out {
		out[i].NumStdCells /= 10
		out[i].NumTerminals /= 2
		out[i].NumFixedMacros = 2 + i
		out[i].NumMovableMacros = 1
		out[i].NumModules = 3 + i
		out[i].NumFences = 2
	}
	return out
}

// Congested returns a deliberately congestion-prone configuration: high
// utilization, dense module-local wiring, and large blocking macros. The
// track capacity scales with the design size so that the wirelength-driven
// baseline lands in the heavily-but-not-hopelessly congested band (RC
// roughly 150–250) where placement-side congestion relief has room to act.
// Used by the routability experiments (T2 companion, F6, T10, T11).
func Congested(cells int, seed int64) Config {
	cap := 20 * math.Sqrt(float64(cells)/400)
	if cap < 20 {
		cap = 20
	}
	return Config{
		Name: "congested", Seed: seed,
		NumStdCells: cells, NumFixedMacros: 5, NumMovableMacros: 1,
		MacroSizeRows: 10, NumModules: 4, NumFences: 2, NumTerminals: 48,
		TargetUtil: 0.72, LocalityWindow: 0.02, TrackCapacity: cap,
	}
}
