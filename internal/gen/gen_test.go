package gen

import (
	"testing"

	"repro/internal/bookshelf"
	"repro/internal/db"
)

func small() Config {
	return Config{
		Name: "t", Seed: 42,
		NumStdCells: 300, NumFixedMacros: 3, NumMovableMacros: 2,
		MacroSizeRows: 5, NumModules: 4, NumFences: 2, NumTerminals: 12,
		TargetUtil: 0.6,
	}
}

func TestGenerateValidDesign(t *testing.T) {
	d, err := Generate(small())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("generated design invalid: %v", err)
	}
	s := d.ComputeStats()
	if s.NumStdCells != 300 {
		t.Errorf("std cells = %d", s.NumStdCells)
	}
	if s.NumMacros != 5 {
		t.Errorf("macros = %d", s.NumMacros)
	}
	if s.NumTerms != 12 {
		t.Errorf("terminals = %d", s.NumTerms)
	}
	if s.NumRegions != 2 {
		t.Errorf("fences = %d (fence carving failed)", s.NumRegions)
	}
	if s.NumModules != 5 { // root + 4
		t.Errorf("modules = %d", s.NumModules)
	}
	if s.NumNets == 0 || s.AvgDegree < 2 {
		t.Errorf("connectivity degenerate: %+v", s)
	}
}

func TestUtilizationNearTarget(t *testing.T) {
	d := MustGenerate(small())
	u := d.Utilization()
	if u < 0.4 || u > 0.75 {
		t.Errorf("utilization %v too far from target 0.6", u)
	}
}

func TestDeterminism(t *testing.T) {
	a := MustGenerate(small())
	b := MustGenerate(small())
	if len(a.Cells) != len(b.Cells) || len(a.Nets) != len(b.Nets) || len(a.Pins) != len(b.Pins) {
		t.Fatal("sizes differ between identical configs")
	}
	for i := range a.Cells {
		if a.Cells[i].Pos != b.Cells[i].Pos || a.Cells[i].BaseW != b.Cells[i].BaseW {
			t.Fatalf("cell %d differs between runs", i)
		}
	}
	for i := range a.Nets {
		if len(a.Nets[i].Pins) != len(b.Nets[i].Pins) {
			t.Fatalf("net %d differs between runs", i)
		}
	}
	c := small()
	c.Seed = 43
	d2 := MustGenerate(c)
	same := true
	for i := range a.Cells {
		if a.Cells[i].Pos != d2.Cells[i].Pos {
			same = false
			break
		}
	}
	if same && len(a.Cells) == len(d2.Cells) {
		t.Error("different seeds produced identical placements")
	}
}

func TestFixedMacrosDoNotOverlap(t *testing.T) {
	cfg := small()
	cfg.NumFixedMacros = 6
	d := MustGenerate(cfg)
	var rects []int
	for i := range d.Cells {
		if d.Cells[i].Kind == db.Macro && d.Cells[i].Fixed {
			rects = append(rects, i)
		}
	}
	if len(rects) != 6 {
		t.Fatalf("expected 6 fixed macros, got %d", len(rects))
	}
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			ri, rj := d.Cells[rects[i]].Rect(), d.Cells[rects[j]].Rect()
			if ri.Overlaps(rj) {
				t.Errorf("fixed macros %d and %d overlap: %v %v", i, j, ri, rj)
			}
		}
	}
	for _, ci := range rects {
		if !d.Die.ContainsRect(d.Cells[ci].Rect()) {
			t.Errorf("fixed macro %q outside die", d.Cells[ci].Name)
		}
	}
}

func TestFencesAvoidFixedMacros(t *testing.T) {
	d := MustGenerate(small())
	for ri := range d.Regions {
		for _, fr := range d.Regions[ri].Rects {
			for ci := range d.Cells {
				c := &d.Cells[ci]
				if c.Kind == db.Macro && c.Fixed && c.Rect().Overlaps(fr) {
					t.Errorf("fence %s overlaps fixed macro %s", d.Regions[ri].Name, c.Name)
				}
			}
		}
	}
}

func TestFencedModulesHaveCells(t *testing.T) {
	d := MustGenerate(small())
	fenced := 0
	for ci := range d.Cells {
		if d.Cells[ci].Movable() && d.CellRegion(ci) != db.NoRegion {
			fenced++
		}
	}
	if fenced == 0 {
		t.Error("no movable cell is fence-constrained; hierarchy wiring broken")
	}
}

func TestRouteGridPresent(t *testing.T) {
	d := MustGenerate(small())
	if d.Route == nil {
		t.Fatal("no route info")
	}
	r := d.Route
	if r.GridX < 4 || r.GridY < 4 || r.Layers != 2 {
		t.Errorf("grid %dx%dx%d degenerate", r.GridX, r.GridY, r.Layers)
	}
	if len(r.Blockages) != 3 {
		t.Errorf("expected 3 macro blockages, got %d", len(r.Blockages))
	}
	if r.HorizCap[0] <= 0 || r.VertCap[1] <= 0 {
		t.Errorf("capacities wrong: H=%v V=%v", r.HorizCap, r.VertCap)
	}
}

func TestMovablesStartInsideDie(t *testing.T) {
	d := MustGenerate(small())
	for _, ci := range d.Movable() {
		if !d.Die.Contains(d.Cells[ci].Center()) {
			t.Errorf("cell %q starts outside die", d.Cells[ci].Name)
		}
	}
}

func TestGeneratedDesignSurvivesBookshelfRoundTrip(t *testing.T) {
	d := MustGenerate(small())
	dir := t.TempDir()
	aux, err := bookshelf.WriteDesign(d, dir)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := bookshelf.ReadDesign(aux)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got.Cells) != len(d.Cells) || len(got.Nets) != len(d.Nets) {
		t.Fatal("round trip changed design size")
	}
	if got.HPWL() != d.HPWL() {
		t.Errorf("HPWL changed: %v -> %v", d.HPWL(), got.HPWL())
	}
	if got.ComputeStats().NumRegions != d.ComputeStats().NumRegions {
		t.Error("fences lost in round trip")
	}
}

func TestSuiteConfigs(t *testing.T) {
	suite := Suite()
	if len(suite) != 5 {
		t.Fatalf("suite size = %d", len(suite))
	}
	seen := map[string]bool{}
	for _, cfg := range suite {
		if seen[cfg.Name] {
			t.Errorf("duplicate suite name %q", cfg.Name)
		}
		seen[cfg.Name] = true
	}
	// Sizes must increase.
	for i := 1; i < len(suite); i++ {
		if suite[i].NumStdCells <= suite[i-1].NumStdCells {
			t.Errorf("suite sizes not increasing at %d", i)
		}
	}
	// Small suite must generate valid designs quickly.
	for _, cfg := range SmallSuite() {
		d, err := Generate(cfg)
		if err != nil {
			t.Errorf("SmallSuite %s: %v", cfg.Name, err)
			continue
		}
		if err := d.Validate(); err != nil {
			t.Errorf("SmallSuite %s invalid: %v", cfg.Name, err)
		}
	}
}

func TestCongestedConfig(t *testing.T) {
	d := MustGenerate(Congested(500, 7))
	if d.Utilization() < 0.5 {
		t.Errorf("congested design utilization %v too low", d.Utilization())
	}
	if d.Route.HorizCap[0] >= 40 {
		t.Error("congested design should have reduced capacity")
	}
}

func TestDefaultsApplied(t *testing.T) {
	d, err := Generate(Config{Seed: 1})
	if err != nil {
		t.Fatalf("defaults: %v", err)
	}
	if len(d.Cells) == 0 || len(d.Rows) == 0 || d.Route == nil {
		t.Error("defaulted config produced degenerate design")
	}
}
