package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/internal/viz"
)

// ServerOptions tunes the HTTP layer.
type ServerOptions struct {
	// MaxBodyBytes bounds submission bodies (default 32 MiB; inline
	// Bookshelf bundles can be large).
	MaxBodyBytes int64
	// RetryAfterSec is the Retry-After hint on 429 responses (default 2).
	RetryAfterSec int
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiling endpoints expose internals and cost CPU, so enabling them
	// is a deployment decision (cmd/placerd -pprof).
	Pprof bool
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	if o.RetryAfterSec <= 0 {
		o.RetryAfterSec = 2
	}
	return o
}

// Server is the placerd HTTP API over a Manager.
//
//	POST   /jobs                      submit (202; 429 when the queue is full)
//	GET    /jobs                      list job statuses
//	GET    /jobs/{id}                 one job's status
//	DELETE /jobs/{id}                 cancel (202)
//	GET    /jobs/{id}/events          SSE progress stream (?from=<seq> resumes)
//	GET    /jobs/{id}/report          final JSON run report
//	GET    /jobs/{id}/result.pl       placed .pl
//	GET    /jobs/{id}/trace           Chrome trace-event JSON (Perfetto)
//	GET    /jobs/{id}/heatmaps        captured heatmap labels
//	GET    /jobs/{id}/heatmaps/{label} one heatmap as SVG
//	GET    /healthz                   liveness + queue gauges
//	GET    /metrics                   Prometheus text metrics
//	GET    /debug/pprof/...           net/http/pprof (ServerOptions.Pprof)
type Server struct {
	m   *Manager
	opt ServerOptions
	mux *http.ServeMux
}

// NewServer wires the API routes over m.
func NewServer(m *Manager, opt ServerOptions) *Server {
	s := &Server{m: m, opt: opt.withDefaults(), mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /jobs/{id}/result.pl", s.handleResultPl)
	s.mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /jobs/{id}/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /jobs/{id}/heatmaps", s.handleHeatmapList)
	s.mux.HandleFunc("GET /jobs/{id}/heatmaps/{label}", s.handleHeatmap)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.opt.Pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
	// QueueDepth and QueueCap are set on 429 queue-full rejections so a
	// client can size its backoff against how congested the daemon is.
	QueueDepth int `json:"queue_depth,omitempty"`
	QueueCap   int `json:"queue_cap,omitempty"`
}

// writeErr maps manager errors onto HTTP semantics: client mistakes are
// 400, a full queue is 429 with a Retry-After hint and the live queue
// gauges in the body, drain is 503, unknown jobs are 404, everything else
// is 500.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	body := errorBody{Error: err.Error()}
	switch {
	case errors.Is(err, ErrBadSpec):
		code = http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.opt.RetryAfterSec))
		code = http.StatusTooManyRequests
		body.QueueDepth = s.m.QueueDepth()
		body.QueueCap = s.m.QueueCap()
	case errors.Is(err, ErrShuttingDown):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownJob):
		code = http.StatusNotFound
	}
	writeJSON(w, code, body)
}

// submitResponse is the 202 body of a successful submission.
type submitResponse struct {
	Status
	Links map[string]string `json:"links"`
}

func jobLinks(id string) map[string]string {
	base := "/jobs/" + id
	return map[string]string{
		"self":       base,
		"events":     base + "/events",
		"report":     base + "/report",
		"result":     base + "/result.pl",
		"trace":      base + "/trace",
		"checkpoint": base + "/checkpoint",
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: err.Error()})
			return
		}
		s.writeErr(w, fmt.Errorf("%w: %w", ErrBadSpec, err))
		return
	}
	j, err := s.m.Submit(spec)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{Status: j.Status(), Links: jobLinks(j.ID)})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.m.List()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, err := s.m.Get(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, submitResponse{Status: j.Status(), Links: jobLinks(j.ID)})
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.m.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

// handleEvents streams the job's progress log as Server-Sent Events:
// full replay from ?from=<seq> (default 0), then live tail until the
// job reaches a terminal state or the client disconnects. Each message
// carries the event seq as SSE id, the type as SSE event name, and the
// JSON payload as data.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported"})
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			s.writeErr(w, fmt.Errorf("%w: bad from=%q", ErrBadSpec, q))
			return
		}
		from = v
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	for {
		evs, done, sig := j.Events(from)
		for i := range evs {
			data, err := json.Marshal(&evs[i])
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", evs[i].Seq, evs[i].Type, data)
		}
		from += len(evs)
		fl.Flush()
		if done {
			return
		}
		select {
		case <-sig:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	rep := j.Report()
	if rep == nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf("job %s has no report yet (state %s)", j.ID, j.State())})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(rep)
}

func (s *Server) handleResultPl(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	pl := j.ResultPl()
	if pl == nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf("job %s has no placement result (state %s)", j.ID, j.State())})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(pl)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	tr := j.Trace()
	if tr == nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf("job %s has no trace yet (state %s)", j.ID, j.State())})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(tr)
}

// handleCheckpoint serves the job's latest journaled placement checkpoint
// (snap codec bytes). The fleet coordinator polls it while a job runs so a
// reassignment after worker death can resume from the last journaled
// round instead of starting over.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	ck := j.CheckpointBytes()
	if ck == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("job %s has no checkpoint", j.ID)})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(ck)
}

func (s *Server) handleHeatmapList(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	heats := j.Heatmaps()
	labels := make([]string, 0, len(heats))
	for _, h := range heats {
		labels = append(labels, h.Label)
	}
	writeJSON(w, http.StatusOK, map[string]any{"labels": labels})
}

func (s *Server) handleHeatmap(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	label := r.PathValue("label")
	for _, h := range j.Heatmaps() {
		if h.Label == label {
			w.Header().Set("Content-Type", "image/svg+xml")
			if err := viz.HeatmapSVG(w, h.NX, h.NY, h.Cong, 800); err != nil {
				s.m.opt.Logger.Warn("heatmap render failed", "job", j.ID, "label", label, "err", err)
			}
			return
		}
	}
	writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("job %s has no heatmap %q", j.ID, label)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"queue_depth": s.m.QueueDepth(),
		"queue_cap":   s.m.QueueCap(),
		"running":     s.m.Running(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.writeMetrics(w)
}
