package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// tinyGen is a design small enough that a full placement job finishes in
// a couple of seconds even under -race.
func tinyGen() *gen.Config {
	return &gen.Config{
		Name: "serve-t", Seed: 11,
		NumStdCells: 200, NumFixedMacros: 1, NumMovableMacros: 1,
		MacroSizeRows: 4, NumModules: 2, NumFences: 1, NumTerminals: 8,
		TargetUtil: 0.5,
	}
}

func mustManager(t *testing.T, opt Options) *Manager {
	t.Helper()
	m, err := NewManager(opt)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func newTestServer(t *testing.T, opt Options) (*Manager, *httptest.Server) {
	t.Helper()
	m := mustManager(t, opt)
	ts := httptest.NewServer(NewServer(m, ServerOptions{}))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec any) (*http.Response, submitResponse) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sub submitResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return resp, sub
}

// sseEvent is one parsed SSE message.
type sseEvent struct {
	id    string
	event string
	data  Event
}

// readSSE consumes an SSE stream until it ends, parsing every message.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			out = append(out, cur)
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[len("data: "):]), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE: %v", err)
	}
	return out
}

// TestEndToEndPlacement is the serving-layer e2e: submit a generated
// design over HTTP, follow its live SSE stream to completion, then fetch
// the versioned report, the .pl result and a heatmap.
func TestEndToEndPlacement(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, sub := postJob(t, ts, Spec{
		Generate: tinyGen(),
		Config:   core.Config{DisableDP: true},
		Heatmaps: true,
		Evaluate: true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if sub.ID == "" || sub.Links["events"] == "" {
		t.Fatalf("submit response incomplete: %+v", sub)
	}

	// Follow the stream to the end; the connection closes on the terminal
	// event, so a plain read-to-EOF is the whole job.
	es, err := http.Get(ts.URL + sub.Links["events"])
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	if ct := es.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	events := readSSE(t, es.Body)

	var gp, route, states int
	last := sseEvent{}
	for i, e := range events {
		if fmt.Sprint(i) != e.id {
			t.Errorf("event %d has SSE id %q (ids must be the seq for resume)", i, e.id)
		}
		switch e.event {
		case EventGP:
			gp++
		case EventRoute:
			route++
		case EventState:
			states++
		default:
			t.Errorf("unknown SSE event type %q", e.event)
		}
		last = e
	}
	if gp < 1 {
		t.Errorf("streamed %d gp round events, want >= 1", gp)
	}
	if route < 1 {
		t.Errorf("streamed %d route round events, want >= 1", route)
	}
	if last.event != EventState || last.data.State != StateDone {
		t.Fatalf("stream ended with %q/%v, want terminal done state (events: %d)", last.event, last.data.State, len(events))
	}

	// Replay: a late joiner gets the identical full log; ?from resumes.
	replay, err := http.Get(ts.URL + sub.Links["events"])
	if err != nil {
		t.Fatal(err)
	}
	full := readSSE(t, replay.Body)
	replay.Body.Close()
	if len(full) != len(events) {
		t.Errorf("replay returned %d events, live stream had %d", len(full), len(events))
	}
	tail, err := http.Get(ts.URL + sub.Links["events"] + fmt.Sprintf("?from=%d", len(events)-1))
	if err != nil {
		t.Fatal(err)
	}
	tailEvs := readSSE(t, tail.Body)
	tail.Body.Close()
	if len(tailEvs) != 1 || tailEvs[0].data.State != StateDone {
		t.Errorf("?from resume returned %d events, want exactly the terminal one", len(tailEvs))
	}

	// Report: golden schema v1, not canceled, with routed metrics.
	rr, err := http.Get(ts.URL + sub.Links["report"])
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("report status = %d", rr.StatusCode)
	}
	var rep struct {
		Version  int    `json:"version"`
		Tool     string `json:"tool"`
		Canceled bool   `json:"canceled"`
		Metrics  *struct {
			HPWL float64 `json:"hpwl"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(rr.Body).Decode(&rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if rep.Version != 1 || rep.Tool != "placerd" || rep.Canceled {
		t.Errorf("report header = %+v, want version 1, tool placerd, not canceled", rep)
	}
	if rep.Metrics == nil || rep.Metrics.HPWL <= 0 {
		t.Errorf("report metrics missing or empty: %+v", rep.Metrics)
	}

	// Chrome trace: span names in the trace's complete events must match
	// the report's top-level stages, and resource attribution must be
	// present (placerd always samples).
	tr, err := http.Get(ts.URL + sub.Links["trace"])
	if err != nil {
		t.Fatal(err)
	}
	traceBody, _ := io.ReadAll(tr.Body)
	tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", tr.StatusCode)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceBody, &trace); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	spanNames := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "X" {
			spanNames[ev.Name] = true
		}
	}
	for _, stage := range []string{"lower", "gp", "legalize"} {
		if !spanNames[stage] {
			t.Errorf("trace has no %q complete event (X events: %v)", stage, spanNames)
		}
	}
	var repFull struct {
		Attribution map[string]*struct {
			WallMS float64 `json:"wall_ms"`
		} `json:"attribution"`
	}
	rr2, err := http.Get(ts.URL + sub.Links["report"])
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(rr2.Body).Decode(&repFull)
	rr2.Body.Close()
	if repFull.Attribution["gp"] == nil || repFull.Attribution["gp"].WallMS <= 0 {
		t.Errorf("report attribution missing gp stage: %+v", repFull.Attribution)
	}

	// Placement result.
	pr, err := http.Get(ts.URL + sub.Links["result"])
	if err != nil {
		t.Fatal(err)
	}
	pl, _ := io.ReadAll(pr.Body)
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK || !bytes.HasPrefix(pl, []byte("UCLA pl")) {
		t.Errorf("result.pl status=%d prefix=%q", pr.StatusCode, string(pl[:min(len(pl), 20)]))
	}

	// Heatmaps: the final congestion map is always captured when the
	// design has a route grid.
	hr, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/heatmaps")
	if err != nil {
		t.Fatal(err)
	}
	var labels struct {
		Labels []string `json:"labels"`
	}
	json.NewDecoder(hr.Body).Decode(&labels)
	hr.Body.Close()
	if len(labels.Labels) < 1 {
		t.Fatalf("no heatmaps captured")
	}
	sv, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/heatmaps/" + labels.Labels[0])
	if err != nil {
		t.Fatal(err)
	}
	svg, _ := io.ReadAll(sv.Body)
	sv.Body.Close()
	if sv.StatusCode != http.StatusOK || !bytes.Contains(svg, []byte("<svg")) {
		t.Errorf("heatmap %q: status=%d, not SVG", labels.Labels[0], sv.StatusCode)
	}

	// Status endpoint agrees.
	sr, err := http.Get(ts.URL + "/jobs/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var st submitResponse
	json.NewDecoder(sr.Body).Decode(&st)
	sr.Body.Close()
	if st.State != StateDone || st.Events != len(events) {
		t.Errorf("status = %+v, want done with %d events", st.Status, len(events))
	}

	// The completed run must have fed the per-stage duration histograms,
	// and /metrics carries build info plus runtime gauges.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if ct := mr.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		"placerd_build_info{go_version=",
		`placerd_stage_seconds_count{stage="gp"} 1`,
		`placerd_stage_seconds_bucket{stage="gp",le="+Inf"} 1`,
		"go_goroutines ",
		"go_heap_live_bytes ",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestPprofGated pins that the profiling endpoints only exist when the
// deployment opted in.
func TestPprofGated(t *testing.T) {
	m := mustManager(t, Options{Runner: func(ctx context.Context, j *Job) error { return nil }})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	off := httptest.NewServer(NewServer(m, ServerOptions{}))
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof disabled: GET /debug/pprof/ = %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(NewServer(m, ServerOptions{Pprof: true}))
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Errorf("pprof enabled: GET /debug/pprof/ = %d, want index page", resp.StatusCode)
	}
}

// blockingRunner returns a Runner that signals when each job starts and
// blocks until released or canceled.
func blockingRunner(started chan<- string, release <-chan struct{}) func(context.Context, *Job) error {
	return func(ctx context.Context, j *Job) error {
		started <- j.ID
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	defer close(release)
	_, ts := newTestServer(t, Options{
		QueueSize: 1, Jobs: 1,
		Runner: blockingRunner(started, release),
	})

	// First job occupies the worker; second fills the one queue slot.
	if resp, _ := postJob(t, ts, Spec{Synth: "sb-a"}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1 status = %d", resp.StatusCode)
	}
	<-started // job 1 is running, queue is empty
	if resp, _ := postJob(t, ts, Spec{Synth: "sb-a"}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2 status = %d", resp.StatusCode)
	}
	resp, _ := postJob(t, ts, Spec{Synth: "sb-a"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3 status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response carries no Retry-After header")
	}
}

func TestCancelRunningJobOverHTTP(t *testing.T) {
	before := runtime.NumGoroutine()
	started := make(chan string, 1)
	m, ts := newTestServer(t, Options{
		Runner: blockingRunner(started, nil),
	})
	_, sub := postJob(t, ts, Spec{Synth: "sb-a"})
	<-started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d, want 202", resp.StatusCode)
	}

	j, _ := m.Get(sub.ID)
	waitState(t, j, StateCanceled, 5*time.Second)
	if msg := j.Err(); !strings.Contains(msg, "context canceled") {
		t.Errorf("canceled job error = %q", msg)
	}

	// The worker, SSE plumbing and job context must all wind down: allow
	// the runtime a moment to settle, then compare goroutine counts.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+3 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+3 {
		t.Errorf("goroutines grew from %d to %d after cancel", before, n)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	m, ts := newTestServer(t, Options{
		QueueSize: 4, Jobs: 1,
		Runner: blockingRunner(started, release),
	})
	_, first := postJob(t, ts, Spec{Synth: "sb-a"})
	<-started
	_, second := postJob(t, ts, Spec{Synth: "sb-a"})

	if _, err := m.Cancel(second.ID); err != nil {
		t.Fatal(err)
	}
	j2, _ := m.Get(second.ID)
	if st := j2.State(); st != StateCanceled {
		t.Fatalf("queued job state after cancel = %v, want canceled immediately", st)
	}

	close(release) // let job 1 finish; the worker must skip the canceled job 2
	j1, _ := m.Get(first.ID)
	waitState(t, j1, StateDone, 5*time.Second)
	if st := j2.State(); st != StateCanceled {
		t.Errorf("canceled job was run anyway: state = %v", st)
	}
}

func TestPanicRecovery(t *testing.T) {
	m, _ := newTestServer(t, Options{
		Runner: func(ctx context.Context, j *Job) error {
			if j.Spec.Seed == 666 {
				panic("boom")
			}
			return nil
		},
	})
	bad, err := m.Submit(Spec{Synth: "sb-a", Seed: 666})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, bad, StateFailed, 5*time.Second)
	if msg := bad.Err(); !strings.Contains(msg, "panicked: boom") {
		t.Errorf("panic job error = %q", msg)
	}
	// The worker survived the panic and still serves jobs.
	good, err := m.Submit(Spec{Synth: "sb-a"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, good, StateDone, 5*time.Second)
}

func TestGracefulShutdownDrains(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	m := mustManager(t, Options{
		QueueSize: 4, Jobs: 1,
		Runner: blockingRunner(started, release),
	})
	j1, err := m.Submit(Spec{Synth: "sb-a"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j2, err := m.Submit(Spec{Synth: "sb-a"})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- m.Shutdown(ctx)
	}()

	// Draining: new submissions are refused, queued work still runs.
	waitFor(t, 5*time.Second, func() bool {
		_, err := m.Submit(Spec{Synth: "sb-a"})
		return errors.Is(err, ErrShuttingDown)
	})
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown = %v, want clean drain", err)
	}
	if j1.State() != StateDone || j2.State() != StateDone {
		t.Errorf("after drain: j1=%v j2=%v, want both done", j1.State(), j2.State())
	}
}

func TestShutdownDeadlineCancelsStragglers(t *testing.T) {
	started := make(chan string, 1)
	m := mustManager(t, Options{
		Runner: blockingRunner(started, nil), // only cancelable via ctx
	})
	j, err := m.Submit(Spec{Synth: "sb-a"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	waitState(t, j, StateCanceled, 5*time.Second)
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", "{", http.StatusBadRequest},
		{"unknown field", `{"bogus": 1}`, http.StatusBadRequest},
		{"no design source", `{}`, http.StatusBadRequest},
		{"two design sources", `{"synth": "sb-a", "generate": {}}`, http.StatusBadRequest},
		{"unknown benchmark", `{"synth": "nope"}`, http.StatusBadRequest},
		{"path jobs disabled", `{"aux": "x.aux"}`, http.StatusBadRequest},
		{"bad placer config", `{"synth": "sb-a", "config": {"Model": "bogus"}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	for _, path := range []string{"/jobs/job-999999", "/jobs/job-999999/events", "/jobs/job-999999/report"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestAuxPathAllowlist(t *testing.T) {
	m := mustManager(t, Options{AllowDir: t.TempDir()})
	defer shutdownNow(m)
	for _, aux := range []string{"../../etc/passwd", "/etc/passwd", "a/../../b.aux"} {
		if _, err := m.Submit(Spec{Aux: aux}); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Submit(aux=%q) err = %v, want ErrBadSpec", aux, err)
		}
	}
}

func TestInlineFilesRejectNestedNames(t *testing.T) {
	m := mustManager(t, Options{})
	defer shutdownNow(m)
	_, err := m.Submit(Spec{Files: map[string]string{"../x.nodes": ""}})
	if !errors.Is(err, ErrBadSpec) {
		t.Errorf("nested inline name: err = %v, want ErrBadSpec", err)
	}
}

// TestMalformedInlineDesignIs400 pins the 400-vs-500 contract: a broken
// .nodes line surfaces as ErrBadSpec with file:line context.
func TestMalformedInlineDesignIs400(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	spec := Spec{Files: map[string]string{
		"t.nodes": "UCLA nodes 1.0\nc0 4\n", // missing height
		"t.nets":  "UCLA nets 1.0\n",
	}}
	resp, _ := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed .nodes: status = %d, want 400", resp.StatusCode)
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	m, ts := newTestServer(t, Options{
		Runner: func(ctx context.Context, j *Job) error { return nil },
	})
	j, err := m.Submit(Spec{Synth: "sb-a"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone, 5*time.Second)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`placerd_jobs_total{state="done"} 1`,
		"placerd_queue_capacity 16",
		"placerd_job_duration_seconds_count 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	json.NewDecoder(hz.Body).Decode(&health)
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Errorf("/healthz = %d %q", hz.StatusCode, health.Status)
	}
}

func TestListOrdersBySubmission(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	defer close(release)
	m, _ := newTestServer(t, Options{
		QueueSize: 8, Jobs: 1,
		Runner: blockingRunner(started, release),
	})
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := m.Submit(Spec{Synth: "sb-a"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	jobs := m.List()
	if len(jobs) != 3 {
		t.Fatalf("List returned %d jobs", len(jobs))
	}
	for i, j := range jobs {
		if j.ID != ids[i] {
			t.Errorf("List[%d] = %s, want %s (submission order)", i, j.ID, ids[i])
		}
	}
}

func waitState(t *testing.T, j *Job, want State, timeout time.Duration) {
	t.Helper()
	waitFor(t, timeout, func() bool { return j.State() == want })
	if st := j.State(); st != want {
		t.Fatalf("job %s state = %v, want %v (err %q)", j.ID, st, want, j.Err())
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached before timeout")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func shutdownNow(m *Manager) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	m.Shutdown(ctx)
}
