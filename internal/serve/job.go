// Package serve is the placement-as-a-service layer: a job manager that
// runs Bookshelf placement jobs from a bounded FIFO queue on a fixed-size
// worker pool, and an HTTP JSON API (cmd/placerd) exposing the job
// lifecycle — submit, status, cancel, live progress over Server-Sent
// Events, and artifact download (versioned JSON run report, placed .pl,
// congestion heatmap SVGs).
//
// The lifecycle state machine is:
//
//	queued ──► running ──► done
//	   │           ├─────► failed    (error or per-job panic)
//	   └───────────┴─────► canceled  (DELETE /jobs/{id} or timeout)
//
// Backpressure is explicit: a full queue rejects the submission
// (ErrQueueFull → HTTP 429 + Retry-After) instead of buffering without
// bound. Cancellation rides the context plumbing through core.Placer and
// the router, so a canceled job returns within a fraction of one GP
// round. Progress streaming taps internal/obs's OnEvent subscriber; every
// per-round GP/route sample is fanned out to any number of SSE clients
// with full replay for late joiners.
package serve

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/eco"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/snap"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Spec describes one placement job. Exactly one of Aux, Synth, Generate
// and Files must select the design.
type Spec struct {
	// Aux is the path of a Bookshelf .aux on the server's filesystem.
	// Only honored when the manager was configured with an allow
	// directory, and only for paths inside it.
	Aux string `json:"aux,omitempty"`
	// Synth names a built-in synthetic benchmark (sb-a..sb-e, congested).
	Synth string `json:"synth,omitempty"`
	// Seed overrides the synthetic benchmark seed (Synth only).
	Seed int64 `json:"seed,omitempty"`
	// Generate is an inline synthetic-design configuration.
	Generate *gen.Config `json:"generate,omitempty"`
	// Files is an inline Bookshelf bundle: file name → contents. An .aux
	// member is synthesized when the bundle does not include one.
	Files map[string]string `json:"files,omitempty"`

	// Config is the placer configuration (zero value = full flow).
	Config core.Config `json:"config"`
	// TimeoutMS bounds the job's run time; 0 means no per-job timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Heatmaps captures per-round congestion heatmaps for the heatmap
	// endpoints (opt-in: memory-proportional to rounds × tiles).
	Heatmaps bool `json:"heatmaps,omitempty"`
	// Evaluate globally routes the final placement and scores RC/sHPWL
	// into the report metrics, like cmd/placer -evaluate.
	Evaluate bool `json:"evaluate,omitempty"`
	// Checkpoint is an encoded snap.State the job resumes from instead of
	// starting the flow fresh (base64 in JSON). The fleet coordinator uses
	// it to hand a reassigned job's last journaled checkpoint to the new
	// worker; it is rejected on the coordinator's own public API.
	Checkpoint []byte `json:"checkpoint,omitempty"`

	// BaseJob makes this a delta (ECO) job: the completed job's placement
	// seeds this run, and only the changed neighborhoods are re-placed
	// (out-of-reach deltas fall back to a full place — see the report's
	// eco block). BaseFingerprint resolves the base from the artifact
	// store's eco-base index instead (hex design fingerprint of the base
	// input, as printed by `evaluate -fingerprint`); it requires a state
	// directory and a completed run of that design on this server. At
	// most one of the two may be set, and neither combines with
	// Checkpoint.
	BaseJob         string `json:"base_job,omitempty"`
	BaseFingerprint string `json:"base_fingerprint,omitempty"`
}

// Job is one submitted placement run.
type Job struct {
	// ID is the server-assigned job identifier. Immutable.
	ID string
	// Spec is the submitted specification. Immutable.
	Spec Spec

	broker *broker

	// journal persists the job's lifecycle (nil without a state dir).
	journal *jobJournal
	// resume holds the checkpoint a recovered job restarts from (nil for
	// fresh runs).
	resume *snap.State
	// storeKey addresses the job's result in the artifact store ("" when
	// caching is off or the key could not be derived).
	storeKey string
	// congSource and switchover are the resolved routability congestion
	// source of the job's effective config (manager defaults applied) —
	// see core.Config.ResolvedCongestion. Immutable, set at creation.
	congSource string
	switchover int

	// ecoBase is the resolved base placement of a delta (ECO) job, set at
	// submission (nil for from-scratch jobs).
	ecoBase *ecoBase
	// inputFP is the submitted design's canonical fingerprint, captured
	// before the run mutates positions — the eco-base index key a future
	// delta job resolves this result by. Zero when no design was loaded.
	inputFP [32]byte
	hasFP   bool

	mu        sync.Mutex
	state     State
	errMsg    string
	cached    bool // result served from the artifact store
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    func() // non-nil while running
	design    *db.Design
	report    []byte
	pl        []byte
	heatmaps  []obs.Heatmap
	trace     []byte
	quality   *QualityStatus
	eco       *obs.EcoSummary
}

// ecoBase is the resolved base placement a delta job repairs against.
type ecoBase struct {
	// jobID or fingerprint records how the base was referenced (for the
	// report's eco block).
	jobID       string
	fingerprint string
	// pl is the base placement; design is the base netlist when the base
	// job is still live on this server (enables the full netlist diff —
	// a bare placement can only diff by name presence).
	pl     *eco.Placement
	design *db.Design
}

// QualityStatus is the legality summary exposed on completed job status.
type QualityStatus struct {
	Overlaps        int `json:"overlaps"`
	FenceViolations int `json:"fence_violations"`
	OutOfDie        int `json:"out_of_die"`
}

// Status is the JSON view of a job's lifecycle.
type Status struct {
	ID        string     `json:"id"`
	State     State      `json:"state"`
	Design    string     `json:"design,omitempty"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	// DurationMS is run time (running: so far; terminal: total).
	DurationMS float64 `json:"duration_ms,omitempty"`
	// Events is the number of progress events published so far.
	Events int `json:"events"`
	// Cached marks a job whose result was served from the artifact store
	// without running the placer.
	Cached bool `json:"cached,omitempty"`
	// CongestionSource is the routability loop's resolved congestion
	// signal for this job: "route", "estimate", or empty when
	// routability is disabled (manager-level defaults already applied).
	CongestionSource string `json:"congestion_source,omitempty"`
	// SwitchoverRound is the zero-based routability round at which an
	// "estimate" job switches back to the real router (absent for
	// "route" jobs, which route every round).
	SwitchoverRound int `json:"switchover_round,omitempty"`
	// Quality summarizes the final placement's legality (completed jobs
	// only): overlaps, fence violations, out-of-die cells.
	Quality *QualityStatus `json:"quality,omitempty"`
	// Eco describes the incremental path of a delta job (absent for
	// from-scratch jobs).
	Eco *obs.EcoSummary `json:"eco,omitempty"`
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the failure/cancellation message ("" otherwise).
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// Status snapshots the job for the API.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:               j.ID,
		State:            j.state,
		Error:            j.errMsg,
		Submitted:        j.submitted,
		Events:           j.broker.len(),
		Cached:           j.cached,
		CongestionSource: j.congSource,
		SwitchoverRound:  j.switchover,
	}
	if j.design != nil {
		st.Design = j.design.Name
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.DurationMS = float64(end.Sub(j.started)) / float64(time.Millisecond)
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	st.Quality = j.quality
	st.Eco = j.eco
	return st
}

// setOutcome records the final quality and (for delta jobs) the eco
// summary surfaced on job status.
func (j *Job) setOutcome(q *QualityStatus, e *obs.EcoSummary) {
	j.mu.Lock()
	j.quality = q
	j.eco = e
	j.mu.Unlock()
}

// Report returns the final JSON run report (nil until terminal; canceled
// jobs still carry a report with the canceled marker when the run got far
// enough to assemble one).
func (j *Job) Report() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// ResultPl returns the placed .pl bytes (nil until done).
func (j *Job) ResultPl() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pl
}

// Heatmaps returns the captured congestion heatmaps (nil unless the spec
// asked for them and the job completed).
func (j *Job) Heatmaps() []obs.Heatmap {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.heatmaps
}

// Trace returns the Chrome trace-event JSON rendered from the run report
// (nil until terminal).
func (j *Job) Trace() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// Events exposes the job's progress stream: the events from seq `from`
// on, whether the stream is complete, and a channel closed on the next
// publish (see broker.since).
func (j *Job) Events(from int) ([]Event, bool, <-chan struct{}) {
	return j.broker.since(from)
}

// Resume returns the checkpoint the job should restart from: the one
// recovered from its journal after a daemon restart, or the one carried in
// Spec.Checkpoint by a fleet reassignment. Nil for fresh runs.
func (j *Job) Resume() *snap.State { return j.resume }

// PublishObs feeds a telemetry event into the job's progress stream — the
// hook a custom Options.Runner uses to emit gp/route rounds the way the
// default placement body does through its recorder.
func (j *Job) PublishObs(e obs.Event) { j.broker.publishObs(e) }

// SetArtifacts stores the run outputs (report JSON, placed .pl, captured
// heatmaps, Chrome trace). The default placement body calls it before the
// job turns terminal so a client woken by the terminal event always sees
// them; custom runners use it the same way.
func (j *Job) SetArtifacts(report, pl []byte, heatmaps []obs.Heatmap, trace []byte) {
	j.mu.Lock()
	j.report = report
	j.pl = pl
	j.heatmaps = heatmaps
	j.trace = trace
	j.mu.Unlock()
}

// SaveCheckpoint journals a placement checkpoint for the job. Without a
// state directory it is a no-op: checkpoints only exist where they can
// survive the process. The write is atomic, so a concurrent
// CheckpointBytes read never sees a torn file.
func (j *Job) SaveCheckpoint(st *snap.State) error {
	if j.journal == nil {
		return nil
	}
	return snap.WriteFile(j.journal.checkpointPath(), st)
}

// CheckpointBytes returns the job's latest journaled checkpoint, nil when
// none was taken (or the manager has no state directory). The fleet
// coordinator polls this through GET /jobs/{id}/checkpoint so a reassigned
// job can resume on another worker.
func (j *Job) CheckpointBytes() []byte {
	if j.journal == nil {
		return nil
	}
	return readFileOrNil(j.journal.checkpointPath())
}

// setRunning transitions queued → running, installing the cancel hook.
// It returns false when the job is no longer queued (canceled while
// waiting), in which case the worker must skip it.
func (j *Job) setRunning(cancel func()) bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	j.broker.publish(Event{Type: EventState, State: StateRunning})
	return true
}

// finish moves the job to a terminal state, publishes the terminal event
// and completes the progress stream. It returns false if the job was
// already terminal.
func (j *Job) finish(state State, errMsg string) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	j.cancel = nil
	j.mu.Unlock()
	j.broker.publish(Event{Type: EventState, State: state, Error: errMsg})
	j.broker.closeStream()
	if j.journal != nil {
		j.journal.close()
	}
	return true
}

// requestCancel cancels the job: queued jobs transition to canceled
// immediately, running jobs get their context canceled (the worker
// finishes the transition). Terminal jobs are left untouched. The state
// after the call is returned.
func (j *Job) requestCancel() State {
	j.mu.Lock()
	switch {
	case j.state == StateQueued:
		j.mu.Unlock()
		j.finish(StateCanceled, "canceled while queued")
		return StateCanceled
	case j.state == StateRunning && j.cancel != nil:
		cancel := j.cancel
		j.mu.Unlock()
		cancel()
		return StateRunning
	default:
		st := j.state
		j.mu.Unlock()
		return st
	}
}
