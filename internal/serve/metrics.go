package serve

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// stats aggregates the operational counters /metrics exports.
type stats struct {
	running  atomic.Int64
	done     atomic.Int64
	failed   atomic.Int64
	canceled atomic.Int64
	resumed  atomic.Int64 // jobs resumed from a journaled checkpoint
	latency  *histogram
}

func (s *stats) finish(state State, dur time.Duration) {
	switch state {
	case StateDone:
		s.done.Add(1)
	case StateFailed:
		s.failed.Add(1)
	case StateCanceled:
		s.canceled.Add(1)
	}
	s.latency.observe(dur.Seconds())
}

// histogram is a fixed-bucket cumulative histogram in the Prometheus
// exposition shape (le-labeled upper bounds, +Inf implicit in count).
type histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // one per bound; +Inf bucket is n
	sum    float64
	n      int64
}

func newHistogram() *histogram {
	return &histogram{
		bounds: []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120},
		counts: make([]int64, 10),
	}
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
		}
	}
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// writeMetrics renders the Prometheus text exposition for the manager.
func (m *Manager) writeMetrics(w io.Writer) {
	fmt.Fprintf(w, "# HELP placerd_queue_depth Jobs waiting in the bounded FIFO queue.\n")
	fmt.Fprintf(w, "# TYPE placerd_queue_depth gauge\n")
	fmt.Fprintf(w, "placerd_queue_depth %d\n", m.QueueDepth())
	fmt.Fprintf(w, "# HELP placerd_queue_capacity Queue capacity (submissions beyond it get 429).\n")
	fmt.Fprintf(w, "# TYPE placerd_queue_capacity gauge\n")
	fmt.Fprintf(w, "placerd_queue_capacity %d\n", m.QueueCap())
	fmt.Fprintf(w, "# HELP placerd_jobs_running Jobs currently executing.\n")
	fmt.Fprintf(w, "# TYPE placerd_jobs_running gauge\n")
	fmt.Fprintf(w, "placerd_jobs_running %d\n", m.stats.running.Load())
	fmt.Fprintf(w, "# HELP placerd_jobs_total Jobs finished, by terminal state.\n")
	fmt.Fprintf(w, "# TYPE placerd_jobs_total counter\n")
	fmt.Fprintf(w, "placerd_jobs_total{state=\"done\"} %d\n", m.stats.done.Load())
	fmt.Fprintf(w, "placerd_jobs_total{state=\"failed\"} %d\n", m.stats.failed.Load())
	fmt.Fprintf(w, "placerd_jobs_total{state=\"canceled\"} %d\n", m.stats.canceled.Load())
	fmt.Fprintf(w, "# HELP placerd_jobs_resumed_total Jobs resumed from a journaled checkpoint after a restart.\n")
	fmt.Fprintf(w, "# TYPE placerd_jobs_resumed_total counter\n")
	fmt.Fprintf(w, "placerd_jobs_resumed_total %d\n", m.stats.resumed.Load())

	if m.store != nil {
		st := m.store.Stats()
		fmt.Fprintf(w, "# HELP placerd_store_hits_total Artifact-store lookups served from cache.\n")
		fmt.Fprintf(w, "# TYPE placerd_store_hits_total counter\n")
		fmt.Fprintf(w, "placerd_store_hits_total %d\n", st.Hits)
		fmt.Fprintf(w, "# HELP placerd_store_misses_total Artifact-store lookups that missed.\n")
		fmt.Fprintf(w, "# TYPE placerd_store_misses_total counter\n")
		fmt.Fprintf(w, "placerd_store_misses_total %d\n", st.Misses)
		fmt.Fprintf(w, "# HELP placerd_store_evictions_total Entries evicted to honor the store size bound.\n")
		fmt.Fprintf(w, "# TYPE placerd_store_evictions_total counter\n")
		fmt.Fprintf(w, "placerd_store_evictions_total %d\n", st.Evictions)
		fmt.Fprintf(w, "# HELP placerd_store_corruptions_total Entries quarantined after a checksum mismatch.\n")
		fmt.Fprintf(w, "# TYPE placerd_store_corruptions_total counter\n")
		fmt.Fprintf(w, "placerd_store_corruptions_total %d\n", st.Corruptions)
		fmt.Fprintf(w, "# HELP placerd_store_entries Entries currently cached.\n")
		fmt.Fprintf(w, "# TYPE placerd_store_entries gauge\n")
		fmt.Fprintf(w, "placerd_store_entries %d\n", st.Entries)
		fmt.Fprintf(w, "# HELP placerd_store_bytes Artifact bytes currently cached.\n")
		fmt.Fprintf(w, "# TYPE placerd_store_bytes gauge\n")
		fmt.Fprintf(w, "placerd_store_bytes %d\n", st.Bytes)
	}

	h := m.stats.latency
	h.mu.Lock()
	fmt.Fprintf(w, "# HELP placerd_job_duration_seconds Job wall-clock run time.\n")
	fmt.Fprintf(w, "# TYPE placerd_job_duration_seconds histogram\n")
	for i, b := range h.bounds {
		fmt.Fprintf(w, "placerd_job_duration_seconds_bucket{le=\"%g\"} %d\n", b, h.counts[i])
	}
	fmt.Fprintf(w, "placerd_job_duration_seconds_bucket{le=\"+Inf\"} %d\n", h.n)
	fmt.Fprintf(w, "placerd_job_duration_seconds_sum %g\n", h.sum)
	fmt.Fprintf(w, "placerd_job_duration_seconds_count %d\n", h.n)
	h.mu.Unlock()
}
