package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/obs"
	"repro/internal/obs/hist"
)

// stats aggregates the operational counters /metrics exports.
type stats struct {
	running  atomic.Int64
	done     atomic.Int64
	failed   atomic.Int64
	canceled atomic.Int64
	resumed  atomic.Int64 // jobs resumed from a journaled checkpoint
	latency  *hist.Histogram

	// stages histograms per-stage placement seconds, keyed by the root
	// span name the flow emits (gp, routability, legalize, dp, route, …).
	stageMu sync.Mutex
	stages  map[string]*hist.Histogram
}

func (s *stats) finish(state State, dur time.Duration) {
	switch state {
	case StateDone:
		s.done.Add(1)
	case StateFailed:
		s.failed.Add(1)
	case StateCanceled:
		s.canceled.Add(1)
	}
	s.latency.Observe(dur.Seconds())
}

// observeStages folds a finished job's report into the per-stage
// duration histograms: one observation per top-level stage span.
func (s *stats) observeStages(rep *obs.Report) {
	if rep == nil {
		return
	}
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	for _, sp := range rep.Spans {
		h := s.stages[sp.Name]
		if h == nil {
			if s.stages == nil {
				s.stages = make(map[string]*hist.Histogram)
			}
			h = hist.New(hist.LatencySeconds())
			s.stages[sp.Name] = h
		}
		h.Observe(sp.DurMS / 1e3)
	}
}

// buildInfoLabels renders the placerd_build_info label set once: the Go
// toolchain version plus the VCS revision when the binary carries one
// (shared with the -version flag through internal/buildinfo).
var buildInfoLabels = sync.OnceValue(func() string {
	return fmt.Sprintf("go_version=%q,revision=%q", buildinfo.GoVersion(), buildinfo.Revision())
})

// writeMetrics renders the Prometheus text exposition for the manager.
func (m *Manager) writeMetrics(w io.Writer) {
	fmt.Fprintf(w, "# HELP placerd_build_info Build metadata (constant 1).\n")
	fmt.Fprintf(w, "# TYPE placerd_build_info gauge\n")
	fmt.Fprintf(w, "placerd_build_info{%s} 1\n", buildInfoLabels())
	fmt.Fprintf(w, "# HELP placerd_queue_depth Jobs waiting in the bounded FIFO queue.\n")
	fmt.Fprintf(w, "# TYPE placerd_queue_depth gauge\n")
	fmt.Fprintf(w, "placerd_queue_depth %d\n", m.QueueDepth())
	fmt.Fprintf(w, "# HELP placerd_queue_capacity Queue capacity (submissions beyond it get 429).\n")
	fmt.Fprintf(w, "# TYPE placerd_queue_capacity gauge\n")
	fmt.Fprintf(w, "placerd_queue_capacity %d\n", m.QueueCap())
	fmt.Fprintf(w, "# HELP placerd_jobs_running Jobs currently executing.\n")
	fmt.Fprintf(w, "# TYPE placerd_jobs_running gauge\n")
	fmt.Fprintf(w, "placerd_jobs_running %d\n", m.stats.running.Load())
	fmt.Fprintf(w, "# HELP placerd_jobs_total Jobs finished, by terminal state.\n")
	fmt.Fprintf(w, "# TYPE placerd_jobs_total counter\n")
	fmt.Fprintf(w, "placerd_jobs_total{state=\"done\"} %d\n", m.stats.done.Load())
	fmt.Fprintf(w, "placerd_jobs_total{state=\"failed\"} %d\n", m.stats.failed.Load())
	fmt.Fprintf(w, "placerd_jobs_total{state=\"canceled\"} %d\n", m.stats.canceled.Load())
	fmt.Fprintf(w, "# HELP placerd_jobs_resumed_total Jobs resumed from a journaled checkpoint after a restart.\n")
	fmt.Fprintf(w, "# TYPE placerd_jobs_resumed_total counter\n")
	fmt.Fprintf(w, "placerd_jobs_resumed_total %d\n", m.stats.resumed.Load())

	if m.store != nil {
		st := m.store.Stats()
		fmt.Fprintf(w, "# HELP placerd_store_hits_total Artifact-store lookups served from cache.\n")
		fmt.Fprintf(w, "# TYPE placerd_store_hits_total counter\n")
		fmt.Fprintf(w, "placerd_store_hits_total %d\n", st.Hits)
		fmt.Fprintf(w, "# HELP placerd_store_misses_total Artifact-store lookups that missed.\n")
		fmt.Fprintf(w, "# TYPE placerd_store_misses_total counter\n")
		fmt.Fprintf(w, "placerd_store_misses_total %d\n", st.Misses)
		fmt.Fprintf(w, "# HELP placerd_store_evictions_total Entries evicted to honor the store size bound.\n")
		fmt.Fprintf(w, "# TYPE placerd_store_evictions_total counter\n")
		fmt.Fprintf(w, "placerd_store_evictions_total %d\n", st.Evictions)
		fmt.Fprintf(w, "# HELP placerd_store_corruptions_total Entries quarantined after a checksum mismatch.\n")
		fmt.Fprintf(w, "# TYPE placerd_store_corruptions_total counter\n")
		fmt.Fprintf(w, "placerd_store_corruptions_total %d\n", st.Corruptions)
		fmt.Fprintf(w, "# HELP placerd_store_entries Entries currently cached.\n")
		fmt.Fprintf(w, "# TYPE placerd_store_entries gauge\n")
		fmt.Fprintf(w, "placerd_store_entries %d\n", st.Entries)
		fmt.Fprintf(w, "# HELP placerd_store_bytes Artifact bytes currently cached.\n")
		fmt.Fprintf(w, "# TYPE placerd_store_bytes gauge\n")
		fmt.Fprintf(w, "placerd_store_bytes %d\n", st.Bytes)
	}

	fmt.Fprintf(w, "# HELP placerd_job_duration_seconds Job wall-clock run time.\n")
	fmt.Fprintf(w, "# TYPE placerd_job_duration_seconds histogram\n")
	m.stats.latency.WriteProm(w, "placerd_job_duration_seconds", "")

	m.stats.stageMu.Lock()
	names := make([]string, 0, len(m.stats.stages))
	for name := range m.stats.stages {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintf(w, "# HELP placerd_stage_seconds Per-stage placement wall time, labeled by flow stage.\n")
		fmt.Fprintf(w, "# TYPE placerd_stage_seconds histogram\n")
		for _, name := range names {
			m.stats.stages[name].WriteProm(w, "placerd_stage_seconds", fmt.Sprintf("stage=%q", name))
		}
	}
	m.stats.stageMu.Unlock()

	// Go runtime gauges, sampled through the same runtime/metrics reader
	// span attribution uses.
	rt := obs.ReadRuntimeSnapshot()
	fmt.Fprintf(w, "# HELP go_goroutines Goroutines currently live.\n")
	fmt.Fprintf(w, "# TYPE go_goroutines gauge\n")
	fmt.Fprintf(w, "go_goroutines %d\n", rt.Goroutines)
	fmt.Fprintf(w, "# HELP go_heap_live_bytes Bytes of live heap objects.\n")
	fmt.Fprintf(w, "# TYPE go_heap_live_bytes gauge\n")
	fmt.Fprintf(w, "go_heap_live_bytes %d\n", rt.HeapLiveBytes)
	fmt.Fprintf(w, "# HELP go_alloc_bytes_total Cumulative heap bytes allocated.\n")
	fmt.Fprintf(w, "# TYPE go_alloc_bytes_total counter\n")
	fmt.Fprintf(w, "go_alloc_bytes_total %d\n", rt.TotalAllocBytes)
	fmt.Fprintf(w, "# HELP go_gc_cycles_total Completed GC cycles.\n")
	fmt.Fprintf(w, "# TYPE go_gc_cycles_total counter\n")
	fmt.Fprintf(w, "go_gc_cycles_total %d\n", rt.GCCycles)
	fmt.Fprintf(w, "# HELP go_gc_pause_seconds_total Approximate cumulative GC stop-the-world pause time.\n")
	fmt.Fprintf(w, "# TYPE go_gc_pause_seconds_total counter\n")
	fmt.Fprintf(w, "go_gc_pause_seconds_total %g\n", rt.GCPauseSeconds)
	fmt.Fprintf(w, "# HELP go_cpu_seconds_total Approximate process CPU time per runtime/metrics.\n")
	fmt.Fprintf(w, "# TYPE go_cpu_seconds_total counter\n")
	fmt.Fprintf(w, "go_cpu_seconds_total %g\n", rt.CPUSeconds)
}
