package serve

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// A delta job referencing a done base job with an identical design must
// reproduce the base placement exactly (empty diff → full reuse) and
// surface the eco annotation on status and report.
func TestDeltaJobAgainstBaseJob(t *testing.T) {
	m, ts := newTestServer(t, Options{Workers: 1})

	spec := Spec{Generate: tinyGen(), Config: core.Config{Workers: 1, DisableDP: true}}
	baseJob, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, baseJob, StateDone, 120*time.Second)
	if q := baseJob.Status().Quality; q == nil {
		t.Error("done base job status has no quality block")
	} else if q.Overlaps != 0 || q.FenceViolations != 0 || q.OutOfDie != 0 {
		t.Errorf("base job not legal: %+v", q)
	}

	delta := spec
	delta.BaseJob = baseJob.ID
	resp, sub := postJob(t, ts, delta)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("delta submit status = %d", resp.StatusCode)
	}
	dj, err := m.Get(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, dj, StateDone, 120*time.Second)

	st := dj.Status()
	if st.Eco == nil {
		t.Fatal("delta job status has no eco block")
	}
	if st.Eco.BaseJob != baseJob.ID || st.Eco.ReuseRatio != 1 || st.Eco.ChangedCells != 0 || st.Eco.FellBack {
		t.Errorf("eco block = %+v, want full reuse of %s", st.Eco, baseJob.ID)
	}
	if st.Quality == nil || st.Quality.Overlaps != 0 || st.Quality.OutOfDie != 0 {
		t.Errorf("delta job quality = %+v", st.Quality)
	}
	if !bytes.Equal(dj.ResultPl(), baseJob.ResultPl()) {
		t.Error("empty-diff delta job .pl differs from the base job's")
	}
	var rep struct {
		Eco *struct {
			ReuseRatio float64 `json:"reuse_ratio"`
		} `json:"eco"`
	}
	if err := json.Unmarshal(dj.Report(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Eco == nil || rep.Eco.ReuseRatio != 1 {
		t.Errorf("report eco block = %+v", rep.Eco)
	}
}

// A delta job referencing a cached base by design fingerprint resolves
// through the artifact store's eco-base index.
func TestDeltaJobAgainstBaseFingerprint(t *testing.T) {
	dir := t.TempDir()
	m, _ := newTestServer(t, Options{Workers: 1, StateDir: dir})

	spec := persistSpec()
	baseJob, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, baseJob, StateDone, 120*time.Second)

	d, err := gen.Generate(*tinyGen())
	if err != nil {
		t.Fatal(err)
	}
	fp := d.Fingerprint()

	delta := spec
	delta.BaseFingerprint = hex.EncodeToString(fp[:])
	dj, err := m.Submit(delta)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, dj, StateDone, 120*time.Second)
	st := dj.Status()
	if st.Eco == nil || st.Eco.BaseFingerprint != delta.BaseFingerprint {
		t.Fatalf("eco block = %+v, want base fingerprint %s", st.Eco, delta.BaseFingerprint)
	}
	if st.Eco.ReuseRatio != 1 || st.Eco.FellBack {
		t.Errorf("identical design should fully reuse the cached base: %+v", st.Eco)
	}
	if !bytes.Equal(dj.ResultPl(), baseJob.ResultPl()) {
		t.Error("delta .pl differs from the cached base placement")
	}
}

// A delta that is out of windowed repair's reach must fall back to the
// full flow and say so, not fail.
func TestDeltaJobFallsBackToFullPlace(t *testing.T) {
	m, _ := newTestServer(t, Options{Workers: 1})

	spec := Spec{Generate: tinyGen(), Config: core.Config{Workers: 1, DisableDP: true}}
	baseJob, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, baseJob, StateDone, 120*time.Second)

	// A different generator seed is a structurally different netlist:
	// nearly every cell diffs changed, forcing the full-place fallback.
	other := *tinyGen()
	other.Seed = 999
	delta := Spec{Generate: &other, Config: core.Config{Workers: 1, DisableDP: true}, BaseJob: baseJob.ID}
	dj, err := m.Submit(delta)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, dj, StateDone, 120*time.Second)
	st := dj.Status()
	if st.Eco == nil || !st.Eco.FellBack {
		t.Fatalf("eco block = %+v, want fell_back", st.Eco)
	}
	if st.Quality == nil || st.Quality.Overlaps != 0 || st.Quality.OutOfDie != 0 {
		t.Errorf("fallback quality = %+v", st.Quality)
	}
}

// Bad base references are client errors, rejected at submission.
func TestDeltaJobValidation(t *testing.T) {
	m, _ := newTestServer(t, Options{Workers: 1}) // no StateDir: no store

	spec := Spec{Generate: tinyGen(), Config: core.Config{Workers: 1, DisableDP: true}}
	for name, bad := range map[string]func(*Spec){
		"both base_job and base_fingerprint": func(s *Spec) {
			s.BaseJob = "job-000001"
			s.BaseFingerprint = "00"
		},
		"unknown base job": func(s *Spec) { s.BaseJob = "job-999999" },
		"fingerprint without store": func(s *Spec) {
			s.BaseFingerprint = "0000000000000000000000000000000000000000000000000000000000000000"
		},
	} {
		s := spec
		bad(&s)
		if _, err := m.Submit(s); !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: Submit err = %v, want ErrBadSpec", name, err)
		}
	}

	// A queued (not done) base job is rejected too.
	base, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := spec
	s.BaseJob = base.ID
	if base.State() == StateQueued || base.State() == StateRunning {
		if _, err := m.Submit(s); !errors.Is(err, ErrBadSpec) {
			t.Errorf("non-done base job: Submit err = %v, want ErrBadSpec", err)
		}
	}
	waitState(t, base, StateDone, 120*time.Second)
}
