package serve

import (
	"bytes"
	"context"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/eco"
	"repro/internal/obs"
	"repro/internal/snap"
	"repro/internal/store"
)

// ecoBaseKey addresses a design's latest successful placement in the
// artifact store, keyed only by the input fingerprint. This is the
// eco-base index a BaseFingerprint delta job resolves against: unlike the
// dedup key it ignores the config, so whichever config last placed the
// design wins the slot.
func ecoBaseKey(fp [32]byte) string { return store.Key(fp, []byte("eco-base")) }

// resolveEcoBase resolves a delta job's base placement at submission time,
// so a bad base is rejected with a 400 instead of failing the job later.
// Returns (nil, nil) for from-scratch jobs.
func (m *Manager) resolveEcoBase(spec Spec, resume *snap.State) (*ecoBase, error) {
	if spec.BaseJob == "" && spec.BaseFingerprint == "" {
		return nil, nil
	}
	if spec.BaseJob != "" && spec.BaseFingerprint != "" {
		return nil, fmt.Errorf("%w: base_job and base_fingerprint are mutually exclusive", ErrBadSpec)
	}
	if resume != nil {
		return nil, fmt.Errorf("%w: a delta job cannot also carry a checkpoint", ErrBadSpec)
	}

	if spec.BaseJob != "" {
		bj, err := m.Get(spec.BaseJob)
		if err != nil {
			return nil, fmt.Errorf("%w: base job %q not found", ErrBadSpec, spec.BaseJob)
		}
		if st := bj.State(); st != StateDone {
			return nil, fmt.Errorf("%w: base job %q is %s, want done", ErrBadSpec, spec.BaseJob, st)
		}
		raw := bj.ResultPl()
		if len(raw) == 0 {
			return nil, fmt.Errorf("%w: base job %q has no result placement", ErrBadSpec, spec.BaseJob)
		}
		pl, err := eco.ReadPl(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("serve: parsing base job %q placement: %w", spec.BaseJob, err)
		}
		// The base job's design carries its final placed positions (the
		// job body places in-place), giving the differ full connectivity.
		return &ecoBase{jobID: spec.BaseJob, pl: pl, design: bj.design}, nil
	}

	if m.store == nil {
		return nil, fmt.Errorf("%w: base_fingerprint requires a state directory (artifact store)", ErrBadSpec)
	}
	raw, err := hex.DecodeString(spec.BaseFingerprint)
	if err != nil || len(raw) != 32 {
		return nil, fmt.Errorf("%w: base_fingerprint must be the 64-hex-digit design fingerprint", ErrBadSpec)
	}
	var fp [32]byte
	copy(fp[:], raw)
	arts, ok, err := m.store.Get(ecoBaseKey(fp))
	if err != nil || !ok || len(arts[ResultFile]) == 0 {
		return nil, fmt.Errorf("%w: no cached base placement for fingerprint %s", ErrBadSpec, spec.BaseFingerprint)
	}
	pl, err := eco.ReadPl(bytes.NewReader(arts[ResultFile]))
	if err != nil {
		return nil, fmt.Errorf("serve: parsing cached base placement %s: %w", spec.BaseFingerprint, err)
	}
	return &ecoBase{fingerprint: spec.BaseFingerprint, pl: pl}, nil
}

// placeEco is the delta-job body: diff against the base, transfer the
// reusable positions, repair only the changed neighborhoods. A delta out
// of windowed repair's reach (macro change, dirty fraction too large)
// falls back to the full from-scratch flow and marks the eco summary
// accordingly — the job still succeeds, it just pays full price.
func (m *Manager) placeEco(ctx context.Context, j *Job, placer *core.Placer, d *db.Design, cfg core.Config, rec *obs.Recorder) (core.Result, *obs.EcoSummary, error) {
	eb := j.ecoBase
	var df *eco.Diff
	if eb.design != nil {
		df = eco.DiffDesigns(eb.design, d)
	} else {
		df = eco.DiffPlacement(d, eb.pl)
	}
	sum := &obs.EcoSummary{
		BaseJob: eb.jobID, BaseFingerprint: eb.fingerprint,
		ChangedCells: df.ChangedCells(), ReuseRatio: df.ReuseRatio(),
	}
	t0 := time.Now()
	eres, err := eco.Place(d, df, eb.pl, eco.Options{Workers: cfg.Workers, Obs: rec})
	switch {
	case err == eco.ErrNeedFull:
		m.opt.Logger.Info("eco delta out of reach, running full place", "job", j.ID,
			"changed_cells", df.ChangedCells(), "removed", len(df.RemovedNames), "macro_delta", df.MacroDelta)
		sum.FellBack = true
		res, perr := placer.PlaceContext(ctx, d)
		return res, sum, perr
	case err != nil:
		return core.Result{}, sum, err
	}
	sum.Windows = len(eres.Windows)
	sum.ReuseRatio = eres.ReuseRatio
	m.opt.Logger.Info("eco repair done", "job", j.ID,
		"changed_cells", eres.ChangedCells, "windows", len(eres.Windows),
		"reuse_ratio", eres.ReuseRatio, "dur", time.Since(t0))
	return core.Result{
		HPWLFinal:       eres.HPWL,
		Overlaps:        eres.Overlaps,
		FenceViolations: eres.FenceViolations,
		OutOfDie:        eres.OutOfDie,
		LegalTime:       eres.LegalTime,
		DPTime:          eres.DPTime,
	}, sum, nil
}
