package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"testing"
)

// terminalJob submits a no-op job and waits until it is done, returning
// its id and total event count (queued, running, done = 3).
func terminalJob(t *testing.T, m *Manager) (string, int) {
	t.Helper()
	j, err := m.Submit(Spec{Synth: "sb-a"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	return j.ID, j.broker.len()
}

func waitTerminal(t *testing.T, j *Job) {
	t.Helper()
	from := 0
	for {
		evs, done, sig := j.Events(from)
		from += len(evs)
		if done {
			return
		}
		<-sig
	}
}

// TestSSEFromNegativeRejected: a negative offset is a client mistake and
// must be a 400, not an open stream.
func TestSSEFromNegativeRejected(t *testing.T) {
	m, ts := newTestServer(t, Options{Runner: func(ctx context.Context, j *Job) error { return nil }})
	id, _ := terminalJob(t, m)
	for _, q := range []string{"-1", "-999", "notanumber"} {
		resp, err := http.Get(ts.URL + "/jobs/" + id + "/events?from=" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("from=%s status = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestSSEFromAtEndTerminal: from == len on a terminal job must complete
// immediately with an empty replay — the client is already caught up.
func TestSSEFromAtEndTerminal(t *testing.T) {
	m, ts := newTestServer(t, Options{Runner: func(ctx context.Context, j *Job) error { return nil }})
	id, total := terminalJob(t, m)
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/events?from=" + strconv.Itoa(total))
	if err != nil {
		t.Fatal(err)
	}
	evs := readSSE(t, resp.Body)
	resp.Body.Close()
	if len(evs) != 0 {
		t.Errorf("from=%d on terminal job replayed %d events, want 0", total, len(evs))
	}
}

// TestSSEFromPastEndTerminal: an offset beyond the log of a terminal job
// also ends cleanly with nothing — not a hang, not an error.
func TestSSEFromPastEndTerminal(t *testing.T) {
	m, ts := newTestServer(t, Options{Runner: func(ctx context.Context, j *Job) error { return nil }})
	id, total := terminalJob(t, m)
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/events?from=" + strconv.Itoa(total+50))
	if err != nil {
		t.Fatal(err)
	}
	evs := readSSE(t, resp.Body)
	resp.Body.Close()
	if len(evs) != 0 {
		t.Errorf("from=past-end on terminal job replayed %d events, want 0", len(evs))
	}
}

// TestSSEFromPastEndLive: an offset at the current end of a LIVE job must
// block until events with seq ≥ from are published, then deliver exactly
// those — no replay of earlier events, no skips.
func TestSSEFromPastEndLive(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	m, ts := newTestServer(t, Options{Runner: blockingRunner(started, release)})
	j, err := m.Submit(Spec{Synth: "sb-a"})
	if err != nil {
		t.Fatal(err)
	}
	<-started // events so far: queued (0), running (1)

	// Subscribe at the live end: seq 2 does not exist yet.
	resp, err := http.Get(ts.URL + "/jobs/" + j.ID + "/events?from=2")
	if err != nil {
		t.Fatal(err)
	}
	close(release) // job finishes → done event gets seq 2
	evs := readSSE(t, resp.Body)
	resp.Body.Close()
	if len(evs) != 1 {
		t.Fatalf("live from=end delivered %d events, want exactly the terminal one", len(evs))
	}
	if evs[0].data.Seq != 2 || evs[0].data.Type != EventState || evs[0].data.State != StateDone {
		t.Errorf("live from=end delivered %+v, want seq 2 state done", evs[0].data)
	}
}

// TestQueueFullBody: the 429 rejection must carry the live queue gauges
// in its JSON body (alongside the Retry-After header) so clients can
// size their backoff.
func TestQueueFullBody(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	defer close(release)
	_, ts := newTestServer(t, Options{
		QueueSize: 2, Jobs: 1,
		Runner: blockingRunner(started, release),
	})

	if resp, _ := postJob(t, ts, Spec{Synth: "sb-a"}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1 = %d", resp.StatusCode)
	}
	<-started // running; queue empty
	for i := 2; i <= 3; i++ {
		if resp, _ := postJob(t, ts, Spec{Synth: "sb-a"}); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d = %d", i, resp.StatusCode)
		}
	}

	body, _ := json.Marshal(Spec{Synth: "sb-a"})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.QueueDepth != 2 || eb.QueueCap != 2 {
		t.Errorf("429 body gauges = depth %d cap %d, want 2/2", eb.QueueDepth, eb.QueueCap)
	}
	if eb.Error == "" {
		t.Error("429 body has no error message")
	}
}
