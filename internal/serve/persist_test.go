package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/snap"
	"repro/internal/store"
)

// persistSpec is the real-placement job spec the durability tests share:
// deterministic (fixed worker count) and fast (tiny design, no DP).
func persistSpec() Spec {
	return Spec{
		Generate: tinyGen(),
		Config:   core.Config{Workers: 1, DisableDP: true},
	}
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestRestartServesTerminalJobs runs a real placement job to completion,
// shuts the manager down cleanly, reopens the same state directory as a
// fresh process would, and checks the old job is fully served from the
// journal: status, report, result and the complete SSE replay with
// working ?from= offsets.
func TestRestartServesTerminalJobs(t *testing.T) {
	dir := t.TempDir()

	m1 := mustManager(t, Options{StateDir: dir})
	j, err := m1.Submit(persistSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone, 60*time.Second)
	wantReport := j.Report()
	wantPl := j.ResultPl()
	evs, done, _ := j.Events(0)
	if !done || len(evs) < 3 {
		t.Fatalf("first run stream: done=%v events=%d", done, len(evs))
	}
	wantEvents := len(evs)
	shutdownNow(m1)

	// "Restart": a new manager over the same state directory.
	m2 := mustManager(t, Options{StateDir: dir})
	ts := httptest.NewServer(NewServer(m2, ServerOptions{}))
	defer ts.Close()
	defer shutdownNow(m2)

	r, err := m2.Get(j.ID)
	if err != nil {
		t.Fatalf("recovered manager lost job %s: %v", j.ID, err)
	}
	if r.State() != StateDone {
		t.Fatalf("recovered job state = %v, want done", r.State())
	}
	if !bytes.Equal(r.Report(), wantReport) {
		t.Error("recovered report differs from the original")
	}
	if !bytes.Equal(r.ResultPl(), wantPl) {
		t.Error("recovered result.pl differs from the original")
	}
	if len(j.Trace()) == 0 || !bytes.Equal(r.Trace(), j.Trace()) {
		t.Error("recovered trace missing or differs from the original")
	}

	// Full SSE replay over HTTP, then a tail via ?from= — the journaled
	// sequence numbers must line up with the SSE ids.
	code, _ := getBody(t, ts.URL+"/jobs/"+j.ID)
	if code != http.StatusOK {
		t.Fatalf("status endpoint = %d", code)
	}
	es, err := http.Get(ts.URL + "/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	replay := readSSE(t, es.Body)
	es.Body.Close()
	if len(replay) != wantEvents {
		t.Fatalf("replay after restart returned %d events, original run had %d", len(replay), wantEvents)
	}
	for i, e := range replay {
		if e.id != fmt.Sprint(i) {
			t.Fatalf("replay event %d has SSE id %q", i, e.id)
		}
	}
	if last := replay[len(replay)-1]; last.event != EventState || last.data.State != StateDone {
		t.Errorf("replay ends with %q/%v, want terminal done", last.event, last.data.State)
	}
	tail, err := http.Get(ts.URL + "/jobs/" + j.ID + fmt.Sprintf("/events?from=%d", wantEvents-1))
	if err != nil {
		t.Fatal(err)
	}
	tailEvs := readSSE(t, tail.Body)
	tail.Body.Close()
	if len(tailEvs) != 1 || tailEvs[0].id != fmt.Sprint(wantEvents-1) {
		t.Errorf("?from=%d returned %d events (first id %q), want exactly the terminal one",
			wantEvents-1, len(tailEvs), tailEvs[0].id)
	}

	// New submissions continue the ID sequence instead of reusing job IDs.
	j2, err := m2.Submit(Spec{Synth: "sb-a", Config: core.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID <= j.ID {
		t.Errorf("post-restart job ID %s does not continue after %s", j2.ID, j.ID)
	}
	if _, err := m2.Cancel(j2.ID); err != nil {
		t.Fatal(err)
	}
}

// manufactureJobDir writes the journal of a job that was mid-run when the
// process died: a spec plus an event log ending in the running state.
func manufactureJobDir(t *testing.T, stateDir, id string, spec Spec) string {
	t.Helper()
	dir := filepath.Join(stateDir, "jobs", id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	rec := jobRecord{ID: id, Submitted: time.Now().Add(-time.Minute), Spec: spec}
	sb, err := json.Marshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, specFile), sb, 0o644); err != nil {
		t.Fatal(err)
	}
	log := `{"seq":0,"type":"state","state":"queued"}` + "\n" +
		`{"seq":1,"type":"state","state":"running"}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, eventsFile), []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestRestartRequeuesInterruptedJob recovers a journal whose event log
// stops at "running" (a crash), re-runs the job, and checks the event
// sequence continues from the journaled offset.
func TestRestartRequeuesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	manufactureJobDir(t, dir, "job-000007", Spec{Synth: "sb-a"})

	m := mustManager(t, Options{
		Runner:   func(ctx context.Context, j *Job) error { return nil },
		StateDir: dir,
	})
	defer shutdownNow(m)

	j, err := m.Get("job-000007")
	if err != nil {
		t.Fatalf("interrupted job not recovered: %v", err)
	}
	waitState(t, j, StateDone, 10*time.Second)

	evs, done, _ := j.Events(0)
	if !done {
		t.Error("stream not complete after re-run")
	}
	// Journaled queued+running, then the re-run's running+done: seqs 0..3.
	if len(evs) != 4 {
		t.Fatalf("event log has %d events after re-run, want 4 (journaled 2 + running + done)", len(evs))
	}
	for i, e := range evs {
		if e.Seq != i {
			t.Fatalf("event %d carries seq %d — restart broke ?from= offsets", i, e.Seq)
		}
	}
	if evs[3].State != StateDone {
		t.Errorf("final event state = %v, want done", evs[3].State)
	}

	// The continuation was journaled too: a second restart sees all 4.
	shutdownNow(m)
	got := readEventLog(filepath.Join(dir, "jobs", "job-000007", eventsFile))
	if len(got) != 4 {
		t.Errorf("journal holds %d events after re-run, want 4", len(got))
	}

	// ID allocation continues past the recovered job.
	m2 := mustManager(t, Options{
		Runner:   func(ctx context.Context, j *Job) error { return nil },
		StateDir: dir,
	})
	defer shutdownNow(m2)
	j2, err := m2.Submit(Spec{Synth: "sb-a"})
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID != "job-000008" {
		t.Errorf("post-recovery ID = %s, want job-000008", j2.ID)
	}
	waitState(t, j2, StateDone, 10*time.Second)
}

// TestRestartResumesFromCheckpoint plants a mid-GP checkpoint in an
// interrupted job's journal and checks the restarted manager resumes the
// placement from it (rather than starting over) and completes the job.
func TestRestartResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	spec := persistSpec()
	jobDir := manufactureJobDir(t, dir, "job-000001", spec)

	// Produce a genuine checkpoint of this exact job: same generated
	// design, same config, killed at the third λ round.
	d := gen.MustGenerate(*spec.Generate)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := spec.Config
	var ckBlob []byte
	cfg.Checkpoint = func(st *snap.State) {
		if st.Stage == snap.StageGP && st.Round >= 3 {
			ckBlob = snap.Encode(st)
			cancel()
		}
	}
	if _, err := core.MustNew(cfg).PlaceContext(ctx, d); !errors.Is(err, context.Canceled) {
		t.Fatalf("checkpoint producer err = %v, want canceled", err)
	}
	st, err := snap.Decode(ckBlob)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobDir, checkpointFile), ckBlob, 0o644); err != nil {
		t.Fatal(err)
	}

	m := mustManager(t, Options{StateDir: dir})
	ts := httptest.NewServer(NewServer(m, ServerOptions{}))
	defer ts.Close()
	defer shutdownNow(m)

	j, err := m.Get("job-000001")
	if err != nil {
		t.Fatal(err)
	}
	if j.resume == nil || j.resume.Round != st.Round {
		t.Fatalf("recovered job resume state = %+v, want checkpoint at round %d", j.resume, st.Round)
	}
	waitState(t, j, StateDone, 60*time.Second)
	if j.Report() == nil || j.ResultPl() == nil {
		t.Error("resumed job has no artifacts")
	}

	_, body := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(body), "placerd_jobs_resumed_total 1") {
		t.Errorf("/metrics missing placerd_jobs_resumed_total 1:\n%s",
			grepLines(string(body), "resumed"))
	}
}

// TestDuplicateSubmissionServedFromStore is the dedup e2e: the second
// submission of an identical spec is answered from the artifact store —
// born done, zero placer events, byte-identical artifacts — and the store
// hit shows up in /metrics.
func TestDuplicateSubmissionServedFromStore(t *testing.T) {
	dir := t.TempDir()
	m, ts := newTestServer(t, Options{StateDir: dir})

	j1, err := m.Submit(persistSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, StateDone, 60*time.Second)
	if j1.Status().Cached {
		t.Fatal("first submission claims to be cached")
	}

	j2, err := m.Submit(persistSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Born done: no waiting, no placer run.
	if st := j2.Status(); st.State != StateDone || !st.Cached {
		t.Fatalf("duplicate submission status = %+v, want done+cached instantly", st)
	}
	if !bytes.Equal(j2.Report(), j1.Report()) {
		t.Error("cached report differs from the original")
	}
	if !bytes.Equal(j2.ResultPl(), j1.ResultPl()) {
		t.Error("cached result.pl differs from the original")
	}
	if len(j1.Trace()) == 0 || !bytes.Equal(j2.Trace(), j1.Trace()) {
		t.Error("cached trace missing or differs from the original")
	}
	evs, done, _ := j2.Events(0)
	if !done || len(evs) != 1 || evs[0].Type != EventState || !evs[0].Cached {
		t.Fatalf("cached job stream = %d events (done=%v), want exactly one cached terminal event", len(evs), done)
	}

	// A different config is a different key: no false sharing.
	other := persistSpec()
	other.Config.MaxLambdaRounds = 3
	j3, err := m.Submit(other)
	if err != nil {
		t.Fatal(err)
	}
	if j3.Status().Cached {
		t.Fatal("different config was served from cache")
	}
	waitState(t, j3, StateDone, 60*time.Second)

	// Three entries: the two distinct (design, config) results plus the
	// eco-base index entry both runs share (same input fingerprint, so
	// the second run overwrote the first's slot).
	_, body := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		"placerd_store_hits_total 1",
		"placerd_store_entries 3",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, grepLines(string(body), "store"))
		}
	}

	// The cached job survives a restart like any other terminal job.
	shutdownNow(m)
	m2 := mustManager(t, Options{StateDir: dir})
	defer shutdownNow(m2)
	r, err := m2.Get(j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Status()
	if st.State != StateDone || !st.Cached {
		t.Errorf("recovered cached job status = %+v, want done+cached", st)
	}
	if !bytes.Equal(r.Report(), j1.Report()) {
		t.Error("recovered cached report differs")
	}
}

// TestStateDirLockedByLiveManager pins single-writer exclusion: two live
// managers must not share a state directory.
func TestStateDirLockedByLiveManager(t *testing.T) {
	dir := t.TempDir()
	m := mustManager(t, Options{StateDir: dir})
	defer shutdownNow(m)
	if _, err := NewManager(Options{StateDir: dir}); !errors.Is(err, store.ErrLocked) {
		t.Fatalf("second NewManager on a live state dir: err = %v, want store.ErrLocked", err)
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
