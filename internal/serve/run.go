package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/bookshelf"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/route"
)

// placeJob is the default job body: it places the job's design with a
// live-streaming telemetry recorder, optionally routes and scores the
// result, and stores the artifacts (versioned JSON report, .pl bytes,
// heatmaps). On cancellation it still assembles and stores the report —
// with the canceled marker set — so clients always get a post-mortem of
// how far the run got.
func (m *Manager) placeJob(ctx context.Context, j *Job) error {
	d := j.design
	if d == nil {
		return errors.New("serve: job has no design (internal error)")
	}
	rec := obs.New(obs.Config{
		Logger:          m.opt.Logger.With("job", j.ID),
		CaptureHeatmaps: j.Spec.Heatmaps,
		OnEvent:         j.broker.publishObs,
	})
	cfg := j.Spec.Config
	if cfg.Workers == 0 {
		cfg.Workers = m.opt.Workers
	}
	cfg.Obs = rec
	placer, err := core.New(cfg)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrBadSpec, err)
	}

	t0 := time.Now()
	res, placeErr := placer.PlaceContext(ctx, d)
	total := time.Since(t0)

	row := metrics.Row{
		Design: d.Name, Variant: "placerd",
		HPWL: res.HPWLFinal, Overflow: res.Overflow,
		Overlaps: res.Overlaps, FenceViol: res.FenceViolations,
		GPTime: res.GPTime, TotalTime: total,
	}
	if placeErr == nil && j.Spec.Evaluate && d.Route != nil {
		sc, err := route.EvaluateDesignCtx(ctx, d, route.RouterOptions{
			Workers: cfg.Workers, Obs: rec, TraceLabel: "evaluate",
		})
		if err != nil {
			placeErr = err
		} else {
			row.ScaledHPWL = sc.ScaledHPWL
			row.RC = sc.RC
			row.ACE = sc.ACE
		}
	}

	rep := rec.BuildReport()
	rep.Tool = "placerd"
	rep.Design = obs.DescribeDesign(d)
	rep.Config = cfg
	rep.Metrics = &row
	rep.Canceled = placeErr != nil &&
		(errors.Is(placeErr, context.Canceled) || errors.Is(placeErr, context.DeadlineExceeded))
	var repBuf bytes.Buffer
	if err := json.NewEncoder(&repBuf).Encode(rep); err != nil {
		return err
	}

	var pl []byte
	if placeErr == nil {
		var plBuf bytes.Buffer
		if err := bookshelf.WritePl(&plBuf, d); err != nil {
			return err
		}
		pl = plBuf.Bytes()
	}
	j.setArtifacts(repBuf.Bytes(), pl, rec.Heatmaps())
	return placeErr
}
