package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/bookshelf"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/snap"
)

// effectiveConfig is the job's config with the manager-level defaults
// applied — the config placeJob actually runs, the one the run report's
// config block records, and the one job-status congestion resolution
// reflects.
func (m *Manager) effectiveConfig(spec Spec) core.Config {
	cfg := spec.Config
	if cfg.Workers == 0 {
		cfg.Workers = m.opt.Workers
	}
	if cfg.CongestionSource == "" {
		cfg.CongestionSource = m.opt.CongestionSource
	}
	if cfg.RouteLastRounds == 0 {
		cfg.RouteLastRounds = m.opt.RouteLastRounds
	}
	return cfg
}

// placeJob is the default job body: it places the job's design with a
// live-streaming telemetry recorder, optionally routes and scores the
// result, and stores the artifacts (versioned JSON report, .pl bytes,
// heatmaps). On cancellation it still assembles and stores the report —
// with the canceled marker set — so clients always get a post-mortem of
// how far the run got.
func (m *Manager) placeJob(ctx context.Context, j *Job) error {
	d := j.design
	if d == nil {
		return errors.New("serve: job has no design (internal error)")
	}
	rec := obs.New(obs.Config{
		Logger:          m.opt.Logger.With("job", j.ID),
		CaptureHeatmaps: j.Spec.Heatmaps,
		SampleResources: true, // placerd reports always attribute stage cost
		OnEvent:         j.broker.publishObs,
	})
	cfg := m.effectiveConfig(j.Spec)
	cfg.Obs = rec
	if j.journal != nil {
		cfg.CheckpointEvery = m.opt.CheckpointEvery
		cfg.Checkpoint = func(st *snap.State) {
			if err := j.SaveCheckpoint(st); err != nil {
				m.opt.Logger.Warn("checkpoint write failed", "job", j.ID, "err", err)
			}
		}
	}
	placer, err := core.New(cfg)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrBadSpec, err)
	}

	t0 := time.Now()
	var res core.Result
	var placeErr error
	var ecoSum *obs.EcoSummary
	if j.ecoBase != nil {
		res, ecoSum, placeErr = m.placeEco(ctx, j, placer, d, cfg, rec)
	} else if j.resume != nil {
		// Recovered job with a journaled checkpoint: resume mid-flow. A
		// resume rejected up front (e.g. the reloaded design no longer
		// matches the checkpoint) falls back to a fresh run rather than
		// failing the job.
		m.stats.resumed.Add(1)
		m.opt.Logger.Info("resuming job from checkpoint", "job", j.ID,
			"stage", j.resume.Stage.String(), "round", j.resume.Round)
		res, placeErr = placer.PlaceFromCheckpoint(ctx, d, j.resume)
		if placeErr != nil && ctx.Err() == nil {
			m.opt.Logger.Warn("resume failed, restarting from scratch", "job", j.ID, "err", placeErr)
			res, placeErr = placer.PlaceContext(ctx, d)
		}
	} else {
		res, placeErr = placer.PlaceContext(ctx, d)
	}
	total := time.Since(t0)

	row := metrics.Row{
		Design: d.Name, Variant: "placerd",
		HPWL: res.HPWLFinal, Overflow: res.Overflow,
		Overlaps: res.Overlaps, FenceViol: res.FenceViolations, OutOfDie: res.OutOfDie,
		GPTime: res.GPTime, TotalTime: total,
	}
	if placeErr == nil && j.Spec.Evaluate && d.Route != nil {
		sc, err := route.EvaluateDesignCtx(ctx, d, route.RouterOptions{
			Workers: cfg.Workers, Obs: rec, TraceLabel: "evaluate",
		})
		if err != nil {
			placeErr = err
		} else {
			row.ScaledHPWL = sc.ScaledHPWL
			row.RC = sc.RC
			row.ACE = sc.ACE
		}
	}

	rep := rec.BuildReport()
	rep.Tool = "placerd"
	rep.Design = obs.DescribeDesign(d)
	rep.Config = cfg
	rep.Metrics = &row
	rep.Eco = ecoSum
	if placeErr == nil {
		j.setOutcome(&QualityStatus{
			Overlaps:        res.Overlaps,
			FenceViolations: res.FenceViolations,
			OutOfDie:        res.OutOfDie,
		}, ecoSum)
	} else {
		j.setOutcome(nil, ecoSum)
	}
	rep.Canceled = placeErr != nil &&
		(errors.Is(placeErr, context.Canceled) || errors.Is(placeErr, context.DeadlineExceeded))
	m.stats.observeStages(rep)
	var repBuf bytes.Buffer
	if err := json.NewEncoder(&repBuf).Encode(rep); err != nil {
		return err
	}
	var traceBuf bytes.Buffer
	if err := rep.WriteChromeTrace(&traceBuf); err != nil {
		return err
	}

	var pl []byte
	if placeErr == nil {
		var plBuf bytes.Buffer
		if err := bookshelf.WritePl(&plBuf, d); err != nil {
			return err
		}
		pl = plBuf.Bytes()
	}
	heats := rec.Heatmaps()
	j.SetArtifacts(repBuf.Bytes(), pl, heats, traceBuf.Bytes())

	var heatsJSON []byte
	if j.Spec.Heatmaps && len(heats) > 0 {
		heatsJSON, _ = json.Marshal(heats)
	}
	if j.journal != nil {
		j.journal.saveArtifact(ReportFile, repBuf.Bytes())
		j.journal.saveArtifact(ResultFile, pl)
		j.journal.saveArtifact(HeatmapsFile, heatsJSON)
		j.journal.saveArtifact(TraceFile, traceBuf.Bytes())
	}
	// A successfully completed run feeds the artifact store, so the next
	// identical submission is answered from disk.
	if placeErr == nil && m.store != nil && j.storeKey != "" {
		arts := map[string][]byte{
			ReportFile: repBuf.Bytes(),
			ResultFile: pl,
			TraceFile:  traceBuf.Bytes(),
		}
		if heatsJSON != nil {
			arts[HeatmapsFile] = heatsJSON
		}
		if err := m.store.Put(j.storeKey, arts); err != nil {
			m.opt.Logger.Warn("artifact store put failed", "job", j.ID, "err", err)
		}
	}
	// Index the placed result under the input fingerprint so a future
	// delta job can reference it by base_fingerprint alone.
	if placeErr == nil && m.store != nil && j.hasFP && len(pl) > 0 {
		if err := m.store.Put(ecoBaseKey(j.inputFP), map[string][]byte{ResultFile: pl}); err != nil {
			m.opt.Logger.Warn("eco-base store put failed", "job", j.ID, "err", err)
		}
	}
	return placeErr
}
