package serve

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestStatusCongestionSource pins that job status surfaces the resolved
// routability congestion source and switchover round — spec-level config
// first, daemon-level default as fallback, and the documented JSON field
// names.
func TestStatusCongestionSource(t *testing.T) {
	noop := func(ctx context.Context, j *Job) error { return nil }

	t.Run("spec estimate", func(t *testing.T) {
		m := mustManager(t, Options{Runner: noop})
		j, err := m.Submit(Spec{Synth: "sb-a", Config: core.Config{
			CongestionSource: "estimate", RoutabilityIters: 4, RouteLastRounds: 1,
		}})
		if err != nil {
			t.Fatal(err)
		}
		st := j.Status()
		if st.CongestionSource != "estimate" {
			t.Errorf("congestion source = %q, want estimate", st.CongestionSource)
		}
		if st.SwitchoverRound != 3 {
			t.Errorf("switchover round = %d, want 3", st.SwitchoverRound)
		}
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(b), `"congestion_source":"estimate"`) ||
			!strings.Contains(string(b), `"switchover_round":3`) {
			t.Errorf("status JSON missing congestion fields: %s", b)
		}
	})

	t.Run("default route", func(t *testing.T) {
		m := mustManager(t, Options{Runner: noop})
		j, err := m.Submit(Spec{Synth: "sb-a"})
		if err != nil {
			t.Fatal(err)
		}
		if st := j.Status(); st.CongestionSource != "route" || st.SwitchoverRound != 0 {
			t.Errorf("got %q/%d, want route/0", st.CongestionSource, st.SwitchoverRound)
		}
	})

	t.Run("daemon default estimate", func(t *testing.T) {
		m := mustManager(t, Options{Runner: noop, CongestionSource: "estimate", RouteLastRounds: 1})
		j, err := m.Submit(Spec{Synth: "sb-a", Config: core.Config{RoutabilityIters: 3}})
		if err != nil {
			t.Fatal(err)
		}
		if st := j.Status(); st.CongestionSource != "estimate" || st.SwitchoverRound != 2 {
			t.Errorf("got %q/%d, want estimate/2", st.CongestionSource, st.SwitchoverRound)
		}
	})

	t.Run("fallback covers all rounds resolves to route", func(t *testing.T) {
		m := mustManager(t, Options{Runner: noop})
		j, err := m.Submit(Spec{Synth: "sb-a", Config: core.Config{
			CongestionSource: "estimate", RoutabilityIters: 2, RouteLastRounds: 2,
		}})
		if err != nil {
			t.Fatal(err)
		}
		if st := j.Status(); st.CongestionSource != "route" || st.SwitchoverRound != 0 {
			t.Errorf("got %q/%d, want route/0", st.CongestionSource, st.SwitchoverRound)
		}
	})

	t.Run("routability disabled", func(t *testing.T) {
		m := mustManager(t, Options{Runner: noop})
		j, err := m.Submit(Spec{Synth: "sb-a", Config: core.Config{DisableRoutability: true}})
		if err != nil {
			t.Fatal(err)
		}
		if st := j.Status(); st.CongestionSource != "" {
			t.Errorf("congestion source = %q, want empty (routability off)", st.CongestionSource)
		}
	})

	t.Run("report config block carries resolved defaults", func(t *testing.T) {
		// placeJob reports effectiveConfig (spec merged with daemon
		// defaults) as the run report's config section, so the report
		// must name the congestion source that actually drove the run.
		m := mustManager(t, Options{Runner: noop, CongestionSource: "estimate", RouteLastRounds: 1})
		cfg := m.effectiveConfig(Spec{Synth: "sb-a", Config: core.Config{RoutabilityIters: 3}})
		b, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(b), `"congestion_source":"estimate"`) ||
			!strings.Contains(string(b), `"route_last_rounds":1`) {
			t.Errorf("effective config JSON missing congestion fields: %s", b)
		}
	})

	t.Run("bad source rejected at submit", func(t *testing.T) {
		m := mustManager(t, Options{Runner: noop})
		if _, err := m.Submit(Spec{Synth: "sb-a", Config: core.Config{
			CongestionSource: "psychic",
		}}); err == nil {
			t.Fatal("submit accepted an unknown congestion source")
		}
	})
}
