package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bookshelf"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/obs/hist"
	"repro/internal/snap"
	"repro/internal/store"
)

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull rejects a submission because the bounded queue is at
	// capacity (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrShuttingDown rejects submissions during graceful drain (503).
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrBadSpec wraps client errors: malformed specs, disallowed paths,
	// unparsable designs (400).
	ErrBadSpec = errors.New("serve: bad job spec")
	// ErrUnknownJob is returned for lookups of nonexistent job IDs (404).
	ErrUnknownJob = errors.New("serve: unknown job")
)

// Options configures a Manager. The zero value is serviceable.
type Options struct {
	// QueueSize bounds the FIFO of jobs waiting to run (default 16).
	QueueSize int
	// Jobs is the number of jobs run concurrently (default 1: placement
	// is CPU-saturating; raise it on big hosts).
	Jobs int
	// Workers is the per-job kernel worker count applied when a job's
	// config leaves it automatic (0 keeps the shared internal/par
	// policy).
	Workers int
	// CongestionSource is the daemon-level default for the routability
	// loop's congestion signal ("route" or "estimate"), applied when a
	// job's config leaves it empty (see core.Config.CongestionSource).
	CongestionSource string
	// RouteLastRounds is the daemon-level default for the trailing
	// router rounds of "estimate" jobs, applied when a job's config
	// leaves it 0.
	RouteLastRounds int
	// AllowDir, when non-empty, permits Spec.Aux path jobs for .aux files
	// inside this directory tree. Empty disallows path jobs entirely.
	AllowDir string
	// StateDir, when non-empty, makes the manager durable: every job is
	// journaled under StateDir/jobs/<id> (spec, progress events,
	// checkpoints, artifacts), completed results are cached in a
	// content-addressed store under StateDir/store, identical
	// resubmissions are answered from that cache without running the
	// placer, and a restarted manager recovers journaled jobs — terminal
	// ones read-only, interrupted ones re-enqueued and resumed from their
	// last checkpoint. Empty keeps everything in memory.
	StateDir string
	// StoreMaxBytes bounds the artifact cache (0 = store.DefaultMaxBytes,
	// negative disables eviction). Ignored without StateDir.
	StoreMaxBytes int64
	// CheckpointEvery is the λ-round interval between job checkpoints
	// (default 1: every finest-level round). Ignored without StateDir.
	CheckpointEvery int
	// Logger receives job lifecycle logs (nil = discard).
	Logger *slog.Logger
	// Runner overrides the job body (tests). When set, Submit skips
	// design loading and the runner owns the whole job run; artifacts
	// are whatever it stores. The default runner places the design.
	Runner func(ctx context.Context, j *Job) error
}

func (o Options) withDefaults() Options {
	if o.QueueSize <= 0 {
		o.QueueSize = 16
	}
	if o.Jobs <= 0 {
		o.Jobs = 1
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	return o
}

// Manager owns the job table, the bounded queue and the worker pool.
type Manager struct {
	opt   Options
	queue chan *Job
	store *store.Store // nil without Options.StateDir

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // insertion order, for listing
	nextID int
	closed bool

	wg sync.WaitGroup

	stats stats
}

// NewManager builds a manager and starts its workers. With a state
// directory configured it first recovers journaled jobs from the previous
// process: terminal jobs come back read-only, interrupted ones are
// re-enqueued ahead of new submissions (the queue is widened so recovery
// can never overflow it).
func NewManager(opt Options) (*Manager, error) {
	opt = opt.withDefaults()
	m := &Manager{
		opt:  opt,
		jobs: make(map[string]*Job),
	}
	m.stats.latency = hist.New(hist.LatencySeconds())
	var pending []*Job
	if opt.StateDir != "" {
		var err error
		pending, err = m.initPersist()
		if err != nil {
			return nil, err
		}
	}
	m.queue = make(chan *Job, opt.QueueSize+len(pending))
	for _, j := range pending {
		m.queue <- j
	}
	for i := 0; i < opt.Jobs; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Submit validates the spec, loads its design, and enqueues a job.
// Returns ErrQueueFull when the queue is at capacity, ErrShuttingDown
// during drain, and an ErrBadSpec-wrapped error for client mistakes.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	if err := ValidateSpec(spec); err != nil {
		return nil, err
	}
	if _, err := core.New(spec.Config); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	var resume *snap.State
	if len(spec.Checkpoint) > 0 {
		st, err := snap.Decode(spec.Checkpoint)
		if err != nil {
			return nil, fmt.Errorf("%w: bad checkpoint: %w", ErrBadSpec, err)
		}
		resume = st
	}
	var d *db.Design
	if m.opt.Runner == nil {
		var err error
		d, err = m.loadDesign(spec)
		if err != nil {
			return nil, err
		}
	}
	eb, err := m.resolveEcoBase(spec, resume)
	if err != nil {
		return nil, err
	}

	// Dedup: an identical placement problem (same canonical design, same
	// effective config) whose result is already in the artifact store is
	// answered from disk — the job is born done and the placer never runs.
	storeKey := ""
	if m.store != nil && d != nil {
		key, err := m.dedupKey(d, spec)
		if err == nil {
			storeKey = key
			if arts, ok, _ := m.store.Get(key); ok {
				return m.cachedJob(spec, d, arts)
			}
		}
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrShuttingDown
	}
	m.nextID++
	j := &Job{
		ID:     fmt.Sprintf("job-%06d", m.nextID),
		Spec:   spec,
		broker: newBroker(),
	}
	j.state = StateQueued
	j.submitted = time.Now()
	j.design = d
	j.resume = resume
	j.ecoBase = eb
	if d != nil {
		j.inputFP = d.Fingerprint()
		j.hasFP = true
	}
	j.storeKey = storeKey
	j.congSource, j.switchover = m.effectiveConfig(spec).ResolvedCongestion()
	if m.opt.StateDir != "" {
		jj, err := openJobJournal(m.jobDir(j.ID))
		if err != nil {
			m.mu.Unlock()
			return nil, fmt.Errorf("serve: opening job journal: %w", err)
		}
		j.journal = jj
		j.broker.persist = jj.appendEvent
	}
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		if j.journal != nil {
			j.journal.close()
			os.RemoveAll(m.jobDir(j.ID))
		}
		return nil, ErrQueueFull
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.mu.Unlock()
	if j.journal != nil {
		if err := j.journal.writeSpec(jobRecord{ID: j.ID, Submitted: j.submitted, Spec: spec}); err != nil {
			m.opt.Logger.Warn("journal spec write failed", "job", j.ID, "err", err)
		}
	}
	j.broker.publish(Event{Type: EventState, State: StateQueued})
	m.opt.Logger.Info("job submitted", "job", j.ID, "design", designName(d, spec))
	return j, nil
}

func designName(d *db.Design, spec Spec) string {
	if d != nil {
		return d.Name
	}
	if spec.Synth != "" {
		return spec.Synth
	}
	return ""
}

// Get looks a job up by ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j, nil
}

// List returns all jobs in submission order.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel requests cancellation of a job. Queued jobs transition to
// canceled immediately; running jobs are canceled asynchronously through
// their context (observed within one GP round / reroute batch).
func (m *Manager) Cancel(id string) (*Job, error) {
	j, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	st := j.requestCancel()
	m.opt.Logger.Info("job cancel requested", "job", id, "state", st)
	return j, nil
}

// QueueDepth is the number of jobs waiting to run.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// QueueCap is the queue capacity (for metrics and Retry-After hints).
func (m *Manager) QueueCap() int { return cap(m.queue) }

// Running is the number of jobs currently executing.
func (m *Manager) Running() int { return int(m.stats.running.Load()) }

// Shutdown drains gracefully: no new submissions are accepted, queued
// and running jobs are given until ctx's deadline to finish, then
// everything still active is canceled. It returns ctx.Err() when the
// deadline forced cancellation, nil on a clean drain.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		m.closePersist()
		return nil
	case <-ctx.Done():
		for _, j := range m.List() {
			j.requestCancel()
		}
		<-done
		m.closePersist()
		return ctx.Err()
	}
}

// worker pulls jobs off the queue until it is closed and drained.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

// runJob executes one job with panic recovery and per-job timeout, and
// finishes its lifecycle.
func (m *Manager) runJob(j *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if j.Spec.TimeoutMS > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, time.Duration(j.Spec.TimeoutMS)*time.Millisecond)
		defer tcancel()
	}
	if !j.setRunning(cancel) {
		// Canceled while queued; its terminal event is already out.
		return
	}
	m.stats.running.Add(1)
	t0 := time.Now()
	err := m.runBody(ctx, j)
	dur := time.Since(t0)
	m.stats.running.Add(-1)

	state := StateDone
	msg := ""
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		state = StateCanceled
		msg = err.Error()
	default:
		state = StateFailed
		msg = err.Error()
	}
	j.finish(state, msg)
	m.stats.finish(state, dur)
	m.opt.Logger.Info("job finished", "job", j.ID, "state", state, "dur", dur, "err", msg)
}

// runBody dispatches to the configured runner, converting panics into
// errors so one bad job cannot take the worker (or the server) down.
func (m *Manager) runBody(ctx context.Context, j *Job) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("job panicked: %v\n%s", p, debug.Stack())
		}
	}()
	if m.opt.Runner != nil {
		return m.opt.Runner(ctx, j)
	}
	return m.placeJob(ctx, j)
}

// ValidateSpec enforces "exactly one design source". The fleet
// coordinator runs the same check at its edge so bad submissions are
// rejected before they touch a worker.
func ValidateSpec(spec Spec) error {
	n := 0
	for _, set := range []bool{spec.Aux != "", spec.Synth != "", spec.Generate != nil, len(spec.Files) > 0} {
		if set {
			n++
		}
	}
	if n != 1 {
		return fmt.Errorf("%w: exactly one of aux, synth, generate, files must be set (got %d)", ErrBadSpec, n)
	}
	return nil
}

// loadDesign materializes the spec's design against the manager's allow
// directory.
func (m *Manager) loadDesign(spec Spec) (*db.Design, error) {
	return LoadDesign(spec, m.opt.AllowDir)
}

// LoadDesign materializes the spec's design, classifying client mistakes
// as ErrBadSpec. Path (.aux) jobs are only honored inside allowDir; an
// empty allowDir disables them. The fleet coordinator shares this loader
// so its dedup fingerprints are computed over exactly the design a worker
// would place.
func LoadDesign(spec Spec, allowDir string) (*db.Design, error) {
	switch {
	case spec.Aux != "":
		path, err := allowedAux(spec.Aux, allowDir)
		if err != nil {
			return nil, err
		}
		d, err := bookshelf.ReadDesign(path)
		if err != nil {
			return nil, classifyLoadErr(err)
		}
		return d, nil
	case spec.Synth != "":
		cfg, ok := synthConfig(spec.Synth, spec.Seed)
		if !ok {
			return nil, fmt.Errorf("%w: unknown synthetic benchmark %q", ErrBadSpec, spec.Synth)
		}
		d, err := gen.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadSpec, err)
		}
		return d, nil
	case spec.Generate != nil:
		d, err := gen.Generate(*spec.Generate)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadSpec, err)
		}
		return d, nil
	default:
		return loadInline(spec.Files)
	}
}

// classifyLoadErr wraps Bookshelf bad-input failures in ErrBadSpec and
// passes environmental errors through.
func classifyLoadErr(err error) error {
	if bookshelf.IsBadInput(err) {
		return fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	return err
}

// synthConfig resolves a built-in benchmark name (mirrors cmd/placer).
func synthConfig(name string, seed int64) (gen.Config, bool) {
	for _, cfg := range gen.Suite() {
		if cfg.Name == name {
			if seed != 0 {
				cfg.Seed = seed
			}
			return cfg, true
		}
	}
	if name == "congested" {
		s := int64(1)
		if seed != 0 {
			s = seed
		}
		return gen.Congested(2000, s), true
	}
	return gen.Config{}, false
}

// allowedAux validates a path job against the allow directory.
func allowedAux(aux, allowDir string) (string, error) {
	if allowDir == "" {
		return "", fmt.Errorf("%w: path jobs are disabled (no allow directory configured)", ErrBadSpec)
	}
	root, err := filepath.Abs(allowDir)
	if err != nil {
		return "", err
	}
	path := aux
	if !filepath.IsAbs(path) {
		path = filepath.Join(root, path)
	}
	path = filepath.Clean(path)
	rel, err := filepath.Rel(root, path)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("%w: path %q is outside the allowed directory", ErrBadSpec, aux)
	}
	return path, nil
}

// loadInline writes an inline Bookshelf bundle to a temp directory,
// synthesizing an .aux when absent, and reads it back as a design.
func loadInline(files map[string]string) (*db.Design, error) {
	dir, err := os.MkdirTemp("", "placerd-job-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	aux := ""
	names := make([]string, 0, len(files))
	for name, content := range files {
		base := filepath.Base(name)
		if base != name || name == "." || name == string(filepath.Separator) {
			return nil, fmt.Errorf("%w: inline file name %q must be a bare file name", ErrBadSpec, name)
		}
		if err := os.WriteFile(filepath.Join(dir, base), []byte(content), 0o644); err != nil {
			return nil, err
		}
		if strings.HasSuffix(base, ".aux") {
			aux = base
		} else {
			names = append(names, base)
		}
	}
	if aux == "" {
		aux = "inline.aux"
		sort.Strings(names) // map order is random; keep the bundle deterministic
		line := "RowBasedPlacement : " + strings.Join(names, " ") + "\n"
		if err := os.WriteFile(filepath.Join(dir, aux), []byte(line), 0o644); err != nil {
			return nil, err
		}
	}
	d, err := bookshelf.ReadDesign(filepath.Join(dir, aux))
	if err != nil {
		return nil, classifyLoadErr(err)
	}
	return d, nil
}
