package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/snap"
	"repro/internal/store"
)

// Durable state layout under Options.StateDir:
//
//	jobs/<id>/spec.json        submission record (id, submit time, spec)
//	jobs/<id>/events.jsonl     progress log, one Event per line
//	jobs/<id>/checkpoint.snap  latest placement checkpoint (snap codec)
//	jobs/<id>/report.json      final run report
//	jobs/<id>/result.pl        placed .pl
//	jobs/<id>/heatmaps.json    captured heatmaps (when the spec asked)
//	jobs/<id>/trace.json       Chrome trace-event rendering of the report
//	store/                     content-addressed result cache (internal/store)
//
// Everything a restarted daemon needs to answer for old jobs — status,
// artifacts, the full SSE replay — comes out of the job directory; the
// store additionally lets a resubmission of the same placement problem be
// answered without running the placer at all.
const (
	specFile       = "spec.json"
	eventsFile     = "events.jsonl"
	checkpointFile = "checkpoint.snap"
)

// Artifact file names, shared between the job journal, the artifact store
// and the fleet coordinator (which fetches them from workers and caches
// them under the same names).
const (
	ReportFile   = "report.json"
	ResultFile   = "result.pl"
	HeatmapsFile = "heatmaps.json"
	TraceFile    = "trace.json"
)

// jobRecord is the durable form of a submission (spec.json).
type jobRecord struct {
	ID        string    `json:"id"`
	Submitted time.Time `json:"submitted"`
	Spec      Spec      `json:"spec"`
}

// jobJournal persists one job's lifecycle into its state directory. All
// writes are best-effort from the serving path's point of view: journal
// I/O failures degrade durability, never the job itself.
type jobJournal struct {
	dir string

	mu sync.Mutex
	f  *os.File // events.jsonl, append-only
}

// openJobJournal creates (or reopens, after a restart) a job directory.
// Reopening appends to the existing event log, which is what keeps SSE
// sequence numbers stable across restarts.
func openJobJournal(dir string) (*jobJournal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, eventsFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &jobJournal{dir: dir, f: f}, nil
}

// writeSpec records the submission (atomic: temp + rename).
func (jj *jobJournal) writeSpec(rec jobRecord) error {
	data, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		return err
	}
	return atomicWriteFile(filepath.Join(jj.dir, specFile), data)
}

// appendEvent journals one progress event. Called by the broker under its
// own lock, so the on-disk order is the publish order.
func (jj *jobJournal) appendEvent(e Event) {
	data, err := json.Marshal(&e)
	if err != nil {
		return
	}
	jj.mu.Lock()
	defer jj.mu.Unlock()
	if jj.f == nil {
		return
	}
	jj.f.Write(append(data, '\n'))
}

// saveArtifact persists one artifact file (nil data is a no-op).
func (jj *jobJournal) saveArtifact(name string, data []byte) {
	if data == nil {
		return
	}
	atomicWriteFile(filepath.Join(jj.dir, name), data)
}

// checkpointPath is where the job's placement checkpoints land.
func (jj *jobJournal) checkpointPath() string {
	return filepath.Join(jj.dir, checkpointFile)
}

// close releases the event-log handle. Idempotent.
func (jj *jobJournal) close() {
	jj.mu.Lock()
	defer jj.mu.Unlock()
	if jj.f != nil {
		jj.f.Sync()
		jj.f.Close()
		jj.f = nil
	}
}

func atomicWriteFile(path string, data []byte) error {
	return atomicfile.WriteFile(path, data, 0o644)
}

// jobDir is the state directory of one job.
func (m *Manager) jobDir(id string) string {
	return filepath.Join(m.opt.StateDir, "jobs", id)
}

// initPersist opens the durable state: the artifact store and the job
// journal root, then recovers journaled jobs. It returns the recovered
// jobs that still need to run (queued or interrupted mid-run).
func (m *Manager) initPersist() ([]*Job, error) {
	jobsDir := filepath.Join(m.opt.StateDir, "jobs")
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		return nil, err
	}
	st, err := store.Open(filepath.Join(m.opt.StateDir, "store"), store.Options{MaxBytes: m.opt.StoreMaxBytes})
	if err != nil {
		return nil, fmt.Errorf("serve: opening artifact store: %w", err)
	}
	m.store = st
	pending, err := m.recoverJobs(jobsDir)
	if err != nil {
		st.Close()
		m.store = nil
		return nil, err
	}
	return pending, nil
}

// recoverJobs rebuilds the job table from journaled state. Terminal jobs
// come back read-only with their artifacts and full event history;
// non-terminal jobs (queued, or running when the process died) are
// returned for re-enqueueing.
func (m *Manager) recoverJobs(jobsDir string) ([]*Job, error) {
	ents, err := os.ReadDir(jobsDir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range ents {
		if de.IsDir() {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names) // job-%06d sorts in submission order
	var pending []*Job
	for _, id := range names {
		j, runnable, err := m.recoverJob(id)
		if err != nil {
			m.opt.Logger.Warn("skipping unrecoverable job directory", "job", id, "err", err)
			continue
		}
		m.jobs[id] = j
		m.order = append(m.order, id)
		if n := idNumber(id); n > m.nextID {
			m.nextID = n
		}
		if runnable {
			pending = append(pending, j)
		}
		m.opt.Logger.Info("recovered job", "job", id, "state", j.State(), "requeued", runnable)
	}
	return pending, nil
}

// recoverJob rebuilds one job from its directory.
func (m *Manager) recoverJob(id string) (j *Job, runnable bool, err error) {
	dir := m.jobDir(id)
	data, err := os.ReadFile(filepath.Join(dir, specFile))
	if err != nil {
		return nil, false, err
	}
	var rec jobRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false, fmt.Errorf("bad %s: %w", specFile, err)
	}

	events := readEventLog(filepath.Join(dir, eventsFile))
	last := StateQueued
	errMsg := ""
	cached := false
	for _, e := range events {
		if e.Type == EventState {
			last = e.State
			errMsg = e.Error
			if e.Cached {
				cached = true
			}
		}
	}
	j = &Job{ID: id, Spec: rec.Spec, broker: newBrokerFrom(events)}
	j.submitted = rec.Submitted
	j.cached = cached
	j.congSource, j.switchover = m.effectiveConfig(rec.Spec).ResolvedCongestion()

	if last.Terminal() {
		j.state = last
		j.errMsg = errMsg
		j.report = readFileOrNil(filepath.Join(dir, ReportFile))
		j.pl = readFileOrNil(filepath.Join(dir, ResultFile))
		j.trace = readFileOrNil(filepath.Join(dir, TraceFile))
		if hb := readFileOrNil(filepath.Join(dir, HeatmapsFile)); hb != nil {
			json.Unmarshal(hb, &j.heatmaps)
		}
		j.broker.closeStream()
		return j, false, nil
	}

	// Interrupted job: reopen the journal (the event log keeps appending,
	// so SSE sequence numbers continue where the dead process stopped) and
	// re-enqueue. A checkpoint, when present and decodable, lets the run
	// resume mid-flow instead of starting over.
	jj, err := openJobJournal(dir)
	if err != nil {
		return nil, false, err
	}
	j.journal = jj
	j.broker.persist = jj.appendEvent
	j.state = StateQueued
	if m.opt.Runner == nil {
		d, lerr := m.loadDesign(rec.Spec)
		if lerr != nil {
			j.finish(StateFailed, fmt.Sprintf("design reload after restart failed: %v", lerr))
			return j, false, nil
		}
		j.design = d
		if key, kerr := m.dedupKey(d, rec.Spec); kerr == nil {
			j.storeKey = key
		}
		if sb, rerr := os.ReadFile(filepath.Join(dir, checkpointFile)); rerr == nil {
			if st, derr := snap.Decode(sb); derr == nil {
				j.resume = st
			} else {
				m.opt.Logger.Warn("ignoring corrupt checkpoint", "job", id, "err", derr)
			}
		}
	}
	return j, true, nil
}

// readEventLog parses events.jsonl, stopping at the first malformed line
// (a torn write from the crash that the recovery is cleaning up after).
func readEventLog(path string) []Event {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var out []Event
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			break
		}
		out = append(out, e)
	}
	return out
}

func readFileOrNil(path string) []byte {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	return data
}

// idNumber extracts the numeric suffix of a job-%06d identifier.
func idNumber(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	if err != nil {
		return 0
	}
	return n
}

// closePersist releases the artifact store's single-writer lock so a
// successor process (or test) can reopen the state directory.
func (m *Manager) closePersist() {
	if m.store != nil {
		m.store.Close()
	}
}
