package serve

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/store"
)

// dedupKey derives the artifact-store key for a submission against the
// manager's worker default.
func (m *Manager) dedupKey(d *db.Design, spec Spec) (string, error) {
	return DedupKey(d, spec, m.opt.Workers)
}

// DedupKey derives the artifact-store key for a submission: the design's
// canonical fingerprint plus everything about the spec that shapes the
// result — the effective placer config (with defaultWorkers applied when
// the spec leaves the worker count automatic, as placeJob would), the
// evaluate flag (it adds routed metrics to the report) and the heatmap
// flag (it adds an artifact). TimeoutMS and Checkpoint are deliberately
// excluded: they change when and where a job runs, not what a completed
// job produces. The fleet coordinator computes the same key so identical
// submissions short-circuit fleet-wide, not just per worker.
func DedupKey(d *db.Design, spec Spec, defaultWorkers int) (string, error) {
	cfg := spec.Config
	if cfg.Workers == 0 {
		cfg.Workers = defaultWorkers
	}
	// Delta (ECO) jobs key separately from full placements of the same
	// design: their result depends on the referenced base, and a windowed
	// repair must never be served as the cached answer to a from-scratch
	// submission (or vice versa).
	base := ""
	switch {
	case spec.BaseJob != "":
		base = "job:" + spec.BaseJob
	case spec.BaseFingerprint != "":
		base = "fp:" + spec.BaseFingerprint
	}
	blob, err := json.Marshal(struct {
		Design   string      `json:"design"`
		Config   core.Config `json:"config"`
		Evaluate bool        `json:"evaluate"`
		Heatmaps bool        `json:"heatmaps"`
		Base     string      `json:"base,omitempty"`
	}{d.Name, cfg, spec.Evaluate, spec.Heatmaps, base})
	if err != nil {
		return "", err
	}
	return store.Key(d.Fingerprint(), blob), nil
}

// cachedJob registers a job that is born done: the artifact store already
// holds the result of an identical submission, so the placer never runs.
// The job is journaled like any other (a restart lists it, terminal), and
// its progress stream is a single terminal event with the cached marker.
func (m *Manager) cachedJob(spec Spec, d *db.Design, arts map[string][]byte) (*Job, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrShuttingDown
	}
	m.nextID++
	now := time.Now()
	j := &Job{
		ID:     fmt.Sprintf("job-%06d", m.nextID),
		Spec:   spec,
		broker: newBroker(),
	}
	j.state = StateDone
	j.cached = true
	j.congSource, j.switchover = m.effectiveConfig(spec).ResolvedCongestion()
	j.submitted = now
	j.started = now
	j.finished = now
	j.design = d
	j.report = arts[ReportFile]
	j.pl = arts[ResultFile]
	j.trace = arts[TraceFile]
	if hb := arts[HeatmapsFile]; hb != nil {
		json.Unmarshal(hb, &j.heatmaps)
	}
	if m.opt.StateDir != "" {
		if jj, err := openJobJournal(m.jobDir(j.ID)); err == nil {
			j.journal = jj
			j.broker.persist = jj.appendEvent
		} else {
			m.opt.Logger.Warn("journal open failed for cached job", "job", j.ID, "err", err)
		}
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.mu.Unlock()

	if j.journal != nil {
		if err := j.journal.writeSpec(jobRecord{ID: j.ID, Submitted: now, Spec: spec}); err != nil {
			m.opt.Logger.Warn("journal spec write failed", "job", j.ID, "err", err)
		}
		j.journal.saveArtifact(ReportFile, j.report)
		j.journal.saveArtifact(ResultFile, j.pl)
		j.journal.saveArtifact(HeatmapsFile, arts[HeatmapsFile])
		j.journal.saveArtifact(TraceFile, j.trace)
	}
	j.broker.publish(Event{Type: EventState, State: StateDone, Cached: true})
	j.broker.closeStream()
	if j.journal != nil {
		j.journal.close()
	}
	m.stats.done.Add(1)
	m.opt.Logger.Info("job served from artifact store", "job", j.ID, "design", d.Name)
	return j, nil
}
