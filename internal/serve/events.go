package serve

import (
	"sync"

	"repro/internal/obs"
)

// Event type tags of the SSE progress stream.
const (
	// EventState marks a lifecycle transition (running, done, failed,
	// canceled); terminal states complete the stream.
	EventState = "state"
	// EventGP is one λ round of global placement (obs.GPRound payload).
	EventGP = "gp"
	// EventRoute is one global-routing round (obs.RouteRound payload).
	EventRoute = "route"
)

// Event is one message of a job's progress stream. Seq is assigned by the
// broker and doubles as the SSE event id, so clients can resume with
// ?from=<seq+1> after a dropped connection.
type Event struct {
	Seq   int    `json:"seq"`
	Type  string `json:"type"`
	State State  `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	// Cached marks a terminal state served from the artifact store.
	Cached bool `json:"cached,omitempty"`
	// Worker attributes the event to the fleet worker that produced it
	// (set by the fleet coordinator on stitched streams; empty on
	// single-node streams).
	Worker string          `json:"worker,omitempty"`
	GP     *obs.GPRound    `json:"gp,omitempty"`
	Route  *obs.RouteRound `json:"route,omitempty"`
}

// broker is a per-job publish/subscribe hub with full history: events are
// appended to an ordered log and subscribers follow the log by index, so
// any number of SSE clients can attach at any time, replay from any
// sequence number, and never miss or reorder an event. Publishing never
// blocks on slow consumers — readers pull at their own pace.
type broker struct {
	// persist, when non-nil, journals every published event. It is set
	// before the first publish and called under mu, so the on-disk log
	// order matches the in-memory log. Immutable afterwards.
	persist func(Event)

	mu     sync.Mutex
	events []Event
	done   bool
	// sig is closed (and replaced) on every publish and on closeStream —
	// a broadcast that wakes all waiting subscribers. Waiting on a
	// channel rather than a sync.Cond lets subscribers select against
	// their client's disconnect at the same time.
	sig chan struct{}
}

func newBroker() *broker {
	return &broker{sig: make(chan struct{})}
}

// newBrokerFrom preloads a broker with a recovered event log. Sequence
// numbers are reassigned from the log position, so events published after
// a restart continue exactly where the journal stopped and SSE ?from=
// offsets stay valid across the restart.
func newBrokerFrom(events []Event) *broker {
	b := newBroker()
	for i := range events {
		events[i].Seq = i
	}
	b.events = events
	return b
}

// publish appends e to the log (assigning its Seq) and wakes subscribers.
// Events published after closeStream are dropped.
func (b *broker) publish(e Event) {
	b.mu.Lock()
	if b.done {
		b.mu.Unlock()
		return
	}
	e.Seq = len(b.events)
	b.events = append(b.events, e)
	if b.persist != nil {
		b.persist(e)
	}
	close(b.sig)
	b.sig = make(chan struct{})
	b.mu.Unlock()
}

// publishObs converts a telemetry event into a stream event.
func (b *broker) publishObs(e obs.Event) {
	switch {
	case e.GP != nil:
		b.publish(Event{Type: EventGP, GP: e.GP})
	case e.Route != nil:
		b.publish(Event{Type: EventRoute, Route: e.Route})
	}
}

// closeStream marks the log complete; subscribers drain and stop.
func (b *broker) closeStream() {
	b.mu.Lock()
	if !b.done {
		b.done = true
		close(b.sig)
		b.sig = make(chan struct{})
	}
	b.mu.Unlock()
}

// since returns the events from index `from` on, whether the stream is
// complete, and a channel that is closed on the next publish (or close).
// The returned slice aliases the log and must not be mutated.
func (b *broker) since(from int) (evs []Event, done bool, sig <-chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from < len(b.events) {
		evs = b.events[from:]
	}
	return evs, b.done, b.sig
}

// len returns the number of published events.
func (b *broker) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}
