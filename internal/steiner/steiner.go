// Package steiner builds rectilinear Steiner minimal-tree approximations
// for net decomposition. The global router's two-pin segments come from
// these trees: a 3-pin net meets at its median point, and larger nets are
// improved from their spanning tree by the classic iterated 1-Steiner
// heuristic over Hanan-grid candidates. Compared with plain MST
// decomposition this shortens routed wirelength by the usual few percent
// and, more importantly for congestion metrics, avoids double-counting
// demand on shared trunks.
package steiner

import (
	"sort"
)

// Point is an integer grid location (the router's tile coordinates).
type Point struct {
	X, Y int
}

// Edge joins two points of the tree by index into the point list returned
// alongside it.
type Edge struct {
	A, B int
}

// Tree is a rectilinear Steiner tree: Points contains the original
// terminals first (in input order) followed by any added Steiner points;
// Edges connect point indices.
type Tree struct {
	Points []Point
	Edges  []Edge
	// Terminals is the number of original points at the front of Points.
	Terminals int
}

// Length returns the total rectilinear edge length of the tree.
func (t *Tree) Length() int {
	total := 0
	for _, e := range t.Edges {
		total += dist(t.Points[e.A], t.Points[e.B])
	}
	return total
}

func dist(a, b Point) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// maxIterated1Steiner bounds the terminal count for the O(n³)-ish
// heuristic; larger nets keep their spanning tree.
const maxIterated1Steiner = 24

// Build returns a Steiner tree over the given terminals. Duplicate points
// are tolerated (they simply yield zero-length edges pruned from the
// output). One- and zero-terminal inputs produce an empty tree.
func Build(terminals []Point) Tree {
	t := Tree{Points: append([]Point(nil), terminals...), Terminals: len(terminals)}
	switch len(terminals) {
	case 0, 1:
		return t
	case 2:
		t.Edges = []Edge{{0, 1}}
		return t
	case 3:
		return threePin(t)
	}
	t.Edges = mstEdges(t.Points)
	if len(terminals) <= maxIterated1Steiner {
		iterated1Steiner(&t)
	}
	prune(&t)
	return t
}

// threePin connects three terminals through their median point.
func threePin(t Tree) Tree {
	xs := []int{t.Points[0].X, t.Points[1].X, t.Points[2].X}
	ys := []int{t.Points[0].Y, t.Points[1].Y, t.Points[2].Y}
	sort.Ints(xs)
	sort.Ints(ys)
	med := Point{xs[1], ys[1]}
	// If the median coincides with a terminal, connect directly.
	for i := 0; i < 3; i++ {
		if t.Points[i] == med {
			for j := 0; j < 3; j++ {
				if j != i {
					t.Edges = append(t.Edges, Edge{i, j})
				}
			}
			return t
		}
	}
	t.Points = append(t.Points, med)
	for i := 0; i < 3; i++ {
		t.Edges = append(t.Edges, Edge{i, 3})
	}
	return t
}

// mstEdges builds Prim MST edges over pts under rectilinear distance.
func mstEdges(pts []Point) []Edge {
	n := len(pts)
	inTree := make([]bool, n)
	best := make([]int, n)
	parent := make([]int, n)
	for i := range best {
		best[i] = 1 << 30
		parent[i] = -1
	}
	best[0] = 0
	var edges []Edge
	for k := 0; k < n; k++ {
		u := -1
		for i := 0; i < n; i++ {
			if !inTree[i] && (u == -1 || best[i] < best[u]) {
				u = i
			}
		}
		inTree[u] = true
		if parent[u] >= 0 {
			edges = append(edges, Edge{parent[u], u})
		}
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if d := dist(pts[u], pts[v]); d < best[v] {
					best[v] = d
					parent[v] = u
				}
			}
		}
	}
	return edges
}

// mstLength is the MST length over pts (helper for gain evaluation).
func mstLength(pts []Point) int {
	total := 0
	for _, e := range mstEdges(pts) {
		total += dist(pts[e.A], pts[e.B])
	}
	return total
}

// iterated1Steiner repeatedly inserts the Hanan-grid point with the best
// MST-length reduction until no candidate helps. The tree's edges are
// rebuilt from the final point set.
func iterated1Steiner(t *Tree) {
	pts := t.Points
	curLen := mstLength(pts)
	for rounds := 0; rounds < len(t.Points); rounds++ {
		// Hanan candidates from the current point set, enumerated in
		// sorted order so tied gains resolve deterministically (map
		// iteration order would make routed results drift run to run).
		xsSet := map[int]bool{}
		ysSet := map[int]bool{}
		for _, p := range pts {
			xsSet[p.X] = true
			ysSet[p.Y] = true
		}
		xs := make([]int, 0, len(xsSet))
		for x := range xsSet {
			xs = append(xs, x)
		}
		sort.Ints(xs)
		ys := make([]int, 0, len(ysSet))
		for y := range ysSet {
			ys = append(ys, y)
		}
		sort.Ints(ys)
		existing := make(map[Point]bool, len(pts))
		for _, p := range pts {
			existing[p] = true
		}
		bestGain := 0
		var bestPt Point
		for _, x := range xs {
			for _, y := range ys {
				cand := Point{x, y}
				if existing[cand] {
					continue
				}
				trial := append(pts, cand)
				if g := curLen - mstLength(trial); g > bestGain {
					bestGain = g
					bestPt = cand
				}
			}
		}
		if bestGain <= 0 {
			break
		}
		pts = append(pts, bestPt)
		curLen -= bestGain
	}
	t.Points = pts
	t.Edges = mstEdges(pts)
}

// prune removes degree-≤1 Steiner points (and their dangling edges),
// repeating until stable: iterated 1-Steiner can leave points that stopped
// paying for themselves after later insertions.
func prune(t *Tree) {
	for {
		deg := make([]int, len(t.Points))
		for _, e := range t.Edges {
			deg[e.A]++
			deg[e.B]++
		}
		drop := -1
		for i := t.Terminals; i < len(t.Points); i++ {
			if deg[i] <= 1 {
				drop = i
				break
			}
		}
		if drop == -1 {
			// Also drop zero-length edges.
			out := t.Edges[:0]
			for _, e := range t.Edges {
				if dist(t.Points[e.A], t.Points[e.B]) > 0 || e.A != e.B {
					out = append(out, e)
				}
			}
			t.Edges = out
			return
		}
		// Remove point `drop`: filter its edges and reindex.
		var edges []Edge
		for _, e := range t.Edges {
			if e.A == drop || e.B == drop {
				continue
			}
			if e.A > drop {
				e.A--
			}
			if e.B > drop {
				e.B--
			}
			edges = append(edges, e)
		}
		t.Points = append(t.Points[:drop], t.Points[drop+1:]...)
		t.Edges = edges
	}
}
