package steiner

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// connected verifies the tree spans all terminals.
func connected(t *Tree) bool {
	if len(t.Points) == 0 {
		return true
	}
	adj := make([][]int, len(t.Points))
	for _, e := range t.Edges {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	seen := make([]bool, len(t.Points))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	for i := 0; i < t.Terminals; i++ {
		if !seen[i] {
			return false
		}
	}
	return true
}

func TestTwoPin(t *testing.T) {
	tr := Build([]Point{{0, 0}, {3, 4}})
	if tr.Length() != 7 {
		t.Errorf("length = %d", tr.Length())
	}
	if len(tr.Edges) != 1 {
		t.Errorf("edges = %d", len(tr.Edges))
	}
}

func TestThreePinMedian(t *testing.T) {
	// L-shaped terminals: Steiner point at (5, 5) saves length.
	tr := Build([]Point{{0, 0}, {10, 5}, {5, 10}})
	// MST length would be (10+5=15 or via pairs) — Steiner through the
	// median (5,5): 10 + 5 + 5 = 20 vs MST 15+10=25.
	if got := tr.Length(); got != 20 {
		t.Errorf("3-pin Steiner length = %d, want 20", got)
	}
	if !connected(&tr) {
		t.Error("tree not connected")
	}
}

func TestThreePinMedianOnTerminal(t *testing.T) {
	// Median coincides with the middle terminal: no Steiner point added.
	tr := Build([]Point{{0, 0}, {5, 5}, {10, 10}})
	if len(tr.Points) != 3 {
		t.Errorf("unexpected Steiner point: %v", tr.Points)
	}
	if tr.Length() != 20 {
		t.Errorf("length = %d", tr.Length())
	}
}

func TestFourPinCross(t *testing.T) {
	// Four arms of a cross: MST costs 3·10=30+... Steiner at center: 4·5=20... use
	// terminals at compass points distance 5 from center (5,5).
	tr := Build([]Point{{5, 0}, {10, 5}, {5, 10}, {0, 5}})
	if !connected(&tr) {
		t.Fatal("not connected")
	}
	// Optimal rectilinear Steiner tree = 20 (single center point).
	if got := tr.Length(); got > 20 {
		t.Errorf("4-pin cross length = %d, want ≤ 20", got)
	}
}

func TestSteinerNeverWorseThanMST(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(10)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Intn(50), rng.Intn(50)}
		}
		tr := Build(pts)
		if !connected(&tr) {
			t.Fatalf("trial %d: not connected", trial)
		}
		if tr.Length() > mstLength(pts) {
			t.Fatalf("trial %d: steiner %d worse than MST %d", trial, tr.Length(), mstLength(pts))
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	if tr := Build(nil); len(tr.Edges) != 0 {
		t.Error("empty input produced edges")
	}
	if tr := Build([]Point{{1, 1}}); len(tr.Edges) != 0 {
		t.Error("single point produced edges")
	}
	// Duplicates: tree still spans, zero length.
	tr := Build([]Point{{2, 2}, {2, 2}})
	if tr.Length() != 0 || !connected(&tr) {
		t.Errorf("duplicate points: len=%d", tr.Length())
	}
}

func TestLargeNetFallsBackToMST(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([]Point, maxIterated1Steiner+10)
	for i := range pts {
		pts[i] = Point{rng.Intn(100), rng.Intn(100)}
	}
	tr := Build(pts)
	if len(tr.Points) != len(pts) {
		t.Error("large net gained Steiner points despite cap")
	}
	if !connected(&tr) {
		t.Error("not connected")
	}
}

// Property: trees are connected and no longer than MST for random inputs.
func TestTreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Intn(30), rng.Intn(30)}
		}
		tr := Build(pts)
		return connected(&tr) && tr.Length() <= mstLength(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
