package steiner_test

import (
	"fmt"

	"repro/internal/steiner"
)

func ExampleBuild() {
	// Three pins in an L: the tree meets at the median point (5, 5).
	tree := steiner.Build([]steiner.Point{{X: 0, Y: 0}, {X: 10, Y: 5}, {X: 5, Y: 10}})
	fmt.Println("terminals:", tree.Terminals)
	fmt.Println("points:", len(tree.Points))
	fmt.Println("length:", tree.Length())
	// Output:
	// terminals: 3
	// points: 4
	// length: 20
}
