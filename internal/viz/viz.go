// Package viz renders placements and congestion maps as standalone SVG
// files, reproducing the visual figures of the evaluation (placement
// snapshots, congestion heatmaps before/after the routability loop). Only
// the standard library is used: SVG is written as text.
package viz

import (
	"fmt"
	"io"
	"math"

	"repro/internal/db"
	"repro/internal/route"
)

// PlacementSVG writes an SVG image of the design: die outline, rows
// (implicit), fixed macros (dark), movable macros (medium), standard cells
// (light), fence regions (colored outlines).
func PlacementSVG(w io.Writer, d *db.Design, width float64) error {
	if d.Die.Empty() {
		return fmt.Errorf("viz: empty die")
	}
	scale := width / d.Die.W()
	height := d.Die.H() * scale
	// SVG y grows downward; flip so the die's lower-left is bottom-left.
	fy := func(y, h float64) float64 { return height - (y-d.Die.Lo.Y+h)*scale }
	fx := func(x float64) float64 { return (x - d.Die.Lo.X) * scale }

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.2f %.2f">`+"\n",
		width, height, width, height)
	fmt.Fprintf(w, `<rect x="0" y="0" width="%.2f" height="%.2f" fill="#ffffff" stroke="#000000" stroke-width="1"/>`+"\n",
		width, height)

	// Fences first so cells draw over them.
	fenceColors := []string{"#d95f02", "#7570b3", "#1b9e77", "#e7298a", "#66a61e", "#e6ab02"}
	for ri := range d.Regions {
		col := fenceColors[ri%len(fenceColors)]
		for _, r := range d.Regions[ri].Rects {
			fmt.Fprintf(w, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="0.15" stroke="%s" stroke-width="1.5"/>`+"\n",
				fx(r.Lo.X), fy(r.Lo.Y, r.H()), r.W()*scale, r.H()*scale, col, col)
		}
	}
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if c.Kind == db.Terminal || c.Area() == 0 {
			continue
		}
		fill := "#9ecae1"
		switch {
		case c.Kind == db.Macro && c.Fixed && len(c.Pins) == 0:
			fill = "#525252"
		case c.Kind == db.Macro && c.Fixed:
			fill = "#636363"
		case c.Kind == db.Macro:
			fill = "#fd8d3c"
		}
		r := c.Rect()
		fmt.Fprintf(w, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="#3b3b3b" stroke-width="0.2"/>`+"\n",
			fx(r.Lo.X), fy(r.Lo.Y, r.H()), math.Max(0.5, r.W()*scale), math.Max(0.5, r.H()*scale), fill)
	}
	// Terminals as small circles on the boundary.
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if c.Kind != db.Terminal {
			continue
		}
		fmt.Fprintf(w, `<circle cx="%.2f" cy="%.2f" r="2" fill="#e41a1c"/>`+"\n",
			fx(c.Pos.X), fy(c.Pos.Y, 0))
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}

// CongestionSVG writes a heatmap of the grid's per-tile congestion (the
// TileCongestion map): white → green → yellow → red as utilization rises
// past 100%.
func CongestionSVG(w io.Writer, g *route.Grid, width float64) error {
	if g.NX < 1 || g.NY < 1 {
		return fmt.Errorf("viz: empty grid")
	}
	return HeatmapSVG(w, g.NX, g.NY, g.TileCongestion(), width)
}

// HeatmapSVG renders a raw nx×ny congestion map (row-major, tile (0,0) at
// the lower left) with the same color ramp as CongestionSVG. It accepts
// data captured earlier — e.g. per-round heatmaps from an obs.Recorder —
// without needing a live grid.
func HeatmapSVG(w io.Writer, nx, ny int, cong []float64, width float64) error {
	if nx < 1 || ny < 1 {
		return fmt.Errorf("viz: empty heatmap")
	}
	if len(cong) != nx*ny {
		return fmt.Errorf("viz: heatmap has %d tiles, want %d×%d", len(cong), nx, ny)
	}
	tileW := width / float64(nx)
	height := tileW * float64(ny)
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.2f %.2f">`+"\n",
		width, height, width, height)
	for ty := 0; ty < ny; ty++ {
		for tx := 0; tx < nx; tx++ {
			c := cong[ty*nx+tx]
			fmt.Fprintf(w, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s"/>`+"\n",
				float64(tx)*tileW, float64(ny-1-ty)*tileW, tileW, tileW, heatColor(c))
		}
	}
	fmt.Fprintf(w, `<rect x="0" y="0" width="%.2f" height="%.2f" fill="none" stroke="#000" stroke-width="1"/>`+"\n", width, height)
	fmt.Fprintln(w, `</svg>`)
	return nil
}

// heatColor maps a congestion ratio to a color: 0 → white, 0.5 → green,
// 1.0 → yellow, ≥1.5 → red.
func heatColor(c float64) string {
	if math.IsInf(c, 1) || c >= 1.5 {
		return "#d73027"
	}
	switch {
	case c <= 0:
		return "#ffffff"
	case c < 0.5:
		// white → green
		t := c / 0.5
		return lerpColor(0xff, 0xff, 0xff, 0x66, 0xbd, 0x63, t)
	case c < 1.0:
		// green → yellow
		t := (c - 0.5) / 0.5
		return lerpColor(0x66, 0xbd, 0x63, 0xfe, 0xe0, 0x8b, t)
	default:
		// yellow → red
		t := (c - 1.0) / 0.5
		return lerpColor(0xfe, 0xe0, 0x8b, 0xd7, 0x30, 0x27, t)
	}
}

func lerpColor(r1, g1, b1, r2, g2, b2 int, t float64) string {
	lerp := func(a, b int) int { return a + int(t*float64(b-a)) }
	return fmt.Sprintf("#%02x%02x%02x", lerp(r1, r2), lerp(g1, g2), lerp(b1, b2))
}
