package viz

import (
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/route"
)

func TestPlacementSVG(t *testing.T) {
	d := gen.MustGenerate(gen.Config{
		Name: "v", Seed: 1, NumStdCells: 50, NumFixedMacros: 1,
		NumMovableMacros: 1, NumModules: 2, NumFences: 1, NumTerminals: 4,
		TargetUtil: 0.5,
	})
	var b strings.Builder
	if err := PlacementSVG(&b, d, 400); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Error("not an SVG document")
	}
	// One rect per space-occupying cell plus die plus fence.
	rects := strings.Count(out, "<rect")
	if rects < 52 {
		t.Errorf("only %d rects", rects)
	}
	if !strings.Contains(out, "<circle") {
		t.Error("terminals missing")
	}
}

func TestPlacementSVGEmptyDie(t *testing.T) {
	var b strings.Builder
	if err := PlacementSVG(&b, &db.Design{}, 100); err == nil {
		t.Error("expected error for empty die")
	}
}

func TestCongestionSVG(t *testing.T) {
	g := route.NewUniformGrid(geom.NewRect(0, 0, 100, 100), 10, 10, 10, 10)
	g.HDem[g.HIdx(4, 5)] = 20 // hot edge
	var b strings.Builder
	if err := CongestionSVG(&b, g, 300); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "<rect") < 100 {
		t.Error("missing tiles")
	}
	if !strings.Contains(out, "#ffffff") {
		t.Error("cold tiles should be white")
	}
}

func TestHeatColorRamp(t *testing.T) {
	if heatColor(0) != "#ffffff" {
		t.Errorf("cold = %s", heatColor(0))
	}
	if heatColor(2.0) != "#d73027" {
		t.Errorf("hot = %s", heatColor(2))
	}
	// Colors at ramp knots are exact.
	if heatColor(0.4999999) == heatColor(0.999999) {
		t.Error("ramp not varying")
	}
	for _, c := range []float64{0.1, 0.3, 0.6, 0.9, 1.2, 1.49} {
		col := heatColor(c)
		if len(col) != 7 || col[0] != '#' {
			t.Errorf("bad color %q at %v", col, c)
		}
	}
}
