package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %v", got)
	}
	if got := GeoMean([]float64{5}); got != 5 {
		t.Errorf("GeoMean(5) = %v", got)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("empty GeoMean should be NaN")
	}
	// Non-positive entries skipped.
	if got := GeoMean([]float64{0, -3, 4}); got != 4 {
		t.Errorf("GeoMean with junk = %v", got)
	}
}

func TestMeanMedian(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty Mean should be NaN")
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %v", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("empty Median should be NaN")
	}
	// Median must not mutate its input.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 {
		t.Error("Median mutated input")
	}
}

func TestRowRendering(t *testing.T) {
	r := Row{
		Design: "sb-a", Variant: "ntuplace4h",
		HPWL: 123456, ScaledHPWL: 150000, RC: 104.2,
		Overflow: 0.08, Overlaps: 0, FenceViol: 0,
		GPTime: 2 * time.Second, TotalTime: 5 * time.Second,
	}
	s := r.String()
	for _, want := range []string{"sb-a", "ntuplace4h", "104.2"} {
		if !strings.Contains(s, want) {
			t.Errorf("row %q missing %q", s, want)
		}
	}
	if len(Header()) == 0 {
		t.Error("empty header")
	}
}

func TestTableSummary(t *testing.T) {
	tb := Table{Title: "T2"}
	tb.Add(Row{Design: "a", Variant: "full", ScaledHPWL: 100, HPWL: 90, RC: 105})
	tb.Add(Row{Design: "b", Variant: "full", ScaledHPWL: 400, HPWL: 360, RC: 110})
	tb.Add(Row{Design: "a", Variant: "blind", ScaledHPWL: 200, HPWL: 80, RC: 140})
	tb.Add(Row{Design: "b", Variant: "blind", ScaledHPWL: 800, HPWL: 320, RC: 150})
	lines := tb.SummaryLines()
	if len(lines) != 2 {
		t.Fatalf("expected 2 summary lines, got %d", len(lines))
	}
	// The second variant's ratio vs the first: geomean(200,800)/geomean(100,400) = 2.
	if !strings.Contains(lines[1], "ratio 2.000") {
		t.Errorf("normalized ratio missing: %q", lines[1])
	}
	if !strings.Contains(lines[0], "ratio 1.000") {
		t.Errorf("baseline ratio missing: %q", lines[0])
	}
	out := tb.String()
	if !strings.Contains(out, "=== T2 ===") || !strings.Contains(out, Header()) {
		t.Error("table rendering missing title or header")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "conv"
	s.Add(0, 10)
	s.Add(1, 8)
	out := s.String()
	if !strings.Contains(out, "conv\t0\t10") || !strings.Contains(out, "conv\t1\t8") {
		t.Errorf("series rendering wrong: %q", out)
	}
}
