package metrics_test

import (
	"fmt"

	"repro/internal/metrics"
)

func ExampleGeoMean() {
	fmt.Println(metrics.GeoMean([]float64{2, 8}))
	// Output:
	// 4
}

func ExampleSeries() {
	s := metrics.Series{Name: "rc"}
	s.Add(1, 120)
	s.Add(2, 108)
	fmt.Print(s.String())
	// Output:
	// rc	1	120
	// rc	2	108
}
