package metrics

import (
	"encoding/json"
	"io"
	"time"
)

// rowJSON is Row's wire form: stable snake_case field names, durations
// in seconds. The run-report schema (internal/obs, pinned by a
// golden-file test) depends on these names — treat renames as
// report-version bumps.
type rowJSON struct {
	Design  string `json:"design"`
	Variant string `json:"variant"`

	HPWL       float64   `json:"hpwl"`
	ScaledHPWL float64   `json:"shpwl"`
	RC         float64   `json:"rc"`
	ACE        []float64 `json:"ace,omitempty"`

	Overflow  float64 `json:"overflow"`
	Overlaps  int     `json:"overlaps"`
	FenceViol int     `json:"fence_violations"`
	OutOfDie  int     `json:"out_of_die"`

	GPSeconds    float64 `json:"gp_seconds"`
	TotalSeconds float64 `json:"total_seconds"`
}

// MarshalJSON renders the row with stable field names and durations in
// seconds.
func (r Row) MarshalJSON() ([]byte, error) {
	return json.Marshal(rowJSON{
		Design:       r.Design,
		Variant:      r.Variant,
		HPWL:         r.HPWL,
		ScaledHPWL:   r.ScaledHPWL,
		RC:           r.RC,
		ACE:          r.ACE,
		Overflow:     r.Overflow,
		Overlaps:     r.Overlaps,
		FenceViol:    r.FenceViol,
		OutOfDie:     r.OutOfDie,
		GPSeconds:    r.GPTime.Seconds(),
		TotalSeconds: r.TotalTime.Seconds(),
	})
}

// UnmarshalJSON parses the wire form back into a Row.
func (r *Row) UnmarshalJSON(data []byte) error {
	var w rowJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = Row{
		Design:     w.Design,
		Variant:    w.Variant,
		HPWL:       w.HPWL,
		ScaledHPWL: w.ScaledHPWL,
		RC:         w.RC,
		ACE:        w.ACE,
		Overflow:   w.Overflow,
		Overlaps:   w.Overlaps,
		FenceViol:  w.FenceViol,
		OutOfDie:   w.OutOfDie,
		GPTime:     time.Duration(w.GPSeconds * float64(time.Second)),
		TotalTime:  time.Duration(w.TotalSeconds * float64(time.Second)),
	}
	return nil
}

// tableJSON is Table's wire form.
type tableJSON struct {
	Title string `json:"title,omitempty"`
	Rows  []Row  `json:"rows"`
}

// MarshalJSON renders the table as {title, rows}.
func (t Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableJSON{Title: t.Title, Rows: t.Rows})
}

// UnmarshalJSON parses the wire form back into a Table.
func (t *Table) UnmarshalJSON(data []byte) error {
	var w tableJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*t = Table{Title: w.Title, Rows: w.Rows}
	return nil
}

// WriteJSON writes the table as indented JSON (the -json CLI output).
func (t Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
