// Package metrics collects and formats the per-design, per-variant result
// records that the experiment tables report: HPWL, the contest RC and
// scaled-HPWL scores, legality counts and stage runtimes. It also provides
// the small statistics helpers (geometric means, normalized ratios) used
// when aggregating a benchmark suite the way placement papers do.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Row is one experiment measurement: a placer variant run on a design.
type Row struct {
	Design  string
	Variant string

	HPWL       float64
	ScaledHPWL float64
	RC         float64
	ACE        []float64

	Overflow  float64
	Overlaps  int
	FenceViol int
	OutOfDie  int

	GPTime    time.Duration
	TotalTime time.Duration
}

// Header returns the column header matching Row.String.
func Header() string {
	return fmt.Sprintf("%-10s %-14s %12s %12s %7s %9s %5s %5s %5s %8s %8s",
		"design", "variant", "HPWL", "sHPWL", "RC", "overflow", "ovlp", "fence", "oob", "gp(s)", "total(s)")
}

// String renders the row under Header's columns.
func (r Row) String() string {
	return fmt.Sprintf("%-10s %-14s %12.4g %12.4g %7.1f %9.4f %5d %5d %5d %8.2f %8.2f",
		r.Design, r.Variant, r.HPWL, r.ScaledHPWL, r.RC, r.Overflow,
		r.Overlaps, r.FenceViol, r.OutOfDie, r.GPTime.Seconds(), r.TotalTime.Seconds())
}

// Table is an ordered collection of rows with group-aware rendering.
type Table struct {
	Title string
	Rows  []Row
}

// Add appends a row.
func (t *Table) Add(r Row) { t.Rows = append(t.Rows, r) }

// String renders the table with a title, header, rows and per-variant
// geometric-mean summary lines (the standard presentation in placement
// papers: per-benchmark numbers plus a normalized average).
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	}
	b.WriteString(Header())
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	for _, line := range t.SummaryLines() {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// SummaryLines returns one geometric-mean summary per variant, plus the
// ratio of each variant's sHPWL geomean to the first variant's (the
// "normalized to baseline" row papers print).
func (t *Table) SummaryLines() []string {
	byVariant := map[string][]Row{}
	var order []string
	for _, r := range t.Rows {
		if _, ok := byVariant[r.Variant]; !ok {
			order = append(order, r.Variant)
		}
		byVariant[r.Variant] = append(byVariant[r.Variant], r)
	}
	if len(order) == 0 {
		return nil
	}
	var out []string
	base := math.NaN()
	for _, v := range order {
		rows := byVariant[v]
		hp := make([]float64, len(rows))
		sh := make([]float64, len(rows))
		rc := make([]float64, len(rows))
		for i, r := range rows {
			hp[i] = r.HPWL
			sh[i] = r.ScaledHPWL
			rc[i] = r.RC
		}
		gm := GeoMean(sh)
		if math.IsNaN(base) {
			base = gm
		}
		ratio := gm / base
		out = append(out, fmt.Sprintf("%-10s %-14s %12.4g %12.4g %7.1f %31s ratio %.3f",
			"geomean", v, GeoMean(hp), gm, Mean(rc), "", ratio))
	}
	return out
}

// GeoMean returns the geometric mean of positive values; zero and negative
// entries are skipped, and an empty input yields NaN.
func GeoMean(vals []float64) float64 {
	var logSum float64
	n := 0
	for _, v := range vals {
		if v <= 0 {
			continue
		}
		logSum += math.Log(v)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(logSum / float64(n))
}

// Mean returns the arithmetic mean, NaN for empty input.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// Median returns the median, NaN for empty input.
func Median(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), vals...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Series is a labelled (x, y) sequence used for figure reproduction: the
// bench harness prints these as data rows a plotting script can consume.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// String renders "name x y" rows.
func (s *Series) String() string {
	var b strings.Builder
	for i := range s.X {
		fmt.Fprintf(&b, "%s\t%g\t%g\n", s.Name, s.X[i], s.Y[i])
	}
	return b.String()
}
