package incr

import (
	"repro/internal/geom"
)

// DeltaEval is a read-only what-if evaluator over a BBoxCache: stage
// hypothetical positions for a few cells, ask for the exact change in
// total weighted HPWL, reset, repeat. It never mutates the design or the
// cache, so any number of DeltaEvals may evaluate concurrently against a
// frozen design — each worker of the parallel detailed-placement propose
// phase owns one. All scratch state is epoch-stamped and reused; the warm
// path performs no allocations.
type DeltaEval struct {
	c *BBoxCache

	// Staged positions, epoch-stamped per cell.
	posEpoch uint32
	posStamp []uint32
	pos      []geom.Point
	cells    []int

	// Per-Delta net working set: a compact slice of hypothetical boxes
	// addressed through a per-net slot table.
	netEpoch uint32
	netStamp []uint32
	netSlot  []int32
	nets     []int
	boxes    []box
	dirty    []bool
}

// NewEval returns a fresh evaluator over the cache. Evaluators are not
// safe for concurrent use with each other's owner goroutine; create one
// per worker.
func (c *BBoxCache) NewEval() *DeltaEval {
	return &DeltaEval{
		c:        c,
		posStamp: make([]uint32, len(c.d.Cells)),
		pos:      make([]geom.Point, len(c.d.Cells)),
		netStamp: make([]uint32, len(c.d.Nets)),
		netSlot:  make([]int32, len(c.d.Nets)),
	}
}

// Reset discards all staged positions.
func (e *DeltaEval) Reset() {
	bumpEpoch(&e.posEpoch, e.posStamp)
	e.cells = e.cells[:0]
}

// Stage sets a hypothetical position for cell ci; staging the same cell
// again overrides the earlier position.
func (e *DeltaEval) Stage(ci int, to geom.Point) {
	if e.posStamp[ci] != e.posEpoch {
		e.posStamp[ci] = e.posEpoch
		e.cells = append(e.cells, ci)
	}
	e.pos[ci] = to
}

// posOf is the cell's position in the staged world.
func (e *DeltaEval) posOf(ci int) geom.Point {
	if e.posStamp[ci] == e.posEpoch {
		return e.pos[ci]
	}
	return e.c.d.Cells[ci].Pos
}

// slot returns the working-set index of net ni, seeding its hypothetical
// box from the cache on first touch.
func (e *DeltaEval) slot(ni int) int {
	if e.netStamp[ni] == e.netEpoch {
		return int(e.netSlot[ni])
	}
	e.netStamp[ni] = e.netEpoch
	k := len(e.boxes)
	e.netSlot[ni] = int32(k)
	e.nets = append(e.nets, ni)
	e.boxes = append(e.boxes, e.c.boxes[ni])
	e.dirty = append(e.dirty, false)
	return k
}

// Delta returns the exact change in total weighted HPWL if every staged
// cell moved to its staged position. The design and cache are only read.
func (e *DeltaEval) Delta() float64 {
	c := e.c
	d := c.d
	bumpEpoch(&e.netEpoch, e.netStamp)
	e.nets = e.nets[:0]
	e.boxes = e.boxes[:0]
	e.dirty = e.dirty[:0]
	// Remove the staged cells' pins from the hypothetical boxes ...
	for _, ci := range e.cells {
		cell := &d.Cells[ci]
		for _, pi := range cell.Pins {
			k := e.slot(d.Pins[pi].Net)
			if e.dirty[k] {
				continue
			}
			if !e.boxes[k].remove(cell.Pos.Add(c.offs[pi])) {
				e.dirty[k] = true
			}
		}
	}
	// ... and re-insert them at the staged positions.
	for _, ci := range e.cells {
		to := e.pos[ci]
		for _, pi := range d.Cells[ci].Pins {
			k := int(e.netSlot[d.Pins[pi].Net])
			if e.dirty[k] {
				continue
			}
			e.boxes[k].insert(to.Add(c.offs[pi]))
		}
	}
	var delta float64
	for k, ni := range e.nets {
		if len(d.Nets[ni].Pins) < 2 {
			continue
		}
		if e.dirty[k] {
			e.boxes[k] = e.computeStaged(ni)
		}
		delta += c.weight[ni] * (e.boxes[k].hpwl() - c.boxes[ni].hpwl())
	}
	return delta
}

// computeStaged scans a net's pins with staged overrides applied. The
// resulting box is only ever read for its extremes, so it grows without
// boundary counts.
func (e *DeltaEval) computeStaged(ni int) box {
	c := e.c
	d := c.d
	b := emptyBox()
	for _, pi := range d.Nets[ni].Pins {
		b.grow(e.posOf(d.Pins[pi].Cell).Add(c.offs[pi]))
	}
	return b
}
