package incr

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/geom"
)

// testDesign builds a small scattered design with weighted nets, macros
// and rotated cells so the cache sees orientation-corrected pin offsets.
func testDesign(t *testing.T, seed int64) *db.Design {
	t.Helper()
	d := gen.MustGenerate(gen.Config{
		Name: "incr", Seed: seed, NumStdCells: 120, NumFixedMacros: 2,
		NumMovableMacros: 1, NumModules: 3, NumFences: 1, NumTerminals: 8,
		TargetUtil: 0.5,
	})
	rng := rand.New(rand.NewSource(seed))
	for _, ci := range d.Movable() {
		c := &d.Cells[ci]
		c.SetCenter(geom.Point{
			X: d.Die.Lo.X + rng.Float64()*d.Die.W(),
			Y: d.Die.Lo.Y + rng.Float64()*d.Die.H(),
		})
		if c.Kind == db.StdCell && rng.Intn(4) == 0 {
			c.Orient = db.FS
		}
	}
	for ni := range d.Nets {
		if rng.Intn(3) == 0 {
			d.Nets[ni].Weight = 1 + rng.Float64()*2
		}
	}
	return d
}

// verify cross-checks every cached box against the database recompute.
func verify(t *testing.T, c *BBoxCache, d *db.Design, when string) {
	t.Helper()
	for ni := range d.Nets {
		want := d.NetHPWL(ni)
		got := c.NetHPWL(ni)
		if math.Abs(want-got) > 1e-9 {
			t.Fatalf("%s: net %d cached HPWL %v, recomputed %v", when, ni, got, want)
		}
	}
}

// TestCacheTracksRandomMoves drives the cache through randomized move /
// revert / commit sequences and pins the cached boxes against
// db.NetHPWL's full recompute after every transaction.
func TestCacheTracksRandomMoves(t *testing.T) {
	d := testDesign(t, 7)
	c := New(d)
	verify(t, c, d, "initial")
	movable := d.Movable()
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 200; step++ {
		n := 1 + rng.Intn(3)
		c.Begin()
		for k := 0; k < n; k++ {
			ci := movable[rng.Intn(len(movable))]
			to := geom.Point{
				X: d.Die.Lo.X + rng.Float64()*d.Die.W(),
				Y: d.Die.Lo.Y + rng.Float64()*d.Die.H(),
			}
			c.Move(ci, to)
		}
		if rng.Intn(2) == 0 {
			c.Revert()
		} else {
			c.Commit()
		}
		verify(t, c, d, "after txn")
	}
}

// TestRevertRestoresPositions pins that Revert rolls the design itself
// back, including a cell moved twice in one transaction.
func TestRevertRestoresPositions(t *testing.T) {
	d := testDesign(t, 11)
	c := New(d)
	ci := d.Movable()[0]
	orig := d.Cells[ci].Pos
	c.Begin()
	c.Move(ci, geom.Point{X: orig.X + 5, Y: orig.Y})
	c.Move(ci, geom.Point{X: orig.X + 11, Y: orig.Y + 3})
	c.Revert()
	if d.Cells[ci].Pos != orig {
		t.Fatalf("revert left cell at %v, want %v", d.Cells[ci].Pos, orig)
	}
	verify(t, c, d, "after revert")
}

// TestDeltaMatchesRecompute pins DeltaEval's exact-delta claim against a
// brute-force before/after recompute over randomized staged move sets.
func TestDeltaMatchesRecompute(t *testing.T) {
	d := testDesign(t, 13)
	c := New(d)
	e := c.NewEval()
	movable := d.Movable()
	rng := rand.New(rand.NewSource(5))
	total := func() float64 {
		var s float64
		for ni := range d.Nets {
			w := d.Nets[ni].Weight
			if w == 0 {
				w = 1
			}
			s += w * d.NetHPWL(ni)
		}
		return s
	}
	for trial := 0; trial < 200; trial++ {
		e.Reset()
		n := 1 + rng.Intn(3)
		staged := make(map[int]geom.Point, n)
		for k := 0; k < n; k++ {
			ci := movable[rng.Intn(len(movable))]
			to := geom.Point{
				X: d.Die.Lo.X + rng.Float64()*d.Die.W(),
				Y: d.Die.Lo.Y + rng.Float64()*d.Die.H(),
			}
			e.Stage(ci, to)
			staged[ci] = to
		}
		got := e.Delta()
		before := total()
		saved := make(map[int]geom.Point, n)
		for ci, to := range staged {
			saved[ci] = d.Cells[ci].Pos
			d.Cells[ci].Pos = to
		}
		want := total() - before
		for ci, pos := range saved {
			d.Cells[ci].Pos = pos
		}
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d: delta %v, brute force %v", trial, got, want)
		}
	}
}

// TestTrialMoveNoAllocs pins the warm trial-move contract: staged
// evaluation and transactional move/revert both run allocation-free once
// the scratch state is sized (the router's epoch-stamp guarantee, applied
// to detailed placement).
func TestTrialMoveNoAllocs(t *testing.T) {
	d := testDesign(t, 17)
	c := New(d)
	e := c.NewEval()
	movable := d.Movable()
	// Warm up: size every scratch buffer.
	for i, ci := range movable {
		to := d.Cells[ci].Pos.Add(geom.Point{X: float64(i%3) - 1, Y: 0})
		e.Reset()
		e.Stage(ci, to)
		e.Delta()
		c.Begin()
		c.Move(ci, to)
		c.Revert()
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		ci := movable[i%len(movable)]
		cj := movable[(i+7)%len(movable)]
		i++
		pi, pj := d.Cells[ci].Pos, d.Cells[cj].Pos
		e.Reset()
		e.Stage(ci, pj)
		e.Stage(cj, pi)
		e.Delta()
		c.Begin()
		c.Move(ci, pj)
		c.Move(cj, pi)
		c.Revert()
	})
	if allocs != 0 {
		t.Fatalf("warm trial-move path allocates: %v allocs/op, want 0", allocs)
	}
}

// TestCostMatchesWeightedSum pins Cost's distinct-net weighted sum.
func TestCostMatchesWeightedSum(t *testing.T) {
	d := testDesign(t, 23)
	c := New(d)
	cells := d.Movable()[:4]
	got := c.Cost(cells)
	seen := map[int]bool{}
	var want float64
	for _, ci := range cells {
		for _, pi := range d.Cells[ci].Pins {
			ni := d.Pins[pi].Net
			if seen[ni] {
				continue
			}
			seen[ni] = true
			w := d.Nets[ni].Weight
			if w == 0 {
				w = 1
			}
			want += w * d.NetHPWL(ni)
		}
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Cost = %v, want %v", got, want)
	}
}
