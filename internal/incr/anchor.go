package incr

import (
	"math"

	"repro/internal/geom"
)

var inf = math.Inf(1)

// Anchors precomputes, for every cell, each incident net's bounding box
// *without that cell's pins*, against a frozen snapshot of the design.
// Scoring a single-cell move then costs only insertions — no boundary
// removal, no rescan — and a swap of two cells that share no net is the
// sum of two single-cell scores. This turns the dominant cost of the
// global-swap propose scan (which evaluates many candidate partners per
// cell against the same frozen state) from remove+rescan per candidate
// into a handful of min/max updates.
//
// Nets that cannot change a rigid single-cell move's cost — fewer than
// two pins, or all pins on one cell (the box just translates) — are
// excluded from the topology at construction.
//
// Lifecycle: NewAnchors once (topology is static), then BuildCell per
// cell of interest at the start of each propose phase (cells are
// independent — build in parallel), then any number of concurrent
// read-only MoveDelta calls until the next commit invalidates the frozen
// state.
type Anchors struct {
	c *BBoxCache

	nets [][]int32 // per cell: distinct scoring-relevant incident nets

	// Flattened per-cell entries, pin-major addressable: cell ci owns
	// ents[start[ci]:start[ci+1]], and pinEnt maps each design pin to its
	// cell's entry (relative index; -1 when the pin's net is excluded).
	start  []int32
	ents   []anchorEnt
	pinEnt []int32

	// maxRed[ci] bounds the cost reduction any single-cell move of ci can
	// achieve: no net can shrink below its base (remaining-pins) box.
	maxRed []float64

	// sig[ci] is a 64-bit Bloom signature of the cell's scoring-relevant
	// nets: sig[ci]&sig[cj] == 0 proves the pair is net-disjoint, which
	// holds for the overwhelming majority of swap candidates and lets
	// them skip every per-entry shared-net scan.
	sig []uint64
}

// mmBox is a counts-free bounding box: the anchored base only ever gains
// points after the build, so the extremes are all MoveDelta reads.
type mmBox struct {
	minX, maxX, minY, maxY float64
}

func (b *mmBox) grow(p geom.Point) {
	b.minX = min(b.minX, p.X)
	b.maxX = max(b.maxX, p.X)
	b.minY = min(b.minY, p.Y)
	b.maxY = max(b.maxY, p.Y)
}

func (b *mmBox) hpwl() float64 {
	return (b.maxX - b.minX) + (b.maxY - b.minY)
}

// anchorEnt is one (cell, net) anchor: the base extremes plus the
// frozen-state cost term they are scored against. offLo/offHi are the
// corners of the cell's pin-offset bounding box on this net: growing the
// base with pos+offLo and pos+offHi is exactly growing it with every pin
// at pos, so scoring needs no per-pin loop.
type anchorEnt struct {
	net          int32
	w            float64 // net weight
	sub          float64 // w × cached-box HPWL at build time
	b            mmBox   // cached box minus the cell's pins
	offLo, offHi geom.Point
}

// NewAnchors allocates anchors over the cache's design.
func (c *BBoxCache) NewAnchors() *Anchors {
	d := c.d
	a := &Anchors{
		c:      c,
		nets:   make([][]int32, len(d.Cells)),
		start:  make([]int32, len(d.Cells)+1),
		pinEnt: make([]int32, len(d.Pins)),
		maxRed: make([]float64, len(d.Cells)),
	}
	// A net matters only when it has ≥ 2 pins on ≥ 2 distinct cells.
	// Degree-0 and degree-1 nets never span — ECO deltas produce them
	// when a removed cell leaves a net its last pins.
	spans := make([]bool, len(d.Nets))
	for ni := range d.Nets {
		pins := d.Nets[ni].Pins
		if len(pins) < 2 {
			continue
		}
		for _, pi := range pins[1:] {
			if d.Pins[pi].Cell != d.Pins[pins[0]].Cell {
				spans[ni] = true
				break
			}
		}
	}
	for ci := range d.Cells {
		a.start[ci] = int32(len(a.ents))
		for _, pi := range d.Cells[ci].Pins {
			ni := int32(d.Pins[pi].Net)
			if !spans[ni] {
				a.pinEnt[pi] = -1
				continue
			}
			k := int32(-1)
			for j, m := range a.nets[ci] {
				if m == ni {
					k = int32(j)
					break
				}
			}
			if k < 0 {
				k = int32(len(a.nets[ci]))
				a.nets[ci] = append(a.nets[ci], ni)
				a.ents = append(a.ents, anchorEnt{net: ni})
			}
			a.pinEnt[pi] = k
		}
	}
	a.start[len(d.Cells)] = int32(len(a.ents))
	a.sig = make([]uint64, len(d.Cells))
	for ci := range d.Cells {
		var s uint64
		for _, ni := range a.nets[ci] {
			s |= 1 << (uint(ni) & 63)
		}
		a.sig[ci] = s
	}
	return a
}

// BuildCell refreshes cell ci's base boxes from the cache's current
// state. Must not race with cache mutation; distinct cells may build
// concurrently.
func (a *Anchors) BuildCell(ci int) {
	c := a.c
	d := c.d
	ents := a.ents[a.start[ci]:a.start[ci+1]]
	if len(ents) == 0 {
		return
	}
	// Remove the cell's pins from count-tracking copies of the cached
	// boxes; a failed remove (the pin was a sole boundary extreme) flags
	// the entry for a rescan, via nMinX as the stale marker.
	var scratch [16]box
	var boxes []box
	if len(ents) <= len(scratch) {
		boxes = scratch[:len(ents)]
	} else {
		boxes = make([]box, len(ents))
	}
	for k := range ents {
		boxes[k] = c.boxes[ents[k].net]
	}
	for k := range ents {
		ents[k].offLo = geom.Point{X: inf, Y: inf}
		ents[k].offHi = geom.Point{X: -inf, Y: -inf}
	}
	pos := d.Cells[ci].Pos
	for _, pi := range d.Cells[ci].Pins {
		k := a.pinEnt[pi]
		if k < 0 {
			continue
		}
		off := c.offs[pi]
		en := &ents[k]
		en.offLo.X = min(en.offLo.X, off.X)
		en.offLo.Y = min(en.offLo.Y, off.Y)
		en.offHi.X = max(en.offHi.X, off.X)
		en.offHi.Y = max(en.offHi.Y, off.Y)
		if boxes[k].nMinX >= 0 && !boxes[k].remove(pos.Add(off)) {
			boxes[k].nMinX = -1
		}
	}
	var maxRed float64
	for k := range ents {
		en := &ents[k]
		ni := int(en.net)
		en.w = c.weight[ni]
		en.sub = en.w * c.boxes[ni].hpwl()
		if boxes[k].nMinX >= 0 {
			b := &boxes[k]
			en.b = mmBox{minX: b.minX, maxX: b.maxX, minY: b.minY, maxY: b.maxY}
		} else {
			b := mmBox{minX: inf, maxX: -inf, minY: inf, maxY: -inf}
			for _, pi := range d.Nets[ni].Pins {
				if d.Pins[pi].Cell == ci {
					continue
				}
				b.grow(d.Cells[d.Pins[pi].Cell].Pos.Add(c.offs[pi]))
			}
			en.b = b
		}
		maxRed += en.sub - en.w*en.b.hpwl()
	}
	a.maxRed[ci] = maxRed
}

// MaxGain bounds the cost reduction any move of cell ci alone can
// achieve against the frozen state (each net is floored at its base
// box). Use it to prune candidates that cannot beat a known gain.
func (a *Anchors) MaxGain(ci int) float64 { return a.maxRed[ci] }

// OptimalPoint returns the center of the bounding box of every other
// cell's pins on ci's nets — the classic optimal-region proxy — as the
// union of the anchor base boxes, in O(incident nets) instead of
// O(pins of incident nets). ok is false when no net connects ci to
// another cell. Valid against the frozen state BuildCell last captured.
func (a *Anchors) OptimalPoint(ci int) (geom.Point, bool) {
	ents := a.ents[a.start[ci]:a.start[ci+1]]
	if len(ents) == 0 {
		return geom.Point{}, false
	}
	u := ents[0].b
	for k := 1; k < len(ents); k++ {
		b := &ents[k].b
		u.minX = min(u.minX, b.minX)
		u.maxX = max(u.maxX, b.maxX)
		u.minY = min(u.minY, b.minY)
		u.maxY = max(u.maxY, b.maxY)
	}
	return geom.Point{X: (u.minX + u.maxX) / 2, Y: (u.minY + u.maxY) / 2}, true
}

// MoveDelta returns the exact change in total weighted HPWL of moving
// cell ci to pos, against the frozen state BuildCell last captured.
// Read-only and allocation-free; safe to call from any goroutine.
func (a *Anchors) MoveDelta(ci int, pos geom.Point) float64 {
	ents := a.ents[a.start[ci]:a.start[ci+1]]
	var delta float64
	for k := range ents {
		en := &ents[k]
		b := en.b
		b.grow(pos.Add(en.offLo))
		if en.offHi != en.offLo {
			b.grow(pos.Add(en.offHi))
		}
		delta += en.w*b.hpwl() - en.sub
	}
	return delta
}

// SwapDelta returns the exact change in total weighted HPWL of
// exchanging the two cells' current positions, against the frozen state.
// Nets touching only one of the pair score insert-only from that cell's
// anchor; nets shared by both are rescanned with both overrides applied
// (exactly, and counted once). Read-only; safe to call concurrently.
func (a *Anchors) SwapDelta(ci, cj int) float64 {
	c := a.c
	d := c.d
	pi, pj := d.Cells[ci].Pos, d.Cells[cj].Pos
	if a.sig[ci]&a.sig[cj] == 0 {
		// Provably net-disjoint: the swap is two independent moves.
		return a.MoveDelta(ci, pj) + a.MoveDelta(cj, pi)
	}
	netsI, netsJ := a.nets[ci], a.nets[cj]
	var delta float64
	entsI := a.ents[a.start[ci]:a.start[ci+1]]
	for k := range entsI {
		en := &entsI[k]
		shared := false
		for _, nj := range netsJ {
			if nj == en.net {
				shared = true
				break
			}
		}
		if shared {
			delta += a.pairNet(int(en.net), ci, cj, pj, pi)
			continue
		}
		b := en.b
		b.grow(pj.Add(en.offLo))
		if en.offHi != en.offLo {
			b.grow(pj.Add(en.offHi))
		}
		delta += en.w*b.hpwl() - en.sub
	}
	entsJ := a.ents[a.start[cj]:a.start[cj+1]]
	for k := range entsJ {
		en := &entsJ[k]
		shared := false
		for _, ni := range netsI {
			if ni == en.net {
				shared = true
				break
			}
		}
		if shared {
			continue // already counted from ci's side
		}
		b := en.b
		b.grow(pi.Add(en.offLo))
		if en.offHi != en.offLo {
			b.grow(pi.Add(en.offHi))
		}
		delta += en.w*b.hpwl() - en.sub
	}
	return delta
}

// GroupDelta returns the exact change in total weighted HPWL of moving
// cells[i] to pos[i] simultaneously, against the frozen state. Nets
// touching one group cell score insert-only from that cell's anchor;
// nets touching several are rescanned with all overrides applied,
// counted once at their lowest-index owner. The local-reorder propose
// scan prices every window permutation this way, with no per-window
// setup at all. Read-only; safe to call concurrently.
func (a *Anchors) GroupDelta(cells []int, pos []geom.Point) float64 {
	var delta float64
	for idx, ci := range cells {
		ents := a.ents[a.start[ci]:a.start[ci+1]]
		var others uint64
		for jdx, cj := range cells {
			if jdx != idx && cj != ci {
				others |= a.sig[cj]
			}
		}
		if a.sig[ci]&others == 0 {
			// No net reaches another group cell: pure insertions.
			p := pos[idx]
			for k := range ents {
				en := &ents[k]
				b := en.b
				b.grow(p.Add(en.offLo))
				if en.offHi != en.offLo {
					b.grow(p.Add(en.offHi))
				}
				delta += en.w*b.hpwl() - en.sub
			}
			continue
		}
		for k := range ents {
			en := &ents[k]
			first, shared := true, false
			for jdx, cj := range cells {
				if jdx == idx || cj == ci {
					continue
				}
				for _, nj := range a.nets[cj] {
					if nj == en.net {
						shared = true
						if jdx < idx {
							first = false
						}
						break
					}
				}
				if !first {
					break
				}
			}
			if shared {
				if first {
					delta += a.groupNet(int(en.net), cells, pos)
				}
				continue
			}
			p := pos[idx]
			b := en.b
			b.grow(p.Add(en.offLo))
			if en.offHi != en.offLo {
				b.grow(p.Add(en.offHi))
			}
			delta += en.w*b.hpwl() - en.sub
		}
	}
	return delta
}

// groupNet rescans one net with every group cell overridden to its
// trial position and returns its weighted HPWL change from the cached
// box.
func (a *Anchors) groupNet(ni int, cells []int, pos []geom.Point) float64 {
	c := a.c
	d := c.d
	b := mmBox{minX: inf, maxX: -inf, minY: inf, maxY: -inf}
	for _, pin := range d.Nets[ni].Pins {
		cell := d.Pins[pin].Cell
		p := d.Cells[cell].Pos
		for j, cj := range cells {
			if cj == cell {
				p = pos[j]
				break
			}
		}
		b.grow(p.Add(c.offs[pin]))
	}
	return c.weight[ni] * (b.hpwl() - c.boxes[ni].hpwl())
}

// pairNet rescans one net with cell overrides (ci at posI, cj at posJ)
// and returns its weighted HPWL change from the cached box.
func (a *Anchors) pairNet(ni, ci, cj int, posI, posJ geom.Point) float64 {
	c := a.c
	d := c.d
	b := mmBox{minX: inf, maxX: -inf, minY: inf, maxY: -inf}
	for _, pin := range d.Nets[ni].Pins {
		cell := d.Pins[pin].Cell
		p := d.Cells[cell].Pos
		if cell == ci {
			p = posI
		} else if cell == cj {
			p = posJ
		}
		b.grow(p.Add(c.offs[pin]))
	}
	return c.weight[ni] * (b.hpwl() - c.boxes[ni].hpwl())
}

// SharesNet reports whether the two cells have a scoring-relevant net in
// common (both net lists are tiny, so past the signature filter a
// quadratic scan beats any set structure).
func (a *Anchors) SharesNet(ci, cj int) bool {
	if a.sig[ci]&a.sig[cj] == 0 {
		return false
	}
	for _, ni := range a.nets[ci] {
		for _, nj := range a.nets[cj] {
			if ni == nj {
				return true
			}
		}
	}
	return false
}
