// Package incr provides incremental half-perimeter wirelength bookkeeping
// for detailed placement. The detailed-placement moves (global swap, local
// reorder, row shift) each perturb a handful of cells and need the exact
// change in weighted HPWL of the touched nets; recomputing every net's
// bounding box from scratch per trial — as a naive implementation does —
// makes the move loop O(pins-per-net) per *candidate* and dominates the
// back end of the flow.
//
// BBoxCache keeps, per net, the exact bounding box of its pins plus the
// number of pins sitting on each boundary. Moving a cell then updates each
// incident net in O(pins-on-cell): a pin leaving a boundary decrements the
// count, and only when a count reaches zero (the moved pin was the sole
// extreme) is the net rescanned. Boxes are exact at all times — boundary
// comparisons use the bitwise-identical pin-position expression the boxes
// were built from, so there is no float drift to accumulate.
//
// Two evaluation paths sit on top of the cache:
//
//   - the transactional path (Begin / Move / Revert / Commit) mutates the
//     design and the cache together with an undo log, for callers that
//     commit or roll back a small group of moves;
//   - DeltaEval is a read-only what-if evaluator: it stages hypothetical
//     positions and returns the exact HPWL delta without touching the
//     design or the cache. Independent DeltaEvals over a frozen design are
//     safe to run concurrently, which is what makes the deterministic
//     parallel propose phase of internal/dp possible.
//
// Both paths are allocation-free once warm (pinned by
// TestTrialMoveNoAllocs), using the same epoch-stamped scratch-state trick
// as the router's maze search.
package incr

import (
	"math"

	"repro/internal/db"
	"repro/internal/geom"
)

// box is one net's exact pin bounding box. The n* counts record how many
// pins sit exactly on each boundary, so removing a non-extreme pin never
// requires a rescan.
type box struct {
	minX, maxX, minY, maxY     float64
	nMinX, nMaxX, nMinY, nMaxY int32
}

func emptyBox() box {
	return box{
		minX: math.Inf(1), maxX: math.Inf(-1),
		minY: math.Inf(1), maxY: math.Inf(-1),
	}
}

func (b *box) hpwl() float64 {
	return (b.maxX - b.minX) + (b.maxY - b.minY)
}

// insert grows the box to cover p, maintaining boundary counts.
func (b *box) insert(p geom.Point) {
	if p.X < b.minX {
		b.minX, b.nMinX = p.X, 1
	} else if p.X == b.minX {
		b.nMinX++
	}
	if p.X > b.maxX {
		b.maxX, b.nMaxX = p.X, 1
	} else if p.X == b.maxX {
		b.nMaxX++
	}
	if p.Y < b.minY {
		b.minY, b.nMinY = p.Y, 1
	} else if p.Y == b.minY {
		b.nMinY++
	}
	if p.Y > b.maxY {
		b.maxY, b.nMaxY = p.Y, 1
	} else if p.Y == b.maxY {
		b.nMaxY++
	}
}

// grow extends the box extremes to cover p without maintaining boundary
// counts — for trial boxes that only ever gain points before being read.
func (b *box) grow(p geom.Point) {
	b.minX = min(b.minX, p.X)
	b.maxX = max(b.maxX, p.X)
	b.minY = min(b.minY, p.Y)
	b.maxY = max(b.maxY, p.Y)
}

// remove drops p from the box. It returns false when p was the only pin on
// some boundary, in which case the box is stale and the net must be
// rescanned (any counts already decremented are discarded by the rescan).
func (b *box) remove(p geom.Point) bool {
	ok := true
	if p.X == b.minX {
		if b.nMinX--; b.nMinX == 0 {
			ok = false
		}
	}
	if p.X == b.maxX {
		if b.nMaxX--; b.nMaxX == 0 {
			ok = false
		}
	}
	if p.Y == b.minY {
		if b.nMinY--; b.nMinY == 0 {
			ok = false
		}
	}
	if p.Y == b.maxY {
		if b.nMaxY--; b.nMaxY == 0 {
			ok = false
		}
	}
	return ok
}

type savedBox struct {
	net int
	b   box
}

type savedCell struct {
	cell int
	pos  geom.Point
}

// BBoxCache caches every net's exact bounding box over a design and keeps
// the boxes in sync as cells move through it. All position changes must go
// through Move (directly or inside a Begin/Revert-or-Commit transaction);
// positions changed behind the cache's back require a Rebuild.
type BBoxCache struct {
	d      *db.Design
	boxes  []box
	weight []float64    // net weight with the 0→1 default resolved
	offs   []geom.Point // per-pin orientation-resolved offset (cells do not reorient during DP)

	// Transaction state: one saved box per touched net and one saved
	// position per Move, replayed in reverse by Revert.
	inTxn      bool
	txnEpoch   uint32
	netSaved   []uint32
	savedBoxes []savedBox
	savedCells []savedCell

	// Per-move scratch: nets that lost a sole-extreme pin and need a
	// rescan after the cell's new position lands.
	moveEpoch uint32
	moveDirty []uint32
	dirty     []int

	// Cost dedups nets across a cell group with an epoch-stamped seen
	// slice (the allocation-free replacement for a per-call map).
	seenEpoch uint32
	seen      []uint32

	// observer, when non-nil, is notified around every Move and after
	// Revert/Commit (see Observer). Nil costs nothing.
	observer Observer
}

// Observer receives position-change notifications from a BBoxCache.
// PreMove fires before a Move mutates anything (the observer sees the
// pre-move design, boxes and pin positions) and PostMove after the boxes
// are exact again. Reverted/Committed fire after the corresponding
// transaction close, once the cache state is final. Derived structures —
// the incremental congestion estimator (internal/estimate) is the
// canonical one — use the pair to maintain their own state in
// O(pins-on-cell) without polling.
type Observer interface {
	PreMove(ci int)
	PostMove(ci int)
	Reverted()
	Committed()
}

// SetObserver installs (or, with nil, removes) the cache's observer.
// Install before the first Move the observer must see; the cache never
// replays history.
func (c *BBoxCache) SetObserver(o Observer) { c.observer = o }

// InTxn reports whether a Begin transaction is open — i.e. whether moves
// seen now may still be undone by Revert.
func (c *BBoxCache) InTxn() bool { return c.inTxn }

// NetBox returns the net's exact cached pin bounding box. For nets with
// no pins the returned rectangle is inverted (Lo = +Inf, Hi = −Inf).
func (c *BBoxCache) NetBox(ni int) geom.Rect {
	b := &c.boxes[ni]
	return geom.Rect{
		Lo: geom.Point{X: b.minX, Y: b.minY},
		Hi: geom.Point{X: b.maxX, Y: b.maxY},
	}
}

// NetWeight returns the net's weight with the 0→1 default resolved, the
// same value Cost uses.
func (c *BBoxCache) NetWeight(ni int) float64 { return c.weight[ni] }

// New builds the cache for the design's current positions and cell
// orientations. Orientation changes behind the cache's back require a
// Rebuild, like position changes.
func New(d *db.Design) *BBoxCache {
	c := &BBoxCache{
		d:         d,
		boxes:     make([]box, len(d.Nets)),
		weight:    make([]float64, len(d.Nets)),
		offs:      make([]geom.Point, len(d.Pins)),
		netSaved:  make([]uint32, len(d.Nets)),
		moveDirty: make([]uint32, len(d.Nets)),
		seen:      make([]uint32, len(d.Nets)),
	}
	c.resolve()
	return c
}

// resolve recomputes the per-pin oriented offsets and every box.
func (c *BBoxCache) resolve() {
	d := c.d
	for pi := range d.Pins {
		pin := &d.Pins[pi]
		c.offs[pi] = d.Cells[pin.Cell].OrientOffset(pin.Offset)
	}
	for ni := range d.Nets {
		w := d.Nets[ni].Weight
		if w == 0 {
			w = 1
		}
		c.weight[ni] = w
		c.boxes[ni] = c.compute(ni)
	}
}

// pinAt is pin pi's position with its cell at pos.
func (c *BBoxCache) pinAt(pi int, pos geom.Point) geom.Point {
	return pos.Add(c.offs[pi])
}

// PinPos is pin pi's current position, through the precomputed oriented
// offsets — equivalent to db.Design.PinPos but without re-deriving the
// orientation per call.
func (c *BBoxCache) PinPos(pi int) geom.Point {
	return c.d.Cells[c.d.Pins[pi].Cell].Pos.Add(c.offs[pi])
}

// Design returns the design the cache tracks.
func (c *BBoxCache) Design() *db.Design { return c.d }

// Rebuild recomputes every box (and oriented pin offset) from the
// design's current state. Call it after positions or orientations changed
// without going through Move.
func (c *BBoxCache) Rebuild() { c.resolve() }

// compute scans a net's pins into a fresh box.
func (c *BBoxCache) compute(ni int) box {
	b := emptyBox()
	for _, pi := range c.d.Nets[ni].Pins {
		b.insert(c.pinAt(pi, c.d.Cells[c.d.Pins[pi].Cell].Pos))
	}
	return b
}

// NetHPWL returns the net's exact half-perimeter from the cached box.
func (c *BBoxCache) NetHPWL(ni int) float64 {
	if len(c.d.Nets[ni].Pins) < 2 {
		return 0
	}
	return c.boxes[ni].hpwl()
}

// Cost returns the summed weighted HPWL of every distinct net touching the
// given cells, read straight from the cached boxes — O(pins on the cells),
// no recomputation, no allocation.
func (c *BBoxCache) Cost(cells []int) float64 {
	bumpEpoch(&c.seenEpoch, c.seen)
	var total float64
	for _, ci := range cells {
		for _, pi := range c.d.Cells[ci].Pins {
			ni := c.d.Pins[pi].Net
			if c.seen[ni] == c.seenEpoch {
				continue
			}
			c.seen[ni] = c.seenEpoch
			total += c.weight[ni] * c.NetHPWL(ni)
		}
	}
	return total
}

// Begin opens a transaction: every Move until Revert or Commit is
// journaled. Transactions do not nest.
func (c *BBoxCache) Begin() {
	if c.inTxn {
		panic("incr: nested Begin")
	}
	c.inTxn = true
	bumpEpoch(&c.txnEpoch, c.netSaved)
	c.savedBoxes = c.savedBoxes[:0]
	c.savedCells = c.savedCells[:0]
}

// Move places cell ci at to, updating the design position and every
// incident net's box. Amortized O(pins-on-cell): a rescan happens only
// when a moved pin was the sole pin on a box boundary. Outside a
// transaction the move is permanent.
func (c *BBoxCache) Move(ci int, to geom.Point) {
	if c.observer != nil {
		c.observer.PreMove(ci)
	}
	d := c.d
	cell := &d.Cells[ci]
	from := cell.Pos
	if c.inTxn {
		c.savedCells = append(c.savedCells, savedCell{ci, from})
	}
	bumpEpoch(&c.moveEpoch, c.moveDirty)
	c.dirty = c.dirty[:0]
	// Phase 1: journal boxes and remove the old pin points.
	for _, pi := range cell.Pins {
		ni := d.Pins[pi].Net
		if c.inTxn && c.netSaved[ni] != c.txnEpoch {
			c.netSaved[ni] = c.txnEpoch
			c.savedBoxes = append(c.savedBoxes, savedBox{ni, c.boxes[ni]})
		}
		if c.moveDirty[ni] == c.moveEpoch {
			continue // already scheduled for a rescan
		}
		if !c.boxes[ni].remove(from.Add(c.offs[pi])) {
			c.moveDirty[ni] = c.moveEpoch
			c.dirty = append(c.dirty, ni)
		}
	}
	cell.Pos = to
	// Phase 2: insert the new pin points into the still-valid boxes.
	for _, pi := range cell.Pins {
		ni := d.Pins[pi].Net
		if c.moveDirty[ni] == c.moveEpoch {
			continue
		}
		c.boxes[ni].insert(to.Add(c.offs[pi]))
	}
	// Phase 3: rescan the nets that lost a boundary (the cell's position
	// is already updated, so the scan sees the post-move truth).
	for _, ni := range c.dirty {
		c.boxes[ni] = c.compute(ni)
	}
	if c.observer != nil {
		c.observer.PostMove(ci)
	}
}

// Revert undoes every Move since Begin and closes the transaction.
func (c *BBoxCache) Revert() {
	for i := len(c.savedCells) - 1; i >= 0; i-- {
		s := c.savedCells[i]
		c.d.Cells[s.cell].Pos = s.pos
	}
	for i := len(c.savedBoxes) - 1; i >= 0; i-- {
		s := c.savedBoxes[i]
		c.boxes[s.net] = s.b
	}
	c.savedCells = c.savedCells[:0]
	c.savedBoxes = c.savedBoxes[:0]
	c.inTxn = false
	if c.observer != nil {
		c.observer.Reverted()
	}
}

// Commit keeps every Move since Begin and closes the transaction.
func (c *BBoxCache) Commit() {
	c.savedCells = c.savedCells[:0]
	c.savedBoxes = c.savedBoxes[:0]
	c.inTxn = false
	if c.observer != nil {
		c.observer.Committed()
	}
}

// bumpEpoch advances an epoch counter, clearing its stamp slice on the
// (rare) wrap so stale stamps can never collide with a live epoch.
func bumpEpoch(e *uint32, stamps []uint32) {
	*e++
	if *e == 0 {
		for i := range stamps {
			stamps[i] = 0
		}
		*e = 1
	}
}
