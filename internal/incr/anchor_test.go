package incr

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// weightedHPWL recomputes the design's total weighted HPWL from scratch,
// with the same 0→1 weight default the cache resolves.
func weightedHPWL(c *BBoxCache) float64 {
	d := c.d
	var tot float64
	for ni := range d.Nets {
		w := d.Nets[ni].Weight
		if w == 0 {
			w = 1
		}
		tot += w * d.NetHPWL(ni)
	}
	return tot
}

// builtAnchors returns a design, its cache, and anchors freshly built for
// every cell.
func builtAnchors(t *testing.T, seed int64) (*BBoxCache, *Anchors) {
	t.Helper()
	d := testDesign(t, seed)
	c := New(d)
	a := c.NewAnchors()
	for ci := range d.Cells {
		a.BuildCell(ci)
	}
	return c, a
}

// TestAnchorsMoveDeltaMatchesRecompute pins MoveDelta against a full
// recompute: mutate the design directly, re-sum every net, restore.
func TestAnchorsMoveDeltaMatchesRecompute(t *testing.T) {
	c, a := builtAnchors(t, 31)
	d := c.d
	rng := rand.New(rand.NewSource(31))
	before := weightedHPWL(c)
	movable := d.Movable()
	for trial := 0; trial < 200; trial++ {
		ci := movable[rng.Intn(len(movable))]
		to := geom.Point{
			X: d.Die.Lo.X + rng.Float64()*d.Die.W(),
			Y: d.Die.Lo.Y + rng.Float64()*d.Die.H(),
		}
		got := a.MoveDelta(ci, to)
		old := d.Cells[ci].Pos
		d.Cells[ci].Pos = to
		want := weightedHPWL(c) - before
		d.Cells[ci].Pos = old
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: MoveDelta(%d, %v) = %v, recompute %v", trial, ci, to, got, want)
		}
	}
}

// TestAnchorsSwapDeltaMatchesRecompute pins SwapDelta — both the
// net-disjoint fast path and the shared-net rescan — against a full
// recompute of the exchanged placement.
func TestAnchorsSwapDeltaMatchesRecompute(t *testing.T) {
	c, a := builtAnchors(t, 32)
	d := c.d
	rng := rand.New(rand.NewSource(32))
	before := weightedHPWL(c)
	movable := d.Movable()
	shared, disjoint := 0, 0
	for trial := 0; trial < 300; trial++ {
		ci := movable[rng.Intn(len(movable))]
		cj := movable[rng.Intn(len(movable))]
		if ci == cj {
			continue
		}
		if a.SharesNet(ci, cj) {
			shared++
		} else {
			disjoint++
		}
		got := a.SwapDelta(ci, cj)
		pi, pj := d.Cells[ci].Pos, d.Cells[cj].Pos
		d.Cells[ci].Pos, d.Cells[cj].Pos = pj, pi
		want := weightedHPWL(c) - before
		d.Cells[ci].Pos, d.Cells[cj].Pos = pi, pj
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: SwapDelta(%d, %d) = %v, recompute %v (shared=%v)",
				trial, ci, cj, got, want, a.SharesNet(ci, cj))
		}
	}
	if shared == 0 || disjoint == 0 {
		t.Fatalf("want both pair kinds exercised; shared=%d disjoint=%d", shared, disjoint)
	}
}

// TestAnchorsGroupDeltaMatchesRecompute pins GroupDelta on random
// three-cell groups against a full recompute of the group placement.
func TestAnchorsGroupDeltaMatchesRecompute(t *testing.T) {
	c, a := builtAnchors(t, 33)
	d := c.d
	rng := rand.New(rand.NewSource(33))
	before := weightedHPWL(c)
	movable := d.Movable()
	for trial := 0; trial < 200; trial++ {
		perm := rng.Perm(len(movable))
		cells := []int{movable[perm[0]], movable[perm[1]], movable[perm[2]]}
		pos := make([]geom.Point, len(cells))
		for i := range pos {
			pos[i] = geom.Point{
				X: d.Die.Lo.X + rng.Float64()*d.Die.W(),
				Y: d.Die.Lo.Y + rng.Float64()*d.Die.H(),
			}
		}
		got := a.GroupDelta(cells, pos)
		old := make([]geom.Point, len(cells))
		for i, ci := range cells {
			old[i] = d.Cells[ci].Pos
			d.Cells[ci].Pos = pos[i]
		}
		want := weightedHPWL(c) - before
		for i, ci := range cells {
			d.Cells[ci].Pos = old[i]
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: GroupDelta(%v) = %v, recompute %v", trial, cells, got, want)
		}
	}
}

// TestAnchorsOptimalPointMatchesScan pins OptimalPoint against the direct
// scan over every other-cell pin of the cell's nets.
func TestAnchorsOptimalPointMatchesScan(t *testing.T) {
	c, a := builtAnchors(t, 34)
	d := c.d
	for ci := range d.Cells {
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		found := false
		for _, pi := range d.Cells[ci].Pins {
			for _, qi := range d.Nets[d.Pins[pi].Net].Pins {
				if d.Pins[qi].Cell == ci {
					continue
				}
				p := c.PinPos(qi)
				minX, maxX = min(minX, p.X), max(maxX, p.X)
				minY, maxY = min(minY, p.Y), max(maxY, p.Y)
				found = true
			}
		}
		got, ok := a.OptimalPoint(ci)
		if ok != found {
			t.Fatalf("cell %d: OptimalPoint ok = %v, scan found = %v", ci, ok, found)
		}
		if !found {
			continue
		}
		want := geom.Point{X: (minX + maxX) / 2, Y: (minY + maxY) / 2}
		if math.Abs(got.X-want.X) > 1e-9 || math.Abs(got.Y-want.Y) > 1e-9 {
			t.Fatalf("cell %d: OptimalPoint = %v, scan center %v", ci, got, want)
		}
	}
}

// TestAnchorsMaxGainBoundsMoves checks the admissible bound: no single
// move of a cell may reduce cost by more than MaxGain.
func TestAnchorsMaxGainBoundsMoves(t *testing.T) {
	c, a := builtAnchors(t, 35)
	d := c.d
	rng := rand.New(rand.NewSource(35))
	movable := d.Movable()
	for trial := 0; trial < 500; trial++ {
		ci := movable[rng.Intn(len(movable))]
		to := geom.Point{
			X: d.Die.Lo.X + rng.Float64()*d.Die.W(),
			Y: d.Die.Lo.Y + rng.Float64()*d.Die.H(),
		}
		if gain := -a.MoveDelta(ci, to); gain > a.MaxGain(ci)+1e-9 {
			t.Fatalf("trial %d: move of %d gains %v, exceeding MaxGain %v", trial, ci, gain, a.MaxGain(ci))
		}
	}
}

// TestAnchorsTrackCacheCommits rebuilds after committed cache moves and
// re-verifies MoveDelta exactness against the new frozen state.
func TestAnchorsTrackCacheCommits(t *testing.T) {
	c, a := builtAnchors(t, 36)
	d := c.d
	rng := rand.New(rand.NewSource(36))
	movable := d.Movable()
	for round := 0; round < 5; round++ {
		for k := 0; k < 10; k++ {
			ci := movable[rng.Intn(len(movable))]
			c.Move(ci, geom.Point{
				X: d.Die.Lo.X + rng.Float64()*d.Die.W(),
				Y: d.Die.Lo.Y + rng.Float64()*d.Die.H(),
			})
		}
		for ci := range d.Cells {
			a.BuildCell(ci)
		}
		before := weightedHPWL(c)
		ci := movable[rng.Intn(len(movable))]
		to := geom.Point{X: d.Die.Lo.X + rng.Float64()*d.Die.W(), Y: d.Die.Lo.Y}
		got := a.MoveDelta(ci, to)
		old := d.Cells[ci].Pos
		d.Cells[ci].Pos = to
		want := weightedHPWL(c) - before
		d.Cells[ci].Pos = old
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("round %d: MoveDelta after commits = %v, recompute %v", round, got, want)
		}
	}
}

// TestAnchorScoringNoAllocs pins the scoring hot paths at zero
// allocations.
func TestAnchorScoringNoAllocs(t *testing.T) {
	c, a := builtAnchors(t, 37)
	d := c.d
	movable := d.Movable()
	ci, cj, ck := movable[0], movable[1], movable[2]
	cells := []int{ci, cj, ck}
	pos := []geom.Point{d.Cells[cj].Pos, d.Cells[ck].Pos, d.Cells[ci].Pos}
	var sink float64
	if n := testing.AllocsPerRun(100, func() {
		sink += a.MoveDelta(ci, pos[0])
		sink += a.SwapDelta(ci, cj)
		sink += a.GroupDelta(cells, pos)
		sink += a.MaxGain(ck)
	}); n != 0 {
		t.Fatalf("anchor scoring allocates %v/op, want 0", n)
	}
	_ = sink
}

// TestAnchorsDegenerateNets pins the ECO-delta shapes: nets that dropped
// to one or zero pins after a cell removal must be excluded from the
// anchor topology, not crash its construction.
func TestAnchorsDegenerateNets(t *testing.T) {
	d := testDesign(t, 47)
	// Empty one net entirely and thin another to a single pin, the way
	// removeCells leaves them (pins detached, nets kept).
	if len(d.Nets) < 2 {
		t.Fatal("test design has too few nets")
	}
	d.Nets[0].Pins = nil
	if len(d.Nets[1].Pins) > 1 {
		d.Nets[1].Pins = d.Nets[1].Pins[:1]
	}
	c := New(d)
	a := c.NewAnchors()
	for ci := range d.Cells {
		a.BuildCell(ci)
	}
	for ci := range d.Cells {
		for _, ni := range a.nets[ci] {
			if len(d.Nets[ni].Pins) < 2 {
				t.Fatalf("cell %d anchors degenerate net %d (%d pins)", ci, ni, len(d.Nets[ni].Pins))
			}
		}
	}
}
