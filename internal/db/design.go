package db

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// RouteInfo carries the global-routing grid description from a Bookshelf
// .route file (or a synthetic equivalent): the g-cell grid, per-layer
// capacities, wire geometry, and porosity adjustments over blockages.
type RouteInfo struct {
	GridX, GridY, Layers int
	// VertCap and HorizCap give per-layer routing capacity in tracks.
	VertCap, HorizCap []float64
	MinWidth          []float64
	MinSpacing        []float64
	ViaSpacing        []float64
	// Origin of the grid and tile dimensions in database units.
	Origin       geom.Point
	TileW, TileH float64
	// BlockagePorosity is the fraction of capacity that survives above a
	// placement blockage (0 = fully blocked).
	BlockagePorosity float64
	// NiTerminals lists cells whose pins are not on the top routing layer
	// (kept for format fidelity; unused by the simplified router).
	NiTerminals []int
	// Blockages lists explicit capacity reductions: the cell's footprint
	// blocks the given layers completely.
	Blockages []RouteBlockage
}

// RouteBlockage marks the layers fully blocked under a cell's footprint.
type RouteBlockage struct {
	Cell   int
	Layers []int
}

// Design is a complete placement problem instance.
type Design struct {
	Name string
	// Die is the placeable area (core region).
	Die     geom.Rect
	Cells   []Cell
	Pins    []Pin
	Nets    []Net
	Rows    []Row
	Regions []Region
	Modules []Module
	Route   *RouteInfo

	cellByName map[string]int
}

// CellIndex returns the index of the named cell, or -1.
func (d *Design) CellIndex(name string) int {
	if d.cellByName == nil {
		d.cellByName = make(map[string]int, len(d.Cells))
		for i := range d.Cells {
			d.cellByName[d.Cells[i].Name] = i
		}
	}
	if i, ok := d.cellByName[name]; ok {
		return i
	}
	return -1
}

// InvalidateNameIndex must be called after renaming or re-slicing Cells.
func (d *Design) InvalidateNameIndex() { d.cellByName = nil }

// PinPos returns the absolute position of pin p, honoring the owning cell's
// orientation.
func (d *Design) PinPos(p int) geom.Point {
	pin := &d.Pins[p]
	c := &d.Cells[pin.Cell]
	return c.Pos.Add(c.OrientOffset(pin.Offset))
}

// NetBBox returns the bounding box of the net's pins. A net with fewer than
// one pin yields an empty rectangle.
func (d *Design) NetBBox(n int) geom.Rect {
	net := &d.Nets[n]
	if len(net.Pins) == 0 {
		return geom.Rect{}
	}
	p0 := d.PinPos(net.Pins[0])
	bb := geom.Rect{Lo: p0, Hi: p0}
	for _, p := range net.Pins[1:] {
		q := d.PinPos(p)
		if q.X < bb.Lo.X {
			bb.Lo.X = q.X
		}
		if q.Y < bb.Lo.Y {
			bb.Lo.Y = q.Y
		}
		if q.X > bb.Hi.X {
			bb.Hi.X = q.X
		}
		if q.Y > bb.Hi.Y {
			bb.Hi.Y = q.Y
		}
	}
	return bb
}

// NetHPWL returns the half-perimeter wirelength of one net.
func (d *Design) NetHPWL(n int) float64 {
	if d.Nets[n].Degree() < 2 {
		return 0
	}
	bb := d.NetBBox(n)
	return (bb.Hi.X - bb.Lo.X) + (bb.Hi.Y - bb.Lo.Y)
}

// HPWL returns the total weighted half-perimeter wirelength of the design.
func (d *Design) HPWL() float64 {
	var total float64
	for i := range d.Nets {
		w := d.Nets[i].Weight
		if w == 0 {
			w = 1
		}
		total += w * d.NetHPWL(i)
	}
	return total
}

// MovableArea returns the total geometric area of movable cells.
func (d *Design) MovableArea() float64 {
	var a float64
	for i := range d.Cells {
		if d.Cells[i].Movable() {
			a += d.Cells[i].Area()
		}
	}
	return a
}

// FixedAreaInDie returns the area of fixed, space-occupying objects clipped
// to the die (terminals are excluded: they sit on the boundary and occupy
// no row area).
func (d *Design) FixedAreaInDie() float64 {
	var a float64
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Movable() || c.Kind == Terminal {
			continue
		}
		a += c.Rect().Intersect(d.Die).Area()
	}
	return a
}

// Utilization returns movable area divided by free die area.
func (d *Design) Utilization() float64 {
	free := d.Die.Area() - d.FixedAreaInDie()
	if free <= 0 {
		return math.Inf(1)
	}
	return d.MovableArea() / free
}

// RowHeight returns the common row height, or 0 when the design has no rows.
func (d *Design) RowHeight() float64 {
	if len(d.Rows) == 0 {
		return 0
	}
	return d.Rows[0].Height
}

// Movable returns the indices of all movable cells.
func (d *Design) Movable() []int {
	out := make([]int, 0, len(d.Cells))
	for i := range d.Cells {
		if d.Cells[i].Movable() {
			out = append(out, i)
		}
	}
	return out
}

// MovableMacros returns the indices of movable macro cells.
func (d *Design) MovableMacros() []int {
	var out []int
	for i := range d.Cells {
		if d.Cells[i].Movable() && d.Cells[i].Kind == Macro {
			out = append(out, i)
		}
	}
	return out
}

// CellRegion returns the effective fence region of a cell: the cell's own
// assignment, or the nearest enclosing module's, or NoRegion.
func (d *Design) CellRegion(ci int) int {
	c := &d.Cells[ci]
	if c.Region != NoRegion {
		return c.Region
	}
	m := c.Module
	for m != NoModule {
		if d.Modules[m].Region != NoRegion {
			return d.Modules[m].Region
		}
		m = d.Modules[m].Parent
	}
	return NoRegion
}

// ModuleDepth returns the depth of module m in the hierarchy (root = 0).
func (d *Design) ModuleDepth(m int) int {
	depth := 0
	for m != NoModule && d.Modules[m].Parent != NoModule {
		m = d.Modules[m].Parent
		depth++
	}
	return depth
}

// ModulePath returns the slash-separated path of module m from the root.
func (d *Design) ModulePath(m int) string {
	if m == NoModule {
		return "/"
	}
	var parts []string
	for m != NoModule {
		parts = append(parts, d.Modules[m].Name)
		m = d.Modules[m].Parent
	}
	// Reverse.
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	path := ""
	for _, p := range parts {
		path += "/" + p
	}
	return path
}

// Clone returns a deep copy of the design. Positions, orientations and
// inflation ratios in the clone can be modified without affecting the
// original.
func (d *Design) Clone() *Design {
	out := &Design{
		Name:    d.Name,
		Die:     d.Die,
		Cells:   make([]Cell, len(d.Cells)),
		Pins:    make([]Pin, len(d.Pins)),
		Nets:    make([]Net, len(d.Nets)),
		Rows:    make([]Row, len(d.Rows)),
		Regions: make([]Region, len(d.Regions)),
		Modules: make([]Module, len(d.Modules)),
	}
	copy(out.Pins, d.Pins)
	copy(out.Rows, d.Rows)
	for i := range d.Cells {
		out.Cells[i] = d.Cells[i]
		out.Cells[i].Pins = append([]int(nil), d.Cells[i].Pins...)
	}
	for i := range d.Nets {
		out.Nets[i] = d.Nets[i]
		out.Nets[i].Pins = append([]int(nil), d.Nets[i].Pins...)
	}
	for i := range d.Regions {
		out.Regions[i] = d.Regions[i]
		out.Regions[i].Rects = append([]geom.Rect(nil), d.Regions[i].Rects...)
	}
	for i := range d.Modules {
		out.Modules[i] = d.Modules[i]
		out.Modules[i].Children = append([]int(nil), d.Modules[i].Children...)
		out.Modules[i].Cells = append([]int(nil), d.Modules[i].Cells...)
	}
	if d.Route != nil {
		r := *d.Route
		r.VertCap = append([]float64(nil), d.Route.VertCap...)
		r.HorizCap = append([]float64(nil), d.Route.HorizCap...)
		r.MinWidth = append([]float64(nil), d.Route.MinWidth...)
		r.MinSpacing = append([]float64(nil), d.Route.MinSpacing...)
		r.ViaSpacing = append([]float64(nil), d.Route.ViaSpacing...)
		r.NiTerminals = append([]int(nil), d.Route.NiTerminals...)
		r.Blockages = make([]RouteBlockage, len(d.Route.Blockages))
		for i := range d.Route.Blockages {
			r.Blockages[i] = d.Route.Blockages[i]
			r.Blockages[i].Layers = append([]int(nil), d.Route.Blockages[i].Layers...)
		}
		out.Route = &r
	}
	return out
}

// CopyPositionsFrom copies cell positions and orientations from src, which
// must have the same cell count.
func (d *Design) CopyPositionsFrom(src *Design) error {
	if len(src.Cells) != len(d.Cells) {
		return fmt.Errorf("db: position copy between designs with %d and %d cells", len(src.Cells), len(d.Cells))
	}
	for i := range d.Cells {
		d.Cells[i].Pos = src.Cells[i].Pos
		d.Cells[i].Orient = src.Cells[i].Orient
	}
	return nil
}
