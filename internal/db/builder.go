package db

import (
	"fmt"

	"repro/internal/geom"
)

// Builder assembles a Design incrementally with automatic cross-linking of
// cells, pins and nets. It is the programmatic construction path used by
// the synthetic benchmark generator, the examples and tests; the Bookshelf
// reader uses it too, so both paths produce identically-wired databases.
type Builder struct {
	d    *Design
	errs []error
}

// NewBuilder starts a design with the given name and die area.
func NewBuilder(name string, die geom.Rect) *Builder {
	return &Builder{d: &Design{Name: name, Die: die}}
}

// AddCell appends a cell and returns its index. The cell's Pins slice is
// managed by the builder; pass it empty.
func (b *Builder) AddCell(c Cell) int {
	if c.Inflate == 0 {
		c.Inflate = 1
	}
	if c.Module == 0 && len(b.d.Modules) == 0 {
		c.Module = NoModule
	}
	b.d.Cells = append(b.d.Cells, c)
	return len(b.d.Cells) - 1
}

// AddStdCell is a convenience wrapper for a movable standard cell.
func (b *Builder) AddStdCell(name string, w, h float64) int {
	return b.AddCell(Cell{Name: name, Kind: StdCell, BaseW: w, BaseH: h, Region: NoRegion, Module: NoModule, Inflate: 1})
}

// AddMacro adds a macro cell; fixed macros act as placement blockages.
func (b *Builder) AddMacro(name string, w, h float64, fixed bool) int {
	return b.AddCell(Cell{Name: name, Kind: Macro, BaseW: w, BaseH: h, Fixed: fixed, Region: NoRegion, Module: NoModule, Inflate: 1})
}

// AddTerminal adds a fixed zero-area I/O terminal at the given position.
func (b *Builder) AddTerminal(name string, at geom.Point) int {
	return b.AddCell(Cell{Name: name, Kind: Terminal, Fixed: true, Pos: at, Region: NoRegion, Module: NoModule, Inflate: 1})
}

// AddNet creates a net connecting pins at the given cell/offset pairs and
// returns the net index.
func (b *Builder) AddNet(name string, weight float64, conns ...Conn) int {
	ni := len(b.d.Nets)
	net := Net{Name: name, Weight: weight}
	for _, cn := range conns {
		if cn.Cell < 0 || cn.Cell >= len(b.d.Cells) {
			b.errs = append(b.errs, fmt.Errorf("db: net %q connects to cell %d out of range", name, cn.Cell))
			continue
		}
		pi := len(b.d.Pins)
		b.d.Pins = append(b.d.Pins, Pin{Cell: cn.Cell, Net: ni, Offset: cn.Offset})
		b.d.Cells[cn.Cell].Pins = append(b.d.Cells[cn.Cell].Pins, pi)
		net.Pins = append(net.Pins, pi)
	}
	b.d.Nets = append(b.d.Nets, net)
	return ni
}

// Conn names one connection of a net: a cell and the pin offset from the
// cell's lower-left corner (reference orientation).
type Conn struct {
	Cell   int
	Offset geom.Point
}

// CenterConn returns a Conn at the center of the given cell.
func (b *Builder) CenterConn(cell int) Conn {
	c := &b.d.Cells[cell]
	return Conn{Cell: cell, Offset: geom.Point{X: c.BaseW / 2, Y: c.BaseH / 2}}
}

// AddRegion appends a fence region and returns its index.
func (b *Builder) AddRegion(name string, rects ...geom.Rect) int {
	b.d.Regions = append(b.d.Regions, Region{Name: name, Rects: rects})
	return len(b.d.Regions) - 1
}

// AddModule appends a hierarchy module under the given parent (use
// NoModule only for the root, which must be added first) and returns its
// index.
func (b *Builder) AddModule(name string, parent int, region int) int {
	mi := len(b.d.Modules)
	if parent == NoModule && mi != 0 {
		b.errs = append(b.errs, fmt.Errorf("db: module %q declared as second root", name))
	}
	if parent != NoModule {
		if parent < 0 || parent >= mi {
			b.errs = append(b.errs, fmt.Errorf("db: module %q has invalid parent %d", name, parent))
			return -1
		}
		b.d.Modules[parent].Children = append(b.d.Modules[parent].Children, mi)
	}
	b.d.Modules = append(b.d.Modules, Module{Name: name, Parent: parent, Region: region})
	return mi
}

// AssignModule puts a cell under a module.
func (b *Builder) AssignModule(cell, module int) {
	if cell < 0 || cell >= len(b.d.Cells) || module < 0 || module >= len(b.d.Modules) {
		b.errs = append(b.errs, fmt.Errorf("db: AssignModule(%d, %d) out of range", cell, module))
		return
	}
	b.d.Cells[cell].Module = module
	b.d.Modules[module].Cells = append(b.d.Modules[module].Cells, cell)
}

// MakeRows fills the die with uniform standard-cell rows of the given
// height and site width.
func (b *Builder) MakeRows(rowHeight, siteWidth float64) {
	die := b.d.Die
	n := int(die.H() / rowHeight)
	sites := int(die.W() / siteWidth)
	for i := 0; i < n; i++ {
		b.d.Rows = append(b.d.Rows, Row{
			Y:         die.Lo.Y + float64(i)*rowHeight,
			Height:    rowHeight,
			X:         die.Lo.X,
			SiteWidth: siteWidth,
			NumSites:  sites,
		})
	}
}

// SetCellPos places a cell during construction (used for fixed objects
// whose positions later construction steps depend on).
func (b *Builder) SetCellPos(cell int, p geom.Point) {
	if cell < 0 || cell >= len(b.d.Cells) {
		b.errs = append(b.errs, fmt.Errorf("db: SetCellPos(%d) out of range", cell))
		return
	}
	b.d.Cells[cell].Pos = p
}

// CellRect returns the current rectangle of a cell under construction.
func (b *Builder) CellRect(cell int) geom.Rect { return b.d.Cells[cell].Rect() }

// CellDims returns the base dimensions of a cell under construction.
func (b *Builder) CellDims(cell int) (w, h float64) {
	return b.d.Cells[cell].BaseW, b.d.Cells[cell].BaseH
}

// SetRoute attaches routing-grid information.
func (b *Builder) SetRoute(r *RouteInfo) { b.d.Route = r }

// Design returns the assembled design after validating it; construction
// errors collected along the way are returned first.
func (b *Builder) Design() (*Design, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if err := b.d.Validate(); err != nil {
		return nil, err
	}
	return b.d, nil
}

// MustDesign is Design for tests and generators with known-good input;
// it panics on error.
func (b *Builder) MustDesign() *Design {
	d, err := b.Design()
	if err != nil {
		panic(err)
	}
	return d
}
