package db

import (
	"testing"

	"repro/internal/geom"
)

func TestFingerprintStableAcrossClone(t *testing.T) {
	d := tiny(t)
	d.Cells[0].Pos = geom.Point{X: 12, Y: 4}
	fp := d.Fingerprint()
	if fp2 := d.Fingerprint(); fp2 != fp {
		t.Fatal("fingerprint not deterministic on the same design")
	}
	if fpc := d.Clone().Fingerprint(); fpc != fp {
		t.Fatal("clone fingerprints differently")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := tiny(t).Fingerprint()
	perturb := []struct {
		name string
		mod  func(d *Design)
	}{
		{"position", func(d *Design) { d.Cells[0].Pos.X += 1 }},
		{"orientation", func(d *Design) { d.Cells[0].Orient = FN }},
		{"width", func(d *Design) { d.Cells[0].BaseW += 1 }},
		{"fixed", func(d *Design) { d.Cells[0].Fixed = true }},
		{"cell-name", func(d *Design) { d.Cells[0].Name = "renamed" }},
		{"net-weight", func(d *Design) { d.Nets[0].Weight = 3 }},
		{"pin-offset", func(d *Design) { d.Pins[0].Offset.X += 0.5 }},
		{"die", func(d *Design) { d.Die.Hi.X += 10 }},
		{"row", func(d *Design) { d.Rows[0].Height += 1 }},
	}
	for _, tc := range perturb {
		d := tiny(t)
		tc.mod(d)
		if d.Fingerprint() == base {
			t.Errorf("%s change did not alter the fingerprint", tc.name)
		}
	}
}

func TestFingerprintIgnoresDerivedState(t *testing.T) {
	d := tiny(t)
	base := d.Fingerprint()

	// Inflation ratios are routability-driven derived state, not input.
	d.Cells[0].Inflate = 1.5
	if d.Fingerprint() != base {
		t.Error("inflation ratio leaked into the fingerprint")
	}
	d.Cells[0].Inflate = 1

	// Net names are synthesized by readers when absent.
	d.Nets[0].Name = "other_name"
	if d.Fingerprint() != base {
		t.Error("net name leaked into the fingerprint")
	}
	d.Nets[0].Name = "n0"

	// Weight 0 hashes as the HPWL-effective default of 1.
	d0 := tiny(t)
	d0.Nets[0].Weight = 0
	d1 := tiny(t)
	d1.Nets[0].Weight = 1
	if d0.Fingerprint() != d1.Fingerprint() {
		t.Error("zero net weight fingerprints differently from weight 1")
	}

	// -0.0 canonicalizes to 0.0.
	dn := tiny(t)
	dn.Cells[0].Pos.X = negZero()
	if dn.Fingerprint() != base {
		t.Error("-0.0 position fingerprints differently from 0.0")
	}
}

// negZero returns -0.0 without tripping the compiler's constant folding.
func negZero() float64 {
	z := 0.0
	return -z
}
