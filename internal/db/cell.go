// Package db holds the placement design database: cells, nets, pins, rows,
// fence regions and the logical hierarchy tree, together with validation,
// statistics and the geometric queries (pin positions, cell rectangles,
// HPWL) that every placement stage shares.
//
// The database is deliberately index-based: cells, pins, nets, regions and
// modules are identified by their position in the corresponding Design
// slice. This keeps the hot placement loops allocation-free and makes
// cloning a design a set of slice copies.
package db

import (
	"fmt"

	"repro/internal/geom"
)

// CellKind classifies a node in the netlist.
type CellKind int

const (
	// StdCell is a standard cell: movable (unless fixed) and row-aligned
	// after legalization.
	StdCell CellKind = iota
	// Macro is a large pre-designed block; it may be movable during global
	// placement and is legalized before standard cells.
	Macro
	// Terminal is an I/O pad or other fixed pin-bearing object that does
	// not occupy placement area within rows.
	Terminal
)

func (k CellKind) String() string {
	switch k {
	case StdCell:
		return "stdcell"
	case Macro:
		return "macro"
	case Terminal:
		return "terminal"
	default:
		return fmt.Sprintf("CellKind(%d)", int(k))
	}
}

// Orient is one of the eight Bookshelf placement orientations. N is the
// reference orientation in which pin offsets are specified.
type Orient int

const (
	N  Orient = iota // reference
	S                // rotated 180°
	E                // rotated 90° clockwise
	W                // rotated 90° counterclockwise
	FN               // mirrored about the y axis
	FS               // mirrored about the x axis
	FE               // E then mirrored about the y axis
	FW               // W then mirrored about the y axis
)

var orientNames = [...]string{"N", "S", "E", "W", "FN", "FS", "FE", "FW"}

func (o Orient) String() string {
	if o >= 0 && int(o) < len(orientNames) {
		return orientNames[o]
	}
	return fmt.Sprintf("Orient(%d)", int(o))
}

// ParseOrient converts a Bookshelf orientation token. It returns N for
// unknown tokens along with false.
func ParseOrient(s string) (Orient, bool) {
	for i, n := range orientNames {
		if n == s {
			return Orient(i), true
		}
	}
	return N, false
}

// Rotated reports whether the orientation swaps the cell's width and height.
func (o Orient) Rotated() bool { return o == E || o == W || o == FE || o == FW }

// NoRegion marks a cell or module that is not constrained to a fence region.
const NoRegion = -1

// NoModule marks a cell that belongs directly to the hierarchy root.
const NoModule = -1

// Cell is one placeable (or fixed) object.
type Cell struct {
	Name string
	Kind CellKind
	// BaseW and BaseH are the dimensions in the reference N orientation.
	BaseW, BaseH float64
	// Pos is the lower-left corner of the cell's current bounding box.
	Pos    geom.Point
	Orient Orient
	Fixed  bool
	// Region is the index of the fence region constraining this cell, or
	// NoRegion.
	Region int
	// Module is the index of the hierarchy module that directly owns this
	// cell, or NoModule for root-level cells.
	Module int
	// Inflate is the routability inflation ratio applied to the cell's
	// area during density accounting; 1 means no inflation. The geometric
	// footprint used for legality is never inflated.
	Inflate float64
	// Pins lists the design-wide pin indices attached to this cell.
	Pins []int
}

// W returns the current width, accounting for orientation.
func (c *Cell) W() float64 {
	if c.Orient.Rotated() {
		return c.BaseH
	}
	return c.BaseW
}

// H returns the current height, accounting for orientation.
func (c *Cell) H() float64 {
	if c.Orient.Rotated() {
		return c.BaseW
	}
	return c.BaseH
}

// Area returns the geometric area of the cell.
func (c *Cell) Area() float64 { return c.BaseW * c.BaseH }

// InflatedArea returns the density-accounting area after routability
// inflation. Cells constructed without SetInflate default to ratio 1.
func (c *Cell) InflatedArea() float64 {
	if c.Inflate <= 1 {
		return c.Area()
	}
	return c.Area() * c.Inflate
}

// Rect returns the cell's current bounding rectangle.
func (c *Cell) Rect() geom.Rect {
	return geom.Rect{Lo: c.Pos, Hi: geom.Point{X: c.Pos.X + c.W(), Y: c.Pos.Y + c.H()}}
}

// Center returns the cell's current center point.
func (c *Cell) Center() geom.Point {
	return geom.Point{X: c.Pos.X + c.W()/2, Y: c.Pos.Y + c.H()/2}
}

// SetCenter moves the cell so its center is at p.
func (c *Cell) SetCenter(p geom.Point) {
	c.Pos = geom.Point{X: p.X - c.W()/2, Y: p.Y - c.H()/2}
}

// Movable reports whether the placer may move this cell.
func (c *Cell) Movable() bool { return !c.Fixed && c.Kind != Terminal }

// OrientOffset transforms a pin offset given in the reference N orientation
// into the cell's current orientation. The offset is measured from the
// cell's lower-left corner.
func (c *Cell) OrientOffset(off geom.Point) geom.Point {
	w, h := c.BaseW, c.BaseH
	switch c.Orient {
	case N:
		return off
	case S:
		return geom.Point{X: w - off.X, Y: h - off.Y}
	case E:
		return geom.Point{X: off.Y, Y: w - off.X}
	case W:
		return geom.Point{X: h - off.Y, Y: off.X}
	case FN:
		return geom.Point{X: w - off.X, Y: off.Y}
	case FS:
		return geom.Point{X: off.X, Y: h - off.Y}
	case FE:
		return geom.Point{X: h - off.Y, Y: w - off.X}
	case FW:
		return geom.Point{X: off.Y, Y: off.X}
	default:
		return off
	}
}

// Pin is one connection point. Offset is relative to the owning cell's
// lower-left corner in the reference N orientation; use Design.PinPos for
// the absolute, orientation-corrected position.
type Pin struct {
	Cell   int
	Net    int
	Offset geom.Point
}

// Net is a set of electrically connected pins.
type Net struct {
	Name   string
	Weight float64
	Pins   []int
}

// Degree returns the number of pins on the net.
func (n *Net) Degree() int { return len(n.Pins) }

// Row is one standard-cell placement row.
type Row struct {
	Y         float64 // bottom edge
	Height    float64
	X         float64 // left edge of the first site
	SiteWidth float64
	NumSites  int
}

// Right returns the x coordinate of the end of the row.
func (r *Row) Right() float64 { return r.X + float64(r.NumSites)*r.SiteWidth }

// Rect returns the row's occupied rectangle.
func (r *Row) Rect() geom.Rect {
	return geom.NewRect(r.X, r.Y, r.Right(), r.Y+r.Height)
}

// Region is a fence: every cell assigned to it must be placed with its
// footprint inside the union of Rects.
type Region struct {
	Name  string
	Rects []geom.Rect
}

// Contains reports whether r (a cell footprint) lies entirely inside one of
// the fence rectangles. Fences in this database are unions of disjoint
// rectangles, and a legal cell must sit wholly inside a single one.
func (rg *Region) Contains(r geom.Rect) bool {
	for _, fr := range rg.Rects {
		if fr.ContainsRect(r) {
			return true
		}
	}
	return false
}

// ContainsPoint reports whether p lies inside the fence.
func (rg *Region) ContainsPoint(p geom.Point) bool {
	for _, fr := range rg.Rects {
		if fr.Contains(p) {
			return true
		}
	}
	return false
}

// Area returns the total fence area, assuming disjoint rectangles.
func (rg *Region) Area() float64 {
	var a float64
	for _, fr := range rg.Rects {
		a += fr.Area()
	}
	return a
}

// BoundingBox returns the bounding box of all fence rectangles.
func (rg *Region) BoundingBox() geom.Rect {
	var bb geom.Rect
	for _, fr := range rg.Rects {
		bb = bb.Union(fr)
	}
	return bb
}

// Nearest returns the point inside the fence nearest to p (Euclidean).
func (rg *Region) Nearest(p geom.Point) geom.Point {
	best := p
	bestD := -1.0
	for _, fr := range rg.Rects {
		q := fr.ClampPoint(p)
		d := p.Dist(q)
		if bestD < 0 || d < bestD {
			best, bestD = q, d
		}
	}
	return best
}

// Module is one node of the logical hierarchy tree. The root has index 0
// and Parent == -1.
type Module struct {
	Name     string
	Parent   int
	Children []int
	// Cells lists the cells directly owned by this module (not those of
	// descendants).
	Cells []int
	// Region is the fence assigned to this module's cells, or NoRegion.
	Region int
}
