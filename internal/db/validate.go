package db

import (
	"fmt"
	"sort"
)

// Validate checks the referential integrity of the design: every pin points
// at a valid cell and net, nets and cells agree about their pins, modules
// form a tree rooted at index 0, and region/module references are in range.
// It returns the first problem found.
func (d *Design) Validate() error {
	for i := range d.Pins {
		p := &d.Pins[i]
		if p.Cell < 0 || p.Cell >= len(d.Cells) {
			return fmt.Errorf("db: pin %d references cell %d out of range", i, p.Cell)
		}
		if p.Net < 0 || p.Net >= len(d.Nets) {
			return fmt.Errorf("db: pin %d references net %d out of range", i, p.Net)
		}
	}
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if c.BaseW < 0 || c.BaseH < 0 {
			return fmt.Errorf("db: cell %q has negative dimensions %gx%g", c.Name, c.BaseW, c.BaseH)
		}
		if c.Region != NoRegion && (c.Region < 0 || c.Region >= len(d.Regions)) {
			return fmt.Errorf("db: cell %q references region %d out of range", c.Name, c.Region)
		}
		if c.Module != NoModule && (c.Module < 0 || c.Module >= len(d.Modules)) {
			return fmt.Errorf("db: cell %q references module %d out of range", c.Name, c.Module)
		}
		for _, pi := range c.Pins {
			if pi < 0 || pi >= len(d.Pins) {
				return fmt.Errorf("db: cell %q lists pin %d out of range", c.Name, pi)
			}
			if d.Pins[pi].Cell != ci {
				return fmt.Errorf("db: cell %q lists pin %d owned by cell %d", c.Name, pi, d.Pins[pi].Cell)
			}
		}
	}
	for ni := range d.Nets {
		for _, pi := range d.Nets[ni].Pins {
			if pi < 0 || pi >= len(d.Pins) {
				return fmt.Errorf("db: net %q lists pin %d out of range", d.Nets[ni].Name, pi)
			}
			if d.Pins[pi].Net != ni {
				return fmt.Errorf("db: net %q lists pin %d owned by net %d", d.Nets[ni].Name, pi, d.Pins[pi].Net)
			}
		}
	}
	if len(d.Modules) > 0 {
		if d.Modules[0].Parent != NoModule {
			return fmt.Errorf("db: module 0 must be the hierarchy root")
		}
		for mi := range d.Modules {
			m := &d.Modules[mi]
			if mi > 0 && (m.Parent < 0 || m.Parent >= len(d.Modules)) {
				return fmt.Errorf("db: module %q has parent %d out of range", m.Name, m.Parent)
			}
			if m.Region != NoRegion && (m.Region < 0 || m.Region >= len(d.Regions)) {
				return fmt.Errorf("db: module %q references region %d out of range", m.Name, m.Region)
			}
			for _, ch := range m.Children {
				if ch <= 0 || ch >= len(d.Modules) {
					return fmt.Errorf("db: module %q child %d out of range", m.Name, ch)
				}
				if d.Modules[ch].Parent != mi {
					return fmt.Errorf("db: module %q child %d disagrees about parent", m.Name, ch)
				}
			}
			for _, ci := range m.Cells {
				if ci < 0 || ci >= len(d.Cells) {
					return fmt.Errorf("db: module %q cell %d out of range", m.Name, ci)
				}
				if d.Cells[ci].Module != mi {
					return fmt.Errorf("db: module %q lists cell %d with module %d", m.Name, ci, d.Cells[ci].Module)
				}
			}
		}
		// Cycle check: walking parents from any module must reach the root.
		for mi := range d.Modules {
			seen := 0
			for m := mi; m != NoModule; m = d.Modules[m].Parent {
				seen++
				if seen > len(d.Modules) {
					return fmt.Errorf("db: module parent cycle involving module %d", mi)
				}
			}
		}
	}
	if d.Route != nil {
		r := d.Route
		if r.GridX <= 0 || r.GridY <= 0 || r.Layers <= 0 {
			return fmt.Errorf("db: route grid %dx%dx%d invalid", r.GridX, r.GridY, r.Layers)
		}
		if len(r.VertCap) != r.Layers || len(r.HorizCap) != r.Layers {
			return fmt.Errorf("db: route capacity arrays must have %d layers", r.Layers)
		}
		for _, b := range r.Blockages {
			if b.Cell < 0 || b.Cell >= len(d.Cells) {
				return fmt.Errorf("db: route blockage references cell %d out of range", b.Cell)
			}
			for _, l := range b.Layers {
				if l < 0 || l >= r.Layers {
					return fmt.Errorf("db: route blockage layer %d out of range", l)
				}
			}
		}
	}
	return nil
}

// OverlapViolations counts pairs of space-occupying placed objects that
// overlap, considering movable cells against each other and against fixed
// macros. It sweeps over x with closes ordered before opens at equal
// coordinates, so touching cells never count. Intended for tests and final
// quality checks, not inner loops.
func (d *Design) OverlapViolations() int {
	type ev struct {
		x    float64
		ci   int
		open bool
	}
	var evs []ev
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Kind == Terminal || c.Area() == 0 {
			continue
		}
		r := c.Rect()
		evs = append(evs, ev{r.Lo.X, i, true}, ev{r.Hi.X, i, false})
	}
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.x != b.x {
			return a.x < b.x
		}
		if a.open != b.open {
			return !a.open // closes first
		}
		return a.ci < b.ci
	})
	active := map[int]bool{}
	count := 0
	for _, e := range evs {
		if !e.open {
			delete(active, e.ci)
			continue
		}
		ri := d.Cells[e.ci].Rect()
		for cj := range active {
			if ri.Overlaps(d.Cells[cj].Rect()) {
				count++
			}
		}
		active[e.ci] = true
	}
	return count
}

// FenceViolations counts movable cells whose footprint is not inside their
// assigned fence region.
func (d *Design) FenceViolations() int {
	count := 0
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if !c.Movable() {
			continue
		}
		rg := d.CellRegion(ci)
		if rg == NoRegion {
			continue
		}
		if !d.Regions[rg].Contains(c.Rect()) {
			count++
		}
	}
	return count
}

// OutOfDie counts movable cells that stick out of the die area.
func (d *Design) OutOfDie() int {
	count := 0
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if !c.Movable() {
			continue
		}
		if !d.Die.ContainsRect(c.Rect()) {
			count++
		}
	}
	return count
}
