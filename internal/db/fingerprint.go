package db

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
)

// fingerprintVersion is bumped whenever the canonical encoding below
// changes, so fingerprints from different schema generations never collide.
const fingerprintVersion = 1

// Fingerprint returns a canonical SHA-256 over the design's semantic
// content: die, rows, cells, pins, nets, fence regions, the module
// hierarchy and the routing grid. It is stable across input-file
// formatting (whitespace, comments, net naming, float rendering) and
// across a Bookshelf write/read round trip:
//
//   - net names are excluded (readers synthesize them when absent) and a
//     net weight of 0 hashes as 1, matching HPWL semantics and the .wts
//     writer;
//   - the cell kind is re-derived the way the Bookshelf reader would
//     (fixed cells with a degenerate dimension are terminals, other fixed
//     cells are macros, movable cells taller than the row are macros),
//     because the format itself cannot distinguish a fixed macro from a
//     terminal with area;
//   - the effective fence region (CellRegion: own assignment or nearest
//     enclosing module's) is hashed instead of the raw per-cell field,
//     since only module fences survive a round trip.
//
// Placement state that the placer mutates but that is still part of the
// problem input — positions, orientations, Fixed flags — is included.
// Routability inflation ratios are derived state and excluded.
//
// The fingerprint is the design half of the content-addressed store key
// (see internal/store): two inputs with equal fingerprints describe the
// same placement problem.
func (d *Design) Fingerprint() [32]byte {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) {
		// Canonicalize negative zero so -0.0 and 0.0 hash identically.
		if v == 0 {
			v = 0
		}
		u64(math.Float64bits(v))
	}
	i64 := func(v int) { u64(uint64(int64(v))) }
	str := func(s string) {
		i64(len(s))
		h.Write([]byte(s))
	}

	str("repro/db design-fingerprint")
	i64(fingerprintVersion)

	f64(d.Die.Lo.X)
	f64(d.Die.Lo.Y)
	f64(d.Die.Hi.X)
	f64(d.Die.Hi.Y)

	i64(len(d.Rows))
	for i := range d.Rows {
		r := &d.Rows[i]
		f64(r.Y)
		f64(r.Height)
		f64(r.X)
		f64(r.SiteWidth)
		i64(r.NumSites)
	}

	rowH := d.RowHeight()
	i64(len(d.Cells))
	for i := range d.Cells {
		c := &d.Cells[i]
		str(c.Name)
		i64(int(canonicalKind(c, rowH)))
		if c.Fixed {
			i64(1)
		} else {
			i64(0)
		}
		f64(c.BaseW)
		f64(c.BaseH)
		f64(c.Pos.X)
		f64(c.Pos.Y)
		i64(int(c.Orient))
		i64(d.CellRegion(i))
		i64(c.Module)
	}

	i64(len(d.Nets))
	for i := range d.Nets {
		n := &d.Nets[i]
		w := n.Weight
		if w == 0 {
			w = 1
		}
		f64(w)
		i64(len(n.Pins))
		for _, p := range n.Pins {
			pin := &d.Pins[p]
			i64(pin.Cell)
			f64(pin.Offset.X)
			f64(pin.Offset.Y)
		}
	}

	i64(len(d.Regions))
	for i := range d.Regions {
		rg := &d.Regions[i]
		str(rg.Name)
		i64(len(rg.Rects))
		for _, r := range rg.Rects {
			f64(r.Lo.X)
			f64(r.Lo.Y)
			f64(r.Hi.X)
			f64(r.Hi.Y)
		}
	}

	i64(len(d.Modules))
	for i := range d.Modules {
		m := &d.Modules[i]
		str(m.Name)
		i64(m.Parent)
		i64(m.Region)
		i64(len(m.Cells))
		for _, c := range m.Cells {
			i64(c)
		}
	}

	hashRoute(f64, i64, d.Route)

	var out [32]byte
	h.Sum(out[:0])
	return out
}

// canonicalKind maps a cell to the kind the Bookshelf reader would assign
// after a write/read round trip, so designs that differ only in
// unrepresentable kind distinctions fingerprint identically.
func canonicalKind(c *Cell, rowH float64) CellKind {
	if c.Fixed || c.Kind == Terminal {
		if c.BaseW == 0 || c.BaseH == 0 {
			return Terminal
		}
		return Macro
	}
	if rowH > 0 && c.BaseH > rowH {
		return Macro
	}
	return StdCell
}

func hashRoute(f64 func(float64), i64 func(int), r *RouteInfo) {
	if r == nil {
		i64(0)
		return
	}
	i64(1)
	i64(r.GridX)
	i64(r.GridY)
	i64(r.Layers)
	for _, s := range [][]float64{r.VertCap, r.HorizCap, r.MinWidth, r.MinSpacing, r.ViaSpacing} {
		i64(len(s))
		for _, v := range s {
			f64(v)
		}
	}
	f64(r.Origin.X)
	f64(r.Origin.Y)
	f64(r.TileW)
	f64(r.TileH)
	f64(r.BlockagePorosity)
	i64(len(r.NiTerminals))
	for _, t := range r.NiTerminals {
		i64(t)
	}
	i64(len(r.Blockages))
	for _, b := range r.Blockages {
		i64(b.Cell)
		i64(len(b.Layers))
		for _, l := range b.Layers {
			i64(l)
		}
	}
}
