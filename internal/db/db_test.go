package db

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// tiny builds a small two-cell, one-net design used across tests.
func tiny(t *testing.T) *Design {
	t.Helper()
	b := NewBuilder("tiny", geom.NewRect(0, 0, 100, 100))
	a := b.AddStdCell("a", 4, 2)
	c := b.AddStdCell("c", 6, 2)
	term := b.AddTerminal("p0", geom.Point{X: 0, Y: 50})
	b.AddNet("n0", 1, b.CenterConn(a), b.CenterConn(c), Conn{Cell: term})
	b.MakeRows(2, 1)
	d, err := b.Design()
	if err != nil {
		t.Fatalf("builder: %v", err)
	}
	return d
}

func TestBuilderWiring(t *testing.T) {
	d := tiny(t)
	if len(d.Cells) != 3 || len(d.Nets) != 1 || len(d.Pins) != 3 {
		t.Fatalf("unexpected sizes: %d cells %d nets %d pins", len(d.Cells), len(d.Nets), len(d.Pins))
	}
	if got := d.CellIndex("c"); got != 1 {
		t.Errorf("CellIndex(c) = %d", got)
	}
	if got := d.CellIndex("nope"); got != -1 {
		t.Errorf("CellIndex(nope) = %d", got)
	}
	if len(d.Rows) != 50 {
		t.Errorf("expected 50 rows, got %d", len(d.Rows))
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPinPosAndHPWL(t *testing.T) {
	d := tiny(t)
	d.Cells[0].Pos = geom.Point{X: 10, Y: 10} // center (12, 11)
	d.Cells[1].Pos = geom.Point{X: 20, Y: 30} // center (23, 31)
	// Terminal at (0, 50).
	want := (23.0 - 0.0) + (50.0 - 11.0)
	if got := d.HPWL(); math.Abs(got-want) > 1e-9 {
		t.Errorf("HPWL = %v, want %v", got, want)
	}
	bb := d.NetBBox(0)
	if bb.Lo != (geom.Point{X: 0, Y: 11}) || bb.Hi != (geom.Point{X: 23, Y: 50}) {
		t.Errorf("NetBBox = %v", bb)
	}
}

func TestOrientOffsetAllOrients(t *testing.T) {
	// A 4x2 cell with a pin at (1, 0.5): the transformed offset must stay
	// within the oriented footprint for all eight orientations.
	c := Cell{BaseW: 4, BaseH: 2}
	off := geom.Point{X: 1, Y: 0.5}
	for o := N; o <= FW; o++ {
		c.Orient = o
		p := c.OrientOffset(off)
		if p.X < 0 || p.X > c.W() || p.Y < 0 || p.Y > c.H() {
			t.Errorf("orient %v: offset %v escapes %gx%g footprint", o, p, c.W(), c.H())
		}
	}
}

func TestOrientOffsetSpecificValues(t *testing.T) {
	c := Cell{BaseW: 4, BaseH: 2}
	off := geom.Point{X: 1, Y: 0.5}
	cases := []struct {
		o    Orient
		want geom.Point
	}{
		{N, geom.Point{X: 1, Y: 0.5}},
		{S, geom.Point{X: 3, Y: 1.5}},
		{E, geom.Point{X: 0.5, Y: 3}},
		{W, geom.Point{X: 1.5, Y: 1}},
		{FN, geom.Point{X: 3, Y: 0.5}},
		{FS, geom.Point{X: 1, Y: 1.5}},
	}
	for _, cse := range cases {
		c.Orient = cse.o
		if got := c.OrientOffset(off); got != cse.want {
			t.Errorf("orient %v: got %v want %v", cse.o, got, cse.want)
		}
	}
}

func TestOrientDims(t *testing.T) {
	c := Cell{BaseW: 4, BaseH: 2}
	for _, o := range []Orient{N, S, FN, FS} {
		c.Orient = o
		if c.W() != 4 || c.H() != 2 {
			t.Errorf("orient %v should not rotate dims", o)
		}
	}
	for _, o := range []Orient{E, W, FE, FW} {
		c.Orient = o
		if c.W() != 2 || c.H() != 4 {
			t.Errorf("orient %v should rotate dims", o)
		}
	}
}

func TestParseOrient(t *testing.T) {
	for o := N; o <= FW; o++ {
		got, ok := ParseOrient(o.String())
		if !ok || got != o {
			t.Errorf("ParseOrient(%v) = %v, %v", o, got, ok)
		}
	}
	if _, ok := ParseOrient("XYZ"); ok {
		t.Error("ParseOrient should reject unknown tokens")
	}
}

func TestCellCenterRoundTrip(t *testing.T) {
	c := Cell{BaseW: 3, BaseH: 5}
	c.SetCenter(geom.Point{X: 10, Y: 20})
	if got := c.Center(); got != (geom.Point{X: 10, Y: 20}) {
		t.Errorf("Center after SetCenter = %v", got)
	}
	if c.Pos != (geom.Point{X: 8.5, Y: 17.5}) {
		t.Errorf("Pos = %v", c.Pos)
	}
}

func TestRegionQueries(t *testing.T) {
	rg := Region{Name: "f", Rects: []geom.Rect{
		geom.NewRect(0, 0, 10, 10),
		geom.NewRect(20, 0, 30, 10),
	}}
	if !rg.Contains(geom.NewRect(1, 1, 5, 5)) {
		t.Error("inner rect should be contained")
	}
	if rg.Contains(geom.NewRect(8, 1, 22, 5)) {
		t.Error("rect spanning the gap must not be contained")
	}
	if rg.Area() != 200 {
		t.Errorf("Area = %v", rg.Area())
	}
	if got := rg.BoundingBox(); got != geom.NewRect(0, 0, 30, 10) {
		t.Errorf("BoundingBox = %v", got)
	}
	near := rg.Nearest(geom.Point{X: 15, Y: 5})
	if near != (geom.Point{X: 10, Y: 5}) && near != (geom.Point{X: 20, Y: 5}) {
		t.Errorf("Nearest = %v", near)
	}
}

func TestHierarchy(t *testing.T) {
	b := NewBuilder("h", geom.NewRect(0, 0, 100, 100))
	root := b.AddModule("top", NoModule, NoRegion)
	rgn := b.AddRegion("fence0", geom.NewRect(0, 0, 50, 50))
	cpu := b.AddModule("cpu", root, rgn)
	alu := b.AddModule("alu", cpu, NoRegion)
	c0 := b.AddStdCell("c0", 2, 2)
	c1 := b.AddStdCell("c1", 2, 2)
	b.AssignModule(c0, alu)
	b.AssignModule(c1, root)
	b.AddNet("n", 1, b.CenterConn(c0), b.CenterConn(c1))
	d, err := b.Design()
	if err != nil {
		t.Fatalf("builder: %v", err)
	}
	if got := d.CellRegion(c0); got != rgn {
		t.Errorf("CellRegion(c0) = %d, want %d (inherited from cpu)", got, rgn)
	}
	if got := d.CellRegion(c1); got != NoRegion {
		t.Errorf("CellRegion(c1) = %d, want NoRegion", got)
	}
	if got := d.ModuleDepth(alu); got != 2 {
		t.Errorf("ModuleDepth(alu) = %d", got)
	}
	if got := d.ModulePath(alu); got != "/top/cpu/alu" {
		t.Errorf("ModulePath = %q", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := tiny(t)
	d.Pins[0].Net = 99
	if err := d.Validate(); err == nil {
		t.Error("expected validation error for bad net reference")
	}
	d = tiny(t)
	d.Pins[0].Cell = -1
	if err := d.Validate(); err == nil {
		t.Error("expected validation error for bad cell reference")
	}
	d = tiny(t)
	d.Cells[0].Pins = []int{1} // pin owned by another cell
	if err := d.Validate(); err == nil {
		t.Error("expected validation error for stolen pin")
	}
}

func TestOverlapViolations(t *testing.T) {
	b := NewBuilder("ov", geom.NewRect(0, 0, 100, 100))
	a := b.AddStdCell("a", 4, 4)
	c := b.AddStdCell("b", 4, 4)
	e := b.AddStdCell("c", 4, 4)
	d := b.MustDesign()
	d.Cells[a].Pos = geom.Point{X: 0, Y: 0}
	d.Cells[c].Pos = geom.Point{X: 2, Y: 2}  // overlaps a
	d.Cells[e].Pos = geom.Point{X: 50, Y: 0} // far away
	if got := d.OverlapViolations(); got != 1 {
		t.Errorf("OverlapViolations = %d, want 1", got)
	}
	// Abutting cells must not count as overlapping.
	d.Cells[c].Pos = geom.Point{X: 4, Y: 0}
	d.Cells[e].Pos = geom.Point{X: 8, Y: 0}
	if got := d.OverlapViolations(); got != 0 {
		t.Errorf("OverlapViolations for abutting cells = %d, want 0", got)
	}
}

func TestFenceViolationsAndOutOfDie(t *testing.T) {
	b := NewBuilder("fv", geom.NewRect(0, 0, 100, 100))
	rgn := b.AddRegion("f", geom.NewRect(0, 0, 20, 20))
	ci := b.AddStdCell("a", 4, 4)
	d := b.MustDesign()
	d.Cells[ci].Region = rgn
	d.Cells[ci].Pos = geom.Point{X: 50, Y: 50}
	if got := d.FenceViolations(); got != 1 {
		t.Errorf("FenceViolations = %d, want 1", got)
	}
	d.Cells[ci].Pos = geom.Point{X: 10, Y: 10}
	if got := d.FenceViolations(); got != 0 {
		t.Errorf("FenceViolations inside = %d, want 0", got)
	}
	d.Cells[ci].Pos = geom.Point{X: 99, Y: 99}
	if got := d.OutOfDie(); got != 1 {
		t.Errorf("OutOfDie = %d, want 1", got)
	}
}

func TestUtilization(t *testing.T) {
	b := NewBuilder("u", geom.NewRect(0, 0, 10, 10))
	b.AddStdCell("a", 5, 2)          // movable, area 10
	b.AddMacro("m", 5, 5, true)      // fixed, area 25
	b.AddTerminal("t", geom.Point{}) // no area
	d := b.MustDesign()
	d.Cells[1].Pos = geom.Point{X: 0, Y: 0}
	want := 10.0 / (100.0 - 25.0)
	if got := d.Utilization(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Utilization = %v, want %v", got, want)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := tiny(t)
	d.Cells[0].Pos = geom.Point{X: 5, Y: 5}
	cl := d.Clone()
	cl.Cells[0].Pos = geom.Point{X: 99, Y: 99}
	cl.Nets[0].Pins[0] = 2
	cl.Cells[0].Pins = append(cl.Cells[0].Pins, 7)
	if d.Cells[0].Pos != (geom.Point{X: 5, Y: 5}) {
		t.Error("clone position write leaked into original")
	}
	if d.Nets[0].Pins[0] == 2 && len(d.Nets[0].Pins) > 0 && d.Nets[0].Pins[0] != 0 {
		t.Error("clone net pin write leaked into original")
	}
	if len(d.Cells[0].Pins) != 1 {
		t.Error("clone cell pin append leaked into original")
	}
}

func TestCopyPositionsFrom(t *testing.T) {
	d := tiny(t)
	cl := d.Clone()
	cl.Cells[0].Pos = geom.Point{X: 42, Y: 24}
	cl.Cells[0].Orient = FN
	if err := d.CopyPositionsFrom(cl); err != nil {
		t.Fatalf("CopyPositionsFrom: %v", err)
	}
	if d.Cells[0].Pos != (geom.Point{X: 42, Y: 24}) || d.Cells[0].Orient != FN {
		t.Error("positions not copied")
	}
	other := &Design{Cells: make([]Cell, 1)}
	if err := d.CopyPositionsFrom(other); err == nil {
		t.Error("expected size-mismatch error")
	}
}

func TestStats(t *testing.T) {
	d := tiny(t)
	s := d.ComputeStats()
	if s.NumStdCells != 2 || s.NumTerms != 1 || s.NumNets != 1 {
		t.Errorf("stats wrong: %+v", s)
	}
	if s.MaxDegree != 3 || math.Abs(s.AvgDegree-3) > 1e-9 {
		t.Errorf("degree stats wrong: %+v", s)
	}
	if s.String() == "" || s.TableRow() == "" || StatsTableHeader() == "" {
		t.Error("stats renderers returned empty strings")
	}
}

// Property: OrientOffset keeps any in-footprint offset inside the oriented
// footprint, for every orientation.
func TestOrientOffsetProperty(t *testing.T) {
	f := func(w, h, fx, fy float64) bool {
		w = 1 + math.Abs(math.Mod(w, 50))
		h = 1 + math.Abs(math.Mod(h, 50))
		fx = math.Abs(math.Mod(fx, 1))
		fy = math.Abs(math.Mod(fy, 1))
		c := Cell{BaseW: w, BaseH: h}
		off := geom.Point{X: fx * w, Y: fy * h}
		for o := N; o <= FW; o++ {
			c.Orient = o
			p := c.OrientOffset(off)
			if p.X < -1e-9 || p.X > c.W()+1e-9 || p.Y < -1e-9 || p.Y > c.H()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: S is an involution (applying the S transform twice returns the
// original offset).
func TestOrientSInvolution(t *testing.T) {
	f := func(fx, fy float64) bool {
		fx = math.Abs(math.Mod(fx, 1))
		fy = math.Abs(math.Mod(fy, 1))
		c := Cell{BaseW: 7, BaseH: 3, Orient: S}
		off := geom.Point{X: fx * 7, Y: fy * 3}
		p := c.OrientOffset(c.OrientOffset(off))
		return math.Abs(p.X-off.X) < 1e-9 && math.Abs(p.Y-off.Y) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
