package db

import (
	"fmt"
	"strings"
)

// Stats summarizes a design for reporting and benchmark tables.
type Stats struct {
	Name        string
	NumCells    int
	NumStdCells int
	NumMacros   int
	NumMovMacro int
	NumTerms    int
	NumFixed    int
	NumNets     int
	NumPins     int
	NumRegions  int
	NumModules  int
	MaxDegree   int
	AvgDegree   float64
	Utilization float64
	DieW, DieH  float64
}

// ComputeStats gathers summary statistics for the design.
func (d *Design) ComputeStats() Stats {
	s := Stats{
		Name:       d.Name,
		NumCells:   len(d.Cells),
		NumNets:    len(d.Nets),
		NumPins:    len(d.Pins),
		NumRegions: len(d.Regions),
		NumModules: len(d.Modules),
		DieW:       d.Die.W(),
		DieH:       d.Die.H(),
	}
	for i := range d.Cells {
		c := &d.Cells[i]
		switch c.Kind {
		case StdCell:
			s.NumStdCells++
		case Macro:
			s.NumMacros++
			if c.Movable() {
				s.NumMovMacro++
			}
		case Terminal:
			s.NumTerms++
		}
		if c.Fixed {
			s.NumFixed++
		}
	}
	var degSum int
	for i := range d.Nets {
		deg := d.Nets[i].Degree()
		degSum += deg
		if deg > s.MaxDegree {
			s.MaxDegree = deg
		}
	}
	if len(d.Nets) > 0 {
		s.AvgDegree = float64(degSum) / float64(len(d.Nets))
	}
	s.Utilization = d.Utilization()
	return s
}

// String renders the statistics as a one-design report block.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "design %s: %d cells (%d std, %d macro [%d movable], %d terminal), ",
		s.Name, s.NumCells, s.NumStdCells, s.NumMacros, s.NumMovMacro, s.NumTerms)
	fmt.Fprintf(&b, "%d nets (avg deg %.2f, max %d), %d pins, %d fences, %d modules, util %.3f, die %gx%g",
		s.NumNets, s.AvgDegree, s.MaxDegree, s.NumPins, s.NumRegions, s.NumModules, s.Utilization, s.DieW, s.DieH)
	return b.String()
}

// TableRow renders the statistics as a row for the benchmark-statistics
// table (Table 1 in EXPERIMENTS.md).
func (s Stats) TableRow() string {
	return fmt.Sprintf("%-10s %8d %8d %6d %6d %8d %6.2f %5d %7.3f",
		s.Name, s.NumStdCells, s.NumNets, s.NumMacros, s.NumTerms, s.NumPins, s.AvgDegree, s.NumRegions, s.Utilization)
}

// TableHeader returns the header matching TableRow.
func StatsTableHeader() string {
	return fmt.Sprintf("%-10s %8s %8s %6s %6s %8s %6s %5s %7s",
		"design", "stdcells", "nets", "macro", "term", "pins", "deg", "fence", "util")
}
