package db_test

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/geom"
)

func ExampleBuilder() {
	// A two-cell design with one I/O pad, rows, and a fenced module.
	b := db.NewBuilder("demo", geom.NewRect(0, 0, 100, 100))
	top := b.AddModule("top", db.NoModule, db.NoRegion)
	fence := b.AddRegion("cpu_fence", geom.NewRect(0, 0, 40, 40))
	cpu := b.AddModule("cpu", top, fence)

	inv := b.AddStdCell("inv0", 4, 10)
	buf := b.AddStdCell("buf0", 6, 10)
	pad := b.AddTerminal("pad0", geom.Point{X: 0, Y: 50})
	b.AssignModule(inv, cpu)
	b.AddNet("n0", 1, db.Conn{Cell: pad}, b.CenterConn(inv), b.CenterConn(buf))
	b.MakeRows(10, 1)

	d, err := b.Design()
	if err != nil {
		panic(err)
	}
	fmt.Println(d.ComputeStats())
	fmt.Println("inv0 fence:", d.Regions[d.CellRegion(inv)].Name)
	// Output:
	// design demo: 3 cells (2 std, 0 macro [0 movable], 1 terminal), 1 nets (avg deg 3.00, max 3), 3 pins, 1 fences, 2 modules, util 0.010, die 100x100
	// inv0 fence: cpu_fence
}
