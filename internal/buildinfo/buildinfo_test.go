package buildinfo

import (
	"runtime"
	"strings"
	"testing"
)

func TestString(t *testing.T) {
	s := String()
	if !strings.HasPrefix(s, runtime.Version()) {
		t.Errorf("String() = %q, want prefix %q", s, runtime.Version())
	}
	if !strings.Contains(s, "rev ") {
		t.Errorf("String() = %q, want a rev component", s)
	}
}

func TestRevisionStable(t *testing.T) {
	if Revision() == "" {
		t.Error("Revision() must never be empty")
	}
	if Revision() != Revision() {
		t.Error("Revision() must be stable across calls")
	}
}
