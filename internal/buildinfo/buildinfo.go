// Package buildinfo exposes the build metadata stamped into the binary
// by the Go toolchain: the Go version it was compiled with and the VCS
// revision it was built from. It backs both the -version flag of every
// command under cmd/ and the placerd_build_info metric, so the two always
// agree on what is running.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// GoVersion is the Go toolchain version the binary was built with.
func GoVersion() string { return runtime.Version() }

// Revision returns the VCS revision the binary was built from, with a
// "-dirty" suffix when the working tree had local modifications, or
// "unknown" for binaries built outside a checkout (go test, go run of a
// file set).
var Revision = sync.OnceValue(func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
})

// String is the one-line rendering the -version flag prints.
func String() string {
	return fmt.Sprintf("%s rev %s", GoVersion(), Revision())
}
