// Command benchgen emits the synthetic benchmark suite (or a custom
// configuration) as Bookshelf bundles, one directory per design. The
// generated designs stand in for the proprietary DAC-2012 superblue suite
// (see DESIGN.md §2) and load back through any Bookshelf reader plus the
// documented .fence/.hier extensions.
//
// Usage:
//
//	benchgen -out bench/                    # the full sb-a..sb-e suite
//	benchgen -out bench/ -only sb-b
//	benchgen -out bench/ -cells 3000 -seed 7 -name custom
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bookshelf"
	"repro/internal/buildinfo"
	"repro/internal/gen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		outDir = flag.String("out", "bench", "output directory")
		only   = flag.String("only", "", "generate a single suite member (sb-a..sb-e)")
		name   = flag.String("name", "", "generate one custom design with this name")
		cells  = flag.Int("cells", 5000, "custom design: standard cell count")
		seed   = flag.Int64("seed", 1, "custom design: generator seed")
		util   = flag.Float64("util", 0.7, "custom design: target utilization")
		fences = flag.Int("fences", 4, "custom design: number of fence regions")
	)
	showVersion := flag.Bool("version", false, "print build version (go version + vcs revision) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.String())
		return nil
	}

	var cfgs []gen.Config
	switch {
	case *name != "":
		cfgs = []gen.Config{{
			Name: *name, Seed: *seed, NumStdCells: *cells,
			NumFixedMacros: 4, NumMovableMacros: 2, NumModules: *fences + 2,
			NumFences: *fences, NumTerminals: 32, TargetUtil: *util,
		}}
	case *only != "":
		for _, c := range gen.Suite() {
			if c.Name == *only {
				cfgs = []gen.Config{c}
			}
		}
		if len(cfgs) == 0 {
			return fmt.Errorf("unknown suite member %q", *only)
		}
	default:
		cfgs = gen.Suite()
	}

	for _, cfg := range cfgs {
		d, err := gen.Generate(cfg)
		if err != nil {
			return fmt.Errorf("generate %s: %w", cfg.Name, err)
		}
		dir := filepath.Join(*outDir, cfg.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		aux, err := bookshelf.WriteDesign(d, dir)
		if err != nil {
			return fmt.Errorf("write %s: %w", cfg.Name, err)
		}
		fmt.Printf("%s: %s\n", aux, d.ComputeStats())
	}
	return nil
}
