// Command bencheco is the benchmark driver for incremental (ECO)
// placement (internal/eco). It emits a machine-readable JSON report
// (BENCH_eco.json by default) with three measurement groups so the
// incremental path's perf and fidelity can be tracked across commits and
// gated by cmd/benchdiff:
//
//   - Netlist-diff throughput: cells/s and allocs/op of eco.DiffDesigns
//     on a placed base vs a perturbed next — the always-paid entry cost
//     of every delta job.
//   - ECO-vs-full comparison: the same small delta (default 2% cell
//     churn) placed from scratch by the full multilevel flow and repaired
//     incrementally against the base, with both routed qualities and the
//     wall-clock speedup. This is the min-gated "speedup" row.
//   - Cross-worker determinism: the same repair at workers 1, 2 and 8
//     must produce byte-identical .pl output — the repo-wide contract
//     the serving layer's dedup and the fleet's reassignment rely on.
//
// The report doubles as a self-checking gate: -min-speedup,
// -max-hpwl-ratio and -max-cong-ratio make the run itself fail when the
// incremental path stops paying for itself (or drifts from from-scratch
// quality), so CI catches regressions even before benchdiff compares
// against the committed baseline. Legality (0 overlaps, 0 fence
// violations, 0 out-of-die) and determinism are gated unconditionally.
//
// Usage:
//
//	go run ./cmd/bencheco                    # full suite -> BENCH_eco.json
//	go run ./cmd/bencheco -cells 1200 -out -
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bookshelf"
	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/eco"
	"repro/internal/gen"
	"repro/internal/route"
)

// Run is one benchdiff row. The field names line up with cmd/benchdiff's
// gated schema: wall_seconds and allocs/bytes get max-ratio gates,
// overflow / max_congestion / hpwl_after get quality gates, speedup gets
// a min-gate. The eco-specific fields are informational.
type Run struct {
	Design  string `json:"design"`
	Cells   int    `json:"cells"`
	Workers int    `json:"workers"`

	WallSeconds float64 `json:"wall_seconds"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`

	Speedup       float64 `json:"speedup,omitempty"`
	Overflow      float64 `json:"overflow,omitempty"`
	MaxCongestion float64 `json:"max_congestion,omitempty"`
	HPWLAfter     float64 `json:"hpwl_after,omitempty"`

	// ECO shape of the measured delta (delta row only).
	ChangedCells    int     `json:"changed_cells,omitempty"`
	Windows         int     `json:"windows,omitempty"`
	ReuseRatio      float64 `json:"reuse_ratio,omitempty"`
	FullWallSeconds float64 `json:"full_wall_seconds,omitempty"`

	// Diff micro-measurement (diff row only).
	DiffsPerSec float64 `json:"diffs_per_sec,omitempty"`
}

// Report is the whole emitted document.
type Report struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Runs       []Run  `json:"runs"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bencheco:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out       = flag.String("out", "BENCH_eco.json", "output file (- for stdout)")
		cells     = flag.Int("cells", 2500, "benchmark design size")
		seed      = flag.Int64("seed", 21, "benchmark design seed")
		workers   = flag.Int("workers", 4, "placer/repair worker count (fixed, not machine-derived, so benchdiff keys match across hosts)")
		delta     = flag.Float64("delta", 0.02, "cell churn fraction for the measured delta (half removed, half added)")
		rewire    = flag.Float64("rewire", 0.005, "fraction of surviving movable pins moved to different nets")
		repeat    = flag.Int("repeat", 5, "timed diff repetitions (best wall time wins)")
		minSpeed  = flag.Float64("min-speedup", 5.0, "fail when the eco-vs-full speedup falls below this (0 disables)")
		hpwlRatio = flag.Float64("max-hpwl-ratio", 1.02, "fail when eco sHPWL exceeds from-scratch sHPWL times this (0 disables)")
		congRatio = flag.Float64("max-cong-ratio", 1.05, "fail when eco max congestion exceeds from-scratch times this (0 disables)")
	)
	showVersion := flag.Bool("version", false, "print build version (go version + vcs revision) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.String())
		return nil
	}

	rep := Report{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	cfg := core.Config{Workers: *workers}

	// Base: a synthetic mixed-size design placed once by the full flow —
	// the cached result every delta below reuses.
	input, err := gen.Generate(benchGen(*cells, *seed))
	if err != nil {
		return err
	}
	baseD := input.Clone()
	t0 := time.Now()
	if _, err := core.MustNew(cfg).Place(baseD); err != nil {
		return fmt.Errorf("base place: %w", err)
	}
	baseWall := time.Since(t0).Seconds()
	fmt.Fprintf(os.Stderr, "%s cells=%d workers=%d: base full place %.2fs\n",
		input.Name, *cells, *workers, baseWall)

	// The measured delta: a deterministic ECO-style perturbation of the
	// base netlist.
	next := gen.Perturb(input, gen.Perturbation{
		Seed:       *seed + 1,
		RemoveFrac: *delta / 2,
		AddFrac:    *delta / 2,
		RewireFrac: *rewire,
	})

	// Diff micro-measurement: throughput and per-diff allocation cost.
	diffRow, df := measureDiff(baseD, next, *cells, *workers, *repeat)
	rep.Runs = append(rep.Runs, diffRow)
	fmt.Fprintf(os.Stderr, "%s/diff: %.0f cells/s (%.2f ms, %.0f allocs/op), %d changed %d added %d removed (%.1f%% reuse)\n",
		input.Name, float64(*cells)/diffRow.WallSeconds, 1e3*diffRow.WallSeconds, diffRow.AllocsPerOp,
		len(df.Changed), len(df.Added), len(df.RemovedNames), 100*df.ReuseRatio())

	// From-scratch reference on the SAME perturbed netlist.
	full := next.Clone()
	t0 = time.Now()
	if _, err := core.MustNew(cfg).Place(full); err != nil {
		return fmt.Errorf("from-scratch place: %w", err)
	}
	fullWall := time.Since(t0).Seconds()
	fullM, err := route.EvaluateDesign(full, route.RouterOptions{Workers: *workers})
	if err != nil {
		return err
	}

	// The incremental path: diff + transfer + windowed repair.
	ecoD := next.Clone()
	basePl := eco.FromDesign(baseD)
	t0 = time.Now()
	edf := eco.DiffDesigns(baseD, ecoD)
	eres, err := eco.Place(ecoD, edf, basePl, eco.Options{Workers: *workers})
	ecoWall := time.Since(t0).Seconds()
	var failures []string
	if errors.Is(err, eco.ErrNeedFull) {
		failures = append(failures, fmt.Sprintf("%.1f%% delta fell back to a full place (dirty fraction too high)", 100**delta))
	} else if err != nil {
		return fmt.Errorf("eco place: %w", err)
	}
	ecoM, err := route.EvaluateDesign(ecoD, route.RouterOptions{Workers: *workers})
	if err != nil {
		return err
	}

	speedup := 0.0
	if ecoWall > 0 {
		speedup = fullWall / ecoWall
	}
	deltaRow := Run{
		Design: input.Name + "/delta", Cells: *cells, Workers: *workers,
		WallSeconds: ecoWall, Speedup: speedup,
		Overflow: ecoM.Overflow, MaxCongestion: ecoM.MaxCong, HPWLAfter: ecoM.ScaledHPWL,
		ChangedCells: eres.ChangedCells, Windows: len(eres.Windows),
		ReuseRatio: eres.ReuseRatio, FullWallSeconds: fullWall,
	}
	rep.Runs = append(rep.Runs, deltaRow)
	fmt.Fprintf(os.Stderr, "%s/delta: eco %.2fs vs full %.2fs (%.1fx); %d windows, %d repaired; sHPWL %.4g vs %.4g (%.3fx), maxcong %.2f vs %.2f\n",
		input.Name, ecoWall, fullWall, speedup, len(eres.Windows), eres.Repaired,
		ecoM.ScaledHPWL, fullM.ScaledHPWL, ecoM.ScaledHPWL/fullM.ScaledHPWL,
		ecoM.MaxCong, fullM.MaxCong)

	// Self-gates.
	if eres.Overlaps != 0 || eres.FenceViolations != 0 || eres.OutOfDie != 0 {
		failures = append(failures, fmt.Sprintf("eco placement not legal: %d overlaps, %d fence violations, %d out-of-die",
			eres.Overlaps, eres.FenceViolations, eres.OutOfDie))
	}
	if *minSpeed > 0 && speedup < *minSpeed {
		failures = append(failures, fmt.Sprintf("eco-vs-full speedup %.2fx below floor %.2fx", speedup, *minSpeed))
	}
	if *hpwlRatio > 0 && fullM.ScaledHPWL > 0 && ecoM.ScaledHPWL > fullM.ScaledHPWL**hpwlRatio {
		failures = append(failures, fmt.Sprintf("eco sHPWL %.6g exceeds from-scratch %.6g by more than %.0f%%",
			ecoM.ScaledHPWL, fullM.ScaledHPWL, 100*(*hpwlRatio-1)))
	}
	if *congRatio > 0 && fullM.MaxCong > 0 && ecoM.MaxCong > fullM.MaxCong**congRatio {
		failures = append(failures, fmt.Sprintf("eco max congestion %.3f exceeds from-scratch %.3f by more than %.0f%%",
			ecoM.MaxCong, fullM.MaxCong, 100*(*congRatio-1)))
	}
	if msg := checkDeterminism(baseD, next); msg != "" {
		failures = append(failures, msg)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	} else {
		fmt.Fprintln(os.Stderr, "wrote", *out)
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "bencheco: GATE FAILED:", f)
		}
		return fmt.Errorf("%d gate(s) failed", len(failures))
	}
	return nil
}

// benchGen is the benchmark design: mixed-size (macros + fences +
// terminals) at moderate utilization and routing capacity, the same
// shape core's resume tests use. The deliberately tame congestion keeps
// the full flow stable run-to-run, so the eco-vs-from-scratch quality
// ratios gate the incremental path rather than full-flow seed variance
// (gen.Congested designs can swing >10% sHPWL between two from-scratch
// runs of a 2%-perturbed netlist, drowning the signal).
func benchGen(cells int, seed int64) gen.Config {
	return gen.Config{
		Name: "ecobench", Seed: seed, NumStdCells: cells,
		NumFixedMacros: 2, NumMovableMacros: 1, MacroSizeRows: 4,
		NumModules: 3, NumFences: 2, NumTerminals: 24,
		TargetUtil: 0.58, TrackCapacity: 12,
	}
}

// measureDiff times eco.DiffDesigns (best of repeat) and its allocation
// cost, returning the diff row and one diff for reporting.
func measureDiff(baseD, next *db.Design, cells, workers, repeat int) (Run, *eco.Diff) {
	if repeat < 1 {
		repeat = 1
	}
	var df *eco.Diff
	best := time.Duration(1<<63 - 1)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	for i := 0; i < repeat; i++ {
		t0 := time.Now()
		df = eco.DiffDesigns(baseD, next)
		if el := time.Since(t0); el < best {
			best = el
		}
	}
	runtime.ReadMemStats(&m1)
	r := Run{
		Design: baseD.Name + "/diff", Cells: cells, Workers: workers,
		WallSeconds: best.Seconds(),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(repeat),
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(repeat),
	}
	if r.WallSeconds > 0 {
		r.DiffsPerSec = 1 / r.WallSeconds
	}
	return r, df
}

// checkDeterminism repairs the same delta at workers 1, 2 and 8 and
// byte-compares the resulting .pl files. Returns a failure message or "".
func checkDeterminism(baseD, next *db.Design) string {
	basePl := eco.FromDesign(baseD)
	var ref []byte
	for _, w := range []int{1, 2, 8} {
		d := next.Clone()
		df := eco.DiffDesigns(baseD, d)
		if _, err := eco.Place(d, df, basePl, eco.Options{Workers: w}); err != nil {
			return fmt.Sprintf("determinism check: workers=%d: %v", w, err)
		}
		var buf bytes.Buffer
		if err := bookshelf.WritePl(&buf, d); err != nil {
			return fmt.Sprintf("determinism check: workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = buf.Bytes()
		} else if !bytes.Equal(ref, buf.Bytes()) {
			return fmt.Sprintf("determinism check: workers=%d .pl differs from workers=1", w)
		}
	}
	return ""
}
